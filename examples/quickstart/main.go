// Quickstart: factor a symmetric positive definite matrix with the
// fault-tolerant Cholesky decomposition on a simulated 2-GPU node, solve a
// linear system with the factor, and print the protection report.
package main

import (
	"fmt"
	"log"

	"ftla"
)

func main() {
	const n = 512

	// A dense SPD system, e.g. a normal-equations matrix.
	a := ftla.RandomSPD(n, 42)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}

	// Full two-dimensional checksum protection with the paper's new
	// checking scheme is the default configuration.
	res, err := ftla.Cholesky(a, ftla.Config{GPUs: 2, NB: 64})
	if err != nil {
		log.Fatal(err)
	}

	x, err := res.Solve(b)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("factorized %dx%d SPD matrix on %d simulated GPUs\n", n, n, res.Report.GPUs)
	fmt.Printf("factor residual        : %.2e\n", res.Residual(a))
	fmt.Printf("solution sample        : x[0]=%.6f x[%d]=%.6f\n", x[0], n-1, x[n-1])
	fmt.Printf("wall time              : %v\n", res.Report.Wall)
	fmt.Printf("checksum encode time   : %v\n", res.Report.EncodeT)
	fmt.Printf("verification time      : %v\n", res.Report.VerifyT)
	fmt.Printf("blocks verified        : %d\n", res.Report.Counter.TotalChecked())
	fmt.Printf("PCIe traffic           : %.1f MB\n", float64(res.Report.PCIeBytes)/1e6)
	fmt.Printf("outcome                : %v\n", res.Report.OutcomeOf(res.Residual(a) < 1e-9))
}
