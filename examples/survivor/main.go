// Survivor: a side-by-side protection-strength comparison. The same
// sequence of soft errors — a computation fault in a panel update and a
// DRAM fault in a trailing-update panel — strikes four differently
// protected LU factorizations. Single-side checksums let the PU fault
// through silently (the paper's headline Table VIII gap); full checksums
// with the new checking scheme repair everything.
package main

import (
	"fmt"

	"ftla"
	"ftla/internal/core"
)

func main() {
	const n = 384

	configs := []struct {
		name string
		prot ftla.Protection
		schm ftla.Scheme
	}{
		{"single-side + prior-op  [11]", ftla.SingleSide, ftla.PriorOp},
		{"single-side + post-op   [31]", ftla.SingleSide, ftla.PostOp},
		{"full        + post-op   [13]", ftla.FullChecksum, ftla.PostOp},
		{"full        + new (paper)   ", ftla.FullChecksum, ftla.NewScheme},
	}

	fmt.Printf("%-32s %-10s %-10s %-12s %s\n", "configuration", "detected", "fixed", "residual", "outcome")
	for _, cfg := range configs {
		a := ftla.RandomDiagDominant(n, 11)
		inj := ftla.NewInjector(5)
		inj.Schedule(ftla.FaultSpec{Kind: ftla.FaultCompute, Op: ftla.OpPU, Iteration: 1})
		inj.Schedule(ftla.FaultSpec{Kind: ftla.FaultDRAM, Op: ftla.OpTMU, Part: ftla.RefPart, Iteration: 3})

		res, err := ftla.LU(a, ftla.Config{
			GPUs: 2, NB: 64,
			Protection: cfg.prot, Scheme: cfg.schm,
			Injector: inj,
		})
		if err != nil {
			fmt.Printf("%-32s error: %v\n", cfg.name, err)
			continue
		}
		resid := res.Residual(a)
		outcome := res.Report.OutcomeOf(resid < 1e-9)
		fmt.Printf("%-32s %-10d %-10d %-12.2e %v\n",
			cfg.name,
			res.Report.Counter.DetectedErrors,
			res.Report.Counter.CorrectedElements+res.Report.Counter.ReconstructedLins,
			resid, outcome)
	}
	fmt.Println("\nA corrupted outcome means the fault silently invalidated the result")
	fmt.Printf("(the paper's 'N' cells); %q survives the full storm.\n", core.ABFTFixed.String())
}
