// Leastsquares: fit a polynomial model with the protected QR
// factorization while a PCIe fault corrupts a panel broadcast — the
// communication-protection scenario of §VII.C. The new checking scheme
// verifies the panel after the broadcast, repairs the corrupted leg from
// its checksums, and the fit is unaffected.
package main

import (
	"fmt"
	"log"
	"math"

	"ftla"
)

func main() {
	const n = 384 // square Vandermonde-like system (multiple of NB)

	// Build a well-conditioned design matrix: scaled Chebyshev-ish basis
	// evaluated on a grid, plus noise-free observations from known
	// coefficients.
	a := ftla.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		t := 2*float64(i)/float64(n-1) - 1
		v := 1.0
		for j := 0; j < n; j++ {
			a.Set(i, j, v)
			v *= t * 0.99
		}
	}
	coef := make([]float64, n)
	coef[0], coef[1], coef[2], coef[5] = 1, -2, 0.5, 0.125
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		row := a.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * coef[j]
		}
		b[i] = s
	}

	// A multi-bit PCIe upset on the panel broadcast to GPU 1.
	inj := ftla.NewInjector(4)
	inj.Schedule(ftla.FaultSpec{Kind: ftla.FaultPCIe, Op: ftla.OpPD, Iteration: 2, GPUTarget: 1})

	res, err := ftla.QR(a, ftla.Config{GPUs: 2, NB: 64, Injector: inj})
	if err != nil {
		log.Fatal(err)
	}
	x, err := res.Solve(b)
	if err != nil {
		log.Fatal(err)
	}

	maxErr := 0.0
	for j := 0; j < 8; j++ {
		if d := math.Abs(x[j] - coef[j]); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("injected PCIe faults    : %d\n", len(inj.Events()))
	fmt.Printf("errors detected         : %d\n", res.Report.Counter.DetectedErrors)
	fmt.Printf("elements corrected      : %d\n", res.Report.Counter.CorrectedElements)
	fmt.Printf("rebroadcasts            : %d\n", res.Report.Counter.Rebroadcasts)
	fmt.Printf("local restarts          : %d (postponed check avoids them)\n", res.Report.Counter.LocalRestarts)
	fmt.Printf("recovered coefficients  : %.4f %.4f %.4f (want 1 -2 0.5)\n", x[0], x[1], x[2])
	fmt.Printf("max coefficient error   : %.2e\n", maxErr)
	if maxErr < 1e-6 {
		fmt.Println("least-squares fit correct despite the PCIe fault ✓")
	} else {
		fmt.Println("fit corrupted ✗")
	}
}
