// Linsolve: solve A·x = b with the protected LU factorization while DRAM
// faults strike the trailing matrix mid-factorization — the scenario the
// paper's full-checksum protection is built for. The injected corruption
// is detected online, the contaminated lines are rebuilt from the
// orthogonal checksums, and the solve still returns the correct answer.
package main

import (
	"fmt"
	"log"
	"math"

	"ftla"
)

func main() {
	const n = 512

	a := ftla.RandomDiagDominant(n, 7)
	// Manufacture a known solution so correctness is externally checkable.
	want := make([]float64, n)
	for i := range want {
		want[i] = math.Sin(float64(i))
	}
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		row := a.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * want[j]
		}
		b[i] = s
	}

	// Two multi-bit DRAM upsets: one in the L21 panel during a trailing
	// update, one in the row panel before a panel update.
	inj := ftla.NewInjector(99)
	inj.Schedule(ftla.FaultSpec{Kind: ftla.FaultDRAM, Op: ftla.OpTMU, Part: ftla.RefPart, Iteration: 1})
	inj.Schedule(ftla.FaultSpec{Kind: ftla.FaultDRAM, Op: ftla.OpPU, Part: ftla.UpdatePart, Iteration: 4})

	res, err := ftla.LU(a, ftla.Config{GPUs: 2, NB: 64, Injector: inj})
	if err != nil {
		log.Fatal(err)
	}
	x, err := res.Solve(b)
	if err != nil {
		log.Fatal(err)
	}

	maxErr := 0.0
	for i := range x {
		if d := math.Abs(x[i] - want[i]); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("injected faults            : %d\n", len(inj.Events()))
	for _, e := range inj.Events() {
		fmt.Printf("  %v\n", e)
	}
	fmt.Printf("errors detected            : %d\n", res.Report.Counter.DetectedErrors)
	fmt.Printf("elements corrected         : %d\n", res.Report.Counter.CorrectedElements)
	fmt.Printf("lines reconstructed        : %d\n", res.Report.Counter.ReconstructedLins)
	fmt.Printf("local restarts             : %d\n", res.Report.Counter.LocalRestarts)
	fmt.Printf("factor residual            : %.2e\n", res.Residual(a))
	fmt.Printf("max |x − x_true|           : %.2e\n", maxErr)
	if maxErr < 1e-8 {
		fmt.Println("solution correct despite injected DRAM faults ✓")
	} else {
		fmt.Println("solution corrupted ✗")
	}
}
