package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"ftla"
	"ftla/internal/blas"
	"ftla/internal/core"
	"ftla/internal/obs"
)

// corruptingInjector schedules two DRAM faults in the same column of the
// first LU panel: the dual-weight column checksum detects the mismatch but
// cannot localize two corrupted elements in one strip, and single-side
// protection has no row checksums to reconstruct from — the run is forced
// into the paper's detected-but-corrupt bucket (§X.B "Complete Restart").
func corruptingInjector(t *testing.T) *ftla.Injector {
	t.Helper()
	inj := ftla.NewInjector(99)
	for _, row := range []int{1, 2} {
		inj.Schedule(ftla.FaultSpec{
			Kind: ftla.FaultDRAM, Op: ftla.OpPD, Part: ftla.RefPart,
			Iteration: 0, Row: row, Col: 0,
		})
	}
	return inj
}

func corruptibleSpec(inj *ftla.Injector) JobSpec {
	return JobSpec{
		Decomp: LU,
		A:      ftla.RandomDiagDominant(96, 3),
		B:      make([]float64, 96),
		Config: ftla.Config{
			GPUs: 2, NB: 32,
			Protection: ftla.SingleSide, Scheme: ftla.NewScheme,
			Injector: inj,
		},
		NoCache: true,
	}
}

// The end-to-end self-healing contract: a first attempt forced into
// DetectedCorrupt is automatically restarted on a fresh injector-free
// system and completes FaultFree, with the retry visible in Stats.
func TestSelfHealingRetry(t *testing.T) {
	s := New(Config{Workers: 1, Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond}})
	defer s.Close()

	spec := corruptibleSpec(corruptingInjector(t))
	spec.B[0] = 1
	h, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait(context.Background())
	if err != nil {
		t.Fatalf("job failed: %v", err)
	}
	if res.Outcome != core.FaultFree {
		t.Fatalf("outcome %v, want fault-free after restart", res.Outcome)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one corrupt run, one clean restart)", res.Attempts)
	}
	if res.Residual > 1e-9 {
		t.Fatalf("winning attempt residual %g", res.Residual)
	}
	if res.X == nil {
		t.Fatal("solve leg missing")
	}
	st := s.Stats()
	if st.Retries != 1 {
		t.Fatalf("Stats.Retries = %d, want 1", st.Retries)
	}
	if st.Completed != 1 || st.Failed != 0 {
		t.Fatalf("Completed/Failed = %d/%d, want 1/0", st.Completed, st.Failed)
	}
	if st.Outcomes["fault-free"] != 1 {
		t.Fatalf("outcome histogram %v, want one fault-free", st.Outcomes)
	}
}

// With retries exhausted the job degrades gracefully: a CorruptError that
// names the outcome and carries the last attempt's report. This also pins
// the fixture itself — the injector really produces DetectedCorrupt.
func TestPersistentCorruptionDegradesGracefully(t *testing.T) {
	s := New(Config{Workers: 1, Retry: RetryPolicy{MaxAttempts: 1}})
	defer s.Close()

	h, err := s.Submit(context.Background(), corruptibleSpec(corruptingInjector(t)))
	if err != nil {
		t.Fatal(err)
	}
	_, err = h.Wait(context.Background())
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptError", err)
	}
	if ce.Outcome != core.DetectedCorrupt {
		t.Fatalf("outcome %v, want detected-corrupt", ce.Outcome)
	}
	if ce.Report == nil || !ce.Report.Unrecoverable {
		t.Fatalf("report missing or not unrecoverable: %+v", ce.Report)
	}
	if ce.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", ce.Attempts)
	}
	// The terminal error names the faults that fired (fault.Spec.Describe),
	// so a chaos-campaign log is diagnosable without re-running the run.
	if len(ce.Injected) != 2 {
		t.Fatalf("Injected = %v, want the two scheduled DRAM faults", ce.Injected)
	}
	for _, d := range ce.Injected {
		if !strings.Contains(d, "off-chip-mem@PD/ref") {
			t.Fatalf("injected description %q missing kind@op/part", d)
		}
		if !strings.Contains(ce.Error(), d) {
			t.Fatalf("Error() %q does not carry injected description %q", ce.Error(), d)
		}
	}
	if st := s.Stats(); st.Failed != 1 {
		t.Fatalf("Stats.Failed = %d, want 1", st.Failed)
	}
}

// The factor-once/solve-many fast path: a second job against the same
// operator is served from the cache without rerunning the decomposition,
// verified by the global BLAS op counter staying flat.
func TestCacheHitSkipsRefactorization(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	n := 64
	a := ftla.RandomSPD(n, 9)
	cfg := ftla.Config{GPUs: 1, NB: 16}
	h1, err := s.Submit(context.Background(), JobSpec{Decomp: Cholesky, A: a, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	flops0 := blas.Flops()
	h2, err := s.Submit(context.Background(), JobSpec{Decomp: Cholesky, A: a, B: b, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit || res.Attempts != 0 {
		t.Fatalf("CacheHit=%v Attempts=%d, want hit with zero factorization attempts", res.CacheHit, res.Attempts)
	}
	factorFlops := uint64(n) * uint64(n) * uint64(n) / 3
	if d := blas.Flops() - flops0; d > factorFlops/10 {
		t.Fatalf("cache-hit job burned %d flops (> %d): it refactorized", d, factorFlops/10)
	}
	// The served solution must still solve the original system.
	r := append([]float64(nil), b...)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			r[i] -= a.At(i, j) * res.X[j]
		}
	}
	for i, v := range r {
		if v > 1e-8 || v < -1e-8 {
			t.Fatalf("cached solve residual %g at %d", v, i)
		}
	}
	st := s.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("cache hits/misses = %d/%d, want 1/1", st.CacheHits, st.CacheMisses)
	}
}

// Admission control: once QueueDepth jobs are waiting, Submit rejects with
// ErrQueueFull instead of growing the queue.
func TestQueueFullBackpressure(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	gate := make(chan struct{})
	claimed := make(chan struct{})
	var once sync.Once
	s.beforeRun = func(*JobHandle) {
		once.Do(func() { close(claimed) })
		<-gate
	}

	spec := JobSpec{Decomp: Cholesky, A: ftla.RandomSPD(32, 1), Config: ftla.Config{NB: 16}}
	h1, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	<-claimed // the lone worker holds h1; the queue is now empty
	h2, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), spec); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit err = %v, want ErrQueueFull", err)
	}
	st := s.Stats()
	if st.Rejected != 1 || st.QueueDepth != 1 {
		t.Fatalf("Rejected=%d QueueDepth=%d, want 1/1", st.Rejected, st.QueueDepth)
	}
	close(gate)
	if _, err := h1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := h2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Submit(context.Background(), spec); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Close err = %v, want ErrClosed", err)
	}
}

// Interactive jobs overtake queued batch jobs.
func TestPriorityDispatchOrder(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	defer s.Close()
	gate := make(chan struct{})
	claimed := make(chan struct{})
	var mu sync.Mutex
	var order []uint64
	first := true
	s.beforeRun = func(h *JobHandle) {
		mu.Lock()
		order = append(order, h.ID)
		wasFirst := first
		first = false
		mu.Unlock()
		if wasFirst {
			close(claimed)
			<-gate
		}
	}

	spec := func(p Priority) JobSpec {
		return JobSpec{Decomp: Cholesky, A: ftla.RandomSPD(32, 2), Config: ftla.Config{NB: 16}, Priority: p, NoCache: true}
	}
	h0, err := s.Submit(context.Background(), spec(Batch))
	if err != nil {
		t.Fatal(err)
	}
	<-claimed
	hBatch, err := s.Submit(context.Background(), spec(Batch))
	if err != nil {
		t.Fatal(err)
	}
	hInter, err := s.Submit(context.Background(), spec(Interactive))
	if err != nil {
		t.Fatal(err)
	}
	close(gate)
	for _, h := range []*JobHandle{h0, hBatch, hInter} {
		if _, err := h.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[1] != hInter.ID || order[2] != hBatch.ID {
		t.Fatalf("dispatch order %v, want interactive %d before batch %d", order, hInter.ID, hBatch.ID)
	}
}

// A job whose context is already dead is not run.
func TestCanceledContext(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h, err := s.Submit(ctx, JobSpec{Decomp: Cholesky, A: ftla.RandomSPD(32, 4), Config: ftla.Config{NB: 16}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := s.Stats(); st.Canceled != 1 {
		t.Fatalf("Stats.Canceled = %d, want 1", st.Canceled)
	}
}

// Sequential same-platform jobs reuse one pooled system, and the released
// systems' device utilization aggregates into Stats.
func TestSystemPoolReuseAndUtilization(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	for seed := uint64(0); seed < 3; seed++ {
		h, err := s.Submit(context.Background(), JobSpec{
			Decomp: Cholesky, A: ftla.RandomSPD(64, 10+seed),
			Config: ftla.Config{GPUs: 2, NB: 16}, NoCache: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.SystemsCreated != 1 || st.SystemsReused != 2 {
		t.Fatalf("pool created/reused = %d/%d, want 1/2", st.SystemsCreated, st.SystemsReused)
	}
	if len(st.Devices) == 0 {
		t.Fatal("no aggregated device utilization")
	}
	var busy float64
	for _, d := range st.Devices {
		busy += d.SimSecs
	}
	if busy <= 0 {
		t.Fatalf("aggregated device time %g, want > 0", busy)
	}
}

// Released systems publish overlap utilization (busy over logical
// makespan): Stats.Devices carries Util and the scheduler registry gauges
// it as ftla_device_utilization, including for look-ahead jobs.
func TestDeviceUtilizationPublished(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	for _, la := range []int{0, 1} {
		h, err := s.Submit(context.Background(), JobSpec{
			Decomp: Cholesky, A: ftla.RandomSPD(64, 21),
			Config: ftla.Config{GPUs: 2, NB: 16, Lookahead: la}, NoCache: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if len(st.Devices) == 0 {
		t.Fatal("no aggregated device utilization")
	}
	var sum float64
	for _, d := range st.Devices {
		if d.Util < 0 || d.Util > 1.001 {
			t.Fatalf("device %s utilization %g outside [0, 1]", d.Name, d.Util)
		}
		sum += d.Util
	}
	if sum <= 0 {
		t.Fatal("all device utilizations zero")
	}
	snap := s.Registry().Snapshot()
	found := false
	for key, v := range snap.FloatGauges {
		if strings.HasPrefix(key, MetricDeviceUtilization+"{") {
			found = true
			if v < 0 || v > 1.001 {
				t.Fatalf("gauge %s = %g outside [0, 1]", key, v)
			}
		}
	}
	if !found {
		t.Fatalf("no %s series in the scheduler registry", MetricDeviceUtilization)
	}
}

// Invalid specs are rejected at Submit, not at run time.
func TestSubmitValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	cases := []JobSpec{
		{},
		{Decomp: Cholesky, A: ftla.Random(4, 6, 1)},
		{Decomp: Decomp(9), A: ftla.RandomSPD(16, 1)},
		{Decomp: LU, A: ftla.RandomSPD(16, 1), B: make([]float64, 3)},
	}
	for i, spec := range cases {
		if _, err := s.Submit(context.Background(), spec); err == nil {
			t.Fatalf("case %d: invalid spec accepted", i)
		}
	}
}

// Concurrent mixed traffic drains cleanly under -race: many goroutines
// submitting all three decompositions at mixed priorities, with cache hits
// and pool reuse in play.
func TestConcurrentMixedTraffic(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 128})
	mats := []*ftla.Matrix{ftla.RandomSPD(48, 1), ftla.RandomSPD(48, 2)}
	gen := []*ftla.Matrix{ftla.RandomDiagDominant(48, 3), ftla.Random(48, 48, 4)}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := JobSpec{Priority: Priority(i % int(numPriorities)), Config: ftla.Config{NB: 16}}
			switch i % 3 {
			case 0:
				spec.Decomp, spec.A = Cholesky, mats[i%2]
			case 1:
				spec.Decomp, spec.A = LU, gen[0]
			default:
				spec.Decomp, spec.A = QR, gen[1]
			}
			h, err := s.Submit(context.Background(), spec)
			if err != nil {
				errs <- err
				return
			}
			if _, err := h.Wait(context.Background()); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	// The concurrent wave alone cannot guarantee a cache hit: under -race
	// the workers run slowly enough that every duplicate may still be
	// queued when its twin completes, and queued duplicates coalesce into
	// batched dispatches instead of hitting the cache. One more duplicate
	// after the wave drains is deterministic — its result is cached.
	h, err := s.Submit(context.Background(), JobSpec{Decomp: Cholesky, A: mats[0], Config: ftla.Config{NB: 16}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	s.Close()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Completed != 25 {
		t.Fatalf("completed %d/25 (stats %+v)", st.Completed, st)
	}
	if st.CacheHits == 0 {
		t.Fatal("repeated operators produced no cache hits")
	}
}

// A sanity check that the injector fixture corrupts through the raw fault
// package too (guards against the fixture silently rotting if fault
// scheduling semantics change).
func TestCorruptingInjectorFires(t *testing.T) {
	inj := corruptingInjector(t)
	s := New(Config{Workers: 1, Retry: RetryPolicy{MaxAttempts: 1}})
	defer s.Close()
	h, err := s.Submit(context.Background(), corruptibleSpec(inj))
	if err != nil {
		t.Fatal(err)
	}
	h.Wait(context.Background())
	if got := len(inj.Events()); got != 2 {
		t.Fatalf("injector fired %d faults, want 2: %v", got, inj.Events())
	}
}

// The observability contract: a traced job carries a Chrome-exportable
// trace with spans from both clocks, and the scheduler's registry reflects
// the same run under the documented metric names.
func TestJobTraceAndRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Workers: 1, Registry: reg})
	defer s.Close()
	if s.Registry() != reg {
		t.Fatal("Registry must return the configured registry")
	}
	spec := JobSpec{
		Decomp: Cholesky, A: ftla.RandomSPD(64, 11),
		Config: ftla.Config{NB: 32, Protection: ftla.FullChecksum, Scheme: ftla.NewScheme},
		Trace:  true, NoCache: true,
	}
	h, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Trace.Len() == 0 {
		t.Fatal("traced job must carry a non-empty trace")
	}
	var wall, sim bool
	for _, sp := range res.Trace.Spans() {
		switch sp.Proc {
		case obs.ProcWall:
			wall = true
		case obs.ProcSim:
			sim = true
		}
	}
	if !wall || !sim {
		t.Fatalf("trace must span both clocks: wall=%v sim=%v", wall, sim)
	}
	var b bytes.Buffer
	if err := res.Trace.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(b.Bytes()) {
		t.Fatal("trace export is not valid JSON")
	}

	snap := reg.Snapshot()
	if got := snap.CounterValue(MetricJobsCompleted); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricJobsCompleted, got)
	}
	okey := obs.Key(MetricJobOutcomes, "outcome", "fault-free")
	if got := snap.CounterValue(okey); got != 1 {
		t.Fatalf("%s = %d, want 1 (counters: %v)", okey, got, snap.Counters)
	}
	if hs := snap.Histograms[MetricJobRunSeconds]; hs.Count != 1 || hs.Sum <= 0 {
		t.Fatalf("run-seconds histogram: %+v", hs)
	}
	// An untraced job must not pay for tracing.
	h2, err := s.Submit(context.Background(), JobSpec{
		Decomp: Cholesky, A: ftla.RandomSPD(64, 12),
		Config: ftla.Config{NB: 32}, NoCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := h2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Trace != nil {
		t.Fatal("untraced job must carry no trace")
	}
}

// Two schedulers with default (nil) Registry configs must not share
// counters — the per-scheduler isolation that keeps concurrent tests from
// contaminating each other.
func TestSchedulerRegistriesIsolated(t *testing.T) {
	s1 := New(Config{Workers: 1})
	defer s1.Close()
	s2 := New(Config{Workers: 1})
	defer s2.Close()
	if s1.Registry() == s2.Registry() {
		t.Fatal("default registries must be private per scheduler")
	}
	h, err := s1.Submit(context.Background(), JobSpec{
		Decomp: Cholesky, A: ftla.RandomSPD(32, 5), Config: ftla.Config{NB: 16}, NoCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := s1.Stats().Completed; got != 1 {
		t.Fatalf("s1 completed = %d, want 1", got)
	}
	if got := s2.Stats().Completed; got != 0 {
		t.Fatalf("s2 completed = %d, want 0", got)
	}
}
