package service

// Chaos coverage for the reliable-transfer layer: PCIe link faults below
// the factorization (scripts/check.sh runs the storm and recovery tests
// with -race). The serving-layer contract extends to links: transient wire
// faults are absorbed by retransmission and never reach the job, a link
// that exhausts its budget is treated like a lost device (quarantine +
// degraded failover), and a tampered checkpoint is never resumed.

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"ftla"
	"ftla/internal/hetsim"
	"ftla/internal/matrix"
	"ftla/internal/obs"
)

// linkSpec is chaosSpec with a link-fault plan armed instead of a device
// fault plan.
func linkSpec(seed uint64, lf map[int]ftla.LinkFaultPlan) JobSpec {
	spec := chaosSpec(seed, nil)
	spec.Config.LinkFault = lf
	return spec
}

// TestChaosLinkExhaustionFailsOverToDegradedSystem is the link-layer
// headline: GPU 2's link flaps longer than the retransmission budget, the
// attempt aborts with a typed link error, the pool quarantines the system
// with GPU 2 suspect, and the retry completes on a degraded 3-GPU platform
// — the same failover a dead card gets, because a flaky connector is
// indistinguishable from one host-side.
func TestChaosLinkExhaustionFailsOverToDegradedSystem(t *testing.T) {
	s := New(Config{Workers: 1, Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond}})
	defer s.Close()

	spec := linkSpec(31, map[int]ftla.LinkFaultPlan{
		2: {Mode: ftla.LinkFlap, Count: 20},
	})
	h, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait(context.Background())
	if err != nil {
		t.Fatalf("job failed: %v", err)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one lost to the link, one degraded rerun)", res.Attempts)
	}
	if got := res.Factors.Report().GPUs; got != 3 {
		t.Fatalf("winning attempt ran on %d GPUs, want 3 (degraded from 4)", got)
	}
	if res.Residual > 1e-9 {
		t.Fatalf("failover produced a wrong factor: residual %g", res.Residual)
	}
	st := s.Stats()
	if st.LinkLost != 1 {
		t.Fatalf("Stats.LinkLost = %d, want 1", st.LinkLost)
	}
	if st.DeviceLost != 0 {
		t.Fatalf("Stats.DeviceLost = %d, want 0 (no device died; the link did)", st.DeviceLost)
	}
	if st.Quarantined != 1 {
		t.Fatalf("Stats.Quarantined = %d, want 1", st.Quarantined)
	}
	if st.Retries != 1 {
		t.Fatalf("Stats.Retries = %d, want 1", st.Retries)
	}
}

// TestChaosLinkExhaustionSurfacesTypedError: with no retries left, the job
// terminates with a *FailStopError wrapping the typed *hetsim.LinkError —
// the caller can tell a dead link from a dead device.
func TestChaosLinkExhaustionSurfacesTypedError(t *testing.T) {
	s := New(Config{Workers: 1, Retry: RetryPolicy{MaxAttempts: 1}})
	defer s.Close()

	spec := linkSpec(32, map[int]ftla.LinkFaultPlan{
		0: {Mode: ftla.LinkFlap, Count: 20},
	})
	h, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	_, err = h.Wait(context.Background())
	var fse *FailStopError
	if !errors.As(err, &fse) {
		t.Fatalf("err = %v, want *FailStopError", err)
	}
	var le *hetsim.LinkError
	if !errors.As(err, &le) {
		t.Fatalf("FailStopError does not wrap the link fault: %v", err)
	}
	if le.Link != 0 || le.Retries != hetsim.DefaultMaxRetransmits {
		t.Fatalf("LinkError = %+v, want Link=0 Retries=%d", le, hetsim.DefaultMaxRetransmits)
	}
}

// TestChaosTransientLinkFaultsAbsorbedBelowJob: corruption and single
// drops on a link never surface to the serving layer at all — the
// retransmission protocol absorbs them on the first attempt, visible only
// in the retransmit counter.
func TestChaosTransientLinkFaultsAbsorbedBelowJob(t *testing.T) {
	s := New(Config{Workers: 1, Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond}})
	defer s.Close()

	before := obs.Default().Snapshot()
	spec := linkSpec(33, map[int]ftla.LinkFaultPlan{
		1: {Mode: ftla.LinkCorrupt, AfterTransfers: 2, Every: 6},
		3: {Mode: ftla.LinkDrop, AfterTransfers: 5},
	})
	h, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait(context.Background())
	if err != nil {
		t.Fatalf("job failed: %v", err)
	}
	if res.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (transient faults must be absorbed below the job)", res.Attempts)
	}
	if res.Residual > 1e-9 {
		t.Fatalf("wrong factor under absorbed link faults: residual %g", res.Residual)
	}
	d := obs.Default().Snapshot().Diff(before)
	if d.CounterValue(obs.MetricTransferRetransmits) == 0 {
		t.Fatal("no retransmissions recorded: the armed faults never fired")
	}
	if st := s.Stats(); st.LinkLost != 0 || st.Retries != 0 {
		t.Fatalf("LinkLost/Retries = %d/%d, want 0/0", st.LinkLost, st.Retries)
	}
}

// TestChaosCheckpointTamperFallsBackToRestart: a job loses a GPU with
// checkpoints in hand, but a user OnCheckpoint hook has tampered with the
// snapshot the scheduler captured. The resume attempt must be rejected by
// the integrity check — never silently replayed — and the scheduler falls
// back to a clean restart that still completes the job.
func TestChaosCheckpointTamperFallsBackToRestart(t *testing.T) {
	s := New(Config{Workers: 1, Retry: RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond}})
	defer s.Close()

	before := obs.Default().Snapshot()
	spec := chaosSpec(34, map[int]ftla.FailStopPlan{
		3: {Mode: ftla.FailCrash, AfterOps: 20},
	})
	spec.Config.CheckpointEvery = 1
	spec.Config.OnCheckpoint = func(cp *ftla.Checkpoint) {
		cp.Data[0].Row(0)[0] += 1 // sabotage the snapshot the scheduler holds
	}

	h, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait(context.Background())
	if err != nil {
		t.Fatalf("job failed: %v", err)
	}
	if res.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (crash, rejected resume, clean restart)", res.Attempts)
	}
	if res.Resumed != 1 {
		t.Fatalf("JobResult.Resumed = %d, want 1 (the rejected resume attempt)", res.Resumed)
	}
	if got := res.Factors.Report().GPUs; got != 3 {
		t.Fatalf("winning attempt ran on %d GPUs, want 3", got)
	}
	if res.Residual > 1e-9 {
		t.Fatalf("restart produced a wrong factor: residual %g", res.Residual)
	}
	st := s.Stats()
	if st.Resumed != 1 || st.Restarts != 1 {
		t.Fatalf("Resumed/Restarts = %d/%d, want 1/1 (resume granted, rejected, restart granted)",
			st.Resumed, st.Restarts)
	}
	d := obs.Default().Snapshot().Diff(before)
	if d.CounterValue(obs.MetricCheckpointIntegrityFailures) == 0 {
		t.Fatal("tampered checkpoint was not rejected by the integrity check")
	}
}

// TestChaosLinkFaultStorm is the randomized link-layer campaign: corrupt,
// drop, flap, and degrade plans on random links across a fleet of
// concurrent jobs. Transient faults must be absorbed, exhausted links must
// fail over, every job must reach a verified terminal state, and the
// scheduler must wind down without leaking goroutines.
func TestChaosLinkFaultStorm(t *testing.T) {
	before := runtime.NumGoroutine()
	snap := obs.Default().Snapshot()

	s := New(Config{
		Workers: 4,
		Retry:   RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond},
		Seed:    88,
	})

	rng := matrix.NewRNG(2027)
	const jobs = 24
	handles := make([]*JobHandle, 0, jobs)
	for i := 0; i < jobs; i++ {
		var lf map[int]ftla.LinkFaultPlan
		switch rng.Intn(5) {
		case 0: // clean control
		case 1:
			lf = map[int]ftla.LinkFaultPlan{rng.Intn(4): {
				Mode: ftla.LinkCorrupt, AfterTransfers: rng.Intn(12), Every: 4 + rng.Intn(8),
			}}
		case 2:
			lf = map[int]ftla.LinkFaultPlan{rng.Intn(4): {
				Mode: ftla.LinkDrop, AfterTransfers: rng.Intn(12),
			}}
		case 3:
			// Count spans both sides of the retransmission budget: short
			// flaps are absorbed, long ones exhaust and fail over.
			lf = map[int]ftla.LinkFaultPlan{rng.Intn(4): {
				Mode: ftla.LinkFlap, Count: 1 + rng.Intn(8),
			}}
		case 4:
			lf = map[int]ftla.LinkFaultPlan{rng.Intn(4): {
				Mode: ftla.LinkDegrade, Factor: 2 + float64(rng.Intn(6)),
			}}
		}
		h, err := s.Submit(context.Background(), linkSpec(uint64(500+i), lf))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, h := range handles {
		wg.Add(1)
		go func(i int, h *JobHandle) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			res, err := h.Wait(ctx)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				// Exhausted links retry on a clean platform, so with
				// attempts to spare every job must land a verified result.
				t.Errorf("job %d failed: %v", i, err)
				return
			}
			if res.Residual > 1e-9 {
				t.Errorf("job %d: silently wrong result, residual %g", i, res.Residual)
			}
		}(i, h)
	}
	wg.Wait()
	s.Close()

	st := s.Stats()
	if got := int(st.Completed + st.Failed + st.Canceled); got != jobs {
		t.Fatalf("terminal states %d != jobs %d (some job vanished)", got, jobs)
	}
	d := obs.Default().Snapshot().Diff(snap)
	if d.CounterValue(obs.MetricTransferRetransmits) == 0 {
		t.Fatal("storm issued no retransmissions: the link faults never fired")
	}
	t.Logf("link storm: retransmits=%d linkLost=%d quarantined=%d retries=%d",
		d.CounterValue(obs.MetricTransferRetransmits), st.LinkLost, st.Quarantined, st.Retries)

	// Goroutine-leak check, same settle loop as TestChaosStorm.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before storm, %d after settle", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
