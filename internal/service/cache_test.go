package service

import (
	"math"
	"testing"
	"time"

	"ftla/internal/matrix"
	"ftla/internal/obs"
)

func fp(t *testing.T, d Decomp, seed uint64) fingerprint {
	t.Helper()
	return fingerprintOf(d, matrix.Random(8, 8, matrix.NewRNG(seed)))
}

func TestFingerprintDiscriminates(t *testing.T) {
	a := matrix.Random(8, 8, matrix.NewRNG(1))
	if fingerprintOf(Cholesky, a) != fingerprintOf(Cholesky, a.Clone()) {
		t.Fatal("identical matrices must fingerprint equal")
	}
	if fingerprintOf(Cholesky, a) == fingerprintOf(LU, a) {
		t.Fatal("decomposition kind must separate keys")
	}
	b := a.Clone()
	b.Set(3, 4, math.Nextafter(b.At(3, 4), 2)) // even a last-bit change is a different operator
	if fingerprintOf(Cholesky, a) == fingerprintOf(Cholesky, b) {
		t.Fatal("element change must change the fingerprint")
	}
	// A strided view must hash its visible window, not the backing array.
	v := a.View(0, 0, 4, 4)
	tight := matrix.NewDense(4, 4)
	tight.CopyFrom(v)
	if fingerprintOf(Cholesky, v) != fingerprintOf(Cholesky, tight) {
		t.Fatal("view and tight copy of the same window must fingerprint equal")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newFactorCache(2, newMetrics(obs.NewRegistry()))
	f := &Factorization{Decomp: Cholesky}
	k1, k2, k3 := fp(t, Cholesky, 1), fp(t, Cholesky, 2), fp(t, Cholesky, 3)
	c.put(k1, f)
	c.put(k2, f)
	if _, ok := c.get(k1); !ok { // touch k1: k2 becomes LRU
		t.Fatal("k1 missing")
	}
	c.put(k3, f) // evicts k2
	if _, ok := c.get(k2); ok {
		t.Fatal("k2 should have been evicted")
	}
	for _, k := range []fingerprint{k1, k3} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%v evicted, want retained", k)
		}
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	hits, misses := c.met.cacheHits.Value(), c.met.cacheMisses.Value()
	if hits != 3 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 3/1", hits, misses)
	}
	if got := c.met.cacheEntries.Value(); got != 2 {
		t.Fatalf("entries gauge = %d, want 2", got)
	}
}

func TestCachePutRefreshesExisting(t *testing.T) {
	c := newFactorCache(2, newMetrics(obs.NewRegistry()))
	k := fp(t, LU, 7)
	f1, f2 := &Factorization{Decomp: LU}, &Factorization{Decomp: LU, Residual: 1}
	c.put(k, f1)
	c.put(k, f2)
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1 after refresh", c.len())
	}
	if got, _ := c.get(k); got != f2 {
		t.Fatal("refresh did not replace the entry")
	}
}

func TestRetryBackoffCapped(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 40 * time.Millisecond}.normalize()
	// jitter 0.5 is the midpoint of the ±50% envelope: the nominal delay.
	want := []time.Duration{5, 10, 20, 40, 40, 40}
	for i, w := range want {
		if got := p.Backoff(i+1, 0.5); got != w*time.Millisecond {
			t.Fatalf("Backoff(%d, 0.5) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}

func TestRetryBackoffJitterEnvelope(t *testing.T) {
	p := DefaultRetryPolicy()
	nominal := p.BaseBackoff
	// Full ±50% jitter: jitter 0 halves the nominal delay; jitter → 1
	// approaches 1.5x. Out-of-range variates clamp into the envelope.
	if got := p.Backoff(1, 0); got != nominal/2 {
		t.Fatalf("Backoff(1, 0) = %v, want %v", got, nominal/2)
	}
	lo, hi := nominal/2, nominal*3/2
	for _, j := range []float64{0, 0.25, 0.5, 0.75, 0.999, -3, 7} {
		got := p.Backoff(1, j)
		if got < lo || got > hi {
			t.Fatalf("Backoff(1, %v) = %v outside envelope [%v, %v]", j, got, lo, hi)
		}
	}
	// Deterministic under a seeded source: the same variate stream gives
	// the same delays.
	r1, r2 := matrix.NewRNG(9), matrix.NewRNG(9)
	for i := 1; i <= 5; i++ {
		if a, b := p.Backoff(i, r1.Float64()), p.Backoff(i, r2.Float64()); a != b {
			t.Fatalf("retry %d: same seed gave %v vs %v", i, a, b)
		}
	}
}

func TestRetryPolicyDefaults(t *testing.T) {
	p := RetryPolicy{}.normalize()
	d := DefaultRetryPolicy()
	if p != d {
		t.Fatalf("zero policy normalized to %+v, want %+v", p, d)
	}
	if p.MaxAttempts < 2 {
		t.Fatal("default policy must actually retry")
	}
}
