package service

import (
	"sync"

	"ftla/internal/hetsim"
)

// Circuit-breaker thresholds for the pool's health tracking.
const (
	// poolMaxConsecFails is the consecutive-failure count at which a
	// system is quarantined even without a device loss — the pattern of a
	// node that keeps producing corrupt results.
	poolMaxConsecFails = 3
	// poolProbeAfter is how many acquires on a platform must pass between
	// probation probes: after that many grants, the next acquire re-admits
	// one quarantined system (repaired by Reset) instead of an idle one.
	poolProbeAfter = 8
)

// systemPool reuses hetsim.System instances across jobs, keyed by platform
// configuration (jobs may request different GPU counts or speeds). A
// released system has its device-utilization harvested into the pool's
// aggregate, is Reset to a like-new state, and becomes available to the
// next job on the same platform; the per-job cost of simulator construction
// is paid only on pool misses.
//
// The pool is also the service's circuit breaker for fail-stop faults. A
// system whose job aborted with a device loss is quarantined immediately;
// a system that keeps failing jobs without losing a device is quarantined
// after poolMaxConsecFails consecutive failures. Quarantined systems are
// held out of circulation, counted by the ftla_pool_quarantined gauge, and
// re-admitted on probation: every poolProbeAfter acquires on the same
// platform, one quarantined system is repaired (Reset — which revives lost
// simulated devices, modeling node repair) and handed out as the probe. A
// probe that fails again goes straight back to quarantine.
type systemPool struct {
	mu   sync.Mutex
	idle map[hetsim.Config][]*hetsim.System
	// maxIdlePer bounds retained idle systems per platform so a burst of
	// heterogeneous configs cannot pin memory forever.
	maxIdlePer int

	met     *metrics           // created/reused land in the scheduler registry
	devSecs map[string]float64 // aggregated busy seconds by device name
	mkSecs  float64            // aggregated logical makespan across released systems

	// Circuit-breaker state.
	health map[*hetsim.System]int             // consecutive failures per live system
	quar   map[hetsim.Config][]*hetsim.System // held-out systems per platform
	grants map[hetsim.Config]int              // acquires since the last probe

	// suspect remembers, for a system quarantined by a device fault, which
	// GPU index was implicated — so the scheduler can hand the re-admitted
	// probation probe to the rebalancer as a suspect (it re-enters the
	// workforce with a floor share instead of full width; see
	// ftla.RebalanceConfig.Suspect). -1/absent means no specific device.
	suspect map[*hetsim.System]int
}

func newSystemPool(maxIdlePer int, met *metrics) *systemPool {
	if maxIdlePer <= 0 {
		maxIdlePer = 4
	}
	return &systemPool{
		idle:       make(map[hetsim.Config][]*hetsim.System),
		maxIdlePer: maxIdlePer,
		met:        met,
		devSecs:    make(map[string]float64),
		health:     make(map[*hetsim.System]int),
		quar:       make(map[hetsim.Config][]*hetsim.System),
		grants:     make(map[hetsim.Config]int),
		suspect:    make(map[*hetsim.System]int),
	}
}

// acquire returns a clean system for the platform: a probation probe when
// one is due, else an idle system, else a fresh construction.
func (p *systemPool) acquire(cfg hetsim.Config) *hetsim.System {
	p.mu.Lock()
	p.grants[cfg]++
	if q := p.quar[cfg]; len(q) > 0 && p.grants[cfg] > poolProbeAfter {
		sys := q[len(q)-1]
		p.quar[cfg] = q[:len(q)-1]
		p.grants[cfg] = 0
		p.mu.Unlock()
		p.met.quarantined.Add(-1)
		p.met.sysReused.Inc()
		sys.Reset() // repair: revives lost devices, clears armed plans
		return sys
	}
	if q := p.idle[cfg]; len(q) > 0 {
		sys := q[len(q)-1]
		p.idle[cfg] = q[:len(q)-1]
		p.mu.Unlock()
		p.met.sysReused.Inc()
		return sys
	}
	p.mu.Unlock()
	p.met.sysCreated.Inc()
	return hetsim.New(cfg)
}

// release returns a healthy system after a successful job: utilization is
// harvested, the failure streak cleared, and the system shelved for reuse
// (or dropped if the shelf is full).
func (p *systemPool) release(sys *hetsim.System) {
	p.harvest(sys)
	p.mu.Lock()
	delete(p.health, sys)
	p.shelveLocked(sys)
	p.mu.Unlock()
}

// fail returns a system whose job attempt failed without a device loss.
// The failure streak grows; at poolMaxConsecFails the breaker opens and
// the system is quarantined instead of shelved.
func (p *systemPool) fail(sys *hetsim.System) {
	p.harvest(sys)
	p.mu.Lock()
	p.health[sys]++
	if p.health[sys] >= poolMaxConsecFails {
		delete(p.health, sys)
		p.quarLocked(sys)
		p.mu.Unlock()
		p.met.quarantined.Add(1)
		return
	}
	p.shelveLocked(sys)
	p.mu.Unlock()
}

// quarantine holds a system out of circulation immediately — the reaction
// to a fail-stop device fault, where reuse without repair is unsafe.
func (p *systemPool) quarantine(sys *hetsim.System) {
	p.harvest(sys)
	p.mu.Lock()
	delete(p.health, sys)
	p.quarLocked(sys)
	p.mu.Unlock()
	p.met.quarantined.Add(1)
}

// quarantineSuspect is quarantine plus a note of which GPU index was
// implicated in the fault. When the system is later re-admitted as a
// probation probe, takeSuspect surfaces the index so the scheduler can
// start the probe's run with that GPU at the rebalancer's floor share —
// a recurring straggler then costs a sliver of throughput instead of a
// blown makespan. gpu < 0 records no suspect (plain quarantine).
func (p *systemPool) quarantineSuspect(sys *hetsim.System, gpu int) {
	if gpu >= 0 {
		p.mu.Lock()
		p.suspect[sys] = gpu
		p.mu.Unlock()
	}
	p.quarantine(sys)
}

// takeSuspect returns and clears the suspect GPU index recorded when sys
// was last quarantined by a device fault, or -1. Callers invoke it on
// every acquire: only a re-admitted probation probe can carry one.
func (p *systemPool) takeSuspect(sys *hetsim.System) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	g, ok := p.suspect[sys]
	if !ok {
		return -1
	}
	delete(p.suspect, sys)
	return g
}

// harvest folds the system's device utilization and logical makespan into
// the pool aggregate, refreshes the ftla_device_utilization gauges, and
// Resets the system (detaching per-run attachments: tracer, bound context,
// fault plans, transfer hooks).
func (p *systemPool) harvest(sys *hetsim.System) {
	stats := sys.Utilization()
	mk := sys.TimelineMakespan()
	sys.Reset()
	p.mu.Lock()
	for _, st := range stats {
		p.devSecs[st.Name] += st.SimSecs
	}
	p.mkSecs += mk
	util := make(map[string]float64, len(p.devSecs))
	if p.mkSecs > 0 {
		for name, secs := range p.devSecs {
			util[name] = secs / p.mkSecs
		}
	}
	p.mu.Unlock()
	for name, u := range util {
		p.met.deviceUtil.With(name).Set(u)
	}
}

// shelveLocked parks a system on the idle shelf; callers hold p.mu.
func (p *systemPool) shelveLocked(sys *hetsim.System) {
	cfg := sys.Config()
	if q := p.idle[cfg]; len(q) < p.maxIdlePer {
		p.idle[cfg] = append(q, sys)
	}
}

// quarLocked parks a system on the quarantine list and restarts the
// platform's probation clock, so the breaker stays open for a full
// poolProbeAfter grants from the quarantine event; callers hold p.mu and
// update the gauge after unlocking.
func (p *systemPool) quarLocked(sys *hetsim.System) {
	cfg := sys.Config()
	p.quar[cfg] = append(p.quar[cfg], sys)
	p.grants[cfg] = 0
}

// quarantined reports the number of systems currently held out.
func (p *systemPool) quarantined() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, q := range p.quar {
		n += len(q)
	}
	return n
}

// utilization snapshots the aggregated per-device busy seconds (including
// the PCIe pseudo-device), with shares of the total and overlap
// utilizations against the aggregated logical makespan — the fleet-wide
// equivalent of hetsim.System.Utilization.
func (p *systemPool) utilization() []hetsim.DeviceStat {
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, 0, len(p.devSecs))
	for name := range p.devSecs {
		names = append(names, name)
	}
	// Stable order: CPU, GPUs by name, PCIe last (lexical order happens to
	// give CPU < GPUn < PCIe, which reads naturally).
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	out := make([]hetsim.DeviceStat, 0, len(names))
	total := 0.0
	for _, name := range names {
		out = append(out, hetsim.DeviceStat{Name: name, SimSecs: p.devSecs[name]})
		total += p.devSecs[name]
	}
	if total > 0 {
		for i := range out {
			out[i].Share = out[i].SimSecs / total
		}
	}
	if p.mkSecs > 0 {
		for i := range out {
			out[i].Util = out[i].SimSecs / p.mkSecs
		}
	}
	return out
}
