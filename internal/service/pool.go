package service

import (
	"sync"

	"ftla/internal/hetsim"
)

// systemPool reuses hetsim.System instances across jobs, keyed by platform
// configuration (jobs may request different GPU counts or speeds). A
// released system has its device-utilization harvested into the pool's
// aggregate, is Reset to a like-new state, and becomes available to the
// next job on the same platform; the per-job cost of simulator construction
// is paid only on pool misses.
type systemPool struct {
	mu   sync.Mutex
	idle map[hetsim.Config][]*hetsim.System
	// maxIdlePer bounds retained idle systems per platform so a burst of
	// heterogeneous configs cannot pin memory forever.
	maxIdlePer int

	met     *metrics           // created/reused land in the scheduler registry
	devSecs map[string]float64 // aggregated busy seconds by device name
}

func newSystemPool(maxIdlePer int, met *metrics) *systemPool {
	if maxIdlePer <= 0 {
		maxIdlePer = 4
	}
	return &systemPool{
		idle:       make(map[hetsim.Config][]*hetsim.System),
		maxIdlePer: maxIdlePer,
		met:        met,
		devSecs:    make(map[string]float64),
	}
}

// acquire returns a clean system for the platform, reusing an idle one when
// available.
func (p *systemPool) acquire(cfg hetsim.Config) *hetsim.System {
	p.mu.Lock()
	if q := p.idle[cfg]; len(q) > 0 {
		sys := q[len(q)-1]
		p.idle[cfg] = q[:len(q)-1]
		p.mu.Unlock()
		p.met.sysReused.Inc()
		return sys
	}
	p.mu.Unlock()
	p.met.sysCreated.Inc()
	return hetsim.New(cfg)
}

// release harvests the system's device utilization into the pool aggregate,
// resets it, and shelves it for reuse (or drops it if the shelf is full).
func (p *systemPool) release(sys *hetsim.System) {
	stats := sys.Utilization()
	sys.Reset()
	cfg := sys.Config()
	p.mu.Lock()
	for _, st := range stats {
		p.devSecs[st.Name] += st.SimSecs
	}
	if q := p.idle[cfg]; len(q) < p.maxIdlePer {
		p.idle[cfg] = append(q, sys)
	}
	p.mu.Unlock()
}

// utilization snapshots the aggregated per-device busy seconds (including
// the PCIe pseudo-device), with shares of the total — the fleet-wide
// equivalent of hetsim.System.Utilization.
func (p *systemPool) utilization() []hetsim.DeviceStat {
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, 0, len(p.devSecs))
	for name := range p.devSecs {
		names = append(names, name)
	}
	// Stable order: CPU, GPUs by name, PCIe last (lexical order happens to
	// give CPU < GPUn < PCIe, which reads naturally).
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	out := make([]hetsim.DeviceStat, 0, len(names))
	total := 0.0
	for _, name := range names {
		out = append(out, hetsim.DeviceStat{Name: name, SimSecs: p.devSecs[name]})
		total += p.devSecs[name]
	}
	if total > 0 {
		for i := range out {
			out[i].Share = out[i].SimSecs / total
		}
	}
	return out
}
