package service

import (
	"context"
	"time"

	"ftla"
)

// runBatch drives one coalesced dispatch: hs are same-key jobs (see
// JobSpec.batchKey) gathered by the worker. The dispatch makes exactly one
// batched attempt for the jobs that need a factorization — per-item cache
// hits and expired contexts are settled first — and fans the per-item
// outcomes back out. Isolation is per item throughout: a job whose item
// corrupted (DetectedCorrupt, or a silent corruption caught by the
// residual check), errored, or whose whole batch attempt failed falls back
// to the solo retry path alone, with the batch attempt counted in its
// attempt budget; its batchmates keep their completed results.
func (s *Scheduler) runBatch(hs []*JobHandle) {
	size := len(hs)
	dispatch := time.Now()
	s.met.batchDispatches.Inc()
	s.met.batchSize.Observe(float64(size))
	s.met.batchCoalesced.Add(uint64(size))
	for _, h := range hs {
		h.coalesced = size
	}

	// Settle jobs that need no batched run: expired contexts finish
	// canceled, cache hits are served per item — the partial-cache path
	// that lets a coalesced batch run only its uncached items.
	var run []*JobHandle
	var keys []fingerprint
	for _, h := range hs {
		if err := h.ctx.Err(); err != nil {
			s.met.canceled.Inc()
			h.finish(nil, err)
			continue
		}
		var key fingerprint
		if !h.spec.NoCache {
			key = fingerprintOf(h.spec.Decomp, h.spec.A)
			if f, ok := s.cache.get(key); ok {
				s.finishBatchItem(h, f, 0, true, dispatch)
				continue
			}
		}
		run = append(run, h)
		keys = append(keys, key)
	}
	if len(run) == 0 {
		return
	}

	facts, errs, batchErr := s.runDecompositionBatch(run)
	if batchErr != nil {
		// The whole dispatch failed (an aborted attempt, or options the
		// batched drivers reject): every item retries solo, the batch
		// attempt counted against its budget.
		for _, h := range run {
			s.fallbackSolo(h)
		}
		return
	}
	for i, h := range run {
		switch {
		case errs[i] != nil:
			// Per-item driver error: the item is excluded; batchmates are
			// already factored. Retry it alone.
			s.fallbackSolo(h)
		case needsRestart(facts[i].Outcome):
			// The item's run is in the complete-restart bucket. Only this
			// item restarts — the per-item retry-isolation contract.
			s.fallbackSolo(h)
		default:
			if !h.spec.NoCache {
				s.cache.put(keys[i], facts[i])
			}
			s.finishBatchItem(h, facts[i], 1, false, dispatch)
		}
	}
}

// runDecompositionBatch executes the one batched attempt for the uncached
// jobs of a dispatch and classifies each item's outcome from its report
// plus the service's residual check. The per-item error slice is parallel
// to run; a non-nil batch-level error voids the whole attempt.
func (s *Scheduler) runDecompositionBatch(run []*JobHandle) ([]*Factorization, []error, error) {
	lead := run[0].spec
	cfg := lead.Config.Effective()
	// Injection is per item in the batched drivers; the shared Config must
	// not carry the leader's injector.
	cfg.Injector = nil
	as := make([]*ftla.Matrix, len(run))
	injs := make([]*ftla.Injector, len(run))
	anyInj := false
	for i, h := range run {
		as[i] = h.spec.A
		injs[i] = h.spec.Config.Injector
		anyInj = anyInj || injs[i] != nil
	}
	if !anyInj {
		injs = nil
	}

	actx, acancel := context.Background(), context.CancelFunc(func() {})
	if s.cfg.AttemptTimeout > 0 {
		actx, acancel = context.WithTimeout(context.Background(), s.cfg.AttemptTimeout)
	}
	defer acancel()
	sys := s.pool.acquire(cfg.SystemConfig())
	// A probation probe may carry a suspect GPU note; batched ladders cannot
	// rebalance, so just clear it rather than leak the entry.
	s.pool.takeSuspect(sys)
	sys.Bind(actx)

	facts := make([]*Factorization, len(run))
	errs := make([]error, len(run))
	var batchErr error
	switch lead.Decomp {
	case Cholesky:
		rs, es, err := ftla.CholeskyBatchOn(sys, as, cfg, injs...)
		batchErr = err
		for i := range run {
			if err != nil {
				break
			}
			if es[i] != nil {
				errs[i] = es[i]
				continue
			}
			resid := rs[i].Residual(as[i])
			facts[i] = &Factorization{
				Decomp: Cholesky, Chol: rs[i], Residual: resid,
				Outcome: rs[i].Report.OutcomeOf(resid <= run[i].spec.tol()),
			}
		}
	case LU:
		rs, es, err := ftla.LUBatchOn(sys, as, cfg, injs...)
		batchErr = err
		for i := range run {
			if err != nil {
				break
			}
			if es[i] != nil {
				errs[i] = es[i]
				continue
			}
			resid := rs[i].Residual(as[i])
			facts[i] = &Factorization{
				Decomp: LU, LU: rs[i], Residual: resid,
				Outcome: rs[i].Report.OutcomeOf(resid <= run[i].spec.tol()),
			}
		}
	default:
		rs, es, err := ftla.QRBatchOn(sys, as, cfg, injs...)
		batchErr = err
		for i := range run {
			if err != nil {
				break
			}
			if es[i] != nil {
				errs[i] = es[i]
				continue
			}
			resid := rs[i].Residual(as[i])
			facts[i] = &Factorization{
				Decomp: QR, QR: rs[i], Residual: resid,
				Outcome: rs[i].Report.OutcomeOf(resid <= run[i].spec.tol()),
			}
		}
	}
	s.pool.release(sys)
	return facts, errs, batchErr
}

// fallbackSolo retries one batch item alone on the ordinary solo path,
// charging the failed batch attempt to the job's budget and to the retry
// counters (a restart: the item reruns from scratch). The injector is
// stripped, exactly as the solo retry loop strips it for attempts beyond
// the first — the batch attempt was attempt one, and its transient is
// assumed not to recur.
func (s *Scheduler) fallbackSolo(h *JobHandle) {
	s.met.retries.Inc()
	s.met.restarts.Inc()
	h.prior++
	h.spec.Config.Injector = nil
	s.run(h)
}

// finishBatchItem settles one job of a coalesced dispatch with a completed
// factorization (fresh or cached), running its solve leg if the spec
// carried one.
func (s *Scheduler) finishBatchItem(h *JobHandle, f *Factorization, attempts int, cacheHit bool, dispatch time.Time) {
	wait := dispatch.Sub(h.enqueued)
	res := &JobResult{
		Outcome:   f.Outcome,
		Factors:   f,
		Residual:  f.Residual,
		Attempts:  h.prior + attempts,
		CacheHit:  cacheHit,
		Coalesced: h.coalesced,
		Wait:      wait,
	}
	if h.spec.B != nil {
		x, err := f.Solve(h.spec.B)
		if err != nil {
			s.met.failed.Inc()
			h.finish(nil, err)
			return
		}
		res.X = x
	}
	res.Run = time.Since(dispatch)
	s.met.jobDone(f.Outcome, wait, res.Run)
	h.finish(res, nil)
}
