package service

import (
	"container/list"
	"math"
	"sync"

	"ftla/internal/matrix"
)

// fingerprint identifies an operator for cache lookup: the decomposition
// kind plus an FNV-1a hash of the matrix order and exact element bits. The
// factor a decomposition produces is a function of the input values alone
// (protection mode, scheme, and platform only change how the same factor is
// computed and checked), so the key deliberately excludes the ftla.Config.
type fingerprint struct {
	decomp Decomp
	n      int
	hash   uint64
}

func fingerprintOf(d Decomp, a *matrix.Dense) fingerprint {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> uint(s)) & 0xff
			h *= prime64
		}
	}
	mix(uint64(a.Rows))
	mix(uint64(a.Cols))
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Stride : i*a.Stride+a.Cols]
		for _, v := range row {
			mix(math.Float64bits(v))
		}
	}
	return fingerprint{decomp: d, n: a.Rows, hash: h}
}

// factorCache is a bounded LRU of completed factorizations — the
// factor-once/solve-many fast path. Only survivable outcomes are admitted
// (the scheduler never caches a factor that needs a complete restart), so a
// hit can serve Solve requests without rerunning the decomposition.
type factorCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[fingerprint]*list.Element

	met *metrics // hit/miss counters and the entries gauge live in the scheduler registry
}

type cacheEntry struct {
	key fingerprint
	f   *Factorization
}

func newFactorCache(capacity int, met *metrics) *factorCache {
	if capacity <= 0 {
		capacity = 64
	}
	return &factorCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[fingerprint]*list.Element),
		met:     met,
	}
}

// get returns the cached factorization for key, promoting it to most
// recently used.
func (c *factorCache) get(key fingerprint) (*Factorization, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.met.cacheMisses.Inc()
		return nil, false
	}
	c.met.cacheHits.Inc()
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).f, true
}

// put inserts (or refreshes) a factorization, evicting the least recently
// used entry when over capacity.
func (c *factorCache) put(key fingerprint, f *Factorization) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).f = f
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, f: f})
	if c.order.Len() > c.cap {
		lru := c.order.Back()
		c.order.Remove(lru)
		delete(c.entries, lru.Value.(*cacheEntry).key)
	}
	c.met.cacheEntries.Set(int64(c.order.Len()))
}

func (c *factorCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
