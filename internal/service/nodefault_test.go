package service

// Cluster chaos coverage: whole-node losses on multi-node topologies
// (scripts/check.sh runs TestNodeLossRecoveryGate with -race). The serving
// contract for clusters has two rungs: a first node loss is absorbed BELOW
// the job by the erasure-coded parity — one attempt, reconstruction in the
// report, bit-exact factors — and a second loss (redundancy spent)
// surfaces a typed *hetsim.NodeLostError that engages the scheduler's
// node-failover ladder: quarantine the system, carve the dead node out of
// the platform, retry on the smaller cluster.

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"ftla"
	"ftla/internal/hetsim"
	"ftla/internal/matrix"
	"ftla/internal/obs"
)

// counterSum totals a counter family across its label values — labeled
// series snapshot under `name{label="v"}` keys, one per value.
func counterSum(s obs.Snapshot, name string) uint64 {
	var total uint64
	for k, v := range s.Counters {
		if k == name || strings.HasPrefix(k, name+"{") {
			total += v
		}
	}
	return total
}

// nodeSpec is a 3-GPU / 3-node Cholesky job; nf arms whole-node loss plans
// keyed by node index (nil = clean cluster run).
func nodeSpec(seed uint64, nf map[int]ftla.NodeFaultPlan) JobSpec {
	return JobSpec{
		Decomp: Cholesky,
		A:      ftla.RandomSPD(96, seed),
		Config: ftla.Config{
			GPUs: 3, NB: 16, Nodes: 3,
			NodeFault: nf,
		},
		NoCache: true,
	}
}

// TestChaosNodeLossAbsorbedBelowJob: one node loss on a 3-node cluster is
// repaired in place by parity reconstruction — the job completes on its
// first attempt, never touching the retry or failover machinery, with the
// recovery visible only in the report and the library metrics.
func TestChaosNodeLossAbsorbedBelowJob(t *testing.T) {
	s := New(Config{Workers: 1, Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond}})
	defer s.Close()

	before := obs.Default().Snapshot()
	spec := nodeSpec(41, map[int]ftla.NodeFaultPlan{1: {AfterEpochs: 2}})
	h, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait(context.Background())
	if err != nil {
		t.Fatalf("job failed: %v", err)
	}
	if res.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (node loss must be absorbed below the job)", res.Attempts)
	}
	rep := res.Factors.Report()
	if rep.NodesLost != 1 || rep.Reconstructions == 0 {
		t.Fatalf("report NodesLost/Reconstructions = %d/%d, want 1/>0",
			rep.NodesLost, rep.Reconstructions)
	}
	if res.Residual > 1e-9 {
		t.Fatalf("reconstruction produced a wrong factor: residual %g", res.Residual)
	}
	st := s.Stats()
	if st.NodeFailovers != 0 || st.Retries != 0 || st.Quarantined != 0 {
		t.Fatalf("failover machinery engaged for an absorbed loss: NodeFailovers=%d Retries=%d Quarantined=%d",
			st.NodeFailovers, st.Retries, st.Quarantined)
	}
	d := obs.Default().Snapshot().Diff(before)
	if counterSum(d, obs.MetricNodeLost) == 0 || counterSum(d, obs.MetricReconstructions) == 0 {
		t.Fatalf("library metrics missed the event: node_lost=%d reconstructions=%d",
			counterSum(d, obs.MetricNodeLost), counterSum(d, obs.MetricReconstructions))
	}
}

// TestChaosSecondNodeLossFailsOverToDegradedCluster: r=1 redundancy spends
// on the first loss; the second aborts the attempt with a typed node error,
// the pool quarantines the system, and the retry completes on a cluster one
// node smaller — the whole event visible in the service metrics.
func TestChaosSecondNodeLossFailsOverToDegradedCluster(t *testing.T) {
	s := New(Config{Workers: 1, Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond}})
	defer s.Close()

	spec := nodeSpec(42, map[int]ftla.NodeFaultPlan{
		1: {AfterEpochs: 1},
		2: {AfterEpochs: 2},
	})
	h, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait(context.Background())
	if err != nil {
		t.Fatalf("job failed: %v", err)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one lost to the second node fault, one degraded rerun)",
			res.Attempts)
	}
	if got := res.Factors.Report().GPUs; got != 2 {
		t.Fatalf("winning attempt ran on %d GPUs, want 2 (one node carved out of 3x1)", got)
	}
	if res.Residual > 1e-9 {
		t.Fatalf("failover produced a wrong factor: residual %g", res.Residual)
	}
	st := s.Stats()
	if st.NodeFailovers != 1 {
		t.Fatalf("Stats.NodeFailovers = %d, want 1", st.NodeFailovers)
	}
	if st.DeviceLost != 0 || st.LinkLost != 0 {
		t.Fatalf("node loss misclassified: DeviceLost=%d LinkLost=%d", st.DeviceLost, st.LinkLost)
	}
	if st.Quarantined != 1 || st.Retries != 1 {
		t.Fatalf("Quarantined/Retries = %d/%d, want 1/1", st.Quarantined, st.Retries)
	}
}

// TestChaosNodeLossExhaustionSurfacesTypedError: with no retries left the
// job terminates with a *FailStopError wrapping the typed node error — the
// caller can tell a dead node from a dead device or link.
func TestChaosNodeLossExhaustionSurfacesTypedError(t *testing.T) {
	s := New(Config{Workers: 1, Retry: RetryPolicy{MaxAttempts: 1}})
	defer s.Close()

	spec := nodeSpec(43, map[int]ftla.NodeFaultPlan{
		1: {AfterEpochs: 1},
		2: {AfterEpochs: 2},
	})
	h, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	_, err = h.Wait(context.Background())
	var fse *FailStopError
	if !errors.As(err, &fse) {
		t.Fatalf("err = %v, want *FailStopError", err)
	}
	var nle *hetsim.NodeLostError
	if !errors.As(err, &nle) {
		t.Fatalf("FailStopError does not wrap the node loss: %v", err)
	}
	if nle.Node != 2 || nle.GPUs != 1 {
		t.Fatalf("NodeLostError = %+v, want node 2 with 1 GPU", nle)
	}
}

// TestChaosDeviceLossOnClusterRetiresWholeNode: a single GPU dying on a
// multi-node platform cannot be carved out alone (the GPU count must stay
// divisible by the node count), so the failover retires the dead device's
// whole node. This also pins the structured-identity fix: the dead device
// reports the node-qualified name "N1/GPU1", which the old name-parsing
// classifier failed to recognize as a GPU at all.
func TestChaosDeviceLossOnClusterRetiresWholeNode(t *testing.T) {
	s := New(Config{Workers: 1, Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond}})
	defer s.Close()

	spec := nodeSpec(44, nil)
	spec.Config.FailStop = map[int]ftla.FailStopPlan{
		1: {Mode: ftla.FailCrash, AfterOps: 20},
	}
	h, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait(context.Background())
	if err != nil {
		t.Fatalf("job failed: %v", err)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", res.Attempts)
	}
	if got := res.Factors.Report().GPUs; got != 2 {
		t.Fatalf("winning attempt ran on %d GPUs, want 2 (GPU1's node retired)", got)
	}
	if res.Residual > 1e-9 {
		t.Fatalf("failover produced a wrong factor: residual %g", res.Residual)
	}
	if st := s.Stats(); st.DeviceLost != 1 || st.NodeFailovers != 0 {
		t.Fatalf("DeviceLost/NodeFailovers = %d/%d, want 1/0 (a device died, not a node)",
			st.DeviceLost, st.NodeFailovers)
	}
}

// TestGPUIndexParsesNodeQualifiedNames pins the display-name parser against
// both flat and node-qualified hetsim names.
func TestGPUIndexParsesNodeQualifiedNames(t *testing.T) {
	for _, tc := range []struct {
		name string
		want int
	}{
		{"GPU0", 0}, {"GPU2", 2}, {"GPU13", 13},
		{"N0/GPU2", 2}, {"N3/GPU11", 11},
		{"CPU", -1}, {"N0/CPU", -1}, {"PCIe", -1},
		{"GPU", -1}, {"GPUx", -1}, {"GPU-1", -1}, {"", -1},
	} {
		if got := gpuIndex(tc.name); got != tc.want {
			t.Errorf("gpuIndex(%q) = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestNodeLossRecoveryGate is the CI gate scripts/check.sh runs under
// -race: a fleet of cluster jobs on 3-node platforms where a third of the
// jobs lose one node mid-run (absorbed by parity) and a third lose two
// (failover ladder). At least 90% of the jobs must reach a completed
// result, and not one completed job may carry a silently wrong factor.
func TestNodeLossRecoveryGate(t *testing.T) {
	snap := obs.Default().Snapshot()
	s := New(Config{
		Workers: 4,
		Retry:   RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond},
		Seed:    99,
	})
	defer s.Close()

	const jobs = 18
	handles := make([]*JobHandle, 0, jobs)
	for i := 0; i < jobs; i++ {
		var nf map[int]ftla.NodeFaultPlan
		switch i % 3 {
		case 0: // clean control
		case 1: // one loss: absorbed by parity reconstruction
			nf = map[int]ftla.NodeFaultPlan{1 + i%2: {AfterEpochs: 1 + i%4}}
		case 2: // two losses: redundancy spent, failover ladder engages
			nf = map[int]ftla.NodeFaultPlan{
				1: {AfterEpochs: 1 + i%2},
				2: {AfterEpochs: 2 + i%2},
			}
		}
		h, err := s.Submit(context.Background(), nodeSpec(uint64(700+i), nf))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}

	var mu sync.Mutex
	completed, wrong := 0, 0
	var wg sync.WaitGroup
	for i, h := range handles {
		wg.Add(1)
		go func(i int, h *JobHandle) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			res, err := h.Wait(ctx)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				t.Logf("job %d did not complete: %v", i, err)
				return
			}
			completed++
			if res.Residual > 1e-9 {
				wrong++
				t.Errorf("job %d: silently wrong factor, residual %g", i, res.Residual)
			}
		}(i, h)
	}
	wg.Wait()

	if wrong != 0 {
		t.Fatalf("%d job(s) returned silently wrong factors", wrong)
	}
	if completed*10 < jobs*9 {
		t.Fatalf("only %d/%d jobs completed, gate requires >= 90%%", completed, jobs)
	}
	d := obs.Default().Snapshot().Diff(snap)
	if counterSum(d, obs.MetricNodeLost) == 0 {
		t.Fatal("gate fleet lost no nodes: the armed faults never fired")
	}
	if counterSum(d, obs.MetricReconstructions) == 0 {
		t.Fatal("no parity reconstructions recorded: every loss took the failover path")
	}
	if d.CounterValue(obs.MetricInternodeBytes) == 0 {
		t.Fatal("no inter-node traffic recorded on a 3-node fleet")
	}
	st := s.Stats()
	if st.NodeFailovers == 0 {
		t.Fatal("no node failovers recorded: the double-loss jobs never engaged the ladder")
	}
	t.Logf("node-loss gate: completed=%d/%d nodeFailovers=%d retries=%d reconstructions=%d",
		completed, jobs, st.NodeFailovers, st.Retries, counterSum(d, obs.MetricReconstructions))
}

// clusterSpec is a 4-GPU / 4-node Cholesky job carrying r parity columns
// per cross-node group; nf arms whole-node loss plans and lf PCIe link
// fault plans (nil = clean cluster run).
func clusterSpec(seed uint64, r int, nf map[int]ftla.NodeFaultPlan, lf map[int]ftla.LinkFaultPlan) JobSpec {
	return JobSpec{
		Decomp: Cholesky,
		A:      ftla.RandomSPD(96, seed),
		Config: ftla.Config{
			GPUs: 4, NB: 16, Nodes: 4, Redundancy: r,
			NodeFault: nf,
			LinkFault: lf,
		},
		NoCache: true,
	}
}

// TestMultiNodeLossRecoveryGate is the CI gate scripts/check.sh runs under
// -race: a fleet of r=2 cluster jobs on 4-node platforms where jobs lose
// one node, two nodes sequentially, or two nodes in one correlated burst —
// every loss inside the redundancy budget. At least 90% of the jobs must
// reach a completed result, not one completed job may carry a silently
// wrong factor, and because r=2 absorbs every armed loss below the job,
// the failover ladder must never engage.
func TestMultiNodeLossRecoveryGate(t *testing.T) {
	snap := obs.Default().Snapshot()
	s := New(Config{
		Workers: 4,
		Retry:   RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond},
		Seed:    101,
	})
	defer s.Close()

	const jobs = 16
	handles := make([]*JobHandle, 0, jobs)
	double := make(map[int]bool)
	for i := 0; i < jobs; i++ {
		var nf map[int]ftla.NodeFaultPlan
		switch i % 4 {
		case 0: // clean control
		case 1: // one loss: the first parity column absorbs it
			nf = map[int]ftla.NodeFaultPlan{1 + i%3: {AfterEpochs: 1 + i%4}}
		case 2: // two sequential losses: both absorbed at r=2
			nf = map[int]ftla.NodeFaultPlan{
				1: {AfterEpochs: 1 + i%2},
				2: {AfterEpochs: 3 + i%2},
			}
			double[i] = true
		case 3: // correlated burst: two nodes at one epoch, a 2-erasure decode
			nf = map[int]ftla.NodeFaultPlan{
				i % 3:   {AfterEpochs: 2},
				1 + i%3: {AfterEpochs: 2},
			}
			double[i] = true
		}
		h, err := s.Submit(context.Background(), clusterSpec(uint64(900+i), 2, nf, nil))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}

	var mu sync.Mutex
	completed, wrong := 0, 0
	var wg sync.WaitGroup
	for i, h := range handles {
		wg.Add(1)
		go func(i int, h *JobHandle) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			res, err := h.Wait(ctx)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				t.Logf("job %d did not complete: %v", i, err)
				return
			}
			completed++
			if res.Residual > 1e-9 {
				wrong++
				t.Errorf("job %d: silently wrong factor, residual %g", i, res.Residual)
			}
			if double[i] {
				if res.Attempts != 1 {
					t.Errorf("job %d: double loss took %d attempts, want 1 (absorbed below the job)", i, res.Attempts)
				}
				if nl := res.Factors.Report().NodesLost; nl != 2 {
					t.Errorf("job %d: report NodesLost = %d, want 2", i, nl)
				}
			}
		}(i, h)
	}
	wg.Wait()

	if wrong != 0 {
		t.Fatalf("%d job(s) returned silently wrong factors", wrong)
	}
	if completed*10 < jobs*9 {
		t.Fatalf("only %d/%d jobs completed, gate requires >= 90%%", completed, jobs)
	}
	st := s.Stats()
	if st.NodeFailovers != 0 {
		t.Fatalf("Stats.NodeFailovers = %d, want 0 (every loss is inside the r=2 budget)", st.NodeFailovers)
	}
	d := obs.Default().Snapshot().Diff(snap)
	if counterSum(d, obs.MetricNodeLost) == 0 {
		t.Fatal("gate fleet lost no nodes: the armed faults never fired")
	}
	if counterSum(d, obs.MetricReconstructions) == 0 {
		t.Fatal("no parity reconstructions recorded")
	}
	if counterSum(d, obs.MetricParityBytes) == 0 {
		t.Fatal("no parity maintenance traffic recorded on an r=2 fleet")
	}
	spentTwo := false
	for k := range d.Counters {
		if strings.HasPrefix(k, obs.MetricReconstructions+"{") && strings.Contains(k, `spent="2"`) {
			spentTwo = true
			break
		}
	}
	if !spentTwo {
		t.Fatal("no reconstruction recorded with spent=2: the double losses never drained the budget")
	}
	t.Logf("multi-node-loss gate: completed=%d/%d reconstructions=%d parityBytes=%d",
		completed, jobs, counterSum(d, obs.MetricReconstructions), counterSum(d, obs.MetricParityBytes))
}

// TestChaosClusterStorm mixes correlated node bursts with PCIe link faults
// on r=2 clusters — the two fault layers recover through different
// machinery (in-place erasure decode vs. checksummed retransmission and
// link failover) and must not trip over each other. Run under -race by
// scripts/check.sh via the fleet gates' shared harness conventions.
func TestChaosClusterStorm(t *testing.T) {
	before := runtime.NumGoroutine()
	snap := obs.Default().Snapshot()

	s := New(Config{
		Workers: 4,
		Retry:   RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond},
		Seed:    103,
	})

	rng := matrix.NewRNG(2028)
	const jobs = 18
	handles := make([]*JobHandle, 0, jobs)
	for i := 0; i < jobs; i++ {
		var nf map[int]ftla.NodeFaultPlan
		var lf map[int]ftla.LinkFaultPlan
		switch rng.Intn(5) {
		case 0: // clean control
		case 1: // single node loss, absorbed by the first parity
			nf = map[int]ftla.NodeFaultPlan{rng.Intn(4): {AfterEpochs: 1 + rng.Intn(4)}}
		case 2: // correlated two-node burst, one simultaneous 2-erasure decode
			a := rng.Intn(4)
			b := (a + 1 + rng.Intn(3)) % 4
			e := 1 + rng.Intn(3)
			nf = map[int]ftla.NodeFaultPlan{a: {AfterEpochs: e}, b: {AfterEpochs: e}}
		case 3: // transient link corruption, absorbed by retransmission
			lf = map[int]ftla.LinkFaultPlan{rng.Intn(4): {
				Mode: ftla.LinkCorrupt, AfterTransfers: rng.Intn(12), Every: 4 + rng.Intn(8),
			}}
		case 4: // node loss while a link flaps
			nf = map[int]ftla.NodeFaultPlan{1 + rng.Intn(3): {AfterEpochs: 1 + rng.Intn(3)}}
			lf = map[int]ftla.LinkFaultPlan{rng.Intn(4): {
				Mode: ftla.LinkFlap, Count: 1 + rng.Intn(8),
			}}
		}
		h, err := s.Submit(context.Background(), clusterSpec(uint64(1100+i), 2, nf, lf))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}

	var mu sync.Mutex
	completed := 0
	var wg sync.WaitGroup
	for i, h := range handles {
		wg.Add(1)
		go func(i int, h *JobHandle) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			res, err := h.Wait(ctx)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				t.Logf("job %d did not complete: %v", i, err)
				return
			}
			completed++
			if res.Residual > 1e-9 {
				t.Errorf("job %d: silently wrong result, residual %g", i, res.Residual)
			}
		}(i, h)
	}
	wg.Wait()
	s.Close()

	if completed*10 < jobs*9 {
		t.Fatalf("only %d/%d jobs completed, storm requires >= 90%%", completed, jobs)
	}
	st := s.Stats()
	if got := int(st.Completed + st.Failed + st.Canceled); got != jobs {
		t.Fatalf("terminal states %d != jobs %d (some job vanished)", got, jobs)
	}
	d := obs.Default().Snapshot().Diff(snap)
	if counterSum(d, obs.MetricNodeLost) == 0 {
		t.Fatal("storm lost no nodes: the armed node faults never fired")
	}
	if counterSum(d, obs.MetricReconstructions) == 0 {
		t.Fatal("storm recorded no parity reconstructions")
	}
	if d.CounterValue(obs.MetricTransferRetransmits) == 0 {
		t.Fatal("storm issued no retransmissions: the link faults never fired")
	}
	t.Logf("cluster storm: completed=%d/%d reconstructions=%d retransmits=%d retries=%d",
		completed, jobs, counterSum(d, obs.MetricReconstructions),
		d.CounterValue(obs.MetricTransferRetransmits), st.Retries)

	// Goroutine-leak check, same settle loop as TestChaosStorm.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before storm, %d after settle", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
