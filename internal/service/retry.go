package service

import "time"

// RetryPolicy governs the service's reaction to retryable attempt
// failures: the complete-restart bucket of the paper's outcome taxonomy
// (§X.B) and, since the fail-stop layer, device loss/hang/timeout aborts.
// The protected factorizations repair what they can online (Corrected,
// LocalRestarted — both count as success here, with the recovery recorded
// in the report); what they cannot repair they detect and surrender to the
// application. This policy is that application-level answer, and since the
// checkpoint layer (ftla.Config.CheckpointEvery) each retry it grants
// takes one of two forms — see attemptOutcome:
//
//   - resume (preferred): when the job holds a known-clean checkpoint and
//     the previous result is not silently corrupt, the retry restores that
//     snapshot onto the (possibly degraded) platform and replays only the
//     steps after it;
//   - restart: without a usable checkpoint — none taken yet, the previous
//     run finished silently corrupt (its checkpoints cannot be trusted),
//     or a resume attempt itself failed — the retry reruns from scratch.
//
// Either way the retry runs on a fresh injector-free pooled system, on the
// model that soft errors are transients that will not strike the rerun —
// and that a lost device will not haunt the rebuilt, degraded system the
// pool hands to the retry. MaxAttempts, Backoff, and the job's deadline
// budget apply identically to both forms.
type RetryPolicy struct {
	// MaxAttempts caps total factorization runs per job, first attempt
	// included (default 3; minimum 1).
	MaxAttempts int
	// BaseBackoff is the nominal delay before the first retry; each
	// further retry doubles it, capped at MaxBackoff (defaults 5ms /
	// 250ms). The actual sleep is jittered — see Backoff. A zero-ish
	// simulated workload retries almost immediately; real deployments size
	// these to their fault environment.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

// attemptOutcome classifies how the next attempt granted by the policy
// will start, splitting the single retry counter the Stats used to conflate
// into restart-from-scratch vs resume-from-checkpoint (Stats.Restarts /
// Stats.Resumed, MetricJobRestarts / MetricJobResumes).
type attemptOutcome int

const (
	// attemptRestart reruns the factorization from scratch.
	attemptRestart attemptOutcome = iota
	// attemptResume replays from the job's last known-clean checkpoint.
	attemptResume
)

// DefaultRetryPolicy is the policy Scheduler uses when Config.Retry is the
// zero value.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 250 * time.Millisecond}
}

func (p RetryPolicy) normalize() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 5 * time.Millisecond
	}
	if p.MaxBackoff < p.BaseBackoff {
		p.MaxBackoff = 250 * time.Millisecond
		if p.MaxBackoff < p.BaseBackoff {
			p.MaxBackoff = p.BaseBackoff
		}
	}
	return p
}

// Backoff returns the jittered delay before retry number retryIdx
// (1-based: the delay between attempt 1 and attempt 2 is Backoff(1, ·)).
// The nominal delay doubles per retry from BaseBackoff, capped at
// MaxBackoff; the returned delay applies full ±50% jitter around that
// envelope — jitter is a uniform variate in [0, 1), and the result is
// envelope × (0.5 + jitter). Without jitter, every job killed by the same
// shared-pool event retries at the same instant and thunders the herd
// right back into the queue; the caller supplies the variate (the
// Scheduler draws from a seedable source, so tests stay deterministic).
// Out-of-range jitter is clamped into [0, 1).
func (p RetryPolicy) Backoff(retryIdx int, jitter float64) time.Duration {
	if retryIdx < 1 {
		retryIdx = 1
	}
	d := p.BaseBackoff
	for i := 1; i < retryIdx; i++ {
		d *= 2
		if d >= p.MaxBackoff {
			d = p.MaxBackoff
			break
		}
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if jitter < 0 {
		jitter = 0
	} else if jitter >= 1 {
		jitter = 1 - 1e-9
	}
	return time.Duration(float64(d) * (0.5 + jitter))
}
