package service

import "time"

// RetryPolicy governs the service's reaction to the complete-restart bucket
// of the paper's outcome taxonomy (§X.B). The protected factorizations
// repair what they can online (Corrected, LocalRestarted — both count as
// success here, with the recovery recorded in the report); what they cannot
// repair they detect and surrender to the application. This policy is that
// application-level answer: rerun the whole factorization, on the model
// that soft errors are transients that will not strike the rerun.
type RetryPolicy struct {
	// MaxAttempts caps total factorization runs per job, first attempt
	// included (default 3; minimum 1).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further retry
	// doubles it, capped at MaxBackoff (defaults 5ms / 250ms). A zero-ish
	// simulated workload retries almost immediately; real deployments size
	// these to their fault environment.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

// DefaultRetryPolicy is the policy Scheduler uses when Config.Retry is the
// zero value.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 250 * time.Millisecond}
}

func (p RetryPolicy) normalize() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 5 * time.Millisecond
	}
	if p.MaxBackoff < p.BaseBackoff {
		p.MaxBackoff = 250 * time.Millisecond
		if p.MaxBackoff < p.BaseBackoff {
			p.MaxBackoff = p.BaseBackoff
		}
	}
	return p
}

// Backoff returns the capped exponential delay before retry number
// retryIdx (1-based: the delay between attempt 1 and attempt 2 is
// Backoff(1)).
func (p RetryPolicy) Backoff(retryIdx int) time.Duration {
	if retryIdx < 1 {
		retryIdx = 1
	}
	d := p.BaseBackoff
	for i := 1; i < retryIdx; i++ {
		d *= 2
		if d >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if d > p.MaxBackoff {
		return p.MaxBackoff
	}
	return d
}
