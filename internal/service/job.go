package service

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"ftla"
	"ftla/internal/batch"
	"ftla/internal/core"
	"ftla/internal/obs"
)

// Decomp selects the factorization a job runs.
type Decomp int

// Supported decompositions.
const (
	Cholesky Decomp = iota
	LU
	QR
)

// String returns the lowercase wire name used in job requests ("cholesky",
// "lu", "qr").
func (d Decomp) String() string {
	switch d {
	case Cholesky:
		return "cholesky"
	case LU:
		return "lu"
	default:
		return "qr"
	}
}

// Priority is a job's admission class. Higher classes are dispatched first;
// within a class jobs run in submission order.
type Priority int

// Priority classes, lowest to highest urgency.
const (
	Batch Priority = iota
	Normal
	Interactive
	numPriorities
)

// String returns the lowercase wire name used in job requests ("batch",
// "normal", "interactive").
func (p Priority) String() string {
	switch p {
	case Batch:
		return "batch"
	case Normal:
		return "normal"
	default:
		return "interactive"
	}
}

// JobSpec describes one factorization (and optional solve) request.
type JobSpec struct {
	// Decomp selects the factorization; A is its input. Cholesky requires a
	// symmetric positive definite A; all inputs must be square with order a
	// multiple of Config.NB.
	Decomp Decomp
	A      *ftla.Matrix
	// B, when non-nil, is a right-hand side to solve against the factor.
	B []float64
	// Config is the ftla configuration for the run (protection, scheme,
	// platform, injector). On retries the service reruns with
	// Config.Injector stripped — the transient fault is assumed not to
	// recur deterministically. When Config.CheckpointEvery is set, retries
	// prefer resuming from the job's last known-clean checkpoint over a
	// complete restart (see RetryPolicy); Config.OnCheckpoint, if set, is
	// chained after the service's own checkpoint capture.
	Config ftla.Config
	// Priority is the admission class (default Batch, the lowest).
	Priority Priority
	// ResidualTol is the residual threshold deciding whether the final
	// factor verifies (the paper's outcome classification input); <= 0
	// means 1e-9.
	ResidualTol float64
	// NoCache bypasses the factorization cache for this job (both lookup
	// and fill) — for injection experiments whose factor must not be served
	// to, or taken from, other traffic.
	NoCache bool
	// Trace requests a per-job obs.Trace: every attempt's simulated kernel
	// and PCIe spans plus the wall-clock ABFT phase spans accumulate into
	// JobResult.Trace, exportable as a Chrome trace (WriteChrome). Off by
	// default — the span slice grows with every kernel.
	Trace bool
	// Deadline bounds the job's total service time, measured from dispatch
	// (queue time excluded): all attempts, backoff sleeps, and the solve
	// must fit inside it. A job that cannot finish in time terminates with
	// a *DeadlineError — including mid-attempt, because the deadline is
	// bound into the running system and aborts kernels at the next gate.
	// Zero means no deadline. For a bound covering queue time too, pass a
	// context with a deadline to Submit.
	Deadline time.Duration
}

func (s *JobSpec) validate() error {
	if s.A == nil {
		return fmt.Errorf("service: job has no input matrix")
	}
	if s.A.Rows != s.A.Cols {
		return fmt.Errorf("service: input must be square, got %dx%d", s.A.Rows, s.A.Cols)
	}
	if s.Decomp < Cholesky || s.Decomp > QR {
		return fmt.Errorf("service: unknown decomposition %d", int(s.Decomp))
	}
	if s.B != nil && len(s.B) != s.A.Rows {
		return fmt.Errorf("service: rhs length %d != order %d", len(s.B), s.A.Rows)
	}
	if s.Priority < Batch {
		return fmt.Errorf("service: negative priority")
	}
	if sc := s.Config.SystemConfig(); sc.Nodes > 1 && sc.NumGPUs%sc.Nodes != 0 {
		// hetsim.New enforces this invariant with a panic; catch it at
		// admission so a bad spec fails its Submit, not a worker.
		return fmt.Errorf("service: %d GPUs not divisible over %d nodes", sc.NumGPUs, sc.Nodes)
	}
	if sc := s.Config.SystemConfig(); sc.Nodes > 1 && s.Config.Redundancy >= sc.Nodes {
		// Each cross-node parity group needs at least one data column;
		// reject at admission instead of failing the dispatch.
		return fmt.Errorf("service: redundancy %d must stay below the node count %d", s.Config.Redundancy, sc.Nodes)
	}
	if s.Config.Redundancy < 0 {
		return fmt.Errorf("service: negative redundancy %d", s.Config.Redundancy)
	}
	return nil
}

func (s *JobSpec) tol() float64 {
	if s.ResidualTol > 0 {
		return s.ResidualTol
	}
	return 1e-9
}

// batchable reports whether the job may share a coalesced batched dispatch
// with others of the same batchKey. Per-run control flow the batched
// drivers cannot share — fail-stop and node-fault plans, checkpointing,
// resume, dynamic rebalancing — and per-job observation scopes (Trace, Deadline) keep a
// job on the solo path. A fault Injector is batchable: the batched drivers
// carry injectors per item, which is exactly what the retry-isolation
// contract exercises (one injected item must not disturb its batchmates).
func (s *JobSpec) batchable() bool {
	c := s.Config
	return len(c.FailStop) == 0 && len(c.NodeFault) == 0 &&
		c.CheckpointEvery == 0 && c.OnCheckpoint == nil && c.Resume == nil &&
		c.Rebalance.Every == 0 &&
		!s.Trace && s.Deadline == 0
}

// batchKey identifies the coalescing bucket: jobs coalesce only when every
// run-shaping parameter matches, because one batched ladder runs a single
// (shape, protection, scheme, schedule, platform) configuration across the
// whole slab. Built from the Effective configuration so zero-value and
// explicit defaults land in the same bucket.
func (s *JobSpec) batchKey() batch.Key {
	eff := s.Config.Effective()
	return batch.Key{
		Decomp: s.Decomp.String(),
		N:      s.A.Rows, NB: eff.NB,
		Mode: int(eff.Protection), Scheme: int(eff.Scheme), Kernel: int(eff.Kernel),
		Lookahead:             eff.Lookahead,
		PeriodicTrailingCheck: eff.PeriodicTrailingCheck,
		Redundancy:            eff.Redundancy,
		Sys:                   eff.SystemConfig(),
	}
}

// Factorization is a completed, residual-verified factorization — the unit
// the cache stores and Solve reuses. Exactly one of the three result fields
// is set, per Decomp.
type Factorization struct {
	Decomp Decomp
	Chol   *ftla.CholeskyResult
	LU     *ftla.LUResult
	QR     *ftla.QRResult
	// Residual is ‖A − factors‖_F/‖A‖_F measured against the job's input.
	Residual float64
	// Outcome classifies the producing run (§X.B); cached entries are
	// always in a survivable bucket (never DetectedCorrupt/CorruptedResult).
	Outcome ftla.Outcome
}

// Report returns the producing run's statistics.
func (f *Factorization) Report() *ftla.Report {
	switch f.Decomp {
	case Cholesky:
		return f.Chol.Report
	case LU:
		return f.LU.Report
	default:
		return f.QR.Report
	}
}

// Solve solves A·x = b against the stored factor.
func (f *Factorization) Solve(b []float64) ([]float64, error) {
	switch f.Decomp {
	case Cholesky:
		return f.Chol.Solve(b)
	case LU:
		return f.LU.Solve(b)
	default:
		return f.QR.Solve(b)
	}
}

// JobResult is the terminal state of a successful job.
type JobResult struct {
	// Outcome classifies the winning attempt (§X.B). Retried-away
	// corruption does not surface here — it surfaces in Attempts and in
	// Stats.Retries.
	Outcome ftla.Outcome
	// Factors is the factorization that served the job (fresh or cached).
	Factors *Factorization
	// X is the solution of A·x = B when the spec carried a right-hand side.
	X []float64
	// Residual is the factor's residual against the input matrix.
	Residual float64
	// Attempts counts factorization runs, 1 for a clean first pass; 0 for a
	// pure cache hit.
	Attempts int
	// Resumed counts the attempts (among Attempts) that replayed from a
	// mid-run checkpoint instead of restarting from scratch — nonzero only
	// when the job's Config set CheckpointEvery and a snapshot existed
	// when a retry was granted.
	Resumed int
	// CacheHit reports that the factorization was served from the cache
	// without running a decomposition.
	CacheHit bool
	// Coalesced is the number of jobs in the batched dispatch that served
	// this job, 0 when it ran (or was cache-served) on the solo path. A job
	// whose batch attempt failed and was retried solo keeps the batch size
	// of the dispatch it started in.
	Coalesced int
	// Wait is queue time (submit → dispatch); Run is service time
	// (dispatch → completion, including retries and backoff).
	Wait, Run time.Duration
	// Trace holds the job's observability trace when the spec set Trace:
	// spans from every attempt (retried attempts included), on both the
	// wall and simulated clocks. Nil when tracing was not requested; empty
	// (Len 0) for pure cache hits, where no decomposition ran.
	Trace *obs.Trace
}

// CorruptError is the graceful-degradation terminal state: every allowed
// attempt ended in a result that needs a complete restart. It carries the
// last attempt's report so the caller can see what the ABFT layer observed.
type CorruptError struct {
	Outcome  ftla.Outcome
	Report   *ftla.Report
	Attempts int
	// Injected describes the faults the job's injector actually fired
	// (fault.Spec.Describe form), so a chaos-campaign failure is
	// diagnosable from the error alone. Empty when the job carried no
	// injector or nothing fired.
	Injected []string
}

// Error summarizes the terminal outcome, how many attempts were spent, and
// which scheduled faults fired.
func (e *CorruptError) Error() string {
	msg := fmt.Sprintf("service: factorization %s after %d attempt(s)", e.Outcome, e.Attempts)
	if len(e.Injected) > 0 {
		msg += " [injected: " + strings.Join(e.Injected, "; ") + "]"
	}
	return msg
}

// DeadlineError is the terminal state of a job that ran out of time: the
// job-level JobSpec.Deadline expired (possibly mid-attempt or during a
// backoff sleep). It wraps context.DeadlineExceeded so
// errors.Is(err, context.DeadlineExceeded) holds.
type DeadlineError struct {
	// Deadline is the budget that was exceeded.
	Deadline time.Duration
	// Attempts counts factorization runs started before time ran out.
	Attempts int
	// Cause is the underlying abort, when the deadline reaped a running
	// attempt (e.g. a *hetsim.DeviceHungError); nil when the deadline
	// expired between attempts.
	Cause error
}

// Error summarizes the exceeded budget and any mid-attempt abort.
func (e *DeadlineError) Error() string {
	msg := fmt.Sprintf("service: job deadline %v exceeded after %d attempt(s)", e.Deadline, e.Attempts)
	if e.Cause != nil {
		msg += ": " + e.Cause.Error()
	}
	return msg
}

// Unwrap lets errors.Is see context.DeadlineExceeded (and the cause chain).
func (e *DeadlineError) Unwrap() []error {
	errs := []error{context.DeadlineExceeded}
	if e.Cause != nil {
		errs = append(errs, e.Cause)
	}
	return errs
}

// FailStopError is the terminal state of a job that lost devices on every
// allowed attempt: fail-stop faults (crash, hang) exhausted the retry
// budget even after the pool degraded to smaller platforms. It wraps the
// last attempt's typed device error.
type FailStopError struct {
	// Attempts counts factorization runs, all aborted by device loss.
	Attempts int
	// Cause is the last attempt's abort (*hetsim.DeviceLostError or
	// *hetsim.DeviceHungError).
	Cause error
}

// Error summarizes the exhausted retry budget and the final device fault.
func (e *FailStopError) Error() string {
	return fmt.Sprintf("service: device loss on all %d attempt(s): %v", e.Attempts, e.Cause)
}

// Unwrap exposes the device error for errors.As classification.
func (e *FailStopError) Unwrap() error { return e.Cause }

// Sentinel submission errors.
var (
	// ErrQueueFull rejects a Submit when the bounded queue is at capacity —
	// the backpressure signal; callers shed or retry later.
	ErrQueueFull = fmt.Errorf("service: queue full")
	// ErrClosed rejects a Submit after Close.
	ErrClosed = fmt.Errorf("service: scheduler closed")
)

// JobHandle tracks one submitted job.
type JobHandle struct {
	// ID is the scheduler-assigned job id, unique per scheduler.
	ID uint64

	spec     JobSpec
	ctx      context.Context
	enqueued time.Time

	// prior counts factorization attempts already spent on this job before
	// run() takes over — a failed coalesced batch attempt that fell back to
	// the solo path — so JobResult.Attempts stays truthful across the
	// fallback. coalesced carries the originating dispatch's batch size
	// into the solo result.
	prior     int
	coalesced int

	done chan struct{}
	mu   sync.Mutex
	res  *JobResult
	err  error
}

// Done returns a channel closed when the job reaches a terminal state.
func (h *JobHandle) Done() <-chan struct{} { return h.done }

// Poll returns the result if the job is finished (terminal == true).
func (h *JobHandle) Poll() (res *JobResult, err error, terminal bool) {
	select {
	case <-h.done:
		h.mu.Lock()
		defer h.mu.Unlock()
		return h.res, h.err, true
	default:
		return nil, nil, false
	}
}

// Wait blocks until the job finishes or ctx expires. A ctx expiry abandons
// the wait, not the job.
func (h *JobHandle) Wait(ctx context.Context) (*JobResult, error) {
	select {
	case <-h.done:
		h.mu.Lock()
		defer h.mu.Unlock()
		return h.res, h.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (h *JobHandle) finish(res *JobResult, err error) {
	h.mu.Lock()
	h.res, h.err = res, err
	h.mu.Unlock()
	close(h.done)
}

// needsRestart reports whether an outcome is in the paper's complete-restart
// bucket: the run's result cannot be trusted. DetectedCorrupt is the ABFT
// layer itself demanding the restart; CorruptedResult is the service's final
// residual check catching what detection missed (only reachable when the
// job ran a weakened protection config).
func needsRestart(o ftla.Outcome) bool {
	return o == core.DetectedCorrupt || o == core.CorruptedResult
}
