package service

// Chaos harness for the fail-stop layer (scripts/check.sh runs these with
// -race -count=2 via -run 'Chaos|Storm'). The invariant under test, from
// the serving layer's graceful-degradation contract: every job terminates
// with either a residual-verified result or a typed error — never a
// deadlock, a panic, a goroutine leak, or a silently wrong matrix.

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"ftla"
	"ftla/internal/hetsim"
	"ftla/internal/matrix"
	"ftla/internal/obs"
)

// chaosSpec is a 4-GPU Cholesky job; fs arms fail-stop plans (nil = clean).
func chaosSpec(seed uint64, fs map[int]ftla.FailStopPlan) JobSpec {
	return JobSpec{
		Decomp: Cholesky,
		A:      ftla.RandomSPD(128, seed),
		Config: ftla.Config{
			GPUs: 4, NB: 32,
			FailStop: fs,
		},
		NoCache: true,
	}
}

// TestChaosGPULossFailsOverToDegradedSystem is the headline scenario: a
// 4-GPU job loses GPU 3 mid-factorization, the pool quarantines the dead
// system, and the retry completes on a rebuilt 3-GPU platform — with the
// whole event visible in the metrics.
func TestChaosGPULossFailsOverToDegradedSystem(t *testing.T) {
	s := New(Config{Workers: 1, Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond}})
	defer s.Close()

	spec := chaosSpec(11, map[int]ftla.FailStopPlan{
		3: {Mode: ftla.FailCrash, AfterOps: 2},
	})
	h, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait(context.Background())
	if err != nil {
		t.Fatalf("job failed: %v", err)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one lost to the crash, one degraded rerun)", res.Attempts)
	}
	if got := res.Factors.Report().GPUs; got != 3 {
		t.Fatalf("winning attempt ran on %d GPUs, want 3 (degraded from 4)", got)
	}
	if res.Residual > 1e-9 {
		t.Fatalf("failover produced a wrong factor: residual %g", res.Residual)
	}
	st := s.Stats()
	if st.DeviceLost != 1 {
		t.Fatalf("Stats.DeviceLost = %d, want 1", st.DeviceLost)
	}
	if st.AbortedAttempts != 1 {
		t.Fatalf("Stats.AbortedAttempts = %d, want 1", st.AbortedAttempts)
	}
	if st.Retries != 1 {
		t.Fatalf("Stats.Retries = %d, want 1", st.Retries)
	}
	if st.Quarantined != 1 {
		t.Fatalf("Stats.Quarantined = %d, want 1 (the crashed system held out)", st.Quarantined)
	}
	if n := s.pool.quarantined(); n != 1 {
		t.Fatalf("pool holds %d quarantined systems, want 1", n)
	}
}

// TestChaosPersistentLossExhaustsRetries: when every attempt loses a
// device (here: all retries still find crashing hardware because the job
// pins MaxAttempts at 1), the job terminates with a typed *FailStopError
// wrapping the device fault — not a hang or a silent failure.
func TestChaosPersistentLossExhaustsRetries(t *testing.T) {
	s := New(Config{Workers: 1, Retry: RetryPolicy{MaxAttempts: 1}})
	defer s.Close()

	spec := chaosSpec(12, map[int]ftla.FailStopPlan{
		1: {Mode: ftla.FailCrash, AfterOps: 2},
	})
	h, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	_, err = h.Wait(context.Background())
	var fse *FailStopError
	if !errors.As(err, &fse) {
		t.Fatalf("err = %v, want *FailStopError", err)
	}
	var lost *hetsim.DeviceLostError
	if !errors.As(err, &lost) || lost.Device != "GPU1" {
		t.Fatalf("FailStopError does not wrap the device fault: %v", err)
	}
	if fse.Attempts != 1 {
		t.Fatalf("FailStopError.Attempts = %d, want 1", fse.Attempts)
	}
}

// TestChaosUnmeetableDeadline: a job whose Deadline cannot be met — a hung
// GPU eats the whole budget — terminates with a typed *DeadlineError that
// errors.Is-matches context.DeadlineExceeded, and the expiry is counted.
func TestChaosUnmeetableDeadline(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	spec := chaosSpec(13, map[int]ftla.FailStopPlan{
		0: {Mode: ftla.FailHang, AfterOps: 2},
	})
	spec.Deadline = 50 * time.Millisecond
	h, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait(context.Background())
	if res != nil {
		t.Fatal("deadline-doomed job still produced a result")
	}
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DeadlineError", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("DeadlineError must match context.DeadlineExceeded: %v", err)
	}
	if de.Deadline != spec.Deadline {
		t.Fatalf("DeadlineError.Deadline = %v, want %v", de.Deadline, spec.Deadline)
	}
	if st := s.Stats(); st.DeadlineExceeded != 1 {
		t.Fatalf("Stats.DeadlineExceeded = %d, want 1", st.DeadlineExceeded)
	}
}

// TestChaosCanceledWhileQueued covers the first cancellation path: a job
// whose context dies before a worker ever claims it finishes with the
// context's error and runs nothing.
func TestChaosCanceledWhileQueued(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	gate := make(chan struct{})
	claimed := make(chan struct{}, 4)
	s.beforeRun = func(*JobHandle) {
		claimed <- struct{}{}
		<-gate
	}
	// First job occupies the only worker at the beforeRun gate.
	h1, err := s.Submit(context.Background(), chaosSpec(14, nil))
	if err != nil {
		t.Fatal(err)
	}
	<-claimed
	// Second job waits in the queue; cancel it there.
	ctx, cancel := context.WithCancel(context.Background())
	h2, err := s.Submit(ctx, chaosSpec(15, nil))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	close(gate)
	if _, err := h2.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued-then-canceled job: err = %v, want context.Canceled", err)
	}
	if _, err := h1.Wait(context.Background()); err != nil {
		t.Fatalf("gated job should still succeed: %v", err)
	}
	if st := s.Stats(); st.Canceled != 1 {
		t.Fatalf("Stats.Canceled = %d, want 1", st.Canceled)
	}
}

// TestChaosCanceledMidAttempt covers the second cancellation path: the
// bound per-attempt context aborts kernels mid-factorization, so a hung
// attempt is reaped the moment the caller cancels — the worker does not
// wedge until some timeout.
func TestChaosCanceledMidAttempt(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	claimed := make(chan struct{}, 1)
	s.beforeRun = func(*JobHandle) { claimed <- struct{}{} }

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	spec := chaosSpec(16, map[int]ftla.FailStopPlan{
		2: {Mode: ftla.FailHang, AfterOps: 2},
	})
	h, err := s.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	<-claimed // the attempt is running (and will hang on GPU2)
	time.Sleep(5 * time.Millisecond)
	cancel()
	if _, err := h.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-attempt cancel: err = %v, want context.Canceled", err)
	}
	if st := s.Stats(); st.Canceled != 1 {
		t.Fatalf("Stats.Canceled = %d, want 1", st.Canceled)
	}
}

// TestChaosDeadlineDuringBackoff covers the third cancellation path: the
// job budget expires while the scheduler sleeps between attempts. The
// backoff select must wake on the deadline and return the typed error, not
// sleep through it.
func TestChaosDeadlineDuringBackoff(t *testing.T) {
	s := New(Config{
		Workers: 1,
		// Backoff far beyond the deadline: the expiry lands in the sleep.
		Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: 10 * time.Second, MaxBackoff: 10 * time.Second},
	})
	defer s.Close()

	// Forced-corrupt first attempt (same recipe as the retry tests): two
	// faults in one checksum strip under single-side protection.
	spec := corruptibleSpec(corruptingInjector(t))
	spec.Deadline = 300 * time.Millisecond
	start := time.Now()
	h, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	_, err = h.Wait(context.Background())
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DeadlineError", err)
	}
	if de.Attempts != 1 {
		t.Fatalf("DeadlineError.Attempts = %d, want 1 (corrupt attempt, then expiry in backoff)", de.Attempts)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("job slept through its deadline: terminated after %v", waited)
	}
	if st := s.Stats(); st.DeadlineExceeded != 1 {
		t.Fatalf("Stats.DeadlineExceeded = %d, want 1", st.DeadlineExceeded)
	}
}

// TestChaosPoolProbationReadmission exercises the circuit breaker end to
// end at the pool level: a quarantined system sits out poolProbeAfter
// grants, then the next acquire re-admits it repaired (Reset revives its
// lost device).
func TestChaosPoolProbationReadmission(t *testing.T) {
	p := newSystemPool(2, newMetrics(obs.NewRegistry()))
	cfg := hetsim.DefaultConfig(2)

	bad := p.acquire(cfg)
	bad.ArmFault(bad.GPU(0), hetsim.FaultPlan{Mode: hetsim.FaultCrash})
	err := bad.GPU(0).RunCtx(context.Background(), "probe", 1, func(int) {})
	var lost *hetsim.DeviceLostError
	if !errors.As(err, &lost) {
		t.Fatalf("arming failed: %v", err)
	}
	p.quarantine(bad)
	if p.quarantined() != 1 {
		t.Fatal("system not quarantined")
	}

	// The breaker stays open for poolProbeAfter grants...
	for i := 0; i < poolProbeAfter; i++ {
		sys := p.acquire(cfg)
		if sys == bad {
			t.Fatalf("quarantined system re-admitted early (grant %d)", i+1)
		}
		p.release(sys)
	}
	// ...then the next acquire is the probation probe.
	probe := p.acquire(cfg)
	if probe != bad {
		t.Fatal("probation grant did not re-admit the quarantined system")
	}
	if p.quarantined() != 0 {
		t.Fatal("quarantine count not decremented on probe")
	}
	if probe.GPU(0).Lost() {
		t.Fatal("probe system not repaired: GPU0 still lost")
	}
	if err := probe.GPU(0).RunCtx(context.Background(), "probe", 1, func(int) {}); err != nil {
		t.Fatalf("repaired device still failing: %v", err)
	}
}

// TestChaosRepeatedFailureOpensBreaker: systems that keep failing jobs
// without losing a device are quarantined after poolMaxConsecFails
// consecutive failures (and a success in between resets the streak).
func TestChaosRepeatedFailureOpensBreaker(t *testing.T) {
	p := newSystemPool(2, newMetrics(obs.NewRegistry()))
	cfg := hetsim.DefaultConfig(1)

	sys := p.acquire(cfg)
	for i := 0; i < poolMaxConsecFails-1; i++ {
		p.fail(sys)
		if got := p.acquire(cfg); got != sys {
			t.Fatalf("failure %d should reshelve below the threshold", i+1)
		}
	}
	// A success clears the streak...
	p.release(sys)
	if p.quarantined() != 0 {
		t.Fatal("healthy release must not quarantine")
	}
	sys = p.acquire(cfg)
	// ...so it takes a full run of consecutive failures to open the breaker.
	for i := 0; i < poolMaxConsecFails; i++ {
		p.fail(sys)
		if i < poolMaxConsecFails-1 {
			if got := p.acquire(cfg); got != sys {
				t.Fatalf("failure %d should reshelve below the threshold", i+1)
			}
		}
	}
	if p.quarantined() != 1 {
		t.Fatalf("breaker did not open after %d consecutive failures", poolMaxConsecFails)
	}
}

// TestChaosGPULossResumesFromCheckpoint is the headline rollback scenario:
// a checkpointing 4-GPU job loses GPU 3 mid-factorization and the retry
// resumes from the last host-side checkpoint on the degraded 3-GPU platform
// instead of restarting from scratch — visible in JobResult.Resumed and in
// the split retry counters (Stats.Resumed vs Stats.Restarts).
func TestChaosGPULossResumesFromCheckpoint(t *testing.T) {
	s := New(Config{Workers: 1, Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond}})
	defer s.Close()

	// AfterOps 20: GPU3 dies after two checkpoints are in hand but well
	// before the factorization finishes (see the crash-window pin below).
	spec := chaosSpec(21, map[int]ftla.FailStopPlan{
		3: {Mode: ftla.FailCrash, AfterOps: 20},
	})
	spec.Config.CheckpointEvery = 1
	userCps := 0
	spec.Config.OnCheckpoint = func(*ftla.Checkpoint) { userCps++ } // chained sink

	h, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait(context.Background())
	if err != nil {
		t.Fatalf("job failed: %v", err)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one lost to the crash, one resumed)", res.Attempts)
	}
	if res.Resumed != 1 {
		t.Fatalf("JobResult.Resumed = %d, want 1 (retry must resume, not restart)", res.Resumed)
	}
	if got := res.Factors.Report().GPUs; got != 3 {
		t.Fatalf("winning attempt ran on %d GPUs, want 3 (degraded from 4)", got)
	}
	if res.Residual > 1e-9 {
		t.Fatalf("resumed attempt produced a wrong factor: residual %g", res.Residual)
	}
	if userCps == 0 {
		t.Fatal("caller's OnCheckpoint sink was not chained")
	}
	st := s.Stats()
	if st.Retries != 1 || st.Resumed != 1 || st.Restarts != 0 {
		t.Fatalf("Retries/Resumed/Restarts = %d/%d/%d, want 1/1/0", st.Retries, st.Resumed, st.Restarts)
	}
	if st.DeviceLost != 1 || st.Quarantined != 1 {
		t.Fatalf("DeviceLost/Quarantined = %d/%d, want 1/1", st.DeviceLost, st.Quarantined)
	}
}

// TestChaosCrashWindowPin pins the fixture the resume scenarios depend on:
// on the 4-GPU chaos platform, a GPU3 crash armed at AfterOps 20 fires after
// at least one checkpoint is taken and before the run completes. If a layout
// or kernel-schedule change moves the window, this fails with the observed
// figures instead of letting the resume tests rot into testing the restart
// path.
func TestChaosCrashWindowPin(t *testing.T) {
	spec := chaosSpec(21, map[int]ftla.FailStopPlan{
		3: {Mode: ftla.FailCrash, AfterOps: 20},
	})
	cfg := spec.Config
	cfg.CheckpointEvery = 1
	cps := 0
	cfg.OnCheckpoint = func(*ftla.Checkpoint) { cps++ }
	_, err := ftla.Cholesky(spec.A, cfg)
	var lost *hetsim.DeviceLostError
	if !errors.As(err, &lost) {
		t.Fatalf("err = %v, want DeviceLostError (crash armed too late?)", err)
	}
	if cps == 0 {
		t.Fatal("crash fired before the first checkpoint: resume scenarios would test nothing")
	}
}

// TestChaosStormMixedRecovery races the two retry forms against each other:
// checkpointing jobs that lose a GPU (must resume), injector-corrupted jobs
// without checkpoints (must restart from scratch), and clean jobs — all on a
// shared worker pool. Every job must end verified, the split retry counters
// must add up, and the scheduler must wind down without leaking goroutines.
func TestChaosStormMixedRecovery(t *testing.T) {
	before := runtime.NumGoroutine()

	s := New(Config{
		Workers: 3,
		Retry:   RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond},
		Seed:    99,
	})

	const rounds = 6
	handles := make([]*JobHandle, 0, 3*rounds)
	for i := 0; i < rounds; i++ {
		// Resumable: device loss with checkpoints in hand.
		spec := chaosSpec(uint64(300+i), map[int]ftla.FailStopPlan{
			3: {Mode: ftla.FailCrash, AfterOps: 20},
		})
		spec.Config.CheckpointEvery = 1
		h, err := s.Submit(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)

		// Non-resumable: detected-corrupt run with no checkpoint to fall
		// back on — the retry must restart from scratch.
		h, err = s.Submit(context.Background(), corruptibleSpec(corruptingInjector(t)))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)

		// Clean control.
		h, err = s.Submit(context.Background(), chaosSpec(uint64(400+i), nil))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}

	var wg sync.WaitGroup
	for i, h := range handles {
		wg.Add(1)
		go func(i int, h *JobHandle) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			res, err := h.Wait(ctx)
			if err != nil {
				t.Errorf("job %d failed: %v", i, err)
				return
			}
			if res.Residual > 1e-9 {
				t.Errorf("job %d: wrong result, residual %g", i, res.Residual)
			}
		}(i, h)
	}
	wg.Wait()
	s.Close()

	st := s.Stats()
	if got := int(st.Completed); got != 3*rounds {
		t.Fatalf("Completed = %d, want %d", got, 3*rounds)
	}
	if st.Resumed != rounds {
		t.Fatalf("Stats.Resumed = %d, want %d (every device-loss job must resume)", st.Resumed, rounds)
	}
	if st.Restarts != rounds {
		t.Fatalf("Stats.Restarts = %d, want %d (every corrupt job must restart)", st.Restarts, rounds)
	}
	if st.Retries != st.Restarts+st.Resumed {
		t.Fatalf("Retries %d != Restarts %d + Resumed %d", st.Retries, st.Restarts, st.Resumed)
	}
	if st.DeviceLost != rounds {
		t.Fatalf("Stats.DeviceLost = %d, want %d", st.DeviceLost, rounds)
	}

	// Goroutine-leak check, same settle loop as TestChaosStorm.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before storm, %d after settle", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosStorm is the randomized campaign: a fleet of jobs with random
// fail-stop faults (crash / hang / straggler / none) on random devices,
// random deadlines, and corrupting injectors, all racing on a small worker
// pool. Every job must reach a terminal state that is either a verified
// result or a typed error, and the scheduler must wind down without
// leaking goroutines.
func TestChaosStorm(t *testing.T) {
	before := runtime.NumGoroutine()

	s := New(Config{
		Workers:        4,
		Retry:          RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond},
		AttemptTimeout: 250 * time.Millisecond,
		Seed:           77,
	})

	rng := matrix.NewRNG(2026)
	const jobs = 24
	handles := make([]*JobHandle, 0, jobs)
	expectOK := make([]bool, 0, jobs) // jobs with no scripted doom must succeed
	for i := 0; i < jobs; i++ {
		var fs map[int]ftla.FailStopPlan
		doomed := false
		switch rng.Intn(4) {
		case 0: // clean
		case 1:
			fs = map[int]ftla.FailStopPlan{rng.Intn(4): {Mode: ftla.FailCrash, AfterOps: 1 + rng.Intn(8)}}
		case 2:
			fs = map[int]ftla.FailStopPlan{rng.Intn(4): {Mode: ftla.FailHang, AfterOps: 1 + rng.Intn(8)}}
		case 3:
			fs = map[int]ftla.FailStopPlan{rng.Intn(4): {Mode: ftla.FailStraggler, Slowdown: 4}}
		}
		spec := chaosSpec(uint64(100+i), fs)
		if rng.Intn(4) == 0 {
			spec.Deadline = time.Duration(20+rng.Intn(200)) * time.Millisecond
			doomed = true // a tight deadline may legitimately expire
		}
		h, err := s.Submit(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
		expectOK = append(expectOK, !doomed)
	}

	var mu sync.Mutex
	outcomes := map[string]int{}
	var wg sync.WaitGroup
	for i, h := range handles {
		wg.Add(1)
		go func(i int, h *JobHandle) {
			defer wg.Done()
			// The harness-level liveness bound: no job may take longer
			// than this to reach a terminal state.
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			res, err := h.Wait(ctx)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				if res.Residual > 1e-9 {
					t.Errorf("job %d: silently wrong result, residual %g", i, res.Residual)
				}
				outcomes["ok"]++
			case errors.Is(err, context.DeadlineExceeded) && ctx.Err() != nil:
				t.Errorf("job %d: never terminated (harness timeout)", i)
			default:
				var de *DeadlineError
				var fse *FailStopError
				var ce *CorruptError
				switch {
				case errors.As(err, &de):
					outcomes["deadline"]++
				case errors.As(err, &fse):
					outcomes["failstop"]++
				case errors.As(err, &ce):
					outcomes["corrupt"]++
				case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
					outcomes["ctx"]++
				default:
					t.Errorf("job %d: untyped terminal error %v", i, err)
				}
				if expectOK[i] {
					t.Errorf("job %d: no scripted doom but failed: %v", i, err)
				}
			}
		}(i, h)
	}
	wg.Wait()
	s.Close()

	st := s.Stats()
	if got := int(st.Completed + st.Failed + st.Canceled); got != jobs {
		t.Fatalf("terminal states %d != jobs %d (some job vanished)", got, jobs)
	}
	t.Logf("storm outcomes: %v; deviceLost=%d aborted=%d retries=%d quarantined=%d",
		outcomes, st.DeviceLost, st.AbortedAttempts, st.Retries, st.Quarantined)

	// Goroutine-leak check: workers and per-job waiters must be gone.
	// Settle loop: the race detector and timer goroutines need a moment.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before storm, %d after settle", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
