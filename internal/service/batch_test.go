package service

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"ftla"
	"ftla/internal/core"
)

// batchLUSpec is one small LU job of the shared coalescing key the batch
// tests use (the corruptible single-side configuration from the retry
// fixtures); each seed gives a distinct input.
func batchLUSpec(seed uint64, inj *ftla.Injector) JobSpec {
	b := make([]float64, 96)
	b[0] = 1
	return JobSpec{
		Decomp: LU,
		A:      ftla.RandomDiagDominant(96, seed),
		B:      b,
		Config: ftla.Config{
			GPUs: 2, NB: 32,
			Protection: ftla.SingleSide, Scheme: ftla.NewScheme,
			Injector: inj,
		},
		NoCache: true,
	}
}

// gateWorker parks the scheduler's lone worker on its first claimed job
// until the returned release func is called, so jobs submitted in the
// meantime pile up in the queue and coalesce into one dispatch.
func gateWorker(s *Scheduler) (claimed <-chan struct{}, release func()) {
	gate := make(chan struct{})
	c := make(chan struct{})
	var once sync.Once
	s.beforeRun = func(*JobHandle) {
		once.Do(func() { close(c) })
		<-gate
	}
	return c, func() { close(gate) }
}

// The per-item retry-isolation pin (ISSUE 6 satellite): a DetectedCorrupt
// on one item of a coalesced dispatch must not restart or fail its sibling
// items — the corrupted item alone falls back to a solo retry, with the
// batch attempt charged to its attempt budget, while the siblings keep
// their first-pass results.
func TestBatchRetryIsolation(t *testing.T) {
	s := New(Config{
		Workers: 1, BatchMax: 8,
		Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond},
	})
	defer s.Close()
	claimed, release := gateWorker(s)

	// The blocker occupies the worker so the three real jobs queue up.
	blocker, err := s.Submit(context.Background(), batchLUSpec(7, nil))
	if err != nil {
		t.Fatal(err)
	}
	<-claimed
	hA, err := s.Submit(context.Background(), batchLUSpec(11, nil))
	if err != nil {
		t.Fatal(err)
	}
	hB, err := s.Submit(context.Background(), batchLUSpec(13, corruptingInjector(t)))
	if err != nil {
		t.Fatal(err)
	}
	hC, err := s.Submit(context.Background(), batchLUSpec(17, nil))
	if err != nil {
		t.Fatal(err)
	}
	release()

	if _, err := blocker.Wait(context.Background()); err != nil {
		t.Fatalf("blocker failed: %v", err)
	}
	for _, tc := range []struct {
		name     string
		h        *JobHandle
		attempts int
	}{
		{"clean sibling A", hA, 1},
		{"injected item B", hB, 2},
		{"clean sibling C", hC, 1},
	} {
		res, err := tc.h.Wait(context.Background())
		if err != nil {
			t.Fatalf("%s failed: %v", tc.name, err)
		}
		if res.Outcome != core.FaultFree {
			t.Fatalf("%s outcome = %v, want fault-free", tc.name, res.Outcome)
		}
		if res.Attempts != tc.attempts {
			t.Fatalf("%s attempts = %d, want %d", tc.name, res.Attempts, tc.attempts)
		}
		if res.Coalesced != 3 {
			t.Fatalf("%s coalesced = %d, want 3", tc.name, res.Coalesced)
		}
		if res.X == nil {
			t.Fatalf("%s solve leg missing", tc.name)
		}
	}

	st := s.Stats()
	if st.Completed != 4 || st.Failed != 0 {
		t.Fatalf("Completed/Failed = %d/%d, want 4/0", st.Completed, st.Failed)
	}
	if st.Retries != 1 || st.Restarts != 1 || st.Resumed != 0 {
		t.Fatalf("Retries/Restarts/Resumed = %d/%d/%d, want 1/1/0 (only the injected item retried)",
			st.Retries, st.Restarts, st.Resumed)
	}
	if st.BatchDispatches != 1 || st.JobsCoalesced != 3 {
		t.Fatalf("BatchDispatches/JobsCoalesced = %d/%d, want 1/3",
			st.BatchDispatches, st.JobsCoalesced)
	}
}

// Partial cache service: a coalesced dispatch serves cached items per item
// and runs the batched factorization only for the rest; fresh results fill
// the cache for later traffic.
func TestBatchPartialCache(t *testing.T) {
	s := New(Config{Workers: 1, BatchMax: 8})
	defer s.Close()

	spec := func(seed uint64) JobSpec {
		return JobSpec{
			Decomp: Cholesky,
			A:      ftla.RandomSPD(64, seed),
			Config: ftla.Config{GPUs: 1, NB: 32},
		}
	}
	// Warm the cache with seed 1 on the ordinary path.
	h, err := s.Submit(context.Background(), spec(1))
	if err != nil {
		t.Fatal(err)
	}
	if res, err := h.Wait(context.Background()); err != nil || res.CacheHit {
		t.Fatalf("warmup: res=%+v err=%v", res, err)
	}

	claimed, release := gateWorker(s)
	blocker, err := s.Submit(context.Background(), spec(99))
	if err != nil {
		t.Fatal(err)
	}
	<-claimed
	hot, err := s.Submit(context.Background(), spec(1)) // cached
	if err != nil {
		t.Fatal(err)
	}
	cold2, err := s.Submit(context.Background(), spec(2))
	if err != nil {
		t.Fatal(err)
	}
	cold3, err := s.Submit(context.Background(), spec(3))
	if err != nil {
		t.Fatal(err)
	}
	release()
	if _, err := blocker.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	res, err := hot.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit || res.Attempts != 0 || res.Coalesced != 3 {
		t.Fatalf("cached item: CacheHit=%v Attempts=%d Coalesced=%d, want true/0/3",
			res.CacheHit, res.Attempts, res.Coalesced)
	}
	for i, ch := range []*JobHandle{cold2, cold3} {
		res, err := ch.Wait(context.Background())
		if err != nil {
			t.Fatalf("cold item %d: %v", i, err)
		}
		if res.CacheHit || res.Attempts != 1 || res.Coalesced != 3 {
			t.Fatalf("cold item %d: CacheHit=%v Attempts=%d Coalesced=%d, want false/1/3",
				i, res.CacheHit, res.Attempts, res.Coalesced)
		}
	}
	// The batch filled the cache: seed 2 now serves without a run.
	h2, err := s.Submit(context.Background(), spec(2))
	if err != nil {
		t.Fatal(err)
	}
	if res, err := h2.Wait(context.Background()); err != nil || !res.CacheHit {
		t.Fatalf("post-batch lookup: CacheHit=%v err=%v, want a pure cache hit", res.CacheHit, err)
	}

	st := s.Stats()
	if st.BatchDispatches != 1 || st.JobsCoalesced != 3 {
		t.Fatalf("BatchDispatches/JobsCoalesced = %d/%d, want 1/3", st.BatchDispatches, st.JobsCoalesced)
	}
	if st.JobsPerSec <= 0 {
		t.Fatalf("JobsPerSec = %g, want > 0", st.JobsPerSec)
	}
	// The batch metrics are registered series, visible to /metrics scrapes.
	var buf bytes.Buffer
	if err := s.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{MetricBatchSize, MetricBatchJobsCoalesced, MetricBatchDispatches} {
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("scrape missing %s", name)
		}
	}
}

// A lingering worker holds the dispatch open for batchmates that arrive
// after it claimed the leader, dispatching early once BatchMax is reached.
func TestBatchLingerGathersLateArrivals(t *testing.T) {
	s := New(Config{Workers: 1, BatchMax: 3, BatchLinger: time.Second})
	defer s.Close()

	spec := func(seed uint64) JobSpec {
		return JobSpec{
			Decomp:  Cholesky,
			A:       ftla.RandomSPD(64, seed),
			Config:  ftla.Config{GPUs: 1, NB: 32},
			NoCache: true,
		}
	}
	h1, err := s.Submit(context.Background(), spec(1))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let the worker claim h1 and start lingering
	h2, err := s.Submit(context.Background(), spec(2))
	if err != nil {
		t.Fatal(err)
	}
	h3, err := s.Submit(context.Background(), spec(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range []*JobHandle{h1, h2, h3} {
		res, err := h.Wait(context.Background())
		if err != nil {
			t.Fatalf("job %d: %v", i+1, err)
		}
		if res.Coalesced != 3 {
			t.Fatalf("job %d coalesced = %d, want 3 (linger should gather late arrivals)", i+1, res.Coalesced)
		}
	}
}

// Jobs with per-run control flow (deadlines, traces, checkpoints,
// fail-stop plans) never coalesce: they keep the solo path and its full
// retry machinery.
func TestBatchIneligibleSpecsStaySolo(t *testing.T) {
	s := New(Config{Workers: 1, BatchMax: 8})
	defer s.Close()
	claimed, release := gateWorker(s)

	solo := JobSpec{
		Decomp:  Cholesky,
		A:       ftla.RandomSPD(64, 1),
		Config:  ftla.Config{GPUs: 1, NB: 32},
		NoCache: true,
		Trace:   true, // per-job trace scope: ineligible
	}
	blocker, err := s.Submit(context.Background(), solo)
	if err != nil {
		t.Fatal(err)
	}
	<-claimed
	hA, err := s.Submit(context.Background(), solo)
	if err != nil {
		t.Fatal(err)
	}
	hB, err := s.Submit(context.Background(), solo)
	if err != nil {
		t.Fatal(err)
	}
	release()
	for _, h := range []*JobHandle{blocker, hA, hB} {
		res, err := h.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Coalesced != 0 {
			t.Fatalf("traced job coalesced = %d, want solo", res.Coalesced)
		}
		if res.Trace == nil {
			t.Fatal("traced job lost its trace")
		}
	}
	if st := s.Stats(); st.BatchDispatches != 0 {
		t.Fatalf("BatchDispatches = %d, want 0", st.BatchDispatches)
	}
}
