// Package service is the serving layer over the ftla decompositions: a
// concurrent job scheduler that multiplexes factorization/solve requests
// onto a bounded worker pool running on reusable simulated systems, with
// production semantics the library itself does not provide —
//
//   - admission control: a bounded queue with three priority classes;
//     submissions beyond capacity fail fast with ErrQueueFull
//     (backpressure) instead of growing without bound,
//   - per-job deadlines and cancellation via context.Context,
//   - a retry policy acting on the paper's outcome taxonomy (§X.B): runs
//     whose ABFT layer repaired everything online (fault-free, corrected,
//     locally restarted) succeed with the recovery recorded in the report;
//     runs in the complete-restart bucket (detected-but-corrupt, or a
//     silent corruption caught by the service's own residual check) are
//     automatically rerun on a fresh injector-free system with capped
//     exponential backoff; persistent corruption degrades gracefully to a
//     CorruptError carrying the last report,
//   - a factorization cache (LRU over matrix fingerprints) serving the
//     factor-once/solve-many pattern without refactorization,
//   - aggregate statistics: outcome histogram, retry/cache/pool counters,
//     queue and latency gauges, and fleet-wide device utilization.
package service

import (
	"context"
	"runtime"
	"sync"
	"time"

	"ftla"
	"ftla/internal/hetsim"
	"ftla/internal/obs"
)

// Config sizes a Scheduler. The zero value selects sensible defaults.
type Config struct {
	// Workers is the number of concurrent jobs (default GOMAXPROCS/2,
	// minimum 1 — each job already fans out across simulated devices).
	Workers int
	// QueueDepth bounds admitted-but-undispatched jobs (default 64);
	// submissions beyond it are rejected with ErrQueueFull.
	QueueDepth int
	// MaxIdleSystems bounds pooled idle systems per platform config
	// (default 4).
	MaxIdleSystems int
	// CacheEntries bounds the factorization cache (default 64 entries).
	CacheEntries int
	// Retry is the corruption retry policy (zero value: DefaultRetryPolicy).
	Retry RetryPolicy
	// Registry receives the scheduler's metrics (job counters, the outcome
	// series, queue gauges, latency histograms; see the Metric* constants).
	// nil selects a fresh private registry, so concurrent schedulers (one
	// per test, say) never share counters. Library-level instrumentation
	// (flops, phase attribution, PCIe traffic) always lands in obs.Default,
	// which is process-wide by design.
	Registry *obs.Registry
}

func (c Config) normalize() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0) / 2
		if c.Workers < 1 {
			c.Workers = 1
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	c.Retry = c.Retry.normalize()
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return c
}

// Scheduler runs factorization jobs on a bounded worker pool.
type Scheduler struct {
	cfg   Config
	pool  *systemPool
	cache *factorCache
	met   *metrics

	mu      sync.Mutex
	cond    *sync.Cond
	queues  [numPriorities][]*JobHandle
	queued  int
	running int
	closed  bool
	nextID  uint64
	wg      sync.WaitGroup

	// beforeRun, when set (tests only), runs on the worker after a job is
	// claimed and before it executes — a seam for making dispatch timing
	// deterministic.
	beforeRun func(h *JobHandle)
}

// New starts a scheduler with cfg.Workers workers. The caller must Close it.
func New(cfg Config) *Scheduler {
	cfg = cfg.normalize()
	met := newMetrics(cfg.Registry)
	s := &Scheduler{
		cfg:   cfg,
		pool:  newSystemPool(cfg.MaxIdleSystems, met),
		cache: newFactorCache(cfg.CacheEntries, met),
		met:   met,
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Submit admits a job. It never blocks: a full queue rejects immediately
// with ErrQueueFull, the backpressure contract. ctx covers the job's whole
// lifetime — a job whose context expires while queued or between retry
// attempts finishes with the context's error. A nil ctx means Background.
func (s *Scheduler) Submit(ctx context.Context, spec JobSpec) (*JobHandle, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	pri := spec.Priority
	if pri >= numPriorities {
		pri = numPriorities - 1
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if s.queued >= s.cfg.QueueDepth {
		s.mu.Unlock()
		s.met.rejected.Inc()
		return nil, ErrQueueFull
	}
	s.nextID++
	h := &JobHandle{
		ID:       s.nextID,
		spec:     spec,
		ctx:      ctx,
		enqueued: time.Now(),
		done:     make(chan struct{}),
	}
	s.queues[pri] = append(s.queues[pri], h)
	s.queued++
	s.met.queueDepth.Set(int64(s.queued))
	s.cond.Signal()
	s.mu.Unlock()
	s.met.submitted.Inc()
	return h, nil
}

// Close stops admission, drains every queued job, waits for running jobs to
// finish, and returns.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// Stats snapshots the scheduler's aggregate counters and gauges.
func (s *Scheduler) Stats() Stats {
	st := s.met.snapshot()
	st.Devices = s.pool.utilization()
	s.mu.Lock()
	st.QueueDepth = s.queued
	st.Running = s.running
	s.mu.Unlock()
	return st
}

// Registry returns the registry holding the scheduler's metrics — the one
// from Config.Registry, or the private registry normalize minted. Servers
// expose it next to obs.Default for scraping.
func (s *Scheduler) Registry() *obs.Registry { return s.cfg.Registry }

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.queued == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.queued == 0 {
			s.mu.Unlock()
			return
		}
		var h *JobHandle
		for pri := numPriorities - 1; pri >= 0; pri-- {
			if q := s.queues[pri]; len(q) > 0 {
				h = q[0]
				s.queues[pri] = q[1:]
				break
			}
		}
		s.queued--
		s.running++
		s.met.queueDepth.Set(int64(s.queued))
		s.met.running.Set(int64(s.running))
		s.mu.Unlock()
		if s.beforeRun != nil {
			s.beforeRun(h)
		}
		s.run(h)
		s.mu.Lock()
		s.running--
		s.met.running.Set(int64(s.running))
		s.mu.Unlock()
	}
}

// run drives one job to a terminal state: cache fast path, then the
// attempt/retry loop of the RetryPolicy.
func (s *Scheduler) run(h *JobHandle) {
	spec := h.spec
	wait := time.Since(h.enqueued)
	start := time.Now()

	var tr *obs.Trace
	if spec.Trace {
		tr = obs.NewTrace()
	}

	fail := func(err error) {
		s.met.failed.Inc()
		h.finish(nil, err)
	}
	cancel := func(err error) {
		s.met.canceled.Inc()
		h.finish(nil, err)
	}
	succeed := func(f *Factorization, attempts int, cacheHit bool) {
		res := &JobResult{
			Outcome:  f.Outcome,
			Factors:  f,
			Residual: f.Residual,
			Attempts: attempts,
			CacheHit: cacheHit,
			Wait:     wait,
			Trace:    tr,
		}
		if spec.B != nil {
			x, err := f.Solve(spec.B)
			if err != nil {
				fail(err)
				return
			}
			res.X = x
		}
		res.Run = time.Since(start)
		s.met.jobDone(f.Outcome, wait, res.Run)
		h.finish(res, nil)
	}

	if err := h.ctx.Err(); err != nil {
		cancel(err)
		return
	}

	var key fingerprint
	if !spec.NoCache {
		key = fingerprintOf(spec.Decomp, spec.A)
		if f, ok := s.cache.get(key); ok {
			succeed(f, 0, true)
			return
		}
	}

	sysCfg := spec.Config.SystemConfig()
	for attempt := 1; ; attempt++ {
		if err := h.ctx.Err(); err != nil {
			cancel(err)
			return
		}
		cfg := spec.Config
		if attempt > 1 {
			// Complete restart: fresh pooled (Reset) system, no injector —
			// the transient that corrupted the previous attempt is gone.
			cfg.Injector = nil
		}
		sys := s.pool.acquire(sysCfg)
		if tr != nil {
			// Per-attempt spans accumulate into the job's one trace; the
			// pool's release → Reset detaches it with the other per-run
			// attachments.
			sys.SetTracer(tr)
		}
		f, err := runDecomposition(sys, spec, cfg)
		s.pool.release(sys)
		if err != nil {
			// Construction-time errors (bad dimensions, invalid options) are
			// deterministic; retrying cannot help.
			fail(err)
			return
		}
		if !needsRestart(f.Outcome) {
			if !spec.NoCache {
				s.cache.put(key, f)
			}
			succeed(f, attempt, false)
			return
		}
		if attempt >= s.cfg.Retry.MaxAttempts {
			fail(&CorruptError{Outcome: f.Outcome, Report: f.Report(), Attempts: attempt})
			return
		}
		s.met.retries.Inc()
		timer := time.NewTimer(s.cfg.Retry.Backoff(attempt))
		select {
		case <-h.ctx.Done():
			timer.Stop()
			cancel(h.ctx.Err())
			return
		case <-timer.C:
		}
	}
}

// runDecomposition executes one attempt on the given system and classifies
// its outcome from the report plus the service's own residual check.
func runDecomposition(sys *hetsim.System, spec JobSpec, cfg ftla.Config) (*Factorization, error) {
	tol := spec.tol()
	switch spec.Decomp {
	case Cholesky:
		r, err := ftla.CholeskyOn(sys, spec.A, cfg)
		if err != nil {
			return nil, err
		}
		resid := r.Residual(spec.A)
		return &Factorization{
			Decomp: Cholesky, Chol: r, Residual: resid,
			Outcome: r.Report.OutcomeOf(resid <= tol),
		}, nil
	case LU:
		r, err := ftla.LUOn(sys, spec.A, cfg)
		if err != nil {
			return nil, err
		}
		resid := r.Residual(spec.A)
		return &Factorization{
			Decomp: LU, LU: r, Residual: resid,
			Outcome: r.Report.OutcomeOf(resid <= tol),
		}, nil
	default:
		r, err := ftla.QROn(sys, spec.A, cfg)
		if err != nil {
			return nil, err
		}
		resid := r.Residual(spec.A)
		return &Factorization{
			Decomp: QR, QR: r, Residual: resid,
			Outcome: r.Report.OutcomeOf(resid <= tol),
		}, nil
	}
}
