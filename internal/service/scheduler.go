// Package service is the serving layer over the ftla decompositions: a
// concurrent job scheduler that multiplexes factorization/solve requests
// onto a bounded worker pool running on reusable simulated systems, with
// production semantics the library itself does not provide —
//
//   - admission control: a bounded queue with three priority classes;
//     submissions beyond capacity fail fast with ErrQueueFull
//     (backpressure) instead of growing without bound,
//   - per-job deadlines (JobSpec.Deadline → typed *DeadlineError),
//     per-attempt timeouts (Config.AttemptTimeout), and cancellation via
//     context.Context — all bound into the running system, so they abort
//     kernels mid-factorization rather than after,
//   - graceful degradation under fail-stop faults: an attempt aborted by
//     a device crash or hang quarantines its system (the pool's circuit
//     breaker, with probation re-admission), degrades the platform to the
//     surviving GPU count, and retries; persistent loss terminates with a
//     typed *FailStopError. An attempt aborted by a PCIe link fault that
//     exhausted the reliable-transfer protocol's retransmissions
//     (*hetsim.LinkError) is classified the same way — the link's GPU is
//     quarantined and the platform degrades around it,
//   - a retry policy acting on the paper's outcome taxonomy (§X.B): runs
//     whose ABFT layer repaired everything online (fault-free, corrected,
//     locally restarted) succeed with the recovery recorded in the report;
//     runs in the complete-restart bucket (detected-but-corrupt, or a
//     silent corruption caught by the service's own residual check) are
//     automatically rerun on a fresh injector-free system with capped
//     exponential backoff; persistent corruption degrades gracefully to a
//     CorruptError carrying the last report,
//   - checkpoint-based resume: when the job enables mid-run checkpoints
//     (ftla.Config.CheckpointEvery), retries prefer replaying from the
//     job's last known-clean snapshot over restarting from scratch — a
//     device-loss abort at step k resumes from the checkpoint on the
//     surviving GPUs; only jobs without a usable checkpoint (none taken,
//     silently corrupt result, or a failed resume) pay the full rerun
//     (see RetryPolicy and attemptOutcome),
//   - a factorization cache (LRU over matrix fingerprints) serving the
//     factor-once/solve-many pattern without refactorization,
//   - aggregate statistics: outcome histogram, retry/cache/pool counters,
//     queue and latency gauges, and fleet-wide device utilization.
package service

import (
	"context"
	"errors"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"ftla"
	"ftla/internal/batch"
	"ftla/internal/core"
	"ftla/internal/hetsim"
	"ftla/internal/matrix"
	"ftla/internal/obs"
)

// Config sizes a Scheduler. The zero value selects sensible defaults.
type Config struct {
	// Workers is the number of concurrent jobs (default GOMAXPROCS/2,
	// minimum 1 — each job already fans out across simulated devices).
	Workers int
	// QueueDepth bounds admitted-but-undispatched jobs (default 64);
	// submissions beyond it are rejected with ErrQueueFull.
	QueueDepth int
	// MaxIdleSystems bounds pooled idle systems per platform config
	// (default 4).
	MaxIdleSystems int
	// CacheEntries bounds the factorization cache (default 64 entries).
	CacheEntries int
	// Retry is the corruption retry policy (zero value: DefaultRetryPolicy).
	Retry RetryPolicy
	// AttemptTimeout bounds each factorization attempt's wall-clock time.
	// The per-attempt context is bound into the running system, so a hung
	// or runaway attempt is aborted at its next kernel gate and the job
	// retries (attempts permitting) instead of wedging a worker forever.
	// Zero means attempts are bounded only by the job's Deadline/context.
	AttemptTimeout time.Duration
	// BatchMax caps how many queued jobs one coalesced batched dispatch may
	// carry (default 16). 1 disables coalescing: every job takes the solo
	// path. Only jobs whose specs agree on every run-shaping parameter
	// (decomposition, shape, protection, scheme, schedule, platform) are
	// coalesced, and only specs without per-run control flow (fail-stop
	// plans, checkpointing, deadlines, traces) are eligible.
	BatchMax int
	// BatchLinger is how long a worker holds an eligible dispatch open
	// waiting for batchmates after the queue runs dry (default 0: coalesce
	// only jobs already queued at dispatch time). A nonzero linger trades
	// that much added latency on the first job for larger batches under
	// steady load.
	BatchLinger time.Duration
	// Seed seeds the scheduler's internal randomness — currently the
	// backoff jitter (RetryPolicy.Backoff) — making retry timing
	// reproducible in tests. Zero selects a fixed default seed; schedulers
	// are deterministic either way, just differently jittered.
	Seed uint64
	// Registry receives the scheduler's metrics (job counters, the outcome
	// series, queue gauges, latency histograms; see the Metric* constants).
	// nil selects a fresh private registry, so concurrent schedulers (one
	// per test, say) never share counters. Library-level instrumentation
	// (flops, phase attribution, PCIe traffic) always lands in obs.Default,
	// which is process-wide by design.
	Registry *obs.Registry
}

func (c Config) normalize() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0) / 2
		if c.Workers < 1 {
			c.Workers = 1
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 16
	}
	c.Retry = c.Retry.normalize()
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return c
}

// Scheduler runs factorization jobs on a bounded worker pool.
type Scheduler struct {
	cfg   Config
	pool  *systemPool
	cache *factorCache
	met   *metrics

	rngMu sync.Mutex
	rng   *matrix.RNG // backoff jitter source, seeded by Config.Seed

	// start anchors the Stats.JobsPerSec throughput rate.
	start time.Time

	mu      sync.Mutex
	cond    *sync.Cond
	queues  [numPriorities][]*JobHandle
	queued  int
	running int
	closed  bool
	nextID  uint64
	wg      sync.WaitGroup

	// beforeRun, when set (tests only), runs on the worker after a job is
	// claimed and before it executes — a seam for making dispatch timing
	// deterministic.
	beforeRun func(h *JobHandle)
}

// New starts a scheduler with cfg.Workers workers. The caller must Close it.
func New(cfg Config) *Scheduler {
	cfg = cfg.normalize()
	met := newMetrics(cfg.Registry)
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x5eed0f5e12e5 // fixed default: deterministic jitter
	}
	s := &Scheduler{
		cfg:   cfg,
		pool:  newSystemPool(cfg.MaxIdleSystems, met),
		cache: newFactorCache(cfg.CacheEntries, met),
		met:   met,
		rng:   matrix.NewRNG(seed),
		start: time.Now(),
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Submit admits a job. It never blocks: a full queue rejects immediately
// with ErrQueueFull, the backpressure contract. ctx covers the job's whole
// lifetime — a job whose context expires while queued or between retry
// attempts finishes with the context's error. A nil ctx means Background.
func (s *Scheduler) Submit(ctx context.Context, spec JobSpec) (*JobHandle, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	pri := spec.Priority
	if pri >= numPriorities {
		pri = numPriorities - 1
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if s.queued >= s.cfg.QueueDepth {
		s.mu.Unlock()
		s.met.rejected.Inc()
		return nil, ErrQueueFull
	}
	s.nextID++
	h := &JobHandle{
		ID:       s.nextID,
		spec:     spec,
		ctx:      ctx,
		enqueued: time.Now(),
		done:     make(chan struct{}),
	}
	s.queues[pri] = append(s.queues[pri], h)
	s.queued++
	s.met.queueDepth.Set(int64(s.queued))
	s.cond.Signal()
	s.mu.Unlock()
	s.met.submitted.Inc()
	return h, nil
}

// Close stops admission, drains every queued job, waits for running jobs to
// finish, and returns.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// Stats snapshots the scheduler's aggregate counters and gauges.
func (s *Scheduler) Stats() Stats {
	st := s.met.snapshot()
	st.Devices = s.pool.utilization()
	if up := time.Since(s.start).Seconds(); up > 0 {
		st.JobsPerSec = float64(st.Completed) / up
	}
	s.mu.Lock()
	st.QueueDepth = s.queued
	st.Running = s.running
	s.mu.Unlock()
	return st
}

// Registry returns the registry holding the scheduler's metrics — the one
// from Config.Registry, or the private registry normalize minted. Servers
// expose it next to obs.Default for scraping.
func (s *Scheduler) Registry() *obs.Registry { return s.cfg.Registry }

// batchLingerPoll is how often a lingering worker rescans the queue for
// batchmates (see Config.BatchLinger).
const batchLingerPoll = 200 * time.Microsecond

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.queued == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.queued == 0 {
			s.mu.Unlock()
			return
		}
		var h *JobHandle
		for pri := numPriorities - 1; pri >= 0; pri-- {
			if q := s.queues[pri]; len(q) > 0 {
				h = q[0]
				s.queues[pri] = q[1:]
				break
			}
		}
		s.queued--
		s.running++
		// Coalesce: sweep every queue (all priorities) for jobs that may
		// share the leader's batched dispatch, then optionally linger for
		// batchmates still arriving.
		hs := []*JobHandle{h}
		var key batch.Key
		coalescing := s.cfg.BatchMax > 1 && h.spec.batchable()
		if coalescing {
			key = h.spec.batchKey()
			hs = append(hs, s.gatherLocked(key, s.cfg.BatchMax-len(hs))...)
		}
		s.met.queueDepth.Set(int64(s.queued))
		s.met.running.Set(int64(s.running))
		s.mu.Unlock()
		if coalescing && s.cfg.BatchLinger > 0 && len(hs) < s.cfg.BatchMax {
			deadline := time.Now().Add(s.cfg.BatchLinger)
			for {
				time.Sleep(batchLingerPoll)
				s.mu.Lock()
				hs = append(hs, s.gatherLocked(key, s.cfg.BatchMax-len(hs))...)
				closed := s.closed
				s.met.queueDepth.Set(int64(s.queued))
				s.met.running.Set(int64(s.running))
				s.mu.Unlock()
				if closed || len(hs) >= s.cfg.BatchMax || !time.Now().Before(deadline) {
					break
				}
			}
		}
		if s.beforeRun != nil {
			for _, bh := range hs {
				s.beforeRun(bh)
			}
		}
		if len(hs) == 1 {
			s.run(h)
		} else {
			s.runBatch(hs)
		}
		s.mu.Lock()
		s.running -= len(hs)
		s.met.running.Set(int64(s.running))
		s.mu.Unlock()
	}
}

// gatherLocked removes up to max queued jobs whose specs match the batch
// key — scanning highest priority first, submission order within each class
// — and marks them running. The caller holds s.mu.
func (s *Scheduler) gatherLocked(key batch.Key, max int) []*JobHandle {
	var out []*JobHandle
	for pri := numPriorities - 1; pri >= 0 && len(out) < max; pri-- {
		q := s.queues[pri]
		kept := q[:0]
		for _, h := range q {
			if len(out) < max && h.spec.batchable() && h.spec.batchKey() == key {
				out = append(out, h)
				s.queued--
				s.running++
				continue
			}
			kept = append(kept, h)
		}
		s.queues[pri] = kept
	}
	return out
}

// jitter draws one uniform variate in [0, 1) from the scheduler's seeded
// source — the RetryPolicy.Backoff jitter input.
func (s *Scheduler) jitter() float64 {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return s.rng.Float64()
}

// run drives one job to a terminal state: cache fast path, then the
// attempt/retry loop of the RetryPolicy, classifying each attempt's
// failure — corruption (complete restart), fail-stop device fault
// (quarantine the system, retry on a degraded platform), context expiry
// (cancellation or a typed DeadlineError), or a deterministic construction
// error (fail fast).
func (s *Scheduler) run(h *JobHandle) {
	spec := h.spec
	wait := time.Since(h.enqueued)
	start := time.Now()

	var tr *obs.Trace
	if spec.Trace {
		tr = obs.NewTrace()
	}

	// jctx is the job's service-time budget: the submission context,
	// tightened by JobSpec.Deadline measured from dispatch.
	jctx := h.ctx
	if spec.Deadline > 0 {
		var jcancel context.CancelFunc
		jctx, jcancel = context.WithTimeout(h.ctx, spec.Deadline)
		defer jcancel()
	}

	fail := func(err error) {
		s.met.failed.Inc()
		h.finish(nil, err)
	}
	cancel := func(err error) {
		s.met.canceled.Inc()
		h.finish(nil, err)
	}
	deadline := func(attempts int, cause error) {
		s.met.deadlineExceeded.Inc()
		s.met.failed.Inc()
		h.finish(nil, &DeadlineError{Deadline: spec.Deadline, Attempts: h.prior + attempts, Cause: cause})
	}
	// expire routes a job-budget expiry to the right terminal state: the
	// caller's context going first means cancellation; otherwise the
	// spec's Deadline ran out.
	expire := func(attempts int, cause error) {
		if err := h.ctx.Err(); err != nil {
			cancel(err)
			return
		}
		deadline(attempts, cause)
	}
	// resumedAttempts counts this job's attempts that replayed from a
	// checkpoint instead of restarting (JobResult.Resumed).
	resumedAttempts := 0
	succeed := func(f *Factorization, attempts int, cacheHit bool) {
		res := &JobResult{
			Outcome:   f.Outcome,
			Factors:   f,
			Residual:  f.Residual,
			Attempts:  h.prior + attempts,
			Resumed:   resumedAttempts,
			CacheHit:  cacheHit,
			Coalesced: h.coalesced,
			Wait:      wait,
			Trace:     tr,
		}
		if spec.B != nil {
			x, err := f.Solve(spec.B)
			if err != nil {
				fail(err)
				return
			}
			res.X = x
		}
		res.Run = time.Since(start)
		s.met.jobDone(f.Outcome, wait, res.Run)
		h.finish(res, nil)
	}
	// injected snapshots the fault descriptions the job's injector fired,
	// for diagnosable CorruptError messages.
	injected := func() []string {
		if spec.Config.Injector == nil {
			return nil
		}
		events := spec.Config.Injector.Events()
		out := make([]string, 0, len(events))
		for _, ev := range events {
			out = append(out, ev.Spec.Describe())
		}
		return out
	}

	if err := jctx.Err(); err != nil {
		expire(0, nil)
		return
	}

	var key fingerprint
	if !spec.NoCache {
		key = fingerprintOf(spec.Decomp, spec.A)
		if f, ok := s.cache.get(key); ok {
			succeed(f, 0, true)
			return
		}
	}

	// sysCfg is the platform the job runs on. A GPU loss degrades it in
	// place — the retry reruns on a rebuilt system with the surviving GPU
	// count, so a job that lost GPU 3 of 4 completes on a 3-GPU platform.
	sysCfg := spec.Config.SystemConfig()
	// resumeCP is the job's latest known-clean checkpoint, captured
	// synchronously on this goroutine as the running attempt takes
	// snapshots. Checkpoints are host-side state: they survive the
	// quarantine of the system that produced them, which is what lets a
	// device-loss abort resume on the degraded platform.
	var resumeCP *ftla.Checkpoint
	for attempt := 1; ; attempt++ {
		if jctx.Err() != nil {
			expire(attempt-1, nil)
			return
		}
		cfg := spec.Config
		wasResume := false
		if attempt > 1 {
			// Retry: fresh pooled (Reset) system, no injector, no armed
			// fault plans — the transient that corrupted or killed the
			// previous attempt is gone; only the (possibly degraded)
			// platform shape carries over. With a usable checkpoint the
			// retry resumes from it (attemptResume); otherwise it restarts
			// from scratch (attemptRestart).
			cfg.Injector = nil
			cfg.FailStop = nil
			cfg.LinkFault = nil
			cfg.NodeFault = nil
			cfg.Resume = resumeCP
			if resumeCP != nil {
				wasResume = true
				resumedAttempts++
			}
		}
		if cfg.CheckpointEvery > 0 {
			// Capture each snapshot as the attempt takes it, chaining any
			// caller-supplied sink. OnCheckpoint runs on this goroutine
			// (inside runDecomposition), so no synchronization is needed.
			sink := spec.Config.OnCheckpoint
			cfg.OnCheckpoint = func(cp *ftla.Checkpoint) {
				resumeCP = cp
				if sink != nil {
					sink(cp)
				}
			}
		}
		actx, acancel := jctx, context.CancelFunc(func() {})
		if s.cfg.AttemptTimeout > 0 {
			actx, acancel = context.WithTimeout(jctx, s.cfg.AttemptTimeout)
		}
		sys := s.pool.acquire(sysCfg)
		if g := s.pool.takeSuspect(sys); g >= 0 && g < sysCfg.NumGPUs &&
			sysCfg.NumGPUs > 1 && cfg.Injector == nil && cfg.Rebalance.Every == 0 {
			// Probation probe carrying a suspect GPU: instead of trusting the
			// repaired device with a full cyclic share, arm the rebalancer so
			// the suspect re-enters at the MinShare floor and must earn width
			// back through measured throughput. Jobs that configured their own
			// rebalancing (or an injector, under which rebalancing is inert)
			// keep their settings.
			cfg.Rebalance = ftla.RebalanceConfig{Every: 1, Suspect: []int{g}}
		}
		// Bind the attempt context into the system: kernels and transfers
		// gate on it, so cancellation, the job Deadline, and the attempt
		// timeout all abort mid-factorization instead of after it.
		sys.Bind(actx)
		if tr != nil {
			// Per-attempt spans accumulate into the job's one trace; the
			// pool's release → Reset detaches it with the other per-run
			// attachments.
			sys.SetTracer(tr)
		}
		attemptStart := time.Now()
		f, err := runDecomposition(sys, spec, cfg)
		acancel()
		if err != nil {
			aborted := time.Since(attemptStart)
			var lost *hetsim.DeviceLostError
			var hung *hetsim.DeviceHungError
			var link *hetsim.LinkError
			var nodeLost *hetsim.NodeLostError
			switch {
			case errors.As(err, &nodeLost):
				// Whole-node loss the coded redundancy could not absorb (the
				// parity column was already spent on an earlier loss, or no
				// redundancy was configured). Quarantine the system and retry
				// on a cluster with the dead node carved out; the checkpoint
				// machinery below makes that retry a resume when one exists.
				s.met.nodeLost.Inc()
				s.met.abortSeconds.Observe(aborted.Seconds())
				if tr != nil {
					tr.WallSpan("node-lost:N"+strconv.Itoa(nodeLost.Node), "fault", attemptStart, aborted)
				}
				s.pool.quarantine(sys)
				degradeNode(&sysCfg)
				if jctx.Err() != nil {
					expire(attempt, err)
					return
				}
				if attempt >= s.cfg.Retry.MaxAttempts {
					fail(&FailStopError{Attempts: h.prior + attempt, Cause: err})
					return
				}
			case errors.As(err, &link):
				// PCIe link fault the reliable-transfer protocol could not
				// absorb: the link's GPU is suspect exactly like a lost
				// device (a flaky connector and a dying card are
				// indistinguishable from the host side). Quarantine the
				// system, degrade to the surviving GPU count, and retry.
				s.met.linkLost.Inc()
				s.met.abortSeconds.Observe(aborted.Seconds())
				if tr != nil {
					tr.WallSpan("link-lost:GPU"+strconv.Itoa(link.Link), "fault", attemptStart, aborted)
				}
				s.pool.quarantineSuspect(sys, link.Link)
				if sysCfg.NumGPUs > 1 {
					if sysCfg.Nodes > 1 {
						// A lone GPU cannot be carved out of a cluster config
						// (GPU count must stay divisible by the node count):
						// retire the whole node behind the dead link.
						degradeNode(&sysCfg)
					} else {
						sysCfg.NumGPUs--
					}
				}
				if jctx.Err() != nil {
					expire(attempt, err)
					return
				}
				if attempt >= s.cfg.Retry.MaxAttempts {
					fail(&FailStopError{Attempts: h.prior + attempt, Cause: err})
					return
				}
			case errors.As(err, &lost), errors.As(err, &hung):
				// Fail-stop fault: the system is unsafe to reuse as-is.
				// Quarantine it, degrade the platform if a GPU died, and
				// retry on a rebuilt system.
				name, g := "", -1
				if lost != nil {
					name, g = lost.Device, lost.GPU
				} else {
					name, g = hung.Device, hung.GPU
				}
				s.met.deviceLost.Inc()
				s.met.abortSeconds.Observe(aborted.Seconds())
				if tr != nil {
					tr.WallSpan("device-lost:"+name, "fault", attemptStart, aborted)
				}
				s.pool.quarantineSuspect(sys, g)
				if g >= 0 && sysCfg.NumGPUs > 1 {
					if sysCfg.Nodes > 1 {
						// A lone GPU cannot be carved out of a cluster config
						// (GPU count must stay divisible by the node count):
						// retire the whole node the dead device lived on.
						degradeNode(&sysCfg)
					} else {
						sysCfg.NumGPUs--
					}
				}
				if jctx.Err() != nil {
					expire(attempt, err)
					return
				}
				if attempt >= s.cfg.Retry.MaxAttempts {
					fail(&FailStopError{Attempts: h.prior + attempt, Cause: err})
					return
				}
			case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
				// Context abort without a device fault: the job was
				// canceled, its Deadline fired, or the AttemptTimeout
				// reaped a slow attempt. The system itself is healthy.
				s.met.abortSeconds.Observe(aborted.Seconds())
				s.pool.release(sys)
				if jctx.Err() != nil {
					expire(attempt, err)
					return
				}
				// Only the per-attempt timeout expired: retryable.
				if attempt >= s.cfg.Retry.MaxAttempts {
					fail(err)
					return
				}
			default:
				// Construction-time errors (bad dimensions, invalid
				// options) are deterministic; retrying cannot help — except
				// when this attempt was a resume, where the checkpoint
				// itself may be the problem (e.g. it no longer matches the
				// job's configuration): drop it and fall back to a complete
				// restart, attempts permitting.
				s.pool.release(sys)
				if !wasResume {
					fail(err)
					return
				}
				resumeCP = nil
				if jctx.Err() != nil {
					expire(attempt, err)
					return
				}
				if attempt >= s.cfg.Retry.MaxAttempts {
					fail(err)
					return
				}
			}
		} else {
			s.pool.release(sys)
			if !needsRestart(f.Outcome) {
				if !spec.NoCache {
					s.cache.put(key, f)
				}
				succeed(f, attempt, false)
				return
			}
			if f.Outcome == core.CorruptedResult {
				// Silent corruption: detection missed the fault, so the
				// run's checkpoints cannot be trusted either — the next
				// attempt must restart from scratch. DetectedCorrupt keeps
				// its checkpoints: they were verified clean before the
				// corruption struck.
				resumeCP = nil
			}
			if attempt >= s.cfg.Retry.MaxAttempts {
				fail(&CorruptError{
					Outcome: f.Outcome, Report: f.Report(),
					Attempts: h.prior + attempt, Injected: injected(),
				})
				return
			}
		}
		// Classify the retry we are about to grant (see attemptOutcome):
		// the total stays in retries so Retries == Restarts + Resumed.
		if resumeCP != nil {
			s.met.resumes.Inc()
		} else {
			s.met.restarts.Inc()
		}
		s.met.retries.Inc()
		timer := time.NewTimer(s.cfg.Retry.Backoff(attempt, s.jitter()))
		select {
		case <-jctx.Done():
			// The budget ran out during the backoff sleep: a cancellation
			// or a typed deadline expiry, never a silent hang.
			timer.Stop()
			expire(attempt, nil)
			return
		case <-timer.C:
		}
	}
}

// degradeNode shrinks a platform config by one node's worth of GPUs — the
// failover step after a whole-node loss (or a single-device loss on a
// cluster, where the GPU count must stay divisible by the node count). A
// two-node cluster degrades to the flat single-box config.
func degradeNode(cfg *hetsim.Config) {
	if n := cfg.Nodes; n > 1 {
		cfg.NumGPUs -= cfg.NumGPUs / n
		cfg.Nodes = n - 1
	} else if cfg.NumGPUs > 1 {
		cfg.NumGPUs--
	}
}

// gpuIndex parses the device index from a hetsim GPU display name ("GPU2"
// or the node-qualified "N1/GPU2" → 2); -1 for the CPU, the PCIe
// pseudo-device, or anything unparseable. The scheduler itself classifies
// on the structured DeviceLostError.GPU/Node fields — this parser exists
// for consumers that only have a display name (logs, traces).
func gpuIndex(name string) int {
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	rest, ok := strings.CutPrefix(name, "GPU")
	if !ok {
		return -1
	}
	g, err := strconv.Atoi(rest)
	if err != nil || g < 0 {
		return -1
	}
	return g
}

// runDecomposition executes one attempt on the given system and classifies
// its outcome from the report plus the service's own residual check.
func runDecomposition(sys *hetsim.System, spec JobSpec, cfg ftla.Config) (*Factorization, error) {
	tol := spec.tol()
	switch spec.Decomp {
	case Cholesky:
		r, err := ftla.CholeskyOn(sys, spec.A, cfg)
		if err != nil {
			return nil, err
		}
		resid := r.Residual(spec.A)
		return &Factorization{
			Decomp: Cholesky, Chol: r, Residual: resid,
			Outcome: r.Report.OutcomeOf(resid <= tol),
		}, nil
	case LU:
		r, err := ftla.LUOn(sys, spec.A, cfg)
		if err != nil {
			return nil, err
		}
		resid := r.Residual(spec.A)
		return &Factorization{
			Decomp: LU, LU: r, Residual: resid,
			Outcome: r.Report.OutcomeOf(resid <= tol),
		}, nil
	default:
		r, err := ftla.QROn(sys, spec.A, cfg)
		if err != nil {
			return nil, err
		}
		resid := r.Residual(spec.A)
		return &Factorization{
			Decomp: QR, QR: r, Residual: resid,
			Outcome: r.Report.OutcomeOf(resid <= tol),
		}, nil
	}
}
