package service

import (
	"sync"
	"time"

	"ftla"
	"ftla/internal/hetsim"
)

// Stats is a point-in-time snapshot of the scheduler's aggregate behavior:
// admission and completion counters, the outcome histogram over winning
// attempts (§X.B buckets), retry volume, cache effectiveness, system-pool
// reuse, latency aggregates, and fleet-wide device utilization.
type Stats struct {
	// Admission.
	Submitted uint64 // accepted into the queue
	Rejected  uint64 // refused with ErrQueueFull (backpressure)
	// Terminal states.
	Completed uint64 // finished with a JobResult
	Failed    uint64 // finished with a non-cancellation error (incl. CorruptError)
	Canceled  uint64 // context canceled/expired before or during service
	// Retries counts corruption-triggered complete restarts across all jobs
	// (attempts beyond each job's first).
	Retries uint64
	// Outcomes histograms the winning attempt of completed jobs by the
	// paper's outcome classes ("fault-free", "abft-fixed", ...). Cache hits
	// count under the cached factor's outcome.
	Outcomes map[string]uint64

	// Cache.
	CacheHits    uint64
	CacheMisses  uint64
	CacheEntries int

	// System pool.
	SystemsCreated uint64
	SystemsReused  uint64

	// Gauges.
	QueueDepth int // jobs admitted, not yet dispatched
	Running    int // jobs currently on a worker

	// Latency aggregates over completed jobs.
	AvgWait, MaxWait time.Duration // submit → dispatch
	AvgRun, MaxRun   time.Duration // dispatch → terminal (incl. retries/backoff)

	// Devices aggregates simulated busy time per device name across every
	// pooled system released so far (jobs still running are not included).
	Devices []hetsim.DeviceStat
}

// statsSink accumulates the mutable counters behind Stats.
type statsSink struct {
	mu                sync.Mutex
	submitted         uint64
	rejected          uint64
	completed         uint64
	failed            uint64
	canceled          uint64
	retries           uint64
	outcomes          map[string]uint64
	waitSum, runSum   time.Duration
	waitMax, runMax   time.Duration
	completedDuration uint64 // completions contributing to latency sums
}

func newStatsSink() *statsSink {
	return &statsSink{outcomes: make(map[string]uint64)}
}

func (s *statsSink) jobDone(outcome ftla.Outcome, wait, run time.Duration) {
	s.mu.Lock()
	s.completed++
	s.outcomes[outcome.String()]++
	s.completedDuration++
	s.waitSum += wait
	s.runSum += run
	if wait > s.waitMax {
		s.waitMax = wait
	}
	if run > s.runMax {
		s.runMax = run
	}
	s.mu.Unlock()
}

func (s *statsSink) add(field *uint64, n uint64) {
	s.mu.Lock()
	*field += n
	s.mu.Unlock()
}

// snapshot folds the sink into a Stats value; the scheduler adds gauges and
// the cache/pool counters.
func (s *statsSink) snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Submitted: s.submitted,
		Rejected:  s.rejected,
		Completed: s.completed,
		Failed:    s.failed,
		Canceled:  s.canceled,
		Retries:   s.retries,
		Outcomes:  make(map[string]uint64, len(s.outcomes)),
		MaxWait:   s.waitMax,
		MaxRun:    s.runMax,
	}
	for k, v := range s.outcomes {
		st.Outcomes[k] = v
	}
	if s.completedDuration > 0 {
		st.AvgWait = s.waitSum / time.Duration(s.completedDuration)
		st.AvgRun = s.runSum / time.Duration(s.completedDuration)
	}
	return st
}
