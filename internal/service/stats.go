package service

import (
	"sync"
	"time"

	"ftla"
	"ftla/internal/hetsim"
	"ftla/internal/obs"
)

// Scheduler metric names, as registered in the scheduler's obs.Registry
// (see Config.Registry). Consumers addressing series programmatically
// (snapshot diffs, scrape assertions) should use these constants rather
// than string literals.
const (
	// MetricJobsSubmitted counts jobs accepted into the queue.
	MetricJobsSubmitted = "ftla_jobs_submitted_total"
	// MetricJobsRejected counts submissions refused with ErrQueueFull.
	MetricJobsRejected = "ftla_jobs_rejected_total"
	// MetricJobsCompleted counts jobs that finished with a JobResult.
	MetricJobsCompleted = "ftla_jobs_completed_total"
	// MetricJobsFailed counts jobs that finished with a non-cancellation
	// error (including CorruptError).
	MetricJobsFailed = "ftla_jobs_failed_total"
	// MetricJobsCanceled counts jobs whose context expired before or
	// during service.
	MetricJobsCanceled = "ftla_jobs_canceled_total"
	// MetricJobRetries counts all attempts beyond each job's first,
	// whatever form they take; it is always the sum of MetricJobRestarts
	// and MetricJobResumes.
	MetricJobRetries = "ftla_job_retries_total"
	// MetricJobRestarts counts retries that reran the factorization from
	// scratch: no checkpoint existed (CheckpointEvery unset, or the fault
	// struck before the first snapshot), the previous attempt's result was
	// silently corrupt (its checkpoints cannot be trusted), or a resume
	// attempt itself failed.
	MetricJobRestarts = "ftla_job_restarts_total"
	// MetricJobResumes counts retries that resumed from the job's last
	// known-clean checkpoint instead of restarting, replaying only the
	// steps after it — the cheap path after a device loss or a detected
	// uncorrectable corruption.
	MetricJobResumes = "ftla_job_resumes_total"
	// MetricJobOutcomes histograms completed jobs by the winning attempt's
	// outcome class (label "outcome": fault-free, abft-fixed, ...).
	MetricJobOutcomes = "ftla_job_outcomes_total"
	// MetricCacheHits / MetricCacheMisses count factorization-cache
	// lookups; MetricCacheEntries gauges the current entry count.
	MetricCacheHits    = "ftla_cache_hits_total"
	MetricCacheMisses  = "ftla_cache_misses_total"
	MetricCacheEntries = "ftla_cache_entries"
	// MetricSystemsCreated / MetricSystemsReused count system-pool misses
	// and hits.
	MetricSystemsCreated = "ftla_systems_created_total"
	MetricSystemsReused  = "ftla_systems_reused_total"
	// MetricQueueDepth gauges admitted-but-undispatched jobs;
	// MetricJobsRunning gauges jobs currently on a worker.
	MetricQueueDepth  = "ftla_queue_depth"
	MetricJobsRunning = "ftla_jobs_running"
	// MetricJobWaitSeconds / MetricJobRunSeconds are latency histograms
	// over completed jobs: queue time (submit → dispatch) and service time
	// (dispatch → terminal, including retries and backoff).
	MetricJobWaitSeconds = "ftla_job_wait_seconds"
	MetricJobRunSeconds  = "ftla_job_run_seconds"
	// MetricDeviceLost counts attempts aborted by a fail-stop device fault
	// (crash or deadline-reaped hang) — the failures ABFT cannot repair.
	MetricDeviceLost = "ftla_device_lost_total"
	// MetricLinkLost counts attempts aborted by a PCIe link fault the
	// reliable-transfer protocol could not absorb (retransmission budget
	// exhausted); the link's GPU is quarantined like a lost device.
	MetricLinkLost = "ftla_link_lost_total"
	// MetricNodeFailover counts attempts aborted by a whole-node loss the
	// coded redundancy could not absorb (*hetsim.NodeLostError), engaging
	// the scheduler's node-failover ladder: quarantine, carve the dead node
	// out of the platform, resume or restart. Distinct from the library's
	// ftla_node_lost_total in obs.Default, which counts every armed node
	// fault firing — including the ones parity reconstruction absorbed.
	MetricNodeFailover = "ftla_node_failover_total"
	// MetricJobsDeadlineExceeded counts jobs terminated with a
	// *DeadlineError (JobSpec.Deadline budget exhausted).
	MetricJobsDeadlineExceeded = "ftla_jobs_deadline_exceeded_total"
	// MetricPoolQuarantined gauges systems currently quarantined by the
	// pool's circuit breaker (device loss or repeated failures), awaiting
	// probation re-admission.
	MetricPoolQuarantined = "ftla_pool_quarantined"
	// MetricAttemptAbortSeconds histograms the wall-clock time an attempt
	// ran before being aborted (device loss, hang reap, cancellation) —
	// the work lost per abort.
	MetricAttemptAbortSeconds = "ftla_attempt_abort_seconds"
	// MetricBatchSize histograms the size of every coalesced batched
	// dispatch (solo runs are not observed; a dispatch of size 1 never
	// takes the batched path).
	MetricBatchSize = "ftla_batch_size"
	// MetricBatchJobsCoalesced counts jobs served through coalesced
	// batched dispatches (the histogram's sample sum, as a counter).
	MetricBatchJobsCoalesced = "ftla_batch_jobs_coalesced_total"
	// MetricBatchDispatches counts coalesced batched dispatches issued
	// (the histogram's sample count, as a counter).
	MetricBatchDispatches = "ftla_batch_dispatches_total"
	// MetricDeviceUtilization gauges each simulated device's overlap
	// utilization (label "device"): aggregated busy seconds over aggregated
	// logical makespan across every pooled system released so far. Under
	// the serial schedule the per-device values sum to ~1; Lookahead
	// overlap pushes CPU and GPUs toward 1 independently.
	MetricDeviceUtilization = "ftla_device_utilization"
)

// Stats is a point-in-time snapshot of the scheduler's aggregate behavior:
// admission and completion counters, the outcome histogram over winning
// attempts (§X.B buckets), retry volume, cache effectiveness, system-pool
// reuse, latency aggregates, and fleet-wide device utilization.
//
// Every counter and gauge here is a read of the scheduler's obs.Registry
// (see Config.Registry): Stats is the convenience struct view, /metrics
// the exposition view, of the same instruments.
type Stats struct {
	// Admission.
	Submitted uint64 // accepted into the queue
	Rejected  uint64 // refused with ErrQueueFull (backpressure)
	// Terminal states.
	Completed uint64 // finished with a JobResult
	Failed    uint64 // finished with a non-cancellation error (incl. CorruptError)
	Canceled  uint64 // context canceled/expired before or during service
	// Retries counts attempts beyond each job's first across all jobs,
	// in either form; Retries == Restarts + Resumed always. Restarts are
	// reruns from scratch; Resumed are replays from the job's last
	// known-clean checkpoint (see MetricJobRestarts / MetricJobResumes
	// for when each applies).
	Retries  uint64
	Restarts uint64
	Resumed  uint64
	// DeviceLost counts attempts aborted by fail-stop device faults;
	// LinkLost counts attempts aborted by unabsorbed PCIe link faults;
	// DeadlineExceeded counts jobs terminated by their Deadline budget;
	// AbortedAttempts counts all aborted attempts (the abort-duration
	// histogram's sample count).
	// NodeFailovers counts attempts aborted by an unabsorbed whole-node
	// loss (see MetricNodeFailover).
	DeviceLost       uint64
	LinkLost         uint64
	NodeFailovers    uint64
	DeadlineExceeded uint64
	AbortedAttempts  uint64
	// Quarantined gauges systems currently held out by the pool's circuit
	// breaker.
	Quarantined int
	// Outcomes histograms the winning attempt of completed jobs by the
	// paper's outcome classes ("fault-free", "abft-fixed", ...). Cache hits
	// count under the cached factor's outcome.
	Outcomes map[string]uint64

	// Cache.
	CacheHits    uint64
	CacheMisses  uint64
	CacheEntries int

	// System pool.
	SystemsCreated uint64
	SystemsReused  uint64

	// Batching. BatchDispatches counts coalesced dispatches;
	// JobsCoalesced counts jobs they carried (mean batch size is the
	// ratio). Jobs on the solo path appear in neither.
	BatchDispatches uint64
	JobsCoalesced   uint64

	// JobsPerSec is completed jobs per wall second since the scheduler
	// started — the serving-throughput headline the batched dispatch path
	// exists to raise.
	JobsPerSec float64

	// Gauges.
	QueueDepth int // jobs admitted, not yet dispatched
	Running    int // jobs currently on a worker

	// Latency aggregates over completed jobs.
	AvgWait, MaxWait time.Duration // submit → dispatch
	AvgRun, MaxRun   time.Duration // dispatch → terminal (incl. retries/backoff)

	// Devices aggregates simulated busy time per device name across every
	// pooled system released so far (jobs still running are not included).
	Devices []hetsim.DeviceStat
}

// metrics bundles the scheduler's registry instruments. Counters and
// gauges are updated at the point the event happens (atomic hot paths);
// only the latency maxima live behind the sink mutex, because a running
// maximum is not expressible as a counter or histogram.
type metrics struct {
	reg *obs.Registry

	submitted, rejected     *obs.Counter
	completed, failed       *obs.Counter
	canceled, retries       *obs.Counter
	restarts, resumes       *obs.Counter
	outcomes                *obs.CounterVec
	cacheHits, cacheMisses  *obs.Counter
	cacheEntries            *obs.Gauge
	sysCreated, sysReused   *obs.Counter
	queueDepth, running     *obs.Gauge
	waitSeconds, runSeconds *obs.Histogram
	deviceLost              *obs.Counter
	linkLost                *obs.Counter
	nodeLost                *obs.Counter
	deadlineExceeded        *obs.Counter
	quarantined             *obs.Gauge
	abortSeconds            *obs.Histogram
	deviceUtil              *obs.FloatGaugeVec
	batchSize               *obs.Histogram
	batchCoalesced          *obs.Counter
	batchDispatches         *obs.Counter

	mu              sync.Mutex
	waitMax, runMax time.Duration
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		reg:       reg,
		submitted: reg.Counter(MetricJobsSubmitted, "Jobs accepted into the queue."),
		rejected:  reg.Counter(MetricJobsRejected, "Submissions refused with ErrQueueFull (backpressure)."),
		completed: reg.Counter(MetricJobsCompleted, "Jobs finished with a JobResult."),
		failed:    reg.Counter(MetricJobsFailed, "Jobs finished with a non-cancellation error."),
		canceled:  reg.Counter(MetricJobsCanceled, "Jobs whose context expired before or during service."),
		retries:   reg.Counter(MetricJobRetries, "Attempts beyond each job's first (restarts + resumes)."),
		restarts:  reg.Counter(MetricJobRestarts, "Retries that reran the factorization from scratch."),
		resumes:   reg.Counter(MetricJobResumes, "Retries that resumed from the job's last checkpoint."),
		outcomes: reg.CounterVec(MetricJobOutcomes,
			"Completed jobs by winning-attempt outcome class (§X.B).", "outcome"),
		cacheHits:    reg.Counter(MetricCacheHits, "Factorization-cache hits."),
		cacheMisses:  reg.Counter(MetricCacheMisses, "Factorization-cache misses."),
		cacheEntries: reg.Gauge(MetricCacheEntries, "Factorization-cache entries currently resident."),
		sysCreated:   reg.Counter(MetricSystemsCreated, "Simulated systems constructed (pool misses)."),
		sysReused:    reg.Counter(MetricSystemsReused, "Simulated systems reused from the pool."),
		queueDepth:   reg.Gauge(MetricQueueDepth, "Jobs admitted but not yet dispatched."),
		running:      reg.Gauge(MetricJobsRunning, "Jobs currently executing on a worker."),
		waitSeconds: reg.Histogram(MetricJobWaitSeconds,
			"Queue time of completed jobs (submit to dispatch), seconds.", nil),
		runSeconds: reg.Histogram(MetricJobRunSeconds,
			"Service time of completed jobs (dispatch to terminal, incl. retries), seconds.", nil),
		deviceLost: reg.Counter(MetricDeviceLost,
			"Attempts aborted by fail-stop device faults (crash or reaped hang)."),
		linkLost: reg.Counter(MetricLinkLost,
			"Attempts aborted by PCIe link faults that exhausted retransmission."),
		nodeLost: reg.Counter(MetricNodeFailover,
			"Attempts aborted by whole-node losses the coded redundancy could not absorb."),
		deadlineExceeded: reg.Counter(MetricJobsDeadlineExceeded,
			"Jobs terminated by their JobSpec.Deadline budget."),
		quarantined: reg.Gauge(MetricPoolQuarantined,
			"Systems held out by the pool circuit breaker, awaiting probation."),
		abortSeconds: reg.Histogram(MetricAttemptAbortSeconds,
			"Wall-clock time an attempt ran before being aborted, seconds.", nil),
		deviceUtil: reg.FloatGaugeVec(MetricDeviceUtilization,
			"Per-device overlap utilization: busy seconds over logical makespan, aggregated across released systems.", "device"),
		batchSize: reg.Histogram(MetricBatchSize,
			"Size of each coalesced batched dispatch (jobs per dispatch).", obs.BatchSizeBuckets()),
		batchCoalesced: reg.Counter(MetricBatchJobsCoalesced,
			"Jobs served through coalesced batched dispatches."),
		batchDispatches: reg.Counter(MetricBatchDispatches,
			"Coalesced batched dispatches issued."),
	}
}

// jobDone records one completed job: completion counter, outcome series,
// latency histograms, and the mutex-held maxima.
func (m *metrics) jobDone(outcome ftla.Outcome, wait, run time.Duration) {
	m.completed.Inc()
	m.outcomes.With(outcome.String()).Inc()
	m.waitSeconds.Observe(wait.Seconds())
	m.runSeconds.Observe(run.Seconds())
	m.mu.Lock()
	if wait > m.waitMax {
		m.waitMax = wait
	}
	if run > m.runMax {
		m.runMax = run
	}
	m.mu.Unlock()
}

// snapshot folds the instruments into a Stats value; the scheduler adds
// the queue gauges (which it owns under its own mutex) and the device
// aggregate.
func (m *metrics) snapshot() Stats {
	st := Stats{
		Submitted:        m.submitted.Value(),
		Rejected:         m.rejected.Value(),
		Completed:        m.completed.Value(),
		Failed:           m.failed.Value(),
		Canceled:         m.canceled.Value(),
		Retries:          m.retries.Value(),
		Restarts:         m.restarts.Value(),
		Resumed:          m.resumes.Value(),
		Outcomes:         m.outcomes.Values(),
		CacheHits:        m.cacheHits.Value(),
		CacheMisses:      m.cacheMisses.Value(),
		CacheEntries:     int(m.cacheEntries.Value()),
		SystemsCreated:   m.sysCreated.Value(),
		SystemsReused:    m.sysReused.Value(),
		DeviceLost:       m.deviceLost.Value(),
		LinkLost:         m.linkLost.Value(),
		NodeFailovers:    m.nodeLost.Value(),
		DeadlineExceeded: m.deadlineExceeded.Value(),
		AbortedAttempts:  m.abortSeconds.Count(),
		Quarantined:      int(m.quarantined.Value()),
		BatchDispatches:  m.batchDispatches.Value(),
		JobsCoalesced:    m.batchCoalesced.Value(),
	}
	if n := m.waitSeconds.Count(); n > 0 {
		st.AvgWait = time.Duration(m.waitSeconds.Sum() / float64(n) * float64(time.Second))
	}
	if n := m.runSeconds.Count(); n > 0 {
		st.AvgRun = time.Duration(m.runSeconds.Sum() / float64(n) * float64(time.Second))
	}
	m.mu.Lock()
	st.MaxWait, st.MaxRun = m.waitMax, m.runMax
	m.mu.Unlock()
	return st
}
