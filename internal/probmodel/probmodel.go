// Package probmodel implements the paper's fault-coverage probability
// model (§X.B): given per-element hardware error rates, it computes for
// each update operation of one LU iteration the probability of the four
// outcomes — Fault Free, ABFT Fixable, Local Restart, Complete Restart —
// under each ABFT approach, and the resulting expected recovery cost.
// These are the quantities plotted in Figs. 6–8 (outcome probabilities per
// operation) and Figs. 9–11 (expected recovery cost per operation).
package probmodel

import "math"

// Rates are the per-element hardware error rates of Table IX.
type Rates struct {
	// OnChip is the on-chip memory error rate per element per second of
	// operation time (λ₁).
	OnChip float64
	// OffChip is the DRAM error rate per element per second of storage
	// time (λ₂).
	OffChip float64
	// Compute is the calculation error rate per flop (λ₃ stand-in).
	Compute float64
	// PCIe is the per-element transfer error rate (λ₄).
	PCIe float64
}

// PaperRates returns the illustrative rates of §X.B
// (λ₁=1e-13, λ₂=1e-9, λ₃=1e-9, λ₄=1e-11).
func PaperRates() Rates {
	return Rates{Compute: 1e-13, OffChip: 1e-9, OnChip: 1e-9, PCIe: 1e-11}
}

// Op is one update operation of an LU iteration.
type Op int

// Operations.
const (
	PD Op = iota
	PU
	TMU
)

func (o Op) String() string {
	switch o {
	case PD:
		return "PD"
	case PU:
		return "PU"
	default:
		return "TMU"
	}
}

// Approach is an ABFT protection configuration.
type Approach int

// Protection approaches compared in the paper's evaluation.
const (
	SingleSidePrior Approach = iota
	SingleSidePost
	FullPost
	FullNew
)

func (a Approach) String() string {
	switch a {
	case SingleSidePrior:
		return "single+prior"
	case SingleSidePost:
		return "single+post"
	case FullPost:
		return "full+post"
	default:
		return "full+new"
	}
}

// Outcome is the four-way result of §X.B.
type Outcome int

// Outcomes.
const (
	FaultFree Outcome = iota
	ABFTFixable
	LocalRestart
	CompleteRestart
)

func (o Outcome) String() string {
	switch o {
	case FaultFree:
		return "fault-free"
	case ABFTFixable:
		return "abft-fixable"
	case LocalRestart:
		return "local-restart"
	default:
		return "complete-restart"
	}
}

// Model carries the workload and platform parameters.
type Model struct {
	N  int // trailing matrix order at the modeled iteration
	NB int // block size
	// GflopsCPU / GflopsGPU convert flop counts into operation times.
	GflopsCPU float64
	GflopsGPU float64
	// PCIeGBps converts transfer sizes into broadcast exposure.
	PCIeGBps float64
	Rates    Rates
}

// PaperModel returns the §X.B parameterization: n=10240, nb=256, with
// platform speeds shaped like the paper's testbed.
func PaperModel() Model {
	return Model{
		N: 10240, NB: 256,
		GflopsCPU: 50, GflopsGPU: 1000, PCIeGBps: 12,
		Rates: PaperRates(),
	}
}

// flops returns the flop count of op at the modeled iteration.
func (m Model) flops(op Op) float64 {
	n, nb := float64(m.N), float64(m.NB)
	switch op {
	case PD:
		return n * nb * nb
	case PU:
		return nb * nb * (n - nb)
	default:
		return 2 * (n - nb) * (n - nb) * nb
	}
}

// opTime returns the wall time of op on its assigned device (PD on the
// CPU, PU/TMU on GPUs).
func (m Model) opTime(op Op) float64 {
	if op == PD {
		return m.flops(op) / (m.GflopsCPU * 1e9)
	}
	return m.flops(op) / (m.GflopsGPU * 1e9)
}

// footprint returns the number of matrix elements in the update+reference
// parts of op.
func (m Model) footprint(op Op) float64 {
	n, nb := float64(m.N), float64(m.NB)
	switch op {
	case PD:
		return n * nb
	case PU:
		return nb*nb + nb*(n-nb)
	default:
		return (n-nb)*nb + nb*(n-nb) + (n-nb)*(n-nb)
	}
}

// broadcastElems returns the number of elements transferred after op.
func (m Model) broadcastElems(op Op) float64 {
	n, nb := float64(m.N), float64(m.NB)
	switch op {
	case PD:
		return n * nb
	case PU:
		return (n - nb) * nb
	default:
		return 0
	}
}

// CaseProbs holds the probability of each §X.B fault case for one
// operation: exactly the events A–H of the paper.
type CaseProbs struct {
	NoComputeErr  float64 // A
	ComputeErr    float64 // B
	NoMemBetween  float64 // C
	MemBetween    float64 // D
	NoMemDuring   float64 // E
	MemDuring     float64 // F (off-chip or on-chip during the op)
	NoBcastErr    float64 // G
	BcastErr      float64 // H
	FaultFreeProb float64 // joint no-fault probability
}

// Cases evaluates the event probabilities for op.
func (m Model) Cases(op Op) CaseProbs {
	t := m.opTime(op)
	fp := m.footprint(op)
	bc := m.broadcastElems(op)
	var c CaseProbs
	// A/B: calculation errors scale with executed flops.
	c.NoComputeErr = math.Exp(-m.Rates.Compute * m.flops(op))
	c.ComputeErr = 1 - c.NoComputeErr
	// C/D: off-chip exposure between operations is modeled over one
	// operation-time of storage.
	c.NoMemBetween = math.Exp(-m.Rates.OffChip * fp * t)
	c.MemBetween = 1 - c.NoMemBetween
	// E/F: off-chip + on-chip exposure during the operation.
	during := (m.Rates.OffChip + m.Rates.OnChip) * fp * t
	c.NoMemDuring = math.Exp(-during)
	c.MemDuring = 1 - c.NoMemDuring
	// G/H: transfer errors scale with broadcast volume.
	c.NoBcastErr = math.Exp(-m.Rates.PCIe * bc)
	c.BcastErr = 1 - c.NoBcastErr
	c.FaultFreeProb = c.NoComputeErr * c.NoMemBetween * c.NoMemDuring * c.NoBcastErr
	return c
}

// outcomeOf classifies a fault case under an approach, mirroring the
// protection matrix measured in the Table VIII campaign (internal/core):
// which (approach, op, fault) combinations are fixable online, need a
// local restart, or escape to a complete restart.
func outcomeOf(a Approach, op Op, kind string) Outcome {
	full := a == FullPost || a == FullNew
	switch kind {
	case "compute":
		switch op {
		case PD:
			if a == SingleSidePrior {
				return CompleteRestart // no post-PD verification
			}
			return LocalRestart
		case PU:
			if !full {
				return CompleteRestart // updated row panel unprotected
			}
			return ABFTFixable
		default:
			return ABFTFixable // 0-D in the trailing output
		}
	case "membetween":
		// DRAM fault between operations: visible to a memory check.
		if a == SingleSidePrior || a == FullNew {
			return ABFTFixable // pre-op check catches it before use
		}
		if op == TMU {
			// Post-op trailing check sees the inconsistency afterwards.
			if full {
				return ABFTFixable
			}
			return LocalRestart
		}
		return CompleteRestart // post-op panel checks can't see input faults
	case "memduring":
		// Memory fault during the op: 1-D propagation in PU/TMU, 2-D in PD.
		switch op {
		case PD:
			if a == SingleSidePrior {
				return CompleteRestart
			}
			return LocalRestart
		case PU:
			if !full {
				return CompleteRestart
			}
			return ABFTFixable // §VII.D: 1-D is correctable in the panel
		default:
			if !full {
				return LocalRestart // detected, but 1-D not reconstructible
			}
			return ABFTFixable // orthogonal checksum rebuilds the line
		}
	default: // "bcast"
		if a == FullNew {
			return ABFTFixable // post-broadcast verification (§VII.C)
		}
		// Pre-broadcast checkers let PCIe corruption propagate into the
		// next operation: 1-D or worse by then.
		if full {
			return LocalRestart
		}
		return CompleteRestart
	}
}

// OutcomeProbs is the §X.B four-way distribution for one (approach, op).
type OutcomeProbs struct {
	Approach Approach
	Op       Op
	P        [4]float64 // indexed by Outcome
}

// Outcomes computes the four-way outcome distribution of op under a.
// At most one fault case strikes per operation (the paper's assumption);
// the fault-case probabilities are normalized accordingly.
func (m Model) Outcomes(a Approach, op Op) OutcomeProbs {
	c := m.Cases(op)
	out := OutcomeProbs{Approach: a, Op: op}
	out.P[FaultFree] = c.FaultFreeProb
	rest := 1 - c.FaultFreeProb
	// Split the faulty mass across the four fault kinds proportionally.
	weights := map[string]float64{
		"compute":    c.ComputeErr,
		"membetween": c.MemBetween,
		"memduring":  c.MemDuring,
		"bcast":      c.BcastErr,
	}
	totalW := 0.0
	for _, w := range weights {
		totalW += w
	}
	if totalW <= 0 {
		return out
	}
	for kind, w := range weights {
		out.P[outcomeOf(a, op, kind)] += rest * w / totalW
	}
	return out
}

// RecoveryCosts parameterize the expected-cost computation: seconds per
// outcome, relative to the operation time.
type RecoveryCosts struct {
	// FixFraction is the cost of an online ABFT fix relative to the op
	// time (the paper measures < 1%–3%).
	FixFraction float64
	// RestartFactor is the cost of a local restart relative to the op
	// time (redo once ≈ 1.0).
	RestartFactor float64
	// CompleteFactor is the cost of a complete restart relative to the op
	// time (the entire factorization so far; dominated by n/nb ops).
	CompleteFactor float64
}

// DefaultCosts returns recovery costs matching the campaign measurements.
func DefaultCosts() RecoveryCosts {
	return RecoveryCosts{FixFraction: 0.02, RestartFactor: 1.0, CompleteFactor: 40}
}

// ExpectedRecovery returns the expected recovery seconds for (a, op):
// Σ P(outcome)·cost(outcome) — the quantity of Figs. 9–11.
func (m Model) ExpectedRecovery(a Approach, op Op, rc RecoveryCosts) float64 {
	probs := m.Outcomes(a, op)
	t := m.opTime(op)
	return probs.P[ABFTFixable]*rc.FixFraction*t +
		probs.P[LocalRestart]*rc.RestartFactor*t +
		probs.P[CompleteRestart]*rc.CompleteFactor*t
}

// AllApproaches lists the compared configurations in paper order.
func AllApproaches() []Approach {
	return []Approach{SingleSidePrior, SingleSidePost, FullPost, FullNew}
}

// AllOps lists the modeled operations.
func AllOps() []Op { return []Op{PD, PU, TMU} }

// ExpectedIterationRecovery sums the expected recovery cost over the three
// operations of one iteration.
func (m Model) ExpectedIterationRecovery(a Approach, rc RecoveryCosts) float64 {
	total := 0.0
	for _, op := range AllOps() {
		total += m.ExpectedRecovery(a, op, rc)
	}
	return total
}

// SweepPoint is one measurement of the rate-sensitivity extension study.
type SweepPoint struct {
	Multiplier float64
	Cost       map[Approach]float64
}

// SweepRates scales every hardware error rate by each multiplier and
// evaluates the expected per-iteration recovery cost of every approach —
// an extension of Figs. 9–11 exploring how the approaches separate as
// hardware degrades (e.g. under the undervolting scenarios the paper's
// introduction cites).
func (m Model) SweepRates(multipliers []float64, rc RecoveryCosts) []SweepPoint {
	var out []SweepPoint
	for _, mult := range multipliers {
		scaled := m
		scaled.Rates.Compute *= mult
		scaled.Rates.OffChip *= mult
		scaled.Rates.OnChip *= mult
		scaled.Rates.PCIe *= mult
		pt := SweepPoint{Multiplier: mult, Cost: map[Approach]float64{}}
		for _, a := range AllApproaches() {
			pt.Cost[a] = scaled.ExpectedIterationRecovery(a, rc)
		}
		out = append(out, pt)
	}
	return out
}
