package probmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOutcomesSumToOne(t *testing.T) {
	m := PaperModel()
	for _, a := range AllApproaches() {
		for _, op := range AllOps() {
			probs := m.Outcomes(a, op)
			sum := 0.0
			for _, p := range probs.P {
				sum += p
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Errorf("%v/%v outcome probabilities sum to %v", a, op, sum)
			}
			for o, p := range probs.P {
				if p < 0 || p > 1 {
					t.Errorf("%v/%v P[%v] = %v out of range", a, op, Outcome(o), p)
				}
			}
		}
	}
}

func TestFaultFreeDominates(t *testing.T) {
	m := PaperModel()
	for _, op := range AllOps() {
		c := m.Cases(op)
		if c.FaultFreeProb < 0.5 {
			t.Errorf("%v fault-free probability %v implausibly low for the paper's rates", op, c.FaultFreeProb)
		}
	}
}

func TestNewSchemeNeverWorseCoverage(t *testing.T) {
	// The paper's claim: full checksum + new scheme gives the widest
	// coverage — its complete-restart probability is minimal for every op.
	m := PaperModel()
	for _, op := range AllOps() {
		pNew := m.Outcomes(FullNew, op).P[CompleteRestart]
		for _, a := range []Approach{SingleSidePrior, SingleSidePost, FullPost} {
			if pOther := m.Outcomes(a, op).P[CompleteRestart]; pNew > pOther+1e-15 {
				t.Errorf("%v: new scheme complete-restart %v exceeds %v's %v", op, pNew, a, pOther)
			}
		}
	}
}

func TestNewSchemeLowestExpectedRecovery(t *testing.T) {
	m := PaperModel()
	rc := DefaultCosts()
	for _, op := range AllOps() {
		costNew := m.ExpectedRecovery(FullNew, op, rc)
		for _, a := range []Approach{SingleSidePrior, SingleSidePost, FullPost} {
			if other := m.ExpectedRecovery(a, op, rc); costNew > other*1.01+1e-18 {
				t.Errorf("%v: new scheme expected recovery %.3g exceeds %v's %.3g",
					op, costNew, a, other)
			}
		}
	}
}

func TestSingleSideMissesPUFaults(t *testing.T) {
	// Table VIII's headline gap: single-side checksums leave PU faults to
	// complete restarts.
	m := PaperModel()
	pSingle := m.Outcomes(SingleSidePost, PU).P[CompleteRestart]
	pFull := m.Outcomes(FullPost, PU).P[CompleteRestart]
	if pSingle <= pFull {
		t.Fatalf("single-side PU complete-restart %v should exceed full's %v", pSingle, pFull)
	}
}

func TestFlopsOrdering(t *testing.T) {
	m := PaperModel()
	if m.flops(TMU) <= m.flops(PU) || m.flops(TMU) <= m.flops(PD) {
		t.Fatal("TMU must dominate the iteration flops")
	}
}

func TestBroadcastOnlyPanels(t *testing.T) {
	m := PaperModel()
	if m.broadcastElems(TMU) != 0 {
		t.Fatal("TMU broadcasts nothing")
	}
	if m.broadcastElems(PD) == 0 || m.broadcastElems(PU) == 0 {
		t.Fatal("panel ops must broadcast")
	}
}

// Property: higher error rates never increase the fault-free probability.
func TestRateMonotonicity(t *testing.T) {
	f := func(mult uint8) bool {
		base := PaperModel()
		scaled := base
		factor := 1 + float64(mult%50)
		scaled.Rates.OffChip *= factor
		scaled.Rates.Compute *= factor
		scaled.Rates.OnChip *= factor
		scaled.Rates.PCIe *= factor
		for _, op := range AllOps() {
			if scaled.Cases(op).FaultFreeProb > base.Cases(op).FaultFreeProb+1e-15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestStringers(t *testing.T) {
	for _, a := range AllApproaches() {
		if a.String() == "" {
			t.Fatal("approach string empty")
		}
	}
	for _, o := range []Outcome{FaultFree, ABFTFixable, LocalRestart, CompleteRestart} {
		if o.String() == "" {
			t.Fatal("outcome string empty")
		}
	}
	for _, op := range AllOps() {
		if op.String() == "" {
			t.Fatal("op string empty")
		}
	}
}

func TestSweepRatesMonotoneAndOrdered(t *testing.T) {
	m := PaperModel()
	rc := DefaultCosts()
	pts := m.SweepRates([]float64{0.1, 1, 10, 100}, rc)
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, a := range AllApproaches() {
		for i := 1; i < len(pts); i++ {
			if pts[i].Cost[a] < pts[i-1].Cost[a] {
				t.Errorf("%v: recovery cost must grow with error rates", a)
			}
		}
	}
	// The new scheme keeps the lowest expected cost at every rate point.
	for _, pt := range pts {
		for _, a := range []Approach{SingleSidePrior, SingleSidePost, FullPost} {
			if pt.Cost[FullNew] > pt.Cost[a]*1.01 {
				t.Errorf("mult %v: full+new %.3g above %v %.3g", pt.Multiplier, pt.Cost[FullNew], a, pt.Cost[a])
			}
		}
	}
}
