package blas

import "ftla/internal/matrix"

// Gemv computes y = alpha*op(A)*x + beta*y where op is the identity when
// trans is false and transpose when true. y is updated in place.
func Gemv(trans bool, alpha float64, a *matrix.Dense, x []float64, beta float64, y []float64) {
	m, n := a.Rows, a.Cols
	if trans {
		m, n = n, m
	}
	if len(x) != n || len(y) != m {
		panic("blas: Gemv dimension mismatch")
	}
	if beta != 1 {
		for i := range y {
			y[i] *= beta
		}
	}
	if alpha == 0 {
		return
	}
	if !trans {
		for i := 0; i < a.Rows; i++ {
			row := a.Row(i)
			s := 0.0
			for j, v := range row {
				s += v * x[j]
			}
			y[i] += alpha * s
		}
		return
	}
	// Transposed: accumulate row-wise to keep memory access sequential.
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		ax := alpha * x[i]
		if ax == 0 {
			continue
		}
		for j, v := range row {
			y[j] += ax * v
		}
	}
}

// Ger performs the rank-1 update A += alpha * x * yᵀ.
func Ger(alpha float64, x, y []float64, a *matrix.Dense) {
	if len(x) != a.Rows || len(y) != a.Cols {
		panic("blas: Ger dimension mismatch")
	}
	if alpha == 0 {
		return
	}
	for i := 0; i < a.Rows; i++ {
		ax := alpha * x[i]
		if ax == 0 {
			continue
		}
		row := a.Row(i)
		for j, v := range y {
			row[j] += ax * v
		}
	}
}

// Trsv solves op(L or U) * x = b in place, where x starts holding b.
// lower selects the triangle, trans selects op, unit selects an implicit
// unit diagonal.
func Trsv(lower, trans, unit bool, a *matrix.Dense, x []float64) {
	n := a.Rows
	if a.Cols != n || len(x) != n {
		panic("blas: Trsv dimension mismatch")
	}
	switch {
	case lower && !trans:
		for i := 0; i < n; i++ {
			s := x[i]
			row := a.Row(i)
			for j := 0; j < i; j++ {
				s -= row[j] * x[j]
			}
			if !unit {
				s /= row[i]
			}
			x[i] = s
		}
	case lower && trans:
		for i := n - 1; i >= 0; i-- {
			s := x[i]
			for j := i + 1; j < n; j++ {
				s -= a.At(j, i) * x[j]
			}
			if !unit {
				s /= a.At(i, i)
			}
			x[i] = s
		}
	case !lower && !trans:
		for i := n - 1; i >= 0; i-- {
			s := x[i]
			row := a.Row(i)
			for j := i + 1; j < n; j++ {
				s -= row[j] * x[j]
			}
			if !unit {
				s /= row[i]
			}
			x[i] = s
		}
	default: // upper, trans
		for i := 0; i < n; i++ {
			s := x[i]
			for j := 0; j < i; j++ {
				s -= a.At(j, i) * x[j]
			}
			if !unit {
				s /= a.At(i, i)
			}
			x[i] = s
		}
	}
}
