package blas

import "ftla/internal/obs"

// flopCount is a process-wide tally of floating-point operations executed
// by the BLAS kernels (and, via their internal use of these kernels, the
// checksum and LAPACK layers). It gives experiments a deterministic,
// noise-free work metric: on the simulated platform, wall-clock overhead
// percentages are hostage to scheduler jitter, while flop ratios are
// exactly reproducible.
//
// The tally lives in the obs default registry (ftla_blas_flops_total), so
// the same number that ResetFlops-based experiments difference is what a
// /metrics scrape reports — one source of truth, two consumers.
var flopCount = obs.Default().Counter(obs.MetricBlasFlops,
	"Floating-point operations executed by the BLAS kernels (and callers self-reporting via AddFlops).")

// AddFlops adds n floating-point operations to the global tally. Other
// packages performing substantial arithmetic outside the BLAS kernels
// (checksum encoding, reconstructions) call this to stay covered.
func AddFlops(n uint64) { flopCount.Add(n) }

// Flops returns the flops executed since the last ResetFlops.
func Flops() uint64 { return flopCount.Value() }

// ResetFlops zeroes the tally and returns the previous value. Note this
// resets the registry counter too; scrape consumers that need monotonic
// counters should prefer obs.Snapshot diffing over ResetFlops.
func ResetFlops() uint64 { return flopCount.Swap(0) }
