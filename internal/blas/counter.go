package blas

import "sync/atomic"

// flopCount is a process-wide tally of floating-point operations executed
// by the BLAS kernels (and, via their internal use of these kernels, the
// checksum and LAPACK layers). It gives experiments a deterministic,
// noise-free work metric: on the simulated platform, wall-clock overhead
// percentages are hostage to scheduler jitter, while flop ratios are
// exactly reproducible.
var flopCount atomic.Uint64

// AddFlops adds n floating-point operations to the global tally. Other
// packages performing substantial arithmetic outside the BLAS kernels
// (checksum encoding, reconstructions) call this to stay covered.
func AddFlops(n uint64) { flopCount.Add(n) }

// Flops returns the flops executed since the last ResetFlops.
func Flops() uint64 { return flopCount.Load() }

// ResetFlops zeroes the tally and returns the previous value.
func ResetFlops() uint64 { return flopCount.Swap(0) }
