package blas

import (
	"math"
	"testing"
	"testing/quick"

	"ftla/internal/matrix"
)

// refGemm is a dependency-free reference multiply used to validate the
// optimized kernels.
func refGemm(transA, transB bool, alpha float64, a, b *matrix.Dense, beta float64, c *matrix.Dense) {
	opA, opB := a, b
	if transA {
		opA = a.T()
	}
	if transB {
		opB = b.T()
	}
	for i := 0; i < c.Rows; i++ {
		for j := 0; j < c.Cols; j++ {
			s := 0.0
			for p := 0; p < opA.Cols; p++ {
				s += opA.At(i, p) * opB.At(p, j)
			}
			c.Set(i, j, alpha*s+beta*c.At(i, j))
		}
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestAxpyScal(t *testing.T) {
	y := []float64{1, 1, 1}
	Axpy(2, []float64{1, 2, 3}, y)
	if y[2] != 7 {
		t.Fatalf("Axpy wrong: %v", y)
	}
	Scal(0.5, y)
	if y[0] != 1.5 {
		t.Fatalf("Scal wrong: %v", y)
	}
	// alpha == 0 fast path must not modify y.
	before := append([]float64(nil), y...)
	Axpy(0, []float64{9, 9, 9}, y)
	for i := range y {
		if y[i] != before[i] {
			t.Fatal("Axpy(0) modified y")
		}
	}
}

func TestIamax(t *testing.T) {
	if got := Iamax([]float64{1, -5, 3}); got != 1 {
		t.Fatalf("Iamax = %d, want 1", got)
	}
	if got := Iamax([]float64{2, -2}); got != 0 {
		t.Fatalf("Iamax tie = %d, want 0 (lowest index)", got)
	}
	if got := Iamax(nil); got != -1 {
		t.Fatalf("Iamax(nil) = %d, want -1", got)
	}
}

func TestIamaxCol(t *testing.T) {
	a := matrix.FromRows([][]float64{{9, 1}, {2, -8}, {3, 4}})
	if got := IamaxCol(a, 1, 0); got != 1 {
		t.Fatalf("IamaxCol = %d, want 1", got)
	}
	if got := IamaxCol(a, 0, 1); got != 2 {
		t.Fatalf("IamaxCol from row 1 = %d, want 2", got)
	}
}

func TestGemvNoTrans(t *testing.T) {
	a := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	y := []float64{1, 1}
	Gemv(false, 2, a, []float64{1, 1}, 3, y)
	// y = 2*A*[1 1] + 3*[1 1] = [6+3, 14+3]
	if y[0] != 9 || y[1] != 17 {
		t.Fatalf("Gemv = %v", y)
	}
}

func TestGemvTrans(t *testing.T) {
	a := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	y := []float64{0, 0}
	Gemv(true, 1, a, []float64{1, 2}, 0, y)
	// Aᵀ*[1 2] = [1+6, 2+8] = [7, 10]
	if y[0] != 7 || y[1] != 10 {
		t.Fatalf("Gemv trans = %v", y)
	}
}

func TestGer(t *testing.T) {
	a := matrix.NewDense(2, 3)
	Ger(2, []float64{1, 2}, []float64{1, 2, 3}, a)
	if a.At(1, 2) != 12 || a.At(0, 0) != 2 {
		t.Fatalf("Ger wrong: %v", a)
	}
}

func gemmCase(t *testing.T, transA, transB bool, m, n, k int, alpha, beta float64, seed uint64) {
	t.Helper()
	rng := matrix.NewRNG(seed)
	ar, ac := m, k
	if transA {
		ar, ac = k, m
	}
	br, bc := k, n
	if transB {
		br, bc = n, k
	}
	a := matrix.Random(ar, ac, rng)
	b := matrix.Random(br, bc, rng)
	c := matrix.Random(m, n, rng)
	want := c.Clone()
	refGemm(transA, transB, alpha, a, b, beta, want)
	Gemm(transA, transB, alpha, a, b, beta, c)
	if !c.EqualWithin(want, 1e-11*float64(k+1)) {
		d, i, j := c.MaxAbsDiff(want)
		t.Fatalf("Gemm(tA=%v,tB=%v,%dx%dx%d) diff %g at (%d,%d)", transA, transB, m, n, k, d, i, j)
	}
}

func TestGemmAllTransCombos(t *testing.T) {
	for _, tA := range []bool{false, true} {
		for _, tB := range []bool{false, true} {
			gemmCase(t, tA, tB, 7, 5, 9, 1.5, 0.5, 1)
			gemmCase(t, tA, tB, 1, 1, 1, 2, 0, 2)
			gemmCase(t, tA, tB, 16, 16, 16, -1, 1, 3)
		}
	}
}

func TestGemmKBlocked(t *testing.T) {
	// k > kc exercises the cache-blocked path.
	gemmCase(t, false, false, 8, 8, kc+17, 1, 1, 4)
}

func TestGemmBetaZeroClearsNaN(t *testing.T) {
	a := matrix.NewDense(2, 2)
	b := matrix.NewDense(2, 2)
	c := matrix.NewDense(2, 2)
	c.Set(0, 0, math.NaN())
	Gemm(false, false, 1, a, b, 0, c)
	if math.IsNaN(c.At(0, 0)) {
		t.Fatal("beta=0 must overwrite, not scale, NaN entries")
	}
}

func TestGemmDimensionPanics(t *testing.T) {
	a := matrix.NewDense(2, 3)
	b := matrix.NewDense(4, 2) // inner mismatch
	c := matrix.NewDense(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected dimension panic")
		}
	}()
	Gemm(false, false, 1, a, b, 0, c)
}

func TestGemmPMatchesSequential(t *testing.T) {
	rng := matrix.NewRNG(9)
	a := matrix.Random(64, 48, rng)
	b := matrix.Random(48, 56, rng)
	c1 := matrix.Random(64, 56, rng)
	c2 := c1.Clone()
	Gemm(false, false, 1.2, a, b, 0.7, c1)
	GemmP(4, false, false, 1.2, a, b, 0.7, c2)
	if !c1.EqualWithin(c2, 1e-12) {
		t.Fatal("parallel Gemm disagrees with sequential")
	}
}

func TestGemmOnViews(t *testing.T) {
	rng := matrix.NewRNG(13)
	big := matrix.Random(20, 20, rng)
	a := big.View(0, 0, 6, 8)
	b := big.View(6, 4, 8, 5)
	c := matrix.NewDense(6, 5)
	want := matrix.NewDense(6, 5)
	refGemm(false, false, 1, a.Clone(), b.Clone(), 0, want)
	Gemm(false, false, 1, a, b, 0, c)
	if !c.EqualWithin(want, 1e-12) {
		t.Fatal("Gemm on strided views wrong")
	}
}

func trsmCase(t *testing.T, side Side, lower, trans, unit bool, n, nrhs int, seed uint64) {
	t.Helper()
	rng := matrix.NewRNG(seed)
	a := matrix.Random(n, n, rng)
	// Make the referenced triangle well conditioned.
	for i := 0; i < n; i++ {
		a.Set(i, i, 4+rng.Float64())
	}
	var b *matrix.Dense
	if side == Left {
		b = matrix.Random(n, nrhs, rng)
	} else {
		b = matrix.Random(nrhs, n, rng)
	}
	orig := b.Clone()
	Trsm(side, lower, trans, unit, 1, a, b)
	// Rebuild op(A) restricted to the referenced triangle (+ unit diag).
	tri := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			inTri := (lower && j < i) || (!lower && j > i)
			if i == j {
				if unit {
					tri.Set(i, j, 1)
				} else {
					tri.Set(i, j, a.At(i, j))
				}
			} else if inTri {
				tri.Set(i, j, a.At(i, j))
			}
		}
	}
	var prod *matrix.Dense
	if side == Left {
		prod = matrix.NewDense(n, nrhs)
		refGemm(trans, false, 1, tri, b, 0, prod)
	} else {
		prod = matrix.NewDense(nrhs, n)
		refGemm(false, trans, 1, b, tri, 0, prod)
	}
	if !prod.EqualWithin(orig, 1e-10) {
		d, _, _ := prod.MaxAbsDiff(orig)
		t.Fatalf("Trsm(side=%v lower=%v trans=%v unit=%v) residual %g", side, lower, trans, unit, d)
	}
}

func TestTrsmAllVariants(t *testing.T) {
	seed := uint64(1)
	for _, side := range []Side{Left, Right} {
		for _, lower := range []bool{true, false} {
			for _, trans := range []bool{true, false} {
				for _, unit := range []bool{true, false} {
					trsmCase(t, side, lower, trans, unit, 9, 6, seed)
					seed++
				}
			}
		}
	}
}

func TestTrsmAlpha(t *testing.T) {
	rng := matrix.NewRNG(77)
	n := 5
	a := matrix.Random(n, n, rng)
	for i := 0; i < n; i++ {
		a.Set(i, i, 3)
	}
	b := matrix.Random(n, 4, rng)
	b2 := b.Clone()
	Trsm(Left, true, false, false, 2, a, b)
	Trsm(Left, true, false, false, 1, a, b2)
	b2.Scale(2)
	if !b.EqualWithin(b2, 1e-12) {
		t.Fatal("alpha scaling in Trsm wrong")
	}
}

func TestTrsmPMatchesSequential(t *testing.T) {
	rng := matrix.NewRNG(21)
	n := 32
	a := matrix.Random(n, n, rng)
	for i := 0; i < n; i++ {
		a.Set(i, i, 5)
	}
	b1 := matrix.Random(n, 40, rng)
	b2 := b1.Clone()
	Trsm(Left, true, false, false, 1, a, b1)
	TrsmP(4, Left, true, false, false, 1, a, b2)
	if !b1.EqualWithin(b2, 1e-13) {
		t.Fatal("TrsmP disagrees with Trsm")
	}
	b3 := matrix.Random(40, n, rng)
	b4 := b3.Clone()
	Trsm(Right, false, true, false, 1, a, b3)
	TrsmP(4, Right, false, true, false, 1, a, b4)
	if !b3.EqualWithin(b4, 1e-13) {
		t.Fatal("TrsmP Right disagrees with Trsm")
	}
}

func TestSyrkLowerNoTrans(t *testing.T) {
	rng := matrix.NewRNG(31)
	n, k := 8, 5
	a := matrix.Random(n, k, rng)
	c := matrix.Random(n, n, rng)
	want := c.Clone()
	refGemm(false, true, 1.5, a, a, 0.5, want)
	Syrk(true, false, 1.5, a, 0.5, c)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if math.Abs(c.At(i, j)-want.At(i, j)) > 1e-12 {
				t.Fatalf("Syrk lower wrong at (%d,%d)", i, j)
			}
		}
		for j := i + 1; j < n; j++ {
			// strict upper must be untouched — compare against pre-Syrk C.
			_ = j
		}
	}
}

func TestSyrkUpperTouchesOnlyUpper(t *testing.T) {
	rng := matrix.NewRNG(37)
	n, k := 6, 4
	a := matrix.Random(k, n, rng) // trans=true: C = AᵀA
	c := matrix.Random(n, n, rng)
	before := c.Clone()
	Syrk(false, true, 1, a, 1, c)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			if c.At(i, j) != before.At(i, j) {
				t.Fatalf("Syrk upper modified lower triangle at (%d,%d)", i, j)
			}
		}
	}
	want := before.Clone()
	refGemm(true, false, 1, a, a, 1, want)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			if math.Abs(c.At(i, j)-want.At(i, j)) > 1e-12 {
				t.Fatalf("Syrk upper value wrong at (%d,%d)", i, j)
			}
		}
	}
}

func TestSyrkPMatchesSequential(t *testing.T) {
	rng := matrix.NewRNG(41)
	n, k := 48, 16
	a := matrix.Random(n, k, rng)
	c1 := matrix.Random(n, n, rng)
	c2 := c1.Clone()
	Syrk(true, false, -1, a, 1, c1)
	SyrkP(4, true, false, -1, a, 1, c2)
	if !c1.EqualWithin(c2, 1e-13) {
		t.Fatal("SyrkP disagrees with Syrk")
	}
}

// Property: Gemm is linear in alpha.
func TestGemmAlphaLinearity(t *testing.T) {
	f := func(seed uint64) bool {
		rng := matrix.NewRNG(seed)
		m, n, k := 3+int(seed%5), 3+int(seed%4), 3+int(seed%6)
		a := matrix.Random(m, k, rng)
		b := matrix.Random(k, n, rng)
		c1 := matrix.NewDense(m, n)
		c2 := matrix.NewDense(m, n)
		Gemm(false, false, 2, a, b, 0, c1)
		Gemm(false, false, 1, a, b, 0, c2)
		c2.Scale(2)
		return c1.EqualWithin(c2, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ via the kernel's trans paths.
func TestGemmTransposeIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		rng := matrix.NewRNG(seed)
		m, n, k := 2+int(seed%6), 2+int(seed%5), 2+int(seed%7)
		a := matrix.Random(m, k, rng)
		b := matrix.Random(k, n, rng)
		ab := matrix.NewDense(m, n)
		Gemm(false, false, 1, a, b, 0, ab)
		btat := matrix.NewDense(n, m)
		Gemm(true, true, 1, b, a, 0, btat)
		return ab.T().EqualWithin(btat, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGemmSequential256(b *testing.B) {
	rng := matrix.NewRNG(1)
	x := matrix.Random(256, 256, rng)
	y := matrix.Random(256, 256, rng)
	c := matrix.NewDense(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm(false, false, 1, x, y, 0, c)
	}
}

func BenchmarkGemmParallel256(b *testing.B) {
	rng := matrix.NewRNG(1)
	x := matrix.Random(256, 256, rng)
	y := matrix.Random(256, 256, rng)
	c := matrix.NewDense(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmP(8, false, false, 1, x, y, 0, c)
	}
}
