package blas

import (
	"sync"

	"ftla/internal/matrix"
)

// kc is the k-dimension cache-blocking factor for the NN kernel. It keeps
// the streamed panel of B within L2-sized working sets on typical cores.
const kc = 256

// Gemm computes C = alpha*op(A)*op(B) + beta*C sequentially.
// op(X) is X when the corresponding trans flag is false and Xᵀ otherwise.
func Gemm(transA, transB bool, alpha float64, a, b *matrix.Dense, beta float64, c *matrix.Dense) {
	_, _, k := opDims(transA, transB, a, b, c)
	AddFlops(2 * uint64(c.Rows) * uint64(c.Cols) * uint64(k))
	gemmRows(transA, transB, alpha, a, b, beta, c, 0, c.Rows)
}

// GemmP is Gemm parallelized over row stripes of C using up to `workers`
// goroutines. workers <= 1 degrades to the sequential path.
func GemmP(workers int, transA, transB bool, alpha float64, a, b *matrix.Dense, beta float64, c *matrix.Dense) {
	if workers <= 1 || c.Rows < 2*workers {
		Gemm(transA, transB, alpha, a, b, beta, c)
		return
	}
	_, _, k := opDims(transA, transB, a, b, c)
	AddFlops(2 * uint64(c.Rows) * uint64(c.Cols) * uint64(k))
	var wg sync.WaitGroup
	chunk := (c.Rows + workers - 1) / workers
	for lo := 0; lo < c.Rows; lo += chunk {
		hi := lo + chunk
		if hi > c.Rows {
			hi = c.Rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			gemmRows(transA, transB, alpha, a, b, beta, c, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// gemmRows computes rows [rlo, rhi) of C. The four transpose combinations
// are specialized so the inner loops stream rows of the row-major operands.
func gemmRows(transA, transB bool, alpha float64, a, b *matrix.Dense, beta float64, c *matrix.Dense, rlo, rhi int) {
	m, n, k := opDims(transA, transB, a, b, c)
	_ = m
	if rhi > c.Rows {
		rhi = c.Rows
	}
	if beta != 1 {
		for i := rlo; i < rhi; i++ {
			row := c.Row(i)
			if beta == 0 {
				for j := range row {
					row[j] = 0
				}
			} else {
				for j := range row {
					row[j] *= beta
				}
			}
		}
	}
	if alpha == 0 || k == 0 {
		return
	}
	switch {
	case !transA && !transB:
		// C[i,:] += alpha * A[i,p] * B[p,:], k-blocked.
		for p0 := 0; p0 < k; p0 += kc {
			p1 := p0 + kc
			if p1 > k {
				p1 = k
			}
			for i := rlo; i < rhi; i++ {
				ra := a.Row(i)
				rc := c.Row(i)
				for p := p0; p < p1; p++ {
					av := alpha * ra[p]
					if av == 0 {
						continue
					}
					rb := b.Row(p)
					for j, bv := range rb {
						rc[j] += av * bv
					}
				}
			}
		}
	case transA && !transB:
		// C[i,:] += alpha * A[p,i] * B[p,:].
		for p := 0; p < k; p++ {
			ra := a.Row(p)
			rb := b.Row(p)
			for i := rlo; i < rhi; i++ {
				av := alpha * ra[i]
				if av == 0 {
					continue
				}
				rc := c.Row(i)
				for j, bv := range rb {
					rc[j] += av * bv
				}
			}
		}
	case !transA && transB:
		// C[i,j] += alpha * dot(A[i,:], B[j,:]).
		for i := rlo; i < rhi; i++ {
			ra := a.Row(i)
			rc := c.Row(i)
			for j := 0; j < n; j++ {
				rb := b.Row(j)
				s := 0.0
				for p, av := range ra {
					s += av * rb[p]
				}
				rc[j] += alpha * s
			}
		}
	default: // transA && transB
		// C[i,j] += alpha * A[p,i] * B[j,p].
		for i := rlo; i < rhi; i++ {
			rc := c.Row(i)
			for j := 0; j < n; j++ {
				rb := b.Row(j)
				s := 0.0
				for p := 0; p < k; p++ {
					s += a.At(p, i) * rb[p]
				}
				rc[j] += alpha * s
			}
		}
	}
}

// opDims validates operand shapes and returns (m, n, k) for
// C(m×n) = op(A)(m×k) · op(B)(k×n).
func opDims(transA, transB bool, a, b, c *matrix.Dense) (m, n, k int) {
	am, ak := a.Rows, a.Cols
	if transA {
		am, ak = ak, am
	}
	bk, bn := b.Rows, b.Cols
	if transB {
		bk, bn = bn, bk
	}
	if ak != bk || c.Rows != am || c.Cols != bn {
		panic("blas: Gemm dimension mismatch")
	}
	return am, bn, ak
}
