// Package blas implements the subset of Level-1/2/3 BLAS needed by the
// blocked one-sided matrix decompositions in this repository. Matrices are
// the row-major views of internal/matrix; the Level-3 routines are cache
// tiled and optionally goroutine-parallel so that the simulated GPU devices
// in internal/hetsim execute real parallel kernels rather than timing
// models.
package blas

import (
	"math"

	"ftla/internal/matrix"
)

// Dot returns xᵀy.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("blas: Dot length mismatch")
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy computes y += alpha*x.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("blas: Axpy length mismatch")
	}
	if alpha == 0 {
		return
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scal computes x *= alpha.
func Scal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Nrm2 returns the Euclidean norm of x.
func Nrm2(x []float64) float64 {
	return matrix.VecNorm2(x)
}

// Iamax returns the index of the element of x with the largest absolute
// value, or -1 for an empty vector. Ties resolve to the lowest index, as in
// reference BLAS.
func Iamax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best, bi := math.Abs(x[0]), 0
	for i := 1; i < len(x); i++ {
		if a := math.Abs(x[i]); a > best {
			best, bi = a, i
		}
	}
	return bi
}

// IamaxCol returns the row index (relative to the view) of the largest
// absolute value in column j of a, scanning rows [i0, a.Rows).
func IamaxCol(a *matrix.Dense, j, i0 int) int {
	best, bi := -1.0, -1
	for i := i0; i < a.Rows; i++ {
		if v := math.Abs(a.At(i, j)); v > best {
			best, bi = v, i
		}
	}
	return bi
}
