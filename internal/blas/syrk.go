package blas

import (
	"sync"

	"ftla/internal/matrix"
)

// Syrk performs the symmetric rank-k update
//
//	C = alpha·A·Aᵀ + beta·C   (trans == false)
//	C = alpha·Aᵀ·A + beta·C   (trans == true)
//
// updating only the lower triangle of C when lower is true (upper
// otherwise). The opposite triangle is left untouched, as in reference
// BLAS.
func Syrk(lower, trans bool, alpha float64, a *matrix.Dense, beta float64, c *matrix.Dense) {
	k := a.Cols
	if trans {
		k = a.Rows
	}
	AddFlops(uint64(c.Rows) * uint64(c.Cols) * uint64(k))
	syrkRows(lower, trans, alpha, a, beta, c, 0, c.Rows)
}

// SyrkP is Syrk parallelized over row stripes of C.
func SyrkP(workers int, lower, trans bool, alpha float64, a *matrix.Dense, beta float64, c *matrix.Dense) {
	if workers <= 1 || c.Rows < 2*workers {
		Syrk(lower, trans, alpha, a, beta, c)
		return
	}
	k := a.Cols
	if trans {
		k = a.Rows
	}
	AddFlops(uint64(c.Rows) * uint64(c.Cols) * uint64(k))
	var wg sync.WaitGroup
	chunk := (c.Rows + workers - 1) / workers
	for lo := 0; lo < c.Rows; lo += chunk {
		hi := lo + chunk
		if hi > c.Rows {
			hi = c.Rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			syrkRows(lower, trans, alpha, a, beta, c, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func syrkRows(lower, trans bool, alpha float64, a *matrix.Dense, beta float64, c *matrix.Dense, rlo, rhi int) {
	n := c.Rows
	if c.Cols != n {
		panic("blas: Syrk C not square")
	}
	var k int
	if !trans {
		if a.Rows != n {
			panic("blas: Syrk dimension mismatch")
		}
		k = a.Cols
	} else {
		if a.Cols != n {
			panic("blas: Syrk dimension mismatch")
		}
		k = a.Rows
	}
	for i := rlo; i < rhi; i++ {
		jlo, jhi := 0, i+1
		if !lower {
			jlo, jhi = i, n
		}
		rc := c.Row(i)
		if beta != 1 {
			for j := jlo; j < jhi; j++ {
				rc[j] *= beta
			}
		}
		if alpha == 0 || k == 0 {
			continue
		}
		if !trans {
			ra := a.Row(i)
			for j := jlo; j < jhi; j++ {
				rb := a.Row(j)
				s := 0.0
				for p, v := range ra {
					s += v * rb[p]
				}
				rc[j] += alpha * s
			}
		} else {
			for p := 0; p < k; p++ {
				rp := a.Row(p)
				av := alpha * rp[i]
				if av == 0 {
					continue
				}
				for j := jlo; j < jhi; j++ {
					rc[j] += av * rp[j]
				}
			}
		}
	}
}
