package blas

import (
	"sync"

	"ftla/internal/matrix"
)

// Side selects which side of the triangular solve the coefficient matrix
// appears on: op(A)·X = B (Left) or X·op(A) = B (Right).
type Side int

// Triangular-solve side constants.
const (
	Left Side = iota
	Right
)

// Trsm solves a triangular system with multiple right-hand sides in place:
//
//	Left:  op(A) · X = alpha·B
//	Right: X · op(A) = alpha·B
//
// where A is triangular (lower when lower is true), op is transpose when
// trans is true, and unit selects an implicit unit diagonal. B is
// overwritten with X.
func Trsm(side Side, lower, trans, unit bool, alpha float64, a, b *matrix.Dense) {
	AddFlops(uint64(a.Rows) * uint64(a.Rows) * uint64(stripeCount(side, b)))
	trsmStripe(side, lower, trans, unit, alpha, a, b, 0, stripeCount(side, b))
}

// TrsmP is Trsm parallelized across independent right-hand-side stripes:
// columns of B for Left solves, rows of B for Right solves.
func TrsmP(workers int, side Side, lower, trans, unit bool, alpha float64, a, b *matrix.Dense) {
	total := stripeCount(side, b)
	if workers <= 1 || total < 2*workers {
		Trsm(side, lower, trans, unit, alpha, a, b)
		return
	}
	AddFlops(uint64(a.Rows) * uint64(a.Rows) * uint64(total))
	var wg sync.WaitGroup
	chunk := (total + workers - 1) / workers
	for lo := 0; lo < total; lo += chunk {
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			trsmStripe(side, lower, trans, unit, alpha, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func stripeCount(side Side, b *matrix.Dense) int {
	if side == Left {
		return b.Cols
	}
	return b.Rows
}

// trsmStripe solves the stripes [lo, hi) of B. For Left solves a stripe is
// a column of B; for Right solves it is a row.
func trsmStripe(side Side, lower, trans, unit bool, alpha float64, a, b *matrix.Dense, lo, hi int) {
	n := a.Rows
	if a.Cols != n {
		panic("blas: Trsm coefficient matrix not square")
	}
	if side == Left && b.Rows != n {
		panic("blas: Trsm Left dimension mismatch")
	}
	if side == Right && b.Cols != n {
		panic("blas: Trsm Right dimension mismatch")
	}
	if side == Left {
		x := make([]float64, n)
		for j := lo; j < hi; j++ {
			for i := 0; i < n; i++ {
				x[i] = alpha * b.At(i, j)
			}
			Trsv(lower, trans, unit, a, x)
			for i := 0; i < n; i++ {
				b.Set(i, j, x[i])
			}
		}
		return
	}
	// Right side: X·op(A) = alpha·B  ⇔  op(A)ᵀ·Xᵀ = alpha·Bᵀ, so each row
	// of B is solved against op(A)ᵀ. Trsv references the same stored
	// triangle either way, so only the trans flag flips.
	for i := lo; i < hi; i++ {
		row := b.Row(i)
		if alpha != 1 {
			for k := range row {
				row[k] *= alpha
			}
		}
		Trsv(lower, !trans, unit, a, row)
	}
}
