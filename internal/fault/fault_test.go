package fault

import (
	"math"
	"testing"
	"testing/quick"

	"ftla/internal/matrix"
)

func TestFlipBitsInvolution(t *testing.T) {
	f := func(v float64, bit uint8) bool {
		b := int(bit % 64)
		return FlipBits(FlipBits(v, b), b) == v || math.IsNaN(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlipBitsChangesValue(t *testing.T) {
	v := 3.14159
	if FlipBits(v, 51) == v {
		t.Fatal("bit flip did not change value")
	}
}

func TestCorruptSignificantAndFinite(t *testing.T) {
	rng := matrix.NewRNG(1)
	for _, v := range []float64{0, 1e-300, -1e-12, 0.5, -3.7, 1234.5, -9e5} {
		for bits := 1; bits <= 3; bits++ {
			c := Corrupt(v, bits, rng)
			if math.IsNaN(c) || math.IsInf(c, 0) {
				t.Fatalf("Corrupt(%g) produced non-finite %g", v, c)
			}
			if !isSignificant(v, c) {
				t.Fatalf("Corrupt(%g) = %g not significant", v, c)
			}
		}
	}
}

func TestCorruptDeterministic(t *testing.T) {
	a := Corrupt(2.5, 2, matrix.NewRNG(9))
	b := Corrupt(2.5, 2, matrix.NewRNG(9))
	if a != b {
		t.Fatal("Corrupt must be deterministic for a fixed seed")
	}
}

func TestScheduleDefaultsBits(t *testing.T) {
	in := NewInjector(1)
	in.Schedule(Spec{Kind: Computation, Op: TMU})
	in.Schedule(Spec{Kind: OffChipMemory, Op: TMU})
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.pending[0].Bits != 1 {
		t.Fatal("computation default bits should be 1")
	}
	if in.pending[1].Bits != 2 {
		t.Fatal("memory default bits should be 2 (ECC-resistant)")
	}
}

func TestBeforeOpOffChipPersists(t *testing.T) {
	in := NewInjector(2)
	in.Schedule(Spec{Kind: OffChipMemory, Op: PD, Part: ReferencePart, Iteration: 0, Row: 1, Col: 1})
	m := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	in.InjectMem(0, PD, []Region{{Part: ReferencePart, M: m, Row0: 10, Col0: 20}})
	if m.At(1, 1) == 4 {
		t.Fatal("off-chip fault not injected")
	}
	in.InjectComp(0, PD, nil)
	if m.At(1, 1) == 4 {
		t.Fatal("off-chip fault must persist after op")
	}
	evs := in.Events()
	if len(evs) != 1 || evs[0].GlobalI != 11 || evs[0].GlobalJ != 21 {
		t.Fatalf("event wrong: %v", evs)
	}
	if in.Pending() {
		t.Fatal("spec should be consumed")
	}
}

func TestOnChipRestoredAfterOp(t *testing.T) {
	in := NewInjector(3)
	in.Schedule(Spec{Kind: OnChipMemory, Op: TMU, Part: ReferencePart, Iteration: 2, Row: 0, Col: 0})
	m := matrix.FromRows([][]float64{{5}})
	in.InjectMem(2, TMU, []Region{{Part: ReferencePart, M: m}})
	if m.At(0, 0) != 5 {
		t.Fatal("InjectMem must not fire on-chip faults (invisible to memory checks)")
	}
	in.InjectOnChip(2, TMU, []Region{{Part: ReferencePart, M: m}})
	if m.At(0, 0) == 5 {
		t.Fatal("on-chip fault not visible during op")
	}
	in.InjectComp(2, TMU, nil)
	if m.At(0, 0) != 5 {
		t.Fatal("on-chip fault must be restored after op (no write-back)")
	}
}

func TestComputationInjectedAfterOp(t *testing.T) {
	in := NewInjector(4)
	in.Schedule(Spec{Kind: Computation, Op: PU, Iteration: 1, Row: 0, Col: 1})
	m := matrix.FromRows([][]float64{{1, 2}})
	in.InjectMem(1, PU, []Region{{Part: UpdatePart, M: m}})
	if m.At(0, 1) != 2 {
		t.Fatal("computation fault fired too early")
	}
	in.InjectComp(1, PU, []Region{{Part: UpdatePart, M: m}})
	if m.At(0, 1) == 2 {
		t.Fatal("computation fault not injected after op")
	}
}

func TestWrongIterationDoesNotFire(t *testing.T) {
	in := NewInjector(5)
	in.Schedule(Spec{Kind: OffChipMemory, Op: PD, Iteration: 3})
	m := matrix.FromRows([][]float64{{1}})
	in.InjectMem(0, PD, []Region{{Part: ReferencePart, M: m}})
	if m.At(0, 0) != 1 {
		t.Fatal("fault fired at wrong iteration")
	}
	if !in.Pending() {
		t.Fatal("spec must remain pending")
	}
}

func TestWrongOpDoesNotFire(t *testing.T) {
	in := NewInjector(6)
	in.Schedule(Spec{Kind: OffChipMemory, Op: TMU, Iteration: 0})
	m := matrix.FromRows([][]float64{{1}})
	in.InjectMem(0, PU, []Region{{Part: ReferencePart, M: m}})
	if m.At(0, 0) != 1 {
		t.Fatal("fault fired at wrong op")
	}
}

func TestOnTransferTargetsLeg(t *testing.T) {
	in := NewInjector(7)
	in.Schedule(Spec{Kind: Communication, Op: Broadcast, Iteration: 0, GPUTarget: 1, Row: 0, Col: 0})
	p0 := matrix.FromRows([][]float64{{9}})
	p1 := matrix.FromRows([][]float64{{9}})
	in.OnTransfer(0, Broadcast, 0, p0, 0, 0)
	if p0.At(0, 0) != 9 {
		t.Fatal("fault hit wrong leg")
	}
	in.OnTransfer(0, Broadcast, 1, p1, 0, 0)
	if p1.At(0, 0) == 9 {
		t.Fatal("fault did not hit targeted leg")
	}
}

func TestRandomElementSelectionInBounds(t *testing.T) {
	in := NewInjector(8)
	for k := 0; k < 50; k++ {
		in.Schedule(Spec{Kind: OffChipMemory, Op: PD, Iteration: k, Row: -1, Col: -1})
		m := matrix.NewDense(3, 4)
		in.InjectMem(k, PD, []Region{{Part: ReferencePart, M: m}})
	}
	for _, e := range in.Events() {
		if e.GlobalI < 0 || e.GlobalI >= 3 || e.GlobalJ < 0 || e.GlobalJ >= 4 {
			t.Fatalf("event out of bounds: %v", e)
		}
	}
}

func TestEmptyRegionSkipped(t *testing.T) {
	in := NewInjector(9)
	in.Schedule(Spec{Kind: OffChipMemory, Op: PD, Iteration: 0, Part: UpdatePart})
	m := matrix.NewDense(0, 0)
	in.InjectMem(0, PD, []Region{{Part: UpdatePart, M: m}})
	if len(in.Events()) != 0 {
		t.Fatal("empty region must be skipped")
	}
}

func TestStringMethods(t *testing.T) {
	if Computation.String() == "" || OnChipMemory.String() == "" {
		t.Fatal("Kind strings empty")
	}
	for _, o := range []Op{PD, PU, TMU, CTF, Broadcast} {
		if o.String() == "" {
			t.Fatal("Op string empty")
		}
	}
	if ReferencePart.String() != "ref" || UpdatePart.String() != "update" {
		t.Fatal("Part strings wrong")
	}
	ev := Event{Spec: Spec{Kind: Computation, Op: TMU}}
	if ev.String() == "" {
		t.Fatal("Event string empty")
	}
}
