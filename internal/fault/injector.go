package fault

import (
	"sync"

	"ftla/internal/matrix"
)

// Region describes a rectangular piece of the factorization state exposed
// to the injector at an injection point: a live view into device memory
// plus the global coordinates of its top-left corner (for reporting).
type Region struct {
	Part Part
	M    *matrix.Dense
	Row0 int
	Col0 int
}

// Injector schedules Specs and applies them at the timing hooks the
// protected factorizations call. It is safe for concurrent use by device
// goroutines.
type Injector struct {
	mu      sync.Mutex
	rng     *matrix.RNG
	pending []Spec
	events  []Event
	// on-chip restoration state: element to restore after the op.
	restore []func()
}

// NewInjector builds an injector with a deterministic RNG seed.
func NewInjector(seed uint64) *Injector {
	return &Injector{rng: matrix.NewRNG(seed)}
}

// Schedule queues a fault for injection.
func (in *Injector) Schedule(s Spec) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if s.Bits == 0 {
		if s.Kind == Computation {
			s.Bits = 1
		} else {
			s.Bits = 2
		}
	}
	in.pending = append(in.pending, s)
}

// Events returns the faults injected so far.
func (in *Injector) Events() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Event, len(in.events))
	copy(out, in.events)
	return out
}

// Pending reports whether any scheduled fault has not fired yet.
func (in *Injector) Pending() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.pending) > 0
}

// take removes and returns all pending specs matching the predicate.
func (in *Injector) take(match func(Spec) bool) []Spec {
	var hit []Spec
	rest := in.pending[:0]
	for _, s := range in.pending {
		if match(s) {
			hit = append(hit, s)
		} else {
			rest = append(rest, s)
		}
	}
	in.pending = rest
	return hit
}

// corruptRegion flips an element of the region chosen by s and returns the
// event plus an undo closure.
func (in *Injector) corruptRegion(s Spec, r Region) (Event, func()) {
	i, j := s.Row, s.Col
	if i < 0 || i >= r.M.Rows {
		i = in.rng.Intn(r.M.Rows)
	}
	if j < 0 || j >= r.M.Cols {
		j = in.rng.Intn(r.M.Cols)
	}
	old := r.M.At(i, j)
	corrupted := Corrupt(old, s.Bits, in.rng)
	r.M.Set(i, j, corrupted)
	ev := Event{Spec: s, GlobalI: r.Row0 + i, GlobalJ: r.Col0 + j, Old: old, New: corrupted}
	m, ii, jj := r.M, i, j
	return ev, func() { m.Set(ii, jj, old) }
}

func pickRegion(regs []Region, p Part, refIndex int) (Region, bool) {
	seen := 0
	for _, r := range regs {
		if r.Part == p && r.M.Rows > 0 && r.M.Cols > 0 {
			if seen == refIndex {
				return r, true
			}
			seen++
		}
	}
	return Region{}, false
}

// InjectMem fires the off-chip (DRAM) faults aimed at (it, op). It is
// called BEFORE any pre-operation verification: a DRAM fault corrupts the
// stored matrix, so a memory-verifying check can observe it (§X.A timing
// rule 2).
func (in *Injector) InjectMem(it int, op Op, regs []Region) {
	in.mu.Lock()
	defer in.mu.Unlock()
	specs := in.take(func(s Spec) bool {
		return s.Iteration == it && s.Op == op && s.Kind == OffChipMemory
	})
	for _, s := range specs {
		r, ok := pickRegion(regs, s.Part, s.RefIndex)
		if !ok {
			continue
		}
		ev, _ := in.corruptRegion(s, r)
		in.events = append(in.events, ev)
	}
}

// InjectOnChip fires the on-chip memory faults aimed at (it, op). It is
// called AFTER pre-operation verification and before the computation: an
// on-chip fault corrupts only the cached copy the operation consumes, is
// invisible to a memory check, and is undone by InjectComp (no
// write-back; §X.A timing rule 3).
func (in *Injector) InjectOnChip(it int, op Op, regs []Region) {
	in.mu.Lock()
	defer in.mu.Unlock()
	specs := in.take(func(s Spec) bool {
		return s.Iteration == it && s.Op == op && s.Kind == OnChipMemory
	})
	for _, s := range specs {
		r, ok := pickRegion(regs, s.Part, s.RefIndex)
		if !ok {
			continue
		}
		ev, undo := in.corruptRegion(s, r)
		in.events = append(in.events, ev)
		in.restore = append(in.restore, undo)
	}
}

// RestoreOnChip undoes all pending on-chip corruption. The protected
// factorizations call it between an operation's data kernel and its
// checksum-maintenance kernels: an on-chip fault corrupts one transient
// read, so the two kernels' independent loads of the same cell do not see
// the same corruption (§V; the memory cell itself was never wrong).
func (in *Injector) RestoreOnChip() {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, undo := range in.restore {
		undo()
	}
	in.restore = in.restore[:0]
}

// InjectComp fires the computation faults aimed at (it, op) on the freshly
// produced update part, and restores any on-chip corruption from
// InjectOnChip (§X.A timing rules 1 and 3).
func (in *Injector) InjectComp(it int, op Op, regs []Region) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, undo := range in.restore {
		undo()
	}
	in.restore = in.restore[:0]
	specs := in.take(func(s Spec) bool {
		return s.Iteration == it && s.Op == op && s.Kind == Computation
	})
	for _, s := range specs {
		r, ok := pickRegion(regs, UpdatePart, 0)
		if !ok {
			continue
		}
		ev, _ := in.corruptRegion(s, r)
		in.events = append(in.events, ev)
	}
}

// OnTransfer fires a communication fault on a broadcast leg: it is called
// by the PCIe transfer hook with the received payload and the destination
// GPU id, within the context of iteration it following operation op.
func (in *Injector) OnTransfer(it int, op Op, destGPU int, payload *matrix.Dense, row0, col0 int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	specs := in.take(func(s Spec) bool {
		target := s.GPUTarget
		if target < 0 {
			target = 0
		}
		return s.Iteration == it && s.Kind == Communication && s.Op == op && target == destGPU
	})
	for _, s := range specs {
		ev, _ := in.corruptRegion(s, Region{Part: UpdatePart, M: payload, Row0: row0, Col0: col0})
		in.events = append(in.events, ev)
	}
}
