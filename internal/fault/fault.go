// Package fault implements the paper's fault model (§V) and source-level
// injection methodology (§X.A): computation errors, off-chip (DRAM) memory
// errors, on-chip memory errors, and PCIe communication errors, injected
// as bit flips at precisely the timing windows the paper prescribes —
// after an operation's output is produced (computation), before an
// operation consumes its inputs (off-chip memory), before an operation
// with restoration afterwards (on-chip memory: the cached copy was wrong,
// the memory cell is clean), and on a transfer's received payload
// (communication).
package fault

import (
	"fmt"
	"math"

	"ftla/internal/matrix"
)

// Kind is the fault type of §V.
type Kind int

// Fault kinds.
const (
	// Computation: a logic fault flips a bit of one freshly computed
	// output element.
	Computation Kind = iota
	// OffChipMemory: a multi-bit DRAM fault corrupts a stored element; the
	// corruption is visible in memory.
	OffChipMemory
	// OnChipMemory: a cache/register/shared-memory fault corrupts the
	// value an operation consumes, but the backing memory cell stays
	// clean (no write-back), so the initial corruption is unobservable.
	OnChipMemory
	// Communication: a PCIe fault corrupts an element of a transferred
	// panel on the receiver side.
	Communication
)

func (k Kind) String() string {
	switch k {
	case Computation:
		return "computation"
	case OffChipMemory:
		return "off-chip-mem"
	case OnChipMemory:
		return "on-chip-mem"
	default:
		return "communication"
	}
}

// Op identifies the decomposition step a fault targets.
type Op int

// Decomposition operations.
const (
	PD        Op = iota // panel decomposition (CPU)
	PU                  // panel update (GPU)
	TMU                 // trailing matrix update (GPU)
	CTF                 // QR triangular factor computation
	Broadcast           // PCIe panel broadcast
)

func (o Op) String() string {
	switch o {
	case PD:
		return "PD"
	case PU:
		return "PU"
	case TMU:
		return "TMU"
	case CTF:
		return "CTF"
	default:
		return "Broadcast"
	}
}

// Part distinguishes the reference part (read-only inputs) from the update
// part (the sub-matrix being overwritten) of an operation (§III.A).
type Part int

// Operation parts.
const (
	ReferencePart Part = iota
	UpdatePart
)

func (p Part) String() string {
	if p == ReferencePart {
		return "ref"
	}
	return "update"
}

// Spec schedules one fault.
type Spec struct {
	Kind Kind
	Op   Op
	Part Part
	// Iteration is the 0-based factorization iteration to strike.
	Iteration int
	// Bits is the number of bits to flip: 1 simulates a computation logic
	// fault; >= 2 simulates the multi-bit memory/PCIe upsets that ECC
	// cannot correct.
	Bits int
	// Row, Col select the element within the targeted region; -1 picks a
	// pseudo-random element.
	Row, Col int
	// RefIndex selects among multiple regions with the same Part (e.g.
	// TMU's two reference panels: 0 = column panel, 1 = row panel).
	RefIndex int
	// GPUTarget selects which broadcast leg a Communication fault hits
	// (destination GPU id); -1 picks leg 0.
	GPUTarget int
}

// Describe returns a compact single-line description of the scheduled
// fault — kind, target operation/part, iteration, element addressing, and
// flip width — the form chaos-campaign logs carry so a failure is
// diagnosable without re-running the injection:
//
//	off-chip-mem@PD/ref it=0 elem=(1,0) bits=2
//	communication@PU/update it=3 elem=(rand,rand) bits=2 gpu=1
func (s Spec) Describe() string {
	elem := func(v int) string {
		if v < 0 {
			return "rand"
		}
		return fmt.Sprintf("%d", v)
	}
	d := fmt.Sprintf("%s@%s/%s it=%d elem=(%s,%s) bits=%d",
		s.Kind, s.Op, s.Part, s.Iteration, elem(s.Row), elem(s.Col), s.Bits)
	if s.Kind == Communication {
		target := s.GPUTarget
		if target < 0 {
			target = 0
		}
		d += fmt.Sprintf(" gpu=%d", target)
	}
	return d
}

// String is Describe, so %v formatting of a Spec is log-ready.
func (s Spec) String() string { return s.Describe() }

// Event records one fault that was actually injected.
type Event struct {
	Spec     Spec
	GlobalI  int
	GlobalJ  int
	Old, New float64
}

func (e Event) String() string {
	return fmt.Sprintf("%s@%s/%s it=%d elem=(%d,%d) %.6g->%.6g",
		e.Spec.Kind, e.Spec.Op, e.Spec.Part, e.Spec.Iteration, e.GlobalI, e.GlobalJ, e.Old, e.New)
}

// FlipBits XORs the given bit positions (0 = mantissa LSB, 62 = top
// exponent bit; bit 63, the sign, is allowed too) into v's IEEE-754
// representation.
func FlipBits(v float64, bits ...int) float64 {
	u := math.Float64bits(v)
	for _, b := range bits {
		u ^= 1 << uint(b)
	}
	return math.Float64frombits(u)
}

// Corrupt produces a corrupted version of v by flipping nbits significant
// bits, guaranteeing the alteration is finite and distinguishable from
// round-off (the paper's stated injection policy). For values too small
// for any exponent/mantissa flip to clear the detection threshold, it
// flips the corresponding bits of a unit-magnitude pattern instead.
func Corrupt(v float64, nbits int, rng *matrix.RNG) float64 {
	if nbits < 1 {
		nbits = 1
	}
	// Candidate positions: the top two mantissa bits and low exponent bits
	// give large relative changes without reaching Inf/NaN for the
	// magnitudes (O(1)..O(n)) that appear in our matrices.
	candidates := []int{51, 50, 52, 53}
	bits := make([]int, 0, nbits)
	start := rng.Intn(len(candidates))
	for i := 0; i < nbits; i++ {
		bits = append(bits, candidates[(start+i)%len(candidates)])
	}
	c := FlipBits(v, bits...)
	if !isSignificant(v, c) {
		// Small or zero values: flipping their bits changes almost nothing
		// in absolute terms; bias to a detectable magnitude, as the paper
		// does by always choosing "significant enough" bits.
		delta := 2 + rng.Float64()
		if c < v || (c == v && rng.Intn(2) == 0) {
			delta = -delta
		}
		c = v + delta
	}
	if math.IsInf(c, 0) || math.IsNaN(c) {
		c = v + 1e3
	}
	return c
}

// isSignificant requires the corruption to be well above every verification
// tolerance used by internal/core, so an injected fault is never mistaken
// for round-off.
func isSignificant(v, c float64) bool {
	return math.Abs(c-v) > 1
}
