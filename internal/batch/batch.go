// Package batch provides the strided-slab batch types behind the batched
// decomposition drivers (internal/core's CholeskyBatch/LUBatch/QRBatch and
// the ftla public Batch API): many small same-shape matrices packed into
// one contiguous slab, with per-item checksum strips so the whole batch can
// be integrity-checked in a single encode/verify pass.
//
// The slab layout stacks count n×n items vertically into one (count·n)×n
// row-major matrix, so item i is the contiguous row block [i·n, (i+1)·n)
// and a per-item view is a zero-copy sub-matrix. Because n is a multiple of
// the ABFT block size nb, the slab's column-checksum strips (2 rows per
// nb-row strip, as everywhere in this repository) align exactly with item
// boundaries: item i owns checksum rows [i·2·(n/nb), (i+1)·2·(n/nb)). One
// EncodeCol call over the slab therefore encodes every item's strips at
// once, and one VerifyCol call verifies them — the "issued once for the
// entire batch" property the batched drivers build on.
package batch

import (
	"fmt"

	"ftla/internal/checksum"
	"ftla/internal/hetsim"
	"ftla/internal/matrix"
)

// Batch is a strided slab of count n×n matrices plus per-item column
// checksum strips. Construct with New or FromMatrices; the strips are
// always kept encoded (with the optimized kernel, so a re-encode of
// untouched data reproduces them bit-for-bit and Verify can demand exact
// agreement).
type Batch struct {
	count, n, nb int

	// Data is the strided slab: item i occupies rows [i·n, (i+1)·n).
	Data *matrix.Dense
	// Chk holds the per-item column-checksum strips of the slab: item i
	// occupies rows [i·2·(n/nb), (i+1)·2·(n/nb)).
	Chk *matrix.Dense
}

// New allocates a zeroed batch of count n×n items with block size nb and
// encodes its (zero) checksum strips.
func New(count, n, nb int) (*Batch, error) {
	if count < 1 {
		return nil, fmt.Errorf("batch: count must be >= 1, got %d", count)
	}
	if n <= 0 || nb <= 0 || n%nb != 0 {
		return nil, fmt.Errorf("batch: order %d must be a positive multiple of block size %d", n, nb)
	}
	b := &Batch{
		count: count, n: n, nb: nb,
		Data: matrix.NewDense(count*n, n),
		Chk:  matrix.NewDense(2*count*(n/nb), n),
	}
	b.Encode(1)
	return b, nil
}

// FromMatrices packs the given square matrices — all of order n, a multiple
// of nb — into a new slab (copying the inputs) and encodes the per-item
// checksum strips in one pass.
func FromMatrices(ms []*matrix.Dense, nb int) (*Batch, error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("batch: no matrices")
	}
	n := ms[0].Rows
	for i, m := range ms {
		if m == nil {
			return nil, fmt.Errorf("batch: item %d is nil", i)
		}
		if m.Rows != m.Cols {
			return nil, fmt.Errorf("batch: item %d is %dx%d, want square", i, m.Rows, m.Cols)
		}
		if m.Rows != n {
			return nil, fmt.Errorf("batch: item %d has order %d, want %d (all items must share one shape)", i, m.Rows, n)
		}
	}
	if n <= 0 || nb <= 0 || n%nb != 0 {
		return nil, fmt.Errorf("batch: order %d must be a positive multiple of block size %d", n, nb)
	}
	b := &Batch{
		count: len(ms), n: n, nb: nb,
		Data: matrix.NewDense(len(ms)*n, n),
		Chk:  matrix.NewDense(2*len(ms)*(n/nb), n),
	}
	for i, m := range ms {
		b.Item(i).CopyFrom(m)
	}
	b.Encode(1)
	return b, nil
}

// Count returns the number of items in the batch.
func (b *Batch) Count() int { return b.count }

// N returns the per-item matrix order.
func (b *Batch) N() int { return b.n }

// NB returns the ABFT block size the strips are encoded with.
func (b *Batch) NB() int { return b.nb }

// Item returns a zero-copy view of item i's n×n matrix inside the slab.
func (b *Batch) Item(i int) *matrix.Dense {
	return b.Data.View(i*b.n, 0, b.n, b.n)
}

// ItemChk returns a zero-copy view of item i's column-checksum strips.
func (b *Batch) ItemChk(i int) *matrix.Dense {
	s := 2 * (b.n / b.nb)
	return b.Chk.View(i*s, 0, s, b.n)
}

// Encode (re)computes every item's checksum strips in one slab-wide pass
// with the optimized kernel. Always the optimized kernel, regardless of the
// run configuration: the strips are queue-integrity metadata, not the run's
// maintained checksums, and pinning the kernel makes re-encoding untouched
// data bit-identical so Verify needs no tolerance.
func (b *Batch) Encode(workers int) {
	checksum.EncodeCol(checksum.OptKernel, workers, b.Data, b.nb, b.Chk)
}

// Verify re-encodes the slab and returns the indices of items whose stored
// strips disagree — host memory corrupted between Encode (submission) and
// now, e.g. while the item sat in a serving queue. The comparison is exact
// (zero tolerance): the strips were encoded from these very bits with the
// same deterministic kernel, so any deviation is corruption, not round-off.
func (b *Batch) Verify(workers int) []int {
	ms := checksum.VerifyCol(workers, b.Data, b.nb, b.Chk, 0)
	if len(ms) == 0 {
		return nil
	}
	per := checksum.PartitionColMismatches(ms, b.n/b.nb, b.count)
	var bad []int
	for i, m := range per {
		if len(m) > 0 {
			bad = append(bad, i)
		}
	}
	return bad
}

// Key identifies jobs that may share one coalesced batched dispatch: two
// jobs coalesce only when every field matches, because one batched ladder
// runs a single (shape, protection, scheme, kernel, schedule, platform)
// configuration across the whole slab. The fields deliberately use plain
// integers rather than the core enum types so the package stays importable
// from both sides of the core/service boundary.
type Key struct {
	// Decomp is the decomposition wire name: "cholesky", "lu", or "qr".
	Decomp string
	// N and NB are the per-item order and ABFT block size.
	N, NB int
	// Mode, Scheme, and Kernel are the protection configuration
	// (core.Mode/core.Scheme/checksum.Kernel values as ints).
	Mode, Scheme, Kernel int
	// Lookahead and PeriodicTrailingCheck are the schedule knobs that
	// shape the shared ladder.
	Lookahead, PeriodicTrailingCheck int
	// Redundancy is the erasure-code parity count on a multi-node
	// platform (0 on flat systems): it shapes the shared cluster layout,
	// so jobs asking for different parity depths must not coalesce.
	Redundancy int
	// Sys is the simulated platform the batch runs on (a comparable
	// value, so Key is usable as a map key).
	Sys hetsim.Config
}
