package matrix

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4)
	if m.Rows != 3 || m.Cols != 4 || m.Stride != 4 {
		t.Fatalf("bad shape: %+v", m)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) not zero", i, j)
			}
		}
	}
}

func TestNewDenseNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative dimension")
		}
	}()
	NewDense(-1, 2)
}

func TestSetAtRoundTrip(t *testing.T) {
	m := NewDense(4, 5)
	m.Set(2, 3, 7.5)
	if got := m.At(2, 3); got != 7.5 {
		t.Fatalf("At(2,3) = %v, want 7.5", got)
	}
	if m.Data[2*5+3] != 7.5 {
		t.Fatal("row-major layout violated")
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := NewDense(2, 2)
	for _, c := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("At(%d,%d) did not panic", c[0], c[1])
				}
			}()
			m.At(c[0], c[1])
		}()
	}
}

func TestViewAliasesParent(t *testing.T) {
	m := NewDense(6, 6)
	v := m.View(2, 3, 3, 2)
	v.Set(0, 0, 42)
	if m.At(2, 3) != 42 {
		t.Fatal("view write not visible in parent")
	}
	m.Set(4, 4, 9)
	if v.At(2, 1) != 9 {
		t.Fatal("parent write not visible in view")
	}
	if v.Stride != m.Stride {
		t.Fatal("view stride must match parent stride")
	}
}

func TestViewOfView(t *testing.T) {
	m := NewDense(8, 8)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			m.Set(i, j, float64(10*i+j))
		}
	}
	v := m.View(2, 2, 6, 6).View(1, 1, 2, 2)
	if v.At(0, 0) != 33 || v.At(1, 1) != 44 {
		t.Fatalf("nested view wrong: %v %v", v.At(0, 0), v.At(1, 1))
	}
}

func TestEmptyView(t *testing.T) {
	m := NewDense(4, 4)
	v := m.View(4, 4, 0, 0)
	if v.Rows != 0 || v.Cols != 0 {
		t.Fatal("empty view should have zero dims")
	}
	v.Zero() // must not panic
}

func TestCloneIndependent(t *testing.T) {
	m := NewDense(3, 3)
	m.Set(1, 1, 5)
	c := m.Clone()
	c.Set(1, 1, 6)
	if m.At(1, 1) != 5 {
		t.Fatal("clone shares storage with original")
	}
}

func TestCloneOfViewTightStride(t *testing.T) {
	m := NewDense(5, 5)
	m.Set(1, 2, 3)
	c := m.View(1, 1, 3, 3).Clone()
	if c.Stride != 3 {
		t.Fatalf("clone stride = %d, want 3", c.Stride)
	}
	if c.At(0, 1) != 3 {
		t.Fatal("clone content wrong")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows != 3 || mt.Cols != 2 {
		t.Fatalf("transpose shape %dx%d", mt.Rows, mt.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		m := Random(1+int(seed%7), 1+int(seed%5), rng)
		return m.T().T().Equal(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEye(t *testing.T) {
	m := NewDense(3, 5)
	m.Fill(7)
	m.Eye()
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("Eye wrong at (%d,%d)", i, j)
			}
		}
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{10, 20}, {30, 40}})
	a.Add(b)
	if a.At(1, 1) != 44 {
		t.Fatalf("Add wrong: %v", a)
	}
	a.Sub(b)
	if a.At(0, 0) != 1 {
		t.Fatalf("Sub wrong: %v", a)
	}
	a.Scale(3)
	if a.At(1, 0) != 9 {
		t.Fatalf("Scale wrong: %v", a)
	}
}

func TestSwapRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	m.SwapRows(0, 2)
	if m.At(0, 0) != 5 || m.At(2, 1) != 2 {
		t.Fatalf("SwapRows wrong: %v", m)
	}
	m.SwapRows(1, 1) // no-op must be safe
	if m.At(1, 0) != 3 {
		t.Fatal("self-swap changed data")
	}
}

func TestColSetCol(t *testing.T) {
	m := NewDense(3, 3)
	m.SetCol(1, []float64{7, 8, 9})
	got := m.Col(1)
	if got[0] != 7 || got[1] != 8 || got[2] != 9 {
		t.Fatalf("Col round trip wrong: %v", got)
	}
	// Col returns a copy.
	got[0] = 99
	if m.At(0, 1) != 7 {
		t.Fatal("Col must copy")
	}
}

func TestEqualWithinAndMaxAbsDiff(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := a.Clone()
	b.Set(1, 0, 3.25)
	if a.EqualWithin(b, 0.1) {
		t.Fatal("EqualWithin too loose")
	}
	if !a.EqualWithin(b, 0.3) {
		t.Fatal("EqualWithin too strict")
	}
	d, i, j := a.MaxAbsDiff(b)
	if d != 0.25 || i != 1 || j != 0 {
		t.Fatalf("MaxAbsDiff = %v at (%d,%d)", d, i, j)
	}
}

func TestEqualHandlesNaN(t *testing.T) {
	a := NewDense(1, 1)
	b := NewDense(1, 1)
	a.Set(0, 0, math.NaN())
	b.Set(0, 0, math.NaN())
	if !a.Equal(b) {
		t.Fatal("NaN == NaN under Equal by design")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestNorms(t *testing.T) {
	m := FromRows([][]float64{{1, -2}, {-3, 4}})
	if got := Norm1(m); got != 6 {
		t.Fatalf("Norm1 = %v, want 6", got)
	}
	if got := NormInf(m); got != 7 {
		t.Fatalf("NormInf = %v, want 7", got)
	}
	if got := NormMax(m); got != 4 {
		t.Fatalf("NormMax = %v, want 4", got)
	}
	want := math.Sqrt(1 + 4 + 9 + 16)
	if got := NormFro(m); math.Abs(got-want) > 1e-14 {
		t.Fatalf("NormFro = %v, want %v", got, want)
	}
}

func TestNormFroOverflowSafe(t *testing.T) {
	m := NewDense(1, 2)
	m.Set(0, 0, 1e300)
	m.Set(0, 1, 1e300)
	got := NormFro(m)
	want := 1e300 * math.Sqrt2
	if math.IsInf(got, 0) || math.Abs(got-want)/want > 1e-14 {
		t.Fatalf("NormFro overflowed: %v", got)
	}
}

func TestVecNorm2(t *testing.T) {
	if got := VecNorm2([]float64{3, 4}); math.Abs(got-5) > 1e-15 {
		t.Fatalf("VecNorm2 = %v, want 5", got)
	}
	if got := VecNorm2(nil); got != 0 {
		t.Fatalf("VecNorm2(nil) = %v", got)
	}
}

func TestGammaMonotone(t *testing.T) {
	if Gamma(10) <= 0 || Gamma(100) <= Gamma(10) {
		t.Fatal("Gamma must be positive and increasing")
	}
	if Gamma(1000) > 1e-10 {
		t.Fatalf("Gamma(1000) unexpectedly large: %v", Gamma(1000))
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("RNG not deterministic")
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	rng := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := rng.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	rng := NewRNG(11)
	n := 50000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := rng.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal moments off: mean=%v var=%v", mean, variance)
	}
}

func TestRandomSPDIsSymmetric(t *testing.T) {
	rng := NewRNG(3)
	m := RandomSPD(20, rng)
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if m.At(i, j) != m.At(j, i) {
				t.Fatalf("not symmetric at (%d,%d)", i, j)
			}
		}
	}
	// Diagonal dominance-ish: diagonal should be positive and large.
	for i := 0; i < 20; i++ {
		if m.At(i, i) <= 0 {
			t.Fatal("SPD diagonal not positive")
		}
	}
}

func TestRandomDiagDominant(t *testing.T) {
	rng := NewRNG(5)
	m := RandomDiagDominant(30, rng)
	for i := 0; i < 30; i++ {
		row := m.Row(i)
		s := 0.0
		for j, v := range row {
			if j != i {
				s += math.Abs(v)
			}
		}
		if math.Abs(row[i]) <= s {
			t.Fatalf("row %d not diagonally dominant", i)
		}
	}
}

// Property: Norm1(Aᵀ) == NormInf(A).
func TestNormDualityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		m := Random(2+int(seed%9), 2+int(seed%6), rng)
		return math.Abs(Norm1(m.T())-NormInf(m)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Frobenius norm is invariant under transpose.
func TestFroTransposeInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		m := Random(1+int(seed%8), 1+int(seed%8), rng)
		return math.Abs(NormFro(m)-NormFro(m.T())) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResidualIdentityFactorizations(t *testing.T) {
	// A = I: L = I is an exact Cholesky factor.
	n := 6
	a := NewDense(n, n)
	a.Eye()
	l := NewDense(n, n)
	l.Eye()
	if r := CholeskyResidual(a, l); r > 1e-15 {
		t.Fatalf("identity Cholesky residual %v", r)
	}
	// LU of I with no pivoting is I.
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	lu := NewDense(n, n)
	lu.Eye()
	if r := LUResidual(a, lu, piv); r > 1e-15 {
		t.Fatalf("identity LU residual %v", r)
	}
	// QR of I: Q=I, R=I.
	if r := QRResidual(a, l, lu); r > 1e-15 {
		t.Fatalf("identity QR residual %v", r)
	}
	if r := OrthoResidual(l); r > 1e-15 {
		t.Fatalf("identity ortho residual %v", r)
	}
}

func TestResidualDetectsCorruption(t *testing.T) {
	n := 8
	a := NewDense(n, n)
	a.Eye()
	l := NewDense(n, n)
	l.Eye()
	l.Set(3, 3, 2) // wrong factor
	if r := CholeskyResidual(a, l); r < 0.1 {
		t.Fatalf("corrupted factor residual too small: %v", r)
	}
}
