package matrix

import "math"

// RNG is a small, deterministic, allocation-free pseudo-random generator
// (SplitMix64 core) so experiments are reproducible without math/rand's
// global state. The zero value is NOT usable; construct with NewRNG.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed + 0x9e3779b97f4a7c15}
}

// Uint64 advances the generator and returns 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal value via Box-Muller. It burns two
// uniforms per call for simplicity.
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Intn returns a uniform value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("matrix: Intn on non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Random fills and returns an r-by-c matrix with uniform entries in
// [-1, 1).
func Random(r, c int, rng *RNG) *Dense {
	m := NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = 2*rng.Float64() - 1
	}
	return m
}

// RandomSPD returns an n-by-n symmetric positive definite matrix built as
// B*Bᵀ + n*I, which is well conditioned enough for Cholesky on every size
// used in the experiments.
func RandomSPD(n int, rng *RNG) *Dense {
	b := Random(n, n, rng)
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := 0.0
			ri, rj := b.Row(i), b.Row(j)
			for k := 0; k < n; k++ {
				s += ri[k] * rj[k]
			}
			if i == j {
				s += float64(n)
			}
			m.Set(i, j, s)
			m.Set(j, i, s)
		}
	}
	return m
}

// RandomDiagDominant returns an n-by-n strictly diagonally dominant matrix,
// safe for LU factorization without pathological pivot growth (pivoting is
// still exercised because off-diagonal magnitudes vary).
func RandomDiagDominant(n int, rng *RNG) *Dense {
	m := Random(n, n, rng)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		s := 0.0
		for j, v := range row {
			if j != i {
				s += math.Abs(v)
			}
		}
		row[i] = s + 1 + rng.Float64()
	}
	return m
}
