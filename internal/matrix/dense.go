// Package matrix provides dense row-major matrices and the supporting
// utilities (views, norms, generators, residual checks) used by the BLAS,
// LAPACK, checksum, and fault-tolerance layers of this repository.
//
// A Dense value is a rectangular view onto a flat []float64 backing slice
// with an explicit row stride, so inexpensive sub-matrix views (panels,
// trailing matrices, matrix blocks) can alias one allocation. All
// higher-level algorithms in this module operate on such views.
package matrix

import (
	"fmt"
	"math"
)

// Dense is a dense matrix of float64 values in row-major order.
//
// Element (i, j) is stored at Data[i*Stride+j]. Rows <= 0 or Cols <= 0
// denote an empty matrix; operations on empty matrices are no-ops.
type Dense struct {
	Rows   int
	Cols   int
	Stride int
	Data   []float64
}

// NewDense allocates a zeroed r-by-c matrix with a tight stride.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Stride: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from a slice of equal-length rows. It copies the
// input.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	r, c := len(rows), len(rows[0])
	m := NewDense(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("matrix: ragged rows")
		}
		copy(m.Row(i), row)
	}
	return m
}

// At returns element (i, j). It bounds-checks in terms of the view.
func (m *Dense) At(i, j int) float64 {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("matrix: At(%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
	return m.Data[i*m.Stride+j]
}

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("matrix: Set(%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
	m.Data[i*m.Stride+j] = v
}

// Row returns row i as a slice aliasing the backing store.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("matrix: Row(%d) out of range %d", i, m.Rows))
	}
	if m.Cols == 0 {
		return nil
	}
	return m.Data[i*m.Stride : i*m.Stride+m.Cols]
}

// View returns an r-by-c sub-matrix view rooted at (i, j) that aliases m's
// backing store. Mutations through the view are visible in m.
func (m *Dense) View(i, j, r, c int) *Dense {
	if r == 0 || c == 0 {
		return &Dense{Rows: r, Cols: c, Stride: m.Stride}
	}
	if i < 0 || j < 0 || r < 0 || c < 0 || i+r > m.Rows || j+c > m.Cols {
		panic(fmt.Sprintf("matrix: View(%d,%d,%d,%d) out of range %dx%d", i, j, r, c, m.Rows, m.Cols))
	}
	off := i*m.Stride + j
	return &Dense{
		Rows:   r,
		Cols:   c,
		Stride: m.Stride,
		Data:   m.Data[off : off+(r-1)*m.Stride+c],
	}
}

// Clone returns a deep copy of m with a tight stride.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	out.CopyFrom(m)
	return out
}

// CopyFrom copies src into m. Dimensions must match exactly.
func (m *Dense) CopyFrom(src *Dense) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("matrix: copy dimension mismatch %dx%d <- %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Row(i), src.Row(i))
	}
}

// Zero sets every element of m (through the view) to zero.
func (m *Dense) Zero() {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
}

// Fill sets every element of m to v.
func (m *Dense) Fill(v float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = v
		}
	}
}

// Eye overwrites m with the identity pattern (ones on the main diagonal).
func (m *Dense) Eye() {
	m.Zero()
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	for i := 0; i < n; i++ {
		m.Data[i*m.Stride+i] = 1
	}
}

// T returns a newly allocated transpose of m.
func (m *Dense) T() *Dense {
	out := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*out.Stride+i] = v
		}
	}
	return out
}

// Equal reports whether m and b have identical shape and elements.
func (m *Dense) Equal(b *Dense) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		ra, rb := m.Row(i), b.Row(i)
		for j := range ra {
			if ra[j] != rb[j] && !(math.IsNaN(ra[j]) && math.IsNaN(rb[j])) {
				return false
			}
		}
	}
	return true
}

// EqualWithin reports whether m and b agree element-wise within tol.
func (m *Dense) EqualWithin(b *Dense, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		ra, rb := m.Row(i), b.Row(i)
		for j := range ra {
			if math.Abs(ra[j]-rb[j]) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute element-wise difference between m
// and b, along with its location.
func (m *Dense) MaxAbsDiff(b *Dense) (d float64, row, col int) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("matrix: MaxAbsDiff dimension mismatch")
	}
	row, col = -1, -1
	for i := 0; i < m.Rows; i++ {
		ra, rb := m.Row(i), b.Row(i)
		for j := range ra {
			if diff := math.Abs(ra[j] - rb[j]); diff > d {
				d, row, col = diff, i, j
			}
		}
	}
	return d, row, col
}

// String renders small matrices for debugging; large matrices are
// abbreviated to their shape.
func (m *Dense) String() string {
	if m.Rows*m.Cols > 400 {
		return fmt.Sprintf("Dense(%dx%d)", m.Rows, m.Cols)
	}
	s := ""
	for i := 0; i < m.Rows; i++ {
		s += "["
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%10.4g", m.At(i, j))
		}
		s += "]\n"
	}
	return s
}

// Scale multiplies every element of m by alpha.
func (m *Dense) Scale(alpha float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] *= alpha
		}
	}
}

// Add accumulates b into m element-wise (m += b).
func (m *Dense) Add(b *Dense) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("matrix: Add dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		ra, rb := m.Row(i), b.Row(i)
		for j := range ra {
			ra[j] += rb[j]
		}
	}
}

// Sub subtracts b from m element-wise (m -= b).
func (m *Dense) Sub(b *Dense) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("matrix: Sub dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		ra, rb := m.Row(i), b.Row(i)
		for j := range ra {
			ra[j] -= rb[j]
		}
	}
}

// SwapRows exchanges rows i and j in place.
func (m *Dense) SwapRows(i, j int) {
	if i == j {
		return
	}
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("matrix: Col(%d) out of range %d", j, m.Cols))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Stride+j]
	}
	return out
}

// SetCol overwrites column j with v.
func (m *Dense) SetCol(j int, v []float64) {
	if len(v) != m.Rows {
		panic("matrix: SetCol length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Stride+j] = v[i]
	}
}
