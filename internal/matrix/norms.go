package matrix

import "math"

// Norm1 returns the 1-norm of m (maximum absolute column sum).
func Norm1(m *Dense) float64 {
	if m.Rows == 0 || m.Cols == 0 {
		return 0
	}
	sums := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			sums[j] += math.Abs(v)
		}
	}
	max := 0.0
	for _, s := range sums {
		if s > max {
			max = s
		}
	}
	return max
}

// NormInf returns the infinity norm of m (maximum absolute row sum).
func NormInf(m *Dense) float64 {
	max := 0.0
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for _, v := range row {
			s += math.Abs(v)
		}
		if s > max {
			max = s
		}
	}
	return max
}

// NormFro returns the Frobenius norm of m, with scaling to avoid overflow.
func NormFro(m *Dense) float64 {
	scale, ssq := 0.0, 1.0
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for _, v := range row {
			if v == 0 {
				continue
			}
			a := math.Abs(v)
			if scale < a {
				ssq = 1 + ssq*(scale/a)*(scale/a)
				scale = a
			} else {
				ssq += (a / scale) * (a / scale)
			}
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormMax returns the largest absolute element of m.
func NormMax(m *Dense) float64 {
	max := 0.0
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for _, v := range row {
			if a := math.Abs(v); a > max {
				max = a
			}
		}
	}
	return max
}

// VecNorm2 returns the Euclidean norm of v with overflow-safe scaling.
func VecNorm2(v []float64) float64 {
	scale, ssq := 0.0, 1.0
	for _, x := range v {
		if x == 0 {
			continue
		}
		a := math.Abs(x)
		if scale < a {
			ssq = 1 + ssq*(scale/a)*(scale/a)
			scale = a
		} else {
			ssq += (a / scale) * (a / scale)
		}
	}
	return scale * math.Sqrt(ssq)
}

// Gamma returns the standard rounding-error growth factor
// gamma_n = n*u / (1 - n*u) used in the checksum round-off bounds, where u
// is the IEEE-754 double-precision unit round-off.
func Gamma(n int) float64 {
	const u = 0x1p-53
	nu := float64(n) * u
	return nu / (1 - nu)
}
