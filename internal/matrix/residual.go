package matrix

// This file holds the residual checks used by the test suite and the fault
// injection campaign to decide whether a (possibly corrupted-and-recovered)
// factorization is numerically correct. All residuals are relative:
// ‖residual‖ / (‖A‖ * n * u-ish scale), so a fixed threshold such as 1e-10
// cleanly separates correct results from silently corrupted ones.

// mulNN returns a*b for plain dense operands. It is a straightforward
// triple loop: residual checks are test-path code, the fast path lives in
// internal/blas.
func mulNN(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic("matrix: mulNN inner dimension mismatch")
	}
	out := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		ra := a.Row(i)
		ro := out.Row(i)
		for k, av := range ra {
			if av == 0 {
				continue
			}
			rb := b.Row(k)
			for j, bv := range rb {
				ro[j] += av * bv
			}
		}
	}
	return out
}

// CholeskyResidual returns ‖A − L·Lᵀ‖_F / (‖A‖_F) for a lower-triangular
// factor L. Entries of L above the diagonal are ignored.
func CholeskyResidual(a, l *Dense) float64 {
	n := a.Rows
	lt := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i && j < l.Cols; j++ {
			lt.Set(i, j, l.At(i, j))
		}
	}
	prod := mulNN(lt, lt.T())
	prod.Sub(a)
	na := NormFro(a)
	if na == 0 {
		return NormFro(prod)
	}
	return NormFro(prod) / na
}

// LUResidual returns ‖P·A − L·U‖_F / ‖A‖_F where piv is the sequence of
// row interchanges as produced by GETF2/GETRF (piv[k] = row swapped with
// row k at step k), and lu packs the unit-lower and upper factors.
func LUResidual(a *Dense, lu *Dense, piv []int) float64 {
	n := a.Rows
	// Apply pivots to a copy of A.
	pa := a.Clone()
	for k, p := range piv {
		if p != k {
			pa.SwapRows(k, p)
		}
	}
	l := NewDense(n, n)
	u := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch {
			case i > j:
				l.Set(i, j, lu.At(i, j))
			case i == j:
				l.Set(i, j, 1)
				u.Set(i, j, lu.At(i, j))
			default:
				u.Set(i, j, lu.At(i, j))
			}
		}
	}
	prod := mulNN(l, u)
	prod.Sub(pa)
	na := NormFro(a)
	if na == 0 {
		return NormFro(prod)
	}
	return NormFro(prod) / na
}

// QRResidual returns ‖A − Q·R‖_F / ‖A‖_F given explicit Q and R factors.
func QRResidual(a, q, r *Dense) float64 {
	prod := mulNN(q, r)
	prod.Sub(a)
	na := NormFro(a)
	if na == 0 {
		return NormFro(prod)
	}
	return NormFro(prod) / na
}

// OrthoResidual returns ‖QᵀQ − I‖_F, the orthogonality defect of Q. The
// paper uses this check to validate the QR triangular factor T (§IV.B).
func OrthoResidual(q *Dense) float64 {
	qtq := mulNN(q.T(), q)
	n := qtq.Rows
	for i := 0; i < n; i++ {
		qtq.Set(i, i, qtq.At(i, i)-1)
	}
	return NormFro(qtq)
}
