// Package gf implements arithmetic over the finite field GF(2^8) and the
// small dense-matrix helpers the cross-node erasure code of internal/core
// needs: log/exp multiplication tables, per-coefficient 256-entry lookup
// tables applied bytewise to 64-bit words, a normalized Cauchy generator
// matrix, and a Gauss-Jordan inverse for the decode submatrices.
//
// The package is deliberately dependency-free (stdlib only, and nothing
// beyond fmt for panics) — scripts/check.sh lints it against importing any
// ftla package — because it sits below the simulator: the coded-redundancy
// layer runs its kernels *inside* simulated devices, and a field-arithmetic
// package that reached back into the simulator would invert the layering.
//
// Why GF(2^8) for float64 data: addition in any GF(2^m) is XOR, so a code
// word computed over the IEEE-754 *bit patterns* of the data (bytewise,
// eight field symbols per float64) is closed under reconstruction with zero
// rounding error — decode returns the exact bits that were encoded. That is
// the property the cluster layer's bit-identity pins rest on, and the reason
// parity is not a floating-point checksum (cf. the ABFT checksums of
// internal/checksum, which repair *values* and tolerate rounding).
package gf

import "fmt"

// poly is the reduction polynomial x^8+x^4+x^3+x^2+1 (0x11d), the standard
// Reed-Solomon choice; 2 generates the multiplicative group under it.
const poly = 0x11d

// expT[i] = 2^i for i in [0, 510) (doubled so Mul can skip a mod 255);
// logT[a] = log2(a) for a != 0.
var expT [510]byte
var logT [256]byte

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expT[i] = byte(x)
		expT[i+255] = byte(x)
		logT[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= poly
		}
	}
}

// Add returns a+b = a-b = a XOR b (characteristic 2).
func Add(a, b byte) byte { return a ^ b }

// Mul returns the product a·b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expT[int(logT[a])+int(logT[b])]
}

// Inv returns the multiplicative inverse of a; Inv(0) panics (zero has
// none, and asking for it means a caller's matrix was singular in a way
// Invert should have reported).
func Inv(a byte) byte {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return expT[255-int(logT[a])]
}

// Div returns a/b; Div(_, 0) panics.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expT[int(logT[a])+255-int(logT[b])]
}

// Table is the full multiplication table of one coefficient c:
// Table[x] = c·x. The erasure-code kernels build one per generator
// coefficient and stream 64-bit words through it bytewise.
type Table [256]byte

// MulTable returns the multiplication table of c.
func MulTable(c byte) *Table {
	var t Table
	for x := 0; x < 256; x++ {
		t[x] = Mul(c, byte(x))
	}
	return &t
}

// MulWord applies the table to each of the eight bytes of w — the bytewise
// action of the coefficient on one float64 bit pattern. For c = 1 the table
// is the identity and MulWord returns w unchanged, which is how the r = 1
// code degenerates to plain XOR.
func (t *Table) MulWord(w uint64) uint64 {
	return uint64(t[byte(w)]) |
		uint64(t[byte(w>>8)])<<8 |
		uint64(t[byte(w>>16)])<<16 |
		uint64(t[byte(w>>24)])<<24 |
		uint64(t[byte(w>>32)])<<32 |
		uint64(t[byte(w>>40)])<<40 |
		uint64(t[byte(w>>48)])<<48 |
		uint64(t[byte(w>>56)])<<56
}

// Cauchy returns the r×k generator matrix of the [k+r, k] erasure code:
// parity j of data words D_0..D_{k-1} is P_j = Σ_i Cauchy(r,k)[j][i]·D_i.
//
// The matrix is the Cauchy matrix C[j][i] = 1/(x_j ⊕ y_i) with x_j = k+j
// and y_i = i (distinct by construction, so no denominator is zero),
// column-scaled so that row 0 is all ones. Two properties make it the right
// generator here:
//
//   - Every square submatrix of a Cauchy matrix is nonsingular, and nonzero
//     column scaling preserves that, so ANY e ≤ min(r, k) erased data words
//     are recoverable from ANY e surviving parities — unlike a generalized
//     Vandermonde matrix, whose non-consecutive-row submatrices can be
//     singular over a finite field. Parities themselves can be lost (they
//     live on nodes too), so the decoder cannot choose which rows survive.
//   - Row 0 all ones means parity 0 is the plain XOR of the data words:
//     the r = 1 code is bit-identical in effect to the previous hard-wired
//     XOR scheme, which keeps the earlier node-loss pins green.
//
// Requires 0 < r, 0 < k, r+k <= 256 (the field has 256 elements).
func Cauchy(r, k int) [][]byte {
	if r <= 0 || k <= 0 || r+k > 256 {
		panic(fmt.Sprintf("gf: Cauchy(%d, %d) outside 0 < r, 0 < k, r+k <= 256", r, k))
	}
	m := make([][]byte, r)
	for j := range m {
		m[j] = make([]byte, k)
		for i := 0; i < k; i++ {
			m[j][i] = Inv(byte(k+j) ^ byte(i))
		}
	}
	for i := 0; i < k; i++ {
		s := Inv(m[0][i])
		for j := 0; j < r; j++ {
			m[j][i] = Mul(m[j][i], s)
		}
	}
	return m
}

// Invert returns the inverse of the square matrix m by Gauss-Jordan
// elimination with partial "pivoting" (any nonzero pivot works in a field),
// or ok = false when m is singular. m is not modified.
func Invert(m [][]byte) (inv [][]byte, ok bool) {
	e := len(m)
	a := make([][]byte, e)
	inv = make([][]byte, e)
	for i := range m {
		if len(m[i]) != e {
			panic(fmt.Sprintf("gf: Invert of non-square %dx%d matrix", e, len(m[i])))
		}
		a[i] = append([]byte(nil), m[i]...)
		inv[i] = make([]byte, e)
		inv[i][i] = 1
	}
	for col := 0; col < e; col++ {
		piv := -1
		for r := col; r < e; r++ {
			if a[r][col] != 0 {
				piv = r
				break
			}
		}
		if piv < 0 {
			return nil, false
		}
		a[col], a[piv] = a[piv], a[col]
		inv[col], inv[piv] = inv[piv], inv[col]
		s := Inv(a[col][col])
		for c := 0; c < e; c++ {
			a[col][c] = Mul(a[col][c], s)
			inv[col][c] = Mul(inv[col][c], s)
		}
		for r := 0; r < e; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col]
			for c := 0; c < e; c++ {
				a[r][c] ^= Mul(f, a[col][c])
				inv[r][c] ^= Mul(f, inv[col][c])
			}
		}
	}
	return inv, true
}
