package gf

import (
	"math"
	"testing"
)

// TestFieldAxioms exhaustively checks the multiplicative structure the
// decode paths rely on: associativity and distributivity over all triples
// would be 2^24 cases, so associativity/distributivity run over a stride
// sample while inverses and commutativity run exhaustively.
func TestFieldAxioms(t *testing.T) {
	for a := 1; a < 256; a++ {
		if got := Mul(byte(a), Inv(byte(a))); got != 1 {
			t.Fatalf("a·a⁻¹ = %d for a=%d, want 1", got, a)
		}
		if got := Div(byte(a), byte(a)); got != 1 {
			t.Fatalf("a/a = %d for a=%d", got, a)
		}
		for b := 0; b < 256; b++ {
			if Mul(byte(a), byte(b)) != Mul(byte(b), byte(a)) {
				t.Fatalf("Mul not commutative at (%d, %d)", a, b)
			}
		}
	}
	if Mul(0, 77) != 0 || Mul(77, 0) != 0 || Div(0, 5) != 0 {
		t.Fatal("zero annihilation broken")
	}
	for a := 1; a < 256; a += 7 {
		for b := 1; b < 256; b += 5 {
			for c := 1; c < 256; c += 11 {
				ab := Mul(byte(a), byte(b))
				if Mul(ab, byte(c)) != Mul(byte(a), Mul(byte(b), byte(c))) {
					t.Fatalf("Mul not associative at (%d, %d, %d)", a, b, c)
				}
				if Mul(byte(a), byte(b)^byte(c)) != Mul(byte(a), byte(b))^Mul(byte(a), byte(c)) {
					t.Fatalf("Mul not distributive at (%d, %d, %d)", a, b, c)
				}
			}
		}
	}
}

// TestMulTableWord: the per-coefficient table agrees with Mul on every
// byte, MulWord acts bytewise on 64-bit words, and the c=1 table is the
// identity (the XOR-degenerate property of the r=1 code).
func TestMulTableWord(t *testing.T) {
	for _, c := range []byte{0, 1, 2, 29, 142, 255} {
		tab := MulTable(c)
		for x := 0; x < 256; x++ {
			if tab[x] != Mul(c, byte(x)) {
				t.Fatalf("table[%d] != Mul(%d, %d)", x, c, x)
			}
		}
		w := math.Float64bits(-3.714285714e17)
		got := tab.MulWord(w)
		for sh := 0; sh < 64; sh += 8 {
			if byte(got>>sh) != Mul(c, byte(w>>sh)) {
				t.Fatalf("MulWord(c=%d) wrong at byte %d", c, sh/8)
			}
		}
	}
	if one := MulTable(1); one.MulWord(0xdeadbeefcafef00d) != 0xdeadbeefcafef00d {
		t.Fatal("c=1 table is not the identity")
	}
}

// TestCauchyShape: row 0 is all ones (parity 0 degenerates to XOR) and no
// entry of any generator is zero (a zero coefficient would silently drop a
// member from its parity).
func TestCauchyShape(t *testing.T) {
	for r := 1; r <= 4; r++ {
		for k := 1; k <= 8; k++ {
			m := Cauchy(r, k)
			for i := 0; i < k; i++ {
				if m[0][i] != 1 {
					t.Fatalf("Cauchy(%d,%d) row 0 col %d = %d, want 1", r, k, i, m[0][i])
				}
			}
			for j := 0; j < r; j++ {
				for i := 0; i < k; i++ {
					if m[j][i] == 0 {
						t.Fatalf("Cauchy(%d,%d)[%d][%d] = 0", r, k, j, i)
					}
				}
			}
		}
	}
}

// TestCauchySubmatricesInvertible is the MDS property the decoder needs:
// every square submatrix (any parity-row subset × any member-column subset)
// of the normalized Cauchy generator is invertible — exhaustive over the
// sizes the cluster layer actually uses (r ≤ 4, k ≤ 6).
func TestCauchySubmatricesInvertible(t *testing.T) {
	for r := 1; r <= 4; r++ {
		for k := 1; k <= 6; k++ {
			m := Cauchy(r, k)
			maxE := r
			if k < r {
				maxE = k
			}
			for e := 1; e <= maxE; e++ {
				forEachSubset(r, e, func(rows []int) {
					forEachSubset(k, e, func(cols []int) {
						sub := make([][]byte, e)
						for a := range rows {
							sub[a] = make([]byte, e)
							for b := range cols {
								sub[a][b] = m[rows[a]][cols[b]]
							}
						}
						inv, ok := Invert(sub)
						if !ok {
							t.Fatalf("Cauchy(%d,%d) submatrix rows=%v cols=%v singular", r, k, rows, cols)
						}
						assertIdentityProduct(t, sub, inv)
					})
				})
			}
		}
	}
}

// TestInvertSingular: a genuinely singular matrix is reported, not
// mis-decoded.
func TestInvertSingular(t *testing.T) {
	if _, ok := Invert([][]byte{{3, 5}, {3, 5}}); ok {
		t.Fatal("Invert accepted a rank-1 matrix")
	}
	if _, ok := Invert([][]byte{{0}}); ok {
		t.Fatal("Invert accepted the zero 1x1 matrix")
	}
}

// TestEncodeDecodeRoundTrip is an end-to-end code check on raw words: encode
// k data words into r parities with the Cauchy generator, erase e data
// words, decode from e surviving parities, and require exact recovery —
// over every erasure pattern and every surviving-parity choice.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	const r, k = 2, 3
	gen := Cauchy(r, k)
	data := []uint64{
		math.Float64bits(1.5), math.Float64bits(-2.25e-308), math.Float64bits(9.875e17),
	}
	parity := make([]uint64, r)
	for j := 0; j < r; j++ {
		for i := 0; i < k; i++ {
			parity[j] ^= MulTable(gen[j][i]).MulWord(data[i])
		}
	}
	forEachSubset(k, 2, func(lost []int) {
		forEachSubset(r, 2, func(rows []int) {
			// RHS_j = P_j ⊕ Σ_{surviving i} gen[j][i]·D_i.
			rhs := make([]uint64, 2)
			sub := make([][]byte, 2)
			for a, j := range rows {
				rhs[a] = parity[j]
				sub[a] = make([]byte, 2)
				for i := 0; i < k; i++ {
					if b := indexOf(lost, i); b >= 0 {
						sub[a][b] = gen[j][i]
					} else {
						rhs[a] ^= MulTable(gen[j][i]).MulWord(data[i])
					}
				}
			}
			inv, ok := Invert(sub)
			if !ok {
				t.Fatalf("decode submatrix singular for lost=%v rows=%v", lost, rows)
			}
			for b, l := range lost {
				var got uint64
				for a := range rows {
					got ^= MulTable(inv[b][a]).MulWord(rhs[a])
				}
				if got != data[l] {
					t.Fatalf("decoded word %d = %#x, want %#x (lost=%v rows=%v)", l, got, data[l], lost, rows)
				}
			}
		})
	})
}

// forEachSubset invokes fn with every size-e subset of [0, n), ascending.
func forEachSubset(n, e int, fn func([]int)) {
	idx := make([]int, e)
	var rec func(start, d int)
	rec = func(start, d int) {
		if d == e {
			fn(append([]int(nil), idx...))
			return
		}
		for i := start; i < n; i++ {
			idx[d] = i
			rec(i+1, d+1)
		}
	}
	rec(0, 0)
}

func indexOf(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}

func assertIdentityProduct(t *testing.T, a, inv [][]byte) {
	t.Helper()
	e := len(a)
	for i := 0; i < e; i++ {
		for j := 0; j < e; j++ {
			var s byte
			for l := 0; l < e; l++ {
				s ^= Mul(a[i][l], inv[l][j])
			}
			want := byte(0)
			if i == j {
				want = 1
			}
			if s != want {
				t.Fatalf("A·A⁻¹[%d][%d] = %d, want %d", i, j, s, want)
			}
		}
	}
}
