package checksum

import (
	"math"
	"testing"
	"testing/quick"

	"ftla/internal/blas"
	"ftla/internal/matrix"
)

// TestTMUBoundHoldsEmpirically verifies the paper's Eq. (1) on real
// arithmetic: maintain column checksums through C ← C − A·B via the
// checksum-algebra path (c(C) ← c(C) − c(A)·B), recompute them from the
// updated data, and check that the drift stays below the a-priori bound.
func TestTMUBoundHoldsEmpirically(t *testing.T) {
	f := func(seed uint64) bool {
		rng := matrix.NewRNG(seed)
		nb := 8
		m := 16 + int(seed%16)
		n := 16 + int(seed%8)
		k := 8 + int(seed%8)
		a := matrix.Random(m, k, rng)
		b := matrix.Random(k, n, rng)
		c := matrix.Random(m, n, rng)

		// Maintained checksums: encode C, then update through the algebra.
		cc := matrix.NewDense(ColDims(m, n, nb))
		EncodeCol(OptKernel, 1, c, nb, cc)
		ca := matrix.NewDense(ColDims(m, k, nb))
		EncodeCol(OptKernel, 1, a, nb, ca)
		blas.Gemm(false, false, -1, ca, b, 1, cc) // c(C) −= c(A)·B
		blas.Gemm(false, false, -1, a, b, 1, c)   // C −= A·B

		// Recompute and take the max drift.
		recal := matrix.NewDense(ColDims(m, n, nb))
		EncodeCol(OptKernel, 1, c, nb, recal)
		drift := 0.0
		for i := 0; i < cc.Rows; i++ {
			r1, r2 := cc.Row(i), recal.Row(i)
			for j := range r1 {
				if d := math.Abs(r1[j] - r2[j]); d > drift {
					drift = d
				}
			}
		}
		// The weighted (v₂) checksum line scales the bound by nb.
		bound := float64(nb+1) * TMUColBound(matrix.Norm1(a)+matrix.Norm1(c), matrix.Norm1(b)+1, k+nb)
		return drift <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestInjectedFaultExceedsBound confirms the separation property: an
// injected multi-bit corruption always lands far above the round-off
// bound, so thresholding at the bound never confuses the two.
func TestInjectedFaultExceedsBound(t *testing.T) {
	rng := matrix.NewRNG(4)
	nb := 8
	m, n, k := 24, 24, 16
	a := matrix.Random(m, k, rng)
	b := matrix.Random(k, n, rng)
	bound := float64(nb+1) * TMUColBound(matrix.Norm1(a), matrix.Norm1(b), k)
	if bound > 1e-8 {
		t.Fatalf("round-off bound implausibly large: %g", bound)
	}
	// The smallest corruption our injector produces is > 1 in magnitude
	// (see fault.Corrupt), eight orders of magnitude above the bound.
	if 1.0 <= bound*1e6 {
		t.Fatal("separation between faults and round-off too small")
	}
}

func TestBoundsGrowth(t *testing.T) {
	if TMUColBound(10, 10, 100) <= TMUColBound(10, 10, 10) {
		t.Fatal("bound must grow with accumulation depth")
	}
	if TMURowBound(10, 10, 50) != TMUColBound(10, 10, 50) {
		t.Fatal("row/col bounds use the same gamma structure")
	}
	if AccumulatedBound(1e-12, 10) != 1e-11 {
		t.Fatal("accumulated bound is linear in iterations")
	}
}
