package checksum

import (
	"math"
	"testing"
	"testing/quick"

	"ftla/internal/matrix"
)

func manualColChk(a *matrix.Dense, nb int) *matrix.Dense {
	out := matrix.NewDense(ColDims(a.Rows, a.Cols, nb))
	for s := 0; s < Strips(a.Rows, nb); s++ {
		lo := s * nb
		hi := lo + nb
		if hi > a.Rows {
			hi = a.Rows
		}
		for j := 0; j < a.Cols; j++ {
			s1, s2 := 0.0, 0.0
			for i := lo; i < hi; i++ {
				v := a.At(i, j)
				s1 += v
				s2 += float64(i-lo+1) * v
			}
			out.Set(2*s, j, s1)
			out.Set(2*s+1, j, s2)
		}
	}
	return out
}

func manualRowChk(a *matrix.Dense, nb int) *matrix.Dense {
	out := matrix.NewDense(RowDims(a.Rows, a.Cols, nb))
	for s := 0; s < Strips(a.Cols, nb); s++ {
		lo := s * nb
		hi := lo + nb
		if hi > a.Cols {
			hi = a.Cols
		}
		for i := 0; i < a.Rows; i++ {
			s1, s2 := 0.0, 0.0
			for j := lo; j < hi; j++ {
				v := a.At(i, j)
				s1 += v
				s2 += float64(j-lo+1) * v
			}
			out.Set(i, 2*s, s1)
			out.Set(i, 2*s+1, s2)
		}
	}
	return out
}

func TestStrips(t *testing.T) {
	if Strips(10, 4) != 3 || Strips(8, 4) != 2 || Strips(0, 4) != 0 || Strips(1, 4) != 1 {
		t.Fatal("Strips arithmetic wrong")
	}
}

func TestEncodeColBothKernels(t *testing.T) {
	rng := matrix.NewRNG(1)
	for _, dims := range [][3]int{{8, 8, 4}, {10, 7, 4}, {5, 5, 8}, {64, 33, 16}, {1, 1, 4}} {
		r, c, nb := dims[0], dims[1], dims[2]
		a := matrix.Random(r, c, rng)
		want := manualColChk(a, nb)
		for _, k := range []Kernel{GEMMKernel, OptKernel} {
			got := matrix.NewDense(ColDims(r, c, nb))
			EncodeCol(k, 2, a, nb, got)
			if !got.EqualWithin(want, 1e-12) {
				t.Fatalf("EncodeCol kernel=%v dims=%v wrong", k, dims)
			}
		}
	}
}

func TestEncodeRowBothKernels(t *testing.T) {
	rng := matrix.NewRNG(2)
	for _, dims := range [][3]int{{8, 8, 4}, {7, 10, 4}, {5, 5, 8}, {33, 64, 16}} {
		r, c, nb := dims[0], dims[1], dims[2]
		a := matrix.Random(r, c, rng)
		want := manualRowChk(a, nb)
		for _, k := range []Kernel{GEMMKernel, OptKernel} {
			got := matrix.NewDense(RowDims(r, c, nb))
			EncodeRow(k, 2, a, nb, got)
			if !got.EqualWithin(want, 1e-12) {
				t.Fatalf("EncodeRow kernel=%v dims=%v wrong", k, dims)
			}
		}
	}
}

func TestEncodeShapePanics(t *testing.T) {
	a := matrix.NewDense(8, 8)
	bad := matrix.NewDense(1, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	EncodeCol(OptKernel, 1, a, 4, bad)
}

func TestVerifyCleanMatrixNoMismatch(t *testing.T) {
	rng := matrix.NewRNG(3)
	a := matrix.Random(32, 32, rng)
	nb := 8
	chk := matrix.NewDense(ColDims(32, 32, nb))
	EncodeCol(OptKernel, 1, a, nb, chk)
	if ms := VerifyCol(1, a, nb, chk, 1e-11); len(ms) != 0 {
		t.Fatalf("clean matrix flagged: %v", ms)
	}
	rchk := matrix.NewDense(RowDims(32, 32, nb))
	EncodeRow(OptKernel, 1, a, nb, rchk)
	if ms := VerifyRow(1, a, nb, rchk, 1e-11); len(ms) != 0 {
		t.Fatalf("clean matrix row-flagged: %v", ms)
	}
}

func TestVerifyDetectsAndLocates(t *testing.T) {
	rng := matrix.NewRNG(4)
	nb := 8
	a := matrix.Random(24, 24, rng)
	chk := matrix.NewDense(ColDims(24, 24, nb))
	EncodeCol(OptKernel, 1, a, nb, chk)

	// Corrupt element (13, 5): strip 1, local row 5.
	orig := a.At(13, 5)
	a.Set(13, 5, orig+3.75)
	ms := VerifyCol(1, a, nb, chk, 1e-11)
	if len(ms) != 1 {
		t.Fatalf("mismatches = %d, want 1", len(ms))
	}
	m := ms[0]
	if m.Strip != 1 || m.Col != 5 {
		t.Fatalf("mismatch at strip=%d col=%d", m.Strip, m.Col)
	}
	lr, ok := LocateCol(m, nb)
	if !ok || lr != 13-nb {
		t.Fatalf("located local row %d ok=%v, want %d", lr, ok, 13-nb)
	}
	CorrectCol(a, nb, m, lr)
	if math.Abs(a.At(13, 5)-orig) > 1e-12 {
		t.Fatalf("correction wrong: %g vs %g", a.At(13, 5), orig)
	}
	if ms := VerifyCol(1, a, nb, chk, 1e-11); len(ms) != 0 {
		t.Fatal("still mismatched after correction")
	}
}

func TestVerifyRowDetectsAndLocates(t *testing.T) {
	rng := matrix.NewRNG(5)
	nb := 8
	a := matrix.Random(24, 24, rng)
	chk := matrix.NewDense(RowDims(24, 24, nb))
	EncodeRow(OptKernel, 1, a, nb, chk)
	orig := a.At(7, 18)
	a.Set(7, 18, orig-2.5)
	ms := VerifyRow(1, a, nb, chk, 1e-11)
	if len(ms) != 1 {
		t.Fatalf("mismatches = %d, want 1", len(ms))
	}
	m := ms[0]
	if m.Strip != 2 || m.Row != 7 {
		t.Fatalf("mismatch at strip=%d row=%d", m.Strip, m.Row)
	}
	lc, ok := LocateRow(m, nb)
	if !ok || lc != 18-2*nb {
		t.Fatalf("located col %d ok=%v", lc, ok)
	}
	CorrectRow(a, nb, m, lc)
	if math.Abs(a.At(7, 18)-orig) > 1e-12 {
		t.Fatal("row correction wrong")
	}
}

func TestLocateRejectsMultiError(t *testing.T) {
	rng := matrix.NewRNG(6)
	nb := 8
	a := matrix.Random(8, 8, rng)
	chk := matrix.NewDense(ColDims(8, 8, nb))
	EncodeCol(OptKernel, 1, a, nb, chk)
	// Two corruptions in the same column: δ₂/δ₁ lands between rows.
	a.Set(1, 3, a.At(1, 3)+1)
	a.Set(6, 3, a.At(6, 3)+1)
	ms := VerifyCol(1, a, nb, chk, 1e-11)
	if len(ms) != 1 {
		t.Fatalf("mismatches = %d, want 1 (same column)", len(ms))
	}
	if _, ok := LocateCol(ms[0], nb); ok {
		t.Fatal("multi-error column must not localize to a single row")
	}
}

func TestLocateRejectsCancelledD1(t *testing.T) {
	rng := matrix.NewRNG(7)
	nb := 8
	a := matrix.Random(8, 8, rng)
	chk := matrix.NewDense(ColDims(8, 8, nb))
	EncodeCol(OptKernel, 1, a, nb, chk)
	// +e and −e in one column cancel in v₁ but not v₂.
	a.Set(1, 2, a.At(1, 2)+1)
	a.Set(5, 2, a.At(5, 2)-1)
	ms := VerifyCol(1, a, nb, chk, 1e-11)
	// v₁ delta is 0, so detection must come from... v₁ only in VerifyCol;
	// this is the documented blind spot of single-weight detection, the
	// v₂ row still catches it through D2 when D1 passes — assert current
	// contract: no v₁ mismatch.
	for _, m := range ms {
		if _, ok := LocateCol(m, nb); ok {
			t.Fatal("cancelled corruption must not localize")
		}
	}
}

func TestNaNCorruptionDetected(t *testing.T) {
	rng := matrix.NewRNG(8)
	nb := 4
	a := matrix.Random(8, 8, rng)
	chk := matrix.NewDense(ColDims(8, 8, nb))
	EncodeCol(OptKernel, 1, a, nb, chk)
	a.Set(2, 2, math.NaN())
	ms := VerifyCol(1, a, nb, chk, 1e-11)
	if len(ms) == 0 {
		t.Fatal("NaN corruption undetected")
	}
}

func TestReconstructColumn(t *testing.T) {
	rng := matrix.NewRNG(9)
	nb := 8
	a := matrix.Random(24, 24, rng)
	want := a.Clone()
	rchk := matrix.NewDense(RowDims(24, 24, nb))
	EncodeRow(OptKernel, 1, a, nb, rchk)
	// Wipe out an entire column (1-D propagation).
	for i := 0; i < 24; i++ {
		a.Set(i, 10, math.Inf(1))
	}
	ReconstructColumn(a, nb, rchk, 10, 0, 24)
	if !a.EqualWithin(want, 1e-10) {
		d, i, j := a.MaxAbsDiff(want)
		t.Fatalf("reconstruction diff %g at (%d,%d)", d, i, j)
	}
}

func TestReconstructRow(t *testing.T) {
	rng := matrix.NewRNG(10)
	nb := 8
	a := matrix.Random(24, 24, rng)
	want := a.Clone()
	cchk := matrix.NewDense(ColDims(24, 24, nb))
	EncodeCol(OptKernel, 1, a, nb, cchk)
	for j := 0; j < 24; j++ {
		a.Set(13, j, -1e99)
	}
	ReconstructRow(a, nb, cchk, 13, 0, 24)
	if !a.EqualWithin(want, 1e-10) {
		t.Fatal("row reconstruction failed")
	}
}

func TestReconstructPartialRange(t *testing.T) {
	rng := matrix.NewRNG(11)
	nb := 4
	a := matrix.Random(12, 12, rng)
	want := a.Clone()
	rchk := matrix.NewDense(RowDims(12, 12, nb))
	EncodeRow(OptKernel, 1, a, nb, rchk)
	for i := 4; i < 8; i++ {
		a.Set(i, 6, 0)
	}
	ReconstructColumn(a, nb, rchk, 6, 4, 8)
	if !a.EqualWithin(want, 1e-10) {
		t.Fatal("partial reconstruction failed")
	}
}

// Property: encoding is linear — chk(A + B) == chk(A) + chk(B).
func TestEncodeLinearity(t *testing.T) {
	f := func(seed uint64) bool {
		rng := matrix.NewRNG(seed)
		r := 2 + int(seed%16)
		c := 2 + int(seed%12)
		nb := 4
		a := matrix.Random(r, c, rng)
		b := matrix.Random(r, c, rng)
		ca := matrix.NewDense(ColDims(r, c, nb))
		cb := matrix.NewDense(ColDims(r, c, nb))
		EncodeCol(OptKernel, 1, a, nb, ca)
		EncodeCol(OptKernel, 1, b, nb, cb)
		a.Add(b)
		cab := matrix.NewDense(ColDims(r, c, nb))
		EncodeCol(OptKernel, 1, a, nb, cab)
		ca.Add(cb)
		return cab.EqualWithin(ca, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: any single significant corruption is detected and exactly
// located by the dual-weight column checksum.
func TestSingleErrorAlwaysLocated(t *testing.T) {
	f := func(seed uint64) bool {
		rng := matrix.NewRNG(seed)
		nb := 8
		n := 16
		a := matrix.Random(n, n, rng)
		chk := matrix.NewDense(ColDims(n, n, nb))
		EncodeCol(OptKernel, 1, a, nb, chk)
		i := rng.Intn(n)
		j := rng.Intn(n)
		mag := 1.0 + rng.Float64()*100
		if rng.Intn(2) == 0 {
			mag = -mag
		}
		a.Set(i, j, a.At(i, j)+mag)
		ms := VerifyCol(1, a, nb, chk, 1e-11)
		if len(ms) != 1 || ms[0].Col != j || ms[0].Strip != i/nb {
			return false
		}
		lr, ok := LocateCol(ms[0], nb)
		return ok && lr == i%nb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestToleranceFloorAndGrowth(t *testing.T) {
	if Tolerance(0, 0) <= 0 {
		t.Fatal("tolerance must be positive")
	}
	if Tolerance(1000, 100) <= Tolerance(10, 100) {
		t.Fatal("tolerance must grow with depth")
	}
}

func TestKernelString(t *testing.T) {
	if GEMMKernel.String() != "gemm" || OptKernel.String() != "opt" {
		t.Fatal("kernel names wrong")
	}
}

func benchEncode(b *testing.B, k Kernel, n, nb, workers int) {
	rng := matrix.NewRNG(1)
	a := matrix.Random(n, n, rng)
	out := matrix.NewDense(ColDims(n, n, nb))
	b.SetBytes(int64(8 * n * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeCol(k, workers, a, nb, out)
	}
}

func BenchmarkEncodeGEMM1024(b *testing.B) { benchEncode(b, GEMMKernel, 1024, 128, 4) }
func BenchmarkEncodeOpt1024(b *testing.B)  { benchEncode(b, OptKernel, 1024, 128, 4) }
func BenchmarkEncodeGEMM2048(b *testing.B) { benchEncode(b, GEMMKernel, 2048, 256, 4) }
func BenchmarkEncodeOpt2048(b *testing.B)  { benchEncode(b, OptKernel, 2048, 256, 4) }
