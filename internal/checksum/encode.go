// Package checksum implements the ABFT checksum machinery of the paper:
// dual-weight block checksums (v₁ = [1,1,…]ᵀ, v₂ = [1,2,…]ᵀ), two encoding
// kernels (the GEMM-based baseline of prior work and the paper's optimized
// dedicated kernel, §VIII), verification against round-off bounds,
// single-element error localization and correction (§III.B), and full
// row/column reconstruction from the orthogonal checksum dimension — the
// "1-D propagation" recovery that full-checksum protection enables (§VII).
//
// Checksums are maintained per matrix block: an n×m matrix with block size
// nb is treated as a grid of nb×nb blocks, and every block carries its own
// 2-row column checksum and 2-column row checksum using block-local
// weights 1..nb. Strip s of a column-checksum matrix (rows 2s and 2s+1)
// covers matrix rows [s·nb, (s+1)·nb).
package checksum

import (
	"sync"

	"ftla/internal/blas"
	"ftla/internal/matrix"
	"ftla/internal/obs"
)

// Process-wide checksum metrics (obs default registry). Encode counts
// include the recomputations VerifyCol/VerifyRow perform internally, so
// the encode rate on /metrics reflects total checksum-kernel pressure,
// not just maintenance encodes.
var (
	encodeOps = obs.Default().CounterVec(obs.MetricChecksumEncodes,
		"Checksum encode operations, labeled by kernel (gemm or opt).", "kernel")
	mismatchCount = obs.Default().Counter(obs.MetricChecksumMismatches,
		"Checksum verification mismatches detected (each is one suspect strip/line pair).")
)

// Kernel selects the checksum-encoding implementation.
type Kernel int

const (
	// GEMMKernel encodes checksums by multiplying with an explicit weight
	// matrix through the general GEMM — the approach of prior work
	// [11][12], which underutilizes the device on this degenerate
	// (2×nb)·(nb×n) shape.
	GEMMKernel Kernel = iota
	// OptKernel is the paper's dedicated kernel: a single fused pass that
	// accumulates both weighted sums at once, with the v₂ weights
	// hardcoded (generated in-register rather than loaded) and the matrix
	// streamed tile by tile. On the GPU the paper stages tiles through
	// shared memory with double-buffered prefetch; the cache-tiled
	// traversal below is the CPU analogue.
	OptKernel
)

// String returns the kernel's short name ("gemm" or "opt"), as used in
// metric labels and benchmark output.
func (k Kernel) String() string {
	if k == GEMMKernel {
		return "gemm"
	}
	return "opt"
}

// Strips returns the number of nb-sized strips covering n rows or columns.
func Strips(n, nb int) int {
	if n <= 0 {
		return 0
	}
	return (n + nb - 1) / nb
}

// ColDims returns the shape of the column-checksum matrix for an r×c
// matrix: two checksum rows per row strip.
func ColDims(r, c, nb int) (int, int) { return 2 * Strips(r, nb), c }

// RowDims returns the shape of the row-checksum matrix for an r×c matrix:
// two checksum columns per column strip.
func RowDims(r, c, nb int) (int, int) { return r, 2 * Strips(c, nb) }

// EncodeCol computes the per-strip column checksums of a into out, which
// must have shape ColDims(a.Rows, a.Cols, nb). For each row strip s and
// column j:
//
//	out(2s,   j) = Σ_i a(s·nb+i, j)            (v₁ weights)
//	out(2s+1, j) = Σ_i (i+1)·a(s·nb+i, j)      (v₂ weights)
func EncodeCol(k Kernel, workers int, a *matrix.Dense, nb int, out *matrix.Dense) {
	wr, wc := ColDims(a.Rows, a.Cols, nb)
	if out.Rows != wr || out.Cols != wc {
		panic("checksum: EncodeCol output has wrong shape")
	}
	encodeOps.With(k.String()).Inc()
	if k == OptKernel {
		// The GEMM path self-reports through blas; the fused kernel does
		// 3 flops per element (two adds, one multiply).
		blas.AddFlops(3 * uint64(a.Rows) * uint64(a.Cols))
	}
	ns := Strips(a.Rows, nb)
	oneStrip := func(s, workers int) {
		lo := s * nb
		hi := lo + nb
		if hi > a.Rows {
			hi = a.Rows
		}
		strip := a.View(lo, 0, hi-lo, a.Cols)
		dst := out.View(2*s, 0, 2, a.Cols)
		switch k {
		case GEMMKernel:
			encodeColGEMM(workers, strip, dst)
		default:
			encodeColOpt(workers, strip, dst)
		}
	}
	if k == OptKernel && ns >= 2 && workers > 1 {
		// Strips are independent; parallelizing across them streams each
		// strip contiguously from one worker (the CPU analogue of one
		// thread block per tile row on the GPU).
		parallelRanges(workers, ns, 1, func(slo, shi int) {
			for s := slo; s < shi; s++ {
				oneStrip(s, 1)
			}
		})
		return
	}
	for s := 0; s < ns; s++ {
		oneStrip(s, workers)
	}
}

// EncodeRow computes the per-strip row checksums of a into out, which must
// have shape RowDims(a.Rows, a.Cols, nb). For each column strip s and row
// i:
//
//	out(i, 2s)   = Σ_j a(i, s·nb+j)            (v₁ weights)
//	out(i, 2s+1) = Σ_j (j+1)·a(i, s·nb+j)      (v₂ weights)
func EncodeRow(k Kernel, workers int, a *matrix.Dense, nb int, out *matrix.Dense) {
	wr, wc := RowDims(a.Rows, a.Cols, nb)
	if out.Rows != wr || out.Cols != wc {
		panic("checksum: EncodeRow output has wrong shape")
	}
	encodeOps.With(k.String()).Inc()
	if k == OptKernel {
		blas.AddFlops(3 * uint64(a.Rows) * uint64(a.Cols))
	}
	ns := Strips(a.Cols, nb)
	for s := 0; s < ns; s++ {
		lo := s * nb
		hi := lo + nb
		if hi > a.Cols {
			hi = a.Cols
		}
		strip := a.View(0, lo, a.Rows, hi-lo)
		dst := out.View(0, 2*s, a.Rows, 2)
		switch k {
		case GEMMKernel:
			encodeRowGEMM(workers, strip, dst)
		default:
			encodeRowOpt(workers, strip, dst)
		}
	}
}

// encodeColGEMM is the baseline: materialize W = [v₁ v₂]ᵀ (2×k) and call
// the general parallel GEMM.
func encodeColGEMM(workers int, a, out *matrix.Dense) {
	w := matrix.NewDense(2, a.Rows)
	for i := 0; i < a.Rows; i++ {
		w.Set(0, i, 1)
		w.Set(1, i, float64(i+1))
	}
	blas.GemmP(workers, false, false, 1, w, a, 0, out)
}

// encodeRowGEMM is the baseline for row checksums: A · [v₁ v₂] via GEMM.
func encodeRowGEMM(workers int, a, out *matrix.Dense) {
	w := matrix.NewDense(a.Cols, 2)
	for j := 0; j < a.Cols; j++ {
		w.Set(j, 0, 1)
		w.Set(j, 1, float64(j+1))
	}
	blas.GemmP(workers, false, false, 1, a, w, 0, out)
}

// colTile is the column-stripe width each worker reduces at a time; it
// keeps both accumulator stripes and the streamed rows inside L1.
const colTile = 512

// encodeColOpt fuses both weighted column sums into one streaming pass over
// the strip, parallel across column stripes.
func encodeColOpt(workers int, a, out *matrix.Dense) {
	c := a.Cols
	run := func(jlo, jhi int) {
		s1 := out.Row(0)[jlo:jhi]
		s2 := out.Row(1)[jlo:jhi]
		for j := range s1 {
			s1[j] = 0
			s2[j] = 0
		}
		i := 0
		for ; i+1 < a.Rows; i += 2 {
			r0 := a.Row(i)[jlo:jhi]
			r1 := a.Row(i + 1)[jlo:jhi]
			w0 := float64(i + 1)
			w1 := float64(i + 2)
			for j, v0 := range r0 {
				v1 := r1[j]
				s1[j] += v0 + v1
				s2[j] += w0*v0 + w1*v1
			}
		}
		if i < a.Rows {
			row := a.Row(i)[jlo:jhi]
			w := float64(i + 1)
			for j, v := range row {
				s1[j] += v
				s2[j] += w * v
			}
		}
	}
	parallelRanges(workers, c, colTile, run)
}

// encodeRowOpt fuses both weighted row sums; weights are generated on the
// fly (never loaded), and rows are split across workers.
func encodeRowOpt(workers int, a, out *matrix.Dense) {
	run := func(ilo, ihi int) {
		for i := ilo; i < ihi; i++ {
			row := a.Row(i)
			s1, s2 := 0.0, 0.0
			for j, v := range row {
				s1 += v
				s2 += float64(j+1) * v
			}
			o := out.Row(i)
			o[0] = s1
			o[1] = s2
		}
	}
	parallelRanges(workers, a.Rows, 128, run)
}

// parallelRanges splits [0, n) into chunks of at least minChunk and runs
// body on up to `workers` goroutines.
func parallelRanges(workers, n, minChunk int, body func(lo, hi int)) {
	if workers <= 1 || n <= minChunk {
		body(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	if chunk < minChunk {
		chunk = minChunk
	}
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
