package checksum

import (
	"math"

	"ftla/internal/matrix"
)

// ColMismatch reports one column of one row strip whose maintained column
// checksum disagrees with the recomputed one beyond tolerance.
type ColMismatch struct {
	Strip int     // row strip index
	Col   int     // global column index
	D1    float64 // maintained − recomputed, v₁ weights
	D2    float64 // maintained − recomputed, v₂ weights
}

// RowMismatch reports one row of one column strip whose maintained row
// checksum disagrees with the recomputed one beyond tolerance.
type RowMismatch struct {
	Strip int // column strip index
	Row   int // global row index
	D1    float64
	D2    float64
}

// VerifyCol recomputes the column checksums of a and returns every
// (strip, column) where either weighted sum deviates from the maintained
// checksum chk beyond tolerance (the v₂ line uses nb·tol since its
// round-off scales with the weights). Checking both weights closes the
// blind spot where corruptions cancel in the plain sum but not in the
// weighted one. The recomputation uses the optimized kernel: verification
// is the hot path the paper's kernel accelerates.
func VerifyCol(workers int, a *matrix.Dense, nb int, chk *matrix.Dense, tol float64) []ColMismatch {
	recal := matrix.NewDense(ColDims(a.Rows, a.Cols, nb))
	EncodeCol(OptKernel, workers, a, nb, recal)
	var out []ColMismatch
	tol2 := tol * float64(nb)
	ns := Strips(a.Rows, nb)
	for s := 0; s < ns; s++ {
		m1, r1 := chk.Row(2*s), recal.Row(2*s)
		m2, r2 := chk.Row(2*s+1), recal.Row(2*s+1)
		for j := range m1 {
			d1 := m1[j] - r1[j]
			d2 := m2[j] - r2[j]
			if math.Abs(d1) > tol || math.Abs(d2) > tol2 || math.IsNaN(d1) || math.IsNaN(d2) {
				out = append(out, ColMismatch{Strip: s, Col: j, D1: d1, D2: d2})
			}
		}
	}
	mismatchCount.Add(uint64(len(out)))
	return out
}

// VerifyRow is VerifyCol for the row-checksum dimension.
func VerifyRow(workers int, a *matrix.Dense, nb int, chk *matrix.Dense, tol float64) []RowMismatch {
	recal := matrix.NewDense(RowDims(a.Rows, a.Cols, nb))
	EncodeRow(OptKernel, workers, a, nb, recal)
	var out []RowMismatch
	tol2 := tol * float64(nb)
	ns := Strips(a.Cols, nb)
	for i := 0; i < a.Rows; i++ {
		m, r := chk.Row(i), recal.Row(i)
		for s := 0; s < ns; s++ {
			d1 := m[2*s] - r[2*s]
			d2 := m[2*s+1] - r[2*s+1]
			if math.Abs(d1) > tol || math.Abs(d2) > tol2 || math.IsNaN(d1) || math.IsNaN(d2) {
				out = append(out, RowMismatch{Strip: s, Row: i, D1: d1, D2: d2})
			}
		}
	}
	mismatchCount.Add(uint64(len(out)))
	return out
}

// LocateCol resolves a column mismatch to the corrupted element's local row
// index within the strip (round(δ₂/δ₁) − 1, §III.B). ok is false when the
// ratio does not land near an integer row inside the strip — the signature
// of multi-element corruption (1-D/2-D propagation) rather than a single
// flipped element.
func LocateCol(m ColMismatch, stripRows int) (localRow int, ok bool) {
	if m.D1 == 0 || math.IsNaN(m.D1) || math.IsNaN(m.D2) {
		return 0, false
	}
	ratio := m.D2 / m.D1
	r := math.Round(ratio)
	if math.Abs(ratio-r) > 0.25 {
		return 0, false
	}
	localRow = int(r) - 1
	if localRow < 0 || localRow >= stripRows {
		return 0, false
	}
	return localRow, true
}

// LocateRow resolves a row mismatch to the corrupted element's local column
// index within the strip.
func LocateRow(m RowMismatch, stripCols int) (localCol int, ok bool) {
	cm := ColMismatch{D1: m.D1, D2: m.D2}
	return LocateCol(cm, stripCols)
}

// CorrectCol repairs the single corrupted element identified by m at local
// row lr: the maintained checksum is authoritative, so the element gains
// δ₁.
func CorrectCol(a *matrix.Dense, nb int, m ColMismatch, lr int) {
	i := m.Strip*nb + lr
	a.Set(i, m.Col, a.At(i, m.Col)+m.D1)
}

// CorrectRow repairs the single corrupted element identified by m at local
// column lc.
func CorrectRow(a *matrix.Dense, nb int, m RowMismatch, lc int) {
	j := m.Strip*nb + lc
	a.Set(m.Row, j, a.At(m.Row, j)+m.D1)
}

// ReconstructColumn rebuilds every element of global column j of a from
// the v₁ row checksums (rowChk, shape RowDims), overwriting the column.
// This is the full-checksum recovery for a 1-D column corruption: each
// element is the row checksum minus the surviving elements of its block
// row. Rows [rlo, rhi) are reconstructed.
func ReconstructColumn(a *matrix.Dense, nb int, rowChk *matrix.Dense, j, rlo, rhi int) {
	s := j / nb
	clo := s * nb
	chi := clo + nb
	if chi > a.Cols {
		chi = a.Cols
	}
	for i := rlo; i < rhi; i++ {
		row := a.Row(i)
		sum := 0.0
		for c := clo; c < chi; c++ {
			if c != j {
				sum += row[c]
			}
		}
		row[j] = rowChk.At(i, 2*s) - sum
	}
}

// ReconstructRow rebuilds every element of global row i of a from the v₁
// column checksums (colChk, shape ColDims), overwriting columns
// [clo, chi).
func ReconstructRow(a *matrix.Dense, nb int, colChk *matrix.Dense, i, clo, chi int) {
	s := i / nb
	rlo := s * nb
	rhi := rlo + nb
	if rhi > a.Rows {
		rhi = a.Rows
	}
	row := a.Row(i)
	for j := clo; j < chi; j++ {
		sum := 0.0
		for r := rlo; r < rhi; r++ {
			if r != i {
				sum += a.At(r, j)
			}
		}
		row[j] = colChk.At(2*s, j) - sum
	}
}

// Tolerance derives a verification threshold from the paper's norm-based
// round-off bound (§III.B): gamma_k·‖A‖·‖B‖ for a checksum maintained
// through a k-deep accumulation with operand scales normA·normB, widened
// by a safety factor so that false positives never fire in error-free runs
// while injected multi-bit flips (orders of magnitude larger) still do.
func Tolerance(depth int, scale float64) float64 {
	if depth < 2 {
		depth = 2
	}
	t := matrix.Gamma(depth) * scale * 64
	if t < 1e-11 {
		t = 1e-11
	}
	return t
}
