package checksum

import "ftla/internal/matrix"

// This file implements the paper's §III.B a-priori round-off bounds,
// which separate checksum mismatches caused by soft errors from the
// harmless drift between a maintained checksum and a recomputed one:
//
//	e_c = ‖c(C) − recal_c(C)‖∞ ≤ γₙ·‖Aᵗ‖₁·‖Bᵗ‖₁
//	e_r = ‖r(C) − recal_r(C)‖∞ ≤ γₙ·‖Aᵗ‖∞·‖Bᵗ‖∞
//
// for a checksum maintained through the trailing update C ← C − Aᵗ·Bᵗ,
// with γₙ = n·u/(1 − n·u). The protected engine uses a per-run scalar
// tolerance derived from the input's magnitude (simpler bookkeeping, same
// structure); these functions expose the sharp per-operation bounds for
// callers that track operand norms, and the accompanying test verifies
// the bound empirically.

// TMUColBound returns the §III.B column-checksum round-off bound for one
// trailing update with operand 1-norms normA1 and normB1 and inner
// dimension k.
func TMUColBound(normA1, normB1 float64, k int) float64 {
	return matrix.Gamma(k+2) * normA1 * normB1
}

// TMURowBound returns the row-checksum bound with operand ∞-norms.
func TMURowBound(normAInf, normBInf float64, k int) float64 {
	return matrix.Gamma(k+2) * normAInf * normBInf
}

// AccumulatedBound composes per-iteration bounds over iters trailing
// updates: maintained and recomputed checksums drift by at most the sum of
// the per-update bounds (triangle inequality over the update sequence).
func AccumulatedBound(perUpdate float64, iters int) float64 {
	return perUpdate * float64(iters)
}
