package checksum

// PartitionColMismatches splits slab-wide column-mismatch reports by batch
// item. A batch slab stacks count items vertically (item i occupies row
// strips [i·stripsPerItem, (i+1)·stripsPerItem)), so one VerifyCol pass
// over the whole slab verifies every item at once; this maps each mismatch
// back to the item it belongs to, with the strip index rebased to be
// item-relative. Out-of-range strips (never produced by VerifyCol on a
// well-formed slab) are dropped.
func PartitionColMismatches(ms []ColMismatch, stripsPerItem, count int) [][]ColMismatch {
	out := make([][]ColMismatch, count)
	if stripsPerItem <= 0 {
		return out
	}
	for _, m := range ms {
		i := m.Strip / stripsPerItem
		if i < 0 || i >= count {
			continue
		}
		m.Strip -= i * stripsPerItem
		out[i] = append(out[i], m)
	}
	return out
}
