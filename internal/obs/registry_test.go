package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if prev := c.Swap(0); prev != 5 || c.Value() != 0 {
		t.Fatalf("Swap returned %d (counter now %d), want 5 and 0", prev, c.Value())
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Fatalf("gauge = %d, want 2", g.Value())
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "help")
	b := r.Counter("c", "other help ignored")
	if a != b {
		t.Fatal("same name must return the same counter instance")
	}
	v1 := r.CounterVec("v", "h", "kind").With("x")
	v2 := r.CounterVec("v", "h", "kind").With("x")
	if v1 != v2 {
		t.Fatal("same name+label value must return the same series")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("m", "h")
}

func TestLabelKeyMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("m", "h", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on label-key mismatch")
		}
	}()
	r.CounterVec("m", "h", "b")
}

func TestCounterVecValues(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("outcomes_total", "h", "outcome")
	v.With("fault-free").Add(2)
	v.With("abft-fixed").Inc()
	got := v.Values()
	if got["fault-free"] != 2 || got["abft-fixed"] != 1 {
		t.Fatalf("Values = %v", got)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("ftla_jobs_total", "Jobs seen.").Add(7)
	r.Gauge("ftla_queue_depth", "Depth.").Set(2)
	r.CounterVec("ftla_outcomes_total", "Outcomes.", "outcome").With("fault-free").Add(3)
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP ftla_jobs_total Jobs seen.",
		"# TYPE ftla_jobs_total counter",
		"ftla_jobs_total 7",
		"# TYPE ftla_queue_depth gauge",
		"ftla_queue_depth 2",
		`ftla_outcomes_total{outcome="fault-free"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families must appear sorted by name for deterministic scrapes.
	if strings.Index(out, "ftla_jobs_total") > strings.Index(out, "ftla_queue_depth") {
		t.Fatalf("families not sorted:\n%s", out)
	}
}

func TestPrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("m_total", "help with \\ backslash\nand newline", "k").
		With("a\\b\"c\nd").Inc()
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP m_total help with \\ backslash\nand newline`) {
		t.Fatalf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `m_total{k="a\\b\"c\nd"} 1`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
	// A raw (unescaped) newline inside a series line would corrupt the
	// line-oriented format.
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "m_total{") && !strings.HasSuffix(line, " 1") {
			t.Fatalf("series line split by raw newline: %q", line)
		}
	}
}

func TestHistogramPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "h", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 5.55",
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "h").Add(9)
	r.Gauge("g", "h").Set(-4)
	r.Histogram("h_seconds", "h", []float64{1}).Observe(0.5)
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(b.Bytes(), &s); err != nil {
		t.Fatalf("WriteJSON output does not parse: %v", err)
	}
	if s.Counters["c_total"] != 9 || s.Gauges["g"] != -4 {
		t.Fatalf("round-trip lost values: %+v", s)
	}
	if hs := s.Histograms["h_seconds"]; hs.Count != 1 || hs.Sum != 0.5 {
		t.Fatalf("histogram round-trip: %+v", hs)
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "h")
	g := r.Gauge("g", "h")
	h := r.Histogram("h_seconds", "h", []float64{1, 10})
	c.Add(3)
	g.Set(1)
	h.Observe(0.5)
	before := r.Snapshot()
	c.Add(4)
	g.Set(9)
	h.Observe(5)
	h.Observe(0.25)
	d := r.Snapshot().Diff(before)
	if d.Counters["c_total"] != 4 {
		t.Fatalf("counter diff = %d, want 4", d.Counters["c_total"])
	}
	if d.Gauges["g"] != 9 {
		t.Fatalf("gauge diff keeps current value; got %d", d.Gauges["g"])
	}
	hd := d.Histograms["h_seconds"]
	if hd.Count != 2 || hd.Sum != 5.25 {
		t.Fatalf("histogram diff = %+v", hd)
	}
	if hd.Counts[0] != 1 || hd.Counts[1] != 1 || hd.Counts[2] != 0 {
		t.Fatalf("bucket diff = %v", hd.Counts)
	}
	// A series that shrank (Swap reset) clamps to zero instead of
	// underflowing.
	c.Swap(0)
	d2 := r.Snapshot().Diff(before)
	if v, ok := d2.Counters["c_total"]; ok && v != 0 {
		t.Fatalf("shrunk counter must clamp, got %d", v)
	}
}

func TestConcurrentRegistryAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("c_total", "h").Inc()
				r.CounterVec("v_total", "h", "k").With(string(rune('a' + i%3))).Inc()
				r.Gauge("g", "h").Add(1)
				r.Histogram("h_seconds", "h", nil).Observe(float64(i) * 1e-4)
				if i%50 == 0 {
					r.Snapshot()
					var b bytes.Buffer
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c_total", "h").Value(); got != 8*500 {
		t.Fatalf("counter = %d, want %d", got, 8*500)
	}
	if got := r.Histogram("h_seconds", "h", nil).Count(); got != 8*500 {
		t.Fatalf("histogram count = %d, want %d", got, 8*500)
	}
	vals := r.CounterVec("v_total", "h", "k").Values()
	var sum uint64
	for _, v := range vals {
		sum += v
	}
	if sum != 8*500 {
		t.Fatalf("vec total = %d, want %d", sum, 8*500)
	}
}

func TestObservePhaseAndPhaseSeconds(t *testing.T) {
	before := Default().Snapshot()
	ObservePhase(PhaseVerify, 30*time.Millisecond)
	ObservePhase(PhaseVerify, 20*time.Millisecond)
	ObservePhaseSeconds(PhasePCIe, 0.25)
	ObservePhase("not-a-phase", time.Second) // dropped, not minted
	d := Default().Snapshot().Diff(before)
	if got := d.PhaseSeconds(PhaseVerify); got < 0.0499 || got > 0.0501 {
		t.Fatalf("verify seconds = %g, want 0.05", got)
	}
	if got := d.PhaseSeconds(PhasePCIe); got != 0.25 {
		t.Fatalf("pcie seconds = %g, want 0.25", got)
	}
	if _, ok := d.Histograms[Key(MetricPhaseSeconds, "phase", "not-a-phase")]; ok {
		t.Fatal("unknown phase must not mint a series")
	}
}

func TestKey(t *testing.T) {
	if Key("m", "", "") != "m" {
		t.Fatal("unlabeled key must be the bare name")
	}
	if got := Key("m", "k", `a"b`); got != `m{k="a\"b"}` {
		t.Fatalf("Key = %q", got)
	}
}
