package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync/atomic"
)

// Histogram observes float64 values into fixed buckets, tracking the
// per-bucket counts, the total count, and the running sum. Observe is
// lock-free: a binary search over the (immutable) bounds plus three
// atomic updates.
type Histogram struct {
	bounds []float64 // sorted upper bounds; +Inf is implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits of the running sum
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// normBuckets validates and normalizes bucket bounds: nil selects
// DefBuckets, bounds must be strictly increasing and finite.
func normBuckets(bounds []float64) []float64 {
	if bounds == nil {
		return DefBuckets()
	}
	out := append([]float64(nil), bounds...)
	if !sort.Float64sAreSorted(out) {
		panic("obs: histogram buckets must be sorted ascending")
	}
	for i, b := range out {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("obs: histogram buckets must be finite (+Inf is implicit)")
		}
		if i > 0 && out[i-1] == b {
			panic("obs: duplicate histogram bucket bound")
		}
	}
	return out
}

// DefBuckets returns the default latency-shaped bucket bounds, in
// seconds: 100µs to ~100s, exponential with factor ~3.16 (two buckets per
// decade).
func DefBuckets() []float64 {
	return ExpBuckets(1e-4, math.Sqrt(10), 13)
}

// ExpBuckets returns n exponential bucket upper bounds starting at start
// and multiplying by factor: start, start·factor, start·factor², …
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v; the extra slot is +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot captures the histogram state. Counts are read bucket by bucket
// without a global lock, so a snapshot taken during concurrent Observe
// calls is approximate in the usual scrape sense (each individual value
// is exact, the set may straddle an observation).
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Buckets: h.bounds, // immutable after construction, safe to share
		Counts:  make([]uint64, len(h.counts)),
		Count:   h.Count(),
		Sum:     h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is the point-in-time state of one histogram.
type HistogramSnapshot struct {
	// Buckets holds the upper bounds; the implicit +Inf bucket is not
	// listed.
	Buckets []float64 `json:"buckets"`
	// Counts holds per-bucket (non-cumulative) observation counts;
	// len(Counts) == len(Buckets)+1, the last entry being the +Inf bucket.
	Counts []uint64 `json:"counts"`
	// Sum is the sum of all observed values.
	Sum float64 `json:"sum"`
	// Count is the number of observations.
	Count uint64 `json:"count"`
}

// Mean returns Sum/Count, or zero for an empty histogram.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// diff subtracts base from s bucket-wise, clamping at zero; a base with
// different bucketing (or the zero value) is treated as empty.
func (s HistogramSnapshot) diff(base HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{Buckets: s.Buckets, Counts: append([]uint64(nil), s.Counts...)}
	if len(base.Counts) == len(s.Counts) {
		for i, b := range base.Counts {
			if out.Counts[i] >= b {
				out.Counts[i] -= b
			} else {
				out.Counts[i] = 0
			}
		}
		if s.Count >= base.Count {
			out.Count = s.Count - base.Count
		}
		if d := s.Sum - base.Sum; d > 0 {
			out.Sum = d
		}
		return out
	}
	out.Count, out.Sum = s.Count, s.Sum
	return out
}

// writePrometheus expands the histogram into the text-format _bucket
// (cumulative, le-labeled), _sum, and _count series.
func (h *Histogram) writePrometheus(w io.Writer, name, label, value string) error {
	s := h.snapshot()
	// The le label joins any family label: name_bucket{label="v",le="b"}.
	bucketKey := func(le string) string {
		if label == "" {
			return name + `_bucket{le="` + le + `"}`
		}
		return name + `_bucket{` + label + `="` + escapeLabelValue(value) + `",le="` + le + `"}`
	}
	cum := uint64(0)
	for i, b := range s.Buckets {
		cum += s.Counts[i]
		le := strconv.FormatFloat(b, 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "%s %d\n", bucketKey(le), cum); err != nil {
			return err
		}
	}
	cum += s.Counts[len(s.Counts)-1]
	if _, err := fmt.Fprintf(w, "%s %d\n", bucketKey("+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, sel(label, value), formatFloat(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, sel(label, value), s.Count)
	return err
}

// sel renders the {label="value"} selector, or "" for unlabeled series.
func sel(label, value string) string {
	if label == "" {
		return ""
	}
	return `{` + label + `="` + escapeLabelValue(value) + `"}`
}

// formatFloat renders a float in the shortest round-trip form.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
