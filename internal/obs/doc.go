// Package obs is the repository's unified observability layer: a
// dependency-free metrics registry (counters, gauges, histograms with
// atomic hot paths) and a span-based tracer that exports Chrome
// trace-event JSON loadable in chrome://tracing or Perfetto.
//
// Before this package existed the repo's telemetry was fragmented —
// hetsim recorded kernel events, blas kept a private flop tally, and the
// serving layer aggregated its own counters — each in a different dialect
// and none exportable. obs is the single substrate all of them now feed:
//
//   - internal/blas counts flops into the default registry
//     (ftla_blas_flops_total),
//   - internal/checksum counts encode-kernel invocations and verification
//     outcomes (ftla_checksum_*),
//   - internal/core attributes wall time to the paper's ABFT phases —
//     encode, factorize, verify, recover — via ObservePhase and emits
//     per-phase spans to an attached Trace,
//   - internal/hetsim charges PCIe traffic and simulated transfer time and
//     emits simulated-clock kernel/transfer spans,
//   - internal/service keys its serving statistics (admissions, outcomes,
//     retries, cache, latency) to a per-scheduler Registry, and
//   - cmd/ftserve exposes everything over HTTP: /metrics (Prometheus text
//     and JSON), /trace (per-job Chrome trace), and opt-in net/http/pprof.
//
// Metric naming follows the Prometheus conventions: snake_case names
// prefixed ftla_, a _total suffix on monotonic counters, base units
// (seconds, bytes) in the name. Phase attribution uses the single label
// "phase" with the values of Phases. See OBSERVABILITY.md at the
// repository root for the full naming table and a worked capture example.
//
// Two clocks coexist in this codebase and obs keeps them distinguishable:
// wall-clock phases (encode/factorize/verify/recover) are measured with
// time.Now on the host, while the pcie phase and all hetsim spans advance
// on the simulated clock (see DESIGN.md §1). Chrome traces separate the
// two into distinct trace processes ("wall" and "sim") so a mixed
// timeline is never presented as one.
//
// Snapshots make the registry diffable: take one before and one after a
// region of interest and Diff yields exactly the work done in between —
// the same mechanism bench_test.go, internal/overhead, and the ftserve
// load generator use to report phase breakdowns from one source of truth.
package obs
