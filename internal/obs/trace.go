package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// The ABFT attribution phases. Every phase-attributed metric and span in
// this repository uses exactly these values for the "phase" label /
// span category, so the server's /metrics, a job's Chrome trace, and the
// overhead study all slice along the same axis (the paper's §IX overhead
// anatomy: checksum encoding, verification, recovery, PCIe protection,
// and the factorization work itself).
const (
	// PhaseEncode is initial checksum encoding (wall clock).
	PhaseEncode = "encode"
	// PhaseFactorize is the factorization work proper — data kernels plus
	// in-line checksum maintenance (wall clock; derived as total minus the
	// other wall phases).
	PhaseFactorize = "factorize"
	// PhaseVerify is checksum verification (wall clock).
	PhaseVerify = "verify"
	// PhaseRecover is error recovery — correction, reconstruction, local
	// restart, rebroadcast (wall clock).
	PhaseRecover = "recover"
	// PhasePCIe is simulated PCIe transfer time (simulated clock; see the
	// two-clocks note in the package documentation).
	PhasePCIe = "pcie"
)

// Phases returns the attribution phases in presentation order.
func Phases() []string {
	return []string{PhaseEncode, PhaseFactorize, PhaseVerify, PhaseRecover, PhasePCIe}
}

// Span processes: wall-clock spans and simulated-clock spans live on
// separate trace processes so the two timelines are never conflated.
const (
	// ProcWall is the trace process for host wall-clock spans.
	ProcWall = "wall"
	// ProcSim is the trace process for simulated-clock spans.
	ProcSim = "sim"
)

// Span is one completed trace interval.
type Span struct {
	// Name labels the span ("verify", "gemm", "CPU->GPU1", …).
	Name string `json:"name"`
	// Cat is the span category — a phase constant, or "kernel" for
	// device kernels.
	Cat string `json:"cat"`
	// Proc is the span's timeline: ProcWall or ProcSim.
	Proc string `json:"proc"`
	// Track is the lane within the process (a device name, "host", …).
	Track string `json:"track"`
	// StartUS and DurUS are the start offset and duration in microseconds
	// on the span's timeline (wall spans: offset from the trace epoch).
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
	// Args carries numeric span attributes (bytes, flops).
	Args map[string]float64 `json:"args,omitempty"`
}

// Trace collects spans for one region of interest (typically one job).
// All methods are nil-safe: instrumented code may call them on a nil
// *Trace, which records nothing — tracing off is the zero-cost default.
type Trace struct {
	epoch time.Time

	mu    sync.Mutex
	spans []Span
}

// NewTrace returns an empty trace whose wall-clock epoch is now.
func NewTrace() *Trace {
	return &Trace{epoch: time.Now()}
}

// Add records one completed span.
func (t *Trace) Add(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// WallSpan records a completed wall-clock span on the "host" track:
// started at start, lasting d, placed relative to the trace epoch.
func (t *Trace) WallSpan(name, cat string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.Add(Span{
		Name:    name,
		Cat:     cat,
		Proc:    ProcWall,
		Track:   "host",
		StartUS: float64(start.Sub(t.epoch)) / float64(time.Microsecond),
		DurUS:   float64(d) / float64(time.Microsecond),
	})
}

// SimSpan records a completed simulated-clock span: endSecs is the
// simulated completion time, durSecs the simulated duration, track the
// device lane. args may be nil.
func (t *Trace) SimSpan(name, cat, track string, endSecs, durSecs float64, args map[string]float64) {
	if t == nil {
		return
	}
	start := (endSecs - durSecs) * 1e6
	if start < 0 {
		start = 0
	}
	t.Add(Span{
		Name:    name,
		Cat:     cat,
		Proc:    ProcSim,
		Track:   track,
		StartUS: start,
		DurUS:   durSecs * 1e6,
		Args:    args,
	})
}

// Len returns the number of recorded spans.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a copy of the recorded spans.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// chromeEvent is one entry of the Chrome trace-event JSON array. Complete
// spans use ph "X"; process/thread naming metadata uses ph "M".
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the trace-event JSON object form (the variant Perfetto
// and chrome://tracing both load).
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome writes the trace in Chrome trace-event JSON format
// (the "JSON object format" with a traceEvents array of "X" complete
// events plus "M" process/thread metadata), loadable in chrome://tracing
// and Perfetto (ui.perfetto.dev). Wall-clock and simulated-clock spans
// appear as two processes named "wall" and "sim"; tracks map to threads.
func (t *Trace) WriteChrome(w io.Writer) error {
	spans := t.Spans()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].StartUS < spans[j].StartUS })

	pids := map[string]int{}
	tids := map[[2]string]int{}
	var events []chromeEvent
	for _, s := range spans {
		pid, ok := pids[s.Proc]
		if !ok {
			pid = len(pids) + 1
			pids[s.Proc] = pid
			events = append(events, chromeEvent{
				Name: "process_name", Ph: "M", PID: pid,
				Args: map[string]any{"name": s.Proc},
			})
		}
		tk := [2]string{s.Proc, s.Track}
		tid, ok := tids[tk]
		if !ok {
			tid = len(tids) + 1
			tids[tk] = tid
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", PID: pid, TID: tid,
				Args: map[string]any{"name": s.Track},
			})
		}
		dur := s.DurUS
		ev := chromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			TS: s.StartUS, Dur: &dur, PID: pid, TID: tid,
		}
		if len(s.Args) > 0 {
			ev.Args = make(map[string]any, len(s.Args))
			for k, v := range s.Args {
				ev.Args[k] = v
			}
		}
		events = append(events, ev)
	}
	if events == nil {
		events = []chromeEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
