package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metricKind discriminates the three metric families a Registry holds.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric family: all series sharing a name, help
// string, kind, and (optional) label key.
type family struct {
	name    string
	help    string
	kind    metricKind
	label   string // label key for vec families, "" for plain metrics
	buckets []float64

	mu     sync.Mutex
	series map[string]any // label value -> *Counter | *Gauge | *Histogram
	order  []string       // label values in first-registration order
}

// Registry is a set of named metrics with atomic hot paths. Registration
// is idempotent: asking for an existing name returns the same instance,
// so packages can register at init or lazily without coordination.
// Registering one name as two different kinds (or with two different
// label keys) panics — that is a programming error, not a runtime state.
//
// The zero value is not usable; call NewRegistry, or use Default for the
// process-wide registry that the instrumented packages (blas, checksum,
// core, hetsim) share.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry is the process-wide registry; see Default.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. Library instrumentation
// (flop counting, phase attribution, PCIe traffic) lands here; components
// with an isolated lifecycle (one service.Scheduler per test) construct
// their own Registry instead.
func Default() *Registry { return defaultRegistry }

// family returns (creating if needed) the named family, enforcing that
// the name is not reused with a different kind or label key.
func (r *Registry) family(name, help string, kind metricKind, label string, buckets []float64) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.families[name]; f == nil {
			f = &family{name: name, help: help, kind: kind, label: label,
				buckets: buckets, series: make(map[string]any)}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, f.kind, kind))
	}
	if f.label != label {
		panic(fmt.Sprintf("obs: metric %q registered with label %q, requested with %q", name, f.label, label))
	}
	return f
}

// with returns (creating if needed) the series for one label value.
func (f *family) with(value string, mk func() any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.series[value]
	if !ok {
		m = mk()
		f.series[value] = m
		f.order = append(f.order, value)
	}
	return m
}

// Counter is a monotonically increasing uint64 metric. All methods are
// safe for concurrent use; Add and Inc are single atomic operations.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Swap resets the counter to v and returns the previous value. Prometheus
// counters are conventionally never reset; Swap exists for the
// experiment-harness pattern of measuring a delta by zeroing a tally
// (blas.ResetFlops). Scrape-based consumers should treat a decrease as a
// counter restart, exactly as Prometheus does.
func (c *Counter) Swap(v uint64) uint64 { return c.v.Swap(v) }

// Counter returns the registered counter for name, creating it on first
// use.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, kindCounter, "", nil)
	return f.with("", func() any { return new(Counter) }).(*Counter)
}

// CounterVec is a family of counters keyed by the values of one or more
// labels.
type CounterVec struct {
	f *family
}

// CounterVec returns the registered counter family for name with the
// given label keys, creating it on first use. Multiple keys form a
// multi-label family; With then takes one value per key, in the same
// order. Label keys and values of multi-label families must not contain
// commas (the internal series key joins on them).
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, kindCounter, joinLabels("CounterVec", labels), nil)}
}

// With returns the counter for one label-value tuple, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.with(strings.Join(values, ","), func() any { return new(Counter) }).(*Counter)
}

// joinLabels validates and joins a vec family's label keys into the
// family's single label-key string.
func joinLabels(kind string, labels []string) string {
	if len(labels) == 0 {
		panic("obs: " + kind + " requires a label key")
	}
	for _, l := range labels {
		if l == "" || strings.Contains(l, ",") {
			panic(fmt.Sprintf("obs: %s label key %q invalid (empty or contains a comma)", kind, l))
		}
	}
	return strings.Join(labels, ",")
}

// Values snapshots every series of the family as labelValue -> count.
func (v *CounterVec) Values() map[string]uint64 {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	out := make(map[string]uint64, len(v.f.series))
	for val, m := range v.f.series {
		out[val] = m.(*Counter).Value()
	}
	return out
}

// Gauge is an int64 metric that can go up and down (queue depths, entry
// counts). All methods are single atomic operations.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add increments (or, negative n, decrements) the gauge.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Gauge returns the registered gauge for name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, kindGauge, "", nil)
	return f.with("", func() any { return new(Gauge) }).(*Gauge)
}

// FloatGauge is a float64 metric that can go up and down, for fractional
// instantaneous values (utilizations, ratios) that the integer Gauge
// cannot carry. All methods are single atomic operations on the float's
// bit pattern.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current gauge value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// FloatGauge returns the registered float gauge for name, creating it on
// first use.
func (r *Registry) FloatGauge(name, help string) *FloatGauge {
	f := r.family(name, help, kindGauge, "", nil)
	return f.with("", func() any { return new(FloatGauge) }).(*FloatGauge)
}

// FloatGaugeVec is a family of float gauges keyed by the value of one
// label.
type FloatGaugeVec struct {
	f *family
}

// FloatGaugeVec returns the registered float-gauge family for name with
// the given label key, creating it on first use.
func (r *Registry) FloatGaugeVec(name, help, label string) *FloatGaugeVec {
	if label == "" {
		panic("obs: FloatGaugeVec requires a label key")
	}
	return &FloatGaugeVec{f: r.family(name, help, kindGauge, label, nil)}
}

// With returns the gauge for one label value, creating it on first use.
func (v *FloatGaugeVec) With(value string) *FloatGauge {
	return v.f.with(value, func() any { return new(FloatGauge) }).(*FloatGauge)
}

// Histogram returns the registered histogram for name, creating it on
// first use with the given bucket upper bounds (nil selects DefBuckets).
// Buckets are fixed at first registration; later callers inherit them.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.family(name, help, kindHistogram, "", normBuckets(buckets))
	return f.with("", func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// HistogramVec is a family of histograms keyed by the value of one label.
type HistogramVec struct {
	f *family
}

// HistogramVec returns the registered histogram family for name with the
// given label key, creating it on first use with the given bucket upper
// bounds (nil selects DefBuckets).
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	if label == "" {
		panic("obs: HistogramVec requires a label key")
	}
	return &HistogramVec{f: r.family(name, help, kindHistogram, label, normBuckets(buckets))}
}

// With returns the histogram for one label value, creating it on first
// use.
func (v *HistogramVec) With(value string) *Histogram {
	return v.f.with(value, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

// Key renders the snapshot/exposition key of one series: the bare name
// for unlabeled metrics, name{label="value"} for labeled ones (with the
// value escaped by the Prometheus rules). A multi-label family stores its
// keys and values comma-joined; Key zips them back into the standard
// name{k1="v1",k2="v2"} form.
func Key(name, label, value string) string {
	if label == "" {
		return name
	}
	labels := strings.Split(label, ",")
	if len(labels) == 1 {
		return name + `{` + label + `="` + escapeLabelValue(value) + `"}`
	}
	values := strings.SplitN(value, ",", len(labels))
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(v))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the Prometheus text-format escaping for label
// values: backslash, double-quote, and line-feed.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp applies the Prometheus text-format escaping for HELP lines:
// backslash and line-feed (quotes are legal there).
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// sortedFamilies returns the registry's families ordered by name, for
// deterministic exposition.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedSeries returns one family's (labelValue, metric) pairs ordered by
// label value.
func (f *family) sortedSeries() ([]string, []any) {
	f.mu.Lock()
	vals := append([]string(nil), f.order...)
	sort.Strings(vals)
	ms := make([]any, len(vals))
	for i, v := range vals {
		ms[i] = f.series[v]
	}
	f.mu.Unlock()
	return vals, ms
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, one # HELP / # TYPE
// header per family, histograms expanded into cumulative _bucket series
// plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		vals, ms := f.sortedSeries()
		for i, val := range vals {
			var err error
			switch m := ms[i].(type) {
			case *Counter:
				_, err = fmt.Fprintf(w, "%s %d\n", Key(f.name, f.label, val), m.Value())
			case *Gauge:
				_, err = fmt.Fprintf(w, "%s %d\n", Key(f.name, f.label, val), m.Value())
			case *FloatGauge:
				_, err = fmt.Fprintf(w, "%s %g\n", Key(f.name, f.label, val), m.Value())
			case *Histogram:
				err = m.writePrometheus(w, f.name, f.label, val)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON writes the registry's Snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Snapshot captures every series' current value, keyed by Key(name,
// label, value). Snapshots are plain data: JSON-serializable, diffable
// with Diff, and safe to retain after the registry moves on.
type Snapshot struct {
	// Counters holds every counter series' value.
	Counters map[string]uint64 `json:"counters,omitempty"`
	// Gauges holds every gauge series' value.
	Gauges map[string]int64 `json:"gauges,omitempty"`
	// FloatGauges holds every float-gauge series' value.
	FloatGauges map[string]float64 `json:"float_gauges,omitempty"`
	// Histograms holds every histogram series' state.
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the current value of every registered series.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:    make(map[string]uint64),
		Gauges:      make(map[string]int64),
		FloatGauges: make(map[string]float64),
		Histograms:  make(map[string]HistogramSnapshot),
	}
	for _, f := range r.sortedFamilies() {
		vals, ms := f.sortedSeries()
		for i, val := range vals {
			key := Key(f.name, f.label, val)
			switch m := ms[i].(type) {
			case *Counter:
				s.Counters[key] = m.Value()
			case *Gauge:
				s.Gauges[key] = m.Value()
			case *FloatGauge:
				s.FloatGauges[key] = m.Value()
			case *Histogram:
				s.Histograms[key] = m.snapshot()
			}
		}
	}
	return s
}

// Diff returns the change from base to s: counter and histogram series
// are subtracted (series absent from base count from zero; series that
// shrank — a Swap reset — clamp at zero), gauges keep s's current value
// (a gauge delta has no meaning). Taking a Snapshot before and after a
// region of interest and diffing yields exactly the work done in between.
func (s Snapshot) Diff(base Snapshot) Snapshot {
	out := Snapshot{
		Counters:    make(map[string]uint64, len(s.Counters)),
		Gauges:      make(map[string]int64, len(s.Gauges)),
		FloatGauges: make(map[string]float64, len(s.FloatGauges)),
		Histograms:  make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for k, v := range s.Counters {
		if b := base.Counters[k]; v >= b {
			out.Counters[k] = v - b
		}
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range s.FloatGauges {
		out.FloatGauges[k] = v
	}
	for k, h := range s.Histograms {
		out.Histograms[k] = h.diff(base.Histograms[k])
	}
	return out
}

// CounterValue returns the counter series under the exact key (see Key),
// zero when absent.
func (s Snapshot) CounterValue(key string) uint64 { return s.Counters[key] }
