package obs

import (
	"math"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.0001, 50, 99.999, 100, 101, 1e9} {
		h.Observe(v)
	}
	s := h.snapshot()
	// Upper bounds are inclusive (Prometheus le semantics): 1 lands in the
	// first bucket, 100 in the third, everything above in +Inf.
	want := []uint64{2, 1, 3, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
	if got := s.Sum; math.Abs(got-(0.5+1+1.0001+50+99.999+100+101+1e9)) > 1e-6 {
		t.Fatalf("sum = %g", got)
	}
	if m := s.Mean(); m <= 0 {
		t.Fatalf("mean = %g", m)
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	h := newHistogram([]float64{0, 1})
	h.Observe(-5) // below every bound → first bucket (le="0")
	h.Observe(0)
	h.Observe(math.Inf(1)) // +Inf → overflow bucket
	s := h.snapshot()
	if s.Counts[0] != 2 || s.Counts[2] != 1 {
		t.Fatalf("counts = %v", s.Counts)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v", b)
		}
	}
	if n := len(DefBuckets()); n != 13 {
		t.Fatalf("DefBuckets size = %d", n)
	}
	if !sortedStrict(DefBuckets()) || !sortedStrict(PhaseBuckets()) {
		t.Fatal("default bucket sets must be strictly increasing")
	}
}

func sortedStrict(b []float64) bool {
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			return false
		}
	}
	return true
}

func TestBadBucketsPanic(t *testing.T) {
	for _, bad := range [][]float64{{2, 1}, {1, 1}, {1, math.Inf(1)}, {math.NaN()}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("buckets %v must panic", bad)
				}
			}()
			normBuckets(bad)
		}()
	}
}

func TestEmptyHistogramSnapshot(t *testing.T) {
	h := newHistogram(DefBuckets())
	s := h.snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Mean() != 0 {
		t.Fatalf("empty histogram snapshot: %+v", s)
	}
	// Diffing against a zero-value base must be the identity.
	h.Observe(1)
	d := h.snapshot().diff(HistogramSnapshot{})
	if d.Count != 1 || d.Sum != 1 {
		t.Fatalf("diff vs zero base: %+v", d)
	}
}
