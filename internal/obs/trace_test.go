package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	tr.Add(Span{Name: "x"})
	tr.WallSpan("v", PhaseVerify, time.Now(), time.Millisecond)
	tr.SimSpan("gemm", "kernel", "GPU0", 1, 0.5, nil)
	if tr.Len() != 0 || tr.Spans() != nil {
		t.Fatal("nil trace must record nothing")
	}
	var b bytes.Buffer
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatalf("nil trace must still export: %v", err)
	}
}

func TestWallAndSimSpans(t *testing.T) {
	tr := NewTrace()
	start := time.Now()
	tr.WallSpan("verify", PhaseVerify, start, 2*time.Millisecond)
	tr.SimSpan("gemm", "kernel", "GPU0", 1.5, 0.5, map[string]float64{"flops": 1e9})
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("len = %d", len(spans))
	}
	w, s := spans[0], spans[1]
	if w.Proc != ProcWall || w.Track != "host" || w.DurUS != 2000 {
		t.Fatalf("wall span: %+v", w)
	}
	if s.Proc != ProcSim || s.StartUS != 1e6 || s.DurUS != 0.5e6 || s.Args["flops"] != 1e9 {
		t.Fatalf("sim span: %+v", s)
	}
	// A sim span whose duration exceeds its end clamps its start at zero.
	tr.SimSpan("first", "kernel", "GPU0", 0.1, 0.5, nil)
	if got := tr.Spans()[2].StartUS; got != 0 {
		t.Fatalf("clamped start = %g", got)
	}
}

// chromeSchema mirrors the trace-event JSON schema the export promises:
// a traceEvents array of events each carrying name/ph/ts/pid/tid, where
// ph is "X" (complete, with dur) or "M" (metadata).
type chromeSchema struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		TS   *float64       `json:"ts"`
		Dur  *float64       `json:"dur"`
		PID  *int           `json:"pid"`
		TID  *int           `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestChromeTraceSchema(t *testing.T) {
	tr := NewTrace()
	tr.WallSpan("encode", PhaseEncode, time.Now(), time.Millisecond)
	tr.WallSpan("verify", PhaseVerify, time.Now(), time.Millisecond)
	tr.SimSpan("gemm", "kernel", "GPU0", 2, 1, map[string]float64{"flops": 42})
	tr.SimSpan("CPU->GPU0", PhasePCIe, "PCIe", 0.5, 0.25, map[string]float64{"bytes": 512})
	var b bytes.Buffer
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var got chromeSchema
	if err := json.Unmarshal(b.Bytes(), &got); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, b.String())
	}
	if got.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", got.DisplayTimeUnit)
	}
	var complete, meta int
	pids := map[int]bool{}
	for _, ev := range got.TraceEvents {
		if ev.Name == "" || ev.PID == nil || ev.TID == nil && ev.Ph != "M" {
			t.Fatalf("event missing required fields: %+v", ev)
		}
		switch ev.Ph {
		case "X":
			complete++
			if ev.TS == nil || *ev.TS < 0 || ev.Dur == nil || *ev.Dur < 0 {
				t.Fatalf("complete event needs non-negative ts and dur: %+v", ev)
			}
			pids[*ev.PID] = true
		case "M":
			meta++
			if ev.Name != "process_name" && ev.Name != "thread_name" {
				t.Fatalf("unexpected metadata event %q", ev.Name)
			}
			if name, ok := ev.Args["name"].(string); !ok || name == "" {
				t.Fatalf("metadata event without a name arg: %+v", ev)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if complete != 4 {
		t.Fatalf("complete events = %d, want 4", complete)
	}
	// Two processes (wall + sim), each announced once, plus one thread
	// name per distinct track: host, GPU0, PCIe.
	if meta != 2+3 {
		t.Fatalf("metadata events = %d, want 5", meta)
	}
	if len(pids) != 2 {
		t.Fatalf("distinct pids = %d, want 2 (wall and sim)", len(pids))
	}
	// Complete events must be sorted by ts for readable loading.
	var last float64 = -1
	for _, ev := range got.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if *ev.TS < last {
			t.Fatal("complete events not sorted by ts")
		}
		last = *ev.TS
	}
}

func TestEmptyTraceExportsValidJSON(t *testing.T) {
	var b bytes.Buffer
	if err := NewTrace().WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(b.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if _, ok := got["traceEvents"].([]any); !ok {
		t.Fatalf("traceEvents must be an array even when empty: %s", b.String())
	}
}

func TestTraceConcurrentAdds(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.SimSpan("k", "kernel", "GPU0", float64(i), 0.5, nil)
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 8*200 {
		t.Fatalf("spans = %d, want %d", tr.Len(), 8*200)
	}
	var b bytes.Buffer
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
}
