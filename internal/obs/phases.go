package obs

import "time"

// Canonical metric names shared by the instrumented packages and their
// consumers (the server's /metrics, internal/overhead, bench_test.go).
const (
	// MetricPhaseSeconds is the phase-attribution histogram family
	// (label "phase", values Phases, unit seconds; the pcie phase is on
	// the simulated clock).
	MetricPhaseSeconds = "ftla_phase_seconds"
	// MetricBlasFlops is the process-wide flop tally maintained by
	// internal/blas.
	MetricBlasFlops = "ftla_blas_flops_total"
	// MetricPCIeBytes is the total simulated PCIe traffic in bytes.
	MetricPCIeBytes = "ftla_pcie_bytes_total"
	// MetricPCIeTransfers counts simulated PCIe transfers.
	MetricPCIeTransfers = "ftla_pcie_transfers_total"
	// MetricChecksumEncodes counts checksum-encoding kernel invocations
	// (label "kernel": gemm or opt).
	MetricChecksumEncodes = "ftla_checksum_encodes_total"
	// MetricChecksumMismatches counts checksum verification mismatches
	// (detected error locations, pre-recovery).
	MetricChecksumMismatches = "ftla_checksum_mismatches_total"
	// MetricFactorizations counts completed factorization runs (label
	// "decomp": cholesky, lu, qr).
	MetricFactorizations = "ftla_factorizations_total"
	// MetricCheckpoints counts verified-state checkpoints taken by the
	// step runtime (Options.CheckpointEvery > 0).
	MetricCheckpoints = "ftla_checkpoints_total"
	// MetricRollbacks counts mid-run rollbacks to the last checkpoint
	// (uncorrectable corruption replayed instead of aborting).
	MetricRollbacks = "ftla_rollbacks_total"
	// MetricRollbackDepth is the histogram of rollback depth: how many
	// ladder steps a rollback discarded (distance from the failing step
	// back to the checkpointed one, in steps).
	MetricRollbackDepth = "ftla_rollback_depth_steps"
	// MetricRebalances counts applied work repartitionings: rebalance
	// rounds that migrated at least one trailing block column between
	// GPUs (Options.Rebalance.Every > 0).
	MetricRebalances = "ftla_rebalance_total"
	// MetricRebalanceMoved counts block columns migrated between GPUs by
	// the rebalancer, checksum strips riding along.
	MetricRebalanceMoved = "ftla_rebalance_moved_columns"
	// MetricDeviceShare is the per-device gauge family (label "device") of
	// each GPU's share of the remaining trailing block columns as of the
	// latest rebalance decision, in [0, 1].
	MetricDeviceShare = "ftla_device_share"
	// MetricTransferRetransmits counts PCIe retransmissions issued by the
	// reliable-transfer protocol after a detected drop or checksum
	// mismatch.
	MetricTransferRetransmits = "ftla_transfer_retransmits_total"
	// MetricLinkFaults counts armed link faults that fired (label "mode":
	// corrupt, drop, flap, degrade).
	MetricLinkFaults = "ftla_link_faults_total"
	// MetricCheckpointIntegrityFailures counts checkpoints rejected at
	// resume or rollback because their content checksum no longer matched
	// (a tampered or corrupted snapshot is never replayed).
	MetricCheckpointIntegrityFailures = "ftla_checkpoint_integrity_failures_total"
	// MetricNodeLost counts whole-node losses fired by armed node fault
	// plans (label "node": the lost node's index).
	MetricNodeLost = "ftla_node_lost_total"
	// MetricReconstructions counts lost-node block columns rebuilt from
	// erasure-coded parity, with no checkpoint involved (labels "node": the
	// node whose columns were reconstructed; "spent"/"remaining": how much
	// of the configured redundancy the cluster has consumed / still holds
	// after the rebuild — remaining is the minimum surviving parity count
	// across groups).
	MetricReconstructions = "ftla_reconstructions_total"
	// MetricParityBytes counts the bytes shipped by the erasure-coded
	// redundancy layer: parity encode/refresh traffic, reconstruction
	// shipments, and migration-driven parity re-encodes. A subset of
	// MetricInternodeBytes by the placement invariant (member→parity
	// shipments cross nodes by construction).
	MetricParityBytes = "ftla_parity_bytes_total"
	// MetricRebalanceParityReencodes counts parity columns re-homed and
	// re-encoded by the rebalancer's parity-aware migration protocol (a
	// member migrated onto a node that held one of its group's parities, so
	// the parity moved to the donor's node).
	MetricRebalanceParityReencodes = "ftla_rebalance_parity_reencodes_total"
	// MetricInternodeBytes is the total simulated inter-node interconnect
	// traffic in bytes (transfers whose endpoints live on different nodes;
	// intra-node traffic stays in MetricPCIeBytes, which counts both tiers).
	MetricInternodeBytes = "ftla_internode_bytes_total"
)

// phaseHist holds the per-phase histograms of the default registry,
// pre-resolved so the hot path is map-free.
var phaseHist = func() map[string]*Histogram {
	vec := Default().HistogramVec(MetricPhaseSeconds,
		"ABFT phase attribution: seconds spent per phase (encode/factorize/verify/recover wall-clock, pcie simulated).",
		"phase", PhaseBuckets())
	m := make(map[string]*Histogram, 5)
	for _, p := range Phases() {
		m[p] = vec.With(p)
	}
	return m
}()

// PhaseBuckets returns the bucket bounds of the phase histogram: 10µs to
// ~30s, two buckets per decade — phase segments are short (one
// verification, one encode pass), so the range starts well below the
// latency default.
func PhaseBuckets() []float64 {
	return ExpBuckets(1e-5, 3.1622776601683795, 13)
}

// BatchSizeBuckets returns the bucket bounds for batch-size histograms
// (power-of-two sizes 1..128): coalescing schedulers batch in doublings,
// so exponential buckets resolve every interesting size exactly.
func BatchSizeBuckets() []float64 {
	return ExpBuckets(1, 2, 8)
}

// ObservePhase records d of work attributed to phase in the default
// registry. Unknown phases are dropped rather than minted, keeping the
// label set closed.
func ObservePhase(phase string, d time.Duration) {
	if h, ok := phaseHist[phase]; ok {
		h.Observe(d.Seconds())
	}
}

// ObservePhaseSeconds is ObservePhase for already-converted simulated
// seconds (the pcie phase advances on the simulated clock, which never
// materializes as a time.Duration).
func ObservePhaseSeconds(phase string, secs float64) {
	if h, ok := phaseHist[phase]; ok {
		h.Observe(secs)
	}
}

// PhaseSeconds returns the summed seconds attributed to phase in the
// snapshot (typically a Diff), zero when the phase never fired.
func (s Snapshot) PhaseSeconds(phase string) float64 {
	return s.Histograms[Key(MetricPhaseSeconds, "phase", phase)].Sum
}
