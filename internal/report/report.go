// Package report renders the experiment outputs — the paper's tables and
// figure series — as aligned ASCII suitable for terminals, logs, and
// EXPERIMENTS.md.
package report

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends one row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case v == 0:
		return "0"
	case av >= 0.01 && av < 1e6:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.3e", v)
	}
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if w := utf8.RuneCountInString(cell); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(t.headers)
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if n := utf8.RuneCountInString(s); n < w {
		return s + strings.Repeat(" ", w-n)
	}
	return s
}

// Series is one line of a figure: a named sequence of (x, y) points.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a reproduced paper figure: multiple series over a shared
// domain.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates a figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// Add appends a point to the named series, creating it on first use.
func (f *Figure) Add(series string, x, y float64) {
	for _, s := range f.Series {
		if s.Name == series {
			s.X = append(s.X, x)
			s.Y = append(s.Y, y)
			return
		}
	}
	f.Series = append(f.Series, &Series{Name: series, X: []float64{x}, Y: []float64{y}})
}

// Render writes the figure as a table: one row per x, one column per
// series — the same rows the paper's plots encode.
func (f *Figure) Render(w io.Writer) {
	headers := []string{f.XLabel}
	for _, s := range f.Series {
		headers = append(headers, s.Name)
	}
	t := NewTable(fmt.Sprintf("%s  (y: %s)", f.Title, f.YLabel), headers...)
	// Collect the x domain from the first series (all series share it in
	// our experiments; missing points render blank).
	if len(f.Series) == 0 {
		t.Render(w)
		return
	}
	for i, x := range f.Series[0].X {
		row := []interface{}{x}
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, s.Y[i])
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	t.Render(w)
}

// String renders the figure to a string.
func (f *Figure) String() string {
	var b strings.Builder
	f.Render(&b)
	return b.String()
}
