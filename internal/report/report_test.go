package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Title", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("long-name-entry", 1234567.0)
	out := tb.String()
	if !strings.Contains(out, "Title") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "long-name-entry") {
		t.Fatal("missing rows")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want 5:\n%s", len(lines), out)
	}
	// All table lines must have equal width (aligned columns).
	w := len(lines[1])
	for _, l := range lines[2:] {
		if len(l) != w {
			t.Fatalf("misaligned line %q", l)
		}
	}
}

func TestFloatFormatting(t *testing.T) {
	if got := formatFloat(0); got != "0" {
		t.Fatalf("formatFloat(0) = %q", got)
	}
	if got := formatFloat(0.12345); got != "0.1235" && got != "0.1234" {
		t.Fatalf("formatFloat(0.12345) = %q", got)
	}
	if !strings.Contains(formatFloat(1e-12), "e") {
		t.Fatal("tiny values should use scientific notation")
	}
}

func TestFigureSeries(t *testing.T) {
	f := NewFigure("Fig. X", "gpus", "overhead %")
	f.Add("ours", 1, 10)
	f.Add("ours", 2, 11)
	f.Add("post", 1, 14)
	f.Add("post", 2, 15)
	if len(f.Series) != 2 {
		t.Fatalf("series = %d", len(f.Series))
	}
	out := f.String()
	if !strings.Contains(out, "ours") || !strings.Contains(out, "post") {
		t.Fatal("missing series columns")
	}
	if !strings.Contains(out, "overhead %") {
		t.Fatal("missing y label")
	}
}

func TestFigureEmpty(t *testing.T) {
	f := NewFigure("empty", "x", "y")
	if out := f.String(); !strings.Contains(out, "empty") {
		t.Fatal("empty figure should still render its header")
	}
}
