package lapack

import (
	"math"
	"testing"
	"testing/quick"

	"ftla/internal/blas"
	"ftla/internal/matrix"
)

func TestPotf2Correct(t *testing.T) {
	rng := matrix.NewRNG(1)
	for _, n := range []int{1, 2, 5, 17, 40} {
		a := matrix.RandomSPD(n, rng)
		l := a.Clone()
		if err := Potf2(l); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if r := matrix.CholeskyResidual(a, l); r > 1e-12 {
			t.Fatalf("n=%d residual %g", n, r)
		}
	}
}

func TestPotf2NotPositiveDefinite(t *testing.T) {
	a := matrix.FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, −1
	if err := Potf2(a); err == nil {
		t.Fatal("expected not-positive-definite error")
	}
}

func TestPotf2PreservesUpper(t *testing.T) {
	rng := matrix.NewRNG(2)
	a := matrix.RandomSPD(6, rng)
	before := a.Clone()
	if err := Potf2(a); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			if a.At(i, j) != before.At(i, j) {
				t.Fatalf("upper triangle modified at (%d,%d)", i, j)
			}
		}
	}
}

func TestPotrfMatchesPotf2(t *testing.T) {
	rng := matrix.NewRNG(3)
	a := matrix.RandomSPD(65, rng) // not a multiple of nb
	l1 := a.Clone()
	l2 := a.Clone()
	if err := Potf2(l1); err != nil {
		t.Fatal(err)
	}
	if err := Potrf(l2, 16); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 65; i++ {
		for j := 0; j <= i; j++ {
			if math.Abs(l1.At(i, j)-l2.At(i, j)) > 1e-9 {
				t.Fatalf("blocked/unblocked mismatch at (%d,%d): %g vs %g", i, j, l1.At(i, j), l2.At(i, j))
			}
		}
	}
}

func TestGetf2Correct(t *testing.T) {
	rng := matrix.NewRNG(4)
	for _, n := range []int{1, 3, 8, 33} {
		a := matrix.Random(n, n, rng)
		lu := a.Clone()
		piv := make([]int, n)
		if err := Getf2(lu, piv); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if r := matrix.LUResidual(a, lu, piv); r > 1e-11 {
			t.Fatalf("n=%d residual %g", n, r)
		}
	}
}

func TestGetf2PicksLargestPivot(t *testing.T) {
	a := matrix.FromRows([][]float64{
		{1, 2, 3},
		{10, 5, 6},
		{4, 8, 9},
	})
	piv := make([]int, 3)
	if err := Getf2(a, piv); err != nil {
		t.Fatal(err)
	}
	if piv[0] != 1 {
		t.Fatalf("first pivot row = %d, want 1 (largest |a(i,0)|)", piv[0])
	}
	// After the swap, |L| entries must be <= 1.
	for i := 1; i < 3; i++ {
		for j := 0; j < i; j++ {
			if math.Abs(a.At(i, j)) > 1+1e-15 {
				t.Fatalf("multiplier (%d,%d) = %g exceeds 1", i, j, a.At(i, j))
			}
		}
	}
}

func TestGetf2Singular(t *testing.T) {
	a := matrix.NewDense(3, 3) // all zeros
	piv := make([]int, 3)
	if err := Getf2(a, piv); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestGetf2Rectangular(t *testing.T) {
	rng := matrix.NewRNG(5)
	// Tall panel, the shape used during panel decomposition.
	m, n := 20, 6
	a := matrix.Random(m, n, rng)
	lu := a.Clone()
	piv := make([]int, n)
	if err := Getf2(lu, piv); err != nil {
		t.Fatal(err)
	}
	// Verify P·A = L·U on the panel.
	pa := a.Clone()
	Laswp(pa, piv)
	l := matrix.NewDense(m, n)
	u := matrix.NewDense(n, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			switch {
			case i > j:
				l.Set(i, j, lu.At(i, j))
			case i == j:
				l.Set(i, j, 1)
				u.Set(i, j, lu.At(i, j))
			default:
				if i < n {
					u.Set(i, j, lu.At(i, j))
				}
			}
		}
	}
	prod := matrix.NewDense(m, n)
	blas.Gemm(false, false, 1, l, u, 0, prod)
	if !prod.EqualWithin(pa, 1e-12) {
		d, i, j := prod.MaxAbsDiff(pa)
		t.Fatalf("panel LU residual %g at (%d,%d)", d, i, j)
	}
}

func TestGetrfMatchesGetf2(t *testing.T) {
	rng := matrix.NewRNG(6)
	n := 50
	a := matrix.Random(n, n, rng)
	lu1 := a.Clone()
	piv1 := make([]int, n)
	if err := Getf2(lu1, piv1); err != nil {
		t.Fatal(err)
	}
	lu2 := a.Clone()
	piv2 := make([]int, n)
	if err := Getrf(lu2, 12, piv2); err != nil {
		t.Fatal(err)
	}
	if r := matrix.LUResidual(a, lu2, piv2); r > 1e-11 {
		t.Fatalf("blocked residual %g", r)
	}
	for k := range piv1 {
		if piv1[k] != piv2[k] {
			t.Fatalf("pivot %d differs: %d vs %d", k, piv1[k], piv2[k])
		}
	}
	if !lu1.EqualWithin(lu2, 1e-10) {
		t.Fatal("blocked and unblocked LU factors differ")
	}
}

func TestLaswpRoundTrip(t *testing.T) {
	rng := matrix.NewRNG(7)
	a := matrix.Random(6, 4, rng)
	orig := a.Clone()
	piv := []int{3, 1, 5, 3, 4, 5}
	Laswp(a, piv)
	// Undo in reverse order.
	for k := len(piv) - 1; k >= 0; k-- {
		if piv[k] != k {
			a.SwapRows(k, piv[k])
		}
	}
	if !a.Equal(orig) {
		t.Fatal("Laswp round trip failed")
	}
}

func TestGeqr2Correct(t *testing.T) {
	rng := matrix.NewRNG(8)
	for _, dims := range [][2]int{{1, 1}, {5, 5}, {12, 4}, {30, 30}, {16, 9}} {
		m, n := dims[0], dims[1]
		a := matrix.Random(m, n, rng)
		f := a.Clone()
		mn := m
		if n < mn {
			mn = n
		}
		tau := make([]float64, mn)
		Geqr2(f, tau)
		q := BuildQ(f, tau)
		r := ExtractR(f)
		if res := matrix.QRResidual(a, q, r); res > 1e-12 {
			t.Fatalf("%dx%d QR residual %g", m, n, res)
		}
		if res := matrix.OrthoResidual(q); res > 1e-12 {
			t.Fatalf("%dx%d ortho residual %g", m, n, res)
		}
	}
}

func TestGeqr2ZeroColumn(t *testing.T) {
	a := matrix.NewDense(4, 2)
	a.Set(0, 1, 1) // first column entirely zero
	tau := make([]float64, 2)
	Geqr2(a, tau)
	if tau[0] != 0 {
		t.Fatalf("tau for zero column = %g, want 0", tau[0])
	}
}

func TestLarftLarfbConsistent(t *testing.T) {
	rng := matrix.NewRNG(9)
	m, k, n := 14, 5, 7
	panel := matrix.Random(m, k, rng)
	tau := make([]float64, k)
	Geqr2(panel, tau)
	tmat := Larft(panel, tau)

	// Apply Qᵀ to C via Larfb and via one-reflector-at-a-time.
	c1 := matrix.Random(m, n, rng)
	c2 := c1.Clone()
	Larfb(true, panel, tmat, c1)
	// Reference: Qᵀ·C = H_{k−1}···H_0·C.
	for j := 0; j < k; j++ {
		if tau[j] == 0 {
			continue
		}
		v := make([]float64, m)
		v[j] = 1
		for i := j + 1; i < m; i++ {
			v[i] = panel.At(i, j)
		}
		w := make([]float64, n)
		for i := 0; i < m; i++ {
			if v[i] == 0 {
				continue
			}
			row := c2.Row(i)
			for c := 0; c < n; c++ {
				w[c] += v[i] * row[c]
			}
		}
		for i := 0; i < m; i++ {
			tv := tau[j] * v[i]
			if tv == 0 {
				continue
			}
			row := c2.Row(i)
			for c := 0; c < n; c++ {
				row[c] -= tv * w[c]
			}
		}
	}
	if !c1.EqualWithin(c2, 1e-11) {
		d, _, _ := c1.MaxAbsDiff(c2)
		t.Fatalf("Larfb vs reflector-by-reflector diff %g", d)
	}
}

func TestLarfbQThenQTIsIdentity(t *testing.T) {
	rng := matrix.NewRNG(10)
	m, k, n := 12, 4, 6
	panel := matrix.Random(m, k, rng)
	tau := make([]float64, k)
	Geqr2(panel, tau)
	tmat := Larft(panel, tau)
	c := matrix.Random(m, n, rng)
	orig := c.Clone()
	Larfb(true, panel, tmat, c)
	Larfb(false, panel, tmat, c)
	if !c.EqualWithin(orig, 1e-11) {
		t.Fatal("Q·Qᵀ·C != C")
	}
}

func TestGeqrfMatchesGeqr2(t *testing.T) {
	rng := matrix.NewRNG(11)
	m, n := 40, 28
	a := matrix.Random(m, n, rng)
	f := a.Clone()
	tau := make([]float64, n)
	Geqrf(f, 8, tau)
	q := BuildQ(f, tau)
	r := ExtractR(f)
	if res := matrix.QRResidual(a, q, r); res > 1e-12 {
		t.Fatalf("blocked QR residual %g", res)
	}
	if res := matrix.OrthoResidual(q); res > 1e-12 {
		t.Fatalf("blocked ortho residual %g", res)
	}
}

// Property: Cholesky of L·Lᵀ recovers a lower factor with positive
// diagonal and reproduces the product.
func TestCholeskyPropertyQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := matrix.NewRNG(seed)
		n := 2 + int(seed%20)
		a := matrix.RandomSPD(n, rng)
		l := a.Clone()
		if err := Potrf(l, 4+int(seed%8)); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if l.At(i, i) <= 0 {
				return false
			}
		}
		return matrix.CholeskyResidual(a, l) < 1e-11
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: LU with partial pivoting keeps all multipliers bounded by 1.
func TestLUMultiplierBoundQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := matrix.NewRNG(seed)
		n := 2 + int(seed%24)
		a := matrix.Random(n, n, rng)
		piv := make([]int, n)
		if err := Getrf(a, 5, piv); err != nil {
			return true // singular random draw: vacuously fine
		}
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				if math.Abs(a.At(i, j)) > 1+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: QR preserves column norms of A in R (|R column norm| equals
// |A column norm| since Q is orthogonal).
func TestQRNormPreservationQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := matrix.NewRNG(seed)
		m := 3 + int(seed%12)
		n := 1 + int(seed%uint64(m))
		a := matrix.Random(m, int(n), rng)
		f2 := a.Clone()
		tau := make([]float64, n)
		Geqr2(f2, tau)
		r := ExtractR(f2)
		for j := 0; j < int(n); j++ {
			na := matrix.VecNorm2(a.Col(j))
			nr := matrix.VecNorm2(r.Col(j))
			if math.Abs(na-nr) > 1e-10*(1+na) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
