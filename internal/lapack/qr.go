package lapack

import (
	"math"

	"ftla/internal/blas"
	"ftla/internal/matrix"
)

// Geqr2 computes an unblocked Householder QR factorization of the m-by-n
// panel a (m >= n expected for panel use, but m < n is handled) in place.
// On return the upper triangle holds R, the strict lower trapezoid holds
// the Householder vectors (with implicit unit leading element), and tau
// (length min(m, n)) holds the reflector coefficients:
// H_j = I − tau_j·v_j·v_jᵀ and A = H_0·H_1···H_{k−1}·R.
func Geqr2(a *matrix.Dense, tau []float64) {
	m, n := a.Rows, a.Cols
	mn := m
	if n < mn {
		mn = n
	}
	if len(tau) != mn {
		panic("lapack: Geqr2 tau has wrong length")
	}
	v := make([]float64, m)
	w := make([]float64, n)
	for j := 0; j < mn; j++ {
		tau[j] = HouseGen(a, j, v)
		if tau[j] != 0 && j+1 < n {
			HouseApply(a, j, v[:m-j], tau[j], w[:n-j-1])
		}
	}
}

// HouseGen builds the Householder reflector for column j from rows j..m of
// a. It overwrites a(j,j) with beta (the R diagonal entry), stores the tail
// of v below the diagonal, fills v[0:m-j] with the full reflector vector
// (unit leading element), and returns tau. It is exported so the
// checksum-maintaining panel factorization in internal/core (the paper's
// Algorithm 1) can reuse the exact numerics of Geqr2.
func HouseGen(a *matrix.Dense, j int, v []float64) float64 {
	m := a.Rows
	alpha := a.At(j, j)
	normx := 0.0
	{
		scale, ssq := 0.0, 1.0
		for i := j + 1; i < m; i++ {
			x := a.At(i, j)
			if x == 0 {
				continue
			}
			ax := math.Abs(x)
			if scale < ax {
				ssq = 1 + ssq*(scale/ax)*(scale/ax)
				scale = ax
			} else {
				ssq += (ax / scale) * (ax / scale)
			}
		}
		normx = scale * math.Sqrt(ssq)
	}
	if normx == 0 {
		// Column already collapsed; H = I.
		v[0] = 1
		for i := 1; i < m-j; i++ {
			v[i] = 0
		}
		return 0
	}
	beta := -math.Copysign(math.Hypot(alpha, normx), alpha)
	tau := (beta - alpha) / beta
	scale := 1 / (alpha - beta)
	v[0] = 1
	for i := j + 1; i < m; i++ {
		val := a.At(i, j) * scale
		v[i-j] = val
		a.Set(i, j, val)
	}
	a.Set(j, j, beta)
	return tau
}

// HouseApply applies H = I − tau·v·vᵀ to columns j+1..n of a, rows j..m.
// v has length m−j with v[0] == 1; w is scratch of length n−j−1 that on
// return holds u = vᵀ·A[j:m, j+1:n] — the quantity the checksum-maintaining
// panel factorization needs to update its checksum rows.
func HouseApply(a *matrix.Dense, j int, v []float64, tau float64, w []float64) {
	m, n := a.Rows, a.Cols
	// w = vᵀ · A[j:m, j+1:n]
	for c := range w {
		w[c] = 0
	}
	for i := j; i < m; i++ {
		vi := v[i-j]
		if vi == 0 {
			continue
		}
		row := a.Row(i)
		for c := j + 1; c < n; c++ {
			w[c-j-1] += vi * row[c]
		}
	}
	// A −= tau · v · wᵀ
	for i := j; i < m; i++ {
		tv := tau * v[i-j]
		if tv == 0 {
			continue
		}
		row := a.Row(i)
		for c := j + 1; c < n; c++ {
			row[c] -= tv * w[c-j-1]
		}
	}
}

// Larft forms the k-by-k upper triangular factor T of the block reflector
// Q = I − V·T·Vᵀ from the forward, column-wise reflectors stored in the
// m-by-k unit lower trapezoid v with coefficients tau.
func Larft(v *matrix.Dense, tau []float64) *matrix.Dense {
	m, k := v.Rows, v.Cols
	t := matrix.NewDense(k, k)
	for j := 0; j < k; j++ {
		t.Set(j, j, tau[j])
		if j == 0 || tau[j] == 0 {
			continue
		}
		// t[0:j, j] = −tau_j · T[0:j,0:j] · (V[:,0:j]ᵀ · v_j)
		w := make([]float64, j)
		for i := j; i < m; i++ {
			vij := vAt(v, i, j)
			if vij == 0 {
				continue
			}
			row := v.Row(i)
			for c := 0; c < j; c++ {
				w[c] += vAt2(row, i, c) * vij
			}
		}
		for c := 0; c < j; c++ {
			w[c] *= -tau[j]
		}
		// w = T[0:j,0:j] · w (T upper triangular)
		for r := 0; r < j; r++ {
			s := 0.0
			for c := r; c < j; c++ {
				s += t.At(r, c) * w[c]
			}
			t.Set(r, j, s)
		}
	}
	return t
}

// vAt reads the implicit unit-lower-trapezoid element V(i, j): 1 on the
// diagonal, 0 above, stored value below.
func vAt(v *matrix.Dense, i, j int) float64 {
	switch {
	case i == j:
		return 1
	case i < j:
		return 0
	default:
		return v.At(i, j)
	}
}

// vAt2 is vAt for a pre-fetched row slice.
func vAt2(row []float64, i, c int) float64 {
	switch {
	case i == c:
		return 1
	case i < c:
		return 0
	default:
		return row[c]
	}
}

// materializeV expands the implicit unit lower trapezoid into an explicit
// m-by-k matrix.
func materializeV(v *matrix.Dense) *matrix.Dense {
	m, k := v.Rows, v.Cols
	out := matrix.NewDense(m, k)
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			out.Set(i, j, vAt(v, i, j))
		}
	}
	return out
}

// Larfb applies the block reflector defined by (v, t) to c from the left:
//
//	trans == false: C = Q·C  = C − V·T ·Vᵀ·C
//	trans == true:  C = Qᵀ·C = C − V·Tᵀ·Vᵀ·C
//
// v is the m-by-k unit lower trapezoid of reflectors, t the k-by-k upper
// triangular factor from Larft.
func Larfb(trans bool, v, t, c *matrix.Dense) {
	LarfbP(1, trans, v, t, c)
}

// LarfbP is Larfb with the two GEMMs parallelized over `workers`
// goroutines.
func LarfbP(workers int, trans bool, v, t, c *matrix.Dense) {
	vd := materializeV(v)
	k := vd.Cols
	// W = Vᵀ·C (k×n)
	w := matrix.NewDense(k, c.Cols)
	blas.GemmP(workers, true, false, 1, vd, c, 0, w)
	// W = op(T)·W
	tw := matrix.NewDense(k, c.Cols)
	blas.Gemm(trans, false, 1, t, w, 0, tw)
	// C −= V·W
	blas.GemmP(workers, false, false, -1, vd, tw, 1, c)
}

// Geqrf computes a blocked QR factorization with block size nb, the
// unprotected single-device reference implementation. tau must have length
// min(m, n).
func Geqrf(a *matrix.Dense, nb int, tau []float64) {
	m, n := a.Rows, a.Cols
	mn := m
	if n < mn {
		mn = n
	}
	if len(tau) != mn {
		panic("lapack: Geqrf tau has wrong length")
	}
	if nb <= 0 {
		nb = 64
	}
	for j := 0; j < mn; j += nb {
		jb := nb
		if j+jb > mn {
			jb = mn - j
		}
		panel := a.View(j, j, m-j, jb)
		Geqr2(panel, tau[j:j+jb])
		if j+jb < n {
			t := Larft(panel, tau[j:j+jb])
			trail := a.View(j, j+jb, m-j, n-j-jb)
			Larfb(true, panel, t, trail)
		}
	}
}

// BuildQ materializes the explicit m-by-m orthogonal factor Q from the
// reflectors produced by Geqr2/Geqrf stored in a (m-by-n) with
// coefficients tau. Reflectors are applied in reverse to the identity:
// Q = H_0·H_1···H_{k−1}.
func BuildQ(a *matrix.Dense, tau []float64) *matrix.Dense {
	m := a.Rows
	q := matrix.NewDense(m, m)
	q.Eye()
	for j := len(tau) - 1; j >= 0; j-- {
		if tau[j] == 0 {
			continue
		}
		v := make([]float64, m-j)
		v[0] = 1
		for i := j + 1; i < m; i++ {
			v[i-j] = a.At(i, j)
		}
		// Q[j:m, :] −= tau · v · (vᵀ · Q[j:m, :])
		w := make([]float64, m)
		for i := j; i < m; i++ {
			vi := v[i-j]
			if vi == 0 {
				continue
			}
			row := q.Row(i)
			for c := 0; c < m; c++ {
				w[c] += vi * row[c]
			}
		}
		for i := j; i < m; i++ {
			tv := tau[j] * v[i-j]
			if tv == 0 {
				continue
			}
			row := q.Row(i)
			for c := 0; c < m; c++ {
				row[c] -= tv * w[c]
			}
		}
	}
	return q
}

// ExtractR copies the upper-triangular (trapezoidal) factor R out of the
// factored matrix a into a fresh m-by-n matrix.
func ExtractR(a *matrix.Dense) *matrix.Dense {
	r := matrix.NewDense(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := i; j < a.Cols; j++ {
			r.Set(i, j, a.At(i, j))
		}
	}
	return r
}

// MaterializeV exposes the explicit m-by-k reflector matrix (unit lower
// trapezoid) for callers that need V as a dense operand, such as the
// checksum-maintained trailing update in internal/core.
func MaterializeV(v *matrix.Dense) *matrix.Dense { return materializeV(v) }
