package lapack

import (
	"fmt"

	"ftla/internal/blas"
	"ftla/internal/matrix"
)

// Getf2 computes an unblocked LU factorization with partial pivoting of the
// m-by-n panel a in place: A = P·L·U with L unit lower triangular. piv must
// have length min(m, n); on return piv[k] is the (view-relative) row index
// swapped with row k at elimination step k.
func Getf2(a *matrix.Dense, piv []int) error {
	m, n := a.Rows, a.Cols
	mn := m
	if n < mn {
		mn = n
	}
	if len(piv) != mn {
		panic("lapack: Getf2 pivot slice has wrong length")
	}
	for k := 0; k < mn; k++ {
		p := blas.IamaxCol(a, k, k)
		piv[k] = p
		if a.At(p, k) == 0 {
			return fmt.Errorf("lapack: matrix is singular at column %d", k)
		}
		if p != k {
			a.SwapRows(k, p)
		}
		pivot := a.At(k, k)
		for i := k + 1; i < m; i++ {
			l := a.At(i, k) / pivot
			a.Set(i, k, l)
			rowi := a.Row(i)
			rowk := a.Row(k)
			for j := k + 1; j < n; j++ {
				rowi[j] -= l * rowk[j]
			}
		}
	}
	return nil
}

// Laswp applies the row interchanges piv (as produced by Getf2 over rows
// [0, len(piv))) to a, forward order.
func Laswp(a *matrix.Dense, piv []int) {
	for k, p := range piv {
		if p != k {
			a.SwapRows(k, p)
		}
	}
}

// Getrf computes a blocked LU factorization with partial pivoting in place
// with block size nb. piv must have length min(m, n) and receives global
// (view-relative) pivot rows. It is the unprotected single-device reference
// implementation.
func Getrf(a *matrix.Dense, nb int, piv []int) error {
	m, n := a.Rows, a.Cols
	mn := m
	if n < mn {
		mn = n
	}
	if len(piv) != mn {
		panic("lapack: Getrf pivot slice has wrong length")
	}
	if nb <= 0 {
		nb = 64
	}
	for j := 0; j < mn; j += nb {
		jb := nb
		if j+jb > mn {
			jb = mn - j
		}
		panel := a.View(j, j, m-j, jb)
		pp := make([]int, jb)
		if err := Getf2(panel, pp); err != nil {
			return fmt.Errorf("panel at %d: %w", j, err)
		}
		// Record global pivots and apply the interchanges to the columns
		// outside the panel.
		left := a.View(j, 0, m-j, j)
		var right *matrix.Dense
		if j+jb < n {
			right = a.View(j, j+jb, m-j, n-j-jb)
		}
		for k, p := range pp {
			piv[j+k] = p + j
			if p != k {
				left.SwapRows(k, p)
				if right != nil {
					right.SwapRows(k, p)
				}
			}
		}
		if j+jb < n {
			// U12 = L11⁻¹ · A12
			l11 := a.View(j, j, jb, jb)
			a12 := a.View(j, j+jb, jb, n-j-jb)
			blas.Trsm(blas.Left, true, false, true, 1, l11, a12)
			if j+jb < m {
				// A22 −= L21 · U12
				l21 := a.View(j+jb, j, m-j-jb, jb)
				a22 := a.View(j+jb, j+jb, m-j-jb, n-j-jb)
				blas.Gemm(false, false, -1, l21, a12, 1, a22)
			}
		}
	}
	return nil
}
