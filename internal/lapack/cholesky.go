// Package lapack implements the unblocked panel kernels (POTF2, GETF2,
// GEQR2, LARFT, LARFB, LASWP) that the blocked, checksum-protected
// factorizations in internal/core are built from, plus reference blocked
// drivers used as unprotected baselines in tests and benchmarks.
package lapack

import (
	"fmt"
	"math"

	"ftla/internal/blas"
	"ftla/internal/matrix"
)

// Potf2 computes the unblocked lower Cholesky factorization A = L·Lᵀ in
// place: on return the lower triangle of a holds L and the strict upper
// triangle is untouched. It returns an error if a is not positive
// definite.
func Potf2(a *matrix.Dense) error {
	n := a.Rows
	if a.Cols != n {
		panic("lapack: Potf2 matrix not square")
	}
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		rowj := a.Row(j)
		for k := 0; k < j; k++ {
			d -= rowj[k] * rowj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("lapack: matrix not positive definite at column %d (pivot %g)", j, d)
		}
		d = math.Sqrt(d)
		a.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			rowi := a.Row(i)
			for k := 0; k < j; k++ {
				s -= rowi[k] * rowj[k]
			}
			a.Set(i, j, s/d)
		}
	}
	return nil
}

// Potrf computes a blocked lower Cholesky factorization in place with block
// size nb. It is the unprotected single-device reference implementation.
func Potrf(a *matrix.Dense, nb int) error {
	n := a.Rows
	if a.Cols != n {
		panic("lapack: Potrf matrix not square")
	}
	if nb <= 0 {
		nb = 64
	}
	for j := 0; j < n; j += nb {
		jb := nb
		if j+jb > n {
			jb = n - j
		}
		a11 := a.View(j, j, jb, jb)
		if err := Potf2(a11); err != nil {
			return err
		}
		if j+jb < n {
			rest := n - j - jb
			a21 := a.View(j+jb, j, rest, jb)
			// A21 = A21 · L11⁻ᵀ
			blas.Trsm(blas.Right, true, true, false, 1, a11, a21)
			// A22 = A22 − A21·A21ᵀ (lower triangle only)
			a22 := a.View(j+jb, j+jb, rest, rest)
			blas.Syrk(true, false, -1, a21, 1, a22)
		}
	}
	return nil
}
