package campaign

import (
	"testing"

	"ftla/internal/core"
)

func findRow(t *testing.T, rows []Row, caseName, approach string) Row {
	t.Helper()
	for _, r := range rows {
		if r.Case == caseName && r.Approach == approach {
			return r
		}
	}
	t.Fatalf("row %s/%s not found", caseName, approach)
	return Row{}
}

func TestLUCampaignTableVIII(t *testing.T) {
	cfg := DefaultConfig(LU)
	rows, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != (len(Approaches())+1)*len(Cases(LU, cfg.Iteration)) {
		t.Fatalf("rows = %d", len(rows))
	}

	// Headline reproduction targets from Table VIII:
	// (1) full+new tolerates every injected fault kind.
	for _, c := range Cases(LU, cfg.Iteration) {
		r := findRow(t, rows, c.Name, "full+new")
		if !r.Fired {
			t.Errorf("full+new %s: fault did not fire", c.Name)
			continue
		}
		if r.Outcome == core.CorruptedResult || r.Outcome == core.DetectedCorrupt {
			t.Errorf("full+new %s: outcome %v (residual %g)", c.Name, r.Outcome, r.Residual)
		}
	}

	// (2) single-side checksums fail on PU faults (lack of protection on
	// the updated panel).
	rr := findRow(t, rows, "comp/PU", "single+post")
	if rr.Outcome != core.CorruptedResult {
		t.Errorf("single+post comp/PU: outcome %v, want silent corruption", rr.Outcome)
	}

	// (3) the new scheme fixes PCIe faults without local restart and with
	// < 1%-class recovery overhead.
	pc := findRow(t, rows, "pcie/PD-bcast", "full+new")
	if pc.Outcome != core.ABFTFixed {
		t.Errorf("full+new pcie: outcome %v, want abft-fixed", pc.Outcome)
	}
	if pc.RecoveryPct > 5 {
		t.Errorf("full+new pcie recovery %.2f%% too high", pc.RecoveryPct)
	}

	// (4) every fault fires under every approach (the injector timing
	// points exist in all schemes).
	for _, r := range rows {
		if !r.Fired {
			t.Errorf("%s under %s never fired", r.Case, r.Approach)
		}
	}
}

func TestCholeskyCampaignNewSchemeSurvivesAll(t *testing.T) {
	cfg := DefaultConfig(Cholesky)
	cfg.N = 128
	rows, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Approach != "full+new" {
			continue
		}
		if r.Fired && (r.Outcome == core.CorruptedResult || r.Outcome == core.DetectedCorrupt) {
			t.Errorf("full+new %s: outcome %v (residual %g)", r.Case, r.Outcome, r.Residual)
		}
	}
}

func TestQRCampaignNewSchemeSurvivesAll(t *testing.T) {
	cfg := DefaultConfig(QR)
	cfg.N = 128
	rows, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Approach != "full+new" {
			continue
		}
		if r.Case == "onchip/TMU/ref" {
			// Documented limitation (DESIGN.md): a consistent on-chip
			// corruption of V during QR's blocked TMU evades the checksum
			// relation; the paper's campaign covers LU only.
			continue
		}
		if r.Fired && (r.Outcome == core.CorruptedResult || r.Outcome == core.DetectedCorrupt) {
			t.Errorf("full+new %s: outcome %v (residual %g)", r.Case, r.Outcome, r.Residual)
		}
	}
}

func TestOfflineBaselineDetectsEverything(t *testing.T) {
	cfg := DefaultConfig(LU)
	cfg.N = 128
	rows, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Approach != "offline[34]" || !r.Fired {
			continue
		}
		// Offline ABFT detects any corruption of the final factors but can
		// never repair: a corrupted result must be flagged (never a silent
		// N), and nothing is ever fixed online.
		if r.Outcome == core.CorruptedResult {
			t.Errorf("offline missed %s (residual %g)", r.Case, r.Residual)
		}
		if r.Outcome == core.ABFTFixed || r.Outcome == core.LocalRestarted {
			t.Errorf("offline cannot repair, yet %s reported %v", r.Case, r.Outcome)
		}
	}
}

func TestVerdictNotation(t *testing.T) {
	if (Row{Fired: false}).Verdict() != "-" {
		t.Fatal("unfired verdict")
	}
	if (Row{Fired: true, Outcome: core.ABFTFixed, RecoveryPct: 0.5}).Verdict() != "Y" {
		t.Fatal("cheap fix should be Y")
	}
	if (Row{Fired: true, Outcome: core.ABFTFixed, RecoveryPct: 3}).Verdict() != "Y*" {
		t.Fatal("costly fix should be Y*")
	}
	if (Row{Fired: true, Outcome: core.LocalRestarted}).Verdict() != "R" {
		t.Fatal("restart should be R")
	}
	if (Row{Fired: true, Outcome: core.CorruptedResult}).Verdict() != "N" {
		t.Fatal("silent corruption should be N")
	}
}

// TestFullNewExactVerdicts pins the exact Table VIII column of the paper's
// approach as a regression oracle: memory and communication faults are
// repaired in place, while 2-D-propagating faults inside PD/PU end in a
// local in-memory restart.
func TestFullNewExactVerdicts(t *testing.T) {
	want := map[string]core.Outcome{
		"dram/PD/update":  core.ABFTFixed,
		"dram/PU/ref":     core.ABFTFixed,
		"dram/PU/update":  core.ABFTFixed,
		"dram/TMU/ref":    core.ABFTFixed,
		"dram/TMU/ref2":   core.ABFTFixed,
		"dram/TMU/update": core.ABFTFixed,
		"onchip/PD":       core.LocalRestarted,
		"onchip/PU/ref":   core.LocalRestarted,
		"onchip/TMU/ref":  core.ABFTFixed,
		"pcie/PD-bcast":   core.ABFTFixed,
		"comp/PD":         core.LocalRestarted,
		"comp/PU":         core.ABFTFixed,
		"comp/TMU":        core.ABFTFixed,
	}
	rows, err := Run(DefaultConfig(LU))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Approach != "full+new" {
			continue
		}
		expect, ok := want[r.Case]
		if !ok {
			t.Errorf("unexpected case %q — update the oracle", r.Case)
			continue
		}
		if r.Outcome != expect {
			t.Errorf("full+new %s: outcome %v, want %v (residual %g)", r.Case, r.Outcome, expect, r.Residual)
		}
	}
}
