// Package campaign drives the paper's protection-strength evaluation
// (§X.A, Table VIII): every fault kind of the §V fault model is injected,
// one per run, into each update operation and operand part of a protected
// decomposition, under each of the four compared ABFT configurations, and
// the run outcome is classified by an end-to-end residual check.
package campaign

import (
	"fmt"

	"ftla/internal/checksum"
	"ftla/internal/core"
	"ftla/internal/fault"
	"ftla/internal/hetsim"
	"ftla/internal/lapack"
	"ftla/internal/matrix"
)

// Decomp selects the factorization under test.
type Decomp int

// Decompositions.
const (
	LU Decomp = iota
	Cholesky
	QR
)

func (d Decomp) String() string {
	switch d {
	case LU:
		return "LU"
	case Cholesky:
		return "Cholesky"
	default:
		return "QR"
	}
}

// Approach is one compared ABFT configuration.
type Approach struct {
	Name   string
	Mode   core.Mode
	Scheme core.Scheme
}

// Approaches returns the four configurations of Table VIII in paper
// order: single-side checksum with prior-operation check [11], single-side
// with post-operation check [31][32], full checksum with post-operation
// check [13], and full checksum with the paper's new checking scheme.
func Approaches() []Approach {
	return []Approach{
		{Name: "single+prior", Mode: core.SingleSide, Scheme: core.PriorOp},
		{Name: "single+post", Mode: core.SingleSide, Scheme: core.PostOp},
		{Name: "full+post", Mode: core.Full, Scheme: core.PostOp},
		{Name: "full+new", Mode: core.Full, Scheme: core.NewScheme},
	}
}

// Case is one fault-injection scenario.
type Case struct {
	Name string
	Spec fault.Spec
}

// Cases returns the Table VIII scenario list for a decomposition:
// DRAM faults between operations (⊖) per op and part, on-chip faults
// during operations (⊕) on reference parts, PCIe faults (⊗) on the panel
// broadcasts, and computation faults (⊠) per op.
func Cases(d Decomp, iteration int) []Case {
	var out []Case
	add := func(name string, s fault.Spec) {
		s.Iteration = iteration
		out = append(out, Case{Name: name, Spec: s})
	}
	add("dram/PD/update", fault.Spec{Kind: fault.OffChipMemory, Op: fault.PD, Part: fault.UpdatePart})
	// PU reference faults target a strictly-lower element of L11 so the
	// triangular solve is guaranteed to consume the corrupted value.
	add("dram/PU/ref", fault.Spec{Kind: fault.OffChipMemory, Op: fault.PU, Part: fault.ReferencePart, Row: 15, Col: 0})
	add("dram/PU/update", fault.Spec{Kind: fault.OffChipMemory, Op: fault.PU, Part: fault.UpdatePart})
	add("dram/TMU/ref", fault.Spec{Kind: fault.OffChipMemory, Op: fault.TMU, Part: fault.ReferencePart})
	if d == LU {
		// LU's TMU has a second reference panel: the U12 row panel
		// (RefIndex 1); a fault there contaminates a trailing column.
		add("dram/TMU/ref2", fault.Spec{Kind: fault.OffChipMemory, Op: fault.TMU, Part: fault.ReferencePart, RefIndex: 1})
	}
	add("dram/TMU/update", fault.Spec{Kind: fault.OffChipMemory, Op: fault.TMU, Part: fault.UpdatePart})
	add("onchip/PD", fault.Spec{Kind: fault.OnChipMemory, Op: fault.PD, Part: fault.UpdatePart})
	add("onchip/PU/ref", fault.Spec{Kind: fault.OnChipMemory, Op: fault.PU, Part: fault.ReferencePart, Row: 15, Col: 0})
	add("onchip/TMU/ref", fault.Spec{Kind: fault.OnChipMemory, Op: fault.TMU, Part: fault.ReferencePart})
	add("pcie/PD-bcast", fault.Spec{Kind: fault.Communication, Op: fault.PD, GPUTarget: 1})
	if d == Cholesky {
		add("pcie/PU-bcast", fault.Spec{Kind: fault.Communication, Op: fault.PU, GPUTarget: 1})
	}
	add("comp/PD", fault.Spec{Kind: fault.Computation, Op: fault.PD})
	if d != QR {
		add("comp/PU", fault.Spec{Kind: fault.Computation, Op: fault.PU})
	}
	add("comp/TMU", fault.Spec{Kind: fault.Computation, Op: fault.TMU})
	if d == QR {
		add("comp/CTF", fault.Spec{Kind: fault.Computation, Op: fault.CTF})
	}
	return out
}

// Row is one measured cell of Table VIII.
type Row struct {
	Case        string
	Approach    string
	Outcome     core.Outcome
	Fired       bool    // the scheduled fault actually struck
	RecoveryPct float64 // recovery time / total wall time × 100
	Residual    float64
}

// Verdict renders the paper's Y / Y* / R / N notation.
func (r Row) Verdict() string {
	if !r.Fired {
		return "-"
	}
	switch r.Outcome {
	case core.FaultFree:
		return "Y" // repaired so cheaply no recovery accounting registered
	case core.ABFTFixed:
		if r.RecoveryPct < 1 {
			return "Y"
		}
		return "Y*"
	case core.LocalRestarted:
		return "R"
	case core.DetectedCorrupt:
		return "D" // detected but needs complete restart
	default:
		return "N"
	}
}

// Config parameterizes a campaign.
type Config struct {
	Decomp    Decomp
	N         int
	NB        int
	GPUs      int
	Iteration int // iteration struck by each fault
	Seed      uint64
	Kernel    checksum.Kernel
}

// DefaultConfig returns a laptop-scale campaign shaped like the paper's
// (which used n=10240 on 8 K80s).
func DefaultConfig(d Decomp) Config {
	return Config{Decomp: d, N: 192, NB: 16, GPUs: 2, Iteration: 1, Kernel: checksum.OptKernel, Seed: 12345}
}

// Run executes the full campaign: every approach × every fault case, one
// injected fault per execution, plus the offline Huang–Abraham baseline
// (detection at the very end, no recovery). The residual threshold
// separating correct from corrupted results is 1e-9 (clean runs land near
// 1e-14).
func Run(cfg Config) ([]Row, error) {
	rows, err := runOffline(cfg)
	if err != nil {
		return nil, err
	}
	for _, ap := range Approaches() {
		for _, c := range Cases(cfg.Decomp, cfg.Iteration) {
			inj := fault.NewInjector(cfg.Seed)
			inj.Schedule(c.Spec)
			opts := core.Options{
				NB: cfg.NB, Mode: ap.Mode, Scheme: ap.Scheme,
				Kernel: cfg.Kernel, Injector: inj,
			}
			res, resid, err := runOne(cfg, opts)
			if err != nil {
				return nil, fmt.Errorf("%s under %s: %w", c.Name, ap.Name, err)
			}
			pct := 0.0
			if res.Wall > 0 {
				pct = 100 * float64(res.RecoverT) / float64(res.Wall)
			}
			rows = append(rows, Row{
				Case:        c.Name,
				Approach:    ap.Name,
				Outcome:     res.OutcomeOf(resid < 1e-9),
				Fired:       len(inj.Events()) > 0,
				RecoveryPct: pct,
				Residual:    resid,
			})
		}
	}
	return rows, nil
}

// runOffline executes the unprotected factorization under each fault case
// with the original offline ABFT [34]: one global checksum encoded before
// the run, the factor relation verified once at the end. Detection without
// recovery: a detected corruption is a complete restart (verdict D).
func runOffline(cfg Config) ([]Row, error) {
	var rows []Row
	for _, c := range Cases(cfg.Decomp, cfg.Iteration) {
		inj := fault.NewInjector(cfg.Seed)
		inj.Schedule(c.Spec)
		opts := core.Options{NB: cfg.NB, Mode: core.NoChecksum, Scheme: core.NoCheck, Injector: inj}
		resid, detected, err := runOneOffline(cfg, opts)
		if err != nil {
			return nil, fmt.Errorf("%s under offline: %w", c.Name, err)
		}
		outcome := core.FaultFree
		switch {
		case resid >= 1e-9 && detected:
			outcome = core.DetectedCorrupt
		case resid >= 1e-9:
			outcome = core.CorruptedResult
		case detected:
			outcome = core.ABFTFixed // detected a benign deviation (shouldn't occur)
		}
		rows = append(rows, Row{
			Case: c.Name, Approach: "offline[34]",
			Outcome: outcome, Fired: len(inj.Events()) > 0,
			Residual: resid,
		})
	}
	return rows, nil
}

func runOneOffline(cfg Config, opts core.Options) (resid float64, detected bool, err error) {
	sys := hetsim.New(hetsim.DefaultConfig(cfg.GPUs))
	rng := matrix.NewRNG(cfg.Seed)
	switch cfg.Decomp {
	case Cholesky:
		a := matrix.RandomSPD(cfg.N, rng)
		chk := core.OfflineChecksum(a)
		scale := 1 + matrix.NormMax(a)
		out, _, e := core.Cholesky(sys, a, opts)
		if e != nil {
			return 0, false, e
		}
		return matrix.CholeskyResidual(a, out), !core.OfflineCheckCholesky(chk, out, scale), nil
	case QR:
		a := matrix.Random(cfg.N, cfg.N, rng)
		chk := core.OfflineChecksum(a)
		scale := 1 + matrix.NormMax(a)
		out, tau, _, e := core.QR(sys, a, opts)
		if e != nil {
			return 0, false, e
		}
		q := lapack.BuildQ(out, tau)
		return matrix.QRResidual(a, q, lapack.ExtractR(out)), !core.OfflineCheckQR(chk, out, tau, scale), nil
	default:
		a := matrix.RandomDiagDominant(cfg.N, rng)
		chk := core.OfflineChecksum(a)
		scale := 1 + matrix.NormMax(a)
		out, piv, _, e := core.LU(sys, a, opts)
		if e != nil {
			return 0, false, e
		}
		return matrix.LUResidual(a, out, piv), !core.OfflineCheckLU(chk, out, piv, scale), nil
	}
}

// runOne executes one protected factorization and returns its report and
// end-to-end residual.
func runOne(cfg Config, opts core.Options) (*core.Result, float64, error) {
	sys := hetsim.New(hetsim.DefaultConfig(cfg.GPUs))
	rng := matrix.NewRNG(cfg.Seed)
	switch cfg.Decomp {
	case Cholesky:
		a := matrix.RandomSPD(cfg.N, rng)
		out, res, err := core.Cholesky(sys, a, opts)
		if err != nil {
			return nil, 0, err
		}
		return res, matrix.CholeskyResidual(a, out), nil
	case QR:
		a := matrix.Random(cfg.N, cfg.N, rng)
		out, tau, res, err := core.QR(sys, a, opts)
		if err != nil {
			return nil, 0, err
		}
		q := lapack.BuildQ(out, tau)
		return res, matrix.QRResidual(a, q, lapack.ExtractR(out)), nil
	default:
		a := matrix.RandomDiagDominant(cfg.N, rng)
		out, piv, res, err := core.LU(sys, a, opts)
		if err != nil {
			return nil, 0, err
		}
		return res, matrix.LUResidual(a, out, piv), nil
	}
}
