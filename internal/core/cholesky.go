package core

import (
	"fmt"
	"time"

	"ftla/internal/blas"
	"ftla/internal/checksum"
	"ftla/internal/fault"
	"ftla/internal/hetsim"
	"ftla/internal/lapack"
	"ftla/internal/matrix"
	"ftla/internal/obs"
)

// Cholesky computes the protected blocked lower Cholesky factorization of
// the symmetric positive definite matrix a on the simulated heterogeneous
// system: panel decomposition on the CPU, panel update and trailing-matrix
// update on the GPUs, panels broadcast over PCIe, checksums maintained and
// verified according to opts. It returns the full gathered matrix (the
// factor L in the lower triangle) and the run report.
//
// The per-iteration dataflow matches MAGMA's hybrid right-looking Cholesky
// and the paper's Algorithm 2, expressed as ladder stages for the step
// runtime (see runtime.go):
//
//	GPU_owner → CPU   diagonal block transfer     (panelFactor)
//	CPU               PD: POTF2 on A11            (panelFactor)
//	CPU → GPU_owner   factored block writeback    (panelCommit)
//	GPU_owner         PU: L21 = A21·L11⁻ᵀ (column checksums ride the TRSM)
//	GPU_owner → all   L21 panel broadcast         (panelUpdate)
//	all GPUs          TMU: A22 −= L21·L21ᵀ (full checksums maintained via
//	                  the transposed-column-checksum trick of Fig. 2)
func Cholesky(sys *hetsim.System, a *matrix.Dense, opts Options) (lret *matrix.Dense, rret *Result, err error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("core: Cholesky requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if err := opts.Validate(a.Rows); err != nil {
		return nil, nil, err
	}
	if err := opts.ValidateTopology(sys); err != nil {
		return nil, nil, err
	}
	// A fail-stop fault (or bound-context expiry) aborts the ladder from
	// any kernel or transfer; surface it as the run's typed error. The
	// system's partial state is the caller's to Reset.
	defer func() {
		if e := hetsim.RecoverAbort(recover()); e != nil {
			lret, rret, err = nil, nil, e
		}
	}()
	n := a.Rows
	res := &Result{
		N: n, NB: opts.NB, GPUs: sys.NumGPUs(),
		Mode: opts.Mode, Scheme: opts.Scheme, Kernel: opts.Kernel,
	}
	es := newEngine("cholesky", sys, opts, res)
	start := time.Now()
	var p *protected
	if cp := opts.Resume; cp != nil {
		if err := cp.validateFor("cholesky", n, &opts); err != nil {
			return nil, nil, err
		}
		p = allocProtectedFor(es, cp)
	} else {
		p = newProtected(es, a)
	}
	l := &cholLadder{p: p, es: es, pl: planFor(opts.Scheme), step: make([]*cholStep, p.nbr)}
	if err := runLadder(es, l); err != nil {
		return nil, nil, err
	}
	out := p.gather()
	es.finishResult(start)
	return out, res, nil
}

// cholStep is the staging state a Cholesky ladder step carries between its
// stages: the pulled CPU panel from panelFactor until panelCommit writes
// it back, and the broadcast L21 stages from panelUpdate until tmuFinish
// retires them.
type cholStep struct {
	cpuPanel, cpuChk *hetsim.Buffer
	pm, cm           *matrix.Dense
	stages           []stagePair
}

// cholLadder is the Cholesky instantiation of the step-runtime ladder.
type cholLadder struct {
	p    *protected
	es   *engineSys
	pl   plan
	step []*cholStep
	err  error
}

func (l *cholLadder) steps() int         { return l.p.nbr }
func (l *cholLadder) failed() error      { return l.err }
func (l *cholLadder) layout() *protected { return l.p }
func (l *cholLadder) panelPivot(int)     {}

// checkpoint snapshots the distributed state after step next-1; Cholesky
// carries no per-step history beyond the matrix itself.
func (l *cholLadder) checkpoint(next int) *Checkpoint {
	return l.p.captureCheckpoint(next)
}

// resume restores the distributed state from cp onto the current device
// set and drops any staged per-step state, ready to replay from
// cp.NextStep.
func (l *cholLadder) resume(cp *Checkpoint) {
	l.p.restoreFrom(cp)
	l.step = make([]*cholStep, l.p.nbr)
}

// panelFactor pulls the diagonal block (and its checksum strip) to the
// CPU, verifies it, factors it with POTF2 under local-restart protection,
// and re-encodes the certified checksums. The factored block stays staged
// host-side; panelCommit owns the writeback.
func (l *cholLadder) panelFactor(k int) {
	p, es := l.p, l.es
	cpu := es.sys.CPU()
	res, pl := es.res, l.pl
	nb := p.nb
	o := k * nb
	gk := p.owner(k)
	chk := es.opts.Mode != NoChecksum
	st := &cholStep{}
	l.step[k] = st

	a11dev := p.local[gk].View(o, p.localOff(k), nb, nb)
	st.cpuPanel = cpu.Alloc(nb, nb)
	es.transfer(a11dev, st.cpuPanel)
	st.pm = st.cpuPanel.Access(cpu)
	if chk {
		st.cpuChk = cpu.Alloc(2, nb)
		es.transfer(p.colChkView(k, k, k+1), st.cpuChk)
		st.cm = st.cpuChk.Access(cpu)
	}
	pdRegs := []fault.Region{
		{Part: fault.ReferencePart, M: st.pm, Row0: o, Col0: o},
		{Part: fault.UpdatePart, M: st.pm, Row0: o, Col0: o},
	}
	es.injectMem(k, fault.PD, pdRegs)
	if pl.beforePD && chk {
		// Under Full mode the diagonal block's row-checksum pair rides
		// along, so a column left unlocalizable by a previous TMU's
		// cross-contamination can be rebuilt element-wise.
		var rowRepair func(col int) bool
		if es.opts.Mode == Full {
			cpuRowChk := cpu.Alloc(nb, 2)
			es.transfer(p.rowChkView(k, o, o+nb), cpuRowChk)
			rm := cpuRowChk.Access(cpu)
			rowRepair = func(col int) bool {
				return p.reconstructColViaRowChk(st.pm, rm, col)
			}
		}
		if out := p.verifyRepairCol(cpu.Workers(), st.pm, st.cm, rowRepair); out == repairFailed {
			res.Unrecoverable = true
		}
		res.Counter.PDBefore++
	}
	snapshot := st.pm.Clone()
	var snapChk *matrix.Dense
	if chk {
		snapChk = st.cm.Clone()
	}
	es.injectOnChip(k, fault.PD, pdRegs)
	if err := p.cholPD(es, k, st.pm, snapshot, snapChk, pl, pdRegs); err != nil {
		l.err = err
		return
	}
	if chk {
		// Certified re-encode: the stored block (L11 lower, original
		// symmetric values above) becomes the protected content.
		p.encodeColInto(cpu.Workers(), st.pm, st.cm)
	}
}

// panelCommit writes the certified factored block back to its owner GPU
// over PCIe (the §V communication window covers it) and, under schemes
// that verify after broadcast, re-checks the received copy.
func (l *cholLadder) panelCommit(k int) {
	p, es := l.p, l.es
	res, pl := es.res, l.pl
	nb := p.nb
	o := k * nb
	gk := p.owner(k)
	gdevK := es.sys.GPU(gk)
	chk := es.opts.Mode != NoChecksum
	st := l.step[k]
	if st == nil || st.cpuPanel == nil {
		return
	}

	a11dev := p.local[gk].View(o, p.localOff(k), nb, nb)
	es.withCommContext(k, fault.PD, o, o, func() {
		es.transfer(st.cpuPanel, a11dev)
		if chk {
			es.transfer(st.cpuChk, p.colChkView(k, k, k+1))
		}
	})
	if pl.afterPDBcast && chk {
		gd := a11dev.Access(gdevK)
		gc := p.colChkView(k, k, k+1).Access(gdevK)
		out := p.verifyRepairCol(gdevK.Workers(), gd, gc, nil)
		res.Counter.PDAfter++
		if out == repairFailed {
			// PCIe corrupted the writeback beyond local repair:
			// re-transfer the certified CPU copy.
			es.transfer(st.cpuPanel, a11dev)
			es.transfer(st.cpuChk, p.colChkView(k, k, k+1))
			res.Counter.Rebroadcasts++
		}
	}
	st.cpuPanel, st.cpuChk = nil, nil
}

// panelUpdate runs PU — L21 = A21·L11⁻ᵀ on the owner GPU with its
// checksum TRSM — and broadcasts the panel (plus checksums) to every GPU,
// including the §VII.C post-broadcast verification and restart paths.
func (l *cholLadder) panelUpdate(k int) {
	p, es := l.p, l.es
	sys := es.sys
	res, pl := es.res, l.pl
	nb := p.nb
	nbr := p.nbr
	n := p.n
	o := k * nb
	G := sys.NumGPUs()
	gk := p.owner(k)
	gdevK := sys.GPU(gk)
	chk := es.opts.Mode != NoChecksum
	st := l.step[k]
	m2 := n - o - nb

	a11dev := p.local[gk].View(o, p.localOff(k), nb, nb)
	pnl := p.local[gk].View(o+nb, p.localOff(k), m2, nb)
	var pnlChk *hetsim.Buffer
	if chk {
		pnlChk = p.colChk[gk].View(2*(k+1), p.localOff(k), 2*(nbr-k-1), nb)
	}
	puRegs := []fault.Region{
		{Part: fault.ReferencePart, M: a11dev.UnsafeData(), Row0: o, Col0: o},
		{Part: fault.UpdatePart, M: pnl.UnsafeData(), Row0: o + nb, Col0: o},
	}
	es.injectMem(k, fault.PU, puRegs)
	if pl.beforePU && chk {
		// Reference part first: a DRAM fault striking the factored L11
		// block between the post-broadcast check and PU would otherwise
		// corrupt the whole TRSM consistently with its checksum TRSM.
		if out := p.verifyRepairCol(gdevK.Workers(), a11dev.Access(gdevK), p.colChkView(k, k, k+1).Access(gdevK), nil); out == repairFailed {
			res.Unrecoverable = true
		}
		res.Counter.PUBefore++
		var rowRepair func(col int) bool
		if es.opts.Mode == Full {
			// View-limited on purpose: the diagonal block above this
			// view was just factored, so its row checksums are stale —
			// and Cholesky contamination of the panel column can only
			// live in the diagonal block (repaired by the beforePD
			// check) or in these rows, so the window is complete.
			rchk := p.rowChkView(k, o+nb, n).Access(gdevK)
			data := pnl.Access(gdevK)
			loff := p.localOff(k)
			rowRepair = func(col int) bool {
				ok := p.reconstructColViaRowChk(data, rchk, col)
				p.reencodeColChkCol(gk, loff+col)
				return ok
			}
		}
		if out := p.verifyRepairCol(gdevK.Workers(), pnl.Access(gdevK), pnlChk.Access(gdevK), rowRepair); out == repairFailed {
			res.Unrecoverable = true
		}
		res.Counter.PUBefore += nbr - k - 1
	}
	// Snapshot for local restart of PU.
	snapPnl := gdevK.Alloc(m2, nb)
	copyWithin(gdevK, pnl, snapPnl)
	var snapPnlChk *hetsim.Buffer
	if chk {
		snapPnlChk = gdevK.Alloc(2*(nbr-k-1), nb)
		copyWithin(gdevK, pnlChk, snapPnlChk)
	}
	es.injectOnChip(k, fault.PU, puRegs)
	runPU := func() {
		gdevK.Trsm(blas.Right, true, true, false, 1, a11dev, pnl)
		// An on-chip corruption is a transient read: the checksum TRSM
		// loads its operands independently and does not see it.
		es.restoreOnChip()
		if chk {
			gdevK.Trsm(blas.Right, true, true, false, 1, a11dev, pnlChk)
		}
	}
	runPU()
	es.injectComp(k, fault.PU, puRegs)
	if pl.afterPU && chk {
		out := p.verifyRepairCol(gdevK.Workers(), pnl.Access(gdevK), pnlChk.Access(gdevK), nil)
		res.Counter.PUAfter += nbr - k - 1
		if out == repairFailed {
			// 2-D propagation inside PU: local in-memory restart.
			copyWithin(gdevK, snapPnl, pnl)
			copyWithin(gdevK, snapPnlChk, pnlChk)
			res.Counter.LocalRestarts++
			runPU()
			if p.verifyRepairCol(gdevK.Workers(), pnl.Access(gdevK), pnlChk.Access(gdevK), nil) == repairFailed {
				res.Unrecoverable = true
			}
		}
	}

	// ------------- PU broadcast: L21 (+checksums) to all GPUs -------
	chkRows := 2 * (nbr - k - 1)
	if !chk {
		chkRows = 2 // placeholder stage, never read
	}
	st.stages = p.allocStages(m2, chkRows, nb)
	doBroadcast := func() {
		es.withCommContext(k, fault.PU, o+nb, o, func() {
			for g := 0; g < G; g++ {
				if !p.gpuLive(g) {
					continue
				}
				if g == gk {
					copyWithin(gdevK, pnl, st.stages[g].data)
					if chk {
						copyWithin(gdevK, pnlChk, st.stages[g].chk)
					}
					continue
				}
				es.transfer(pnl, st.stages[g].data)
				if chk {
					es.transfer(pnlChk, st.stages[g].chk)
				}
			}
		})
	}
	doBroadcast()
	if pl.afterPUBcast && chk {
		outs, corrupted := p.verifyStages(st.stages, &res.Counter.PUAfter, nbr-k-1)
		if live := p.liveGPUs(); corrupted == live && live > 1 {
			// Every GPU received a corrupted panel: the sender (PU) is
			// implicated — local in-memory restart of PU and a fresh
			// broadcast (§VII.C).
			copyWithin(gdevK, snapPnl, pnl)
			copyWithin(gdevK, snapPnlChk, pnlChk)
			res.Counter.LocalRestarts++
			runPU()
			doBroadcast()
		} else if corrupted > 0 {
			// Some legs corrupted: PCIe is implicated; legs repaired by
			// the ladder already, re-ship any that failed.
			p.rebroadcastFailed(pnl, pnlChk, st.stages, outs)
		}
	}
}

// tmuBegin opens the trailing update: injection windows and the scheme's
// pre-TMU verification.
func (l *cholLadder) tmuBegin(k int) {
	p, es := l.p, l.es
	res, pl := es.res, l.pl
	o := k * p.nb
	chk := es.opts.Mode != NoChecksum
	st := l.step[k]

	tmuRegs := p.cholTMURegions(k, st.stages)
	es.injectMem(k, fault.TMU, tmuRegs)
	if pl.beforeTMUPanels && chk {
		_, _ = p.verifyStages(st.stages, &res.Counter.TMUBefore, p.nbr-k-1)
	}
	if pl.beforeTMUTrailing && chk {
		worst, blocks := p.verifyTrailingCol(o+p.nb, k+1)
		res.Counter.TMUBefore += blocks
		if worst == repairFailed {
			res.Unrecoverable = true
		}
	}
	es.injectOnChip(k, fault.TMU, tmuRegs)
}

// tmuGPU applies GPU g's slice of the trailing update (kernels only; the
// look-ahead schedule may run the tmuRest slice inside a stream).
func (l *cholLadder) tmuGPU(k, g int, sel tmuSel) {
	l.p.cholTMUOnGPU(g, k, l.step[k].stages[g], sel)
}

// tmuFinish closes the trailing update: computation-fault injection,
// post-TMU verification, the §VII.B heuristic, and the periodic trailing
// check, then retires the step's staging state.
func (l *cholLadder) tmuFinish(k int) {
	p, es := l.p, l.es
	res, pl := es.res, l.pl
	o := k * p.nb
	chk := es.opts.Mode != NoChecksum
	st := l.step[k]

	tmuRegs := p.cholTMURegions(k, st.stages)
	es.injectComp(k, fault.TMU, tmuRegs)
	if pl.afterTMUTrailing && chk {
		worst, blocks := p.verifyTrailingCol(o+p.nb, k+1)
		res.Counter.TMUAfter += blocks
		if worst == repairFailed {
			res.Unrecoverable = true
		}
	}
	if pl.afterTMUHeuristic && chk {
		p.cholHeuristicAfterTMU(k, st.stages)
	}
	if es.opts.PeriodicTrailingCheck > 0 && (k+1)%es.opts.PeriodicTrailingCheck == 0 && chk {
		worst, blocks := p.verifyTrailingCol(o+p.nb, k+1)
		res.Counter.TMUAfter += blocks
		if worst == repairFailed {
			res.Unrecoverable = true
		}
	}
	l.step[k] = nil
}

// cholPD factors the diagonal block on the CPU with a one-shot local
// restart: a POTF2 failure or a factor-product checksum mismatch restores
// the snapshot and retries (injected faults fire only once, so the retry
// is clean).
func (p *protected) cholPD(es *engineSys, k int, pm, snapshot, snapChk *matrix.Dense, pl plan, regs []fault.Region) error {
	cpu := es.sys.CPU()
	for attempt := 0; ; attempt++ {
		var err error
		es.kernel(cpu, "potf2", float64(p.nb*p.nb*p.nb)/3, func(int) {
			err = lapack.Potf2(pm)
		})
		es.injectComp(k, fault.PD, regs)
		ok := err == nil
		if ok && pl.afterPDCPU && es.opts.Mode != NoChecksum {
			ok = p.cholProductCheck(pm, snapChk)
			es.res.Counter.PDAfter++
			if !ok {
				es.res.Detected = true
				es.res.Counter.DetectedErrors++
			}
		}
		if ok {
			return nil
		}
		if attempt >= 1 {
			if err != nil {
				return fmt.Errorf("core: Cholesky PD failed after local restart at block %d: %w", k, err)
			}
			es.res.Unrecoverable = true
			return nil
		}
		pm.CopyFrom(snapshot)
		es.res.Counter.LocalRestarts++
	}
}

// cholProductCheck verifies the factor-product checksum relation
// c(A11) ?= (wᵀ·L̂)·L̂ᵀ, which holds because A11 = L·Lᵀ. It detects any
// corruption of the stored factor because the right-hand side is computed
// from the stored values while the left-hand side is the maintained (and
// previously verified) checksum of the input.
func (p *protected) cholProductCheck(pm, snapChk *matrix.Dense) bool {
	defer p.es.span(obs.PhaseVerify, "chol-product-check", &p.es.res.VerifyT)()
	nb := p.nb
	// Materialize L̂ (lower triangle of the stored block).
	l := matrix.NewDense(nb, nb)
	for i := 0; i < nb; i++ {
		for j := 0; j <= i; j++ {
			l.Set(i, j, pm.At(i, j))
		}
	}
	wl := matrix.NewDense(2, nb)
	checksum.EncodeCol(checksum.OptKernel, 1, l, nb, wl)
	prod := matrix.NewDense(2, nb)
	blas.Gemm(false, true, 1, wl, l, 0, prod)
	d, _, _ := prod.MaxAbsDiff(snapChk)
	return d <= p.tol*float64(nb)
}

// cholTMURegions exposes the TMU fault-injection targets: the reference
// part is GPU0's received L21 stage; the update part is the
// diagonal-and-below portion of GPU0's first trailing block column.
func (p *protected) cholTMURegions(k int, stages []stagePair) []fault.Region {
	o := k * p.nb
	var regs []fault.Region
	if stages[0].data != nil {
		regs = append(regs, fault.Region{Part: fault.ReferencePart, M: stages[0].data.UnsafeData(), Row0: o + p.nb, Col0: o})
	}
	lb0 := p.trailStart(0, k+1)
	if lb0 < p.nloc[0] {
		bj := p.globalBlock(0, lb0)
		r0 := bj * p.nb
		regs = append(regs, fault.Region{
			Part: fault.UpdatePart,
			M:    p.local[0].View(r0, lb0*p.nb, p.n-r0, p.nb).UnsafeData(),
			Row0: r0, Col0: bj * p.nb,
		})
	}
	return regs
}

// tmuRange resolves the local block-column range [lb0, lb1) GPU g updates
// for step k under the given TMU slice selector. The look-ahead column —
// block column k+1 — is the owner's first trailing local block (and only
// that), so the split is exact: tmuLookahead ∪ tmuRest = tmuAll, disjoint.
func (p *protected) tmuRange(g, k int, sel tmuSel) (lb0, lb1 int) {
	lb0, lb1 = p.trailStart(g, k+1), p.nloc[g]
	if sel == tmuAll {
		return lb0, lb1
	}
	if g == p.owner(k+1) {
		la := p.localBlock(k + 1)
		if sel == tmuLookahead {
			return la, la + 1
		}
		return la + 1, lb1
	}
	if sel == tmuLookahead {
		return lb0, lb0 // non-owners hold no piece of the look-ahead column
	}
	return lb0, lb1
}

// cholTMUOnGPU updates GPU g's trailing block columns (restricted to the
// slice sel selects) and their full checksums: for each local block column
// bj > k,
//
//	A[bj·nb:, bj] −= L21[bj·nb:]·L21[bj blk]ᵀ
//	colChk strips  −= c(L21) strips ·L21[bj blk]ᵀ     (column checksums)
//	rowChk pairs   −= L21[bj·nb:]·(c(L21) strip bj)ᵀ  (transposed-checksum
//	                                                   trick of Fig. 2)
func (p *protected) cholTMUOnGPU(g, k int, st stagePair, sel tmuSel) {
	gdev := p.es.sys.GPU(g)
	nb := p.nb
	o := k * nb
	chk := p.es.opts.Mode != NoChecksum
	full := p.es.opts.Mode == Full
	lb0, lb1 := p.tmuRange(g, k, sel)
	for lb := lb0; lb < lb1; lb++ {
		bj := p.globalBlock(g, lb)
		r0 := bj * nb
		c := p.local[g].View(r0, lb*nb, p.n-r0, nb)
		aStage := st.data.View(r0-(o+nb), 0, p.n-r0, nb)
		bBlk := st.data.View(r0-(o+nb), 0, nb, nb)
		gdev.Gemm(false, true, -1, aStage, bBlk, 1, c)
	}
	// On-chip corruption is transient: the checksum-maintenance kernels
	// load the stage independently and see clean values.
	p.es.restoreOnChip()
	for lb := lb0; lb < lb1; lb++ {
		bj := p.globalBlock(g, lb)
		r0 := bj * nb
		aStage := st.data.View(r0-(o+nb), 0, p.n-r0, nb)
		bBlk := st.data.View(r0-(o+nb), 0, nb, nb)
		if chk {
			cc := p.colChk[g].View(2*bj, lb*nb, 2*(p.nbr-bj), nb)
			cStage := st.chk.View(2*(bj-k-1), 0, 2*(p.nbr-bj), nb)
			gdev.Gemm(false, true, -1, cStage, bBlk, 1, cc)
		}
		if full {
			rc := p.rowChk[g].View(r0, 2*lb, p.n-r0, 2)
			cStrip := st.chk.View(2*(bj-k-1), 0, 2, nb)
			gdev.Gemm(false, true, -1, aStage, cStrip, 1, rc)
		}
	}
}

// cholHeuristicAfterTMU implements the §VII.B heuristic: instead of
// verifying the trailing matrix, re-verify each GPU's L21 stage copy. A
// corrupted stage element at global row r contaminated trailing row r (and
// column r, since Cholesky uses L21 on both sides as A·Aᵀ); both are
// rebuilt from the orthogonal checksums, accounting for the second-order
// pollution the corrupted operand left in the checksum-maintenance GEMMs.
func (p *protected) cholHeuristicAfterTMU(k int, stages []stagePair) {
	G := p.es.sys.NumGPUs()
	nb := p.nb
	o := k * nb
	for g := 0; g < G; g++ {
		if stages[g].data == nil {
			continue
		}
		gdev := p.es.sys.GPU(g)
		sd := stages[g].data.Access(gdev)
		out, fixed := p.verifyRepairColReport(gdev.Workers(), sd, stages[g].chk.Access(gdev), nil)
		p.es.res.Counter.TMUAfter += p.nbr - k - 1
		if out == repairClean {
			continue
		}
		if out == repairFailed {
			p.es.res.Unrecoverable = true
			continue
		}
		for _, fe := range fixed {
			r := o + nb + fe.Row
			clean := sd.At(fe.Row, fe.Col)
			p.repairCholCross(g, k, r, clean, fe.D1)
		}
	}
}

// repairCholCross repairs the trailing damage of one corrupted L21 stage
// element on GPU g: the element sat at global row r (= column r by the
// symmetric use of L21), its repaired value is clean, and the applied
// correction was d1 (corrupt = clean − d1). Cholesky's TMU consumed the
// corrupted value on both sides of A₂₂ −= L21·L21ᵀ, so:
//
//   - trailing row r is wrong on g's local columns; the column checksums of
//     those columns are clean (their update used c(L21), the checksum
//     operand) — except column r itself, whose column-checksum update
//     consumed the corrupted element as the B-operand;
//   - trailing column r (if its block column lives on g) is wrong, and its
//     row checksums at row r are polluted (their update used the corrupted
//     A-operand);
//   - element (r, r) took the corruption twice (clean² became corrupt²).
//
// The repair therefore reconstructs row r from column checksums (skipping
// column r), reconstructs column r from row checksums (skipping row r),
// fixes (r, r) algebraically from the known corruption magnitude, and
// re-encodes the polluted checksum lines from the repaired data.
func (p *protected) repairCholCross(g, k, r int, clean, d1 float64) {
	defer p.es.span(obs.PhaseRecover, "repair-chol-cross", &p.es.res.RecoverT)()
	nb := p.nb
	gdev := p.es.sys.GPU(g)
	lb0 := p.trailStart(g, k+1)
	if lb0 >= p.nloc[g] {
		return
	}
	jlo := lb0 * nb
	cols := p.nloc[g]*nb - jlo
	bj := r / nb
	owned := p.owner(bj) == g

	data := p.local[g].View(0, jlo, p.n, cols).Access(gdev)
	chkv := p.colChk[g].View(0, jlo, 2*p.nbr, cols).Access(gdev)
	var skip []int
	lcR := -1
	if owned {
		lcR = p.localBlock(bj)*nb + r%nb - jlo // view-relative column r
		if lcR >= 0 && lcR < cols {
			skip = append(skip, lcR)
		}
	}
	p.reconstructRowViaColChk(data, chkv, r, skip...)
	p.es.res.Counter.ReconstructedLins++

	if owned && p.es.opts.Mode == Full && lcR >= 0 {
		// Column r: rebuilt from row checksums, skipping the polluted row r.
		lb := p.localBlock(bj)
		r0 := bj * nb
		cdat := p.local[g].View(r0, lb*nb, p.n-r0, nb).Access(gdev)
		rchk := p.rowChk[g].View(r0, 2*lb, p.n-r0, 2).Access(gdev)
		p.reconstructColViaRowChk(cdat, rchk, r%nb, r-r0)
		p.es.res.Counter.ReconstructedLins++
		// (r, r): the data GEMM subtracted corrupt² where clean² belonged.
		corrupt := clean - d1
		fix := corrupt*corrupt - clean*clean
		cdat.Set(r-r0, r%nb, cdat.At(r-r0, r%nb)+fix)
		// Re-encode the polluted checksum lines from the repaired data.
		p.reencodeColChkCol(g, lb*nb+r%nb)
	}
	p.reencodeRowChkRow(g, r, lb0)
}
