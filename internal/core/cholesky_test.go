package core

import (
	"testing"

	"ftla/internal/checksum"
	"ftla/internal/fault"
	"ftla/internal/hetsim"
	"ftla/internal/matrix"
)

func testSystem(gpus int) *hetsim.System {
	cfg := hetsim.DefaultConfig(gpus)
	cfg.CPUWorkers = 1
	cfg.GPUWorkers = 2
	return hetsim.New(cfg)
}

func cholOpts(mode Mode, scheme Scheme) Options {
	return Options{NB: 16, Mode: mode, Scheme: scheme, Kernel: checksum.OptKernel}
}

func runChol(t *testing.T, n, gpus int, opts Options, inj *fault.Injector) (*matrix.Dense, *matrix.Dense, *Result) {
	t.Helper()
	rng := matrix.NewRNG(uint64(n) + 7)
	a := matrix.RandomSPD(n, rng)
	opts.Injector = inj
	sys := testSystem(gpus)
	out, res, err := Cholesky(sys, a, opts)
	if err != nil {
		t.Fatalf("Cholesky failed: %v", err)
	}
	return a, out, res
}

func TestCholeskyUnprotectedCorrect(t *testing.T) {
	a, out, res := runChol(t, 64, 1, cholOpts(NoChecksum, NoCheck), nil)
	if r := matrix.CholeskyResidual(a, out); r > 1e-11 {
		t.Fatalf("residual %g", r)
	}
	if res.Detected {
		t.Fatal("unprotected run cannot detect anything")
	}
}

func TestCholeskyCleanAllSchemes(t *testing.T) {
	for _, gpus := range []int{1, 2, 3} {
		for _, tc := range []struct {
			mode   Mode
			scheme Scheme
		}{
			{SingleSide, PriorOp},
			{SingleSide, PostOp},
			{Full, PostOp},
			{Full, NewScheme},
		} {
			a, out, res := runChol(t, 96, gpus, cholOpts(tc.mode, tc.scheme), nil)
			if r := matrix.CholeskyResidual(a, out); r > 1e-11 {
				t.Fatalf("gpus=%d %v/%v residual %g", gpus, tc.mode, tc.scheme, r)
			}
			if res.Detected {
				t.Fatalf("gpus=%d %v/%v false positive: %+v", gpus, tc.mode, tc.scheme, res.Counter)
			}
			if res.OutcomeOf(true) != FaultFree {
				t.Fatalf("outcome %v, want fault-free", res.OutcomeOf(true))
			}
		}
	}
}

func TestCholeskyCountersNewVsPost(t *testing.T) {
	// The new scheme's advantage is asymptotic in b = n/NB (Table VI):
	// it eliminates the Θ(b²) trailing-matrix checks, so it wins once b
	// is past the small-matrix crossover.
	_, _, resNew := runChol(t, 256, 2, cholOpts(Full, NewScheme), nil)
	_, _, resPost := runChol(t, 256, 2, cholOpts(Full, PostOp), nil)
	_, _, resPrior := runChol(t, 256, 2, cholOpts(SingleSide, PriorOp), nil)
	if resNew.Counter.TotalChecked() >= resPost.Counter.TotalChecked() {
		t.Fatalf("new scheme checked %d blocks, post-op %d — new must check fewer",
			resNew.Counter.TotalChecked(), resPost.Counter.TotalChecked())
	}
	if resPost.Counter.TotalChecked() > resPrior.Counter.TotalChecked() {
		t.Fatalf("post-op checked %d, prior %d — prior checks at least as many",
			resPost.Counter.TotalChecked(), resPrior.Counter.TotalChecked())
	}
}

func TestCholeskyComputationFaultTMU(t *testing.T) {
	inj := fault.NewInjector(1)
	inj.Schedule(fault.Spec{Kind: fault.Computation, Op: fault.TMU, Iteration: 1})
	a, out, res := runChol(t, 96, 2, cholOpts(Full, NewScheme), inj)
	if len(inj.Events()) != 1 {
		t.Fatalf("fault did not fire: %v", inj.Events())
	}
	// A standalone TMU computation error is 0-D: the new scheme leaves it
	// for the next iteration's panel checks, which must fix it.
	if r := matrix.CholeskyResidual(a, out); r > 1e-11 {
		t.Fatalf("residual %g; result corrupted. counters=%+v events=%v", r, res.Counter, inj.Events())
	}
	if !res.Detected {
		t.Fatal("fault was never detected")
	}
}

func TestCholeskyMemoryFaultBeforePD(t *testing.T) {
	inj := fault.NewInjector(2)
	inj.Schedule(fault.Spec{Kind: fault.OffChipMemory, Op: fault.PD, Iteration: 2, Part: fault.UpdatePart})
	a, out, res := runChol(t, 96, 2, cholOpts(Full, NewScheme), inj)
	if len(inj.Events()) != 1 {
		t.Fatal("fault did not fire")
	}
	if r := matrix.CholeskyResidual(a, out); r > 1e-11 {
		t.Fatalf("residual %g; memory fault before PD not tolerated (counters=%+v)", r, res.Counter)
	}
	if !res.Detected {
		t.Fatal("memory fault undetected")
	}
	if res.OutcomeOf(true) == FaultFree {
		t.Fatal("outcome should reflect a repair")
	}
}

func TestCholeskyMemoryFaultPUUpdate(t *testing.T) {
	inj := fault.NewInjector(3)
	inj.Schedule(fault.Spec{Kind: fault.OffChipMemory, Op: fault.PU, Iteration: 0, Part: fault.UpdatePart})
	a, out, res := runChol(t, 96, 2, cholOpts(Full, NewScheme), inj)
	if r := matrix.CholeskyResidual(a, out); r > 1e-11 {
		t.Fatalf("residual %g (counters=%+v, events=%v)", r, res.Counter, inj.Events())
	}
	if !res.Detected {
		t.Fatal("PU memory fault undetected")
	}
}

func TestCholeskyComputationFaultPU(t *testing.T) {
	inj := fault.NewInjector(4)
	inj.Schedule(fault.Spec{Kind: fault.Computation, Op: fault.PU, Iteration: 1})
	a, out, res := runChol(t, 96, 2, cholOpts(Full, NewScheme), inj)
	if r := matrix.CholeskyResidual(a, out); r > 1e-11 {
		t.Fatalf("residual %g (counters=%+v)", r, res.Counter)
	}
	if !res.Detected {
		t.Fatal("PU computation fault undetected")
	}
}

func TestCholeskyComputationFaultPD(t *testing.T) {
	inj := fault.NewInjector(5)
	inj.Schedule(fault.Spec{Kind: fault.Computation, Op: fault.PD, Iteration: 1})
	a, out, res := runChol(t, 96, 2, cholOpts(Full, NewScheme), inj)
	if r := matrix.CholeskyResidual(a, out); r > 1e-11 {
		t.Fatalf("residual %g (counters=%+v)", r, res.Counter)
	}
	if res.Counter.LocalRestarts == 0 {
		t.Fatal("PD computation fault should trigger a local restart")
	}
}

func TestCholeskyCommunicationFaultPUBroadcast(t *testing.T) {
	for leg := 0; leg < 2; leg++ {
		inj := fault.NewInjector(uint64(6 + leg))
		inj.Schedule(fault.Spec{Kind: fault.Communication, Op: fault.PU, Iteration: 0, GPUTarget: leg})
		a, out, res := runChol(t, 96, 2, cholOpts(Full, NewScheme), inj)
		if len(inj.Events()) == 0 {
			// The targeted leg may be the owner's self-copy, which PCIe
			// cannot corrupt; the spec then never fires. Skip that leg.
			continue
		}
		if r := matrix.CholeskyResidual(a, out); r > 1e-11 {
			t.Fatalf("leg %d residual %g (counters=%+v)", leg, r, res.Counter)
		}
		if !res.Detected {
			t.Fatalf("leg %d comm fault undetected", leg)
		}
		if res.Counter.LocalRestarts > 0 {
			t.Fatalf("leg %d: single-leg comm error must not trigger local restart (§VII.C)", leg)
		}
	}
}

func TestCholeskyOnChipFaultTMU(t *testing.T) {
	inj := fault.NewInjector(8)
	inj.Schedule(fault.Spec{Kind: fault.OnChipMemory, Op: fault.TMU, Iteration: 0, Part: fault.ReferencePart})
	a, out, res := runChol(t, 96, 2, cholOpts(Full, NewScheme), inj)
	if len(inj.Events()) != 1 {
		t.Fatal("fault did not fire")
	}
	if r := matrix.CholeskyResidual(a, out); r > 1e-11 {
		t.Fatalf("residual %g: on-chip TMU fault not recovered (counters=%+v)", r, res.Counter)
	}
}

func TestCholeskySingleSideMissesPUBroadcastless(t *testing.T) {
	// Single-side + prior-op (the [11] configuration) must still produce
	// a correct result in the error-free case even at 1 GPU.
	a, out, _ := runChol(t, 64, 1, cholOpts(SingleSide, PriorOp), nil)
	if r := matrix.CholeskyResidual(a, out); r > 1e-11 {
		t.Fatalf("residual %g", r)
	}
}

func TestCholeskyRejectsBadOptions(t *testing.T) {
	sys := testSystem(1)
	rng := matrix.NewRNG(1)
	a := matrix.RandomSPD(10, rng) // not a multiple of NB
	if _, _, err := Cholesky(sys, a, cholOpts(Full, NewScheme)); err == nil {
		t.Fatal("expected error for n not multiple of NB")
	}
	b := matrix.Random(16, 8, rng)
	if _, _, err := Cholesky(sys, b, cholOpts(Full, NewScheme)); err == nil {
		t.Fatal("expected error for non-square input")
	}
	c := matrix.RandomSPD(32, rng)
	if _, _, err := Cholesky(sys, c, Options{NB: 16, Mode: Full, Scheme: NoCheck}); err == nil {
		t.Fatal("expected error for Full mode without scheme")
	}
}

func TestCholeskyNotPositiveDefinite(t *testing.T) {
	sys := testSystem(1)
	a := matrix.NewDense(32, 32) // all zeros: POTF2 must fail twice
	if _, _, err := Cholesky(sys, a, cholOpts(Full, NewScheme)); err == nil {
		t.Fatal("expected not-positive-definite error")
	}
}
