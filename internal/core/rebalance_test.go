package core

import (
	"fmt"
	"math"
	"testing"

	"ftla/internal/checksum"
	"ftla/internal/hetsim"
	"ftla/internal/matrix"
)

// newRebalProtected is newTestProtected with rebalancing armed, so the
// slabs are allocated at full capacity and migrateColumn has room to
// receive columns on any GPU.
func newRebalProtected(t *testing.T, n, nb, gpus int) (*protected, *matrix.Dense) {
	t.Helper()
	sys := testSystem(gpus)
	rng := matrix.NewRNG(uint64(n + nb + gpus))
	a := matrix.RandomDiagDominant(n, rng)
	opts := Options{NB: nb, Mode: Full, Scheme: NewScheme, Rebalance: Rebalance{Every: 1}}
	if err := opts.Validate(n); err != nil {
		t.Fatal(err)
	}
	es := newEngine("test", sys, opts, &Result{})
	return newProtected(es, a), a
}

// TestMigrateColumnPreservesLayout: after an arbitrary sequence of
// migrations the ownership tables stay mutually consistent, each GPU's
// block list stays sorted (the suffix invariant every range helper relies
// on), and gather reproduces the original matrix bit-for-bit.
func TestMigrateColumnPreservesLayout(t *testing.T) {
	p, a := newRebalProtected(t, 96, 16, 3)
	moves := []struct{ bj, dst int }{
		{0, 2}, {5, 0}, {3, 0}, {3, 1}, {4, 1}, {0, 0}, {2, 2},
	}
	for _, m := range moves {
		p.migrateColumn(m.bj, m.dst)
	}
	total := 0
	for g := 0; g < 3; g++ {
		total += p.nloc[g]
		if len(p.blocks[g]) != p.nloc[g] {
			t.Fatalf("GPU%d: len(blocks)=%d != nloc=%d", g, len(p.blocks[g]), p.nloc[g])
		}
		for i, bj := range p.blocks[g] {
			if i > 0 && p.blocks[g][i-1] >= bj {
				t.Fatalf("GPU%d block list not sorted: %v", g, p.blocks[g])
			}
			if p.own[bj] != g || p.loc[bj] != i {
				t.Fatalf("tables disagree for block %d: own=%d loc=%d, want %d/%d",
					bj, p.own[bj], p.loc[bj], g, i)
			}
		}
	}
	if total != p.nbr {
		t.Fatalf("nloc sums to %d, want %d", total, p.nbr)
	}
	if !p.gather().Equal(a) {
		t.Fatal("gather does not reproduce the matrix after migrations")
	}
}

// TestMigrationPreservesABFT is the protection-survives-migration contract:
// a just-migrated column's checksum strips still verify on the destination,
// and a fault injected into the migrated data is detected and corrected
// there — the strips rode along with the data, bit-exact.
func TestMigrationPreservesABFT(t *testing.T) {
	p, _ := newRebalProtected(t, 96, 16, 2)
	// Move block column 4 from GPU0 to GPU1 (and another for slab churn).
	p.migrateColumn(4, 1)
	p.migrateColumn(1, 0)
	if worst, _ := p.verifyTrailingCol(0, 0); worst != repairClean {
		t.Fatal("checksums inconsistent right after migration")
	}
	g1 := p.es.sys.GPU(1)
	data := p.local[1].Access(g1)
	want := data.Clone()
	// Corrupt one element inside the migrated column (block 4 lives at
	// local offset loc[4]*nb on GPU1 now).
	col := p.localOff(4) + 7
	data.Set(11, col, data.At(11, col)+3.5)
	worst, _ := p.verifyTrailingCol(0, 0)
	if worst != repairCorrected {
		t.Fatalf("corruption in migrated column: outcome %v, want corrected", worst)
	}
	if !p.es.res.Detected {
		t.Fatal("corruption not recorded as detected")
	}
	if !data.EqualWithin(want, 1e-10) {
		d, r, c := data.MaxAbsDiff(want)
		t.Fatalf("repair off by %g at (%d,%d)", d, r, c)
	}
	// The row checksums moved too: every row of the migrated pair verifies.
	for _, r := range []int{0, 11, 95} {
		if !p.verifyRowQuick(1, r, 0) {
			t.Fatalf("rowChk row %d inconsistent on destination after migration", r)
		}
	}
}

// TestRebalanceBitIdentityUniform is the correctness half of the dynamic
// partitioning contract: with rebalancing forced to churn (a suspect GPU
// starts at the floor share and, the devices being uniform, earns its
// share back — migrations in both directions), every decomposition under
// both schedules produces factors, pivots, and reflectors bit-identical
// to the static-layout run on the same devices.
func TestRebalanceBitIdentityUniform(t *testing.T) {
	for _, decomp := range []string{"cholesky", "lu", "qr"} {
		for _, lookahead := range []int{0, 1} {
			for gpus := 1; gpus <= 3; gpus++ {
				t.Run(fmt.Sprintf("%s/lookahead=%d/gpus=%d", decomp, lookahead, gpus), func(t *testing.T) {
					a := pipelineInput(decomp, 128)
					base := Options{NB: 16, Mode: Full, Scheme: NewScheme,
						Kernel: checksum.OptKernel, Lookahead: lookahead}
					bout, bpiv, btau, _, err := runDecomp(decomp, testSystem(gpus), a, base)
					if err != nil {
						t.Fatalf("static run: %v", err)
					}
					dyn := base
					dyn.Rebalance = Rebalance{Every: 2, Suspect: []int{0}}
					dout, dpiv, dtau, dres, err := runDecomp(decomp, testSystem(gpus), a, dyn)
					if err != nil {
						t.Fatalf("rebalancing run: %v", err)
					}
					if gpus >= 2 && dres.MovedColumns == 0 {
						t.Fatal("suspect start moved no columns; the test exercised nothing")
					}
					if gpus < 2 && dres.Rebalances != 0 {
						t.Fatal("rebalancer ran on a single-GPU system")
					}
					if d, r, c := bout.MaxAbsDiff(dout); d != 0 {
						t.Fatalf("factor differs from static: |Δ|=%g at (%d,%d)", d, r, c)
					}
					for i := range bpiv {
						if dpiv[i] != bpiv[i] {
							t.Fatalf("pivot %d differs: %d vs %d", i, dpiv[i], bpiv[i])
						}
					}
					for i := range btau {
						if dtau[i] != btau[i] {
							t.Fatalf("tau %d differs: %v vs %v", i, dtau[i], btau[i])
						}
					}
				})
			}
		}
	}
}

// TestRebalanceCheckpointResume: rebalancing composes with mid-run
// checkpoints — a checkpoint taken while the layout is skewed resumes on a
// fresh system (rebalancing still on) to the same bits as an uninterrupted
// static run, because checkpoints store per-block-column host state,
// independent of which GPU held each column.
func TestRebalanceCheckpointResume(t *testing.T) {
	a := pipelineInput("lu", 128)
	base := Options{NB: 16, Mode: Full, Scheme: NewScheme, Kernel: checksum.OptKernel}
	bout, bpiv, _, err := LU(testSystem(2), a, base)
	if err != nil {
		t.Fatalf("static run: %v", err)
	}

	var last *Checkpoint
	dyn := base
	dyn.Rebalance = Rebalance{Every: 1, Suspect: []int{1}}
	dyn.CheckpointEvery = 2
	dyn.OnCheckpoint = func(cp *Checkpoint) { last = cp }
	if _, _, res, err := LU(testSystem(2), a, dyn); err != nil {
		t.Fatalf("rebalancing+checkpointing run: %v", err)
	} else if res.MovedColumns == 0 || res.Checkpoints == 0 {
		t.Fatalf("run moved %d columns, took %d checkpoints; want both > 0",
			res.MovedColumns, res.Checkpoints)
	}
	if last == nil {
		t.Fatal("no checkpoint captured")
	}

	resOpts := base
	resOpts.Resume = last
	resOpts.Rebalance = Rebalance{Every: 1}
	rout, rpiv, _, err := LU(testSystem(2), a, resOpts)
	if err != nil {
		t.Fatalf("resume from step %d: %v", last.NextStep, err)
	}
	if d, r, c := bout.MaxAbsDiff(rout); d != 0 {
		t.Fatalf("resumed factor differs from static: |Δ|=%g at (%d,%d)", d, r, c)
	}
	for i := range bpiv {
		if rpiv[i] != bpiv[i] {
			t.Fatalf("pivot %d differs after resume", i)
		}
	}
}

// TestRebalanceShedsStragglerLoad: the policy half — under a 4x straggler
// the rebalancer strips the slow GPU down to the floor share and the run's
// journal records rebalance stages; the straggler ends the run owning
// fewer trailing columns than it started with.
func TestRebalanceShedsStragglerLoad(t *testing.T) {
	a := pipelineInput("cholesky", 192)
	slow := map[int]hetsim.FaultPlan{1: {Mode: hetsim.FaultStraggler, Slowdown: 4}}
	opts := Options{NB: 16, Mode: Full, Scheme: NewScheme, Kernel: checksum.OptKernel,
		Lookahead: 1, FailStop: slow, Rebalance: Rebalance{Every: 2}}
	var moved []int
	opts.onRebalance = func(step int, cols []int) { moved = append(moved, cols...) }
	_, res, err := Cholesky(testSystem(3), a, opts)
	if err != nil {
		t.Fatalf("straggler run: %v", err)
	}
	if res.Rebalances == 0 || res.MovedColumns == 0 {
		t.Fatalf("rebalances=%d moved=%d; straggler provoked nothing", res.Rebalances, res.MovedColumns)
	}
	if len(moved) != res.MovedColumns {
		t.Fatalf("onRebalance saw %d columns, Result says %d", len(moved), res.MovedColumns)
	}
}

// TestRebalanceOptionValidation: the invalid knob combinations are
// rejected up front, not discovered mid-run.
func TestRebalanceOptionValidation(t *testing.T) {
	base := func() Options { return Options{NB: 16, Mode: Full, Scheme: NewScheme} }
	cases := []struct {
		name string
		mut  func(*Options)
	}{
		{"negative CheckpointEvery", func(o *Options) { o.CheckpointEvery = -1 }},
		{"OnCheckpoint without interval", func(o *Options) { o.OnCheckpoint = func(*Checkpoint) {} }},
		{"negative Rebalance.Every", func(o *Options) { o.Rebalance.Every = -2 }},
		{"negative MinShare", func(o *Options) { o.Rebalance.MinShare = -0.1 }},
		{"MinShare of 1", func(o *Options) { o.Rebalance.MinShare = 1 }},
		{"MinShare above 1", func(o *Options) { o.Rebalance.MinShare = math.Inf(1) }},
		{"negative suspect", func(o *Options) { o.Rebalance.Suspect = []int{0, -3} }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			o := base()
			c.mut(&o)
			if err := o.Validate(64); err == nil {
				t.Fatal("Validate accepted the invalid combination")
			}
			a := matrix.RandomSPD(64, matrix.NewRNG(9))
			if _, _, err := Cholesky(testSystem(2), a, o); err == nil {
				t.Fatal("driver ran with the invalid combination")
			}
		})
	}
	// The valid shapes still pass.
	o := base()
	o.Rebalance = Rebalance{Every: 3, MinShare: 0.1, Suspect: []int{0}}
	o.CheckpointEvery = 2
	o.OnCheckpoint = func(*Checkpoint) {}
	if err := o.Validate(64); err != nil {
		t.Fatalf("Validate rejected a valid combination: %v", err)
	}
}
