//go:build race

package core

// raceEnabled reports whether the race detector is compiled in, so
// wall-clock-heavy tests can skip themselves under -race (they are run
// without it by scripts/check.sh).
const raceEnabled = true
