package core

import (
	"errors"
	"fmt"
	"math"

	"ftla/internal/matrix"
	"ftla/internal/obs"
)

// Checkpoint/rollback instruments in the obs default registry. The counters
// aggregate across every run in the process (the per-run figures are on
// Result); the histogram records how many ladder steps each rollback
// discarded.
var (
	checkpointsTotal = obs.Default().Counter(obs.MetricCheckpoints,
		"Verified-state checkpoints taken by the step runtime.")
	rollbacksTotal = obs.Default().Counter(obs.MetricRollbacks,
		"Mid-run rollbacks to the last checkpoint (uncorrectable corruption replayed instead of aborting).")
	rollbackDepth = obs.Default().Histogram(obs.MetricRollbackDepth,
		"Ladder steps discarded per rollback (failing step back to the checkpointed one).",
		[]float64{1, 2, 4, 8, 16, 32, 64})
	checkpointIntegrityFailures = obs.Default().Counter(obs.MetricCheckpointIntegrityFailures,
		"Checkpoints rejected at resume/rollback because the content checksum no longer matched.")
)

// ErrCheckpointIntegrity reports a checkpoint whose content no longer
// matches the checksum taken at capture: the snapshot was tampered with or
// corrupted at rest, and resuming (or rolling back onto) it would silently
// replay garbage. Wrapped by the resume/rollback rejection errors, so
// errors.Is classifies them.
var ErrCheckpointIntegrity = errors.New("core: checkpoint integrity check failed")

// Checkpoint is a host-side snapshot of a factorization in flight, taken by
// the step runtime immediately after step NextStep-1's verification passed —
// so the captured state is known-clean, not merely hoped-clean. It holds
// everything a resumed run needs: the distributed matrix and its checksum
// strips (stored per block column, so the layout is independent of how many
// GPUs held them), the pivot/reflector history of the finished steps, and
// the step index to resume from.
//
// A Checkpoint is device-set agnostic: Options.Resume can replay it on a
// system with a different GPU count than the run that took it (the failover
// path — lose a GPU at step k, resume on the survivors), and the resumed
// factorization is bit-identical to an uninterrupted run on that final
// device set.
type Checkpoint struct {
	// Decomp names the producing driver: "cholesky", "lu", or "qr". A
	// checkpoint only resumes under the same driver.
	Decomp string
	// N and NB are the matrix order and block size of the run.
	N, NB int
	// Mode and Scheme are the protection configuration; resume requires an
	// identical configuration (the checksum strips below only make sense
	// under the mode that maintained them).
	Mode   Mode
	Scheme Scheme
	// NextStep is the ladder step the snapshot resumes from: steps
	// [0, NextStep) are complete and verified.
	NextStep int
	// Tol is the verification tolerance derived from the original input
	// matrix, carried so a resumed run verifies against the same threshold.
	Tol float64
	// Data, ColChk and RowChk hold one host matrix per block column: the
	// n×NB data panel, its 2·(n/NB)×NB column-checksum strip (nil under
	// NoChecksum), and its n×2 row-checksum pair (nil unless Mode is Full).
	Data   []*matrix.Dense
	ColChk []*matrix.Dense
	RowChk []*matrix.Dense
	// Piv is the LU pivot history, zero beyond the finished steps; nil for
	// other decompositions.
	Piv []int
	// Tau is the QR Householder scalar history, zero beyond the finished
	// steps; nil for other decompositions.
	Tau []float64
	// Sum is the content checksum taken at capture over every payload the
	// snapshot carries (data panels, checksum strips, pivot and reflector
	// histories, and the resume step). Resume and mid-run rollback
	// re-derive it and reject the checkpoint on a mismatch — a corrupted
	// snapshot is surrendered as detected, never silently replayed.
	Sum uint64
}

// contentSum re-derives the checkpoint's content checksum: a Fletcher-
// style running pair over the bit patterns of everything a replay would
// trust. Position-sensitive, so swapped panels change the value.
func (cp *Checkpoint) contentSum() uint64 {
	var s1, s2 uint64
	add := func(b uint64) {
		s1 += b
		s2 += s1
	}
	addMat := func(m *matrix.Dense) {
		if m == nil {
			add(1)
			return
		}
		for i := 0; i < m.Rows; i++ {
			for _, v := range m.Row(i) {
				add(math.Float64bits(v))
			}
		}
	}
	add(uint64(cp.NextStep))
	for _, m := range cp.Data {
		addMat(m)
	}
	for _, m := range cp.ColChk {
		addMat(m)
	}
	for _, m := range cp.RowChk {
		addMat(m)
	}
	for _, pv := range cp.Piv {
		add(uint64(int64(pv)))
	}
	for _, t := range cp.Tau {
		add(math.Float64bits(t))
	}
	return s1 ^ (s2<<1 | s2>>63)
}

// seal stores the content checksum. The runtime calls it once the driver
// has finished populating the snapshot (captureCheckpoint leaves Piv/Tau
// to the ladder) and before any OnCheckpoint hook can observe it —
// whatever mutates the checkpoint afterwards is detectable.
func (cp *Checkpoint) seal() { cp.Sum = cp.contentSum() }

// verifyIntegrity checks the stored content checksum against a fresh
// derivation, ticking the integrity-failure metric and returning an error
// wrapping ErrCheckpointIntegrity on mismatch. Both resume (validateFor)
// and mid-run rollback call it before trusting a snapshot.
func (cp *Checkpoint) verifyIntegrity() error {
	if cp.contentSum() != cp.Sum {
		checkpointIntegrityFailures.Inc()
		return fmt.Errorf("%w: stored %#x != derived content", ErrCheckpointIntegrity, cp.Sum)
	}
	return nil
}

// validateFor checks that the checkpoint can resume decomposition decomp of
// order n under opts on a system with at least one GPU.
func (cp *Checkpoint) validateFor(decomp string, n int, opts *Options) error {
	switch {
	case cp.Decomp != decomp:
		return fmt.Errorf("core: %s checkpoint cannot resume a %s run", cp.Decomp, decomp)
	case cp.N != n:
		return fmt.Errorf("core: checkpoint order %d != input order %d", cp.N, n)
	case cp.NB != opts.NB:
		return fmt.Errorf("core: checkpoint NB %d != options NB %d", cp.NB, opts.NB)
	case cp.Mode != opts.Mode || cp.Scheme != opts.Scheme:
		return fmt.Errorf("core: checkpoint protection %v/%v != options %v/%v",
			cp.Mode, cp.Scheme, opts.Mode, opts.Scheme)
	case cp.NextStep <= 0 || cp.NextStep >= cp.N/cp.NB:
		return fmt.Errorf("core: checkpoint step %d outside (0, %d)", cp.NextStep, cp.N/cp.NB)
	case len(cp.Data) != cp.N/cp.NB:
		return fmt.Errorf("core: checkpoint holds %d block columns, want %d", len(cp.Data), cp.N/cp.NB)
	case cp.Mode != NoChecksum && len(cp.ColChk) != len(cp.Data):
		return fmt.Errorf("core: checkpoint missing column-checksum strips")
	case cp.Mode == Full && len(cp.RowChk) != len(cp.Data):
		return fmt.Errorf("core: checkpoint missing row-checksum strips")
	}
	return cp.verifyIntegrity()
}

// captureCheckpoint snapshots the distributed state into a host-side
// Checkpoint resuming from step next. Every device-resident strip travels
// through System.Checkpoint (PCIe staging under the fail-stop gates — no
// private-memory bypass), block column by block column, so the snapshot's
// layout does not encode the GPU count.
func (p *protected) captureCheckpoint(next int) *Checkpoint {
	cp := &Checkpoint{
		Decomp:   p.es.decomp,
		N:        p.n,
		NB:       p.nb,
		Mode:     p.es.opts.Mode,
		Scheme:   p.es.opts.Scheme,
		NextStep: next,
		Tol:      p.tol,
		Data:     make([]*matrix.Dense, p.nbr),
	}
	if p.es.opts.Mode != NoChecksum {
		cp.ColChk = make([]*matrix.Dense, p.nbr)
	}
	if p.es.opts.Mode == Full {
		cp.RowChk = make([]*matrix.Dense, p.nbr)
	}
	sys := p.es.sys
	for bj := 0; bj < p.nbr; bj++ {
		g := p.owner(bj)
		cp.Data[bj] = sys.Checkpoint(p.local[g].View(0, p.localOff(bj), p.n, p.nb))
		if cp.ColChk != nil {
			cp.ColChk[bj] = sys.Checkpoint(p.colChk[g].View(0, p.localOff(bj), 2*p.nbr, p.nb))
		}
		if cp.RowChk != nil {
			cp.RowChk[bj] = sys.Checkpoint(p.rowChk[g].View(0, 2*p.localBlock(bj), p.n, 2))
		}
	}
	return cp
}

// allocProtectedFor builds an empty protected layout for a resumed run: the
// buffers are allocated for the *current* device set (which may be smaller
// than the one that took the checkpoint) and the tolerance comes from the
// checkpoint, but no data is shipped and no checksums are encoded —
// restoreFrom fills everything from the snapshot.
func allocProtectedFor(es *engineSys, cp *Checkpoint) *protected {
	p := &protected{es: es, n: cp.N, nb: cp.NB, nbr: cp.N / cp.NB, tol: cp.Tol}
	p.initCyclicLayout(es.sys.NumGPUs())
	p.allocSlabs()
	if es.sys.Nodes() > 1 {
		p.coded = newCodedState(p)
	}
	return p
}

// restoreFrom ships the checkpoint's strips back onto the devices of the
// current layout through System.Restore — the rollback/resume entry shared
// by mid-run rollback (same device set) and cross-system resume (possibly
// fewer GPUs than at capture time).
func (p *protected) restoreFrom(cp *Checkpoint) {
	sys := p.es.sys
	for bj := 0; bj < p.nbr; bj++ {
		g := p.owner(bj)
		sys.Restore(cp.Data[bj], p.local[g].View(0, p.localOff(bj), p.n, p.nb))
		if cp.ColChk != nil {
			sys.Restore(cp.ColChk[bj], p.colChk[g].View(0, p.localOff(bj), 2*p.nbr, p.nb))
		}
		if cp.RowChk != nil {
			sys.Restore(cp.RowChk[bj], p.rowChk[g].View(0, 2*p.localBlock(bj), p.n, 2))
		}
	}
	// Checkpoints carry no parity; a restore (rollback or cross-run resume)
	// re-encodes every surviving parity column from the restored data
	// (refresh itself skips parities retired by an earlier node loss).
	if p.coded != nil {
		p.coded.refresh(0)
	}
}
