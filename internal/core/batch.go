package core

import (
	"fmt"
	"time"

	"ftla/internal/batch"
	"ftla/internal/fault"
	"ftla/internal/hetsim"
	"ftla/internal/matrix"
)

// Batched drivers.
//
// CholeskyBatch, LUBatch, and QRBatch factorize every item of a
// batch.Batch slab in one pass over the ladder: for each step k, each
// stage (panel factor, commit, update, TMU, verification) sweeps across
// all batch items before the next stage begins, so the per-step work of
// the whole slab is issued together. Stages that move data over PCIe run
// inside a hetsim transfer-coalescing window (System.CoalesceTransfers),
// so a step's panel pulls, writebacks, and broadcasts pay the fixed
// per-transfer latency once per link for the entire batch — the batched
// analogue of a strided cudaMemcpy — which is where the serving layer's
// jobs/sec win over solo dispatch comes from (see BENCH_batch.json).
//
// Per-item semantics:
//
//   - Arithmetic is bit-identical to a solo run of the same item: each
//     item executes exactly the per-item ladder code of the solo driver on
//     disjoint buffers; items interact only through the shared simulated
//     clock. The batch bit-identity tests pin this across decompositions,
//     schedules, and GPU counts.
//   - Failure is isolated: an item whose driver errors (failed panel
//     factorization, corrupted queue input) is flagged and its remaining
//     stages are skipped while its siblings run to completion; the
//     per-item error slice reports it. Only a fail-stop abort — rejected
//     from batch options precisely for this reason — would take the whole
//     dispatch down.
//   - Fault injection is per item (the injs argument); attaching any
//     injector forces the serial schedule for the whole batch, the same
//     schedule-invariance rule the solo runtime applies (results are
//     bit-identical either way).
//   - Checkpointing, resume, and fail-stop plans are not supported in
//     batched runs: they are per-run control flow that cannot be shared
//     across a slab, and the serving layer's per-item fallback (retry the
//     one bad item solo) covers their role. Options carrying them are
//     rejected up front.
//
// Result caveats: Wall, SimMakespan, PCIeBytes, and Flops on a batched
// item's Result describe the whole batch dispatch (the clock and counters
// are system-wide), not the item alone; the verification/recovery counters
// and outcome fields are per item as usual.

// validateBatchOpts rejects option combinations the batched runners do not
// support; see the package comment above.
func validateBatchOpts(b *batch.Batch, opts Options, injs []*fault.Injector) error {
	if b == nil || b.Count() < 1 {
		return fmt.Errorf("core: empty batch")
	}
	if opts.NB != b.NB() {
		return fmt.Errorf("core: batch block size %d != Options.NB %d", b.NB(), opts.NB)
	}
	if err := opts.Validate(b.N()); err != nil {
		return err
	}
	if opts.Injector != nil {
		return fmt.Errorf("core: batched runs take per-item injectors, not Options.Injector")
	}
	if opts.Resume != nil || opts.CheckpointEvery > 0 || opts.OnCheckpoint != nil {
		return fmt.Errorf("core: checkpoint/resume options are not supported in batched runs")
	}
	if len(opts.FailStop) > 0 {
		return fmt.Errorf("core: fail-stop plans are not supported in batched runs")
	}
	if injs != nil && len(injs) != b.Count() {
		return fmt.Errorf("core: %d injectors for %d batch items", len(injs), b.Count())
	}
	return nil
}

// startBatch validates the batch, verifies the slab's queue-integrity
// strips (items corrupted host-side since submission are flagged with a
// per-item error and excluded from the run), and builds the per-item
// engine + ladder pairs on the shared system, distributing every item's
// data inside one transfer-coalescing window.
func startBatch(decomp string, sys *hetsim.System, b *batch.Batch, opts Options,
	injs []*fault.Injector, mk func(es *engineSys, a *matrix.Dense) ladder,
) (ess []*engineSys, ls []ladder, ress []*Result, errs []error, err error) {
	if err := validateBatchOpts(b, opts, injs); err != nil {
		return nil, nil, nil, nil, err
	}
	if err := opts.ValidateTopology(sys); err != nil {
		return nil, nil, nil, nil, err
	}
	count := b.Count()
	ess = make([]*engineSys, count)
	ls = make([]ladder, count)
	ress = make([]*Result, count)
	errs = make([]error, count)
	for _, i := range b.Verify(sys.CPU().Workers()) {
		errs[i] = fmt.Errorf("core: batch item %d input corrupted since submission (slab checksum mismatch)", i)
	}
	opts.stageJournal = nil // the journal hook is a solo-run seam; per-item journals would interleave
	sys.CoalesceTransfers(func() {
		for i := 0; i < count; i++ {
			if errs[i] != nil {
				continue
			}
			iopts := opts
			if injs != nil {
				iopts.Injector = injs[i]
			}
			res := &Result{
				N: b.N(), NB: opts.NB, GPUs: sys.NumGPUs(),
				Mode: opts.Mode, Scheme: opts.Scheme, Kernel: opts.Kernel,
			}
			es := newEngine(decomp, sys, iopts, res)
			ess[i], ls[i], ress[i] = es, mk(es, b.Item(i)), res
		}
	})
	return ess, ls, ress, errs, nil
}

// runLadderBatch executes every live item's ladder under one shared
// schedule: each stage of step k sweeps the batch before the next stage
// runs, with transfer-bearing stages coalesced. It fills errs in place as
// items fail and leaves siblings running. The look-ahead schedule is used
// only when every item allows it (Lookahead >= 1 and no injector anywhere);
// mirroring runLadder, the per-item arithmetic is identical under both.
func runLadderBatch(sys *hetsim.System, ess []*engineSys, ls []ladder, errs []error) {
	count := len(ls)
	nbr := 0
	depth := 1
	for i := 0; i < count; i++ {
		if errs[i] != nil {
			continue
		}
		nbr = ls[i].steps()
		if ess[i].overlapDepth() < 1 {
			depth = 0
		}
	}
	if nbr == 0 {
		return // no live items
	}
	G := sys.NumGPUs()
	var streams []*hetsim.Stream
	defer func() {
		for _, st := range streams {
			if st != nil {
				st.Close()
			}
		}
	}()
	// checkFailed harvests per-item driver errors after a stage sweep.
	checkFailed := func() {
		for i := 0; i < count; i++ {
			if errs[i] == nil && ls[i] != nil {
				if e := ls[i].failed(); e != nil {
					errs[i] = e
				}
			}
		}
	}
	// prefactored[i] marks that item i's panel for the upcoming step was
	// already factorized by the look-ahead overlap of the previous step.
	prefactored := make([]bool, count)
	for k := 0; k < nbr; k++ {
		sys.CoalesceTransfers(func() {
			for i := 0; i < count; i++ {
				if errs[i] == nil && !prefactored[i] {
					ls[i].panelFactor(k)
				}
				prefactored[i] = false
			}
		})
		checkFailed()
		for i := 0; i < count; i++ {
			if errs[i] == nil {
				ls[i].panelPivot(k)
			}
		}
		sys.CoalesceTransfers(func() {
			for i := 0; i < count; i++ {
				if errs[i] == nil {
					ls[i].panelCommit(k)
				}
			}
		})
		checkFailed()
		if k == nbr-1 {
			break
		}
		sys.CoalesceTransfers(func() {
			for i := 0; i < count; i++ {
				if errs[i] == nil {
					ls[i].panelUpdate(k)
				}
			}
		})
		for i := 0; i < count; i++ {
			if errs[i] == nil {
				ls[i].tmuBegin(k)
			}
		}
		if depth >= 1 {
			// Look-ahead: sweep the look-ahead column of every item
			// synchronously, launch the slab's remaining trailing updates
			// onto the per-GPU streams (one closure per GPU covering all
			// items), and pull + factorize every item's next panel on the
			// CPU — coalesced — while the GPUs run.
			for i := 0; i < count; i++ {
				if errs[i] != nil {
					continue
				}
				for g := 0; g < G; g++ {
					ls[i].tmuGPU(k, g, tmuLookahead)
				}
			}
			if streams == nil {
				streams = make([]*hetsim.Stream, G)
				for g := 0; g < G; g++ {
					streams[g] = sys.GPU(g).NewStream()
				}
			}
			evs := make([]*hetsim.StreamEvent, G)
			for g := 0; g < G; g++ {
				g := g
				streams[g].Launch("tmu-rest", func() {
					for i := 0; i < count; i++ {
						if errs[i] == nil {
							ls[i].tmuGPU(k, g, tmuRest)
						}
					}
				})
				evs[g] = streams[g].Record()
			}
			sys.CoalesceTransfers(func() {
				for i := 0; i < count; i++ {
					if errs[i] == nil {
						ls[i].panelFactor(k + 1)
						prefactored[i] = true
					}
				}
			})
			for _, ev := range evs {
				ev.Wait()
			}
		} else {
			for i := 0; i < count; i++ {
				if errs[i] != nil {
					continue
				}
				for g := 0; g < G; g++ {
					ls[i].tmuGPU(k, g, tmuAll)
				}
			}
		}
		for i := 0; i < count; i++ {
			if errs[i] == nil {
				ls[i].tmuFinish(k)
			}
		}
		checkFailed()
	}
}

// CholeskyBatch factorizes every item of the slab with the protected
// blocked Cholesky driver in one batched dispatch (see the batched-driver
// comment at the top of this file). It returns the per-item gathered
// factors, reports, and errors — outs[i]/ress[i] are nil when errs[i] is
// set — plus a batch-level error for invalid options or a fail-stop abort,
// which voids the whole dispatch.
func CholeskyBatch(sys *hetsim.System, b *batch.Batch, opts Options, injs []*fault.Injector) (outs []*matrix.Dense, ress []*Result, errs []error, err error) {
	defer func() {
		if e := hetsim.RecoverAbort(recover()); e != nil {
			outs, ress, errs, err = nil, nil, nil, e
		}
	}()
	start := time.Now()
	ess, ls, ress, errs, berr := startBatch("cholesky", sys, b, opts, injs,
		func(es *engineSys, a *matrix.Dense) ladder {
			p := newProtected(es, a)
			return &cholLadder{p: p, es: es, pl: planFor(es.opts.Scheme), step: make([]*cholStep, p.nbr)}
		})
	if berr != nil {
		return nil, nil, nil, berr
	}
	runLadderBatch(sys, ess, ls, errs)
	outs = make([]*matrix.Dense, b.Count())
	sys.CoalesceTransfers(func() {
		for i := range ls {
			if errs[i] != nil {
				ress[i] = nil
				continue
			}
			outs[i] = ls[i].(*cholLadder).p.gather()
		}
	})
	for i := range ls {
		if errs[i] == nil {
			ess[i].finishResult(start)
		}
	}
	return outs, ress, errs, nil
}

// LUBatch is CholeskyBatch for the protected LU driver; pivs[i] is item
// i's pivot sequence.
func LUBatch(sys *hetsim.System, b *batch.Batch, opts Options, injs []*fault.Injector) (outs []*matrix.Dense, pivs [][]int, ress []*Result, errs []error, err error) {
	defer func() {
		if e := hetsim.RecoverAbort(recover()); e != nil {
			outs, pivs, ress, errs, err = nil, nil, nil, nil, e
		}
	}()
	start := time.Now()
	ess, ls, ress, errs, berr := startBatch("lu", sys, b, opts, injs,
		func(es *engineSys, a *matrix.Dense) ladder {
			p := newProtected(es, a)
			return &luLadder{
				p: p, es: es, pl: planFor(es.opts.Scheme),
				step: make([]*luStep, p.nbr),
				piv:  make([]int, p.n),
			}
		})
	if berr != nil {
		return nil, nil, nil, nil, berr
	}
	runLadderBatch(sys, ess, ls, errs)
	outs = make([]*matrix.Dense, b.Count())
	pivs = make([][]int, b.Count())
	sys.CoalesceTransfers(func() {
		for i := range ls {
			if errs[i] != nil {
				ress[i] = nil
				continue
			}
			lad := ls[i].(*luLadder)
			outs[i], pivs[i] = lad.p.gather(), lad.piv
		}
	})
	for i := range ls {
		if errs[i] == nil {
			ess[i].finishResult(start)
		}
	}
	return outs, pivs, ress, errs, nil
}

// QRBatch is CholeskyBatch for the protected Householder QR driver;
// taus[i] is item i's reflector coefficients.
func QRBatch(sys *hetsim.System, b *batch.Batch, opts Options, injs []*fault.Injector) (outs []*matrix.Dense, taus [][]float64, ress []*Result, errs []error, err error) {
	defer func() {
		if e := hetsim.RecoverAbort(recover()); e != nil {
			outs, taus, ress, errs, err = nil, nil, nil, nil, e
		}
	}()
	start := time.Now()
	ess, ls, ress, errs, berr := startBatch("qr", sys, b, opts, injs,
		func(es *engineSys, a *matrix.Dense) ladder {
			p := newProtected(es, a)
			return &qrLadder{
				p: p, es: es, pl: planFor(es.opts.Scheme),
				step: make([]*qrStep, p.nbr),
				tau:  make([]float64, p.n),
			}
		})
	if berr != nil {
		return nil, nil, nil, nil, berr
	}
	runLadderBatch(sys, ess, ls, errs)
	outs = make([]*matrix.Dense, b.Count())
	taus = make([][]float64, b.Count())
	sys.CoalesceTransfers(func() {
		for i := range ls {
			if errs[i] != nil {
				ress[i] = nil
				continue
			}
			lad := ls[i].(*qrLadder)
			outs[i], taus[i] = lad.p.gather(), lad.tau
		}
	})
	for i := range ls {
		if errs[i] == nil {
			ess[i].finishResult(start)
		}
	}
	return outs, taus, ress, errs, nil
}
