package core

import (
	"fmt"
	"sort"
	"time"

	"ftla/internal/hetsim"
)

// The step runtime.
//
// All three decompositions iterate the same right-looking ladder: factor a
// panel, commit (write back + broadcast) it, update the panel's row/column
// complement, then apply the trailing-matrix update — with verification
// and fault-injection windows woven between the stages by the checking
// scheme. The drivers express one iteration as the typed stages of the
// ladder interface; runLadder owns the schedule.
//
// Two schedules exist. The serial schedule (Options.Lookahead <= 0)
// executes the stages of step k strictly in order before starting step
// k+1 — the legacy behavior, and the baseline the paper's overhead curves
// assume. The look-ahead schedule (Lookahead >= 1) reproduces MAGMA's
// hybrid pipelining: after step k's TMU has updated the *look-ahead
// column* (the panel of step k+1) synchronously, the rest of the trailing
// update is launched onto per-GPU hetsim streams and the CPU pulls and
// factorizes panel k+1 while the GPUs are still updating. The runtime then
// joins the streams, finishes step k's verification, and step k+1 begins
// at its commit stage.
//
// Why results are bit-identical: the trailing update is split by columns,
// and every kernel accumulates each output element sequentially along the
// contraction dimension, so computing the look-ahead column in a separate
// call produces the very floats the full-width call would (see
// blas.GemmP). The look-ahead panel factorization reads only data the
// synchronous look-ahead TMU already wrote (the panel column, its column-
// checksum strips, and its row-checksum pair), which the launched
// remainder never touches — the element sets are disjoint by the block
// layout.
//
// Why injection windows are schedule-invariant: when a fault.Injector is
// attached, the runtime forces the serial schedule (overlapDepth returns
// 0), so injectMem/injectOnChip/injectComp and withCommContext fire in
// exactly the stage they do today. Fail-stop fault plans (hetsim layer)
// stay armed under overlap: a plan firing inside a launched closure is
// captured by the stream and re-raised at the join, where the driver
// boundary's RecoverAbort turns it into the same typed error the serial
// schedule produces.
//
// Concurrency discipline under overlap: launched closures run *kernels
// only* (GEMM/TRSM/transfer-free trailing updates) — every Result and
// Counter mutation, every verify/repair, and every injector call happens
// on the coordinating goroutine, so the drivers need no locking.

// tmuSel selects which slice of the trailing update a tmuGPU call applies.
type tmuSel int

const (
	// tmuAll applies the whole trailing update (serial schedule).
	tmuAll tmuSel = iota
	// tmuLookahead applies only the look-ahead column — the block column
	// of step k+1, owned by one GPU.
	tmuLookahead
	// tmuRest applies everything but the look-ahead column.
	tmuRest
)

// ladder is one decomposition's per-iteration stage definitions. Stage
// methods run on the coordinating goroutine except tmuGPU, which the
// look-ahead schedule may run inside a hetsim stream and therefore must
// only execute kernels (no counters, no verifies, no injector calls).
type ladder interface {
	// steps returns the number of ladder iterations (block columns).
	steps() int
	// panelFactor pulls panel k to the CPU, verifies it, factorizes it,
	// and re-encodes its checksums, leaving the certified factor staged
	// host-side. It must not write device-resident trailing state: the
	// writeback belongs to panelCommit (the look-ahead schedule runs
	// panelFactor(k+1) while step k's trailing update is in flight).
	panelFactor(k int)
	// panelPivot applies row interchanges (LU); no-op elsewhere.
	panelPivot(k int)
	// panelCommit writes the certified panel back to its owner and
	// broadcasts it, including post-broadcast verification.
	panelCommit(k int)
	// panelUpdate runs the panel-update phase (PU) and, for Cholesky, its
	// inter-GPU broadcast; no-op for QR. Never called for the last step.
	panelUpdate(k int)
	// tmuBegin opens the trailing update: fault-injection windows and the
	// scheme's pre-TMU verification.
	tmuBegin(k int)
	// tmuGPU applies GPU g's slice of the trailing update. Kernels only.
	tmuGPU(k, g int, sel tmuSel)
	// tmuFinish closes the trailing update: computation-fault injection,
	// post-TMU verification, heuristics, and periodic trailing checks. It
	// should release step k's staging state.
	tmuFinish(k int)
	// failed reports a non-abort driver error (e.g. a panel factorization
	// that failed after its local restart); runLadder stops on it.
	failed() error
	// checkpoint snapshots the factorization state into a host-side
	// Checkpoint that resumes from step next. Called by the runtime only
	// after step next-1's verification passed, so the snapshot is
	// known-clean.
	checkpoint(next int) *Checkpoint
	// resume restores the factorization state from a checkpoint onto the
	// current device set and discards any per-step staging, so the ladder
	// can replay from cp.NextStep. It serves both the mid-run rollback
	// (same devices) and the cross-run resume (possibly fewer GPUs).
	resume(cp *Checkpoint)
}

// stageRec is one canonical journal entry: stage `name` of ladder step
// `step`. The journal is recorded in dependency (ladder) order regardless
// of schedule, so serial and look-ahead runs of the same configuration
// produce identical journals (the pipeline tests assert exactly this).
type stageRec struct {
	Step int
	Name string
}

// String renders "panel-factor[3]".
func (s stageRec) String() string { return fmt.Sprintf("%s[%d]", s.Name, s.Step) }

// Canonical stage names, in ladder-rank order. The resume stage precedes a
// step's ladder stages (a resumed run starts by restoring state for its
// first step); checkpoint and rollback trail them (both run after the
// step's verification concluded).
const (
	stageResume      = "resume"
	stageNodeLoss    = "node-loss"
	stagePanelFactor = "panel-factor"
	stagePanelPivot  = "panel-pivot"
	stagePanelCommit = "panel-commit"
	stagePanelUpdate = "panel-update"
	stageTMUBegin    = "tmu-begin"
	stageTMU         = "tmu"
	stageTMUFinish   = "tmu-finish"
	stageParity      = "parity"
	stageCheckpoint  = "checkpoint"
	stageRollback    = "rollback"
	stageRebalance   = "rebalance"
)

// stageRank orders stages within a step for journal canonicalization.
var stageRank = map[string]int{
	stageResume:      -2,
	stageNodeLoss:    -1,
	stagePanelFactor: 0,
	stagePanelPivot:  1,
	stagePanelCommit: 2,
	stagePanelUpdate: 3,
	stageTMUBegin:    4,
	stageTMU:         5,
	stageTMUFinish:   6,
	stageParity:      7,
	stageCheckpoint:  8,
	stageRollback:    9,
	stageRebalance:   10,
}

// maxRollbacksPerCheckpoint bounds how often the runtime will replay from
// the same checkpoint without making progress past it. Corruption that
// recurs deterministically on every replay would otherwise loop forever;
// after the cap the run carries its Unrecoverable verdict to completion and
// the serving layer's complete restart takes over.
const maxRollbacksPerCheckpoint = 2

// stepRuntime schedules a ladder across the simulated system.
type stepRuntime struct {
	es       *engineSys
	l        ladder
	depth    int
	streams  []*hetsim.Stream
	factored []bool
	journal  []stageRec

	// lastCP is the most recent known-clean checkpoint (the Resume option's
	// checkpoint until the first in-run snapshot replaces it); rollbacks
	// counts replays from it since it was taken.
	lastCP    *Checkpoint
	rollbacks int

	// reb is the dynamic repartitioner, nil unless Options.Rebalance is
	// armed, the ladder exposes its layout, no injector is attached, and
	// the system holds at least two GPUs (see initRebalance).
	reb *rebState

	// coded is the cross-node erasure redundancy of the ladder's layout,
	// nil on flat systems or for ladders that expose no layout.
	coded *codedState
}

// initRebalance arms the rebalancer when the configuration and ladder
// allow it: Rebalance.Every > 0, at least two GPUs (nothing to re-split
// otherwise), no fault injector (injection windows address regions by the
// static layout — the same reason overlapDepth forces the serial
// schedule), and a ladder that exposes its protected layout (the batched
// drivers don't). Multi-node topologies rebalance too: the parity-aware
// migration protocol (rebState.filterLegal / codedState.rehomeParity)
// keeps the erasure code's one-column-per-node-per-group placement intact
// across moves, so the ban PR 9 imposed is lifted.
func (rt *stepRuntime) initRebalance() {
	es := rt.es
	if es.opts.Rebalance.Every <= 0 || es.inj != nil || es.sys.NumGPUs() < 2 {
		return
	}
	rl, ok := rt.l.(rebalancer)
	if !ok {
		return
	}
	rt.reb = newRebState(es, rl.layout())
}

// maybeRebalance, called after step k's verification and checkpoint
// bookkeeping, repartitions the remaining trailing columns when the
// interval says so. The stage is journaled only when columns actually
// move, so a decision that confirms the current layout leaves no trace.
func (rt *stepRuntime) maybeRebalance(k int) {
	if rt.reb == nil || (k+1)%rt.es.opts.Rebalance.Every != 0 {
		return
	}
	moves := rt.reb.plan(k)
	if len(moves) == 0 {
		return
	}
	rt.stage(k, stageRebalance, func() { rt.reb.apply(k, moves) })
}

// maybeParity, run after step k's verification concluded clean, re-encodes
// the parity of every group still holding trailing columns (see
// codedState.refresh). Journaled as its own stage so serial and look-ahead
// schedules compare equal.
func (rt *stepRuntime) maybeParity(k int) {
	if rt.coded == nil || rt.coded.exhausted() {
		return
	}
	rt.stage(k, stageParity, func() { rt.coded.refresh(k) })
}

// handleNodeLoss reacts to the node faults fired at one epoch boundary —
// possibly a simultaneous multi-node burst. When the layout carries enough
// surviving erasure redundancy, the lost columns are rebuilt from parity
// and the run continues degraded on the surviving nodes; otherwise the
// typed NodeLostError surfaces to the driver boundary (the serving layer's
// failover ladder takes over, engaging only once redundancy is truly
// spent). Counted on Result either way.
func (rt *stepRuntime) handleNodeLoss(nodes []int) error {
	es := rt.es
	es.res.NodesLost += len(nodes)
	if rt.coded == nil {
		gpus := 0
		for g := 0; g < es.sys.NumGPUs(); g++ {
			if es.sys.NodeOf(g) == nodes[0] {
				gpus++
			}
		}
		return &hetsim.NodeLostError{Node: nodes[0], GPUs: gpus, Op: "reconstruct"}
	}
	n, err := rt.coded.reconstructNodes(nodes)
	if err != nil {
		return err
	}
	rt.es.res.Reconstructions += n
	return nil
}

// overlapDepth resolves the effective look-ahead depth: the Lookahead
// option, clamped to {0, 1}, and forced to 0 while a fault injector is
// attached so injection windows stay schedule-invariant.
func (es *engineSys) overlapDepth() int {
	if es.opts.Lookahead < 1 || es.inj != nil {
		return 0
	}
	return 1
}

// runLadder executes the ladder under the configured schedule. A fail-stop
// abort panics through (after stream cleanup) to the driver boundary's
// RecoverAbort; a driver error surfaces as the return value.
func runLadder(es *engineSys, l ladder) error {
	rt := &stepRuntime{
		es:       es,
		l:        l,
		depth:    es.overlapDepth(),
		factored: make([]bool, l.steps()),
	}
	defer rt.close()
	nbr := l.steps()
	G := es.sys.NumGPUs()
	start := 0
	if cp := es.opts.Resume; cp != nil {
		rt.stage(cp.NextStep, stageResume, func() { l.resume(cp) })
		rt.lastCP = cp
		start = cp.NextStep
	}
	rt.initRebalance()
	if rl, ok := l.(rebalancer); ok {
		rt.coded = rl.layout().coded
	}
	// A run entering with suspects (a quarantine-released straggler on
	// probation) is repartitioned before the first step: the suspect
	// starts at the floor share instead of a full cyclic one.
	if moves := rt.reb.planSuspects(start); len(moves) > 0 {
		rt.stage(start, stageRebalance, func() { rt.reb.apply(start, moves) })
	}
	for k := start; k < nbr; k++ {
		// Node-loss epoch boundary: streams are joined and device state is
		// quiescent here, so a fired whole-node fault is absorbed by
		// erasure-coded reconstruction (or surfaces as the typed error when
		// no redundancy remains) before any stage touches the dead GPUs.
		if nodes := es.sys.NodeEpoch(); len(nodes) > 0 {
			var nerr error
			rt.stage(k, stageNodeLoss, func() { nerr = rt.handleNodeLoss(nodes) })
			if nerr != nil {
				return nerr
			}
		}
		if !rt.factored[k] {
			rt.stage(k, stagePanelFactor, func() { l.panelFactor(k) })
			if err := l.failed(); err != nil {
				return err
			}
		}
		rt.stage(k, stagePanelPivot, func() { l.panelPivot(k) })
		rt.stage(k, stagePanelCommit, func() { l.panelCommit(k) })
		if err := l.failed(); err != nil {
			return err
		}
		if rt.maybeRollback(&k) {
			continue
		}
		if k == nbr-1 {
			break
		}
		rt.stage(k, stagePanelUpdate, func() { l.panelUpdate(k) })
		rt.stage(k, stageTMUBegin, func() { l.tmuBegin(k) })
		// The rebalancer brackets the TMU with busy-time samples: device
		// SimTime accumulates kernel work only, so the bracket captures
		// the identical kernel set under both schedules (the look-ahead
		// CPU panel factorization between launch and join charges no GPU
		// time) and the estimator is schedule-invariant.
		rt.reb.beginSample()
		if rt.depth >= 1 {
			// Look-ahead: update the next panel's column synchronously,
			// launch the remainder onto per-GPU streams, factorize panel
			// k+1 on the CPU while they run, then join.
			rt.stage(k, stageTMU, func() {
				for g := 0; g < G; g++ {
					l.tmuGPU(k, g, tmuLookahead)
				}
			})
			evs := rt.launchRest(k)
			rt.stage(k+1, stagePanelFactor, func() { l.panelFactor(k + 1) })
			rt.factored[k+1] = true
			for _, ev := range evs {
				ev.Wait()
			}
		} else {
			rt.stage(k, stageTMU, func() {
				for g := 0; g < G; g++ {
					l.tmuGPU(k, g, tmuAll)
				}
			})
		}
		rt.reb.endSample(k)
		rt.stage(k, stageTMUFinish, func() { l.tmuFinish(k) })
		if err := l.failed(); err != nil {
			return err
		}
		if rt.maybeRollback(&k) {
			continue
		}
		rt.maybeParity(k)
		rt.maybeCheckpoint(k)
		rt.maybeRebalance(k)
	}
	if es.opts.stageJournal != nil {
		*es.opts.stageJournal = rt.canonicalJournal()
	}
	return nil
}

// maybeCheckpoint snapshots the state after step k when the checkpoint
// interval says so and the state is trustworthy (verification has not
// declared it unrecoverable). The last step never checkpoints — runLadder's
// loop breaks before reaching here.
func (rt *stepRuntime) maybeCheckpoint(k int) {
	es := rt.es
	every := es.opts.CheckpointEvery
	if every <= 0 || es.res.Unrecoverable || (k+1)%every != 0 {
		return
	}
	var cp *Checkpoint
	rt.stage(k, stageCheckpoint, func() { cp = rt.l.checkpoint(k + 1) })
	cp.seal()
	rt.lastCP = cp
	rt.rollbacks = 0
	es.res.Checkpoints++
	checkpointsTotal.Inc()
	if es.opts.OnCheckpoint != nil {
		es.opts.OnCheckpoint(cp)
	}
}

// maybeRollback, called after a step's verification concluded, replays from
// the last checkpoint when that verification declared the state
// unrecoverable: the checkpointed state is known-clean, and transient
// corruption does not recur on the replay — turning the paper's
// "complete restart" bucket into a partial one. It rewrites *k so the
// caller's loop continues at the checkpointed step, and reports whether a
// rollback happened. Without a checkpoint (or once
// maxRollbacksPerCheckpoint replays made no progress) the unrecoverable
// verdict stands and the run completes as before.
func (rt *stepRuntime) maybeRollback(k *int) bool {
	es := rt.es
	if !es.res.Unrecoverable || rt.lastCP == nil || rt.rollbacks >= maxRollbacksPerCheckpoint {
		return false
	}
	if err := rt.lastCP.verifyIntegrity(); err != nil {
		// The snapshot itself is damaged (tampered with, or corrupted at
		// rest): replaying it would launder garbage into a "recovered" run.
		// Drop it and let the unrecoverable verdict stand — the run
		// completes as detected-corrupt and the serving layer's complete
		// restart takes over.
		rt.lastCP = nil
		return false
	}
	cp := rt.lastCP
	rt.stage(*k, stageRollback, func() { rt.l.resume(cp) })
	rt.rollbacks++
	es.res.Unrecoverable = false
	es.res.Rollbacks++
	rollbacksTotal.Inc()
	rollbackDepth.Observe(float64(*k + 1 - cp.NextStep))
	for i := range rt.factored {
		rt.factored[i] = false
	}
	*k = cp.NextStep - 1
	return true
}

// stage runs one coordinator-side stage: journal it, emit a wall span on
// the attached tracer, and execute.
func (rt *stepRuntime) stage(k int, name string, fn func()) {
	rt.journal = append(rt.journal, stageRec{Step: k, Name: name})
	t0 := time.Now()
	fn()
	rt.es.sys.Tracer().WallSpan(fmt.Sprintf("%s:%s[%d]", rt.es.decomp, name, k), "stage", t0, time.Since(t0))
}

// launchRest enqueues every live GPU's remaining trailing-update slice onto
// its stream and returns the per-stream completion events. The TMU stage
// was already journaled by the synchronous look-ahead slice. GPUs taken
// down by a node loss are skipped — their slices are empty (the
// reconstruction emptied their ownership tables) and launching on a dead
// device would abort the run the redundancy just saved.
func (rt *stepRuntime) launchRest(k int) []*hetsim.StreamEvent {
	G := rt.es.sys.NumGPUs()
	if rt.streams == nil {
		rt.streams = make([]*hetsim.Stream, G)
		for g := 0; g < G; g++ {
			rt.streams[g] = rt.es.sys.GPU(g).NewStream()
		}
	}
	evs := make([]*hetsim.StreamEvent, 0, G)
	for g := 0; g < G; g++ {
		if rt.es.sys.GPU(g).Lost() {
			continue
		}
		g := g
		rt.streams[g].Launch("tmu-rest", func() { rt.l.tmuGPU(k, g, tmuRest) })
		evs = append(evs, rt.streams[g].Record())
	}
	return evs
}

// close releases the runtime's streams. It runs on every exit path —
// including a fail-stop abort unwinding to the driver boundary — so no
// executor goroutine outlives the run (aborted streams drain their queue
// without executing it).
func (rt *stepRuntime) close() {
	for _, st := range rt.streams {
		if st != nil {
			st.Close()
		}
	}
}

// canonicalJournal returns the journal sorted into dependency order:
// by step, then by ladder stage rank. The look-ahead schedule records
// panel-factor(k+1) between step k's TMU and its finish; canonicalization
// restores the ladder order so the two schedules compare equal.
func (rt *stepRuntime) canonicalJournal() []stageRec {
	out := make([]stageRec, len(rt.journal))
	copy(out, rt.journal)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Step != out[j].Step {
			return out[i].Step < out[j].Step
		}
		return stageRank[out[i].Name] < stageRank[out[j].Name]
	})
	return out
}

// transfer moves src to dst over PCIe via the reliable protocol: the
// payload is checksummed at the source and verified on arrival, so a
// corrupting or flapping link is absorbed by retransmission below the
// factorization instead of feeding it damaged panels (see
// hetsim.TransferReliable). All of internal/core routes data movement
// through this wrapper (scripts/check.sh lints the package for direct
// sys.Transfer calls) so the schedule and the reliability policy stay
// visible in one place.
func (es *engineSys) transfer(src, dst *hetsim.Buffer) {
	es.sys.TransferReliable(src, dst)
}

// netTransfer is the cross-node counterpart of transfer: the movement of
// parity shipments and reconstruction traffic between *nodes* of the
// topology. It rides the same reliable protocol (the simulator classifies
// the link tier by the endpoints), but cross-node motion in the coded
// redundancy layer must route through this wrapper so it stays auditable —
// scripts/check.sh lints coded.go against the intra-node wrapper.
func (es *engineSys) netTransfer(src, dst *hetsim.Buffer) {
	es.sys.TransferReliable(src, dst)
}

// kernel executes a named kernel body on a device, charging flops to the
// simulated clock — the runtime-routed form of hetsim.Device.Run (driver
// files are linted against calling Run directly).
func (es *engineSys) kernel(d *hetsim.Device, name string, flops float64, body func(workers int)) {
	d.Run(name, flops, body)
}
