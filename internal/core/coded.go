package core

import (
	"math"
	"sort"
	"strconv"

	"ftla/internal/checksum"
	"ftla/internal/gf"
	"ftla/internal/hetsim"
	"ftla/internal/obs"
)

// Coded redundancy columns (DESIGN.md §11).
//
// ABFT checksums repair corrupted *values*; a whole-node loss removes every
// block column the node's GPUs held, and no column checksum can rebuild a
// column that is gone. The cluster layer therefore maintains an erasure
// code *across nodes*: every group of kk = Nodes-r consecutive data block
// columns carries r parity columns, one on each of the r nodes that own
// none of the group's members, so any ≤ r node losses remove at most r
// columns per group and the survivors plus the remaining parities rebuild
// the lost members exactly.
//
// The code is a [kk+r, kk] Reed-Solomon erasure code over GF(2^8), applied
// bytewise to the IEEE-754 bit patterns of the elements (math.Float64bits):
// parity j of a group is P_j = Σ_i gen[j][i]·D_i with gen the normalized
// Cauchy generator of internal/gf. Field addition is XOR, so — unlike a
// floating-point sum code — the code is closed under reconstruction with
// *zero* rounding error, which is what makes a node-loss-then-reconstruct
// run bit-identical to an uninterrupted one (the acceptance pin of PR 9,
// extended to multi-loss in PR 10). gen's row 0 is all ones, so parity 0 is
// the plain XOR of the members and the r = 1 configuration is bit-identical
// in effect to the previous hard-wired XOR scheme.
//
// Placement. Block columns start block-cyclic (bj on GPU bj mod G) and
// nodes are round-robin (GPU g on node g mod Nodes, with G a multiple of
// Nodes), so the members of group t — columns [t·kk, t·kk+kk) — land on kk
// *distinct* consecutive node residues, and parity j's GPU
// pg_j = (t·kk + kk + j) mod G lives on the j-th residue the members miss.
// Every node therefore holds exactly one column of each group (member or
// parity), so any ≤ r node losses remove at most r columns per group, and
// a loss never takes more columns than the surviving parities can solve
// for. Member→parity shipments cross nodes by construction and must go
// through engineSys.netTransfer (scripts/check.sh lints this file against
// the intra-node wrapper). Rebalancing migration preserves the invariant
// through the parity-aware protocol in rebalance.go: a cross-node move is
// only accepted toward a node holding one of the group's parities, which is
// then re-encoded on the donor's node (codedState.rehomeParity).
//
// Maintenance. Every live parity is refreshed at the end of every ladder
// step for all groups still holding a column >= k (full height: §VII.B
// repair paths may rewrite any row of a trailing column), and finalized
// groups — whose columns only change under LU row interchanges — track the
// swaps exactly by swapping the same parity rows (the code is row-local). A
// rollback restores data from the checkpoint and re-encodes all surviving
// parity (checkpoints do not carry it).
//
// Reconstruction. At a node-loss epoch the runtime calls reconstructNodes
// with every node that died at that boundary (simultaneous losses fire
// together; see hetsim.NodeEpoch). Parities on dead nodes are retired;
// then, per group, the e lost members are solved from the first e surviving
// parities: each selected parity GPU folds the surviving members into its
// parity copy (RHS_j = P_j ⊕ Σ gen[j][i]·D_i), the e×e generator submatrix
// is inverted over GF(2^8) — always possible, every square submatrix of a
// Cauchy matrix is nonsingular — and each lost member D = Σ inv·RHS is
// accumulated and adopted on a selected parity GPU, its checksum strips
// re-encoded from the rebuilt data. Redundancy is *dynamic*, not a global
// one-shot: a group stays recoverable while its lost members do not exceed
// its surviving parities, so an r = 2 cluster absorbs two losses whether
// they arrive in one epoch or two. Only when some group can no longer be
// solved does the typed hetsim.NodeLostError surface to the serving layer.

// Coded-redundancy instruments in the obs default registry.
var (
	// reconstructionsTotal counts block columns rebuilt from parity after a
	// node loss, labeled by the lost node and by how much redundancy the
	// cluster has spent/remaining after the rebuild (minimum surviving
	// parity count across groups).
	reconstructionsTotal = obs.Default().CounterVec(obs.MetricReconstructions,
		"Block columns rebuilt from erasure-coded parity after a node loss, labeled by node and by redundancy spent/remaining after the rebuild.",
		"node", "spent", "remaining")
	// parityBytesTotal counts the bytes the coded layer shipped between
	// nodes: parity encode/refresh traffic, reconstruction shipments, and
	// rebalance-driven parity re-encodes.
	parityBytesTotal = obs.Default().Counter(obs.MetricParityBytes,
		"Bytes shipped by the erasure-coded redundancy layer (parity refresh, reconstruction, and migration re-encodes).")
)

// parityGroup is one erasure-code group: data block columns [first, last]
// and their r parity columns on GPUs pgs. bufs[j] is parity j's n × nb
// column, nil once retired (its node was lost); pgs[j] tracks the hosting
// GPU and is rewritten when the rebalancer re-homes a parity.
type parityGroup struct {
	first, last int
	pgs         []int
	bufs        []*hetsim.Buffer
}

// liveParities returns the indices of the group's surviving parities.
func (g *parityGroup) liveParities() []int {
	var live []int
	for j, b := range g.bufs {
		if b != nil {
			live = append(live, j)
		}
	}
	return live
}

// codedState is the cross-node redundancy attached to a protected layout on
// multi-node topologies (nil on flat systems).
type codedState struct {
	p      *protected
	r      int      // parity columns per group
	kk     int      // data columns per parity group = Nodes - r
	gen    [][]byte // r × kk normalized Cauchy generator; gen[0] all ones
	groups []parityGroup
	// stage is a lazily allocated per-GPU staging column for member and RHS
	// shipments (reused across groups; transfers inside one coalesced
	// window complete in order).
	stage map[int]*hetsim.Buffer
	// tables caches the per-coefficient GF(2^8) multiplication tables the
	// parity kernels stream words through.
	tables map[byte]*gf.Table
	// nodesLost counts the node losses this state absorbed, for the
	// spent/remaining metric labels.
	nodesLost int
}

// redundancyOf resolves the Options.Redundancy knob against the topology:
// default 1, clamped into [1, Nodes-1] (at least one data column per group
// must remain; the layers above validate and reject out-of-range requests,
// this clamp is the defensive floor for direct core callers).
func redundancyOf(opts *Options, nodes int) int {
	r := opts.Redundancy
	if r < 1 {
		r = 1
	}
	if r > nodes-1 {
		r = nodes - 1
	}
	return r
}

// newCodedState builds the parity groups for p's layout. Requires at least
// two nodes; callers gate on that.
func newCodedState(p *protected) *codedState {
	nodes := p.es.sys.Nodes()
	G := p.es.sys.NumGPUs()
	r := redundancyOf(&p.es.opts, nodes)
	kk := nodes - r
	cs := &codedState{
		p: p, r: r, kk: kk,
		gen:    gf.Cauchy(r, kk),
		stage:  make(map[int]*hetsim.Buffer),
		tables: make(map[byte]*gf.Table),
	}
	for first := 0; first < p.nbr; first += kk {
		last := first + kk - 1
		if last >= p.nbr {
			last = p.nbr - 1
		}
		g := parityGroup{first: first, last: last, pgs: make([]int, r), bufs: make([]*hetsim.Buffer, r)}
		for j := 0; j < r; j++ {
			g.pgs[j] = (first + kk + j) % G
			g.bufs[j] = p.es.sys.GPU(g.pgs[j]).Alloc(p.n, p.nb)
		}
		cs.groups = append(cs.groups, g)
	}
	return cs
}

// groupOf returns the parity-group index of block column bj.
func (cs *codedState) groupOf(bj int) int { return bj / cs.kk }

// exhausted reports that no group has a surviving parity column left —
// maintenance is pointless and the next loss is terminal for every group.
func (cs *codedState) exhausted() bool {
	for t := range cs.groups {
		for _, b := range cs.groups[t].bufs {
			if b != nil {
				return false
			}
		}
	}
	return true
}

// table returns the cached multiplication table of coefficient c.
func (cs *codedState) table(c byte) *gf.Table {
	if t, ok := cs.tables[c]; ok {
		return t
	}
	t := gf.MulTable(c)
	cs.tables[c] = t
	return t
}

// stageBuf returns the reusable staging column on GPU g.
func (cs *codedState) stageBuf(g int) *hetsim.Buffer {
	if b, ok := cs.stage[g]; ok {
		return b
	}
	b := cs.p.es.sys.GPU(g).Alloc(cs.p.n, cs.p.nb)
	cs.stage[g] = b
	return b
}

// ship moves a parity-layer column between devices over the reliable
// cross-node wrapper and counts its bytes on the parity-traffic meter.
func (cs *codedState) ship(src, dst *hetsim.Buffer) {
	cs.p.es.netTransfer(src, dst)
	parityBytesTotal.Add(uint64(8 * cs.p.n * cs.p.nb))
}

// axpyInto folds c·src into dst over the float bit patterns (dst ^= c·src
// bytewise in GF(2^8)), both resident on dev. With c = 1 the table is the
// identity and the kernel is the plain XOR of the r = 1 code.
func (cs *codedState) axpyInto(dev *hetsim.Device, dst, src *hetsim.Buffer, c byte) {
	t := cs.table(c)
	cs.p.es.kernel(dev, "parity-axpy", float64(cs.p.n*cs.p.nb), func(int) {
		d, s := dst.Access(dev), src.Access(dev)
		for i := 0; i < d.Rows; i++ {
			dr, sr := d.Row(i), s.Row(i)
			for j := range dr {
				dr[j] = math.Float64frombits(math.Float64bits(dr[j]) ^ t.MulWord(math.Float64bits(sr[j])))
			}
		}
	})
}

// scaleInto overwrites dst with c·src (bytewise GF(2^8) over the bit
// patterns), both resident on dev.
func (cs *codedState) scaleInto(dev *hetsim.Device, dst, src *hetsim.Buffer, c byte) {
	t := cs.table(c)
	cs.p.es.kernel(dev, "parity-scale", float64(cs.p.n*cs.p.nb), func(int) {
		d, s := dst.Access(dev), src.Access(dev)
		for i := 0; i < d.Rows; i++ {
			dr, sr := d.Row(i), s.Row(i)
			for j := range dr {
				dr[j] = math.Float64frombits(t.MulWord(math.Float64bits(sr[j])))
			}
		}
	})
}

// memberView returns the current device-resident column of block column bj.
func (cs *codedState) memberView(bj int) *hetsim.Buffer {
	p := cs.p
	return p.local[p.owner(bj)].View(0, p.localOff(bj), p.n, p.nb)
}

// encodeParity recomputes parity j of group t onto buf (resident on GPU
// pg) from the members' current contents: buf = Σ_i gen[j][i]·D_i. The
// first member with coefficient 1 is copied over the wire straight onto the
// parity column; the rest are staged (or read in place when a member — a
// reconstruction adoptee or a migrated column — shares pg's device) and
// multiply-accumulated in.
func (cs *codedState) encodeParity(t, j, pg int, buf *hetsim.Buffer) {
	g := &cs.groups[t]
	p := cs.p
	dev := p.es.sys.GPU(pg)
	started := false
	for bj := g.first; bj <= g.last; bj++ {
		c := cs.gen[j][bj-g.first]
		local := p.owner(bj) == pg
		if !started && c == 1 && !local {
			cs.ship(cs.memberView(bj), buf)
			started = true
			continue
		}
		src := cs.memberView(bj)
		if !local {
			stage := cs.stageBuf(pg)
			cs.ship(src, stage)
			src = stage
		}
		if !started {
			cs.scaleInto(dev, buf, src, c)
			started = true
		} else {
			cs.axpyInto(dev, buf, src, c)
		}
	}
}

// refreshGroup recomputes every surviving parity of group t from its
// members' current contents.
func (cs *codedState) refreshGroup(t int) {
	g := &cs.groups[t]
	for j, buf := range g.bufs {
		if buf != nil {
			cs.encodeParity(t, j, g.pgs[j], buf)
		}
	}
}

// refresh re-encodes the surviving parity of every group still holding a
// column >= k, inside one coalesced-transfer window so a round pays each
// link's latency once. refresh(0) is the initial full encode.
func (cs *codedState) refresh(k int) {
	cs.p.es.sys.CoalesceTransfers(func() {
		for t := range cs.groups {
			if cs.groups[t].last >= k {
				cs.refreshGroup(t)
			}
		}
	})
}

// swapRows mirrors an LU row interchange onto the surviving parities of
// every group whose members all lie in [bjLo, bjHi): the code is row-local
// (each parity row depends only on the same member rows), so swapping the
// same rows keeps the parity exact. Partially covered groups are left
// stale — they are active by construction (the swap ranges [0,k) and
// [k+1,nbr) only straddle the group holding the pivot column) and the
// end-of-step refresh rewrites them.
func (cs *codedState) swapRows(r1, r2, bjLo, bjHi int) {
	for t := range cs.groups {
		g := &cs.groups[t]
		if g.first < bjLo || g.last >= bjHi {
			continue
		}
		for j, buf := range g.bufs {
			if buf == nil {
				continue
			}
			dev := cs.p.es.sys.GPU(g.pgs[j])
			buf := buf
			cs.p.es.kernel(dev, "parity-swap", float64(cs.p.nb), func(int) {
				m := buf.Access(dev)
				a, b := m.Row(r1), m.Row(r2)
				for j := range a {
					a[j], b[j] = b[j], a[j]
				}
			})
		}
	}
}

// rehomeParity re-encodes parity j of group t onto a fresh column on GPU
// dst and retires the old copy — the parity half of the parity-aware
// migration protocol (rebalance.go): when a member migrates onto the node
// hosting one of its group's parities, that parity moves to the donor's
// node, keeping every node at exactly one column per group. Re-encoding
// (rather than copying the old buffer) is valid because migration does not
// change member bits, and it keeps all parity motion on the member→parity
// shipment paths the transfer lint audits.
func (cs *codedState) rehomeParity(t, j, dst int) {
	g := &cs.groups[t]
	buf := cs.p.es.sys.GPU(dst).Alloc(cs.p.n, cs.p.nb)
	cs.encodeParity(t, j, dst, buf)
	g.pgs[j] = dst
	g.bufs[j] = buf
}

// reconstructNodes rebuilds every block column the lost nodes' GPUs held.
// All nodes that died at one epoch boundary are handled together — a
// simultaneous r-node burst removes up to r columns per group, which is
// exactly what r surviving parities can solve. It returns how many columns
// were rebuilt, or the typed error when some group lost more members than
// it has surviving parities (redundancy truly spent — the serving layer's
// failover ladder takes over). The caller (the step runtime's node-loss
// stage) guarantees the parity is fresh: losses fire only at epoch
// boundaries, after the previous step's refresh.
func (cs *codedState) reconstructNodes(lostNodes []int) (int, error) {
	p := cs.p
	sys := p.es.sys
	cs.nodesLost += len(lostNodes)
	lostSet := make(map[int]bool, len(lostNodes))
	for _, node := range lostNodes {
		lostSet[node] = true
	}
	// Retire parities hosted on the dead nodes.
	for t := range cs.groups {
		g := &cs.groups[t]
		for j, buf := range g.bufs {
			if buf != nil && lostSet[sys.NodeOf(g.pgs[j])] {
				g.bufs[j] = nil
			}
		}
	}
	// Collect the lost data columns, attributed to the node that held them.
	G := sys.NumGPUs()
	var lost []int
	byNode := make(map[int]int, len(lostNodes))
	for g := 0; g < G; g++ {
		if node := sys.NodeOf(g); lostSet[node] {
			lost = append(lost, p.blocks[g]...)
			byNode[node] += len(p.blocks[g])
		}
	}
	sort.Ints(lost)
	// Feasibility before any mutation: every group must be solvable.
	byGroup := make(map[int][]int)
	for _, bj := range lost {
		t := cs.groupOf(bj)
		byGroup[t] = append(byGroup[t], bj)
	}
	for t, members := range byGroup {
		if len(members) > len(cs.groups[t].liveParities()) {
			node := lostNodes[0]
			gpus := 0
			for g := 0; g < G; g++ {
				if sys.NodeOf(g) == node {
					gpus++
				}
			}
			return 0, &hetsim.NodeLostError{Node: node, GPUs: gpus, Op: "reconstruct"}
		}
	}
	groups := make([]int, 0, len(byGroup))
	for t := range byGroup {
		groups = append(groups, t)
	}
	sort.Ints(groups)
	sys.CoalesceTransfers(func() {
		for _, t := range groups {
			cs.rebuildGroup(t, byGroup[t])
		}
	})
	spent, remaining := cs.redundancyLeft()
	for _, node := range lostNodes {
		if n := byNode[node]; n > 0 {
			reconstructionsTotal.With(strconv.Itoa(node), strconv.Itoa(spent), strconv.Itoa(remaining)).Add(uint64(n))
		}
	}
	return len(lost), nil
}

// redundancyLeft summarizes the cluster's surviving margin: remaining is
// the minimum live-parity count over all groups (how many further member
// losses the weakest group can still absorb), spent is the gap to the
// configured r.
func (cs *codedState) redundancyLeft() (spent, remaining int) {
	remaining = cs.r
	for t := range cs.groups {
		if live := len(cs.groups[t].liveParities()); live < remaining {
			remaining = live
		}
	}
	return cs.r - remaining, remaining
}

// rebuildGroup recovers group t's e lost members from its first e surviving
// parities. On each selected parity GPU the survivors are folded into a
// copy of the parity column — RHS_a = P_{j_a} ⊕ Σ_{surviving i}
// gen[j_a][i]·D_i — leaving an e×e linear system over GF(2^8) whose matrix
// is a square submatrix of the Cauchy generator, hence invertible. Each
// lost member D_{l_b} = Σ_a inv[b][a]·RHS_a is accumulated on the b-th
// selected parity GPU and adopted there. With e = 1 and a surviving parity
// 0 this degenerates to recon = parity ⊕ (XOR of survivors): the exact r=1
// path of PR 9.
func (cs *codedState) rebuildGroup(t int, lostMembers []int) {
	p := cs.p
	sys := p.es.sys
	g := &cs.groups[t]
	e := len(lostMembers)
	sel := g.liveParities()[:e]
	isLost := make(map[int]bool, e)
	for _, bj := range lostMembers {
		isLost[bj] = true
	}

	// RHS scratches, one per selected parity, resident on its GPU.
	rhs := make([]*hetsim.Buffer, e)
	for a, j := range sel {
		pg := g.pgs[j]
		dev := sys.GPU(pg)
		scratch := dev.Alloc(p.n, p.nb)
		copyWithin(dev, g.bufs[j], scratch)
		for bj := g.first; bj <= g.last; bj++ {
			if isLost[bj] {
				continue
			}
			src := cs.memberView(bj)
			if p.owner(bj) != pg {
				stage := cs.stageBuf(pg)
				cs.ship(src, stage)
				src = stage
			}
			cs.axpyInto(dev, scratch, src, cs.gen[j][bj-g.first])
		}
		rhs[a] = scratch
	}

	// Invert the e×e generator submatrix (selected parity rows × lost
	// member columns).
	sub := make([][]byte, e)
	for a, j := range sel {
		sub[a] = make([]byte, e)
		for b, bj := range lostMembers {
			sub[a][b] = cs.gen[j][bj-g.first]
		}
	}
	inv, ok := gf.Invert(sub)
	if !ok {
		// Unreachable for a Cauchy generator; a panic here means the
		// generator construction is broken, not a recoverable runtime state.
		panic("core: erasure decode matrix singular")
	}

	// Accumulate and adopt each lost member on its selected parity GPU.
	for b, bj := range lostMembers {
		dst := g.pgs[sel[b]]
		dev := sys.GPU(dst)
		recon := dev.Alloc(p.n, p.nb)
		for a := range sel {
			src := rhs[a]
			if a != b {
				stage := cs.stageBuf(dst)
				cs.ship(rhs[a], stage)
				src = stage
			}
			if a == 0 {
				cs.scaleInto(dev, recon, src, inv[b][a])
			} else {
				cs.axpyInto(dev, recon, src, inv[b][a])
			}
		}
		cs.adopt(bj, dst, recon)
	}
}

// adopt inserts the rebuilt column recon (resident on GPU dst) into dst's
// slab at bj's sorted position, re-encodes its checksum strips from the
// data, and rewrites the ownership tables. Unlike migrateColumn the source
// slab is never compacted — its device is gone — so the source-side update
// is bookkeeping only.
func (cs *codedState) adopt(bj, dst int, recon *hetsim.Buffer) {
	p := cs.p
	es := p.es
	nb, n := p.nb, p.n
	src := p.own[bj]
	sl := p.loc[bj]
	chk := es.opts.Mode != NoChecksum
	full := es.opts.Mode == Full
	ddev := es.sys.GPU(dst)

	// Open a hole at the sorted insertion point (device-local shift).
	idx := sort.SearchInts(p.blocks[dst], bj)
	if w := (p.nloc[dst] - idx) * nb; w > 0 {
		copyWithin(ddev, p.local[dst].View(0, idx*nb, n, w), p.local[dst].View(0, (idx+1)*nb, n, w))
		if chk {
			copyWithin(ddev, p.colChk[dst].View(0, idx*nb, 2*p.nbr, w), p.colChk[dst].View(0, (idx+1)*nb, 2*p.nbr, w))
		}
		if full {
			wp := 2 * (p.nloc[dst] - idx)
			copyWithin(ddev, p.rowChk[dst].View(0, 2*idx, n, wp), p.rowChk[dst].View(0, 2*(idx+1), n, wp))
		}
	}
	copyWithin(ddev, recon, p.local[dst].View(0, idx*nb, n, nb))

	// Certified re-encode: the maintained strips died with the node; fresh
	// strips from the rebuilt data verify exactly clean.
	if chk {
		data := p.local[dst].View(0, idx*nb, n, nb)
		cc := p.colChk[dst].View(0, idx*nb, 2*p.nbr, nb)
		es.kernel(ddev, "encode-col", 4*float64(n*nb), func(w int) {
			checksum.EncodeCol(es.opts.Kernel, w, data.Access(ddev), nb, cc.Access(ddev))
		})
	}
	if full {
		data := p.local[dst].View(0, idx*nb, n, nb)
		rc := p.rowChk[dst].View(0, 2*idx, n, 2)
		es.kernel(ddev, "encode-row", 4*float64(n*nb), func(w int) {
			checksum.EncodeRow(es.opts.Kernel, w, data.Access(ddev), nb, rc.Access(ddev))
		})
	}

	// Tables: remove bj from the dead source, insert into dst at idx.
	p.blocks[src] = append(p.blocks[src][:sl], p.blocks[src][sl+1:]...)
	p.nloc[src]--
	for _, b := range p.blocks[src][sl:] {
		p.loc[b]--
	}
	p.blocks[dst] = append(p.blocks[dst], 0)
	copy(p.blocks[dst][idx+1:], p.blocks[dst][idx:])
	p.blocks[dst][idx] = bj
	p.nloc[dst]++
	for i := idx; i < p.nloc[dst]; i++ {
		p.loc[p.blocks[dst][i]] = i
	}
	p.own[bj] = dst
}
