package core

import (
	"math"
	"sort"
	"strconv"

	"ftla/internal/checksum"
	"ftla/internal/hetsim"
	"ftla/internal/obs"
)

// Coded redundancy columns (DESIGN.md §11).
//
// ABFT checksums repair corrupted *values*; a whole-node loss removes every
// block column the node's GPUs held, and no column checksum can rebuild a
// column that is gone. The cluster layer therefore maintains an erasure
// code *across nodes*: every group of k = Nodes-1 consecutive data block
// columns carries one parity column (r = 1) stored on the one node that
// owns none of the group's members, so any single node loss removes at most
// one column per group and the survivors plus parity rebuild it exactly.
//
// The code is XOR over the IEEE-754 bit patterns of the elements
// (math.Float64bits) — a [k+1, k] erasure code over GF(2^64). Unlike a
// floating-point sum code it is closed under reconstruction with *zero*
// rounding error, which is what makes the node-loss-then-reconstruct run
// bit-identical to an uninterrupted one (the acceptance pin of PR 9).
//
// Placement. Block columns start block-cyclic (bj on GPU bj mod G) and
// nodes are round-robin (GPU g on node g mod Nodes), so the members of
// group t — columns [t·k, t·k+k) — land on k *distinct* consecutive node
// residues, and the parity GPU pg = (t·k + Nodes − 1) mod G lives on
// exactly the residue the members miss. Two consequences the rest of the
// file leans on: every member→parity movement crosses nodes (and must go
// through engineSys.netTransfer — scripts/check.sh lints this file against
// the intra-node wrapper), and a node loss never takes a member *and* its
// parity. Rebalancing migration would break the node-disjointness, so the
// step runtime keeps the rebalancer off on multi-node topologies.
//
// Maintenance. Parity is refreshed at the end of every ladder step for all
// groups still holding a column >= k (full height: §VII.B repair paths may
// rewrite any row of a trailing column), and finalized groups — whose
// columns only change under LU row interchanges — track the swaps exactly
// by swapping the same parity rows. A rollback restores data from the
// checkpoint and re-encodes all parity (checkpoints do not carry it).
//
// Reconstruction. At a node-loss epoch the runtime calls reconstructNode:
// each lost column is rebuilt bit-exactly by XOR-ing the surviving members
// of its group into the parity copy, adopted into the parity GPU's slab at
// its sorted position, and its checksum strips are re-encoded from the
// rebuilt data (bit-different from the incrementally maintained strips, but
// exactly consistent — every later verification passes, and the final
// factors read only data). With r = 1 the redundancy is spent after one
// loss; a second loss surfaces hetsim.NodeLostError to the serving layer.

// reconstructionsTotal counts block columns rebuilt from parity after a
// node loss, labeled by the lost node, in the obs default registry.
var reconstructionsTotal = obs.Default().CounterVec(obs.MetricReconstructions,
	"Block columns rebuilt from erasure-coded parity after a node loss, labeled by node.", "node")

// parityGroup is one erasure-code group: data block columns
// [first, last] and their parity column on GPU pg.
type parityGroup struct {
	first, last int
	pg          int
	buf         *hetsim.Buffer // n × nb parity column, resident on pg
}

// codedState is the cross-node redundancy attached to a protected layout on
// multi-node topologies (nil on flat systems).
type codedState struct {
	p      *protected
	kk     int // data columns per parity group = Nodes-1
	groups []parityGroup
	// stage is a lazily allocated per-parity-GPU staging column for
	// member shipments (reused across groups; transfers inside one
	// coalesced window complete in order).
	stage map[int]*hetsim.Buffer
	// spent marks the redundancy consumed: a node loss happened (whether
	// the lost node held members or parity, r=1 cannot absorb another) and
	// parity maintenance stops.
	spent bool
}

// newCodedState builds the parity groups for p's layout. Requires at least
// two nodes; callers gate on that.
func newCodedState(p *protected) *codedState {
	nodes := p.es.sys.Nodes()
	G := p.es.sys.NumGPUs()
	kk := nodes - 1
	cs := &codedState{p: p, kk: kk, stage: make(map[int]*hetsim.Buffer)}
	for first := 0; first < p.nbr; first += kk {
		last := first + kk - 1
		if last >= p.nbr {
			last = p.nbr - 1
		}
		pg := (first + nodes - 1) % G
		cs.groups = append(cs.groups, parityGroup{
			first: first,
			last:  last,
			pg:    pg,
			buf:   p.es.sys.GPU(pg).Alloc(p.n, p.nb),
		})
	}
	return cs
}

// stageBuf returns the reusable staging column on GPU g.
func (cs *codedState) stageBuf(g int) *hetsim.Buffer {
	if b, ok := cs.stage[g]; ok {
		return b
	}
	b := cs.p.es.sys.GPU(g).Alloc(cs.p.n, cs.p.nb)
	cs.stage[g] = b
	return b
}

// xorInto folds src into dst element-wise over the float bit patterns, both
// resident on dev.
func (cs *codedState) xorInto(dev *hetsim.Device, dst, src *hetsim.Buffer) {
	cs.p.es.kernel(dev, "parity-xor", float64(cs.p.n*cs.p.nb), func(int) {
		d, s := dst.Access(dev), src.Access(dev)
		for i := 0; i < d.Rows; i++ {
			dr, sr := d.Row(i), s.Row(i)
			for j := range dr {
				dr[j] = math.Float64frombits(math.Float64bits(dr[j]) ^ math.Float64bits(sr[j]))
			}
		}
	})
}

// memberView returns the current device-resident column of block column bj.
func (cs *codedState) memberView(bj int) *hetsim.Buffer {
	p := cs.p
	return p.local[p.owner(bj)].View(0, p.localOff(bj), p.n, p.nb)
}

// refreshGroup recomputes group t's parity from its members' current
// contents: the first member is copied over the wire onto the parity
// column, the rest are staged and XOR-ed in. Every shipment is cross-node
// by the placement invariant.
func (cs *codedState) refreshGroup(t int) {
	g := &cs.groups[t]
	p := cs.p
	pgdev := p.es.sys.GPU(g.pg)
	for bj := g.first; bj <= g.last; bj++ {
		if bj == g.first {
			p.es.netTransfer(cs.memberView(bj), g.buf)
			continue
		}
		stage := cs.stageBuf(g.pg)
		p.es.netTransfer(cs.memberView(bj), stage)
		cs.xorInto(pgdev, g.buf, stage)
	}
}

// refresh re-encodes the parity of every group still holding a column
// >= k, inside one coalesced-transfer window so a round pays each link's
// latency once. refresh(0) is the initial full encode.
func (cs *codedState) refresh(k int) {
	if cs.spent {
		return
	}
	cs.p.es.sys.CoalesceTransfers(func() {
		for t := range cs.groups {
			if cs.groups[t].last >= k {
				cs.refreshGroup(t)
			}
		}
	})
}

// swapRows mirrors an LU row interchange onto the parity of every group
// whose members all lie in [bjLo, bjHi): XOR is row-local, so swapping the
// same rows keeps the parity exact. Partially covered groups are left
// stale — they are active by construction (the swap ranges [0,k) and
// [k+1,nbr) only straddle the group holding the pivot column) and the
// end-of-step refresh rewrites them.
func (cs *codedState) swapRows(r1, r2, bjLo, bjHi int) {
	if cs.spent {
		return
	}
	for t := range cs.groups {
		g := &cs.groups[t]
		if g.first < bjLo || g.last >= bjHi {
			continue
		}
		dev := cs.p.es.sys.GPU(g.pg)
		buf := g.buf
		cs.p.es.kernel(dev, "parity-swap", float64(cs.p.nb), func(int) {
			m := buf.Access(dev)
			a, b := m.Row(r1), m.Row(r2)
			for j := range a {
				a[j], b[j] = b[j], a[j]
			}
		})
	}
}

// reconstructNode rebuilds every block column the lost node's GPUs held
// and retires the redundancy (r = 1). It returns how many columns were
// rebuilt. The caller (the step runtime's node-loss stage) guarantees the
// parity is fresh: losses fire only at epoch boundaries, after the
// previous step's refresh.
func (cs *codedState) reconstructNode(node int) int {
	p := cs.p
	sys := p.es.sys
	cs.spent = true
	G := sys.NumGPUs()
	var lost []int
	for g := 0; g < G; g++ {
		if sys.NodeOf(g) == node {
			lost = append(lost, p.blocks[g]...)
		}
	}
	sort.Ints(lost)
	sys.CoalesceTransfers(func() {
		for _, bj := range lost {
			cs.rebuildColumn(bj)
		}
	})
	if len(lost) > 0 {
		reconstructionsTotal.With(strconv.Itoa(node)).Add(uint64(len(lost)))
	}
	return len(lost)
}

// rebuildColumn recovers lost block column bj on its group's parity GPU:
// recon = parity XOR (XOR of surviving members), which is bit-exactly the
// lost column, then adopts it into the parity GPU's slab.
func (cs *codedState) rebuildColumn(bj int) {
	p := cs.p
	t := bj / cs.kk
	g := &cs.groups[t]
	pgdev := p.es.sys.GPU(g.pg)
	recon := pgdev.Alloc(p.n, p.nb)
	copyWithin(pgdev, g.buf, recon)
	for m := g.first; m <= g.last; m++ {
		if m == bj {
			continue
		}
		stage := cs.stageBuf(g.pg)
		p.es.netTransfer(cs.memberView(m), stage)
		cs.xorInto(pgdev, recon, stage)
	}
	cs.adopt(bj, g.pg, recon)
}

// adopt inserts the rebuilt column recon (resident on GPU dst) into dst's
// slab at bj's sorted position, re-encodes its checksum strips from the
// data, and rewrites the ownership tables. Unlike migrateColumn the source
// slab is never compacted — its device is gone — so the source-side update
// is bookkeeping only.
func (cs *codedState) adopt(bj, dst int, recon *hetsim.Buffer) {
	p := cs.p
	es := p.es
	nb, n := p.nb, p.n
	src := p.own[bj]
	sl := p.loc[bj]
	chk := es.opts.Mode != NoChecksum
	full := es.opts.Mode == Full
	ddev := es.sys.GPU(dst)

	// Open a hole at the sorted insertion point (device-local shift).
	idx := sort.SearchInts(p.blocks[dst], bj)
	if w := (p.nloc[dst] - idx) * nb; w > 0 {
		copyWithin(ddev, p.local[dst].View(0, idx*nb, n, w), p.local[dst].View(0, (idx+1)*nb, n, w))
		if chk {
			copyWithin(ddev, p.colChk[dst].View(0, idx*nb, 2*p.nbr, w), p.colChk[dst].View(0, (idx+1)*nb, 2*p.nbr, w))
		}
		if full {
			wp := 2 * (p.nloc[dst] - idx)
			copyWithin(ddev, p.rowChk[dst].View(0, 2*idx, n, wp), p.rowChk[dst].View(0, 2*(idx+1), n, wp))
		}
	}
	copyWithin(ddev, recon, p.local[dst].View(0, idx*nb, n, nb))

	// Certified re-encode: the maintained strips died with the node; fresh
	// strips from the rebuilt data verify exactly clean.
	if chk {
		data := p.local[dst].View(0, idx*nb, n, nb)
		cc := p.colChk[dst].View(0, idx*nb, 2*p.nbr, nb)
		es.kernel(ddev, "encode-col", 4*float64(n*nb), func(w int) {
			checksum.EncodeCol(es.opts.Kernel, w, data.Access(ddev), nb, cc.Access(ddev))
		})
	}
	if full {
		data := p.local[dst].View(0, idx*nb, n, nb)
		rc := p.rowChk[dst].View(0, 2*idx, n, 2)
		es.kernel(ddev, "encode-row", 4*float64(n*nb), func(w int) {
			checksum.EncodeRow(es.opts.Kernel, w, data.Access(ddev), nb, rc.Access(ddev))
		})
	}

	// Tables: remove bj from the dead source, insert into dst at idx.
	p.blocks[src] = append(p.blocks[src][:sl], p.blocks[src][sl+1:]...)
	p.nloc[src]--
	for _, b := range p.blocks[src][sl:] {
		p.loc[b]--
	}
	p.blocks[dst] = append(p.blocks[dst], 0)
	copy(p.blocks[dst][idx+1:], p.blocks[dst][idx:])
	p.blocks[dst][idx] = bj
	p.nloc[dst]++
	for i := idx; i < p.nloc[dst]; i++ {
		p.loc[p.blocks[dst][i]] = i
	}
	p.own[bj] = dst
}
