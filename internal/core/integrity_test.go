package core

import (
	"errors"
	"testing"

	"ftla/internal/checksum"
	"ftla/internal/fault"
	"ftla/internal/hetsim"
	"ftla/internal/matrix"
)

// tamperAndCapture is interruptAndCapture with sabotage: the OnCheckpoint
// hook mutates the snapshot the moment it is handed out, proving the
// runtime seals the content checksum before user code can observe the
// checkpoint. The tamper targets the piece the driver populates last
// (Piv for LU, Tau for QR, a data panel for Cholesky), pinning that seal
// happens after the driver finished writing, not inside captureCheckpoint.
func tamperAndCapture(t *testing.T, decomp string, a *matrix.Dense, base Options, afterOps int) (*Checkpoint, bool) {
	t.Helper()
	var last *Checkpoint
	opts := base
	opts.CheckpointEvery = 1
	opts.OnCheckpoint = func(cp *Checkpoint) {
		switch decomp {
		case "lu":
			cp.Piv[0]++
		case "qr":
			cp.Tau[0] += 0.5
		default:
			row := cp.Data[0].Row(0)
			row[0] += 1
		}
		last = cp
	}
	opts.FailStop = map[int]hetsim.FaultPlan{3: {Mode: hetsim.FaultCrash, AfterOps: afterOps}}
	_, _, _, _, err := runDecomp(decomp, testSystem(4), a, opts)
	if err == nil {
		return nil, false
	}
	var lost *hetsim.DeviceLostError
	if !errors.As(err, &lost) {
		t.Fatalf("%s: interrupted run failed with %v, want DeviceLostError", decomp, err)
	}
	return last, last != nil
}

// TestTamperedCheckpointRejectedAtResume: a checkpoint mutated after
// capture — here by the OnCheckpoint hook itself — is refused by
// Options.Resume with an error classified by ErrCheckpointIntegrity, and
// the integrity-failure metric ticks. A tampered snapshot is never
// silently replayed.
func TestTamperedCheckpointRejectedAtResume(t *testing.T) {
	for _, decomp := range []string{"cholesky", "lu", "qr"} {
		t.Run(decomp, func(t *testing.T) {
			base := Options{NB: 16, Mode: Full, Scheme: NewScheme, Kernel: checksum.OptKernel}
			a := pipelineInput(decomp, 96)

			var cp *Checkpoint
			for _, afterOps := range []int{30, 50, 15, 80} {
				if got, ok := tamperAndCapture(t, decomp, a, base, afterOps); ok {
					cp = got
					break
				}
			}
			if cp == nil {
				t.Fatal("no candidate op count crashed mid-run with a checkpoint in hand")
			}

			before := checkpointIntegrityFailures.Value()
			resOpts := base
			resOpts.Resume = cp
			_, _, _, _, err := runDecomp(decomp, testSystem(3), a, resOpts)
			if err == nil {
				t.Fatal("resume accepted a tampered checkpoint")
			}
			if !errors.Is(err, ErrCheckpointIntegrity) {
				t.Fatalf("resume err = %v, want ErrCheckpointIntegrity", err)
			}
			if checkpointIntegrityFailures.Value() <= before {
				t.Fatal("integrity rejection did not tick the metric")
			}
		})
	}
}

// TestUntamperedCheckpointStillResumes is the control for the tamper test:
// the same capture path without sabotage resumes cleanly, so the rejection
// above is the checksum speaking, not a broken capture.
func TestUntamperedCheckpointStillResumes(t *testing.T) {
	base := Options{NB: 16, Mode: Full, Scheme: NewScheme, Kernel: checksum.OptKernel}
	a := pipelineInput("lu", 96)
	var cp *Checkpoint
	for _, afterOps := range []int{30, 50, 15, 80} {
		if got, ok := interruptAndCapture(t, "lu", a, base, afterOps); ok {
			cp = got
			break
		}
	}
	if cp == nil {
		t.Fatal("no candidate op count crashed mid-run with a checkpoint in hand")
	}
	resOpts := base
	resOpts.Resume = cp
	_, _, _, res, err := runDecomp("lu", testSystem(3), a, resOpts)
	if err != nil {
		t.Fatalf("clean checkpoint rejected: %v", err)
	}
	if res.Unrecoverable {
		t.Fatal("clean resume surrendered")
	}
}

// TestTamperedCheckpointRefusedAtRollback: when the in-memory checkpoint a
// rollback would restore has been corrupted, the runtime discards it and
// lets the uncorrectable verdict stand (detected surrender) instead of
// replaying garbage. Mirrors TestRollbackRecoversUncorrectable with a
// sabotaged snapshot: there the rollback saves the run, here it must not.
func TestTamperedCheckpointRefusedAtRollback(t *testing.T) {
	a := pipelineInput("lu", 96)
	for _, lookahead := range []int{0, 1} {
		inj := fault.NewInjector(7)
		for _, row := range []int{1, 2} {
			inj.Schedule(fault.Spec{
				Kind: fault.OffChipMemory, Op: fault.PD, Part: fault.ReferencePart,
				Iteration: 2, Row: row, Col: 0,
			})
		}
		opts := Options{NB: 16, Mode: SingleSide, Scheme: NewScheme, Kernel: checksum.OptKernel}
		opts.Lookahead = lookahead
		opts.Injector = inj
		opts.CheckpointEvery = 1
		opts.OnCheckpoint = func(cp *Checkpoint) { cp.Piv[0]++ }

		before := checkpointIntegrityFailures.Value()
		_, _, res, err := LU(testSystem(2), a, opts)
		if err != nil {
			t.Fatalf("lookahead=%d: run errored: %v", lookahead, err)
		}
		if res.Rollbacks != 0 {
			t.Fatalf("lookahead=%d: Rollbacks = %d, want 0 (tampered snapshot must not be restored)",
				lookahead, res.Rollbacks)
		}
		if !res.Unrecoverable || !res.Detected {
			t.Fatalf("lookahead=%d: Unrecoverable=%v Detected=%v, want detected surrender",
				lookahead, res.Unrecoverable, res.Detected)
		}
		if checkpointIntegrityFailures.Value() <= before {
			t.Fatalf("lookahead=%d: rollback rejection did not tick the integrity metric", lookahead)
		}
	}
}

// TestCheckpointSumSurvivesRoundTrip pins that sealing is deterministic:
// re-deriving the content checksum of an untouched checkpoint matches the
// stored Sum for every decomposition.
func TestCheckpointSumSurvivesRoundTrip(t *testing.T) {
	for _, decomp := range []string{"cholesky", "lu", "qr"} {
		base := Options{NB: 16, Mode: Full, Scheme: NewScheme, Kernel: checksum.OptKernel}
		a := pipelineInput(decomp, 96)
		var cps []*Checkpoint
		opts := base
		opts.CheckpointEvery = 1
		opts.OnCheckpoint = func(cp *Checkpoint) { cps = append(cps, cp) }
		if _, _, _, _, err := runDecomp(decomp, testSystem(2), a, opts); err != nil {
			t.Fatalf("%s: clean run failed: %v", decomp, err)
		}
		if len(cps) == 0 {
			t.Fatalf("%s: no checkpoints captured", decomp)
		}
		for i, cp := range cps {
			if err := cp.verifyIntegrity(); err != nil {
				t.Fatalf("%s: checkpoint %d failed self-verification: %v", decomp, i, err)
			}
			if cp.Sum == 0 {
				t.Fatalf("%s: checkpoint %d has zero Sum (never sealed?)", decomp, i)
			}
		}
	}
}
