package core

import (
	"ftla/internal/checksum"
	"ftla/internal/hetsim"
	"ftla/internal/matrix"
	"ftla/internal/obs"
)

// plan expands a Scheme into concrete verification points. The paper's
// Table VI compares the block-verification volume these induce.
type plan struct {
	// beforePD verifies the panel about to be decomposed (for NewScheme
	// this also performs the heuristic TMU follow-up of §VII.B Fig. 4b).
	beforePD bool
	// afterPDCPU verifies the decomposed panel on the CPU before
	// broadcast, via the factor-product checksum relation (see
	// pdProductCheck* in the drivers).
	afterPDCPU bool
	// afterPDBcast verifies the received panel on every GPU after the
	// broadcast — the paper's postponed check that covers PCIe (§VII).
	afterPDBcast bool
	// beforePU / afterPU verify the panel being updated around PU.
	beforePU bool
	afterPU  bool
	// afterPUBcast verifies the received PU panel on every GPU after the
	// inter-GPU broadcast (Cholesky's L21 broadcast).
	afterPUBcast bool
	// beforeTMUPanels verifies TMU's reference panels; beforeTMUTrailing
	// verifies the whole trailing matrix as TMU input (PriorOp).
	beforeTMUPanels   bool
	beforeTMUTrailing bool
	// afterTMUTrailing verifies the whole trailing matrix as TMU output
	// (PostOp); afterTMUHeuristic runs the cheap panel-only heuristic
	// check of §VII.B instead (NewScheme).
	afterTMUTrailing  bool
	afterTMUHeuristic bool
}

func planFor(s Scheme) plan {
	switch s {
	case PriorOp:
		return plan{
			beforePD:          true,
			beforePU:          true,
			beforeTMUPanels:   true,
			beforeTMUTrailing: true,
		}
	case PostOp:
		return plan{
			afterPDCPU:       true,
			afterPU:          true,
			afterTMUTrailing: true,
		}
	case NewScheme:
		return plan{
			beforePD:          true,
			afterPDCPU:        true,
			afterPDBcast:      true,
			beforePU:          true,
			afterPU:           true,
			afterPUBcast:      true,
			afterTMUHeuristic: true,
		}
	default:
		return plan{}
	}
}

// encodeColInto recomputes the column checksums of data into chk using the
// configured kernel and charges encode time.
func (p *protected) encodeColInto(workers int, data, chk *matrix.Dense) {
	defer p.es.span(obs.PhaseEncode, "encode-col", &p.es.res.EncodeT)()
	checksum.EncodeCol(p.es.opts.Kernel, workers, data, p.nb, chk)
}

// stagePair is a per-GPU staging area for a broadcast panel and its column
// checksums.
type stagePair struct {
	data *hetsim.Buffer
	chk  *hetsim.Buffer
}

// allocStages allocates a (rows × cols) panel stage plus a (chkRows × cols)
// checksum stage on every live GPU; GPUs taken down by a node loss keep a
// zero stagePair, which every stage consumer skips.
func (p *protected) allocStages(rows, chkRows, cols int) []stagePair {
	G := p.es.sys.NumGPUs()
	out := make([]stagePair, G)
	for g := 0; g < G; g++ {
		if !p.gpuLive(g) {
			continue
		}
		out[g] = stagePair{
			data: p.es.sys.GPU(g).Alloc(rows, cols),
			chk:  p.es.sys.GPU(g).Alloc(chkRows, cols),
		}
	}
	return out
}

// verifyStages verifies each GPU's received stage against its received
// checksums and repairs localizable corruption. It returns the per-GPU
// outcomes and the count of GPUs whose stage was corrupted — the §VII.C
// disambiguation input: corruption on *every* GPU implicates the sender
// (PD/PU), corruption on *some* GPUs implicates PCIe.
func (p *protected) verifyStages(stages []stagePair, countPer *int, blocksPerStage int) (outs []repairOutcome, corrupted int) {
	outs = make([]repairOutcome, len(stages))
	for g := range stages {
		if stages[g].data == nil {
			continue
		}
		gdev := p.es.sys.GPU(g)
		out := p.verifyRepairCol(gdev.Workers(), stages[g].data.Access(gdev), stages[g].chk.Access(gdev), nil)
		outs[g] = out
		if out != repairClean {
			corrupted++
		}
		*countPer += blocksPerStage
	}
	return outs, corrupted
}

// rebroadcastFailed re-ships the certified CPU panel to the GPUs whose
// stage could not be repaired locally.
func (p *protected) rebroadcastFailed(src, srcChk *hetsim.Buffer, stages []stagePair, outs []repairOutcome) {
	for g := range stages {
		if outs[g] == repairFailed {
			p.es.transfer(src, stages[g].data)
			p.es.transfer(srcChk, stages[g].chk)
			p.es.res.Counter.Rebroadcasts++
		}
	}
}
