package core

import (
	"errors"
	"fmt"
	"testing"

	"ftla/internal/checksum"
	"ftla/internal/fault"
	"ftla/internal/hetsim"
	"ftla/internal/matrix"
)

// runDecomp dispatches one driver call and normalizes the three return
// shapes (Cholesky has no auxiliary output, LU returns pivots, QR returns
// tau).
func runDecomp(decomp string, sys *hetsim.System, a *matrix.Dense, opts Options) (out *matrix.Dense, piv []int, tau []float64, res *Result, err error) {
	switch decomp {
	case "cholesky":
		out, res, err = Cholesky(sys, a, opts)
	case "lu":
		out, piv, res, err = LU(sys, a, opts)
	default:
		out, tau, res, err = QR(sys, a, opts)
	}
	return
}

// interruptAndCapture runs decomp on a fresh 4-GPU system with a checkpoint
// after every step and GPU3 armed to crash after afterOps operations. It
// returns the last checkpoint taken before the crash and whether the
// interruption was usable: the run must really have aborted with a
// DeviceLostError (not finished) and at least one checkpoint must have been
// captured first.
func interruptAndCapture(t *testing.T, decomp string, a *matrix.Dense, base Options, afterOps int) (*Checkpoint, bool) {
	t.Helper()
	var last *Checkpoint
	opts := base
	opts.CheckpointEvery = 1
	opts.OnCheckpoint = func(cp *Checkpoint) { last = cp }
	opts.FailStop = map[int]hetsim.FaultPlan{3: {Mode: hetsim.FaultCrash, AfterOps: afterOps}}
	_, _, _, _, err := runDecomp(decomp, testSystem(4), a, opts)
	if err == nil {
		return nil, false // crash armed too late: the run finished first
	}
	var lost *hetsim.DeviceLostError
	if !errors.As(err, &lost) {
		t.Fatalf("%s: interrupted run failed with %v, want DeviceLostError", decomp, err)
	}
	return last, last != nil
}

// TestResumeBitIdentity is the tentpole invariant: for every decomposition
// and both schedules, a run killed by device loss at a randomized step and
// resumed from its last checkpoint on the three surviving GPUs produces a
// factor bit-identical to an uninterrupted run on that same reduced device
// set.
func TestResumeBitIdentity(t *testing.T) {
	for _, decomp := range []string{"cholesky", "lu", "qr"} {
		for _, lookahead := range []int{0, 1} {
			t.Run(fmt.Sprintf("%s/lookahead=%d", decomp, lookahead), func(t *testing.T) {
				base := Options{NB: 16, Mode: Full, Scheme: NewScheme, Kernel: checksum.OptKernel, Lookahead: lookahead}
				a := pipelineInput(decomp, 96)

				// Randomize when GPU3 dies (per-config seeds vary the
				// interruption step), with a deterministic fallback ladder so
				// the crash always lands strictly between the first
				// checkpoint and the finish line.
				rng := matrix.NewRNG(uint64(len(decomp)*10+lookahead) + 41)
				candidates := []int{
					20 + int(rng.Uint64()%60),
					20 + int(rng.Uint64()%60),
					15, 30, 50, 80,
				}
				var cp *Checkpoint
				for _, afterOps := range candidates {
					if got, ok := interruptAndCapture(t, decomp, a, base, afterOps); ok {
						cp = got
						break
					}
				}
				if cp == nil {
					t.Fatal("no candidate op count crashed mid-run with a checkpoint in hand")
				}
				if cp.NextStep <= 0 || cp.NextStep >= 96/16 {
					t.Fatalf("checkpoint step %d outside the resumable range", cp.NextStep)
				}

				// Resume on the three survivors.
				resOpts := base
				resOpts.Resume = cp
				rout, rpiv, rtau, rres, err := runDecomp(decomp, testSystem(3), a, resOpts)
				if err != nil {
					t.Fatalf("resume from step %d on 3 GPUs failed: %v", cp.NextStep, err)
				}
				if rres.Unrecoverable {
					t.Fatal("resumed run surrendered")
				}

				// Uninterrupted baseline on the same reduced device set.
				bout, bpiv, btau, _, err := runDecomp(decomp, testSystem(3), a, base)
				if err != nil {
					t.Fatalf("baseline on 3 GPUs failed: %v", err)
				}
				if d, r, c := bout.MaxAbsDiff(rout); d != 0 {
					t.Fatalf("resumed factor differs from uninterrupted: |Δ|=%g at (%d,%d)", d, r, c)
				}
				if len(rpiv) != len(bpiv) {
					t.Fatalf("pivot lengths differ: %d vs %d", len(rpiv), len(bpiv))
				}
				for i := range bpiv {
					if rpiv[i] != bpiv[i] {
						t.Fatalf("pivot %d differs: resumed %d vs baseline %d", i, rpiv[i], bpiv[i])
					}
				}
				if len(rtau) != len(btau) {
					t.Fatalf("tau lengths differ: %d vs %d", len(rtau), len(btau))
				}
				for i := range btau {
					if rtau[i] != btau[i] {
						t.Fatalf("tau %d differs: resumed %v vs baseline %v", i, rtau[i], btau[i])
					}
				}
			})
		}
	}
}

// TestRollbackRecoversUncorrectable: an injected corruption the checksums
// can detect but not repair (two DRAM hits in one column under single-side
// protection) no longer surrenders the run — the step runtime rolls back to
// the last checkpoint, replays, and finishes with a factor bit-identical to
// a fault-free run, since the restored state predates the (transient)
// corruption.
func TestRollbackRecoversUncorrectable(t *testing.T) {
	a := pipelineInput("lu", 96)
	clean := Options{NB: 16, Mode: SingleSide, Scheme: NewScheme, Kernel: checksum.OptKernel}
	cout, cpiv, cres, err := LU(testSystem(2), a, clean)
	if err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	if cres.Unrecoverable || cres.Detected {
		t.Fatal("clean run is not clean")
	}

	for _, lookahead := range []int{0, 1} {
		inj := fault.NewInjector(7)
		for _, row := range []int{1, 2} {
			inj.Schedule(fault.Spec{
				Kind: fault.OffChipMemory, Op: fault.PD, Part: fault.ReferencePart,
				Iteration: 2, Row: row, Col: 0,
			})
		}
		opts := clean
		opts.Lookahead = lookahead
		opts.Injector = inj
		opts.CheckpointEvery = 1
		out, piv, res, err := LU(testSystem(2), a, opts)
		if err != nil {
			t.Fatalf("lookahead=%d: rolled-back run failed: %v", lookahead, err)
		}
		if res.Rollbacks < 1 {
			t.Fatalf("lookahead=%d: Rollbacks = %d, want >= 1", lookahead, res.Rollbacks)
		}
		if res.Unrecoverable {
			t.Fatalf("lookahead=%d: rollback did not clear the surrender", lookahead)
		}
		if !res.Detected {
			t.Fatalf("lookahead=%d: injected corruption went undetected", lookahead)
		}
		if res.Checkpoints < 1 {
			t.Fatalf("lookahead=%d: Checkpoints = %d, want >= 1", lookahead, res.Checkpoints)
		}
		if len(inj.Events()) != 2 {
			t.Fatalf("lookahead=%d: %d fault events, want 2", lookahead, len(inj.Events()))
		}
		if d, r, c := cout.MaxAbsDiff(out); d != 0 {
			t.Fatalf("lookahead=%d: rolled-back factor differs from clean: |Δ|=%g at (%d,%d)",
				lookahead, d, r, c)
		}
		for i := range cpiv {
			if piv[i] != cpiv[i] {
				t.Fatalf("lookahead=%d: pivot %d differs after rollback", lookahead, i)
			}
		}
	}
}

// TestCheckpointCadenceAndValidation: CheckpointEvery controls how often
// snapshots are taken (never after the final step), the checkpoint carries
// the resume step, and Options.Resume rejects checkpoints whose driver or
// geometry does not match.
func TestCheckpointCadenceAndValidation(t *testing.T) {
	a := pipelineInput("cholesky", 96)
	var last *Checkpoint
	opts := Options{NB: 16, Mode: Full, Scheme: NewScheme, Kernel: checksum.OptKernel,
		CheckpointEvery: 2, OnCheckpoint: func(cp *Checkpoint) { last = cp }}
	out, res, err := Cholesky(testSystem(2), a, opts)
	if err != nil {
		t.Fatal(err)
	}
	// 6 steps, every 2nd checkpointed, final step never: after steps 1 and 3.
	if res.Checkpoints != 2 {
		t.Fatalf("Checkpoints = %d, want 2", res.Checkpoints)
	}
	if last == nil || last.NextStep != 4 {
		t.Fatalf("last checkpoint = %+v, want NextStep 4", last)
	}
	if last.Decomp != "cholesky" || last.N != 96 || last.NB != 16 {
		t.Fatalf("checkpoint identity wrong: %q n=%d nb=%d", last.Decomp, last.N, last.NB)
	}

	// Same driver, same geometry, same device count: resume reproduces the
	// uninterrupted factor bit-for-bit.
	resOpts := Options{NB: 16, Mode: Full, Scheme: NewScheme, Kernel: checksum.OptKernel, Resume: last}
	rout, _, err := Cholesky(testSystem(2), a, resOpts)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if d, r, c := out.MaxAbsDiff(rout); d != 0 {
		t.Fatalf("resumed factor differs: |Δ|=%g at (%d,%d)", d, r, c)
	}

	// Wrong driver.
	if _, _, _, err := LU(testSystem(2), pipelineInput("lu", 96), resOpts); err == nil {
		t.Fatal("LU accepted a cholesky checkpoint")
	}
	// Wrong block size.
	bad := resOpts
	bad.NB = 32
	if _, _, err := Cholesky(testSystem(2), a, bad); err == nil {
		t.Fatal("resume accepted a mismatched block size")
	}
	// Wrong protection mode.
	bad = resOpts
	bad.Mode, bad.Scheme = SingleSide, NewScheme
	if _, _, err := Cholesky(testSystem(2), a, bad); err == nil {
		t.Fatal("resume accepted a mismatched protection mode")
	}
}
