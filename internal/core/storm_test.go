package core

import (
	"testing"
	"testing/quick"

	"ftla/internal/fault"
	"ftla/internal/lapack"
	"ftla/internal/matrix"
)

// The storm tests sweep randomized fault placements through the
// full-checksum/new-scheme configuration — the paper's headline claim is
// that it survives every §V fault kind, so any seed that corrupts a
// result is a bug (modulo the documented QR on-chip TMU case).

// stormFaults builds one Spec with randomized placement from a seed.
func stormFault(rng *matrix.RNG, d string, nbr int) fault.Spec {
	kinds := []fault.Kind{fault.Computation, fault.OffChipMemory, fault.OnChipMemory, fault.Communication}
	ops := []fault.Op{fault.PD, fault.PU, fault.TMU}
	parts := []fault.Part{fault.ReferencePart, fault.UpdatePart}
	s := fault.Spec{
		Kind:      kinds[rng.Intn(len(kinds))],
		Op:        ops[rng.Intn(len(ops))],
		Part:      parts[rng.Intn(len(parts))],
		Iteration: rng.Intn(nbr - 1),
		Row:       -1,
		Col:       -1,
		GPUTarget: rng.Intn(2),
	}
	if d == "qr" && s.Op == fault.PU {
		s.Op = fault.TMU // QR has no PU
	}
	if s.Kind == fault.Communication {
		s.Op = fault.PD
		if d == "cholesky" && rng.Intn(2) == 0 {
			s.Op = fault.PU
		}
	}
	if d == "lu" && s.Op == fault.TMU && s.Part == fault.ReferencePart && rng.Intn(2) == 1 {
		s.RefIndex = 1 // target the U12 row panel instead of L21
	}
	if s.Kind == fault.OnChipMemory {
		// On-chip faults target reference parts (§X.A); update-part
		// on-chip behaves like a computation fault.
		s.Part = fault.ReferencePart
		if s.Op == fault.PD {
			s.Part = fault.UpdatePart
		}
	}
	return s
}

func isDocumentedQRGap(d string, s fault.Spec) bool {
	return d == "qr" && s.Op == fault.TMU && s.Kind == fault.OnChipMemory
}

func stormOnce(t *testing.T, d string, seed uint64) {
	t.Helper()
	runStormAt(t, d, seed, 128, 16, 2)
}

// runStormAt runs one randomized-fault execution at the given scale.
func runStormAt(t *testing.T, d string, seed uint64, n, nb, gpus int) {
	t.Helper()
	rng := matrix.NewRNG(seed)
	spec := stormFault(rng, d, n/nb)
	if isDocumentedQRGap(d, spec) {
		return
	}
	inj := fault.NewInjector(seed * 77)
	inj.Schedule(spec)
	opts := Options{NB: nb, Mode: Full, Scheme: NewScheme, Injector: inj}
	sys := testSystem(gpus)

	var resid float64
	var res *Result
	switch d {
	case "cholesky":
		a := matrix.RandomSPD(n, matrix.NewRNG(seed+1))
		out, r, err := Cholesky(sys, a, opts)
		if err != nil {
			t.Fatalf("seed %d %+v: %v", seed, spec, err)
		}
		res, resid = r, matrix.CholeskyResidual(a, out)
	case "qr":
		a := matrix.Random(n, n, matrix.NewRNG(seed+1))
		out, tau, r, err := QR(sys, a, opts)
		if err != nil {
			t.Fatalf("seed %d %+v: %v", seed, spec, err)
		}
		res, resid = r, matrix.QRResidual(a, lapack.BuildQ(out, tau), lapack.ExtractR(out))
	default:
		a := matrix.RandomDiagDominant(n, matrix.NewRNG(seed+1))
		out, piv, r, err := LU(sys, a, opts)
		if err != nil {
			t.Fatalf("seed %d %+v: %v", seed, spec, err)
		}
		res, resid = r, matrix.LUResidual(a, out, piv)
	}
	if resid > 1e-9 {
		t.Errorf("%s seed %d: fault %+v corrupted the result (residual %g, counters %+v, events %v)",
			d, seed, spec, resid, res.Counter, inj.Events())
	}
}

func TestStormLU(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		stormOnce(t, "lu", seed)
	}
}

func TestStormCholesky(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		stormOnce(t, "cholesky", seed)
	}
}

func TestStormQR(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		stormOnce(t, "qr", seed)
	}
}

// Property (testing/quick): the protected LU under full+new survives an
// arbitrary single fault at an arbitrary placement.
func TestQuickSingleFaultLU(t *testing.T) {
	f := func(seed uint64) bool {
		const n, nb = 96, 16
		rng := matrix.NewRNG(seed)
		spec := stormFault(rng, "lu", n/nb)
		inj := fault.NewInjector(seed)
		inj.Schedule(spec)
		sys := testSystem(2)
		a := matrix.RandomDiagDominant(n, matrix.NewRNG(seed+9))
		out, piv, _, err := LU(sys, a, Options{NB: nb, Mode: Full, Scheme: NewScheme, Injector: inj})
		if err != nil {
			return false
		}
		return matrix.LUResidual(a, out, piv) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Two faults in different iterations (the paper's single-fault-per-window
// assumption still holds: each strikes a different verification window).
func TestTwoFaultsDifferentIterations(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		inj := fault.NewInjector(seed)
		inj.Schedule(fault.Spec{Kind: fault.Computation, Op: fault.TMU, Iteration: 0})
		inj.Schedule(fault.Spec{Kind: fault.OffChipMemory, Op: fault.PU, Part: fault.UpdatePart, Iteration: 3})
		sys := testSystem(2)
		a := matrix.RandomDiagDominant(96, matrix.NewRNG(seed))
		out, piv, res, err := LU(sys, a, Options{NB: 16, Mode: Full, Scheme: NewScheme, Injector: inj})
		if err != nil {
			t.Fatal(err)
		}
		if len(inj.Events()) != 2 {
			t.Fatalf("seed %d: %d faults fired", seed, len(inj.Events()))
		}
		if r := matrix.LUResidual(a, out, piv); r > 1e-9 {
			t.Errorf("seed %d: residual %g (counters %+v)", seed, r, res.Counter)
		}
	}
}

// Periodic trailing checks (the §VII.B mitigation) must not perturb
// error-free runs and must keep results correct.
func TestPeriodicTrailingCheck(t *testing.T) {
	sys := testSystem(2)
	a := matrix.RandomSPD(96, matrix.NewRNG(3))
	opts := cholOpts(Full, NewScheme)
	opts.PeriodicTrailingCheck = 2
	out, res, err := Cholesky(sys, a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r := matrix.CholeskyResidual(a, out); r > 1e-11 {
		t.Fatalf("residual %g", r)
	}
	if res.Detected {
		t.Fatal("periodic check false positive")
	}
	// The extra checks must show up in the counters.
	opts2 := cholOpts(Full, NewScheme)
	sys2 := testSystem(2)
	_, res2, err := Cholesky(sys2, a, opts2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counter.TotalChecked() <= res2.Counter.TotalChecked() {
		t.Fatal("periodic trailing checks not counted")
	}
}

// The deterministic flop counter must be monotone with protection level.
func TestFlopsMonotoneWithProtection(t *testing.T) {
	a := matrix.RandomDiagDominant(128, matrix.NewRNG(5))
	measure := func(mode Mode, scheme Scheme) uint64 {
		sys := testSystem(2)
		_, _, res, err := LU(sys, a, Options{NB: 16, Mode: mode, Scheme: scheme})
		if err != nil {
			t.Fatal(err)
		}
		return res.Flops
	}
	none := measure(NoChecksum, NoCheck)
	single := measure(SingleSide, PostOp)
	full := measure(Full, NewScheme)
	if !(none < single && single < full) {
		t.Fatalf("flops not monotone: none=%d single=%d full=%d", none, single, full)
	}
}

// Regression seeds that previously exposed repair-path bugs (coordinate
// conventions in the U12 column repair, partial-column re-encode blinding,
// aliased-localization escalation).
func TestRegressionSeeds(t *testing.T) {
	for _, seed := range []uint64{
		0xe3da60148b0630b6,
		0x9b51787df69a6f1,
		0x35c4c0a78f3179bb,
	} {
		const n, nb = 96, 16
		rng := matrix.NewRNG(seed)
		spec := stormFault(rng, "lu", n/nb)
		inj := fault.NewInjector(seed)
		inj.Schedule(spec)
		sys := testSystem(2)
		a := matrix.RandomDiagDominant(n, matrix.NewRNG(seed+9))
		out, piv, res, err := LU(sys, a, Options{NB: nb, Mode: Full, Scheme: NewScheme, Injector: inj})
		if err != nil {
			t.Fatalf("seed %#x: %v", seed, err)
		}
		if r := matrix.LUResidual(a, out, piv); r > 1e-9 {
			t.Errorf("seed %#x (%+v): residual %g counters=%+v", seed, spec, r, res.Counter)
		}
		if res.Unrecoverable {
			t.Errorf("seed %#x: spurious unrecoverable flag", seed)
		}
	}
}

// TestStormLargerScale repeats the randomized-fault sweep at a larger
// matrix, bigger blocks, and three GPUs.
func TestStormLargerScale(t *testing.T) {
	if testing.Short() {
		t.Skip("larger storm sweep")
	}
	for seed := uint64(500); seed <= 530; seed++ {
		runStormAt(t, "lu", seed, 256, 32, 3)
		runStormAt(t, "cholesky", seed, 256, 32, 3)
		runStormAt(t, "qr", seed, 256, 32, 3)
	}
}
