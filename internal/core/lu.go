package core

import (
	"fmt"
	"time"

	"ftla/internal/blas"
	"ftla/internal/checksum"
	"ftla/internal/fault"
	"ftla/internal/hetsim"
	"ftla/internal/lapack"
	"ftla/internal/matrix"
	"ftla/internal/obs"
)

// LU computes the protected blocked LU factorization with partial pivoting
// of a on the simulated heterogeneous system. It returns the gathered
// packed factors (unit-lower L below the diagonal, U on and above), the
// global pivot sequence (piv[k] = row exchanged with row k at step k), and
// the run report.
//
// Per-iteration dataflow (MAGMA hybrid right-looking LU), expressed as
// ladder stages for the step runtime (see runtime.go):
//
//	GPU_owner → CPU   column panel transfer (+ column checksums)
//	CPU               PD: GETF2 with partial pivoting   (panelFactor)
//	GPUs              row interchanges on all other block columns, with
//	                  incremental column-checksum maintenance (panelPivot)
//	CPU → all GPUs    factored panel broadcast (+ checksums) (panelCommit)
//	all GPUs          PU: U12 = L11⁻¹·A12 (row checksums ride the TRSM)
//	all GPUs          TMU: A22 −= L21·U12 with full checksum maintenance
func LU(sys *hetsim.System, a *matrix.Dense, opts Options) (lret *matrix.Dense, pret []int, rret *Result, err error) {
	if a.Rows != a.Cols {
		return nil, nil, nil, fmt.Errorf("core: LU requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if err := opts.Validate(a.Rows); err != nil {
		return nil, nil, nil, err
	}
	if err := opts.ValidateTopology(sys); err != nil {
		return nil, nil, nil, err
	}
	// Fail-stop abort plumbing; see Cholesky.
	defer func() {
		if e := hetsim.RecoverAbort(recover()); e != nil {
			lret, pret, rret, err = nil, nil, nil, e
		}
	}()
	n := a.Rows
	res := &Result{
		N: n, NB: opts.NB, GPUs: sys.NumGPUs(),
		Mode: opts.Mode, Scheme: opts.Scheme, Kernel: opts.Kernel,
	}
	es := newEngine("lu", sys, opts, res)
	start := time.Now()
	var p *protected
	if cp := opts.Resume; cp != nil {
		if err := cp.validateFor("lu", n, &opts); err != nil {
			return nil, nil, nil, err
		}
		p = allocProtectedFor(es, cp)
	} else {
		p = newProtected(es, a)
	}
	l := &luLadder{
		p: p, es: es, pl: planFor(opts.Scheme),
		step: make([]*luStep, p.nbr),
		piv:  make([]int, n),
	}
	if err := runLadder(es, l); err != nil {
		return nil, nil, nil, err
	}
	out := p.gather()
	es.finishResult(start)
	return out, l.piv, res, nil
}

// luStep is the staging state an LU ladder step carries between stages:
// the pulled CPU panel and its local pivots from panelFactor until
// panelCommit broadcasts it, and the received panel stages until tmuFinish
// retires them.
type luStep struct {
	cpuPanel, cpuChk *hetsim.Buffer
	pm, cm           *matrix.Dense
	lpiv             []int
	stages           []stagePair
}

// luLadder is the LU instantiation of the step-runtime ladder.
type luLadder struct {
	p    *protected
	es   *engineSys
	pl   plan
	step []*luStep
	piv  []int
	err  error
}

func (l *luLadder) steps() int         { return l.p.nbr }
func (l *luLadder) failed() error      { return l.err }
func (l *luLadder) layout() *protected { return l.p }

// checkpoint snapshots the distributed state after step next-1 plus the
// pivot history of the finished steps. Pivot entries beyond next·NB are
// zeroed: under look-ahead, panelFactor(next) has already written its local
// pivots, and a resumed run replays that factorization anyway — zeroing
// keeps the snapshot identical across schedules.
func (l *luLadder) checkpoint(next int) *Checkpoint {
	cp := l.p.captureCheckpoint(next)
	cp.Piv = make([]int, len(l.piv))
	copy(cp.Piv[:next*l.p.nb], l.piv[:next*l.p.nb])
	return cp
}

// resume restores the distributed state and pivot history from cp onto the
// current device set and drops any staged per-step state, ready to replay
// from cp.NextStep.
func (l *luLadder) resume(cp *Checkpoint) {
	l.p.restoreFrom(cp)
	copy(l.piv, cp.Piv)
	l.step = make([]*luStep, l.p.nbr)
}

// panelFactor pulls the full column panel (and its checksum strips) to the
// CPU, verifies it — with the §VII.B Fig. 4b contamination probes under
// Full mode — factors it with GETF2 under local-restart protection, and
// re-encodes the certified checksums. The panel stays staged host-side;
// panelCommit owns the writeback and broadcast.
func (l *luLadder) panelFactor(k int) {
	p, es := l.p, l.es
	cpu := es.sys.CPU()
	res, pl := es.res, l.pl
	nb := p.nb
	n := p.n
	o := k * nb
	gk := p.owner(k)
	G := es.sys.NumGPUs()
	m := n - o
	strips := p.nbr - k
	chk := es.opts.Mode != NoChecksum
	full := es.opts.Mode == Full
	st := &luStep{}
	l.step[k] = st

	panelDev := p.local[gk].View(o, p.localOff(k), m, nb)
	st.cpuPanel = cpu.Alloc(m, nb)
	es.transfer(panelDev, st.cpuPanel)
	st.pm = st.cpuPanel.Access(cpu)
	if chk {
		st.cpuChk = cpu.Alloc(2*strips, nb)
		es.transfer(p.colChkView(k, k, p.nbr), st.cpuChk)
		st.cm = st.cpuChk.Access(cpu)
	}
	pdRegs := []fault.Region{
		{Part: fault.ReferencePart, M: st.pm, Row0: o, Col0: o},
		{Part: fault.UpdatePart, M: st.pm, Row0: o, Col0: o},
	}
	es.injectMem(k, fault.PD, pdRegs)
	if pl.beforePD && chk {
		// Under Full mode the panel's row-checksum pair rides along so
		// that a 1-D column contamination (e.g. an on-chip row-panel
		// fault consumed by an earlier TMU) can be rebuilt in place.
		var rowRepairPD func(col int) bool
		if full {
			cpuRowChk := cpu.Alloc(m, 2)
			es.transfer(p.rowChkView(k, o, n), cpuRowChk)
			rm := cpuRowChk.Access(cpu)
			rowRepairPD = func(col int) bool {
				return p.reconstructColViaRowChk(st.pm, rm, col)
			}
		}
		out, fixed := p.verifyRepairColReport(cpu.Workers(), st.pm, st.cm, rowRepairPD)
		if out == repairFailed {
			res.Unrecoverable = true
		}
		res.Counter.PDBefore += strips
		// §VII.B Fig. 4b: corrections in the panel may be the visible
		// edge of a 1-D row contamination from an earlier on-chip TMU
		// fault; probe and repair the full rows across the trailing
		// matrix (data and polluted row checksums).
		if full {
			seen := map[int]bool{}
			for _, fe := range fixed {
				r := o + fe.Row
				if seen[r] {
					continue
				}
				seen[r] = true
				for g := 0; g < G; g++ {
					if p.trailStart(g, k+1) >= p.nloc[g] {
						continue
					}
					if !p.verifyRowQuick(g, r, p.trailStart(g, k+1)) {
						p.repairContaminatedRow(g, r, k+1)
					}
				}
			}
		}
	}
	snapshot := st.pm.Clone()
	es.injectOnChip(k, fault.PD, pdRegs)
	st.lpiv = make([]int, nb)
	if err := p.luPD(es, k, st.pm, st.cm, snapshot, st.lpiv, pl, pdRegs); err != nil {
		l.err = err
		return
	}
	for j, lp := range st.lpiv {
		l.piv[o+j] = o + lp
	}
	if chk {
		// Certified re-encode of the stored L\U panel.
		p.encodeColInto(cpu.Workers(), st.pm, st.cm)
	}
}

// panelPivot applies the step's row interchanges to every other block
// column, probing each touched row against its row checksums first: a row
// contaminated by an undetected on-chip 1-D propagation from an earlier
// TMU (§VII.B Fig. 4b) must be repaired *before* the interchange, because
// the incremental checksum maintenance under a swap reads the stored
// (corrupted) values and would otherwise bake the corruption into the
// checksums.
func (l *luLadder) panelPivot(k int) {
	p, es := l.p, l.es
	res := es.res
	nb := p.nb
	n := p.n
	o := k * nb
	G := es.sys.NumGPUs()
	full := es.opts.Mode == Full
	st := l.step[k]

	if full {
		probed := map[int]bool{}
		for j, lp := range st.lpiv {
			for _, r := range [2]int{o + j, o + lp} {
				if probed[r] {
					continue
				}
				probed[r] = true
				for g := 0; g < G; g++ {
					if p.trailStart(g, k+1) >= p.nloc[g] {
						continue
					}
					if !p.verifyRowQuick(g, r, p.trailStart(g, k+1)) {
						res.Detected = true
						res.Counter.DetectedErrors++
						p.repairContaminatedRow(g, r, k+1)
					}
				}
			}
		}
		// Each probe touches one row across the trailing columns;
		// charge the block-equivalent cost (rows·cols / nb²).
		res.Counter.SwapChecks += (len(probed)*(n-o-nb) + nb*nb - 1) / (nb * nb)
	}
	for j, lp := range st.lpiv {
		if lp != j {
			p.swapRows(o+j, o+lp, 0, k)
			p.swapRows(o+j, o+lp, k+1, p.nbr)
		}
	}
}

// panelCommit writes the certified panel back into the owner's
// authoritative storage and broadcasts it (plus checksums) to every GPU's
// stage, with the §VII.C post-broadcast verification and restart paths.
func (l *luLadder) panelCommit(k int) {
	p, es := l.p, l.es
	sys := es.sys
	res, pl := es.res, l.pl
	nb := p.nb
	o := k * nb
	gk := p.owner(k)
	G := sys.NumGPUs()
	m := p.n - o
	strips := p.nbr - k
	chk := es.opts.Mode != NoChecksum
	st := l.step[k]

	panelDev := p.local[gk].View(o, p.localOff(k), m, nb)
	chkRows := 2 * strips
	if !chk {
		chkRows = 2
	}
	st.stages = p.allocStages(m, chkRows, nb)
	doBroadcast := func() {
		es.withCommContext(k, fault.PD, o, o, func() {
			// Writeback into the owner's authoritative storage first.
			es.transfer(st.cpuPanel, panelDev)
			if chk {
				es.transfer(st.cpuChk, p.colChkView(k, k, p.nbr))
			}
			for g := 0; g < G; g++ {
				if !p.gpuLive(g) {
					continue
				}
				if g == gk {
					copyWithin(sys.GPU(gk), panelDev, st.stages[g].data)
					if chk {
						copyWithin(sys.GPU(gk), p.colChkView(k, k, p.nbr), st.stages[g].chk)
					}
					continue
				}
				es.transfer(st.cpuPanel, st.stages[g].data)
				if chk {
					es.transfer(st.cpuChk, st.stages[g].chk)
				}
			}
		})
	}
	doBroadcast()
	if pl.afterPDBcast && chk {
		outs, corrupted := p.verifyStages(st.stages, &res.Counter.PDAfter, strips)
		if live := p.liveGPUs(); corrupted == live && live > 1 {
			// §VII.C: every GPU corrupted implicates the sender side —
			// conservative local restart of the broadcast from the
			// certified CPU copy.
			res.Counter.LocalRestarts++
			doBroadcast()
		} else if corrupted > 0 {
			p.rebroadcastFailed(st.cpuPanel, st.cpuChk, st.stages, outs)
			// The owner's authoritative copy may have taken the hit on
			// the writeback leg; repair it from the certified source.
			gd := panelDev.Access(sys.GPU(gk))
			gc := p.colChkView(k, k, p.nbr).Access(sys.GPU(gk))
			if p.verifyRepairCol(sys.GPU(gk).Workers(), gd, gc, nil) == repairFailed {
				es.transfer(st.cpuPanel, panelDev)
				es.transfer(st.cpuChk, p.colChkView(k, k, p.nbr))
				res.Counter.Rebroadcasts++
			}
		}
	}
}

// panelUpdate runs PU — U12 = L11⁻¹·A12 with the row-checksum TRSM riding
// along — on every GPU, with pre/post verification and per-GPU local
// restart.
func (l *luLadder) panelUpdate(k int) {
	p, es := l.p, l.es
	sys := es.sys
	res, pl := es.res, l.pl
	nb := p.nb
	o := k * nb
	G := sys.NumGPUs()
	chk := es.opts.Mode != NoChecksum
	full := es.opts.Mode == Full
	st := l.step[k]

	puRegs := p.luPURegions(k, st.stages)
	es.injectMem(k, fault.PU, puRegs)
	if pl.beforePU && chk {
		// Reference part first: a DRAM fault on the received L11 block
		// after the post-broadcast check would otherwise corrupt the
		// row-panel TRSM consistently with its checksum TRSM.
		for g := 0; g < G; g++ {
			if st.stages[g].data == nil {
				continue
			}
			gdev := sys.GPU(g)
			l11d := st.stages[g].data.View(0, 0, nb, nb).Access(gdev)
			l11c := st.stages[g].chk.View(0, 0, 2, nb).Access(gdev)
			if out := p.verifyRepairCol(gdev.Workers(), l11d, l11c, nil); out == repairFailed {
				res.Unrecoverable = true
			}
			res.Counter.PUBefore++
		}
		p.luVerifyRowPanelPrePU(k, &res.Counter.PUBefore)
	}
	snaps := make([]luPUSnap, G)
	for g := 0; g < G; g++ {
		gdev := sys.GPU(g)
		lb0 := p.trailStart(g, k+1)
		snaps[g].lb0 = lb0
		if lb0 >= p.nloc[g] {
			continue
		}
		cols := p.nloc[g]*nb - lb0*nb
		rowPanel := p.local[g].View(o, lb0*nb, nb, cols)
		snaps[g].data = gdev.Alloc(nb, cols)
		copyWithin(gdev, rowPanel, snaps[g].data)
		if full {
			rslab := p.rowChk[g].View(o, 2*lb0, nb, 2*(p.nloc[g]-lb0))
			snaps[g].rchk = gdev.Alloc(nb, 2*(p.nloc[g]-lb0))
			copyWithin(gdev, rslab, snaps[g].rchk)
		}
	}
	es.injectOnChip(k, fault.PU, puRegs)
	runPU := func(g int) {
		gdev := sys.GPU(g)
		lb0 := snaps[g].lb0
		if lb0 >= p.nloc[g] {
			return
		}
		cols := p.nloc[g]*nb - lb0*nb
		l11 := st.stages[g].data.View(0, 0, nb, nb)
		rowPanel := p.local[g].View(o, lb0*nb, nb, cols)
		gdev.Trsm(blas.Left, true, false, true, 1, l11, rowPanel)
		// Transient on-chip corruption is not visible to the checksum
		// TRSM's independent loads.
		es.restoreOnChip()
		if full {
			rslab := p.rowChk[g].View(o, 2*lb0, nb, 2*(p.nloc[g]-lb0))
			gdev.Trsm(blas.Left, true, false, true, 1, l11, rslab)
		}
	}
	for g := 0; g < G; g++ {
		runPU(g)
	}
	es.injectComp(k, fault.PU, puRegs)
	if pl.afterPU && full {
		p.luVerifyRowPanelPostPU(k, snaps, runPU, &res.Counter.PUAfter)
	}
}

// tmuBegin opens the trailing update: injection windows and the scheme's
// pre-TMU verification.
func (l *luLadder) tmuBegin(k int) {
	p, es := l.p, l.es
	res, pl := es.res, l.pl
	o := k * p.nb
	chk := es.opts.Mode != NoChecksum
	st := l.step[k]

	tmuRegs := p.luTMURegions(k, st.stages)
	es.injectMem(k, fault.TMU, tmuRegs)
	if pl.beforeTMUPanels && chk {
		_, _ = p.verifyStages(st.stages, &res.Counter.TMUBefore, p.nbr-k)
	}
	if pl.beforeTMUTrailing && chk {
		worst, blocks := p.verifyTrailingCol(o+p.nb, k+1)
		res.Counter.TMUBefore += blocks
		if worst == repairFailed {
			res.Unrecoverable = true
		}
	}
	es.injectOnChip(k, fault.TMU, tmuRegs)
}

// tmuGPU applies GPU g's slice of the Schur update (kernels only; the
// look-ahead schedule may run the tmuRest slice inside a stream).
func (l *luLadder) tmuGPU(k, g int, sel tmuSel) {
	l.p.luTMUOnGPU(g, k, l.step[k].stages[g], sel)
}

// tmuFinish closes the trailing update: computation-fault injection,
// post-TMU verification, the §VII.B heuristic, and the periodic trailing
// check, then retires the step's staging state.
func (l *luLadder) tmuFinish(k int) {
	p, es := l.p, l.es
	res, pl := es.res, l.pl
	o := k * p.nb
	chk := es.opts.Mode != NoChecksum
	st := l.step[k]

	tmuRegs := p.luTMURegions(k, st.stages)
	es.injectComp(k, fault.TMU, tmuRegs)
	if pl.afterTMUTrailing && chk {
		worst, blocks := p.verifyTrailingCol(o+p.nb, k+1)
		res.Counter.TMUAfter += blocks
		if worst == repairFailed {
			res.Unrecoverable = true
		}
	}
	if pl.afterTMUHeuristic && chk {
		p.luHeuristicAfterTMU(k, st.stages)
	}
	if es.opts.PeriodicTrailingCheck > 0 && (k+1)%es.opts.PeriodicTrailingCheck == 0 && chk {
		worst, blocks := p.verifyTrailingCol(o+p.nb, k+1)
		res.Counter.TMUAfter += blocks
		if worst == repairFailed {
			res.Unrecoverable = true
		}
	}
	l.step[k] = nil
}

// luPUSnap holds one GPU's pre-PU row-panel snapshot for local restart.
type luPUSnap struct {
	data, rchk *hetsim.Buffer
	lb0        int
}

// luPD factors the column panel on the CPU with a one-shot local restart
// backed by the factor-product checksum check
// c(P·A_panel) ?= (wᵀ·L̂)·Û (§III.B applied at panel granularity). The
// left side is recomputed from the *snapshot* (clean input) with the
// recorded pivots applied, so it is independent of every value the
// factorization computed; the right side is computed from the stored
// factors. Any corruption of L̂ or Û therefore breaks the equality.
func (p *protected) luPD(es *engineSys, k int, pm, cm, snapshot *matrix.Dense, lpiv []int, pl plan, regs []fault.Region) error {
	cpu := es.sys.CPU()
	nb := p.nb
	for attempt := 0; ; attempt++ {
		var err error
		es.kernel(cpu, "getf2", float64(pm.Rows*nb*nb), func(int) {
			err = lapack.Getf2(pm, lpiv)
		})
		es.injectComp(k, fault.PD, regs)
		ok := err == nil
		if ok && pl.afterPDCPU && es.opts.Mode != NoChecksum {
			ok = p.luProductCheck(pm, snapshot, lpiv)
			es.res.Counter.PDAfter += pm.Rows / nb
			if !ok {
				es.res.Detected = true
				es.res.Counter.DetectedErrors++
			}
		}
		if ok {
			return nil
		}
		if attempt >= 1 {
			if err != nil {
				return fmt.Errorf("core: LU PD failed after local restart at block %d: %w", k, err)
			}
			es.res.Unrecoverable = true
			return nil
		}
		pm.CopyFrom(snapshot)
		es.res.Counter.LocalRestarts++
	}
}

// luProductCheck verifies per-strip c(P·A) == (wᵀL̂)·Û for the factored
// panel.
func (p *protected) luProductCheck(pm, snapshot *matrix.Dense, lpiv []int) bool {
	defer p.es.span(obs.PhaseVerify, "lu-product-check", &p.es.res.VerifyT)()
	nb := p.nb
	m := pm.Rows
	// c(P·A): permute the clean snapshot, re-encode.
	pa := snapshot.Clone()
	lapack.Laswp(pa, lpiv)
	want := matrix.NewDense(checksum.ColDims(m, nb, nb))
	checksum.EncodeCol(checksum.OptKernel, 1, pa, nb, want)
	// (wᵀ·L̂)·Û from the stored factors.
	l := matrix.NewDense(m, nb)
	for i := 0; i < m; i++ {
		for j := 0; j < nb && j <= i; j++ {
			if j == i {
				l.Set(i, j, 1)
			} else {
				l.Set(i, j, pm.At(i, j))
			}
		}
	}
	u := matrix.NewDense(nb, nb)
	for i := 0; i < nb; i++ {
		for j := i; j < nb; j++ {
			u.Set(i, j, pm.At(i, j))
		}
	}
	wl := matrix.NewDense(checksum.ColDims(m, nb, nb))
	checksum.EncodeCol(checksum.OptKernel, 1, l, nb, wl)
	got := matrix.NewDense(wl.Rows, nb)
	blas.Gemm(false, false, 1, wl, u, 0, got)
	d, _, _ := got.MaxAbsDiff(want)
	return d <= p.tol*float64(nb)
}

// luPURegions exposes PU fault targets: ref = L11 (top block of GPU0's
// stage), update = GPU0's local row panel.
func (p *protected) luPURegions(k int, stages []stagePair) []fault.Region {
	nb := p.nb
	o := k * nb
	var regs []fault.Region
	if stages[0].data != nil {
		regs = append(regs, fault.Region{Part: fault.ReferencePart, M: stages[0].data.UnsafeData().View(0, 0, nb, nb), Row0: o, Col0: o})
	}
	lb0 := p.trailStart(0, k+1)
	if lb0 < p.nloc[0] {
		cols := p.nloc[0]*nb - lb0*nb
		regs = append(regs, fault.Region{
			Part: fault.UpdatePart,
			M:    p.local[0].View(o, lb0*nb, nb, cols).UnsafeData(),
			Row0: o, Col0: p.globalBlock(0, lb0) * nb,
		})
	}
	return regs
}

// luTMURegions exposes TMU fault targets: reference region 0 is the L21
// part of GPU0's stage, reference region 1 (Spec.RefIndex = 1) is GPU0's
// U12 row panel, and the update part is GPU0's trailing region.
func (p *protected) luTMURegions(k int, stages []stagePair) []fault.Region {
	nb := p.nb
	o := k * nb
	var regs []fault.Region
	if st := stages[0].data; st != nil {
		regs = append(regs, fault.Region{Part: fault.ReferencePart, M: st.UnsafeData().View(nb, 0, st.Rows()-nb, nb), Row0: o + nb, Col0: o})
	}
	lb0 := p.trailStart(0, k+1)
	if lb0 < p.nloc[0] {
		cols := p.nloc[0]*nb - lb0*nb
		regs = append(regs,
			fault.Region{
				Part: fault.ReferencePart,
				M:    p.local[0].View(o, lb0*nb, nb, cols).UnsafeData(),
				Row0: o, Col0: p.globalBlock(0, lb0) * nb,
			},
			fault.Region{
				Part: fault.UpdatePart,
				M:    p.local[0].View(o+nb, lb0*nb, p.n-o-nb, cols).UnsafeData(),
				Row0: o + nb, Col0: p.globalBlock(0, lb0) * nb,
			})
	}
	return regs
}

// luVerifyRowPanelPrePU verifies the not-yet-updated row panel blocks
// (strip k of every trailing block column) against their column checksums,
// with 1-D column repair from the row checksums under Full mode.
func (p *protected) luVerifyRowPanelPrePU(k int, counter *int) {
	nb := p.nb
	o := k * nb
	G := p.es.sys.NumGPUs()
	for g := 0; g < G; g++ {
		gdev := p.es.sys.GPU(g)
		lb0 := p.trailStart(g, k+1)
		if lb0 >= p.nloc[g] {
			continue
		}
		cols := p.nloc[g]*nb - lb0*nb
		data := p.local[g].View(o, lb0*nb, nb, cols).Access(gdev)
		chkv := p.colChk[g].View(2*k, lb0*nb, 2, cols).Access(gdev)
		var rowRepair func(col int) bool
		if p.es.opts.Mode == Full {
			gg, jj := g, lb0*nb
			rowRepair = func(col int) bool {
				return p.repairFullColumn(gg, jj+col)
			}
		}
		out, fixed := p.verifyRepairColReport(gdev.Workers(), data, chkv, rowRepair)
		if out == repairFailed {
			p.es.res.Unrecoverable = true
		}
		*counter += cols / nb
		// Grouped corrections in one row signal a lazy on-chip 1-D case:
		// repair the full row, including its polluted row checksums.
		if p.es.opts.Mode == Full && out == repairCorrected {
			seen := map[int]bool{}
			for _, fe := range fixed {
				r := o + fe.Row
				if !seen[r] {
					seen[r] = true
					if !p.verifyRowQuick(g, r, lb0) {
						p.repairContaminatedRow(g, r, k+1)
					}
				}
			}
		}
	}
}

// luVerifyRowPanelPostPU verifies U12 against its maintained row checksums
// on every GPU and falls back to a per-GPU local restart of PU when the
// damage does not localize.
func (p *protected) luVerifyRowPanelPostPU(k int, ss []luPUSnap, runPU func(g int), counter *int) {
	nb := p.nb
	o := k * nb
	G := p.es.sys.NumGPUs()
	for g := 0; g < G; g++ {
		gdev := p.es.sys.GPU(g)
		lb0 := p.trailStart(g, k+1)
		if lb0 >= p.nloc[g] {
			continue
		}
		cols := p.nloc[g]*nb - lb0*nb
		data := p.local[g].View(o, lb0*nb, nb, cols).Access(gdev)
		rchk := p.rowChk[g].View(o, 2*lb0, nb, 2*(p.nloc[g]-lb0)).Access(gdev)
		out := p.verifyRepairRow(gdev.Workers(), data, rchk, nil)
		*counter += cols / nb
		if out == repairFailed {
			if ss != nil && ss[g].data != nil {
				copyWithin(gdev, ss[g].data, p.local[g].View(o, lb0*nb, nb, cols))
				if ss[g].rchk != nil {
					copyWithin(gdev, ss[g].rchk, p.rowChk[g].View(o, 2*lb0, nb, 2*(p.nloc[g]-lb0)))
				}
				p.es.res.Counter.LocalRestarts++
				runPU(g)
				if p.verifyRepairRow(gdev.Workers(), data, rchk, nil) == repairFailed {
					p.es.res.Unrecoverable = true
				}
			} else {
				p.es.res.Unrecoverable = true
			}
		}
	}
}

// luTMUOnGPU applies the Schur update and full checksum maintenance on the
// slice of GPU g's trailing block columns sel selects:
//
//	A22        −= L21·U12
//	colChk     −= c(L21)·U12                 (strips k+1..)
//	rowChk     −= L21·r(U12)                 (pairs of the trailing blocks)
//
// The update is column-sliced, so restricting the output columns leaves
// every computed element bit-identical to the full-width call.
func (p *protected) luTMUOnGPU(g, k int, st stagePair, sel tmuSel) {
	gdev := p.es.sys.GPU(g)
	nb := p.nb
	o := k * nb
	lbLo, lbHi := p.tmuRange(g, k, sel)
	if lbLo >= lbHi {
		return
	}
	jlo := lbLo * nb
	cols := (lbHi - lbLo) * nb
	m2 := p.n - o - nb
	l21 := st.data.View(nb, 0, m2, nb)
	u12 := p.local[g].View(o, jlo, nb, cols)
	c := p.local[g].View(o+nb, jlo, m2, cols)
	gdev.Gemm(false, false, -1, l21, u12, 1, c)
	// Transient on-chip corruption is not visible to the checksum kernels.
	p.es.restoreOnChip()
	if p.es.opts.Mode != NoChecksum {
		cStage := st.chk.View(2, 0, 2*(p.nbr-k-1), nb) // strips k+1..nbr of L21
		cc := p.colChk[g].View(2*(k+1), jlo, 2*(p.nbr-k-1), cols)
		gdev.Gemm(false, false, -1, cStage, u12, 1, cc)
	}
	if p.es.opts.Mode == Full {
		rU12 := p.rowChk[g].View(o, 2*lbLo, nb, 2*(lbHi-lbLo))
		rc := p.rowChk[g].View(o+nb, 2*lbLo, m2, 2*(lbHi-lbLo))
		gdev.Gemm(false, false, -1, l21, rU12, 1, rc)
	}
}

// luHeuristicAfterTMU re-verifies each GPU's panel copies instead of the
// trailing matrix (§VII.B): the L21 stage via column checksums and the U12
// row panel via row checksums. A corrupted stage element at global row r
// contaminated trailing row r on that GPU; a corrupted U12 element at
// global column c contaminated trailing column c. Both are rebuilt from
// the orthogonal checksum dimension.
func (p *protected) luHeuristicAfterTMU(k int, stages []stagePair) {
	nb := p.nb
	o := k * nb
	G := p.es.sys.NumGPUs()
	for g := 0; g < G; g++ {
		if stages[g].data == nil {
			continue
		}
		gdev := p.es.sys.GPU(g)
		// L21 stage copy (full panel stage; only rows >= o+nb feed TMU).
		out, fixed := p.verifyRepairColReport(gdev.Workers(), stages[g].data.Access(gdev), stages[g].chk.Access(gdev), nil)
		p.es.res.Counter.TMUAfter += p.nbr - k
		if out == repairFailed {
			p.es.res.Unrecoverable = true
		}
		for _, fe := range fixed {
			if fe.Row < nb {
				continue // L11/U11 part: not referenced by TMU
			}
			r := o + fe.Row
			p.luRepairTrailingRow(g, k, r)
		}
		// U12 row panel via row checksums.
		lb0 := p.trailStart(g, k+1)
		if lb0 >= p.nloc[g] || p.es.opts.Mode != Full {
			continue
		}
		cols := p.nloc[g]*nb - lb0*nb
		data := p.local[g].View(o, lb0*nb, nb, cols).Access(gdev)
		rchk := p.rowChk[g].View(o, 2*lb0, nb, 2*(p.nloc[g]-lb0)).Access(gdev)
		stop := p.es.span(obs.PhaseVerify, "verify-row", &p.es.res.VerifyT)
		ms := checksum.VerifyRow(gdev.Workers(), data, nb, rchk, p.tol)
		stop()
		p.es.res.Counter.TMUAfter += cols / nb
		if len(ms) == 0 {
			continue
		}
		p.es.res.Detected = true
		p.es.res.Counter.DetectedErrors += len(ms)
		for _, m2 := range ms {
			if lc, ok := checksum.LocateRow(m2, nb); ok {
				checksum.CorrectRow(data, nb, m2, lc)
				p.es.res.Counter.CorrectedElements++
				localCol := m2.Strip*nb + lc
				p.luRepairTrailingColumn(g, k, localCol)
			} else {
				p.es.res.Unrecoverable = true
			}
		}
	}
}

// luRepairTrailingRow rebuilds trailing row r across GPU g's trailing
// columns from the maintained column checksums.
func (p *protected) luRepairTrailingRow(g, k, r int) {
	defer p.es.span(obs.PhaseRecover, "lu-repair-trailing-row", &p.es.res.RecoverT)()
	nb := p.nb
	gdev := p.es.sys.GPU(g)
	lb0 := p.trailStart(g, k+1)
	if lb0 >= p.nloc[g] {
		return
	}
	jlo := lb0 * nb
	cols := p.nloc[g]*nb - jlo
	data := p.local[g].View(0, jlo, p.n, cols).Access(gdev)
	chkv := p.colChk[g].View(0, jlo, 2*p.nbr, cols).Access(gdev)
	p.reconstructRowViaColChk(data, chkv, r)
	// The TMU row-checksum update consumed the corrupted L21 operand, so
	// row r's row checksums are polluted; re-encode from the repaired row.
	p.reencodeRowChkRow(g, r, lb0)
	p.es.res.Counter.ReconstructedLins++
}

// luRepairTrailingColumn rebuilds the trailing part of GPU g's local
// column (view-relative localCol, counted from the first trailing local
// column) from the maintained row checksums.
func (p *protected) luRepairTrailingColumn(g, k, localCol int) {
	defer p.es.span(obs.PhaseRecover, "lu-repair-trailing-col", &p.es.res.RecoverT)()
	nb := p.nb
	o := k * nb
	gdev := p.es.sys.GPU(g)
	lb0 := p.trailStart(g, k+1)
	lb := lb0 + localCol/nb
	if lb >= p.nloc[g] {
		return
	}
	data := p.local[g].View(o+nb, lb*nb, p.n-o-nb, nb).Access(gdev)
	rchk := p.rowChk[g].View(o+nb, 2*lb, p.n-o-nb, 2).Access(gdev)
	p.reconstructColViaRowChk(data, rchk, localCol%nb)
	// The TMU column-checksum update consumed the corrupted U12 operand,
	// so this column's column checksums are polluted; re-encode.
	p.reencodeColChkCol(g, lb*nb+localCol%nb)
	p.es.res.Counter.ReconstructedLins++
}
