package core

import (
	"testing"

	"ftla/internal/fault"
	"ftla/internal/matrix"
)

func TestOfflineCleanPassesAll(t *testing.T) {
	const n, nb = 128, 16
	opts := Options{NB: nb, Mode: NoChecksum, Scheme: NoCheck}

	a := matrix.RandomDiagDominant(n, matrix.NewRNG(1))
	chk := OfflineChecksum(a)
	scale := 1 + matrix.NormMax(a)
	out, piv, _, err := LU(testSystem(2), a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !OfflineCheckLU(chk, out, piv, scale) {
		t.Fatal("offline LU check false positive")
	}

	s := matrix.RandomSPD(n, matrix.NewRNG(2))
	chkS := OfflineChecksum(s)
	scaleS := 1 + matrix.NormMax(s)
	l, _, err := Cholesky(testSystem(2), s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !OfflineCheckCholesky(chkS, l, scaleS) {
		t.Fatal("offline Cholesky check false positive")
	}

	q := matrix.Random(n, n, matrix.NewRNG(3))
	chkQ := OfflineChecksum(q)
	scaleQ := 1 + matrix.NormMax(q)
	f, tau, _, err := QR(testSystem(2), q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !OfflineCheckQR(chkQ, f, tau, scaleQ) {
		t.Fatal("offline QR check false positive")
	}
}

func TestOfflineDetectsInjectedFaults(t *testing.T) {
	const n, nb = 128, 16
	for _, spec := range []fault.Spec{
		{Kind: fault.Computation, Op: fault.PD, Iteration: 1},
		{Kind: fault.Computation, Op: fault.PU, Iteration: 2},
		{Kind: fault.Computation, Op: fault.TMU, Iteration: 0},
		{Kind: fault.OffChipMemory, Op: fault.TMU, Part: fault.ReferencePart, Iteration: 1},
	} {
		inj := fault.NewInjector(7)
		inj.Schedule(spec)
		a := matrix.RandomDiagDominant(n, matrix.NewRNG(4))
		chk := OfflineChecksum(a)
		scale := 1 + matrix.NormMax(a)
		out, piv, _, err := LU(testSystem(2), a, Options{NB: nb, Mode: NoChecksum, Scheme: NoCheck, Injector: inj})
		if err != nil {
			t.Fatal(err)
		}
		if len(inj.Events()) != 1 {
			t.Fatalf("%+v did not fire", spec)
		}
		if OfflineCheckLU(chk, out, piv, scale) {
			t.Errorf("offline check missed %+v (residual %g)", spec, matrix.LUResidual(a, out, piv))
		}
	}
}

func TestOfflineDetectsCorruptedCholeskyAndQR(t *testing.T) {
	const n, nb = 128, 16
	inj := fault.NewInjector(9)
	inj.Schedule(fault.Spec{Kind: fault.Computation, Op: fault.TMU, Iteration: 1})
	s := matrix.RandomSPD(n, matrix.NewRNG(5))
	chk := OfflineChecksum(s)
	l, _, err := Cholesky(testSystem(2), s, Options{NB: nb, Mode: NoChecksum, Scheme: NoCheck, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	if OfflineCheckCholesky(chk, l, 1+matrix.NormMax(s)) {
		t.Error("offline Cholesky check missed a TMU fault")
	}

	inj2 := fault.NewInjector(11)
	inj2.Schedule(fault.Spec{Kind: fault.Computation, Op: fault.TMU, Iteration: 1})
	q := matrix.Random(n, n, matrix.NewRNG(6))
	chkQ := OfflineChecksum(q)
	f, tau, _, err := QR(testSystem(2), q, Options{NB: nb, Mode: NoChecksum, Scheme: NoCheck, Injector: inj2})
	if err != nil {
		t.Fatal(err)
	}
	if OfflineCheckQR(chkQ, f, tau, 1+matrix.NormMax(q)) {
		t.Error("offline QR check missed a TMU fault")
	}
}

// Offline ABFT's defining weakness (the paper's §II motivation for online
// schemes): it detects but cannot localize or repair — there is no
// recovery path short of a complete restart. This test documents that the
// detection is all it provides: the factors really are corrupt.
func TestOfflineCannotRepair(t *testing.T) {
	inj := fault.NewInjector(13)
	inj.Schedule(fault.Spec{Kind: fault.Computation, Op: fault.PD, Iteration: 0})
	a := matrix.RandomDiagDominant(96, matrix.NewRNG(8))
	out, piv, _, err := LU(testSystem(2), a, Options{NB: 16, Mode: NoChecksum, Scheme: NoCheck, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	if r := matrix.LUResidual(a, out, piv); r < 1e-9 {
		t.Skip("fault landed harmlessly")
	}
	chk := OfflineChecksum(a)
	if OfflineCheckLU(chk, out, piv, 1+matrix.NormMax(a)) {
		t.Fatal("corrupted factors passed the offline check")
	}
}
