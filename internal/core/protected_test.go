package core

import (
	"math"
	"testing"
	"testing/quick"

	"ftla/internal/checksum"
	"ftla/internal/matrix"
)

// newTestProtected builds a protected matrix over a fresh system for
// white-box tests.
func newTestProtected(t *testing.T, n, nb, gpus int, mode Mode) (*protected, *matrix.Dense) {
	t.Helper()
	sys := testSystem(gpus)
	rng := matrix.NewRNG(uint64(n + nb + gpus))
	a := matrix.RandomDiagDominant(n, rng)
	scheme := NewScheme
	if mode == NoChecksum {
		scheme = NoCheck
	}
	opts := Options{NB: nb, Mode: mode, Scheme: scheme}
	if err := opts.Validate(n); err != nil {
		t.Fatal(err)
	}
	es := newEngine("test", sys, opts, &Result{})
	return newProtected(es, a), a
}

func TestDistributionMapping(t *testing.T) {
	p, _ := newTestProtected(t, 96, 16, 3, Full)
	if p.nbr != 6 {
		t.Fatalf("nbr = %d", p.nbr)
	}
	// Block-cyclic layout: bj -> gpu bj%3, local block bj/3.
	for bj := 0; bj < p.nbr; bj++ {
		if p.owner(bj) != bj%3 {
			t.Fatalf("owner(%d) = %d", bj, p.owner(bj))
		}
		if p.localBlock(bj) != bj/3 {
			t.Fatalf("localBlock(%d) = %d", bj, p.localBlock(bj))
		}
	}
	// nloc partitions the blocks exactly.
	total := 0
	for g := 0; g < 3; g++ {
		total += p.nloc[g]
	}
	if total != p.nbr {
		t.Fatalf("nloc sums to %d, want %d", total, p.nbr)
	}
}

func TestTrailStart(t *testing.T) {
	p, _ := newTestProtected(t, 96, 16, 2, Full)
	// GPU 0 owns blocks 0,2,4; GPU 1 owns 1,3,5.
	cases := []struct{ g, bj, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 2, 1}, {0, 3, 2}, {0, 5, 3},
		{1, 0, 0}, {1, 1, 0}, {1, 2, 1}, {1, 4, 2},
	}
	for _, c := range cases {
		if got := p.trailStart(c.g, c.bj); got != c.want {
			t.Errorf("trailStart(%d, %d) = %d, want %d", c.g, c.bj, got, c.want)
		}
	}
}

func TestGatherRoundTrip(t *testing.T) {
	p, a := newTestProtected(t, 64, 16, 3, Full)
	got := p.gather()
	if !got.Equal(a) {
		t.Fatal("gather does not reproduce the distributed matrix")
	}
}

func TestInitialChecksumsConsistent(t *testing.T) {
	p, _ := newTestProtected(t, 96, 16, 2, Full)
	if worst, _ := p.verifyTrailingCol(0, 0); worst != repairClean {
		t.Fatal("fresh encode already inconsistent")
	}
	for g := 0; g < 2; g++ {
		for r := 0; r < p.n; r++ {
			if !p.verifyRowQuick(g, r, 0) {
				t.Fatalf("row %d on GPU %d inconsistent after encode", r, g)
			}
		}
	}
}

// Property: maintained column checksums survive arbitrary swap sequences
// exactly (up to round-off).
func TestSwapMaintenanceQuick(t *testing.T) {
	f := func(seed uint64) bool {
		p, _ := newTestProtected(t, 64, 16, 2, Full)
		rng := matrix.NewRNG(seed)
		for i := 0; i < 12; i++ {
			r1, r2 := rng.Intn(64), rng.Intn(64)
			p.swapRows(r1, r2, 0, p.nbr)
		}
		worst, _ := p.verifyTrailingCol(0, 0)
		return worst == repairClean && !p.es.res.Detected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSwapPreservesRowChk(t *testing.T) {
	p, _ := newTestProtected(t, 64, 16, 2, Full)
	p.swapRows(3, 50, 0, p.nbr)
	p.swapRows(17, 18, 0, p.nbr)
	for g := 0; g < 2; g++ {
		for _, r := range []int{3, 50, 17, 18} {
			if !p.verifyRowQuick(g, r, 0) {
				t.Fatalf("rowChk row %d broken after swap on GPU %d", r, g)
			}
		}
	}
}

func TestSwapRangeRestriction(t *testing.T) {
	p, _ := newTestProtected(t, 64, 16, 2, Full)
	g0 := p.es.sys.GPU(0)
	before := p.local[0].Access(g0).Clone()
	// Swap restricted to block columns [2, 4): GPU0's block 2 is local
	// block 1 (cols 16..32); its block 0 (cols 0..16) must not move.
	p.swapRows(1, 40, 2, 4)
	after := p.local[0].Access(g0)
	for j := 0; j < 16; j++ {
		if after.At(1, j) != before.At(1, j) {
			t.Fatal("swap leaked into excluded block column")
		}
	}
	if after.At(1, 16) != before.At(40, 16) {
		t.Fatal("swap did not apply to included block column")
	}
}

func TestReencodeRowChkRow(t *testing.T) {
	p, _ := newTestProtected(t, 64, 16, 2, Full)
	g0 := p.es.sys.GPU(0)
	// Pollute the stored row checksum, then re-encode from data.
	rc := p.rowChk[0].Access(g0)
	rc.Set(5, 0, rc.At(5, 0)+3)
	if p.verifyRowQuick(0, 5, 0) {
		t.Fatal("pollution not visible")
	}
	p.reencodeRowChkRow(0, 5, 0)
	if !p.verifyRowQuick(0, 5, 0) {
		t.Fatal("re-encode did not restore consistency")
	}
}

func TestReencodeColChkCol(t *testing.T) {
	p, _ := newTestProtected(t, 64, 16, 2, Full)
	g0 := p.es.sys.GPU(0)
	cc := p.colChk[0].Access(g0)
	cc.Set(2, 7, cc.At(2, 7)+5) // pollute strip 1, local col 7
	ms := checksum.VerifyCol(1, p.local[0].Access(g0), p.nb, cc, p.tol)
	if len(ms) == 0 {
		t.Fatal("pollution not visible")
	}
	p.reencodeColChkCol(0, 7)
	ms = checksum.VerifyCol(1, p.local[0].Access(g0), p.nb, cc, p.tol)
	if len(ms) != 0 {
		t.Fatal("re-encode did not restore consistency")
	}
}

func TestRepairContaminatedRow(t *testing.T) {
	p, _ := newTestProtected(t, 64, 16, 2, Full)
	g0 := p.es.sys.GPU(0)
	data := p.local[0].Access(g0)
	want := data.Clone()
	// Contaminate row 20 across GPU0's columns AND pollute its rowChk —
	// the §VII.B Fig. 4b double damage.
	for j := 0; j < data.Cols; j++ {
		data.Set(20, j, data.At(20, j)+1.5)
	}
	rc := p.rowChk[0].Access(g0)
	rc.Set(20, 1, rc.At(20, 1)-2)
	if !p.repairContaminatedRow(0, 20, 0) {
		t.Fatal("repair reported failure")
	}
	for j := 0; j < data.Cols; j++ {
		if math.Abs(data.At(20, j)-want.At(20, j)) > 1e-10 {
			t.Fatalf("row not restored at col %d", j)
		}
	}
	if !p.verifyRowQuick(0, 20, 0) {
		t.Fatal("rowChk not reconciled")
	}
}

func TestReconcileOrthogonalColumnCase(t *testing.T) {
	// Aliased column corruption: data column wrong in many rows, colChk
	// polluted to agree, rowChk clean → reconcile must rebuild the column
	// from rowChk and re-encode colChk.
	p, _ := newTestProtected(t, 64, 16, 2, Full)
	g0 := p.es.sys.GPU(0)
	data := p.local[0].Access(g0)
	want := data.Clone()
	col := 5
	for i := 8; i < 24; i++ {
		data.Set(i, col, data.At(i, col)+float64(i))
	}
	p.reencodeColChkCol(0, col) // simulate consistent pollution
	p.reconcileOrthogonal(0, 0, p.n, 0, p.nloc[0])
	for i := 0; i < p.n; i++ {
		if math.Abs(data.At(i, col)-want.At(i, col)) > 1e-10 {
			t.Fatalf("column not rebuilt at row %d: %g vs %g", i, data.At(i, col), want.At(i, col))
		}
	}
	cc := p.colChk[0].Access(g0)
	if ms := checksum.VerifyCol(1, data, p.nb, cc, p.tol); len(ms) != 0 {
		t.Fatal("colChk not re-encoded after column rebuild")
	}
}

func TestReconcileOrthogonalRowPollutionCase(t *testing.T) {
	// Dual damage pattern: clean data, polluted rowChk row across strips →
	// reconcile must re-encode the row checksums, not touch the data.
	p, _ := newTestProtected(t, 64, 16, 2, Full)
	g0 := p.es.sys.GPU(0)
	data := p.local[0].Access(g0)
	want := data.Clone()
	rc := p.rowChk[0].Access(g0)
	for pair := 0; pair < rc.Cols; pair += 2 {
		rc.Set(9, pair, rc.At(9, pair)+2)
	}
	p.reconcileOrthogonal(0, 0, p.n, 0, p.nloc[0])
	if !data.Equal(want) {
		t.Fatal("reconcile modified clean data")
	}
	if !p.verifyRowQuick(0, 9, 0) {
		t.Fatal("polluted row checksums not re-encoded")
	}
}

func TestVerifyRepairColLadder(t *testing.T) {
	p, _ := newTestProtected(t, 64, 16, 1, Full)
	g0 := p.es.sys.GPU(0)
	data := p.local[0].Access(g0)
	chk := p.colChk[0].Access(g0)
	want := data.Clone()
	// 0-D: single element.
	data.Set(10, 3, data.At(10, 3)+4)
	if out := p.verifyRepairCol(1, data, chk, nil); out != repairCorrected {
		t.Fatalf("0-D repair outcome %v", out)
	}
	if !data.EqualWithin(want, 1e-10) {
		t.Fatal("0-D repair wrong value")
	}
	// 1-D row: one row across many columns (each column localizes).
	for j := 0; j < 32; j++ {
		data.Set(20, j, data.At(20, j)-2.5)
	}
	if out := p.verifyRepairCol(1, data, chk, nil); out != repairCorrected {
		t.Fatalf("1-D row repair outcome %v", out)
	}
	if !data.EqualWithin(want, 1e-10) {
		t.Fatal("1-D row repair wrong values")
	}
	// 1-D column without rowRepair: must fail.
	for i := 16; i < 32; i++ {
		data.Set(i, 8, data.At(i, 8)+1.25)
	}
	if out := p.verifyRepairCol(1, data, chk, nil); out != repairFailed {
		t.Fatalf("1-D column without rowRepair: outcome %v, want failed", out)
	}
	// With rowRepair: reconstruct from row checksums.
	rchk := p.rowChk[0].Access(g0)
	rowRepair := func(col int) bool {
		ok := p.reconstructColViaRowChk(data, rchk, col)
		p.reencodeColChkCol(0, col)
		return ok
	}
	if out := p.verifyRepairCol(1, data, chk, rowRepair); out != repairCorrected {
		t.Fatalf("1-D column with rowRepair: outcome %v", out)
	}
	if !data.EqualWithin(want, 1e-9) {
		d, i, j := data.MaxAbsDiff(want)
		t.Fatalf("column reconstruction wrong by %g at (%d,%d)", d, i, j)
	}
}

func TestToleranceScalesWithMatrix(t *testing.T) {
	pSmall, _ := newTestProtected(t, 32, 16, 1, Full)
	pBig, _ := newTestProtected(t, 128, 16, 1, Full)
	if pBig.tol <= pSmall.tol {
		t.Fatal("tolerance must grow with matrix size/scale")
	}
}
