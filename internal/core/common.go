package core

import (
	"time"

	"ftla/internal/blas"
	"ftla/internal/checksum"
	"ftla/internal/fault"
	"ftla/internal/hetsim"
	"ftla/internal/matrix"
	"ftla/internal/obs"
)

// factorizations counts completed driver runs in the obs default registry,
// labeled by decomposition (cholesky, lu, qr).
var factorizations = obs.Default().CounterVec(obs.MetricFactorizations,
	"Completed factorization runs, labeled by decomposition.", "decomp")

// withCommContext installs the PCIe fault hook scoped to one broadcast:
// transfers executed inside body may be struck by Communication faults
// scheduled for (it, op). Outside broadcasts the hook is disarmed, matching
// the fault model (§V targets panel broadcasts). The disarm is deferred so
// a fail-stop abort unwinding out of body cannot leave the hook pending on
// a pooled system.
func (es *engineSys) withCommContext(it int, op fault.Op, row0, col0 int, body func()) {
	if es.inj == nil {
		body()
		return
	}
	es.sys.SetTransferHook(func(from, to *hetsim.Device, payload *matrix.Dense) {
		if to.Kind() != hetsim.GPU {
			return
		}
		es.inj.OnTransfer(it, op, to.ID(), payload, row0, col0)
	})
	defer es.sys.SetTransferHook(nil)
	body()
}

// copyWithin copies src into dst, both resident on dev (device-local
// staging, costing no PCIe time).
func copyWithin(dev *hetsim.Device, src, dst *hetsim.Buffer) {
	dev.Run("copy", 0, func(int) {
		dst.Access(dev).CopyFrom(src.Access(dev))
	})
}

// injectMem / injectOnChip / injectComp are nil-safe injector wrappers.
func (es *engineSys) injectMem(it int, op fault.Op, regs []fault.Region) {
	if es.inj != nil {
		es.inj.InjectMem(it, op, regs)
	}
}

func (es *engineSys) injectOnChip(it int, op fault.Op, regs []fault.Region) {
	if es.inj != nil {
		es.inj.InjectOnChip(it, op, regs)
	}
}

func (es *engineSys) injectComp(it int, op fault.Op, regs []fault.Region) {
	if es.inj != nil {
		es.inj.InjectComp(it, op, regs)
	}
}

// restoreOnChip undoes pending on-chip corruption between an operation's
// data kernel and its checksum-maintenance kernels (see
// fault.Injector.RestoreOnChip).
func (es *engineSys) restoreOnChip() {
	if es.inj != nil {
		es.inj.RestoreOnChip()
	}
}

// correctedElem reports one element repaired by a verify/repair pass, in
// coordinates relative to the verified view. D1 is the applied correction
// (new = old + D1), which recovery paths use to undo second-order damage.
type correctedElem struct {
	Row int
	Col int
	D1  float64
}

// verifyRepairColReport is verifyRepairCol plus a report of which elements
// were individually corrected — the drivers use the coordinates to repair
// the trailing-matrix rows/columns those elements contaminated during TMU
// (§VII.B heuristic recovery).
func (p *protected) verifyRepairColReport(workers int, data, chk *matrix.Dense, rowRepair func(col int) bool) (repairOutcome, []correctedElem) {
	stop := p.es.span(obs.PhaseVerify, "verify-col", &p.es.res.VerifyT)
	ms := checksum.VerifyCol(workers, data, p.nb, chk, p.tol)
	stop()
	if len(ms) == 0 {
		return repairClean, nil
	}
	p.es.res.Detected = true
	p.es.res.Counter.DetectedErrors += len(ms)
	defer p.es.span(obs.PhaseRecover, "repair-col", &p.es.res.RecoverT)()
	var fixed []correctedElem
	stuck := map[int]bool{}
	for _, m := range ms {
		rows := p.nb
		if got := data.Rows - m.Strip*p.nb; got < rows {
			rows = got
		}
		if lr, ok := checksum.LocateCol(m, rows); ok {
			checksum.CorrectCol(data, p.nb, m, lr)
			p.es.res.Counter.CorrectedElements++
			fixed = append(fixed, correctedElem{Row: m.Strip*p.nb + lr, Col: m.Col, D1: m.D1})
		} else {
			stuck[m.Col] = true
		}
	}
	for col := range stuck {
		if rowRepair == nil || !rowRepair(col) {
			return repairFailed, fixed
		}
		p.es.res.Counter.ReconstructedLins++
	}
	stop = p.es.span(obs.PhaseVerify, "verify-col", &p.es.res.VerifyT)
	ms = checksum.VerifyCol(workers, data, p.nb, chk, p.tol)
	stop()
	if len(ms) != 0 && rowRepair != nil {
		// A multi-element column corruption can alias as a localizable
		// single error (δ₂/δ₁ lands near an integer by chance); the
		// mis-correction surfaces here, so escalate the surviving columns
		// to the full column repair and re-verify once more.
		ok := true
		seen := map[int]bool{}
		for _, m := range ms {
			if !seen[m.Col] {
				seen[m.Col] = true
				if !rowRepair(m.Col) {
					ok = false
				}
			}
		}
		if ok {
			stop = p.es.span(obs.PhaseVerify, "verify-col", &p.es.res.VerifyT)
			ms = checksum.VerifyCol(workers, data, p.nb, chk, p.tol)
			stop()
		}
	}
	if len(ms) != 0 {
		return repairFailed, fixed
	}
	return repairCorrected, fixed
}

// newEngine bundles the run state for the named decomposition, snapshots
// the flop counter so the result can report the run's own work, and arms
// any fail-stop fault plans (devices) and link fault plans (PCIe links)
// of the options on the system.
func newEngine(decomp string, sys *hetsim.System, opts Options, res *Result) *engineSys {
	for id, plan := range opts.FailStop {
		switch {
		case id == -1:
			sys.ArmFault(sys.CPU(), plan)
		case id >= 0 && id < sys.NumGPUs():
			sys.ArmFault(sys.GPU(id), plan)
		}
	}
	for id, plan := range opts.LinkFault {
		if id >= 0 && id < sys.NumGPUs() {
			sys.ArmLinkFault(id, plan)
		}
	}
	for node, plan := range opts.NodeFault {
		if node >= 0 && node < sys.Nodes() {
			sys.ArmNodeFault(node, plan)
		}
	}
	return &engineSys{decomp: decomp, sys: sys, opts: opts, res: res, inj: opts.Injector, startFlops: blas.Flops()}
}

// span opens a phase region and returns its closer; `defer es.span(...)()`
// is the usual shape, or keep the closer and call it once inline. The
// closer adds the elapsed wall time to acc (one of the Result phase
// accumulators), feeds the same duration to the ftla_phase_seconds
// histogram of the obs default registry, and — when an obs.Trace is
// attached to the run's system — emits a wall-clock span named name under
// the phase category. One helper keeps Result, /metrics, and /trace in
// agreement about what each phase cost.
func (es *engineSys) span(phase, name string, acc *time.Duration) func() {
	t0 := time.Now()
	return func() {
		d := time.Since(t0)
		*acc += d
		obs.ObservePhase(phase, d)
		if es.sys != nil {
			es.sys.Tracer().WallSpan(name, phase, t0, d)
		}
	}
}

// finishResult stamps the timing/traffic/work fields once a driver
// completes, attributes the non-ABFT remainder of the wall time to the
// factorize phase (wall minus encode/verify/recover, clamped at zero),
// counts the run in ftla_factorizations_total, and emits the whole-run
// span when a tracer is attached.
func (es *engineSys) finishResult(start time.Time) {
	res := es.res
	res.Wall = time.Since(start)
	res.SimMakespan = es.sys.TimelineMakespan()
	res.PCIeBytes = es.sys.BytesTransferred()
	res.InternodeBytes = es.sys.InternodeBytes()
	res.Flops = blas.Flops() - es.startFlops
	factor := res.Wall - res.EncodeT - res.VerifyT - res.RecoverT
	if factor < 0 {
		factor = 0
	}
	obs.ObservePhase(obs.PhaseFactorize, factor)
	factorizations.With(es.decomp).Inc()
	es.sys.Tracer().WallSpan(es.decomp, obs.PhaseFactorize, start, res.Wall)
}

// blasGemm aliases the sequential GEMM for recovery-path helpers.
func blasGemm(transA, transB bool, alpha float64, a, b *matrix.Dense, beta float64, c *matrix.Dense) {
	blas.Gemm(transA, transB, alpha, a, b, beta, c)
}
