package core

import (
	"time"

	"ftla/internal/blas"
	"ftla/internal/checksum"
	"ftla/internal/fault"
	"ftla/internal/hetsim"
	"ftla/internal/matrix"
)

// withCommContext installs the PCIe fault hook scoped to one broadcast:
// transfers executed inside body may be struck by Communication faults
// scheduled for (it, op). Outside broadcasts the hook is disarmed, matching
// the fault model (§V targets panel broadcasts).
func (es *engineSys) withCommContext(it int, op fault.Op, row0, col0 int, body func()) {
	if es.inj == nil {
		body()
		return
	}
	es.sys.SetTransferHook(func(from, to *hetsim.Device, payload *matrix.Dense) {
		if to.Kind() != hetsim.GPU {
			return
		}
		es.inj.OnTransfer(it, op, to.ID(), payload, row0, col0)
	})
	body()
	es.sys.SetTransferHook(nil)
}

// copyWithin copies src into dst, both resident on dev (device-local
// staging, costing no PCIe time).
func copyWithin(dev *hetsim.Device, src, dst *hetsim.Buffer) {
	dev.Run("copy", 0, func(int) {
		dst.Access(dev).CopyFrom(src.Access(dev))
	})
}

// injectMem / injectOnChip / injectComp are nil-safe injector wrappers.
func (es *engineSys) injectMem(it int, op fault.Op, regs []fault.Region) {
	if es.inj != nil {
		es.inj.InjectMem(it, op, regs)
	}
}

func (es *engineSys) injectOnChip(it int, op fault.Op, regs []fault.Region) {
	if es.inj != nil {
		es.inj.InjectOnChip(it, op, regs)
	}
}

func (es *engineSys) injectComp(it int, op fault.Op, regs []fault.Region) {
	if es.inj != nil {
		es.inj.InjectComp(it, op, regs)
	}
}

// restoreOnChip undoes pending on-chip corruption between an operation's
// data kernel and its checksum-maintenance kernels (see
// fault.Injector.RestoreOnChip).
func (es *engineSys) restoreOnChip() {
	if es.inj != nil {
		es.inj.RestoreOnChip()
	}
}

// correctedElem reports one element repaired by a verify/repair pass, in
// coordinates relative to the verified view. D1 is the applied correction
// (new = old + D1), which recovery paths use to undo second-order damage.
type correctedElem struct {
	Row int
	Col int
	D1  float64
}

// verifyRepairColReport is verifyRepairCol plus a report of which elements
// were individually corrected — the drivers use the coordinates to repair
// the trailing-matrix rows/columns those elements contaminated during TMU
// (§VII.B heuristic recovery).
func (p *protected) verifyRepairColReport(workers int, data, chk *matrix.Dense, rowRepair func(col int) bool) (repairOutcome, []correctedElem) {
	t0 := time.Now()
	ms := checksum.VerifyCol(workers, data, p.nb, chk, p.tol)
	p.es.res.VerifyT += time.Since(t0)
	if len(ms) == 0 {
		return repairClean, nil
	}
	p.es.res.Detected = true
	p.es.res.Counter.DetectedErrors += len(ms)
	t1 := time.Now()
	defer func() { p.es.res.RecoverT += time.Since(t1) }()
	var fixed []correctedElem
	stuck := map[int]bool{}
	for _, m := range ms {
		rows := p.nb
		if got := data.Rows - m.Strip*p.nb; got < rows {
			rows = got
		}
		if lr, ok := checksum.LocateCol(m, rows); ok {
			checksum.CorrectCol(data, p.nb, m, lr)
			p.es.res.Counter.CorrectedElements++
			fixed = append(fixed, correctedElem{Row: m.Strip*p.nb + lr, Col: m.Col, D1: m.D1})
		} else {
			stuck[m.Col] = true
		}
	}
	for col := range stuck {
		if rowRepair == nil || !rowRepair(col) {
			return repairFailed, fixed
		}
		p.es.res.Counter.ReconstructedLins++
	}
	t2 := time.Now()
	ms = checksum.VerifyCol(workers, data, p.nb, chk, p.tol)
	p.es.res.VerifyT += time.Since(t2)
	if len(ms) != 0 && rowRepair != nil {
		// A multi-element column corruption can alias as a localizable
		// single error (δ₂/δ₁ lands near an integer by chance); the
		// mis-correction surfaces here, so escalate the surviving columns
		// to the full column repair and re-verify once more.
		ok := true
		seen := map[int]bool{}
		for _, m := range ms {
			if !seen[m.Col] {
				seen[m.Col] = true
				if !rowRepair(m.Col) {
					ok = false
				}
			}
		}
		if ok {
			t3 := time.Now()
			ms = checksum.VerifyCol(workers, data, p.nb, chk, p.tol)
			p.es.res.VerifyT += time.Since(t3)
		}
	}
	if len(ms) != 0 {
		return repairFailed, fixed
	}
	return repairCorrected, fixed
}

// newEngine bundles the run state and snapshots the flop counter so the
// result can report the run's own work.
func newEngine(sys *hetsim.System, opts Options, res *Result) *engineSys {
	return &engineSys{sys: sys, opts: opts, res: res, inj: opts.Injector, startFlops: blas.Flops()}
}

// finishResult stamps the timing/traffic/work fields once a driver
// completes.
func (es *engineSys) finishResult(start time.Time) {
	es.res.Wall = time.Since(start)
	es.res.SimMakespan = es.sys.SimMakespan()
	es.res.PCIeBytes = es.sys.BytesTransferred()
	es.res.Flops = blas.Flops() - es.startFlops
}

// blasGemm aliases the sequential GEMM for recovery-path helpers.
func blasGemm(transA, transB bool, alpha float64, a, b *matrix.Dense, beta float64, c *matrix.Dense) {
	blas.Gemm(transA, transB, alpha, a, b, beta, c)
}
