package core

import (
	"strings"
	"testing"

	"ftla/internal/fault"
	"ftla/internal/lapack"
	"ftla/internal/matrix"
)

// TestDataflowTrace validates the paper's hybrid execution assignment
// (§III.A): panel decompositions run on the CPU, panel/trailing updates on
// the GPUs, and panels move over PCIe.
func TestDataflowTrace(t *testing.T) {
	sys := testSystem(2)
	sys.EnableTrace(true)
	a := matrix.RandomDiagDominant(64, matrix.NewRNG(1))
	if _, _, _, err := LU(sys, a, cholOpts(Full, NewScheme)); err != nil {
		t.Fatal(err)
	}
	var sawGetf2OnCPU, sawGemmOnGPU, sawTrsmOnGPU, sawPCIe bool
	for _, e := range sys.Events() {
		switch {
		case e.Op == "getf2" && e.Device == "CPU":
			sawGetf2OnCPU = true
		case e.Op == "gemm" && strings.HasPrefix(e.Device, "GPU"):
			sawGemmOnGPU = true
		case e.Op == "trsm" && strings.HasPrefix(e.Device, "GPU"):
			sawTrsmOnGPU = true
		case e.Op == "pcie":
			sawPCIe = true
		}
		if e.Op == "getf2" && e.Device != "CPU" {
			t.Errorf("panel decomposition ran on %s", e.Device)
		}
	}
	if !sawGetf2OnCPU || !sawGemmOnGPU || !sawTrsmOnGPU || !sawPCIe {
		t.Fatalf("dataflow incomplete: getf2@CPU=%v gemm@GPU=%v trsm@GPU=%v pcie=%v",
			sawGetf2OnCPU, sawGemmOnGPU, sawTrsmOnGPU, sawPCIe)
	}
}

// TestPU1DVersus2D reproduces the §VII.D distinction: a fault in PU's
// update part propagates 1-D and is corrected in place (no restart), while
// a fault in PU's reference part propagates 2-D and forces a local
// in-memory restart.
func TestPU1DVersus2D(t *testing.T) {
	run := func(spec fault.Spec) *Result {
		inj := fault.NewInjector(3)
		inj.Schedule(spec)
		sys := testSystem(2)
		a := matrix.RandomDiagDominant(96, matrix.NewRNG(9))
		opts := cholOpts(Full, NewScheme)
		opts.Injector = inj
		out, piv, res, err := LU(sys, a, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(inj.Events()) != 1 {
			t.Fatalf("fault did not fire: %+v", spec)
		}
		if r := matrix.LUResidual(a, out, piv); r > 1e-9 {
			t.Fatalf("spec %+v not recovered: residual %g (counters %+v)", spec, r, res.Counter)
		}
		return res
	}
	// Update-part memory fault: 1-D propagation, correctable in place.
	oneD := run(fault.Spec{Kind: fault.OffChipMemory, Op: fault.PU, Part: fault.UpdatePart, Iteration: 1})
	if oneD.Counter.LocalRestarts != 0 {
		t.Errorf("1-D PU fault needed %d local restarts, want 0 (§VII.D)", oneD.Counter.LocalRestarts)
	}
	// Reference-part on-chip fault: 2-D propagation inside PU, needs a
	// local restart (strictly-lower element so the TRSM consumes it).
	twoD := run(fault.Spec{Kind: fault.OnChipMemory, Op: fault.PU, Part: fault.ReferencePart, Iteration: 1, Row: 15, Col: 0})
	if twoD.Counter.LocalRestarts == 0 {
		t.Error("2-D PU fault recovered without local restart — §VII.D expects a restart")
	}
}

// TestLargerMultiGPU runs all three decompositions clean at 4 GPUs with
// the default block size, the configuration the weak-scaling figures use.
func TestLargerMultiGPU(t *testing.T) {
	if testing.Short() {
		t.Skip("larger integration test")
	}
	const n, nb, gpus = 512, 64, 4
	opts := Options{NB: nb, Mode: Full, Scheme: NewScheme}
	sys := testSystem(gpus)
	a := matrix.RandomSPD(n, matrix.NewRNG(1))
	out, res, err := Cholesky(sys, a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r := matrix.CholeskyResidual(a, out); r > 1e-11 || res.Detected {
		t.Fatalf("cholesky: residual %g detected=%v", r, res.Detected)
	}

	sys = testSystem(gpus)
	b := matrix.RandomDiagDominant(n, matrix.NewRNG(2))
	lu, piv, res2, err := LU(sys, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r := matrix.LUResidual(b, lu, piv); r > 1e-11 || res2.Detected {
		t.Fatalf("lu: residual %g detected=%v", r, res2.Detected)
	}

	sys = testSystem(gpus)
	c := matrix.Random(n, n, matrix.NewRNG(3))
	qr, tau, res3, err := QR(sys, c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r := matrix.QRResidual(c, lapack.BuildQ(qr, tau), lapack.ExtractR(qr)); r > 1e-11 || res3.Detected {
		t.Fatalf("qr: residual %g detected=%v", r, res3.Detected)
	}
}

// TestPCIeAccounting checks that protection increases PCIe traffic only by
// the checksum payloads (2/NB per dimension), not by extra panel copies.
func TestPCIeAccounting(t *testing.T) {
	run := func(mode Mode, scheme Scheme) int64 {
		sys := testSystem(2)
		a := matrix.RandomDiagDominant(128, matrix.NewRNG(4))
		_, _, res, err := LU(sys, a, Options{NB: 16, Mode: mode, Scheme: scheme})
		if err != nil {
			t.Fatal(err)
		}
		return res.PCIeBytes
	}
	base := run(NoChecksum, NoCheck)
	prot := run(Full, NewScheme)
	if prot <= base {
		t.Fatal("protected run must move checksum payloads")
	}
	// With nb=16 the checksum payload ratio is 4/nb = 25%; allow slack for
	// the initial checksum-free distribution being shared.
	if float64(prot) > 1.6*float64(base) {
		t.Fatalf("PCIe inflation too high: %d vs %d", prot, base)
	}
}

// TestSimClockAdvances checks the simulated platform clock reflects the
// device assignment: the GPUs should accumulate (far) more simulated busy
// time than the CPU for a TMU-dominated factorization.
func TestSimClockAdvances(t *testing.T) {
	sys := testSystem(2)
	a := matrix.RandomDiagDominant(128, matrix.NewRNG(5))
	if _, _, _, err := LU(sys, a, cholOpts(Full, NewScheme)); err != nil {
		t.Fatal(err)
	}
	var gpuTime float64
	for _, g := range sys.GPUs() {
		gpuTime += g.SimTime()
	}
	if gpuTime <= 0 || sys.CPU().SimTime() <= 0 {
		t.Fatal("sim clocks did not advance")
	}
	if sys.PCIeSimTime() <= 0 {
		t.Fatal("PCIe sim clock did not advance")
	}
}
