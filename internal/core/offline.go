package core

import (
	"math"

	"ftla/internal/blas"
	"ftla/internal/matrix"
)

// This file implements the original Huang–Abraham style *offline* ABFT
// [34] as a comparison baseline: the input matrix is encoded with one
// global dual-weight column checksum before the (unprotected)
// factorization, and the checksum relation of the *final factors* is
// verified once at the end:
//
//	LU:       c(A) = (w_Pᵀ·L̂)·Û      with w_P the weights permuted by piv
//	Cholesky: c(A) = (wᵀ·L̂)·L̂ᵀ
//	QR:       c(A) = (Qᵀ·w)ᵀ·R̂       applying the reflectors to the weights
//
// Offline ABFT detects any number of computation errors but — as the
// paper's related-work discussion stresses — cannot correct them in
// practice, because by the end of the run a single fault has propagated
// through the factors; detection therefore ends in a complete restart.

// OfflineChecksum encodes the global dual-weight column checksum of a:
// row 0 holds 1ᵀA, row 1 holds [1,2,…,n]·A.
func OfflineChecksum(a *matrix.Dense) *matrix.Dense {
	out := matrix.NewDense(2, a.Cols)
	s1 := out.Row(0)
	s2 := out.Row(1)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		w := float64(i + 1)
		for j, v := range row {
			s1[j] += v
			s2[j] += w * v
		}
	}
	blas.AddFlops(3 * uint64(a.Rows) * uint64(a.Cols))
	return out
}

// offlineTol mirrors the engine's tolerance derivation for whole-matrix
// sums (the global weights grow the round-off by another factor of n).
func offlineTol(n int, scale float64) float64 {
	t := matrix.Gamma(n) * scale * scale * float64(n) * float64(n)
	if t < 1e-8 {
		t = 1e-8
	}
	return t
}

// offlineCompare reports whether got matches the maintained checksum chk
// within tolerance (row 1 tolerance scaled by n for the weighted sums).
func offlineCompare(chk, got *matrix.Dense, tol float64, n int) bool {
	for j := 0; j < chk.Cols; j++ {
		if d := math.Abs(chk.At(0, j) - got.At(0, j)); d > tol || math.IsNaN(d) {
			return false
		}
		if d := math.Abs(chk.At(1, j) - got.At(1, j)); d > tol*float64(n) || math.IsNaN(d) {
			return false
		}
	}
	return true
}

// OfflineCheckLU verifies the end-of-run checksum relation for packed LU
// factors with pivots. scale should be 1+max|A| of the original input.
func OfflineCheckLU(chk, factors *matrix.Dense, piv []int, scale float64) bool {
	n := factors.Rows
	// w_P: apply the interchanges to the weight vectors, in order.
	w1 := make([]float64, n)
	w2 := make([]float64, n)
	for i := 0; i < n; i++ {
		w1[i] = 1
		w2[i] = float64(i + 1)
	}
	for k, p := range piv {
		if p != k {
			w1[k], w1[p] = w1[p], w1[k]
			w2[k], w2[p] = w2[p], w2[k]
		}
	}
	// t = w_Pᵀ·L̂ (unit lower triangular, packed below the diagonal).
	t1 := make([]float64, n)
	t2 := make([]float64, n)
	for j := 0; j < n; j++ {
		s1, s2 := w1[j], w2[j] // unit diagonal
		for i := j + 1; i < n; i++ {
			l := factors.At(i, j)
			s1 += w1[i] * l
			s2 += w2[i] * l
		}
		t1[j], t2[j] = s1, s2
	}
	// got = t·Û (upper triangular).
	got := matrix.NewDense(2, n)
	for j := 0; j < n; j++ {
		s1, s2 := 0.0, 0.0
		for i := 0; i <= j; i++ {
			u := factors.At(i, j)
			s1 += t1[i] * u
			s2 += t2[i] * u
		}
		got.Set(0, j, s1)
		got.Set(1, j, s2)
	}
	blas.AddFlops(4 * uint64(n) * uint64(n))
	return offlineCompare(chk, got, offlineTol(n, scale), n)
}

// OfflineCheckCholesky verifies c(A) = (wᵀL̂)·L̂ᵀ for a lower factor.
func OfflineCheckCholesky(chk, l *matrix.Dense, scale float64) bool {
	n := l.Rows
	t1 := make([]float64, n)
	t2 := make([]float64, n)
	for j := 0; j < n; j++ {
		s1, s2 := 0.0, 0.0
		for i := j; i < n; i++ {
			v := l.At(i, j)
			s1 += v * float64(1)
			s2 += v * float64(i+1)
			_ = v
		}
		t1[j], t2[j] = s1, s2
	}
	got := matrix.NewDense(2, n)
	for j := 0; j < n; j++ {
		// column j of L̂·L̂ᵀ uses row j of L̂: (L̂L̂ᵀ)_{·,j} = L̂·L̂[j,·]ᵀ
		s1, s2 := 0.0, 0.0
		for k := 0; k <= j; k++ {
			ljk := l.At(j, k)
			s1 += t1[k] * ljk
			s2 += t2[k] * ljk
		}
		got.Set(0, j, s1)
		got.Set(1, j, s2)
	}
	blas.AddFlops(4 * uint64(n) * uint64(n))
	return offlineCompare(chk, got, offlineTol(n, scale), n)
}

// OfflineCheckQR verifies c(A) = (Qᵀw)ᵀ·R̂ by running the stored reflectors
// over the weight vectors.
func OfflineCheckQR(chk, factors *matrix.Dense, tau []float64, scale float64) bool {
	n := factors.Rows
	w1 := make([]float64, n)
	w2 := make([]float64, n)
	for i := 0; i < n; i++ {
		w1[i] = 1
		w2[i] = float64(i + 1)
	}
	// Apply H_{k-1}···H_0 (= Qᵀ) to each weight vector.
	apply := func(w []float64) {
		for j := 0; j < len(tau); j++ {
			if tau[j] == 0 {
				continue
			}
			s := w[j]
			for i := j + 1; i < n; i++ {
				s += factors.At(i, j) * w[i]
			}
			ts := tau[j] * s
			w[j] -= ts
			for i := j + 1; i < n; i++ {
				w[i] -= ts * factors.At(i, j)
			}
		}
	}
	apply(w1)
	apply(w2)
	got := matrix.NewDense(2, n)
	for j := 0; j < n; j++ {
		s1, s2 := 0.0, 0.0
		for i := 0; i <= j && i < n; i++ {
			r := factors.At(i, j)
			s1 += w1[i] * r
			s2 += w2[i] * r
		}
		got.Set(0, j, s1)
		got.Set(1, j, s2)
	}
	blas.AddFlops(6 * uint64(n) * uint64(n))
	return offlineCompare(chk, got, offlineTol(n, scale), n)
}
