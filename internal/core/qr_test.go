package core

import (
	"testing"

	"ftla/internal/fault"
	"ftla/internal/lapack"
	"ftla/internal/matrix"
)

func qrResidual(a, out *matrix.Dense, tau []float64) float64 {
	q := lapack.BuildQ(out, tau)
	r := lapack.ExtractR(out)
	return matrix.QRResidual(a, q, r)
}

func runQR(t *testing.T, n, gpus int, opts Options, inj *fault.Injector) (*matrix.Dense, *matrix.Dense, []float64, *Result) {
	t.Helper()
	rng := matrix.NewRNG(uint64(n) + 101)
	a := matrix.Random(n, n, rng)
	opts.Injector = inj
	sys := testSystem(gpus)
	out, tau, res, err := QR(sys, a, opts)
	if err != nil {
		t.Fatalf("QR failed: %v", err)
	}
	return a, out, tau, res
}

func TestQRUnprotectedCorrect(t *testing.T) {
	a, out, tau, _ := runQR(t, 64, 1, cholOpts(NoChecksum, NoCheck), nil)
	if r := qrResidual(a, out, tau); r > 1e-11 {
		t.Fatalf("residual %g", r)
	}
}

func TestQRMatchesReference(t *testing.T) {
	rng := matrix.NewRNG(42)
	n := 96
	a := matrix.Random(n, n, rng)
	ref := a.Clone()
	refTau := make([]float64, n)
	lapack.Geqrf(ref, 16, refTau)

	sys := testSystem(2)
	out, tau, _, err := QR(sys, a, cholOpts(Full, NewScheme))
	if err != nil {
		t.Fatal(err)
	}
	if !out.EqualWithin(ref, 1e-10) {
		d, i, j := out.MaxAbsDiff(ref)
		t.Fatalf("protected QR differs from reference by %g at (%d,%d)", d, i, j)
	}
	for k := range tau {
		if diff := tau[k] - refTau[k]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("tau[%d] differs: %g vs %g", k, tau[k], refTau[k])
		}
	}
}

func TestQRCleanAllSchemes(t *testing.T) {
	for _, gpus := range []int{1, 2, 3} {
		for _, tc := range []struct {
			mode   Mode
			scheme Scheme
		}{
			{SingleSide, PriorOp},
			{SingleSide, PostOp},
			{Full, PostOp},
			{Full, NewScheme},
		} {
			a, out, tau, res := runQR(t, 96, gpus, cholOpts(tc.mode, tc.scheme), nil)
			if r := qrResidual(a, out, tau); r > 1e-11 {
				t.Fatalf("gpus=%d %v/%v residual %g", gpus, tc.mode, tc.scheme, r)
			}
			if res.Detected {
				t.Fatalf("gpus=%d %v/%v false positive (counters=%+v)", gpus, tc.mode, tc.scheme, res.Counter)
			}
		}
	}
}

func TestQRComputationFaultTMU(t *testing.T) {
	inj := fault.NewInjector(51)
	inj.Schedule(fault.Spec{Kind: fault.Computation, Op: fault.TMU, Iteration: 1})
	a, out, tau, res := runQR(t, 96, 2, cholOpts(Full, NewScheme), inj)
	if len(inj.Events()) != 1 {
		t.Fatalf("fault did not fire: %v", inj.Events())
	}
	if r := qrResidual(a, out, tau); r > 1e-11 {
		t.Fatalf("residual %g (counters=%+v)", r, res.Counter)
	}
	if !res.Detected {
		t.Fatal("QR TMU computation fault undetected")
	}
}

func TestQRComputationFaultPD(t *testing.T) {
	inj := fault.NewInjector(52)
	inj.Schedule(fault.Spec{Kind: fault.Computation, Op: fault.PD, Iteration: 1})
	a, out, tau, res := runQR(t, 96, 2, cholOpts(Full, NewScheme), inj)
	if r := qrResidual(a, out, tau); r > 1e-11 {
		t.Fatalf("residual %g (counters=%+v)", r, res.Counter)
	}
	if res.Counter.LocalRestarts == 0 {
		t.Fatal("QR PD fault should trigger local restart")
	}
}

func TestQRMemoryFaultBeforePD(t *testing.T) {
	inj := fault.NewInjector(53)
	inj.Schedule(fault.Spec{Kind: fault.OffChipMemory, Op: fault.PD, Iteration: 2, Part: fault.UpdatePart})
	a, out, tau, res := runQR(t, 96, 2, cholOpts(Full, NewScheme), inj)
	if r := qrResidual(a, out, tau); r > 1e-11 {
		t.Fatalf("residual %g (counters=%+v)", r, res.Counter)
	}
	if !res.Detected {
		t.Fatal("memory fault before QR PD undetected")
	}
}

func TestQRFaultInT(t *testing.T) {
	inj := fault.NewInjector(54)
	inj.Schedule(fault.Spec{Kind: fault.Computation, Op: fault.CTF, Iteration: 1})
	a, out, tau, res := runQR(t, 96, 2, cholOpts(Full, NewScheme), inj)
	if len(inj.Events()) != 1 {
		t.Fatalf("CTF fault did not fire: %v", inj.Events())
	}
	if r := qrResidual(a, out, tau); r > 1e-11 {
		t.Fatalf("residual %g: corrupted T not recovered (counters=%+v)", r, res.Counter)
	}
	if !res.Detected {
		t.Fatal("CTF fault undetected by the orthogonality probe")
	}
}

func TestQRCommunicationFault(t *testing.T) {
	inj := fault.NewInjector(55)
	inj.Schedule(fault.Spec{Kind: fault.Communication, Op: fault.PD, Iteration: 1, GPUTarget: 1})
	a, out, tau, res := runQR(t, 96, 2, cholOpts(Full, NewScheme), inj)
	if len(inj.Events()) != 1 {
		t.Fatal("comm fault did not fire")
	}
	if r := qrResidual(a, out, tau); r > 1e-11 {
		t.Fatalf("residual %g (counters=%+v)", r, res.Counter)
	}
	if !res.Detected {
		t.Fatal("comm fault undetected")
	}
}

func TestQROffChipFaultTMURefWoodbury(t *testing.T) {
	// DRAM corruption of the reflector stage during TMU: detected by the
	// post-TMU stage check, recovered by the Woodbury rollback + redo.
	inj := fault.NewInjector(56)
	inj.Schedule(fault.Spec{Kind: fault.OffChipMemory, Op: fault.TMU, Iteration: 0, Part: fault.ReferencePart, Row: 30, Col: 5})
	a, out, tau, res := runQR(t, 96, 2, cholOpts(Full, NewScheme), inj)
	if len(inj.Events()) != 1 {
		t.Fatal("fault did not fire")
	}
	if r := qrResidual(a, out, tau); r > 1e-10 {
		t.Fatalf("residual %g (counters=%+v events=%v)", r, res.Counter, inj.Events())
	}
	if res.Counter.LocalRestarts == 0 {
		t.Fatalf("expected a Woodbury local restart (counters=%+v)", res.Counter)
	}
}

func TestQROrthoProbeCatchesCorruptT(t *testing.T) {
	rng := matrix.NewRNG(9)
	m, nb := 48, 8
	panel := matrix.Random(m, nb, rng)
	tau := make([]float64, nb)
	lapack.Geqr2(panel, tau)
	tmat := lapack.Larft(panel, tau)
	p := &protected{nb: nb, es: &engineSys{res: &Result{}}}
	if !p.qrOrthoProbe(panel, tmat) {
		t.Fatal("probe rejected a correct T")
	}
	tmat.Set(2, 5, tmat.At(2, 5)+0.5)
	if p.qrOrthoProbe(panel, tmat) {
		t.Fatal("probe accepted a corrupted T")
	}
}
