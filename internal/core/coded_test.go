package core

import (
	"errors"
	"testing"

	"ftla/internal/checksum"
	"ftla/internal/hetsim"
)

// clusterSystem builds a multi-node test topology: gpus GPUs spread
// round-robin over nodes, with a deliberately slow inter-node interconnect
// so cross-node traffic is visible in the accounting.
func clusterSystem(gpus, nodes int) *hetsim.System {
	cfg := hetsim.DefaultConfig(gpus)
	cfg.CPUWorkers = 1
	cfg.GPUWorkers = 2
	cfg.Nodes = nodes
	cfg.InterGBps = 1.0
	cfg.InterLatencyUS = 100.0
	return hetsim.New(cfg)
}

// runPipelineOn is runPipeline against a caller-built system (the cluster
// tests need topology control; everything else matches).
func runPipelineOn(t *testing.T, decomp string, n int, sys *hetsim.System, opts Options) pipelineRun {
	t.Helper()
	a := pipelineInput(decomp, n)
	var pr pipelineRun
	opts.stageJournal = &pr.journal
	var err error
	switch decomp {
	case "cholesky":
		pr.out, pr.res, err = Cholesky(sys, a, opts)
	case "lu":
		pr.out, pr.pivots, pr.res, err = LU(sys, a, opts)
	case "qr":
		pr.out, pr.tau, pr.res, err = QR(sys, a, opts)
	default:
		t.Fatalf("unknown decomposition %q", decomp)
	}
	if err != nil {
		t.Fatalf("%s (lookahead=%d) failed: %v", decomp, opts.Lookahead, err)
	}
	return pr
}

// TestClusterSingleNodeBitIdentical pins the refactor's zero-cost promise:
// a topology declared with Nodes=1 is the flat single-box system — same
// canonical journal (no parity or node-loss stages), bit-identical factors,
// pivots, and tau, identical counters and traffic, and no inter-node bytes
// — across all three decompositions, both schedules, and 1–3 GPUs.
func TestClusterSingleNodeBitIdentical(t *testing.T) {
	for _, decomp := range []string{"cholesky", "lu", "qr"} {
		for _, gpus := range []int{1, 2, 3} {
			for _, lookahead := range []int{0, 1} {
				opts := Options{NB: 16, Mode: Full, Scheme: NewScheme,
					Kernel: checksum.OptKernel, Lookahead: lookahead}
				flat := runPipelineOn(t, decomp, 96, testSystem(gpus), opts)
				oneNode := runPipelineOn(t, decomp, 96, clusterSystem(gpus, 1), opts)
				label := decomp + "/1-node"
				comparePipelineRuns(t, label, flat, oneNode)
				if oneNode.res.InternodeBytes != 0 {
					t.Fatalf("%s: single-node run counted %d inter-node bytes",
						label, oneNode.res.InternodeBytes)
				}
				for _, rec := range oneNode.journal {
					if rec.Name == stageParity || rec.Name == stageNodeLoss {
						t.Fatalf("%s: cluster stage %v journaled on a single-node topology", label, rec)
					}
				}
			}
		}
	}
}

// TestClusterNodeLossReconstructBitIdentical is the tentpole acceptance
// pin: killing a whole node mid-run on a 3-node topology is absorbed by the
// erasure-coded parity — no checkpoint, no restart — and the finished
// factors (plus pivots/tau) are bit-identical to the uninterrupted run on
// the same topology.
func TestClusterNodeLossReconstructBitIdentical(t *testing.T) {
	configs := []struct {
		mode   Mode
		scheme Scheme
	}{
		{NoChecksum, NoCheck},
		{SingleSide, PostOp},
		{Full, NewScheme},
	}
	for _, decomp := range []string{"cholesky", "lu", "qr"} {
		for _, lookahead := range []int{0, 1} {
			for _, cfg := range configs {
				label := decomp + "/" + cfg.mode.String() + "/node-loss"
				opts := Options{NB: 16, Mode: cfg.mode, Scheme: cfg.scheme,
					Kernel: checksum.OptKernel, Lookahead: lookahead}
				clean := runPipelineOn(t, decomp, 96, clusterSystem(3, 3), opts)

				opts.NodeFault = map[int]hetsim.NodeFaultPlan{1: {AfterEpochs: 2}}
				lossy := runPipelineOn(t, decomp, 96, clusterSystem(3, 3), opts)

				if lossy.res.NodesLost != 1 {
					t.Fatalf("%s: NodesLost = %d, want 1", label, lossy.res.NodesLost)
				}
				if lossy.res.Reconstructions != 2 {
					// Node 1 holds GPU1, which owns block columns 1 and 4 of 6.
					t.Fatalf("%s: Reconstructions = %d, want 2", label, lossy.res.Reconstructions)
				}
				if clean.res.NodesLost != 0 || clean.res.Reconstructions != 0 {
					t.Fatalf("%s: clean run reported node events: %+v", label, clean.res)
				}
				if clean.res.InternodeBytes <= 0 {
					t.Fatalf("%s: parity maintenance moved no inter-node bytes", label)
				}
				if d, r, c := clean.out.MaxAbsDiff(lossy.out); d != 0 {
					t.Fatalf("%s: factors not bit-identical after reconstruction: |Δ|=%g at (%d,%d)",
						label, d, r, c)
				}
				for i := range clean.pivots {
					if clean.pivots[i] != lossy.pivots[i] {
						t.Fatalf("%s: pivots differ at %d: %d vs %d",
							label, i, clean.pivots[i], lossy.pivots[i])
					}
				}
				for i := range clean.tau {
					if clean.tau[i] != lossy.tau[i] {
						t.Fatalf("%s: tau differs at %d: %v vs %v",
							label, i, clean.tau[i], lossy.tau[i])
					}
				}
				if lossy.res.Rollbacks != 0 || lossy.res.Checkpoints != 0 {
					t.Fatalf("%s: reconstruction leaned on checkpoints: %+v", label, lossy.res)
				}
				found := false
				for _, rec := range lossy.journal {
					if rec.Name == stageNodeLoss {
						found = true
					}
				}
				if !found {
					t.Fatalf("%s: no node-loss stage journaled", label)
				}
			}
		}
	}
}

// TestClusterSecondNodeLossSurfacesTypedError: r=1 redundancy absorbs one
// loss; a second one must surface hetsim.NodeLostError to the caller (the
// serving layer's failover ladder), not panic or silently corrupt.
func TestClusterSecondNodeLossSurfacesTypedError(t *testing.T) {
	opts := Options{NB: 16, Mode: Full, Scheme: NewScheme, Kernel: checksum.OptKernel,
		NodeFault: map[int]hetsim.NodeFaultPlan{
			1: {AfterEpochs: 1},
			2: {AfterEpochs: 2},
		}}
	sys := clusterSystem(3, 3)
	out, res, err := Cholesky(sys, pipelineInput("cholesky", 96), opts)
	if out != nil || res != nil {
		t.Fatal("second node loss still returned a result")
	}
	var lost *hetsim.NodeLostError
	if !errors.As(err, &lost) {
		t.Fatalf("err = %v, want NodeLostError", err)
	}
	if lost.Node != 2 || lost.GPUs != 1 {
		t.Fatalf("NodeLostError = %+v, want node 2 with 1 GPU", lost)
	}
}

// TestClusterParityPlacementDisjoint verifies the placement invariant the
// erasure code rests on: no parity column shares a node with any member of
// its group, so a single node loss never removes a member and its parity.
func TestClusterParityPlacementDisjoint(t *testing.T) {
	for _, tc := range []struct{ gpus, nodes, n int }{
		{2, 2, 96}, {3, 3, 96}, {4, 2, 128}, {6, 3, 192},
	} {
		sys := clusterSystem(tc.gpus, tc.nodes)
		a := pipelineInput("cholesky", tc.n)
		opts := Options{NB: 16, Mode: SingleSide, Scheme: PostOp, Kernel: checksum.OptKernel}
		if err := opts.Validate(tc.n); err != nil {
			t.Fatal(err)
		}
		res := &Result{}
		es := newEngine("cholesky", sys, opts, res)
		p := newProtected(es, a)
		if p.coded == nil {
			t.Fatalf("gpus=%d nodes=%d: no coded state on a multi-node topology", tc.gpus, tc.nodes)
		}
		for _, g := range p.coded.groups {
			pnode := sys.NodeOf(g.pg)
			for bj := g.first; bj <= g.last; bj++ {
				if sys.NodeOf(p.owner(bj)) == pnode {
					t.Fatalf("gpus=%d nodes=%d: group [%d,%d] parity on GPU%d shares node %d with member %d",
						tc.gpus, tc.nodes, g.first, g.last, g.pg, pnode, bj)
				}
			}
		}
	}
}
