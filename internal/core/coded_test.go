package core

import (
	"errors"
	"fmt"
	"testing"

	"ftla/internal/checksum"
	"ftla/internal/hetsim"
)

// clusterSystem builds a multi-node test topology: gpus GPUs spread
// round-robin over nodes, with a deliberately slow inter-node interconnect
// so cross-node traffic is visible in the accounting.
func clusterSystem(gpus, nodes int) *hetsim.System {
	cfg := hetsim.DefaultConfig(gpus)
	cfg.CPUWorkers = 1
	cfg.GPUWorkers = 2
	cfg.Nodes = nodes
	cfg.InterGBps = 1.0
	cfg.InterLatencyUS = 100.0
	return hetsim.New(cfg)
}

// runPipelineOn is runPipeline against a caller-built system (the cluster
// tests need topology control; everything else matches).
func runPipelineOn(t *testing.T, decomp string, n int, sys *hetsim.System, opts Options) pipelineRun {
	t.Helper()
	a := pipelineInput(decomp, n)
	var pr pipelineRun
	opts.stageJournal = &pr.journal
	var err error
	switch decomp {
	case "cholesky":
		pr.out, pr.res, err = Cholesky(sys, a, opts)
	case "lu":
		pr.out, pr.pivots, pr.res, err = LU(sys, a, opts)
	case "qr":
		pr.out, pr.tau, pr.res, err = QR(sys, a, opts)
	default:
		t.Fatalf("unknown decomposition %q", decomp)
	}
	if err != nil {
		t.Fatalf("%s (lookahead=%d) failed: %v", decomp, opts.Lookahead, err)
	}
	return pr
}

// TestClusterSingleNodeBitIdentical pins the refactor's zero-cost promise:
// a topology declared with Nodes=1 is the flat single-box system — same
// canonical journal (no parity or node-loss stages), bit-identical factors,
// pivots, and tau, identical counters and traffic, and no inter-node bytes
// — across all three decompositions, both schedules, and 1–3 GPUs.
func TestClusterSingleNodeBitIdentical(t *testing.T) {
	for _, decomp := range []string{"cholesky", "lu", "qr"} {
		for _, gpus := range []int{1, 2, 3} {
			for _, lookahead := range []int{0, 1} {
				opts := Options{NB: 16, Mode: Full, Scheme: NewScheme,
					Kernel: checksum.OptKernel, Lookahead: lookahead}
				flat := runPipelineOn(t, decomp, 96, testSystem(gpus), opts)
				oneNode := runPipelineOn(t, decomp, 96, clusterSystem(gpus, 1), opts)
				label := decomp + "/1-node"
				comparePipelineRuns(t, label, flat, oneNode)
				if oneNode.res.InternodeBytes != 0 {
					t.Fatalf("%s: single-node run counted %d inter-node bytes",
						label, oneNode.res.InternodeBytes)
				}
				for _, rec := range oneNode.journal {
					if rec.Name == stageParity || rec.Name == stageNodeLoss {
						t.Fatalf("%s: cluster stage %v journaled on a single-node topology", label, rec)
					}
				}
			}
		}
	}
}

// TestClusterNodeLossReconstructBitIdentical is the tentpole acceptance
// pin: killing a whole node mid-run on a 3-node topology is absorbed by the
// erasure-coded parity — no checkpoint, no restart — and the finished
// factors (plus pivots/tau) are bit-identical to the uninterrupted run on
// the same topology.
func TestClusterNodeLossReconstructBitIdentical(t *testing.T) {
	configs := []struct {
		mode   Mode
		scheme Scheme
	}{
		{NoChecksum, NoCheck},
		{SingleSide, PostOp},
		{Full, NewScheme},
	}
	for _, decomp := range []string{"cholesky", "lu", "qr"} {
		for _, lookahead := range []int{0, 1} {
			for _, cfg := range configs {
				label := decomp + "/" + cfg.mode.String() + "/node-loss"
				opts := Options{NB: 16, Mode: cfg.mode, Scheme: cfg.scheme,
					Kernel: checksum.OptKernel, Lookahead: lookahead}
				clean := runPipelineOn(t, decomp, 96, clusterSystem(3, 3), opts)

				opts.NodeFault = map[int]hetsim.NodeFaultPlan{1: {AfterEpochs: 2}}
				lossy := runPipelineOn(t, decomp, 96, clusterSystem(3, 3), opts)

				if lossy.res.NodesLost != 1 {
					t.Fatalf("%s: NodesLost = %d, want 1", label, lossy.res.NodesLost)
				}
				if lossy.res.Reconstructions != 2 {
					// Node 1 holds GPU1, which owns block columns 1 and 4 of 6.
					t.Fatalf("%s: Reconstructions = %d, want 2", label, lossy.res.Reconstructions)
				}
				if clean.res.NodesLost != 0 || clean.res.Reconstructions != 0 {
					t.Fatalf("%s: clean run reported node events: %+v", label, clean.res)
				}
				if clean.res.InternodeBytes <= 0 {
					t.Fatalf("%s: parity maintenance moved no inter-node bytes", label)
				}
				if d, r, c := clean.out.MaxAbsDiff(lossy.out); d != 0 {
					t.Fatalf("%s: factors not bit-identical after reconstruction: |Δ|=%g at (%d,%d)",
						label, d, r, c)
				}
				for i := range clean.pivots {
					if clean.pivots[i] != lossy.pivots[i] {
						t.Fatalf("%s: pivots differ at %d: %d vs %d",
							label, i, clean.pivots[i], lossy.pivots[i])
					}
				}
				for i := range clean.tau {
					if clean.tau[i] != lossy.tau[i] {
						t.Fatalf("%s: tau differs at %d: %v vs %v",
							label, i, clean.tau[i], lossy.tau[i])
					}
				}
				if lossy.res.Rollbacks != 0 || lossy.res.Checkpoints != 0 {
					t.Fatalf("%s: reconstruction leaned on checkpoints: %+v", label, lossy.res)
				}
				found := false
				for _, rec := range lossy.journal {
					if rec.Name == stageNodeLoss {
						found = true
					}
				}
				if !found {
					t.Fatalf("%s: no node-loss stage journaled", label)
				}
			}
		}
	}
}

// TestClusterSecondNodeLossSurfacesTypedError: r=1 redundancy absorbs one
// loss; a second one must surface hetsim.NodeLostError to the caller (the
// serving layer's failover ladder), not panic or silently corrupt.
func TestClusterSecondNodeLossSurfacesTypedError(t *testing.T) {
	opts := Options{NB: 16, Mode: Full, Scheme: NewScheme, Kernel: checksum.OptKernel,
		NodeFault: map[int]hetsim.NodeFaultPlan{
			1: {AfterEpochs: 1},
			2: {AfterEpochs: 2},
		}}
	sys := clusterSystem(3, 3)
	out, res, err := Cholesky(sys, pipelineInput("cholesky", 96), opts)
	if out != nil || res != nil {
		t.Fatal("second node loss still returned a result")
	}
	var lost *hetsim.NodeLostError
	if !errors.As(err, &lost) {
		t.Fatalf("err = %v, want NodeLostError", err)
	}
	if lost.Node != 2 || lost.GPUs != 1 {
		t.Fatalf("NodeLostError = %+v, want node 2 with 1 GPU", lost)
	}
}

// TestClusterDoubleNodeLossBitIdentical is the r=2 acceptance pin: on a
// 4-node cluster with two parity columns per group, TWO node losses —
// arriving sequentially at different epochs or as one simultaneous burst —
// are absorbed by Reed-Solomon reconstruction with the finished factors
// (plus pivots/tau) bit-identical to an uninterrupted run on the same
// topology, no checkpoint or restart involved. The burst arms nodes 0 and 1,
// whose GPUs co-own both members of every even group, forcing a genuine 2×2
// GF(2^8) decode (not two XOR solves); the sequential case exercises the
// live-parity accounting after an adopted column starts sharing a GPU with
// a surviving parity.
func TestClusterDoubleNodeLossBitIdentical(t *testing.T) {
	cases := []struct {
		name      string
		plans     map[int]hetsim.NodeFaultPlan
		lossEdges int // distinct node-loss stages expected in the journal
	}{
		{"sequential", map[int]hetsim.NodeFaultPlan{1: {AfterEpochs: 2}, 3: {AfterEpochs: 4}}, 2},
		{"burst", map[int]hetsim.NodeFaultPlan{0: {AfterEpochs: 2}, 1: {AfterEpochs: 2}}, 1},
	}
	for _, decomp := range []string{"cholesky", "lu", "qr"} {
		for _, lookahead := range []int{0, 1} {
			opts := Options{NB: 16, Mode: Full, Scheme: NewScheme,
				Kernel: checksum.OptKernel, Lookahead: lookahead, Redundancy: 2}
			clean := runPipelineOn(t, decomp, 128, clusterSystem(4, 4), opts)
			for _, tc := range cases {
				label := decomp + "/" + tc.name
				lopts := opts
				lopts.NodeFault = tc.plans
				lossy := runPipelineOn(t, decomp, 128, clusterSystem(4, 4), lopts)

				if lossy.res.NodesLost != 2 {
					t.Fatalf("%s: NodesLost = %d, want 2", label, lossy.res.NodesLost)
				}
				if lossy.res.Reconstructions != 4 {
					// Each lost node holds one GPU owning two of the eight
					// block columns.
					t.Fatalf("%s: Reconstructions = %d, want 4", label, lossy.res.Reconstructions)
				}
				if lossy.res.Rollbacks != 0 || lossy.res.Checkpoints != 0 {
					t.Fatalf("%s: reconstruction leaned on checkpoints: %+v", label, lossy.res)
				}
				if d, r, c := clean.out.MaxAbsDiff(lossy.out); d != 0 {
					t.Fatalf("%s: factors not bit-identical after double loss: |Δ|=%g at (%d,%d)",
						label, d, r, c)
				}
				for i := range clean.pivots {
					if clean.pivots[i] != lossy.pivots[i] {
						t.Fatalf("%s: pivots differ at %d", label, i)
					}
				}
				for i := range clean.tau {
					if clean.tau[i] != lossy.tau[i] {
						t.Fatalf("%s: tau differs at %d", label, i)
					}
				}
				stages := 0
				for _, rec := range lossy.journal {
					if rec.Name == stageNodeLoss {
						stages++
					}
				}
				if stages != tc.lossEdges {
					t.Fatalf("%s: %d node-loss stages journaled, want %d", label, stages, tc.lossEdges)
				}
			}
		}
	}
}

// TestClusterThirdLossExhaustsRedundancy: r=2 absorbs two losses; the third
// must surface the typed error once some group has no parity left to solve
// with — the failover ladder engages only when redundancy is truly spent.
func TestClusterThirdLossExhaustsRedundancy(t *testing.T) {
	opts := Options{NB: 16, Mode: Full, Scheme: NewScheme, Kernel: checksum.OptKernel,
		Redundancy: 2,
		NodeFault: map[int]hetsim.NodeFaultPlan{
			1: {AfterEpochs: 1},
			2: {AfterEpochs: 2},
			3: {AfterEpochs: 3},
		}}
	out, res, err := Cholesky(clusterSystem(4, 4), pipelineInput("cholesky", 128), opts)
	if out != nil || res != nil {
		t.Fatal("third node loss still returned a result")
	}
	var lost *hetsim.NodeLostError
	if !errors.As(err, &lost) {
		t.Fatalf("err = %v, want NodeLostError", err)
	}
	if lost.Node != 3 || lost.GPUs != 1 {
		t.Fatalf("NodeLostError = %+v, want node 3 with 1 GPU", lost)
	}
}

// TestClusterRebalanceBitIdentityUniform pins the other half of the
// tentpole: dynamic rebalancing now runs on multi-node topologies, the
// parity-aware migration protocol keeps the placement invariant, and on
// uniform devices a rebalancing run stays bit-identical to the static run
// on the same cluster. The suspect start forces real cross-node moves, so
// the parity re-home path executes (asserted via Result counters).
func TestClusterRebalanceBitIdentityUniform(t *testing.T) {
	for _, tc := range []struct{ gpus, nodes, r, n int }{
		{4, 2, 1, 192}, // kk=1: every cross-node move displaces a parity
		{3, 3, 2, 128}, // r=2: re-home must pick the parity on the target node
	} {
		for _, decomp := range []string{"cholesky", "lu", "qr"} {
			for _, lookahead := range []int{0, 1} {
				label := fmt.Sprintf("%s/%dx%d-r%d/lookahead=%d", decomp, tc.gpus, tc.nodes, tc.r, lookahead)
				opts := Options{NB: 16, Mode: Full, Scheme: NewScheme,
					Kernel: checksum.OptKernel, Lookahead: lookahead, Redundancy: tc.r}
				static := runPipelineOn(t, decomp, tc.n, clusterSystem(tc.gpus, tc.nodes), opts)

				dyn := opts
				dyn.Rebalance = Rebalance{Every: 2, Suspect: []int{0}}
				moved := runPipelineOn(t, decomp, tc.n, clusterSystem(tc.gpus, tc.nodes), dyn)

				if moved.res.MovedColumns == 0 {
					t.Fatalf("%s: cluster rebalancing moved no columns; the ban is still in effect", label)
				}
				if d, r, c := static.out.MaxAbsDiff(moved.out); d != 0 {
					t.Fatalf("%s: factors differ from static cluster run: |Δ|=%g at (%d,%d)",
						label, d, r, c)
				}
				for i := range static.pivots {
					if static.pivots[i] != moved.pivots[i] {
						t.Fatalf("%s: pivot %d differs", label, i)
					}
				}
				for i := range static.tau {
					if static.tau[i] != moved.tau[i] {
						t.Fatalf("%s: tau %d differs", label, i)
					}
				}
			}
		}
	}
}

// TestClusterRebalanceSurvivesNodeLoss: rebalancing and reconstruction
// compose — a run that both repartitions columns and loses a node finishes
// bit-identical to the static uninterrupted run on the same topology
// (migration preserves the placement invariant, so the loss stays
// recoverable afterwards).
func TestClusterRebalanceSurvivesNodeLoss(t *testing.T) {
	opts := Options{NB: 16, Mode: Full, Scheme: NewScheme, Kernel: checksum.OptKernel}
	static := runPipelineOn(t, "lu", 192, clusterSystem(4, 2), opts)

	dyn := opts
	dyn.Rebalance = Rebalance{Every: 2, Suspect: []int{0}}
	dyn.NodeFault = map[int]hetsim.NodeFaultPlan{1: {AfterEpochs: 3}}
	lossy := runPipelineOn(t, "lu", 192, clusterSystem(4, 2), dyn)

	if lossy.res.NodesLost != 1 || lossy.res.Reconstructions == 0 {
		t.Fatalf("node loss not absorbed under rebalancing: %+v", lossy.res)
	}
	if lossy.res.MovedColumns == 0 {
		t.Fatal("rebalancer moved nothing; the composition exercised nothing")
	}
	if d, r, c := static.out.MaxAbsDiff(lossy.out); d != 0 {
		t.Fatalf("factors differ: |Δ|=%g at (%d,%d)", d, r, c)
	}
	for i := range static.pivots {
		if static.pivots[i] != lossy.pivots[i] {
			t.Fatalf("pivot %d differs", i)
		}
	}
}

// TestClusterParityPlacementDisjoint verifies the placement invariant the
// erasure code rests on: within every group, the r parity columns and the
// members all live on pairwise distinct nodes (every node holds exactly one
// column of each group), so any ≤ r node losses remove at most r columns
// per group — never more than the surviving parities can solve for.
func TestClusterParityPlacementDisjoint(t *testing.T) {
	for _, tc := range []struct{ gpus, nodes, r, n int }{
		{2, 2, 1, 96}, {3, 3, 1, 96}, {4, 2, 1, 128}, {6, 3, 1, 192},
		{3, 3, 2, 96}, {4, 4, 2, 128}, {6, 3, 2, 192}, {4, 4, 3, 128}, {8, 4, 2, 256},
	} {
		sys := clusterSystem(tc.gpus, tc.nodes)
		a := pipelineInput("cholesky", tc.n)
		opts := Options{NB: 16, Mode: SingleSide, Scheme: PostOp, Kernel: checksum.OptKernel,
			Redundancy: tc.r}
		if err := opts.Validate(tc.n); err != nil {
			t.Fatal(err)
		}
		res := &Result{}
		es := newEngine("cholesky", sys, opts, res)
		p := newProtected(es, a)
		if p.coded == nil {
			t.Fatalf("gpus=%d nodes=%d: no coded state on a multi-node topology", tc.gpus, tc.nodes)
		}
		if p.coded.r != tc.r {
			t.Fatalf("gpus=%d nodes=%d: coded r = %d, want %d", tc.gpus, tc.nodes, p.coded.r, tc.r)
		}
		for _, g := range p.coded.groups {
			nodesSeen := map[int]string{}
			claim := func(node int, what string) {
				if prev, dup := nodesSeen[node]; dup {
					t.Fatalf("gpus=%d nodes=%d r=%d: group [%d,%d] has %s and %s on node %d",
						tc.gpus, tc.nodes, tc.r, g.first, g.last, prev, what, node)
				}
				nodesSeen[node] = what
			}
			for j, pg := range g.pgs {
				if g.bufs[j] == nil {
					t.Fatalf("gpus=%d nodes=%d r=%d: group [%d,%d] parity %d unallocated",
						tc.gpus, tc.nodes, tc.r, g.first, g.last, j)
				}
				claim(sys.NodeOf(pg), "parity")
			}
			for bj := g.first; bj <= g.last; bj++ {
				claim(sys.NodeOf(p.owner(bj)), "member")
			}
		}
	}
}
