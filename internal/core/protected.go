package core

import (
	"sort"

	"ftla/internal/checksum"
	"ftla/internal/hetsim"
	"ftla/internal/matrix"
	"ftla/internal/obs"
)

// protected is the distributed, checksum-encoded matrix state. The n×n
// matrix is distributed over the GPUs in a 1-D block-column layout: each
// GPU stores a compact n × localCols panel of its block columns, a
// column-checksum matrix with one 2-row strip per block row, and (under
// Full mode) a row-checksum matrix with one 2-column strip per local block
// column.
//
// Ownership is table-backed rather than arithmetic. Runs start from the
// MAGMA-style block-column-cyclic assignment (block column bj on GPU
// bj mod G), but the rebalancer may migrate trailing block columns between
// GPUs mid-run, so owner/localBlock lookups go through own/loc/blocks. The
// one invariant every consumer relies on is that blocks[g] is sorted by
// global block index: a GPU's trailing blocks (bj >= some k) are then
// always a contiguous suffix of its local slab, which keeps every
// range-based view ([trailStart, nloc)) valid no matter how columns have
// been shuffled.
type protected struct {
	es  *engineSys
	n   int
	nb  int
	nbr int // number of block rows == block columns
	tol float64

	local  []*hetsim.Buffer // [g] n × capb(g)·nb
	colChk []*hetsim.Buffer // [g] 2·nbr × capb(g)·nb
	rowChk []*hetsim.Buffer // [g] n × 2·capb(g); nil when mode != Full
	nloc   []int            // local block count per GPU (used prefix of the slab)

	// Ownership tables. own[bj] is the GPU holding block column bj,
	// loc[bj] its local block index there, and blocks[g] the sorted global
	// block indices GPU g holds (len(blocks[g]) == nloc[g]).
	own    []int
	loc    []int
	blocks [][]int
	// capb is each GPU's slab capacity in blocks; nloc[g] <= capb[g].
	// Static runs size slabs exactly; rebalancing and multi-node runs
	// reserve full width so migration/adoption never reallocates.
	capb []int

	// coded is the cross-node erasure redundancy (see coded.go), nil on
	// flat single-node systems.
	coded *codedState
}

// gpuLive reports whether GPU g is still serving — not fail-stopped and
// not taken down by a node loss. Per-GPU loops that unconditionally touch
// devices or broadcast stages gate on it after a reconstruction.
func (p *protected) gpuLive(g int) bool { return !p.es.sys.GPU(g).Lost() }

// liveGPUs counts the GPUs still serving. The §VII.C sender-implication
// comparisons ("corrupted on *every* GPU implicates the sender") use this
// instead of the raw GPU count once a node is gone.
func (p *protected) liveGPUs() int {
	n := 0
	for g := 0; g < p.es.sys.NumGPUs(); g++ {
		if p.gpuLive(g) {
			n++
		}
	}
	return n
}

// owner returns the GPU index holding block column bj.
func (p *protected) owner(bj int) int { return p.own[bj] }

// localBlock returns the local block index of block column bj on its
// owner.
func (p *protected) localBlock(bj int) int { return p.loc[bj] }

// localOff returns the local column offset of block column bj on its
// owner.
func (p *protected) localOff(bj int) int { return p.loc[bj] * p.nb }

// trailStart returns, for GPU g, the first local block index belonging to
// block columns >= bj. Because blocks[g] is sorted, the answer is a binary
// search and the trailing blocks form a contiguous slab suffix.
func (p *protected) trailStart(g, bj int) int {
	return sort.SearchInts(p.blocks[g], bj)
}

// globalBlock returns the global block-column index of GPU g's local
// block lb — the inverse of localBlock.
func (p *protected) globalBlock(g, lb int) int { return p.blocks[g][lb] }

// initCyclicLayout fills the ownership tables with the block-column-cyclic
// assignment (bj on GPU bj mod G) every run starts from.
func (p *protected) initCyclicLayout(G int) {
	p.own = make([]int, p.nbr)
	p.loc = make([]int, p.nbr)
	p.blocks = make([][]int, G)
	p.nloc = make([]int, G)
	for g := 0; g < G; g++ {
		p.nloc[g] = (p.nbr - g + G - 1) / G
		p.blocks[g] = make([]int, 0, p.nbr)
	}
	for bj := 0; bj < p.nbr; bj++ {
		g := bj % G
		p.own[bj] = g
		p.loc[bj] = len(p.blocks[g])
		p.blocks[g] = append(p.blocks[g], bj)
	}
}

// allocSlabs allocates each GPU's data and checksum slabs. Rebalancing
// runs (Options.Rebalance.Every > 0) and multi-node runs allocate
// full-width slabs (nbr blocks) so column migration — or the adoption of
// reconstructed columns after a node loss — is a shift-and-copy, never a
// realloc; static flat runs size them to the cyclic share.
func (p *protected) allocSlabs() {
	es := p.es
	G := es.sys.NumGPUs()
	p.local = make([]*hetsim.Buffer, G)
	p.colChk = make([]*hetsim.Buffer, G)
	p.rowChk = make([]*hetsim.Buffer, G)
	p.capb = make([]int, G)
	for g := 0; g < G; g++ {
		p.capb[g] = p.nloc[g]
		if es.opts.Rebalance.Every > 0 || es.sys.Nodes() > 1 {
			p.capb[g] = p.nbr
		}
		if p.capb[g] == 0 {
			p.capb[g] = 1 // never happens for nbr >= G; defensive
		}
		p.local[g] = es.sys.GPU(g).Alloc(p.n, p.capb[g]*p.nb)
		if es.opts.Mode != NoChecksum {
			p.colChk[g] = es.sys.GPU(g).Alloc(2*p.nbr, p.capb[g]*p.nb)
		}
		if es.opts.Mode == Full {
			p.rowChk[g] = es.sys.GPU(g).Alloc(p.n, 2*p.capb[g])
		}
	}
}

// newProtected distributes a (resident on the CPU) across the GPUs and
// encodes the initial checksums on-device with the configured kernel.
func newProtected(es *engineSys, a *matrix.Dense) *protected {
	n := a.Rows
	nb := es.opts.NB
	G := es.sys.NumGPUs()
	p := &protected{es: es, n: n, nb: nb, nbr: n / nb}
	scale := 1 + matrix.NormMax(a)
	p.tol = matrix.Gamma(n) * scale * scale * float64(n)
	if p.tol < 1e-9 {
		p.tol = 1e-9
	}

	p.initCyclicLayout(G)
	p.allocSlabs()
	cpu := es.sys.CPU()
	for g := 0; g < G; g++ {
		// Ship each block column over PCIe.
		for lb := 0; lb < p.nloc[g]; lb++ {
			bj := p.blocks[g][lb]
			src := cpu.AllocFrom(a.View(0, bj*nb, n, nb))
			es.transfer(src, p.local[g].View(0, lb*nb, n, nb))
		}
	}
	if es.opts.Mode != NoChecksum {
		stop := es.span(obs.PhaseEncode, "encode-initial", &es.res.EncodeT)
		for g := 0; g < G; g++ {
			gdev := es.sys.GPU(g)
			lc := p.nloc[g] * nb
			// Encode over the used prefix only: rebalancing runs allocate
			// wider slabs whose tail holds no blocks yet.
			data := p.local[g].View(0, 0, n, lc)
			cc := p.colChk[g].View(0, 0, 2*p.nbr, lc)
			gdev.Run("encode-col", 4*float64(n*lc), func(w int) {
				checksum.EncodeCol(es.opts.Kernel, w, data.Access(gdev), nb, cc.Access(gdev))
			})
			if es.opts.Mode == Full {
				rc := p.rowChk[g].View(0, 0, n, 2*p.nloc[g])
				gdev.Run("encode-row", 4*float64(n*lc), func(w int) {
					checksum.EncodeRow(es.opts.Kernel, w, data.Access(gdev), nb, rc.Access(gdev))
				})
			}
		}
		stop()
	}
	if es.sys.Nodes() > 1 {
		p.coded = newCodedState(p)
		p.coded.refresh(0)
	}
	return p
}

// migrateColumn moves ownership of block column bj to GPU dst: the
// destination shifts its slab right to open a hole at the sorted insertion
// point, the data column and its checksum strips travel over PCIe, the
// source compacts its slab, and the ownership tables are updated. The
// copies are bit-exact, so the column's ABFT protection (column-checksum
// strip, row-checksum pair) survives the move unchanged. Callers batch
// rounds of moves inside a hetsim.CoalesceTransfers window so a round
// pays each link's PCIe latency once.
func (p *protected) migrateColumn(bj, dst int) {
	src := p.own[bj]
	if src == dst {
		return
	}
	nb, n := p.nb, p.n
	sl := p.loc[bj]
	full := p.es.opts.Mode == Full
	chk := p.es.opts.Mode != NoChecksum

	// Open a hole at dst's sorted insertion point: shift local blocks
	// [idx, nloc) one block right. Device-local, zero flops.
	idx := sort.SearchInts(p.blocks[dst], bj)
	ddev := p.es.sys.GPU(dst)
	if w := (p.nloc[dst] - idx) * nb; w > 0 {
		copyWithin(ddev, p.local[dst].View(0, idx*nb, n, w), p.local[dst].View(0, (idx+1)*nb, n, w))
		if chk {
			copyWithin(ddev, p.colChk[dst].View(0, idx*nb, 2*p.nbr, w), p.colChk[dst].View(0, (idx+1)*nb, 2*p.nbr, w))
		}
		if full {
			wp := 2 * (p.nloc[dst] - idx)
			copyWithin(ddev, p.rowChk[dst].View(0, 2*idx, n, wp), p.rowChk[dst].View(0, 2*(idx+1), n, wp))
		}
	}

	// Ship the column and its checksum strips into the hole.
	p.es.transfer(p.local[src].View(0, sl*nb, n, nb), p.local[dst].View(0, idx*nb, n, nb))
	if chk {
		p.es.transfer(p.colChk[src].View(0, sl*nb, 2*p.nbr, nb), p.colChk[dst].View(0, idx*nb, 2*p.nbr, nb))
	}
	if full {
		p.es.transfer(p.rowChk[src].View(0, 2*sl, n, 2), p.rowChk[dst].View(0, 2*idx, n, 2))
	}

	// Compact the source: shift local blocks (sl, nloc) one block left.
	sdev := p.es.sys.GPU(src)
	if w := (p.nloc[src] - sl - 1) * nb; w > 0 {
		copyWithin(sdev, p.local[src].View(0, (sl+1)*nb, n, w), p.local[src].View(0, sl*nb, n, w))
		if chk {
			copyWithin(sdev, p.colChk[src].View(0, (sl+1)*nb, 2*p.nbr, w), p.colChk[src].View(0, sl*nb, 2*p.nbr, w))
		}
		if full {
			wp := 2 * (p.nloc[src] - sl - 1)
			copyWithin(sdev, p.rowChk[src].View(0, 2*(sl+1), n, wp), p.rowChk[src].View(0, 2*sl, n, wp))
		}
	}

	// Update the tables: remove bj from src, insert into dst at idx.
	p.blocks[src] = append(p.blocks[src][:sl], p.blocks[src][sl+1:]...)
	p.nloc[src]--
	for _, b := range p.blocks[src][sl:] {
		p.loc[b]--
	}
	p.blocks[dst] = append(p.blocks[dst], 0)
	copy(p.blocks[dst][idx+1:], p.blocks[dst][idx:])
	p.blocks[dst][idx] = bj
	p.nloc[dst]++
	for i := idx; i < p.nloc[dst]; i++ {
		p.loc[p.blocks[dst][i]] = i
	}
	p.own[bj] = dst
}

// gather copies the distributed matrix back to a CPU-resident dense
// matrix over PCIe.
func (p *protected) gather() *matrix.Dense {
	out := matrix.NewDense(p.n, p.n)
	cpu := p.es.sys.CPU()
	for bj := 0; bj < p.nbr; bj++ {
		g := p.owner(bj)
		dst := cpu.Alloc(p.n, p.nb)
		p.es.transfer(p.local[g].View(0, p.localOff(bj), p.n, p.nb), dst)
		out.View(0, bj*p.nb, p.n, p.nb).CopyFrom(dst.Access(cpu))
	}
	return out
}

// colChkView returns the column-checksum strip rows [2·slo, 2·shi) of
// block column bj on its owner.
func (p *protected) colChkView(bj, slo, shi int) *hetsim.Buffer {
	g := p.owner(bj)
	return p.colChk[g].View(2*slo, p.localOff(bj), 2*(shi-slo), p.nb)
}

// rowChkView returns the row-checksum pair columns of block column bj,
// rows [rlo, rhi). Only valid under Full mode.
func (p *protected) rowChkView(bj, rlo, rhi int) *hetsim.Buffer {
	g := p.owner(bj)
	return p.rowChk[g].View(rlo, 2*p.localBlock(bj), rhi-rlo, 2)
}

// swapRows applies the LU row interchange r1 <-> r2 on every GPU across
// block columns [bjLo, bjHi), maintaining the column checksums
// incrementally (the v₂-weighted sums change under a swap; the v₁ sums
// change only across strips) and letting row-checksum rows travel with
// their data rows.
func (p *protected) swapRows(r1, r2, bjLo, bjHi int) {
	if r1 == r2 {
		return
	}
	G := p.es.sys.NumGPUs()
	s1, s2 := r1/p.nb, r2/p.nb
	w1 := float64(r1%p.nb + 1)
	w2 := float64(r2%p.nb + 1)
	for g := 0; g < G; g++ {
		gdev := p.es.sys.GPU(g)
		lbLo := p.trailStart(g, bjLo)
		lbHi := p.trailStart(g, bjHi)
		if lbLo >= lbHi {
			continue
		}
		local, cc, rc := p.local[g], p.colChk[g], p.rowChk[g]
		mode := p.es.opts.Mode
		gdev.Run("laswp", float64((lbHi-lbLo)*p.nb), func(int) {
			data := local.Access(gdev)
			jlo, jhi := lbLo*p.nb, lbHi*p.nb
			row1 := data.Row(r1)[jlo:jhi]
			row2 := data.Row(r2)[jlo:jhi]
			for j := range row1 {
				row1[j], row2[j] = row2[j], row1[j]
			}
			if mode != NoChecksum {
				chk := cc.Access(gdev)
				if s1 == s2 {
					c2 := chk.Row(2*s1 + 1)[jlo:jhi]
					for j := range row1 {
						// Post-swap: row1 holds b (old r2), row2 holds a.
						c2[j] += (w1 - w2) * (row1[j] - row2[j])
					}
				} else {
					c11 := chk.Row(2 * s1)[jlo:jhi]
					c12 := chk.Row(2*s1 + 1)[jlo:jhi]
					c21 := chk.Row(2 * s2)[jlo:jhi]
					c22 := chk.Row(2*s2 + 1)[jlo:jhi]
					for j := range row1 {
						d := row1[j] - row2[j] // b − a
						c11[j] += d
						c12[j] += w1 * d
						c21[j] -= d
						c22[j] -= w2 * d
					}
				}
			}
			if mode == Full && rc != nil {
				rchk := rc.Access(gdev)
				pjlo, pjhi := 2*lbLo, 2*lbHi
				rr1 := rchk.Row(r1)[pjlo:pjhi]
				rr2 := rchk.Row(r2)[pjlo:pjhi]
				for j := range rr1 {
					rr1[j], rr2[j] = rr2[j], rr1[j]
				}
			}
		})
	}
	if p.coded != nil {
		p.coded.swapRows(r1, r2, bjLo, bjHi)
	}
}

// repairOutcome reports what a verify-and-repair pass concluded.
type repairOutcome int

const (
	repairClean     repairOutcome = iota // no mismatch
	repairCorrected                      // mismatches found, all repaired
	repairFailed                         // mismatches remain: needs restart
)

// verifyRepairCol verifies the column checksums of rows [rlo, rhi) of the
// given data against chk (strip indices aligned: chk row 0..1 covers data
// rows [rlo, rlo+nb)) and repairs what it can:
//
//  1. every mismatch that localizes to a single element is corrected
//     (0-D errors and 1-D row corruption, which shows as one localizable
//     error per column);
//  2. under Full mode, a column whose mismatches do not localize (1-D
//     column corruption) is rebuilt element-wise from the row checksums
//     when rowRepair is non-nil;
//  3. anything else is repairFailed (2-D propagation → local restart).
//
// The pass re-verifies after repair, charges verify/recovery time, and
// updates the counters.
func (p *protected) verifyRepairCol(workers int, data *matrix.Dense, chk *matrix.Dense, rowRepair func(col int) bool) repairOutcome {
	stop := p.es.span(obs.PhaseVerify, "verify-col", &p.es.res.VerifyT)
	ms := checksum.VerifyCol(workers, data, p.nb, chk, p.tol)
	stop()
	if len(ms) == 0 {
		return repairClean
	}
	p.es.res.Detected = true
	p.es.res.Counter.DetectedErrors += len(ms)
	defer p.es.span(obs.PhaseRecover, "repair-col", &p.es.res.RecoverT)()

	stuckCols := map[int]bool{}
	for _, m := range ms {
		rows := p.nb
		if got := data.Rows - m.Strip*p.nb; got < rows {
			rows = got
		}
		if lr, ok := checksum.LocateCol(m, rows); ok {
			checksum.CorrectCol(data, p.nb, m, lr)
			p.es.res.Counter.CorrectedElements++
		} else {
			stuckCols[m.Col] = true
		}
	}
	for col := range stuckCols {
		if rowRepair == nil || !rowRepair(col) {
			return repairFailed
		}
		p.es.res.Counter.ReconstructedLins++
	}
	// Re-verify: corrections must reconcile; surviving columns (e.g. a
	// multi-element corruption that aliased as a localizable single error)
	// escalate to the column repair before the pass gives up.
	stop = p.es.span(obs.PhaseVerify, "verify-col", &p.es.res.VerifyT)
	ms = checksum.VerifyCol(workers, data, p.nb, chk, p.tol)
	stop()
	if len(ms) != 0 && rowRepair != nil {
		ok := true
		seen := map[int]bool{}
		for _, m := range ms {
			if !seen[m.Col] {
				seen[m.Col] = true
				if !rowRepair(m.Col) {
					ok = false
				}
			}
		}
		if ok {
			stop = p.es.span(obs.PhaseVerify, "verify-col", &p.es.res.VerifyT)
			ms = checksum.VerifyCol(workers, data, p.nb, chk, p.tol)
			stop()
		}
	}
	if len(ms) != 0 {
		return repairFailed
	}
	return repairCorrected
}

// verifyRepairRow is the row-checksum dual of verifyRepairCol: localizable
// mismatches are corrected element-wise; a row whose mismatches do not
// localize is handed to colRepair (reconstruction from column checksums).
func (p *protected) verifyRepairRow(workers int, data *matrix.Dense, chk *matrix.Dense, colRepair func(row int) bool) repairOutcome {
	stop := p.es.span(obs.PhaseVerify, "verify-row", &p.es.res.VerifyT)
	ms := checksum.VerifyRow(workers, data, p.nb, chk, p.tol)
	stop()
	if len(ms) == 0 {
		return repairClean
	}
	p.es.res.Detected = true
	p.es.res.Counter.DetectedErrors += len(ms)
	defer p.es.span(obs.PhaseRecover, "repair-row", &p.es.res.RecoverT)()

	stuckRows := map[int]bool{}
	for _, m := range ms {
		cols := p.nb
		if got := data.Cols - m.Strip*p.nb; got < cols {
			cols = got
		}
		if lc, ok := checksum.LocateRow(m, cols); ok {
			checksum.CorrectRow(data, p.nb, m, lc)
			p.es.res.Counter.CorrectedElements++
		} else {
			stuckRows[m.Row] = true
		}
	}
	for row := range stuckRows {
		if colRepair == nil || !colRepair(row) {
			return repairFailed
		}
		p.es.res.Counter.ReconstructedLins++
	}
	stop = p.es.span(obs.PhaseVerify, "verify-row", &p.es.res.VerifyT)
	ms = checksum.VerifyRow(workers, data, p.nb, chk, p.tol)
	stop()
	if len(ms) != 0 {
		return repairFailed
	}
	return repairCorrected
}

// verifyTrailingCol verifies (and repairs) the column checksums of the
// trailing region rows >= rlo, block columns >= bj0 across every GPU.
// blocks counts the matrix blocks verified for the Table VI counters.
// Under Full mode, 1-D column corruption is repaired from the local row
// checksums, and repaired rows/columns get their orthogonal checksums
// re-encoded.
func (p *protected) verifyTrailingCol(rlo, bj0 int) (worst repairOutcome, blocks int) {
	nb := p.nb
	o := rlo
	G := p.es.sys.NumGPUs()
	worst = repairClean
	for g := 0; g < G; g++ {
		gdev := p.es.sys.GPU(g)
		lbLo := p.trailStart(g, bj0)
		if lbLo >= p.nloc[g] {
			continue
		}
		jlo := lbLo * nb
		cols := p.nloc[g]*nb - jlo
		data := p.local[g].View(o, jlo, p.n-o, cols).Access(gdev)
		chk := p.colChk[g].View(2*(o/nb), jlo, 2*(p.nbr-o/nb), cols).Access(gdev)
		var rowRepair func(col int) bool
		if p.es.opts.Mode == Full {
			gg, jj := g, jlo
			rowRepair = func(col int) bool {
				// Rebuild the whole column from the row checksums, then
				// re-encode its (possibly polluted) column checksums so the
				// ladder's re-verification reconciles.
				return p.repairFullColumn(gg, jj+col)
			}
		}
		out, fixed := p.verifyRepairColReport(gdev.Workers(), data, chk, rowRepair)
		if out > worst {
			worst = out
		}
		blocks += (cols / nb) * (p.nbr - o/nb)
		// Restore orthogonal-checksum consistency after repairs.
		if p.es.opts.Mode == Full && out == repairCorrected {
			p.reconcileOrthogonal(g, o, p.n, lbLo, p.nloc[g])
		}
		_ = fixed
	}
	return worst, blocks
}

// reconcileOrthogonal cross-checks GPU g's region (global rows
// [rlo, rhi), local blocks >= lbLo) against its row checksums after
// column-checksum-based repairs, and resolves the two second-order damage
// patterns a single fault can leave behind:
//
//   - a data column that was "corrected" into agreement with a *polluted*
//     column checksum (corruption transformed by a non-GEMM update aliases
//     as a single-element error): many rows of one column disagree with
//     the (clean) row checksums → rebuild the column from the row
//     checksums and re-encode its column checksums;
//   - a clean data row whose row checksums were polluted by the corrupted
//     operand of a checksum-maintenance kernel: one row disagrees across
//     strips → re-encode that row's row checksums from the (repaired)
//     data.
func (p *protected) reconcileOrthogonal(g, rlo, rhi, lbLo, lbHi int) {
	if p.es.opts.Mode != Full {
		return
	}
	defer p.es.span(obs.PhaseRecover, "reconcile-orthogonal", &p.es.res.RecoverT)()
	gdev := p.es.sys.GPU(g)
	nb := p.nb
	if lbHi > p.nloc[g] {
		lbHi = p.nloc[g]
	}
	jlo := lbLo * nb
	cols := lbHi*nb - jlo
	if cols <= 0 || rhi <= rlo {
		return
	}
	data := p.local[g].View(rlo, jlo, rhi-rlo, cols).Access(gdev)
	rchk := p.rowChk[g].View(rlo, 2*lbLo, rhi-rlo, 2*(lbHi-lbLo)).Access(gdev)
	ms := checksum.VerifyRow(gdev.Workers(), data, nb, rchk, p.tol)
	if len(ms) == 0 {
		return
	}
	rowHits := map[int]int{}
	colHits := map[int][]int{} // local col -> rows
	for _, m := range ms {
		rowHits[m.Row]++
		if lc, ok := checksum.LocateRow(m, nb); ok {
			col := m.Strip*nb + lc
			colHits[col] = append(colHits[col], m.Row)
		}
	}
	repairedCols := map[int]bool{}
	for col, rows := range colHits {
		if len(rows) >= 2 {
			// Aliased column corruption: the row checksums are the clean
			// authority — rebuild the whole column and refresh its column
			// checksums.
			p.repairFullColumn(g, jlo+col)
			repairedCols[col] = true
		}
	}
	for r, hits := range rowHits {
		if hits >= 2 {
			// The same row disagreeing in several strips is a polluted
			// row-checksum line (unless it was part of a column repair).
			covered := false
			for col, rows := range colHits {
				if repairedCols[col] {
					for _, rr := range rows {
						if rr == r {
							covered = true
						}
					}
				}
			}
			if !covered {
				p.reencodeRowChkRow(g, rlo+r, lbLo)
			}
		}
	}
	// Remaining single-hit rows: data agrees with the (just-reconciled)
	// column checksums, so the row checksum entry is the polluted side.
	ms = checksum.VerifyRow(gdev.Workers(), data, nb, rchk, p.tol)
	seen := map[int]bool{}
	for _, m := range ms {
		if !seen[m.Row] {
			seen[m.Row] = true
			p.reencodeRowChkRow(g, rlo+m.Row, lbLo)
		}
	}
}

// reconstructColViaRowChk rebuilds column col of data (a view whose
// columns are grouped in nb-blocks aligned with rchk's 2-column strips)
// from the v₁ row checksums. Rows listed in skipRows (view-relative) are
// left untouched — used when a specific row's row checksum is known to be
// polluted.
func (p *protected) reconstructColViaRowChk(data, rchk *matrix.Dense, col int, skipRows ...int) bool {
	s := col / p.nb
	clo := s * p.nb
	chi := clo + p.nb
	if chi > data.Cols {
		chi = data.Cols
	}
	skip := map[int]bool{}
	for _, r := range skipRows {
		skip[r] = true
	}
	for i := 0; i < data.Rows; i++ {
		if skip[i] {
			continue
		}
		row := data.Row(i)
		sum := 0.0
		for c := clo; c < chi; c++ {
			if c != col {
				sum += row[c]
			}
		}
		row[col] = rchk.At(i, 2*s) - sum
	}
	return true
}

// reencodeRowChkRow recomputes the row-checksum pairs of global row r on
// GPU g for local blocks [lbLo, nloc). This is the certified re-encode
// that restores consistency after the data row has been repaired: the TMU
// row-checksum update consumes the raw (possibly corrupted) panel operand,
// so the contaminated row's row checksums are polluted and must be rebuilt
// from the repaired data.
func (p *protected) reencodeRowChkRow(g, r, lbLo int) {
	if p.es.opts.Mode != Full {
		return
	}
	gdev := p.es.sys.GPU(g)
	data := p.local[g].Access(gdev)
	rchk := p.rowChk[g].Access(gdev)
	nb := p.nb
	for lb := lbLo; lb < p.nloc[g]; lb++ {
		s1, s2 := 0.0, 0.0
		row := data.Row(r)[lb*nb : lb*nb+nb]
		for j, v := range row {
			s1 += v
			s2 += float64(j+1) * v
		}
		rchk.Set(r, 2*lb, s1)
		rchk.Set(r, 2*lb+1, s2)
	}
}

// verifyRowQuick reports whether global row r on GPU g is consistent with
// its row checksums over local blocks [lbLo, nloc). It is the cheap O(cols)
// probe used before row interchanges move data around.
func (p *protected) verifyRowQuick(g, r, lbLo int) bool {
	if p.es.opts.Mode != Full {
		return true
	}
	gdev := p.es.sys.GPU(g)
	data := p.local[g].Access(gdev)
	rchk := p.rowChk[g].Access(gdev)
	nb := p.nb
	for lb := lbLo; lb < p.nloc[g]; lb++ {
		s1 := 0.0
		row := data.Row(r)[lb*nb : lb*nb+nb]
		for _, v := range row {
			s1 += v
		}
		if d := s1 - rchk.At(r, 2*lb); d > p.tol || d < -p.tol || d != d {
			return false
		}
	}
	return true
}

// repairFullColumn rebuilds GPU g's local column (GPU-local index
// localCol) over the full matrix height from its row checksums, then
// re-encodes the column's column checksums from the repaired data. This is
// the uniform stuck-column repair: reconstructing only a verification
// window and then re-encoding the whole column's checksums would make any
// contamination outside the window permanently invisible, so every
// detection point repairs the entire column at once (the row checksums
// are maintained for every row, finalized or trailing).
func (p *protected) repairFullColumn(g, localCol int) bool {
	if p.es.opts.Mode != Full {
		return false
	}
	gdev := p.es.sys.GPU(g)
	nb := p.nb
	lb := localCol / nb
	if lb >= p.nloc[g] {
		return false
	}
	data := p.local[g].View(0, lb*nb, p.n, nb).Access(gdev)
	rchk := p.rowChk[g].View(0, 2*lb, p.n, 2).Access(gdev)
	p.reconstructColViaRowChk(data, rchk, localCol%nb)
	p.reencodeColChkCol(g, localCol)
	p.es.res.Counter.ReconstructedLins++
	return true
}

// reencodeColChkCol recomputes the column-checksum entries of local column
// localCol on GPU g for every strip — the dual of reencodeRowChkRow, used
// after a contaminated column has been rebuilt (the TMU column-checksum
// update consumes the raw row-panel operand).
func (p *protected) reencodeColChkCol(g, localCol int) {
	if p.es.opts.Mode == NoChecksum {
		return
	}
	gdev := p.es.sys.GPU(g)
	data := p.local[g].Access(gdev)
	cchk := p.colChk[g].Access(gdev)
	nb := p.nb
	for s := 0; s < p.nbr; s++ {
		s1, s2 := 0.0, 0.0
		for i := 0; i < nb; i++ {
			v := data.At(s*nb+i, localCol)
			s1 += v
			s2 += float64(i+1) * v
		}
		cchk.Set(2*s, localCol, s1)
		cchk.Set(2*s+1, localCol, s2)
	}
}

// repairContaminatedRow fully repairs global row r on GPU g when its data
// or row checksums may be inconsistent (the lazy on-chip 1-D case of
// §VII.B Fig. 4b, triggered by the pre-swap probe or by grouped panel
// corrections): the row's strip is verified against the column checksums
// (clean in this failure mode), every column corrected by localization,
// and the row's row checksums re-encoded from the repaired data. Returns
// false if the strip cannot be reconciled.
func (p *protected) repairContaminatedRow(g, r, bjLo int) bool {
	defer p.es.span(obs.PhaseRecover, "repair-contaminated-row", &p.es.res.RecoverT)()
	gdev := p.es.sys.GPU(g)
	nb := p.nb
	lbLo := p.trailStart(g, bjLo)
	if lbLo >= p.nloc[g] {
		return true
	}
	jlo := lbLo * nb
	cols := p.nloc[g]*nb - jlo
	s := r / nb
	data := p.local[g].View(s*nb, jlo, nb, cols).Access(gdev)
	chk := p.colChk[g].View(2*s, jlo, 2, cols).Access(gdev)
	// A stuck column here is a 1-D column contamination crossing this
	// strip (e.g. an on-chip row-panel fault consumed by a previous TMU):
	// rebuild the entire column from the row checksums.
	rowRepair := func(col int) bool {
		return p.repairFullColumn(g, jlo+col)
	}
	out, _ := p.verifyRepairColReport(gdev.Workers(), data, chk, rowRepair)
	if out == repairFailed {
		p.es.res.Unrecoverable = true
		return false
	}
	p.reencodeRowChkRow(g, r, lbLo)
	return true
}

// reconstructRowViaColChk rebuilds row r of data from the v₁ column
// checksums (chk strip-aligned with data rows). Columns listed in skipCols
// (view-relative) are left untouched — used when a column's checksum is
// known to be polluted.
func (p *protected) reconstructRowViaColChk(data, chk *matrix.Dense, r int, skipCols ...int) bool {
	s := r / p.nb
	rlo := s * p.nb
	rhi := rlo + p.nb
	if rhi > data.Rows {
		rhi = data.Rows
	}
	skip := map[int]bool{}
	for _, c := range skipCols {
		skip[c] = true
	}
	row := data.Row(r)
	for j := 0; j < data.Cols; j++ {
		if skip[j] {
			continue
		}
		sum := 0.0
		for i := rlo; i < rhi; i++ {
			if i != r {
				sum += data.At(i, j)
			}
		}
		row[j] = chk.At(2*s, j) - sum
	}
	return true
}
