package core

import (
	"testing"

	"ftla/internal/fault"
	"ftla/internal/matrix"
)

func runLU(t *testing.T, n, gpus int, opts Options, inj *fault.Injector) (*matrix.Dense, *matrix.Dense, []int, *Result) {
	t.Helper()
	rng := matrix.NewRNG(uint64(n) + 31)
	a := matrix.RandomDiagDominant(n, rng)
	opts.Injector = inj
	sys := testSystem(gpus)
	out, piv, res, err := LU(sys, a, opts)
	if err != nil {
		t.Fatalf("LU failed: %v", err)
	}
	return a, out, piv, res
}

func TestLUUnprotectedCorrect(t *testing.T) {
	a, out, piv, _ := runLU(t, 64, 1, cholOpts(NoChecksum, NoCheck), nil)
	if r := matrix.LUResidual(a, out, piv); r > 1e-11 {
		t.Fatalf("residual %g", r)
	}
}

func TestLUMatchesReference(t *testing.T) {
	// The protected engine must produce bitwise-identical pivots to the
	// reference blocked LU (the checksum machinery must not perturb the
	// factorization path).
	rng := matrix.NewRNG(5)
	n := 96
	a := matrix.Random(n, n, rng) // general matrix: pivoting matters
	sys := testSystem(2)
	out, piv, _, err := LU(sys, a, cholOpts(Full, NewScheme))
	if err != nil {
		t.Fatal(err)
	}
	if r := matrix.LUResidual(a, out, piv); r > 1e-10 {
		t.Fatalf("residual %g", r)
	}
}

func TestLUCleanAllSchemes(t *testing.T) {
	for _, gpus := range []int{1, 2, 3} {
		for _, tc := range []struct {
			mode   Mode
			scheme Scheme
		}{
			{SingleSide, PriorOp},
			{SingleSide, PostOp},
			{Full, PostOp},
			{Full, NewScheme},
		} {
			a, out, piv, res := runLU(t, 96, gpus, cholOpts(tc.mode, tc.scheme), nil)
			if r := matrix.LUResidual(a, out, piv); r > 1e-11 {
				t.Fatalf("gpus=%d %v/%v residual %g", gpus, tc.mode, tc.scheme, r)
			}
			if res.Detected {
				t.Fatalf("gpus=%d %v/%v false positive (counters=%+v)", gpus, tc.mode, tc.scheme, res.Counter)
			}
		}
	}
}

func TestLUPivotingExercised(t *testing.T) {
	rng := matrix.NewRNG(77)
	n := 64
	a := matrix.Random(n, n, rng)
	sys := testSystem(2)
	_, piv, _, err := LU(sys, a, cholOpts(Full, NewScheme))
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for k, p := range piv {
		if p != k {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("expected at least one actual row interchange on a random matrix")
	}
}

func TestLUComputationFaultTMU(t *testing.T) {
	inj := fault.NewInjector(11)
	inj.Schedule(fault.Spec{Kind: fault.Computation, Op: fault.TMU, Iteration: 1})
	a, out, piv, res := runLU(t, 96, 2, cholOpts(Full, NewScheme), inj)
	if len(inj.Events()) != 1 {
		t.Fatalf("fault did not fire: %v", inj.Events())
	}
	if r := matrix.LUResidual(a, out, piv); r > 1e-11 {
		t.Fatalf("residual %g (counters=%+v events=%v)", r, res.Counter, inj.Events())
	}
	if !res.Detected {
		t.Fatal("TMU computation fault undetected")
	}
}

func TestLUComputationFaultPD(t *testing.T) {
	inj := fault.NewInjector(12)
	inj.Schedule(fault.Spec{Kind: fault.Computation, Op: fault.PD, Iteration: 1})
	a, out, piv, res := runLU(t, 96, 2, cholOpts(Full, NewScheme), inj)
	if r := matrix.LUResidual(a, out, piv); r > 1e-11 {
		t.Fatalf("residual %g (counters=%+v)", r, res.Counter)
	}
	if res.Counter.LocalRestarts == 0 {
		t.Fatal("PD computation fault should trigger local restart")
	}
}

func TestLUComputationFaultPU(t *testing.T) {
	inj := fault.NewInjector(13)
	inj.Schedule(fault.Spec{Kind: fault.Computation, Op: fault.PU, Iteration: 0})
	a, out, piv, res := runLU(t, 96, 2, cholOpts(Full, NewScheme), inj)
	if r := matrix.LUResidual(a, out, piv); r > 1e-11 {
		t.Fatalf("residual %g (counters=%+v events=%v)", r, res.Counter, inj.Events())
	}
	if !res.Detected {
		t.Fatal("PU computation fault undetected")
	}
}

func TestLUMemoryFaultBeforePD(t *testing.T) {
	inj := fault.NewInjector(14)
	inj.Schedule(fault.Spec{Kind: fault.OffChipMemory, Op: fault.PD, Iteration: 2, Part: fault.UpdatePart})
	a, out, piv, res := runLU(t, 96, 2, cholOpts(Full, NewScheme), inj)
	if r := matrix.LUResidual(a, out, piv); r > 1e-11 {
		t.Fatalf("residual %g (counters=%+v)", r, res.Counter)
	}
	if !res.Detected {
		t.Fatal("memory fault before PD undetected")
	}
}

func TestLUMemoryFaultPUUpdatePart(t *testing.T) {
	inj := fault.NewInjector(15)
	inj.Schedule(fault.Spec{Kind: fault.OffChipMemory, Op: fault.PU, Iteration: 0, Part: fault.UpdatePart})
	a, out, piv, res := runLU(t, 96, 2, cholOpts(Full, NewScheme), inj)
	if r := matrix.LUResidual(a, out, piv); r > 1e-11 {
		t.Fatalf("residual %g (counters=%+v events=%v)", r, res.Counter, inj.Events())
	}
	if !res.Detected {
		t.Fatal("PU update-part memory fault undetected")
	}
}

func TestLUSingleSideMissesPUUpdateFault(t *testing.T) {
	// The paper's Table VIII: single-side (column) checksums cannot
	// protect the updated row panel — the fault slips through and the
	// final result is silently wrong.
	inj := fault.NewInjector(16)
	inj.Schedule(fault.Spec{Kind: fault.Computation, Op: fault.PU, Iteration: 0})
	a, out, piv, res := runLU(t, 96, 2, cholOpts(SingleSide, PostOp), inj)
	if len(inj.Events()) != 1 {
		t.Fatal("fault did not fire")
	}
	r := matrix.LUResidual(a, out, piv)
	if r < 1e-9 {
		t.Fatalf("residual %g: single-side checksum unexpectedly tolerated a PU fault", r)
	}
	if res.OutcomeOf(r < 1e-9) != CorruptedResult {
		t.Fatalf("outcome %v, want corrupted (silent N case)", res.OutcomeOf(r < 1e-9))
	}
}

func TestLUCommunicationFaultPanelBroadcast(t *testing.T) {
	inj := fault.NewInjector(17)
	inj.Schedule(fault.Spec{Kind: fault.Communication, Op: fault.PD, Iteration: 1, GPUTarget: 1})
	a, out, piv, res := runLU(t, 96, 2, cholOpts(Full, NewScheme), inj)
	if len(inj.Events()) != 1 {
		t.Fatalf("comm fault did not fire: %v", inj.Events())
	}
	if r := matrix.LUResidual(a, out, piv); r > 1e-11 {
		t.Fatalf("residual %g (counters=%+v)", r, res.Counter)
	}
	if !res.Detected {
		t.Fatal("comm fault undetected")
	}
	if res.Counter.LocalRestarts != 0 {
		t.Fatal("single-leg comm fault must be fixed without local restart (§VII.C)")
	}
}

func TestLUCommFaultEscapesPostOp(t *testing.T) {
	// Post-op checking verifies the panel before broadcast: a PCIe fault
	// after that check propagates into TMU. The trailing check then sees
	// an inconsistency it cannot always repair; the key paper claim is
	// that the *new* scheme is strictly better here, which the test above
	// demonstrates. Here we only require that the fault fires and the
	// post-op run does not crash.
	inj := fault.NewInjector(18)
	inj.Schedule(fault.Spec{Kind: fault.Communication, Op: fault.PD, Iteration: 1, GPUTarget: 1})
	_, _, _, res := runLU(t, 96, 2, cholOpts(Full, PostOp), inj)
	if len(inj.Events()) != 1 {
		t.Fatal("comm fault did not fire")
	}
	_ = res
}

func TestLUOnChipFaultTMURef(t *testing.T) {
	inj := fault.NewInjector(19)
	inj.Schedule(fault.Spec{Kind: fault.OnChipMemory, Op: fault.TMU, Iteration: 0, Part: fault.ReferencePart})
	a, out, piv, res := runLU(t, 96, 2, cholOpts(Full, NewScheme), inj)
	if len(inj.Events()) != 1 {
		t.Fatal("fault did not fire")
	}
	if r := matrix.LUResidual(a, out, piv); r > 1e-11 {
		t.Fatalf("residual %g: on-chip TMU ref fault not recovered (counters=%+v)", r, res.Counter)
	}
}

func TestLUOffChipFaultTMURefHeuristic(t *testing.T) {
	// DRAM corruption of the L21 stage during TMU: the §VII.B heuristic
	// must find it in the post-TMU panel check and rebuild the trailing
	// row without any trailing-matrix verification.
	inj := fault.NewInjector(20)
	inj.Schedule(fault.Spec{Kind: fault.OffChipMemory, Op: fault.TMU, Iteration: 0, Part: fault.ReferencePart, Row: 40, Col: 3})
	a, out, piv, res := runLU(t, 96, 2, cholOpts(Full, NewScheme), inj)
	if len(inj.Events()) != 1 {
		t.Fatal("fault did not fire")
	}
	if r := matrix.LUResidual(a, out, piv); r > 1e-11 {
		t.Fatalf("residual %g (counters=%+v events=%v)", r, res.Counter, inj.Events())
	}
	if res.Counter.ReconstructedLins == 0 {
		t.Fatalf("expected a trailing-row reconstruction (counters=%+v)", res.Counter)
	}
}

func TestLUSwapChecksumConsistency(t *testing.T) {
	// Directly exercise swapRows checksum maintenance: after random swaps
	// the maintained column checksums must equal recomputed ones.
	sys := testSystem(2)
	rng := matrix.NewRNG(3)
	a := matrix.RandomDiagDominant(64, rng)
	opts := cholOpts(Full, NewScheme)
	if err := opts.Validate(64); err != nil {
		t.Fatal(err)
	}
	res := &Result{}
	es := &engineSys{sys: sys, opts: opts, res: res}
	p := newProtected(es, a)
	swaps := [][2]int{{0, 5}, {3, 40}, {17, 17}, {20, 63}, {8, 24}, {15, 16}}
	for _, s := range swaps {
		p.swapRows(s[0], s[1], 0, p.nbr)
	}
	worst, _ := p.verifyTrailingCol(0, 0)
	if worst != repairClean {
		t.Fatalf("maintained checksums diverged after swaps: %v", worst)
	}
	if res.Detected {
		t.Fatal("false positive after swaps")
	}
}

func TestLUOffChipFaultTMUU12Column(t *testing.T) {
	// DRAM corruption of the U12 row panel during TMU (the second TMU
	// reference, RefIndex 1): contaminates a trailing column; the §VII.B
	// heuristic must rebuild it from the row checksums and re-encode the
	// polluted column checksums.
	inj := fault.NewInjector(23)
	inj.Schedule(fault.Spec{Kind: fault.OffChipMemory, Op: fault.TMU, Part: fault.ReferencePart, RefIndex: 1, Iteration: 0, Row: 3, Col: 7})
	a, out, piv, res := runLU(t, 96, 2, cholOpts(Full, NewScheme), inj)
	if len(inj.Events()) != 1 {
		t.Fatalf("fault did not fire: %v", inj.Events())
	}
	if r := matrix.LUResidual(a, out, piv); r > 1e-10 {
		t.Fatalf("residual %g (counters=%+v events=%v)", r, res.Counter, inj.Events())
	}
	if res.Counter.ReconstructedLins == 0 {
		t.Fatalf("expected a trailing-column reconstruction (counters=%+v)", res.Counter)
	}
}

func TestCholTMURefOwnedCross(t *testing.T) {
	// A Cholesky stage corruption whose global row lands in a block column
	// owned by the faulted GPU exercises the full cross repair: row + column
	// reconstruction, the algebraic (r,r) fix, and both checksum re-encodes.
	// Stage rows at iteration 0 map to global rows 16+i; GPU0 owns block
	// columns 0,2,4 (G=2, nb=16), so stage row 16 → global row 32 ∈ block 2.
	inj := fault.NewInjector(29)
	inj.Schedule(fault.Spec{Kind: fault.OffChipMemory, Op: fault.TMU, Part: fault.ReferencePart, Iteration: 0, Row: 16, Col: 4})
	a, out, res := runChol(t, 96, 2, cholOpts(Full, NewScheme), inj)
	if len(inj.Events()) != 1 {
		t.Fatalf("fault did not fire: %v", inj.Events())
	}
	if r := matrix.CholeskyResidual(a, out); r > 1e-10 {
		t.Fatalf("residual %g (counters=%+v events=%v)", r, res.Counter, inj.Events())
	}
	if res.Counter.ReconstructedLins < 2 {
		t.Fatalf("expected row+column reconstruction (counters=%+v)", res.Counter)
	}
}
