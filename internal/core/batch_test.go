package core

import (
	"strings"
	"testing"

	"ftla/internal/batch"
	"ftla/internal/checksum"
	"ftla/internal/fault"
	"ftla/internal/hetsim"
	"ftla/internal/matrix"
)

func batchOpts(lookahead int) Options {
	return Options{
		NB: 16, Mode: Full, Scheme: NewScheme, Kernel: checksum.OptKernel,
		Lookahead: lookahead,
	}
}

// batchInputs builds count distinct well-conditioned inputs for a
// decomposition, each from its own seed so no two items share data.
func batchInputs(decomp string, count, n int) []*matrix.Dense {
	ms := make([]*matrix.Dense, count)
	for i := range ms {
		rng := matrix.NewRNG(uint64(101 + 13*i))
		switch decomp {
		case "cholesky":
			ms[i] = matrix.RandomSPD(n, rng)
		case "lu":
			ms[i] = matrix.RandomDiagDominant(n, rng)
		default:
			ms[i] = matrix.Random(n, n, rng)
		}
	}
	return ms
}

// runSolo factorizes one matrix on a fresh system and returns the factor
// plus the auxiliary output (pivots or tau).
func runSolo(t *testing.T, decomp string, a *matrix.Dense, gpus int, opts Options) (*matrix.Dense, []int, []float64) {
	t.Helper()
	sys := testSystem(gpus)
	switch decomp {
	case "cholesky":
		out, _, err := Cholesky(sys, a.Clone(), opts)
		if err != nil {
			t.Fatalf("solo cholesky: %v", err)
		}
		return out, nil, nil
	case "lu":
		out, piv, _, err := LU(sys, a.Clone(), opts)
		if err != nil {
			t.Fatalf("solo lu: %v", err)
		}
		return out, piv, nil
	default:
		out, tau, _, err := QR(sys, a.Clone(), opts)
		if err != nil {
			t.Fatalf("solo qr: %v", err)
		}
		return out, nil, tau
	}
}

// runBatched factorizes the items as one batch on a fresh system and
// returns per-item factors and auxiliary outputs, failing the test on any
// batch-level or per-item error.
func runBatched(t *testing.T, decomp string, ms []*matrix.Dense, gpus int, opts Options) ([]*matrix.Dense, [][]int, [][]float64) {
	t.Helper()
	b, err := batch.FromMatrices(ms, opts.NB)
	if err != nil {
		t.Fatalf("pack batch: %v", err)
	}
	sys := testSystem(gpus)
	var (
		outs []*matrix.Dense
		pivs [][]int
		taus [][]float64
		errs []error
	)
	switch decomp {
	case "cholesky":
		outs, _, errs, err = CholeskyBatch(sys, b, opts, nil)
	case "lu":
		outs, pivs, _, errs, err = LUBatch(sys, b, opts, nil)
	default:
		outs, taus, _, errs, err = QRBatch(sys, b, opts, nil)
	}
	if err != nil {
		t.Fatalf("batched %s: %v", decomp, err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("batched %s item %d: %v", decomp, i, e)
		}
	}
	return outs, pivs, taus
}

// The batched bit-identity pin: every item of a batched run is bit-for-bit
// the factor the same matrix produces solo, across all three
// decompositions, both schedules, and 1-3 GPUs. This is what makes
// batching purely a throughput decision for the serving layer.
func TestBatchBitIdentity(t *testing.T) {
	const n, count = 64, 3
	for _, decomp := range []string{"cholesky", "lu", "qr"} {
		for _, lookahead := range []int{0, 1} {
			for gpus := 1; gpus <= 3; gpus++ {
				ms := batchInputs(decomp, count, n)
				opts := batchOpts(lookahead)
				outs, pivs, taus := runBatched(t, decomp, ms, gpus, opts)
				for i := 0; i < count; i++ {
					sout, spiv, stau := runSolo(t, decomp, ms[i], gpus, opts)
					label := decomp
					if d, r, c := sout.MaxAbsDiff(outs[i]); d != 0 {
						t.Fatalf("%s gpus=%d lookahead=%d item %d: factor not bit-identical to solo: |Δ|=%g at (%d,%d)",
							label, gpus, lookahead, i, d, r, c)
					}
					for j := range spiv {
						if spiv[j] != pivs[i][j] {
							t.Fatalf("%s gpus=%d lookahead=%d item %d: pivot %d differs: %d vs %d",
								label, gpus, lookahead, i, j, spiv[j], pivs[i][j])
						}
					}
					for j := range stau {
						if stau[j] != taus[i][j] {
							t.Fatalf("%s gpus=%d lookahead=%d item %d: tau %d differs: %g vs %g",
								label, gpus, lookahead, i, j, stau[j], taus[i][j])
						}
					}
				}
			}
		}
	}
}

// A DRAM double-fault in one strip of item 1's first LU panel (the
// detected-but-uncorrectable fixture from the service tests) must corrupt
// only item 1: siblings complete bit-identical to their solo runs, and the
// corrupted item itself still completes — flagged Unrecoverable — rather
// than erroring the dispatch. Per-item fault containment is the core-level
// half of the serving layer's retry-isolation contract.
func TestBatchPerItemFaultContainment(t *testing.T) {
	const n, count = 64, 3
	ms := batchInputs("lu", count, n)
	opts := batchOpts(1)
	opts.Mode = SingleSide

	inj := fault.NewInjector(99)
	for _, row := range []int{1, 2} {
		inj.Schedule(fault.Spec{
			Kind: fault.OffChipMemory, Op: fault.PD, Part: fault.ReferencePart,
			Iteration: 0, Row: row, Col: 0,
		})
	}

	b, err := batch.FromMatrices(ms, opts.NB)
	if err != nil {
		t.Fatal(err)
	}
	sys := testSystem(2)
	outs, pivs, ress, errs, err := LUBatch(sys, b, opts, []*fault.Injector{nil, inj, nil})
	if err != nil {
		t.Fatalf("batch-level error: %v", err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("item %d errored: %v", i, e)
		}
	}
	if !ress[1].Unrecoverable {
		t.Fatal("injected item not flagged unrecoverable — fixture no longer corrupts")
	}
	for _, i := range []int{0, 2} {
		if ress[i].Unrecoverable {
			t.Fatalf("clean sibling %d flagged unrecoverable", i)
		}
		sout, spiv, _ := runSolo(t, "lu", ms[i], 2, opts)
		if d, r, c := sout.MaxAbsDiff(outs[i]); d != 0 {
			t.Fatalf("sibling %d not bit-identical to solo: |Δ|=%g at (%d,%d)", i, d, r, c)
		}
		for j := range spiv {
			if spiv[j] != pivs[i][j] {
				t.Fatalf("sibling %d pivot %d differs", i, j)
			}
		}
	}
}

// An item whose slab bytes were corrupted while queued (between Encode and
// dispatch) is caught by the slab integrity check and excluded with a
// per-item error before the ladder runs; siblings are unaffected.
func TestBatchCorruptQueueInputIsolated(t *testing.T) {
	const n, count = 64, 3
	ms := batchInputs("cholesky", count, n)
	opts := batchOpts(0)
	b, err := batch.FromMatrices(ms, opts.NB)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one element of item 1 inside the slab, after the strips were
	// encoded — simulated host-memory corruption in the serving queue.
	b.Item(1).Set(5, 7, b.Item(1).At(5, 7)+1)

	sys := testSystem(1)
	outs, _, errs, err := CholeskyBatch(sys, b, opts, nil)
	if err != nil {
		t.Fatalf("batch-level error: %v", err)
	}
	if errs[1] == nil || !strings.Contains(errs[1].Error(), "corrupted") {
		t.Fatalf("corrupt item error = %v, want slab-corruption error", errs[1])
	}
	if outs[1] != nil {
		t.Fatal("corrupt item produced a factor")
	}
	for _, i := range []int{0, 2} {
		if errs[i] != nil {
			t.Fatalf("clean sibling %d errored: %v", i, errs[i])
		}
		sout, _, _ := runSolo(t, "cholesky", ms[i], 1, opts)
		if d, r, c := sout.MaxAbsDiff(outs[i]); d != 0 {
			t.Fatalf("sibling %d not bit-identical to solo: |Δ|=%g at (%d,%d)", i, d, r, c)
		}
	}
}

// Batched runs reject the per-run control-flow options (checkpointing,
// resume, fail-stop, Options.Injector) and malformed injector slices.
func TestBatchOptionValidation(t *testing.T) {
	const n = 32
	ms := batchInputs("cholesky", 2, n)
	opts := batchOpts(0)
	b, err := batch.FromMatrices(ms, opts.NB)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(o *Options) []*fault.Injector
	}{
		{"options-injector", func(o *Options) []*fault.Injector { o.Injector = fault.NewInjector(1); return nil }},
		{"checkpoint", func(o *Options) []*fault.Injector { o.CheckpointEvery = 1; return nil }},
		{"failstop", func(o *Options) []*fault.Injector {
			o.FailStop = map[int]hetsim.FaultPlan{0: {}}
			return nil
		}},
		{"short-injs", func(o *Options) []*fault.Injector { return make([]*fault.Injector, 1) }},
	}
	for _, tc := range cases {
		o := opts
		injs := tc.mut(&o)
		sys := testSystem(1)
		if _, _, _, err := CholeskyBatch(sys, b, o, injs); err == nil {
			t.Fatalf("%s: batched run accepted unsupported options", tc.name)
		}
	}
}
