// Package core implements the paper's contribution: algorithm-based fault
// tolerant (ABFT) blocked one-sided matrix decompositions — Cholesky, LU
// with partial pivoting, and Householder QR — on the simulated
// heterogeneous CPU+multi-GPU system of internal/hetsim, with
//
//   - full (two-dimensional) per-block checksum maintenance on the trailing
//     matrix and single-side checksums on decomposed panels (§IV),
//   - three checking schemes: the prior-operation and post-operation
//     schemes of earlier work and the paper's new prioritized scheme
//     (Algorithm 2) with heuristic TMU checking and post-broadcast panel
//     verification that protects PCIe communication (§VII),
//   - online error detection, localization, correction, 1-D row/column
//     reconstruction, and local in-memory restart recovery,
//   - verification counters reproducing Table VI and outcome
//     classification reproducing Table VIII.
package core

import (
	"fmt"
	"time"

	"ftla/internal/checksum"
	"ftla/internal/fault"
	"ftla/internal/hetsim"
)

// Mode selects the checksum coverage.
type Mode int

// Checksum coverage modes.
const (
	// NoChecksum disables ABFT entirely — the unprotected baseline.
	NoChecksum Mode = iota
	// SingleSide maintains checksums in one dimension only (column
	// checksums), as in prior work [11][12][31][32].
	SingleSide
	// Full maintains checksums in both dimensions on the trailing matrix
	// and one dimension on decomposed panels (§IV).
	Full
)

func (m Mode) String() string {
	switch m {
	case NoChecksum:
		return "none"
	case SingleSide:
		return "single-side"
	default:
		return "full"
	}
}

// Scheme selects when checksum verification happens.
type Scheme int

// Checking schemes.
const (
	// NoCheck performs no verification (valid only with NoChecksum).
	NoCheck Scheme = iota
	// PriorOp verifies every operation's inputs (reference and update
	// parts, including the trailing matrix before TMU) before the
	// operation runs [11][12].
	PriorOp
	// PostOp verifies every operation's outputs after it runs, including
	// the trailing matrix after every TMU [13][31][32].
	PostOp
	// NewScheme is the paper's Algorithm 2: checks prioritized by
	// operation sensitivity (PD and PU checked on both sides), panel
	// verification postponed until after the PCIe broadcast so
	// communication errors are caught, and all trailing-matrix checks
	// replaced by the heuristic panel checks of §VII.B.
	NewScheme
)

func (s Scheme) String() string {
	switch s {
	case NoCheck:
		return "none"
	case PriorOp:
		return "prior-op"
	case PostOp:
		return "post-op"
	default:
		return "new"
	}
}

// Options configures a protected factorization.
type Options struct {
	// NB is the block size; the matrix order must be a multiple of NB
	// (the paper likewise rounds matrix sizes to MAGMA's block size).
	NB int
	// Mode and Scheme select the protection; see the type docs.
	Mode   Mode
	Scheme Scheme
	// Kernel selects the checksum-encoding kernel (§VIII): the GEMM-based
	// baseline or the optimized dedicated kernel.
	Kernel checksum.Kernel
	// Injector, when non-nil, injects the scheduled faults at the §X.A
	// timing points.
	Injector *fault.Injector
	// PeriodicTrailingCheck, when > 0, additionally verifies the whole
	// trailing matrix every k-th iteration under NewScheme — the paper's
	// mitigation for accumulating undetected on-chip 1-D propagations
	// (§VII.B). 0 disables it.
	PeriodicTrailingCheck int
	// FailStop arms fail-stop/performance fault plans on the simulated
	// devices at the start of the run, keyed by device index (-1 = CPU,
	// else GPU id). A firing plan aborts the factorization with a typed
	// hetsim.DeviceLostError / DeviceHungError instead of a result —
	// ABFT checksums cannot repair a device that is gone; the serving
	// layer's failover answers this class (see internal/service).
	FailStop map[int]hetsim.FaultPlan
	// LinkFault arms communication fault plans on the simulated PCIe
	// links at the start of the run, keyed by GPU index (link i is the
	// CPU<->GPUi path). Transient corruption and flaps are absorbed by
	// the reliable-transfer protocol's retransmissions; a link whose
	// faults exhaust the budget aborts the run with a typed
	// hetsim.LinkError, which the serving layer classifies like a device
	// loss (quarantine + degraded failover).
	LinkFault map[int]hetsim.LinkFaultPlan
	// NodeFault arms whole-node loss plans on the topology's nodes at the
	// start of the run, keyed by node index. Plans due at the same ladder-
	// step epoch boundary fire together as one simultaneous burst, taking
	// down every GPU of each node at once. On a multi-node run the erasure-
	// coded redundancy columns rebuild the lost block columns from the
	// survivors and the run continues degraded, bit-identical to an
	// uninterrupted run; when some parity group has lost more columns than
	// its surviving parities can solve for (flat system, or losses beyond
	// Redundancy) the run aborts with a typed hetsim.NodeLostError for the
	// serving layer's failover ladder.
	NodeFault map[int]hetsim.NodeFaultPlan
	// Redundancy is the number r of erasure-coded parity columns each
	// cross-node parity group carries on a multi-node topology: the cluster
	// absorbs up to r node losses — sequential or simultaneous — with
	// bit-exact reconstruction. 0 (the zero value) means the default of 1;
	// values are clamped into [1, Nodes-1] at layout time (each group needs
	// at least one data column). Validate rejects negatives; the ftla and
	// service layers reject r >= Nodes before a run starts. Ignored on flat
	// single-node systems, which carry no parity at all.
	Redundancy int
	// Lookahead selects the step-runtime schedule: 0 (or negative) runs the
	// legacy fully serial ladder; 1 enables MAGMA-style look-ahead — the
	// CPU pulls and factorizes panel k+1 while the GPUs run step k's
	// trailing update on asynchronous streams, and each GPU's trailing
	// update runs concurrently with the others'. Results are bit-identical
	// in both schedules. When a fault Injector is attached the runtime
	// falls back to the serial schedule so every injection window fires in
	// exactly the stage it targets (see DESIGN.md §8).
	Lookahead int
	// CheckpointEvery, when > 0, snapshots the factorization state into a
	// host-side Checkpoint after every CheckpointEvery-th ladder step whose
	// verification passed — the snapshot is known-clean, so a later
	// rollback restores verified state. 0 (the zero value) disables
	// checkpointing entirely; behavior is then identical to a run without
	// this option, and OnCheckpoint must be nil (Validate rejects the
	// combination — a callback that can never fire is a configuration
	// bug, not a no-op). Negative values are rejected. The final step is
	// never checkpointed (there is nothing left to resume).
	CheckpointEvery int
	// OnCheckpoint, when non-nil, receives each checkpoint as it is taken,
	// on the coordinating goroutine. It requires CheckpointEvery > 0:
	// Validate rejects OnCheckpoint without a checkpoint interval. The
	// serving layer uses this to keep the latest checkpoint across a
	// fail-stop abort; callers must treat the Checkpoint as immutable (the
	// runtime may restore from it later in the same run). nil (the zero
	// value) simply means no observer — checkpoints are still taken and
	// used for mid-run rollback.
	OnCheckpoint func(*Checkpoint)
	// Resume, when non-nil, starts the run from the checkpoint instead of
	// from the input matrix: the state is restored onto the *current*
	// device set (which may hold fewer GPUs than the run that took the
	// snapshot) and the ladder replays from Checkpoint.NextStep. The input
	// matrix must still be the original A — it anchors the final residual
	// check. A resumed run is bit-identical to an uninterrupted run on the
	// same final device set. nil (the zero value) starts from the input
	// matrix. Resume composes freely with CheckpointEvery (a resumed run
	// may take fresh checkpoints) but requires a checkpoint whose
	// N/NB/Mode/Scheme match this configuration — the mismatch is rejected
	// at run start, not here, because the order n is a run argument.
	Resume *Checkpoint
	// Rebalance configures dynamic repartitioning of trailing block
	// columns across GPUs; see the Rebalance type. The zero value disables
	// it (static block-column-cyclic layout for the whole run).
	Rebalance Rebalance

	// stageJournal, when non-nil, receives the runtime's canonical stage
	// journal for the run (test hook; see runtime.go).
	stageJournal *[]stageRec
	// onRebalance, when non-nil, observes each applied rebalance: the
	// ladder step it ran after and the global block columns that moved
	// (test hook; see rebalance.go).
	onRebalance func(step int, moved []int)
}

// Rebalance configures dynamic work repartitioning: the step runtime
// measures each GPU's trailing-update time, EWMA-smooths a per-column
// throughput estimate, and every Every steps re-apportions the remaining
// trailing block columns proportionally to the estimated speeds, migrating
// ownership of reassigned columns over simulated PCIe with their checksum
// strips riding along (see DESIGN.md §10). Results are bit-identical to
// the static layout: migration copies exact bits and every kernel's
// per-column arithmetic is owner-independent.
type Rebalance struct {
	// Every is the rebalance interval in ladder steps; 0 (the zero value)
	// disables rebalancing entirely and negative values are rejected by
	// Validate. Rebalancing also stays off — regardless of Every — while a
	// fault Injector is attached (injection windows address regions by the
	// static layout) and on single-GPU systems (nothing to re-split).
	Every int
	// MinShare is the floor fraction of the remaining trailing columns
	// every GPU keeps (rounded to whole columns, at least one while any
	// remain), so a slow device keeps producing throughput samples and can
	// earn width back when it recovers. 0 (the zero value) means no floor
	// beyond that single column. Must be in [0, 1); Validate rejects the
	// rest.
	MinShare float64
	// Suspect lists GPU indices believed slow before the run starts — the
	// serving layer sets it when re-admitting a quarantined straggler on
	// probation — and makes the runtime apply an initial rebalance before
	// step one: suspects start at the MinShare floor instead of a full
	// cyclic share, then earn width back through the normal estimator.
	// Empty (the zero value) starts from the plain cyclic layout.
	Suspect []int
}

// Validate normalizes and sanity-checks the options for order n.
func (o *Options) Validate(n int) error {
	if o.NB <= 0 {
		o.NB = 64
	}
	if n <= 0 || n%o.NB != 0 {
		return fmt.Errorf("core: matrix order %d must be a positive multiple of NB=%d", n, o.NB)
	}
	if o.Mode == NoChecksum && o.Scheme != NoCheck {
		return fmt.Errorf("core: scheme %v requires checksums", o.Scheme)
	}
	if o.Mode != NoChecksum && o.Scheme == NoCheck {
		return fmt.Errorf("core: mode %v requires a checking scheme", o.Mode)
	}
	if o.CheckpointEvery < 0 {
		return fmt.Errorf("core: CheckpointEvery %d must not be negative (0 disables checkpointing)", o.CheckpointEvery)
	}
	if o.OnCheckpoint != nil && o.CheckpointEvery <= 0 {
		return fmt.Errorf("core: OnCheckpoint requires CheckpointEvery > 0 (the callback would never fire)")
	}
	if o.Rebalance.Every < 0 {
		return fmt.Errorf("core: Rebalance.Every %d must not be negative (0 disables rebalancing)", o.Rebalance.Every)
	}
	if o.Rebalance.MinShare < 0 || o.Rebalance.MinShare >= 1 {
		return fmt.Errorf("core: Rebalance.MinShare %v outside [0, 1)", o.Rebalance.MinShare)
	}
	for _, g := range o.Rebalance.Suspect {
		if g < 0 {
			return fmt.Errorf("core: Rebalance.Suspect holds negative GPU index %d", g)
		}
	}
	if o.Redundancy < 0 {
		return fmt.Errorf("core: Redundancy %d must not be negative (0 means the default of 1)", o.Redundancy)
	}
	return nil
}

// ValidateTopology checks the option fields whose legality depends on the
// platform the run targets (Validate cannot — it only sees the matrix
// order). Redundancy must leave every cross-node parity group at least one
// data column, so on a multi-node topology r must stay below the node
// count. Flat single-box systems carry no parity and accept any value.
func (o *Options) ValidateTopology(sys *hetsim.System) error {
	if nodes := sys.Nodes(); nodes > 1 && o.Redundancy >= nodes {
		return fmt.Errorf("core: Redundancy %d must stay below the node count %d (each parity group needs at least one data column)",
			o.Redundancy, nodes)
	}
	return nil
}

// Counter tallies verification and recovery work, reproducing the
// quantities of Table VI (blocks verified per phase) plus recovery events.
type Counter struct {
	// Blocks verified, by phase.
	PDBefore  int
	PDAfter   int // post-broadcast under NewScheme
	PUBefore  int
	PUAfter   int
	TMUBefore int
	TMUAfter  int // heuristic panel checks under NewScheme
	// SwapChecks is the block-equivalent cost of the pre-interchange row
	// probes that keep the lazy on-chip detection of §VII.B sound under
	// LU partial pivoting (see DESIGN.md §4).
	SwapChecks int

	// Recovery events.
	CorrectedElements int // single elements fixed from a checksum
	ReconstructedLins int // whole rows/columns rebuilt from the orthogonal checksum
	LocalRestarts     int // PD/PU/TMU redone from a snapshot
	Rebroadcasts      int // panel broadcasts repeated after PCIe corruption
	DetectedErrors    int // verification mismatches observed
}

// TotalChecked returns the total number of block verifications
// (block-equivalents for row probes).
func (c *Counter) TotalChecked() int {
	return c.PDBefore + c.PDAfter + c.PUBefore + c.PUAfter + c.TMUBefore + c.TMUAfter + c.SwapChecks
}

// Outcome classifies how a protected run ended, the four-way outcome of
// the paper's coverage analysis (§X.B).
type Outcome int

// Run outcomes.
const (
	// FaultFree: no error was detected and the result verifies.
	FaultFree Outcome = iota
	// ABFTFixed: errors were detected and repaired online from checksums.
	ABFTFixed
	// LocalRestarted: errors were detected and repaired, but at least one
	// local in-memory restart was needed.
	LocalRestarted
	// DetectedCorrupt: an error was detected but could not be repaired
	// online; a complete restart is required, but the user is at least
	// warned (the detected half of the paper's "Complete Restart" bucket).
	DetectedCorrupt
	// CorruptedResult: the run finished but the result is wrong and the
	// fault escaped detection entirely — the paper's 'N' outcome.
	CorruptedResult
)

func (o Outcome) String() string {
	switch o {
	case FaultFree:
		return "fault-free"
	case ABFTFixed:
		return "abft-fixed"
	case LocalRestarted:
		return "local-restart"
	case DetectedCorrupt:
		return "detected-corrupt"
	default:
		return "corrupted"
	}
}

// Result reports a protected factorization run.
type Result struct {
	N        int
	NB       int
	GPUs     int
	Mode     Mode
	Scheme   Scheme
	Kernel   checksum.Kernel
	Wall     time.Duration
	EncodeT  time.Duration // time spent encoding checksums
	VerifyT  time.Duration // time spent verifying checksums
	RecoverT time.Duration // time spent in recovery actions
	Counter  Counter
	// Detected is true when any verification mismatch fired.
	Detected bool
	// Unrecoverable is true when a detected error could not be repaired
	// online (the ABFT equivalent of "needs a complete restart").
	Unrecoverable bool
	// SimMakespan is the simulated-clock makespan from hetsim.
	SimMakespan float64
	// PCIeBytes is the total PCIe traffic.
	PCIeBytes int64
	// Flops counts the floating-point operations executed by the run
	// (data kernels plus all checksum encode/verify work) — a
	// deterministic work metric for overhead comparisons that wall-clock
	// noise cannot perturb.
	Flops uint64
	// Checkpoints counts the host-side snapshots taken by this run
	// (Options.CheckpointEvery > 0).
	Checkpoints int
	// Rollbacks counts mid-run rollbacks to the last checkpoint: detected
	// but uncorrectable corruption that was replayed from verified state
	// instead of surrendering to a complete restart.
	Rollbacks int
	// Rebalances counts applied repartitionings (rounds that actually
	// moved at least one column; Options.Rebalance.Every > 0).
	Rebalances int
	// MovedColumns counts block columns that migrated between GPUs across
	// all rebalances of the run.
	MovedColumns int
	// NodesLost counts whole-node losses that fired during the run
	// (absorbed by reconstruction or not).
	NodesLost int
	// Reconstructions counts block columns rebuilt from erasure-coded
	// parity after a node loss.
	Reconstructions int
	// InternodeBytes is the traffic that crossed the inter-node
	// interconnect (a subset of PCIeBytes' total), 0 on flat systems.
	InternodeBytes int64
}

// OutcomeOf derives the run outcome given whether the final residual check
// passed.
func (r *Result) OutcomeOf(residualOK bool) Outcome {
	switch {
	case !residualOK && (r.Detected || r.Unrecoverable):
		return DetectedCorrupt
	case !residualOK:
		return CorruptedResult
	case r.Counter.LocalRestarts > 0:
		return LocalRestarted
	case r.Detected:
		return ABFTFixed
	default:
		return FaultFree
	}
}

// engineSys bundles the pieces every decomposition driver needs.
type engineSys struct {
	decomp     string // decomposition name: cholesky, lu, qr
	sys        *hetsim.System
	opts       Options
	res        *Result
	inj        *fault.Injector
	startFlops uint64
}
