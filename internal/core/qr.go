package core

import (
	"fmt"
	"math"
	"time"

	"ftla/internal/checksum"
	"ftla/internal/fault"
	"ftla/internal/hetsim"
	"ftla/internal/lapack"
	"ftla/internal/matrix"
	"ftla/internal/obs"
)

// QR computes the protected blocked Householder QR factorization of a on
// the simulated heterogeneous system. It returns the gathered packed
// factors (R in the upper triangle, Householder vectors below) along with
// the reflector coefficients tau and the run report.
//
// Per-iteration dataflow (MAGMA hybrid right-looking QR, §IV.B),
// expressed as ladder stages for the step runtime (see runtime.go):
//
//	GPU_owner → CPU   column panel transfer (+ column checksums)
//	CPU               PD: checksum-maintaining Householder panel
//	                  factorization (Algorithm 1)        (panelFactor)
//	CPU               CTF: T = LARFT(V), validated by an orthogonality
//	                  probe; recomputed from V on failure (panelFactor)
//	CPU → all GPUs    panel + c(V) + T broadcast          (panelCommit)
//	all GPUs          TMU: A₂ = (I − V·Tᵀ·Vᵀ)·A₂ with full checksums
//	                  maintained from c(V) (Table III, red terms)
func QR(sys *hetsim.System, a *matrix.Dense, opts Options) (qret *matrix.Dense, tret []float64, rret *Result, err error) {
	if a.Rows != a.Cols {
		return nil, nil, nil, fmt.Errorf("core: QR requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if err := opts.Validate(a.Rows); err != nil {
		return nil, nil, nil, err
	}
	if err := opts.ValidateTopology(sys); err != nil {
		return nil, nil, nil, err
	}
	// Fail-stop abort plumbing; see Cholesky.
	defer func() {
		if e := hetsim.RecoverAbort(recover()); e != nil {
			qret, tret, rret, err = nil, nil, nil, e
		}
	}()
	n := a.Rows
	res := &Result{
		N: n, NB: opts.NB, GPUs: sys.NumGPUs(),
		Mode: opts.Mode, Scheme: opts.Scheme, Kernel: opts.Kernel,
	}
	es := newEngine("qr", sys, opts, res)
	start := time.Now()
	var p *protected
	if cp := opts.Resume; cp != nil {
		if err := cp.validateFor("qr", n, &opts); err != nil {
			return nil, nil, nil, err
		}
		p = allocProtectedFor(es, cp)
	} else {
		p = newProtected(es, a)
	}
	l := &qrLadder{
		p: p, es: es, pl: planFor(opts.Scheme),
		step: make([]*qrStep, p.nbr),
		tau:  make([]float64, n),
	}
	if err := runLadder(es, l); err != nil {
		return nil, nil, nil, err
	}
	out := p.gather()
	es.finishResult(start)
	return out, l.tau, res, nil
}

// qrStep is the staging state a QR ladder step carries between stages: the
// factored CPU panel, its T factor and reflector checksums from
// panelFactor until panelCommit broadcasts them, and the per-GPU stage
// copies until tmuFinish retires them.
type qrStep struct {
	cpuPanel, cpuChk *hetsim.Buffer
	pm, cm           *matrix.Dense
	cpuT, cpuCV      *hetsim.Buffer
	stages           []stagePair
	cvStage, tStage  []*hetsim.Buffer
}

// qrLadder is the QR instantiation of the step-runtime ladder.
type qrLadder struct {
	p    *protected
	es   *engineSys
	pl   plan
	step []*qrStep
	tau  []float64
	err  error
}

func (l *qrLadder) steps() int         { return l.p.nbr }
func (l *qrLadder) failed() error      { return l.err }
func (l *qrLadder) layout() *protected { return l.p }
func (l *qrLadder) panelPivot(int)     {}
func (l *qrLadder) panelUpdate(int)    {}

// checkpoint snapshots the distributed state after step next-1 plus the
// Householder scalars of the finished steps. Entries beyond next·NB are
// zeroed so the snapshot is identical across schedules (look-ahead has
// already factored panel next, which a resumed run replays).
func (l *qrLadder) checkpoint(next int) *Checkpoint {
	cp := l.p.captureCheckpoint(next)
	cp.Tau = make([]float64, len(l.tau))
	copy(cp.Tau[:next*l.p.nb], l.tau[:next*l.p.nb])
	return cp
}

// resume restores the distributed state and reflector history from cp onto
// the current device set and drops any staged per-step state, ready to
// replay from cp.NextStep.
func (l *qrLadder) resume(cp *Checkpoint) {
	l.p.restoreFrom(cp)
	copy(l.tau, cp.Tau)
	l.step = make([]*qrStep, l.p.nbr)
}

// panelFactor verifies the panel on its owner GPU, pulls it to the CPU,
// factors it with the checksum-maintaining Householder kernel of
// Algorithm 1 under local-restart protection, builds and validates the T
// factor (CTF), and encodes c(V). Everything stays staged host-side;
// panelCommit owns the writeback and broadcast.
func (l *qrLadder) panelFactor(k int) {
	p, es := l.p, l.es
	sys, cpu := es.sys, es.sys.CPU()
	res, pl := es.res, l.pl
	nb := p.nb
	n := p.n
	o := k * nb
	gk := p.owner(k)
	m := n - o
	strips := p.nbr - k
	chk := es.opts.Mode != NoChecksum
	st := &qrStep{}
	l.step[k] = st

	panelDev := p.local[gk].View(o, p.localOff(k), m, nb)
	gpuPDRegs := []fault.Region{
		{Part: fault.ReferencePart, M: panelDev.UnsafeData(), Row0: o, Col0: o},
		{Part: fault.UpdatePart, M: panelDev.UnsafeData(), Row0: o, Col0: o},
	}
	es.injectMem(k, fault.PD, gpuPDRegs)
	if pl.beforePD && chk {
		// The panel is verified on its owner GPU *before* it ships to
		// the CPU: QR's block-reflector TMU can leave aliased column
		// corruption that only the orthogonal-checksum reconciliation
		// untangles, and the row checksums live on the GPU.
		gdev := sys.GPU(gk)
		gdata := panelDev.Access(gdev)
		gchk := p.colChkView(k, k, p.nbr).Access(gdev)
		var rowRepair func(col int) bool
		if es.opts.Mode == Full {
			loff := p.localOff(k)
			rowRepair = func(col int) bool {
				return p.repairFullColumn(gk, loff+col)
			}
		}
		if out := p.verifyRepairCol(gdev.Workers(), gdata, gchk, rowRepair); out == repairFailed {
			res.Unrecoverable = true
		}
		if es.opts.Mode == Full {
			lb := p.localBlock(k)
			p.reconcileOrthogonal(gk, o, n, lb, lb+1)
		}
		res.Counter.PDBefore += strips
	}
	st.cpuPanel = cpu.Alloc(m, nb)
	es.transfer(panelDev, st.cpuPanel)
	st.pm = st.cpuPanel.Access(cpu)
	if chk {
		st.cpuChk = cpu.Alloc(2*strips, nb)
		es.transfer(p.colChkView(k, k, p.nbr), st.cpuChk)
		st.cm = st.cpuChk.Access(cpu)
	}
	pdRegs := []fault.Region{
		{Part: fault.ReferencePart, M: st.pm, Row0: o, Col0: o},
		{Part: fault.UpdatePart, M: st.pm, Row0: o, Col0: o},
	}
	snapshot := st.pm.Clone()
	var snapChk *matrix.Dense
	if chk {
		snapChk = st.cm.Clone()
	}
	es.injectOnChip(k, fault.PD, pdRegs)
	ltau := l.tau[o : o+nb]
	if err := p.qrPD(es, k, st.pm, st.cm, snapshot, snapChk, ltau, pl, pdRegs); err != nil {
		l.err = err
		return
	}
	if chk {
		// Certified re-encode of the stored V\R panel.
		p.encodeColInto(cpu.Workers(), st.pm, st.cm)
	}

	// ------------- CTF: T = LARFT(V) on the CPU ---------------------
	var tmat *matrix.Dense
	es.kernel(cpu, "larft", float64(m*nb*nb), func(int) {
		tmat = lapack.Larft(st.pm, ltau)
	})
	tRegs := []fault.Region{{Part: fault.UpdatePart, M: tmat, Row0: o, Col0: o}}
	es.injectComp(k, fault.CTF, tRegs)
	if chk && !p.qrOrthoProbe(st.pm, tmat) {
		// Corrupted T: detected by the orthogonality probe, recovered
		// by recomputing T from V (§IV.B).
		res.Detected = true
		res.Counter.DetectedErrors++
		stop := es.span(obs.PhaseRecover, "recompute-t", &res.RecoverT)
		es.kernel(cpu, "larft", float64(m*nb*nb), func(int) {
			tmat = lapack.Larft(st.pm, ltau)
		})
		stop()
		if !p.qrOrthoProbe(st.pm, tmat) {
			res.Unrecoverable = true
		}
	}
	st.cpuT = cpu.AllocFrom(tmat)

	// c(V): column checksums of the materialized reflectors, the
	// operand that maintains the trailing column checksums (Table III).
	if chk {
		vmat := lapack.MaterializeV(st.pm)
		cv := matrix.NewDense(checksum.ColDims(m, nb, nb))
		p.encodeColInto(cpu.Workers(), vmat, cv)
		st.cpuCV = cpu.AllocFrom(cv)
	}
}

// panelCommit writes the certified panel back into the owner's
// authoritative storage and broadcasts panel + c(V) + T to every GPU's
// stage, with the §VII.C post-broadcast verification, restart paths, and
// per-GPU T orthogonality probes.
func (l *qrLadder) panelCommit(k int) {
	p, es := l.p, l.es
	sys := es.sys
	res, pl := es.res, l.pl
	nb := p.nb
	o := k * nb
	gk := p.owner(k)
	G := sys.NumGPUs()
	m := p.n - o
	strips := p.nbr - k
	chk := es.opts.Mode != NoChecksum
	st := l.step[k]
	ltau := l.tau[o : o+nb]

	panelDev := p.local[gk].View(o, p.localOff(k), m, nb)
	chkRows := 2 * strips
	if !chk {
		chkRows = 2
	}
	st.stages = p.allocStages(m, chkRows, nb)
	st.cvStage = make([]*hetsim.Buffer, G)
	st.tStage = make([]*hetsim.Buffer, G)
	doBroadcast := func() {
		es.withCommContext(k, fault.PD, o, o, func() {
			es.transfer(st.cpuPanel, panelDev)
			if chk {
				es.transfer(st.cpuChk, p.colChkView(k, k, p.nbr))
			}
			for g := 0; g < G; g++ {
				if !p.gpuLive(g) {
					continue
				}
				if st.cvStage[g] == nil {
					st.cvStage[g] = sys.GPU(g).Alloc(chkRows, nb)
					st.tStage[g] = sys.GPU(g).Alloc(nb, nb)
				}
				if g == gk {
					copyWithin(sys.GPU(gk), panelDev, st.stages[g].data)
					if chk {
						copyWithin(sys.GPU(gk), p.colChkView(k, k, p.nbr), st.stages[g].chk)
					}
				} else {
					es.transfer(st.cpuPanel, st.stages[g].data)
					if chk {
						es.transfer(st.cpuChk, st.stages[g].chk)
					}
				}
				if chk {
					es.transfer(st.cpuCV, st.cvStage[g])
				}
				es.transfer(st.cpuT, st.tStage[g])
			}
		})
	}
	doBroadcast()
	if pl.afterPDBcast && chk {
		outs, corrupted := p.verifyStages(st.stages, &res.Counter.PDAfter, strips)
		if live := p.liveGPUs(); corrupted == live && live > 1 {
			res.Counter.LocalRestarts++
			doBroadcast()
		} else if corrupted > 0 {
			p.rebroadcastFailed(st.cpuPanel, st.cpuChk, st.stages, outs)
			// The owner's authoritative copy may have taken the hit on
			// the writeback leg; repair it from the certified source.
			gd := panelDev.Access(sys.GPU(gk))
			gc := p.colChkView(k, k, p.nbr).Access(sys.GPU(gk))
			if p.verifyRepairCol(sys.GPU(gk).Workers(), gd, gc, nil) == repairFailed {
				es.transfer(st.cpuPanel, panelDev)
				es.transfer(st.cpuChk, p.colChkView(k, k, p.nbr))
				res.Counter.Rebroadcasts++
			}
		}
		// Validate T on every GPU with the probe; recompute locally
		// from the (verified) stage V on failure.
		for g := 0; g < G; g++ {
			if st.stages[g].data == nil {
				continue
			}
			gdev := sys.GPU(g)
			sd := st.stages[g].data.Access(gdev)
			td := st.tStage[g].Access(gdev)
			if !p.qrOrthoProbe(sd, td) {
				res.Detected = true
				res.Counter.DetectedErrors++
				stop := es.span(obs.PhaseRecover, "recompute-t", &res.RecoverT)
				es.kernel(gdev, "larft", float64(m*nb*nb), func(int) {
					td.CopyFrom(lapack.Larft(sd, ltau))
				})
				stop()
			}
		}
	}
}

// tmuBegin opens the trailing update: injection windows and the scheme's
// pre-TMU verification.
func (l *qrLadder) tmuBegin(k int) {
	p, es := l.p, l.es
	res, pl := es.res, l.pl
	o := k * p.nb
	chk := es.opts.Mode != NoChecksum
	st := l.step[k]

	tmuRegs := p.qrTMURegions(k, st.stages)
	es.injectMem(k, fault.TMU, tmuRegs)
	if pl.beforeTMUPanels && chk {
		_, _ = p.verifyStages(st.stages, &res.Counter.TMUBefore, p.nbr-k)
	}
	if pl.beforeTMUTrailing && chk {
		worst, blocks := p.verifyTrailingCol(o, k+1)
		res.Counter.TMUBefore += blocks
		if worst == repairFailed {
			res.Unrecoverable = true
		}
	}
	es.injectOnChip(k, fault.TMU, tmuRegs)
}

// tmuGPU applies GPU g's slice of the block-reflector trailing update
// (kernels only; the look-ahead schedule may run the tmuRest slice inside
// a stream).
func (l *qrLadder) tmuGPU(k, g int, sel tmuSel) {
	st := l.step[k]
	l.p.qrTMUOnGPU(g, k, st.stages[g], st.cvStage[g], st.tStage[g], sel)
}

// tmuFinish closes the trailing update: computation-fault injection,
// post-TMU verification, the §VII.B heuristic with its Woodbury rollback
// path, and the periodic trailing check, then retires the step's staging
// state.
func (l *qrLadder) tmuFinish(k int) {
	p, es := l.p, l.es
	res, pl := es.res, l.pl
	o := k * p.nb
	chk := es.opts.Mode != NoChecksum
	st := l.step[k]

	tmuRegs := p.qrTMURegions(k, st.stages)
	es.injectComp(k, fault.TMU, tmuRegs)
	if pl.afterTMUTrailing && chk {
		worst, blocks := p.verifyTrailingCol(o, k+1)
		res.Counter.TMUAfter += blocks
		if worst == repairFailed {
			res.Unrecoverable = true
		}
	}
	if pl.afterTMUHeuristic && chk {
		p.qrHeuristicAfterTMU(k, st.stages, st.cvStage, st.tStage)
	}
	if es.opts.PeriodicTrailingCheck > 0 && (k+1)%es.opts.PeriodicTrailingCheck == 0 && chk {
		worst, blocks := p.verifyTrailingCol(o, k+1)
		res.Counter.TMUAfter += blocks
		if worst == repairFailed {
			res.Unrecoverable = true
		}
	}
	l.step[k] = nil
}

// qrPD runs the checksum-maintaining Householder panel factorization of
// Algorithm 1 on the CPU, with a one-shot local restart on verification
// failure. The panel's per-strip column checksums cm are maintained
// through every reflector:
//
//	c_s ← c_s − τ·(w_sᵀ·v_s)·(vᵀ·P)     for the updated columns, and
//	c_s[j] recomputed from the stored column j (which holds β and the
//	reflector tail rather than H·P's mathematical zeros).
//
// Post-PD verification recomputes the stored panel's checksums against the
// maintained ones, catching computation faults whose effect diverges from
// the checksum path.
func (p *protected) qrPD(es *engineSys, k int, pm, cm, snapshot, snapChk *matrix.Dense, ltau []float64, pl plan, regs []fault.Region) error {
	cpu := es.sys.CPU()
	nb := p.nb
	m := pm.Rows
	for attempt := 0; ; attempt++ {
		es.kernel(cpu, "geqr2-chk", 2*float64(m*nb*nb), func(int) {
			p.qrPanelChecked(pm, cm, ltau)
		})
		es.injectComp(k, fault.PD, regs)
		ok := true
		if pl.afterPDCPU && es.opts.Mode != NoChecksum {
			stop := es.span(obs.PhaseVerify, "verify-col", &es.res.VerifyT)
			ms := checksum.VerifyCol(cpu.Workers(), pm, nb, cm, p.tol*float64(nb))
			stop()
			es.res.Counter.PDAfter += m / nb
			if len(ms) != 0 {
				ok = false
				es.res.Detected = true
				es.res.Counter.DetectedErrors += len(ms)
			}
		}
		if ok {
			return nil
		}
		if attempt >= 1 {
			es.res.Unrecoverable = true
			return nil
		}
		pm.CopyFrom(snapshot)
		if snapChk != nil {
			cm.CopyFrom(snapChk)
		}
		es.res.Counter.LocalRestarts++
	}
}

// qrPanelChecked is Geqr2 with Algorithm 1's checksum maintenance woven
// between reflector generation and application. Numerics of the factor
// itself are identical to lapack.Geqr2 (same HouseGen/HouseApply kernels).
func (p *protected) qrPanelChecked(pm, cm *matrix.Dense, ltau []float64) {
	m, nb := pm.Rows, pm.Cols
	maintain := cm != nil && p.es.opts.Mode != NoChecksum
	strips := checksum.Strips(m, p.nb)
	v := make([]float64, m)
	w := make([]float64, nb)
	th1 := make([]float64, strips)
	th2 := make([]float64, strips)
	for j := 0; j < nb; j++ {
		ltau[j] = lapack.HouseGen(pm, j, v)
		if maintain {
			// Per-strip weighted sums of the reflector (θ in Algorithm 1's
			// lines 6–8; here per block strip rather than per panel).
			for s := 0; s < strips; s++ {
				th1[s], th2[s] = 0, 0
			}
			for i := j; i < m; i++ {
				s := i / p.nb
				lw := float64(i%p.nb + 1)
				th1[s] += v[i-j]
				th2[s] += lw * v[i-j]
			}
		}
		if ltau[j] != 0 && j+1 < nb {
			lapack.HouseApply(pm, j, v[:m-j], ltau[j], w[:nb-j-1])
			if maintain {
				// c_s[cols j+1..] −= τ·θ_s·u, u = vᵀP from HouseApply.
				for s := 0; s < strips; s++ {
					c1 := cm.Row(2 * s)
					c2 := cm.Row(2*s + 1)
					t1 := ltau[j] * th1[s]
					t2 := ltau[j] * th2[s]
					for c := j + 1; c < nb; c++ {
						u := w[c-j-1]
						c1[c] -= t1 * u
						c2[c] -= t2 * u
					}
				}
			}
		}
		if maintain {
			// Column j's stored content changed shape (β + reflector
			// tail); refresh its checksum entries directly.
			for s := 0; s < strips; s++ {
				lo := s * p.nb
				hi := lo + p.nb
				if hi > m {
					hi = m
				}
				s1, s2 := 0.0, 0.0
				for i := lo; i < hi; i++ {
					val := pm.At(i, j)
					s1 += val
					s2 += float64(i-lo+1) * val
				}
				cm.Set(2*s, j, s1)
				cm.Set(2*s+1, j, s2)
			}
		}
	}
}

// qrOrthoProbe checks T against V by verifying that the block reflector
// preserves the norm of a probe vector: y = (I − V·Tᵀ·Vᵀ)·x must satisfy
// ‖y‖ = ‖x‖ for orthogonal Q. A corrupted T (or V/T mismatch) breaks norm
// preservation generically at O(m·nb) cost — the cheap CTF validation of
// §IV.B.
func (p *protected) qrOrthoProbe(panel, tmat *matrix.Dense) bool {
	defer p.es.span(obs.PhaseVerify, "qr-ortho-probe", &p.es.res.VerifyT)()
	m, nb := panel.Rows, tmat.Rows
	x := make([]float64, m)
	for i := range x {
		x[i] = 1 + float64(i%7)/7
	}
	// w = Vᵀx
	w := make([]float64, nb)
	for i := 0; i < m; i++ {
		xi := x[i]
		for j := 0; j < nb && j <= i; j++ {
			if i == j {
				w[j] += xi
			} else {
				w[j] += panel.At(i, j) * xi
			}
		}
	}
	// w2 = Tᵀw
	w2 := make([]float64, nb)
	for j := 0; j < nb; j++ {
		s := 0.0
		for i := 0; i <= j; i++ {
			s += tmat.At(i, j) * w[i]
		}
		w2[j] = s
	}
	// y = x − V·w2
	ny2 := 0.0
	for i := 0; i < m; i++ {
		yi := x[i]
		for j := 0; j < nb && j <= i; j++ {
			if i == j {
				yi -= w2[j]
			} else {
				yi -= panel.At(i, j) * w2[j]
			}
		}
		ny2 += yi * yi
	}
	nx := matrix.VecNorm2(x)
	return math.Abs(math.Sqrt(ny2)-nx) <= 1e-8*nx
}

// qrTMURegions exposes TMU fault targets: ref = the reflector part of
// GPU0's stage (rows below the R11 block), update = GPU0's trailing
// region.
func (p *protected) qrTMURegions(k int, stages []stagePair) []fault.Region {
	nb := p.nb
	o := k * nb
	var regs []fault.Region
	if st := stages[0].data; st != nil {
		regs = append(regs, fault.Region{Part: fault.ReferencePart, M: st.UnsafeData().View(nb, 0, st.Rows()-nb, nb), Row0: o + nb, Col0: o})
	}
	lb0 := p.trailStart(0, k+1)
	if lb0 < p.nloc[0] {
		cols := p.nloc[0]*nb - lb0*nb
		regs = append(regs, fault.Region{
			Part: fault.UpdatePart,
			M:    p.local[0].View(o, lb0*nb, p.n-o, cols).UnsafeData(),
			Row0: o, Col0: p.globalBlock(0, lb0) * nb,
		})
	}
	return regs
}

// qrTMUOnGPU applies the block reflector to the slice of GPU g's trailing
// columns sel selects (rows o..n — the top nb rows become R12) and
// maintains both checksum dimensions:
//
//	C      ← C − V·Tᵀ·Vᵀ·C
//	colChk ← colChk − c(V)·W₂          (W₂ = Tᵀ·Vᵀ·C)
//	rowChk ← rowChk − V·Tᵀ·Vᵀ·rowChk   (row checksums ride as columns)
//
// Every kernel is column-sliced over the trailing columns (and their
// row-checksum pairs), so restricting the slice leaves each computed
// element bit-identical to the full-width call.
func (p *protected) qrTMUOnGPU(g, k int, st stagePair, cv, tm *hetsim.Buffer, sel tmuSel) {
	gdev := p.es.sys.GPU(g)
	nb := p.nb
	o := k * nb
	lbLo, lbHi := p.tmuRange(g, k, sel)
	if lbLo >= lbHi {
		return
	}
	jlo := lbLo * nb
	cols := (lbHi - lbLo) * nb
	m := p.n - o
	c := p.local[g].View(o, jlo, m, cols)
	// Materialize V on-device.
	vbuf := gdev.Alloc(m, nb)
	p.es.kernel(gdev, "materialize-v", 0, func(int) {
		vbuf.Access(gdev).CopyFrom(lapack.MaterializeV(st.data.Access(gdev)))
	})
	w := gdev.Alloc(nb, cols)
	w2 := gdev.Alloc(nb, cols)
	gdev.Gemm(true, false, 1, vbuf, c, 0, w)
	gdev.Gemm(true, false, 1, tm, w, 0, w2)
	gdev.Gemm(false, false, -1, vbuf, w2, 1, c)
	if p.es.opts.Mode != NoChecksum {
		cc := p.colChk[g].View(2*k, jlo, 2*(p.nbr-k), cols)
		gdev.Gemm(false, false, -1, cv, w2, 1, cc)
	}
	if p.es.opts.Mode == Full {
		rc := p.rowChk[g].View(o, 2*lbLo, m, 2*(lbHi-lbLo))
		wr := gdev.Alloc(nb, 2*(lbHi-lbLo))
		wr2 := gdev.Alloc(nb, 2*(lbHi-lbLo))
		gdev.Gemm(true, false, 1, vbuf, rc, 0, wr)
		gdev.Gemm(true, false, 1, tm, wr, 0, wr2)
		gdev.Gemm(false, false, -1, vbuf, wr2, 1, rc)
	}
}

// qrHeuristicAfterTMU re-verifies each GPU's stage panel after TMU. A
// corrupted reflector element contaminates the trailing update 2-D
// (through the T-factor mixing), so unlike the GEMM-shaped TMUs the repair
// is a local in-memory restart: the applied (corrupted but known) linear
// map M̃ = I − Ṽ·Tᵀ·Ṽᵀ is inverted via the Woodbury identity to roll the
// trailing columns (and the row-checksum slab) back, the column checksums
// are rolled back with the recomputed W̃₂, and the TMU is redone with the
// repaired reflectors.
func (p *protected) qrHeuristicAfterTMU(k int, stages []stagePair, cvStage, tStage []*hetsim.Buffer) {
	G := p.es.sys.NumGPUs()
	nb := p.nb
	o := k * nb
	// Retirement check: the top strip of the just-updated region is the
	// final R12 — it is never referenced again, so this is its last chance
	// to be verified (the QR analogue of the post-PU panel check).
	for g := 0; g < G; g++ {
		gdev := p.es.sys.GPU(g)
		lb0 := p.trailStart(g, k+1)
		if lb0 >= p.nloc[g] {
			continue
		}
		cols := p.nloc[g]*nb - lb0*nb
		data := p.local[g].View(o, lb0*nb, nb, cols).Access(gdev)
		chkv := p.colChk[g].View(2*k, lb0*nb, 2, cols).Access(gdev)
		var rowRepair func(col int) bool
		if p.es.opts.Mode == Full {
			gg, jj := g, lb0*nb
			rowRepair = func(col int) bool {
				return p.repairFullColumn(gg, jj+col)
			}
		}
		if out := p.verifyRepairCol(gdev.Workers(), data, chkv, rowRepair); out == repairFailed {
			p.es.res.Unrecoverable = true
		}
		// Reconcile against the row checksums: QR's transforming TMU can
		// leave corruption that agrees with polluted column checksums;
		// the finalized R12 strip gets its last consistency pass here.
		p.reconcileOrthogonal(g, o, o+nb, lb0, p.nloc[g])
		p.es.res.Counter.TMUAfter += cols / nb
	}
	for g := 0; g < G; g++ {
		if stages[g].data == nil {
			continue
		}
		gdev := p.es.sys.GPU(g)
		sd := stages[g].data.Access(gdev)
		corruptCopy := sd.Clone()
		out, fixed := p.verifyRepairColReport(gdev.Workers(), sd, stages[g].chk.Access(gdev), nil)
		p.es.res.Counter.TMUAfter += p.nbr - k
		if out == repairClean {
			continue
		}
		if out == repairFailed {
			p.es.res.Unrecoverable = true
			continue
		}
		relevant := false
		for _, fe := range fixed {
			if fe.Row >= p.nb || fe.Col < fe.Row {
				// Below the R11 block, or within the strict lower triangle
				// of the top block: part of V, referenced by TMU.
				relevant = true
			}
		}
		if !relevant {
			continue
		}
		p.qrRollbackRedo(g, k, corruptCopy, stages[g], cvStage[g], tStage[g])
	}
}

// qrRollbackRedo implements the Woodbury local restart for GPU g's TMU.
func (p *protected) qrRollbackRedo(g, k int, corrupt *matrix.Dense, st stagePair, cv, tm *hetsim.Buffer) {
	defer p.es.span(obs.PhaseRecover, "qr-rollback-redo", &p.es.res.RecoverT)()
	gdev := p.es.sys.GPU(g)
	nb := p.nb
	o := k * nb
	lb0 := p.trailStart(g, k+1)
	if lb0 >= p.nloc[g] {
		return
	}
	cols := p.nloc[g]*nb - lb0*nb
	m := p.n - o
	c := p.local[g].View(o, lb0*nb, m, cols).Access(gdev)
	tmat := tm.Access(gdev)
	vCorrupt := lapack.MaterializeV(corrupt)

	// X = (T⁻ᵀ − ṼᵀṼ)⁻¹ via dense solves.
	kinv := matrix.NewDense(nb, nb) // T⁻ᵀ = solve Tᵀ·K = I
	kinv.Eye()
	for col := 0; col < nb; col++ {
		x := kinv.Col(col)
		// Forward solve with lower-triangular Tᵀ.
		for i := 0; i < nb; i++ {
			s := x[i]
			for j := 0; j < i; j++ {
				s -= tmat.At(j, i) * x[j]
			}
			x[i] = s / tmat.At(i, i)
		}
		kinv.SetCol(col, x)
	}
	vtv := matrix.NewDense(nb, nb)
	mulInto(vtv, vCorrupt, vCorrupt, true, false, 1, 0)
	kinv.Sub(vtv) // S = T⁻ᵀ − ṼᵀṼ
	spiv := make([]int, nb)
	if err := lapack.Getf2(kinv, spiv); err != nil {
		p.es.res.Unrecoverable = true
		return
	}
	solveS := func(b *matrix.Dense) {
		lapack.Laswp(b, spiv)
		// L·y = b, then U·x = y, using the packed factors in kinv.
		for col := 0; col < b.Cols; col++ {
			for i := 0; i < nb; i++ {
				s := b.At(i, col)
				for j := 0; j < i; j++ {
					s -= kinv.At(i, j) * b.At(j, col)
				}
				b.Set(i, col, s)
			}
			for i := nb - 1; i >= 0; i-- {
				s := b.At(i, col)
				for j := i + 1; j < nb; j++ {
					s -= kinv.At(i, j) * b.At(j, col)
				}
				b.Set(i, col, s/kinv.At(i, i))
			}
		}
	}
	rollback := func(mdat *matrix.Dense) {
		// m_prev = m_new + Ṽ·S⁻¹·Ṽᵀ·m_new
		vt := matrix.NewDense(nb, mdat.Cols)
		mulInto(vt, vCorrupt, mdat, true, false, 1, 0)
		solveS(vt)
		mulInto(mdat, vCorrupt, vt, false, false, 1, 1)
	}
	rollback(c)
	if p.es.opts.Mode != NoChecksum {
		// colChk_prev = colChk_new + c(V)·W̃₂, W̃₂ = Tᵀ·Ṽᵀ·C_prev.
		wt := matrix.NewDense(nb, cols)
		mulInto(wt, vCorrupt, c, true, false, 1, 0)
		w2t := matrix.NewDense(nb, cols)
		mulInto(w2t, tmat, wt, true, false, 1, 0)
		cc := p.colChk[g].View(2*k, lb0*nb, 2*(p.nbr-k), cols).Access(gdev)
		mulInto(cc, cv.Access(gdev), w2t, false, false, 1, 1)
	}
	if p.es.opts.Mode == Full {
		rc := p.rowChk[g].View(o, 2*lb0, m, 2*(p.nloc[g]-lb0)).Access(gdev)
		rollback(rc)
	}
	p.es.res.Counter.LocalRestarts++
	// Redo the TMU with the repaired stage.
	p.qrTMUOnGPU(g, k, st, cv, tm, tmuAll)
}

// mulInto is a small helper: dst = alpha·op(a)·op(b) + beta·dst using the
// sequential GEMM (recovery-path code, not the hot path).
func mulInto(dst, a, b *matrix.Dense, transA, transB bool, alpha, beta float64) {
	blasGemm(transA, transB, alpha, a, b, beta, dst)
}
