package core

import (
	"math"
	"sort"

	"ftla/internal/obs"
)

// Dynamic work repartitioning (DESIGN.md §10).
//
// The static 1-D block-column-cyclic layout fixes each GPU's share of the
// trailing matrix for the whole factorization, so a device that slows down
// mid-run (the hetsim straggler fault, or genuinely heterogeneous device
// speeds) inflates every trailing-update stage to its pace. The rebalancer
// closes the loop the Heterogeneous-Solvers exemplar closes with its
// per-iteration gpuProportion recompute: measure each GPU's trailing-update
// time, EWMA-smooth a per-column cost estimate, and every
// Options.Rebalance.Every steps re-apportion the remaining trailing block
// columns proportionally to estimated speed, migrating ownership of
// reassigned columns over simulated PCIe with their checksum strips riding
// along (protected.migrateColumn).
//
// The decision pipeline is deterministic and schedule-invariant: samples
// come from hetsim.Device.SimTime, which accumulates kernel time only
// (transfers charge the PCIe link, not the device), so the serial and
// look-ahead schedules — which run the identical TMU kernel set between the
// two sampling points — feed the estimator identical inputs and reach
// identical decisions. Results are bit-identical to the static layout
// because migration copies exact bits and every kernel's per-column
// arithmetic is owner-independent.

// On multi-node topologies rebalancing coexists with the cross-node
// erasure code (coded.go) through a parity-aware migration protocol. The
// code's placement invariant — within a group, members and parities live on
// pairwise distinct nodes — must survive every move, or a single node loss
// could remove more columns of one group than its parities can solve for.
// Moves are therefore filtered (filterLegal) against a simulation of the
// round: an intra-node move is always legal (node residues unchanged); a
// cross-node move toward a node holding one of the group's live parities is
// legal and re-homes that parity to the donor GPU (re-encoded inside the
// migration's coalesced-transfer window, so the swap costs one extra
// group-encode); a cross-node move toward a node holding another member of
// the group — or one that would leave two of the group's columns behind on
// the donor's node — is dropped. Bit-exactness survives because migration
// copies exact bits and the re-homed parity is re-encoded from unchanged
// member bits by the same deterministic kernels the refresh stage runs.

// Rebalance instruments in the obs default registry.
var (
	rebalancesTotal = obs.Default().Counter(obs.MetricRebalances,
		"Applied work repartitionings (rebalance rounds that moved at least one column).")
	rebalanceMoved = obs.Default().Counter(obs.MetricRebalanceMoved,
		"Block columns migrated between GPUs by the rebalancer, checksum strips riding along.")
	rebalanceParityReencodes = obs.Default().Counter(obs.MetricRebalanceParityReencodes,
		"Parity columns re-homed and re-encoded by the parity-aware migration protocol (a member moved onto a node holding its group's parity).")
	deviceShare = obs.Default().FloatGaugeVec(obs.MetricDeviceShare,
		"Per-GPU share of the remaining trailing block columns at the latest rebalance decision.",
		"device")
)

// rebalancer is the optional ladder capability the step runtime probes for:
// a ladder that exposes its protected layout can have its trailing columns
// repartitioned. The batched drivers don't implement it (their slabs
// interleave many small problems), so rebalancing is silently inert there.
type rebalancer interface {
	layout() *protected
}

// rebEWMA is the smoothing factor of the per-column cost estimator: the
// newest sample and the history weigh equally, so a 4× straggler dominates
// the estimate within ~two samples while one noisy step cannot.
const rebEWMA = 0.5

// rebDeadband is the estimate spread (max/min seconds-per-column) below
// which the devices count as uniform and the apportionment snaps to equal
// weights. Per-column costs differ slightly across GPUs even on identical
// devices (Cholesky's trailing columns shrink with depth, so each GPU
// averages over different heights); without the deadband that noise would
// shuffle columns every round. A skewed *layout* is still corrected under
// the deadband — equal weights re-apportion toward balance — only the
// weights are snapped, not the decision.
const rebDeadband = 1.25

// rebMove reassigns block column bj to GPU dst. When the move lands on a
// node holding one of the group's parity columns, parT/parJ identify that
// parity and parDst the GPU (the donor's) it is re-homed to; parT = -1
// means no parity action.
type rebMove struct {
	bj     int
	dst    int
	parT   int
	parJ   int
	parDst int
}

// rebState is the runtime's rebalancer: the EWMA per-column cost estimate
// per GPU and the busy-time bracket of the in-flight sample.
type rebState struct {
	es    *engineSys
	p     *protected
	est   []float64 // EWMA seconds per trailing column; 0 = no sample yet
	busy0 []float64 // device busy seconds at the last beginSample
}

func newRebState(es *engineSys, p *protected) *rebState {
	G := es.sys.NumGPUs()
	return &rebState{es: es, p: p, est: make([]float64, G), busy0: make([]float64, G)}
}

// beginSample brackets the start of step k's trailing update: record every
// GPU's accumulated kernel time. Nil-safe (rebalancing off).
func (rb *rebState) beginSample() {
	if rb == nil {
		return
	}
	for g := range rb.busy0 {
		rb.busy0[g] = rb.es.sys.GPU(g).SimTime()
	}
}

// endSample closes the bracket after step k's trailing update (post-join
// under look-ahead) and folds each GPU's seconds-per-column into its EWMA
// estimate. Nil-safe.
func (rb *rebState) endSample(k int) {
	if rb == nil {
		return
	}
	p := rb.p
	for g := range rb.est {
		cols := p.nloc[g] - p.trailStart(g, k+1)
		if cols <= 0 {
			continue
		}
		delta := rb.es.sys.GPU(g).SimTime() - rb.busy0[g]
		if delta <= 0 {
			continue
		}
		sample := delta / float64(cols)
		if rb.est[g] == 0 {
			rb.est[g] = sample
		} else {
			rb.est[g] = (1-rebEWMA)*rb.est[g] + rebEWMA*sample
		}
	}
}

// minCols resolves the MinShare floor in whole columns for T remaining
// trailing columns over liveG serving GPUs: at least one (a starved GPU
// must keep producing samples to earn width back), at most an equal share.
func (rb *rebState) minCols(T, liveG int) int {
	m := int(math.Round(rb.es.opts.Rebalance.MinShare * float64(T)))
	if m < 1 {
		m = 1
	}
	if m > T/liveG {
		m = T / liveG
	}
	if m < 0 {
		m = 0
	}
	return m
}

// liveIdx returns the indices of the GPUs still serving. GPUs taken down by
// a node loss hold no columns and must receive none, so every apportionment
// runs over this subset.
func (rb *rebState) liveIdx() []int {
	var live []int
	for g := 0; g < len(rb.est); g++ {
		if rb.p.gpuLive(g) {
			live = append(live, g)
		}
	}
	return live
}

// plan decides the rebalance after step k: apportion the T = nbr-(k+2)
// remaining trailing columns (column k+1 is the next panel and stays put)
// proportionally to estimated speed, and emit the moves that take the
// current layout there. Returns nil when there is nothing to move.
func (rb *rebState) plan(k int) []rebMove {
	if rb == nil {
		return nil
	}
	p := rb.p
	G := len(rb.est)
	bjLo := k + 2
	T := p.nbr - bjLo
	if T <= 0 {
		return nil
	}
	live := rb.liveIdx()
	if len(live) < 2 {
		return nil
	}
	cur := make([]int, G)
	for g := 0; g < G; g++ {
		cur[g] = p.nloc[g] - p.trailStart(g, bjLo)
	}
	lcur := make([]int, len(live))
	for i, g := range live {
		lcur[i] = cur[g]
	}
	ltgt := apportion(T, rb.weightsOf(live), lcur, rb.minCols(T, len(live)))
	tgt := make([]int, G)
	for i, g := range live {
		tgt[g] = ltgt[i]
	}
	for g := 0; g < G; g++ {
		deviceShare.With(rb.es.sys.GPU(g).Name()).Set(float64(tgt[g]) / float64(T))
	}
	return rb.filterLegal(rb.movesFor(tgt, cur))
}

// planSuspects builds the initial re-entry rebalance: before the first
// step, GPUs listed in Options.Rebalance.Suspect are cut to the MinShare
// floor and the rest of the trailing columns split evenly among the others.
// Suspects earn width back through the normal estimator — their floor share
// keeps the samples coming. Returns nil when no valid suspects are listed.
func (rb *rebState) planSuspects(start int) []rebMove {
	if rb == nil || len(rb.es.opts.Rebalance.Suspect) == 0 {
		return nil
	}
	p := rb.p
	G := len(rb.est)
	bjLo := start + 1
	T := p.nbr - bjLo
	if T <= 0 {
		return nil
	}
	live := rb.liveIdx()
	sus := make([]bool, G)
	nSus := 0
	for _, g := range rb.es.opts.Rebalance.Suspect {
		if g >= 0 && g < G && !sus[g] && p.gpuLive(g) {
			sus[g] = true
			nSus++
		}
	}
	if nSus == 0 || nSus >= len(live) {
		return nil // nobody healthy to shed load onto
	}
	cur := make([]int, G)
	for g := 0; g < G; g++ {
		cur[g] = p.nloc[g] - p.trailStart(g, bjLo)
	}
	minC := rb.minCols(T, len(live))
	rest := T - nSus*minC
	// Split rest evenly over the healthy live GPUs (equal weights,
	// preferring current owners so the health majority moves as little as
	// possible).
	hw := make([]float64, 0, len(live)-nSus)
	hcur := make([]int, 0, len(live)-nSus)
	for _, g := range live {
		if !sus[g] {
			hw = append(hw, 1)
			hcur = append(hcur, cur[g])
		}
	}
	htgt := apportion(rest, hw, hcur, 0)
	tgt := make([]int, G)
	hi := 0
	for _, g := range live {
		if sus[g] {
			tgt[g] = minC
		} else {
			tgt[g] = htgt[hi]
			hi++
		}
	}
	for g := 0; g < G; g++ {
		deviceShare.With(rb.es.sys.GPU(g).Name()).Set(float64(tgt[g]) / float64(T))
	}
	return rb.filterLegal(rb.movesFor(tgt, cur))
}

// weightsOf converts the cost estimates of the live subset to apportionment
// weights: speed = 1/cost. GPUs without a sample yet, or a spread inside
// the deadband, collapse to equal weights.
func (rb *rebState) weightsOf(live []int) []float64 {
	w := make([]float64, len(live))
	mn, mx := math.Inf(1), 0.0
	for i, g := range live {
		e := rb.est[g]
		if e <= 0 {
			for i := range w {
				w[i] = 1
			}
			return w
		}
		w[i] = 1 / e
		mn = math.Min(mn, e)
		mx = math.Max(mx, e)
	}
	if mx/mn < rebDeadband {
		for i := range w {
			w[i] = 1
		}
	}
	return w
}

// filterLegal drops moves that would break the erasure code's placement
// invariant and annotates the survivors with the parity re-homes they
// require, simulating the round move by move so earlier accepted moves are
// visible to later legality checks. On flat systems every move is legal.
func (rb *rebState) filterLegal(moves []rebMove) []rebMove {
	cs := rb.p.coded
	for i := range moves {
		moves[i].parT = -1
	}
	if cs == nil {
		return moves
	}
	sys := rb.es.sys
	// Simulated placement as of the moves accepted so far: member owners
	// and parity hosts.
	simOwn := append([]int(nil), rb.p.own...)
	simPg := make([][]int, len(cs.groups))
	for t := range cs.groups {
		simPg[t] = append([]int(nil), cs.groups[t].pgs...)
	}
	out := moves[:0]
	for _, m := range moves {
		src := simOwn[m.bj]
		srcNode, dstNode := sys.NodeOf(src), sys.NodeOf(m.dst)
		if srcNode == dstNode {
			// Intra-node moves never change the group's node residues.
			simOwn[m.bj] = m.dst
			out = append(out, m)
			continue
		}
		t := cs.groupOf(m.bj)
		g := &cs.groups[t]
		blocked := false
		parJ := -1
		for bj2 := g.first; bj2 <= g.last; bj2++ {
			if bj2 != m.bj && sys.NodeOf(simOwn[bj2]) == dstNode {
				blocked = true // another member already on the target node
			}
		}
		for j, buf := range g.bufs {
			if buf != nil && sys.NodeOf(simPg[t][j]) == dstNode {
				parJ = j
			}
		}
		if !blocked && parJ >= 0 {
			// The target node holds one of the group's parities: legal only
			// when the donor's node ends the move holding no other column of
			// the group, so the parity can re-home there without sharing a
			// node with a member or another parity.
			for bj2 := g.first; bj2 <= g.last; bj2++ {
				if bj2 != m.bj && sys.NodeOf(simOwn[bj2]) == srcNode {
					blocked = true
				}
			}
			for j, buf := range g.bufs {
				if j != parJ && buf != nil && sys.NodeOf(simPg[t][j]) == srcNode {
					blocked = true
				}
			}
			if !blocked {
				m.parT, m.parJ, m.parDst = t, parJ, src
				simPg[t][parJ] = src
			}
		}
		if blocked {
			continue
		}
		simOwn[m.bj] = m.dst
		out = append(out, m)
	}
	return out
}

// apportion distributes T whole columns over the GPUs proportionally to
// weights by largest remainder, breaking ties toward the current owner
// (larger cur first, then lower index) so a balanced layout under equal
// weights maps to itself, then raises everyone to the minC floor by taking
// from the largest targets. Deterministic throughout.
func apportion(T int, weights []float64, cur []int, minC int) []int {
	G := len(weights)
	tgt := make([]int, G)
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	if T <= 0 || sum <= 0 {
		return tgt
	}
	type frac struct {
		g   int
		rem float64
	}
	fracs := make([]frac, G)
	used := 0
	for g, w := range weights {
		exact := float64(T) * w / sum
		tgt[g] = int(math.Floor(exact))
		fracs[g] = frac{g, exact - float64(tgt[g])}
		used += tgt[g]
	}
	sort.SliceStable(fracs, func(i, j int) bool {
		if fracs[i].rem != fracs[j].rem {
			return fracs[i].rem > fracs[j].rem
		}
		if cur[fracs[i].g] != cur[fracs[j].g] {
			return cur[fracs[i].g] > cur[fracs[j].g]
		}
		return fracs[i].g < fracs[j].g
	})
	for i := 0; used < T; i++ {
		tgt[fracs[i%G].g]++
		used++
	}
	for raised := true; raised; {
		raised = false
		for g := 0; g < G; g++ {
			if tgt[g] >= minC {
				continue
			}
			donor := -1
			for h := 0; h < G; h++ {
				if tgt[h] > minC && (donor < 0 || tgt[h] > tgt[donor]) {
					donor = h
				}
			}
			if donor < 0 {
				return tgt
			}
			tgt[donor]--
			tgt[g]++
			raised = true
		}
	}
	return tgt
}

// movesFor turns a target apportionment into concrete moves: each donor
// releases its highest-indexed trailing columns (the cheapest and
// latest-needed), and receivers in ascending GPU order drain the pool from
// the highest column down. Deterministic.
func (rb *rebState) movesFor(tgt, cur []int) []rebMove {
	p := rb.p
	var pool []int
	for g := range tgt {
		for i := 0; i < cur[g]-tgt[g]; i++ {
			pool = append(pool, p.blocks[g][p.nloc[g]-1-i])
		}
	}
	if len(pool) == 0 {
		return nil
	}
	sort.Sort(sort.Reverse(sort.IntSlice(pool)))
	var moves []rebMove
	pi := 0
	for g := range tgt {
		for i := 0; i < tgt[g]-cur[g]; i++ {
			moves = append(moves, rebMove{bj: pool[pi], dst: g})
			pi++
		}
	}
	return moves
}

// apply executes a planned round of moves inside one coalesced-transfer
// window (each PCIe link pays its latency once per round, as a real
// batched cudaMemcpy would), updates the run counters and process
// metrics, and notifies the test hook.
func (rb *rebState) apply(k int, moves []rebMove) {
	es := rb.es
	moved := make([]int, 0, len(moves))
	es.sys.CoalesceTransfers(func() {
		for _, m := range moves {
			rb.p.migrateColumn(m.bj, m.dst)
			if m.parT >= 0 {
				// The move displaced a parity from the target node; re-home
				// it to the donor GPU inside the same transfer window.
				rb.p.coded.rehomeParity(m.parT, m.parJ, m.parDst)
				rebalanceParityReencodes.Inc()
			}
			moved = append(moved, m.bj)
		}
	})
	es.res.Rebalances++
	es.res.MovedColumns += len(moves)
	rebalancesTotal.Inc()
	rebalanceMoved.Add(uint64(len(moves)))
	if es.opts.onRebalance != nil {
		es.opts.onRebalance(k, moved)
	}
}
