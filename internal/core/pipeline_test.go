package core

import (
	"errors"
	"testing"

	"ftla/internal/checksum"
	"ftla/internal/fault"
	"ftla/internal/hetsim"
	"ftla/internal/matrix"
)

// pipelineRun executes one decomposition on a fresh testSystem and returns
// everything the cross-schedule comparisons need: the factor, the extra
// output (pivots for LU, tau for QR, nil for Cholesky), the result, and the
// canonical stage journal.
type pipelineRun struct {
	out     *matrix.Dense
	pivots  []int
	tau     []float64
	res     *Result
	journal []stageRec
}

func pipelineInput(decomp string, n int) *matrix.Dense {
	rng := matrix.NewRNG(uint64(n) + 7)
	switch decomp {
	case "cholesky":
		return matrix.RandomSPD(n, rng)
	case "lu":
		return matrix.RandomDiagDominant(n, rng)
	default:
		return matrix.Random(n, n, rng)
	}
}

func runPipeline(t *testing.T, decomp string, n, gpus int, opts Options) pipelineRun {
	t.Helper()
	a := pipelineInput(decomp, n)
	var pr pipelineRun
	opts.stageJournal = &pr.journal
	sys := testSystem(gpus)
	var err error
	switch decomp {
	case "cholesky":
		pr.out, pr.res, err = Cholesky(sys, a, opts)
	case "lu":
		pr.out, pr.pivots, pr.res, err = LU(sys, a, opts)
	case "qr":
		pr.out, pr.tau, pr.res, err = QR(sys, a, opts)
	default:
		t.Fatalf("unknown decomposition %q", decomp)
	}
	if err != nil {
		t.Fatalf("%s (gpus=%d lookahead=%d) failed: %v", decomp, gpus, opts.Lookahead, err)
	}
	return pr
}

// comparePipelineRuns asserts the full cross-schedule contract: identical
// canonical journals, bit-identical factors and auxiliary outputs, and
// identical verification counters.
func comparePipelineRuns(t *testing.T, label string, serial, la pipelineRun) {
	t.Helper()
	if len(serial.journal) != len(la.journal) {
		t.Fatalf("%s: journal lengths differ: serial %d vs look-ahead %d",
			label, len(serial.journal), len(la.journal))
	}
	for i := range serial.journal {
		if serial.journal[i] != la.journal[i] {
			t.Fatalf("%s: journal diverges at %d: serial %v vs look-ahead %v",
				label, i, serial.journal[i], la.journal[i])
		}
	}
	if d, r, c := serial.out.MaxAbsDiff(la.out); d != 0 {
		t.Fatalf("%s: factors not bit-identical: |Δ|=%g at (%d,%d)", label, d, r, c)
	}
	if len(serial.pivots) != len(la.pivots) {
		t.Fatalf("%s: pivot lengths differ", label)
	}
	for i := range serial.pivots {
		if serial.pivots[i] != la.pivots[i] {
			t.Fatalf("%s: pivots differ at %d: %d vs %d", label, i, serial.pivots[i], la.pivots[i])
		}
	}
	if len(serial.tau) != len(la.tau) {
		t.Fatalf("%s: tau lengths differ", label)
	}
	for i := range serial.tau {
		if serial.tau[i] != la.tau[i] {
			t.Fatalf("%s: tau differs at %d: %v vs %v", label, i, serial.tau[i], la.tau[i])
		}
	}
	if serial.res.Counter != la.res.Counter {
		t.Fatalf("%s: counters differ:\nserial     %+v\nlook-ahead %+v",
			label, serial.res.Counter, la.res.Counter)
	}
	if serial.res.Detected != la.res.Detected || serial.res.Unrecoverable != la.res.Unrecoverable {
		t.Fatalf("%s: detection state differs", label)
	}
	if serial.res.PCIeBytes != la.res.PCIeBytes {
		t.Fatalf("%s: PCIe traffic differs: %d vs %d", label, serial.res.PCIeBytes, la.res.PCIeBytes)
	}
	if serial.res.Flops != la.res.Flops {
		t.Fatalf("%s: flop counts differ: %d vs %d", label, serial.res.Flops, la.res.Flops)
	}
}

// TestPipelineSchedulesAgree is the tentpole's cross-driver ladder test:
// every decomposition × protection × scheme × GPU count must produce the
// same canonical stage journal and bit-identical outputs whether the step
// runtime schedules serially (Lookahead=0) or with look-ahead overlap
// (Lookahead=1).
func TestPipelineSchedulesAgree(t *testing.T) {
	configs := []struct {
		mode   Mode
		scheme Scheme
	}{
		{NoChecksum, NoCheck},
		{SingleSide, PriorOp},
		{SingleSide, PostOp},
		{Full, PostOp},
		{Full, NewScheme},
	}
	for _, decomp := range []string{"cholesky", "lu", "qr"} {
		for _, gpus := range []int{1, 3} {
			for _, cfg := range configs {
				label := decomp + "/" + cfg.mode.String() + "/" + cfg.scheme.String()
				opts := Options{NB: 16, Mode: cfg.mode, Scheme: cfg.scheme, Kernel: checksum.OptKernel}
				serial := runPipeline(t, decomp, 96, gpus, opts)
				opts.Lookahead = 1
				la := runPipeline(t, decomp, 96, gpus, opts)
				comparePipelineRuns(t, label, serial, la)
				if len(serial.journal) == 0 {
					t.Fatalf("%s: empty stage journal", label)
				}
			}
		}
	}
}

// TestPipelineJournalCanonicalOrder: the canonical journal lists every step's
// stages in ladder-rank order, and look-ahead's out-of-order panel-factor
// recording is invisible after canonicalization.
func TestPipelineJournalCanonicalOrder(t *testing.T) {
	opts := Options{NB: 16, Mode: Full, Scheme: NewScheme, Kernel: checksum.OptKernel, Lookahead: 1}
	pr := runPipeline(t, "cholesky", 96, 2, opts)
	prev := stageRec{Step: -1}
	for _, rec := range pr.journal {
		if rec.Step < prev.Step {
			t.Fatalf("journal step order violated: %v after %v", rec, prev)
		}
		if rec.Step == prev.Step && stageRank[rec.Name] < stageRank[prev.Name] {
			t.Fatalf("journal stage order violated: %v after %v", rec, prev)
		}
		prev = rec
	}
	// Every step must open with panel-factor and the non-final steps must
	// close with tmu-finish.
	steps := map[int]bool{}
	for _, rec := range pr.journal {
		if rec.Name == stagePanelFactor {
			steps[rec.Step] = true
		}
	}
	for k := 0; k < 96/16; k++ {
		if !steps[k] {
			t.Fatalf("no panel-factor journaled for step %d", k)
		}
	}
}

// TestPipelineInjectionScheduleInvariant: with a fault injector attached the
// runtime falls back to the serial schedule, so a Lookahead=1 run under
// injected corruption behaves exactly like the Lookahead=0 run — same
// repairs, same counters, bit-identical repaired factor.
func TestPipelineInjectionScheduleInvariant(t *testing.T) {
	inject := func(lookahead int) (pipelineRun, *fault.Injector) {
		inj := fault.NewInjector(11)
		inj.Schedule(fault.Spec{Kind: fault.OffChipMemory, Op: fault.PD, Iteration: 2, Part: fault.UpdatePart})
		inj.Schedule(fault.Spec{Kind: fault.Computation, Op: fault.TMU, Iteration: 1})
		opts := Options{NB: 16, Mode: Full, Scheme: NewScheme, Kernel: checksum.OptKernel,
			Injector: inj, Lookahead: lookahead}
		return runPipeline(t, "cholesky", 96, 2, opts), inj
	}
	serial, injS := inject(0)
	la, injL := inject(1)
	if len(injS.Events()) == 0 || len(injS.Events()) != len(injL.Events()) {
		t.Fatalf("injection events differ: serial %d vs look-ahead %d",
			len(injS.Events()), len(injL.Events()))
	}
	if !serial.res.Detected || !la.res.Detected {
		t.Fatal("injected faults went undetected")
	}
	comparePipelineRuns(t, "cholesky/injected", serial, la)
	a := pipelineInput("cholesky", 96)
	if r := matrix.CholeskyResidual(a, la.out); r > 1e-11 {
		t.Fatalf("look-ahead run under injection left residual %g", r)
	}
}

// TestPipelineFailStopBothSchedules: a mid-pipeline device crash aborts with
// the same typed DeviceLostError in both schedules, and the system is
// Reset-safe afterwards in both.
func TestPipelineFailStopBothSchedules(t *testing.T) {
	for _, lookahead := range []int{0, 1} {
		sys := hetsim.New(hetsim.DefaultConfig(2))
		a := matrix.RandomSPD(128, matrix.NewRNG(1))
		opts := Options{NB: 32, Mode: Full, Scheme: NewScheme, Lookahead: lookahead,
			FailStop: map[int]hetsim.FaultPlan{1: {Mode: hetsim.FaultCrash, AfterOps: 25}}}
		out, res, err := Cholesky(sys, a, opts)
		if out != nil || res != nil {
			t.Fatalf("lookahead=%d: aborted run still returned a result", lookahead)
		}
		var lost *hetsim.DeviceLostError
		if !errors.As(err, &lost) {
			t.Fatalf("lookahead=%d: err = %v, want DeviceLostError", lookahead, err)
		}
		if lost.Device != "GPU1" {
			t.Fatalf("lookahead=%d: lost device = %q, want GPU1", lookahead, lost.Device)
		}
		sys.Reset()
		clean := Options{NB: 32, Mode: Full, Scheme: NewScheme, Lookahead: lookahead}
		if _, _, err := Cholesky(sys, a, clean); err != nil {
			t.Fatalf("lookahead=%d: rerun after Reset failed: %v", lookahead, err)
		}
	}
}

// TestPipelineFailStopLUAndQR: the crash contract holds for the other two
// drivers under the look-ahead schedule too.
func TestPipelineFailStopLUAndQR(t *testing.T) {
	plan := map[int]hetsim.FaultPlan{0: {Mode: hetsim.FaultCrash, AfterOps: 10}}
	opts := Options{NB: 32, Mode: Full, Scheme: NewScheme, Lookahead: 1, FailStop: plan}

	sys := hetsim.New(hetsim.DefaultConfig(2))
	var lost *hetsim.DeviceLostError
	if _, _, _, err := LU(sys, matrix.RandomDiagDominant(128, matrix.NewRNG(2)), opts); !errors.As(err, &lost) {
		t.Fatalf("LU: err = %v, want DeviceLostError", err)
	}

	sys = hetsim.New(hetsim.DefaultConfig(2))
	if _, _, _, err := QR(sys, matrix.Random(128, 128, matrix.NewRNG(3)), opts); !errors.As(err, &lost) {
		t.Fatalf("QR: err = %v, want DeviceLostError", err)
	}
}

// TestPipelineLookaheadHidesPanelWork: on the acceptance platform
// (DefaultConfig(4)) the look-ahead schedule's simulated makespan must beat
// the serial schedule by at least 15% once the matrix is large enough that
// the trailing update can hide the CPU panel factorization (n >= 2048).
// NB=64 balances the two sides of the overlap on the default speeds: the
// per-stream trailing slice stays under the CPU panel time (nb >= m/40, so
// the panel hides the streams), while the panel total shrinks enough that
// the de-serialized trailing update is a large makespan fraction.
func TestPipelineLookaheadHidesPanelWork(t *testing.T) {
	if testing.Short() {
		t.Skip("large-matrix makespan check skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("n=2560 factorizations are prohibitively slow under the race detector; scripts/check.sh runs this test without -race")
	}
	n, nb := 2560, 64
	run := func(lookahead int) float64 {
		sys := hetsim.New(hetsim.DefaultConfig(4))
		a := matrix.RandomSPD(n, matrix.NewRNG(99))
		opts := Options{NB: nb, Mode: NoChecksum, Scheme: NoCheck, Lookahead: lookahead}
		_, res, err := Cholesky(sys, a, opts)
		if err != nil {
			t.Fatalf("lookahead=%d failed: %v", lookahead, err)
		}
		return res.SimMakespan
	}
	serial := run(0)
	la := run(1)
	if la > 0.85*serial {
		t.Fatalf("look-ahead makespan %.4fs vs serial %.4fs: improvement %.1f%% < 15%%",
			la, serial, 100*(1-la/serial))
	}
}
