package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"ftla/internal/hetsim"
	"ftla/internal/matrix"
)

func protOpts(nb int) Options {
	return Options{NB: nb, Mode: Full, Scheme: NewScheme}
}

// TestCholeskyAbortsOnDeviceLoss: a GPU crash mid-factorization surfaces
// as a typed DeviceLostError, not a panic, deadlock, or silent result.
func TestCholeskyAbortsOnDeviceLoss(t *testing.T) {
	sys := hetsim.New(hetsim.DefaultConfig(2))
	a := matrix.RandomSPD(128, matrix.NewRNG(1))
	opts := protOpts(32)
	opts.FailStop = map[int]hetsim.FaultPlan{1: {Mode: hetsim.FaultCrash, AfterOps: 25}}
	out, res, err := Cholesky(sys, a, opts)
	if out != nil || res != nil {
		t.Fatal("aborted run still returned a result")
	}
	var lost *hetsim.DeviceLostError
	if !errors.As(err, &lost) {
		t.Fatalf("err = %v, want DeviceLostError", err)
	}
	if lost.Device != "GPU1" {
		t.Fatalf("lost device = %q, want GPU1", lost.Device)
	}
	// Partial-state cleanup contract: the aborted system is Reset-safe and
	// a rerun on it succeeds.
	sys.Reset()
	if _, _, err := Cholesky(sys, a, protOpts(32)); err != nil {
		t.Fatalf("rerun after Reset failed: %v", err)
	}
}

// TestLUAbortsOnHangDeadline: a hung device is reaped by the bound
// context's deadline and classified as both a hang and a deadline.
func TestLUAbortsOnHangDeadline(t *testing.T) {
	sys := hetsim.New(hetsim.DefaultConfig(2))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	sys.Bind(ctx)
	a := matrix.RandomDiagDominant(128, matrix.NewRNG(2))
	opts := protOpts(32)
	opts.FailStop = map[int]hetsim.FaultPlan{0: {Mode: hetsim.FaultHang, AfterOps: 10}}
	_, _, _, err := LU(sys, a, opts)
	var hung *hetsim.DeviceHungError
	if !errors.As(err, &hung) {
		t.Fatalf("err = %v, want DeviceHungError", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hang not attributed to the deadline: %v", err)
	}
}

// TestQRAbortsOnCancel: plain cancellation of the bound context aborts the
// ladder promptly at the next kernel gate.
func TestQRAbortsOnCancel(t *testing.T) {
	sys := hetsim.New(hetsim.DefaultConfig(2))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sys.Bind(ctx)
	a := matrix.Random(96, 96, matrix.NewRNG(3))
	_, _, _, err := QR(sys, a, protOpts(32))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestStragglerCompletesWithInflatedClock: a straggler is a performance
// fault, not a correctness fault — the run completes with a correct factor
// but the slow GPU's simulated busy time is inflated by the Slowdown.
func TestStragglerCompletesWithInflatedClock(t *testing.T) {
	a := matrix.RandomSPD(128, matrix.NewRNG(4))
	base := hetsim.New(hetsim.DefaultConfig(2))
	if _, _, err := Cholesky(base, a.Clone(), protOpts(32)); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	slow := hetsim.New(hetsim.DefaultConfig(2))
	opts := protOpts(32)
	opts.FailStop = map[int]hetsim.FaultPlan{1: {Mode: hetsim.FaultStraggler, Slowdown: 16}}
	out, _, err := Cholesky(slow, a.Clone(), opts)
	if err != nil {
		t.Fatalf("straggler run: %v", err)
	}
	if r := matrix.CholeskyResidual(a, out); r > 1e-9 {
		t.Fatalf("straggler corrupted the factor: residual %g", r)
	}
	bt, st := base.GPU(1).SimTime(), slow.GPU(1).SimTime()
	if st < 8*bt {
		t.Fatalf("straggler GPU1 sim time %v, want >= 8x baseline %v", st, bt)
	}
}
