// Package overhead implements the paper's §IX analytic overhead model
// (Table VII): closed-form estimates of the relative cost of checksum
// encoding, checksum updating, and checksum verification for the three
// protected decompositions, plus the §IX.B memory-space overhead. The
// constants are derived for this implementation's kernels (the paper's
// printed constants assume its GPU cost model) but keep the same
// structure: encoding and verification scale as 1/n, updating as 1/NB,
// so the total overhead approaches a small constant for large matrices.
package overhead

// Decomp selects the factorization.
type Decomp int

// Decompositions.
const (
	Cholesky Decomp = iota
	LU
	QR
)

func (d Decomp) String() string {
	switch d {
	case Cholesky:
		return "Cholesky"
	case LU:
		return "LU"
	default:
		return "QR"
	}
}

// factorFlops returns the leading-order flop count of the unprotected
// decomposition.
func factorFlops(d Decomp, n float64) float64 {
	switch d {
	case Cholesky:
		return n * n * n / 3
	case LU:
		return 2 * n * n * n / 3
	default:
		return 4 * n * n * n / 3
	}
}

// Breakdown is the relative overhead decomposition of §IX.A.
type Breakdown struct {
	// Encode is the one-time initial checksum encoding, ∝ 1/n.
	Encode float64
	// Update is the per-operation checksum maintenance, ∝ 1/NB.
	Update float64
	// Verify is the checking-scheme verification cost, ∝ (K + const)/n.
	Verify float64
}

// Total returns the summed relative overhead.
func (b Breakdown) Total() float64 { return b.Encode + b.Update + b.Verify }

// Analytic evaluates the §IX.A model for a full-checksum run under the
// new checking scheme. n is the matrix order, nb the block size, and k
// the number of 1-D-propagating memory errors encountered (the paper's
// K; 0 for error-free runs).
func Analytic(d Decomp, n, nb, k int) Breakdown {
	fn, fnb := float64(n), float64(nb)
	work := factorFlops(d, fn)

	// Encoding: 8·NB² flops per block (two dual-weight checksum lines per
	// dimension), over every block — half the matrix for Cholesky (§IX.A.1).
	blocks := (fn / fnb) * (fn / fnb)
	if d == Cholesky {
		blocks /= 2
	}
	encode := blocks * 8 * fnb * fnb / work

	// Updating: each trailing update C(m×n') −= A(m×nb)·B(nb×n') costs
	// 2·m·n'·nb flops and drags 4·m·n' checksum-maintenance flops (2 per
	// maintained dimension), i.e. a 4/NB relative cost for full checksums
	// (§IX.A.2). Panel-side maintenance adds lower-order terms.
	update := 4 / fnb

	// Verification: the new scheme checks Θ(b) blocks per iteration
	// (Table VI: ≈ 6b + K for LU-shaped iterations plus the per-GPU
	// post-broadcast checks), each costing ≈ 3·NB² recompute flops, for
	// ≈ c·(n/NB)²·3·NB² = 3c·n² total (§IX.A.3).
	perIter := 6.0
	if d == QR {
		perIter = 7 // retirement + reconciliation strip checks
	}
	verify := (3 * (perIter/2 + float64(k)) * fn * fn) / work

	return Breakdown{Encode: encode, Update: update, Verify: verify}
}

// MemorySpace returns the §IX.B relative memory overhead of full checksum
// storage: two checksum lines per block and dimension — 4/NB.
func MemorySpace(nb int) float64 { return 4 / float64(nb) }
