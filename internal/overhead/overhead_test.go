package overhead

import (
	"math"
	"testing"

	"ftla/internal/checksum"
	"ftla/internal/core"
	"ftla/internal/hetsim"
	"ftla/internal/matrix"
	"ftla/internal/obs"
)

func TestStructure(t *testing.T) {
	for _, d := range []Decomp{Cholesky, LU, QR} {
		b := Analytic(d, 1024, 64, 0)
		if b.Encode <= 0 || b.Update <= 0 || b.Verify <= 0 {
			t.Fatalf("%v: non-positive component %+v", d, b)
		}
		// Encoding and verification vanish as 1/n...
		b2 := Analytic(d, 2048, 64, 0)
		if b2.Encode >= b.Encode || b2.Verify >= b.Verify {
			t.Errorf("%v: encode/verify must shrink with n: %+v vs %+v", d, b, b2)
		}
		// ...while updating is n-independent and shrinks with NB.
		if b2.Update != b.Update {
			t.Errorf("%v: update term must not depend on n", d)
		}
		b3 := Analytic(d, 1024, 128, 0)
		if b3.Update >= b.Update {
			t.Errorf("%v: update term must shrink with NB", d)
		}
	}
}

func TestErrorsIncreaseVerification(t *testing.T) {
	if Analytic(LU, 1024, 64, 3).Verify <= Analytic(LU, 1024, 64, 0).Verify {
		t.Fatal("K errors must add verification cost")
	}
}

func TestQRCheapestRelative(t *testing.T) {
	// QR's O(n³) constant is largest, so its relative protection overhead
	// is smallest (the §IX and Fig. 15 observation).
	ch := Analytic(Cholesky, 2048, 64, 0).Total()
	lu := Analytic(LU, 2048, 64, 0).Total()
	qr := Analytic(QR, 2048, 64, 0).Total()
	if qr >= lu || qr >= ch {
		t.Fatalf("QR %.4f should be cheapest (chol %.4f, lu %.4f)", qr, ch, lu)
	}
}

func TestMemorySpace(t *testing.T) {
	if MemorySpace(64) != 4.0/64 {
		t.Fatalf("memory overhead = %v", MemorySpace(64))
	}
}

// TestAnalyticMatchesMeasured cross-validates the model against the real
// engine's deterministic flop counts: the prediction must land within a
// factor of two of the measured relative overhead (the model keeps only
// leading-order terms).
func TestAnalyticMatchesMeasured(t *testing.T) {
	const n, nb, gpus = 512, 64, 2
	measure := func(opts core.Options) float64 {
		sys := hetsim.New(hetsim.DefaultConfig(gpus))
		a := matrix.RandomDiagDominant(n, matrix.NewRNG(1))
		_, _, res, err := core.LU(sys, a, opts)
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Flops)
	}
	base := measure(core.Options{NB: nb, Mode: core.NoChecksum, Scheme: core.NoCheck})
	prot := measure(core.Options{NB: nb, Mode: core.Full, Scheme: core.NewScheme, Kernel: checksum.OptKernel})
	measured := (prot - base) / base
	predicted := Analytic(LU, n, nb, 0).Total()
	if measured <= 0 {
		t.Fatalf("measured overhead %v not positive", measured)
	}
	ratio := predicted / measured
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("model off by more than 2x: predicted %.4f, measured %.4f", predicted, measured)
	}
}

func TestStringer(t *testing.T) {
	if Cholesky.String() == "" || LU.String() == "" || QR.String() == "" {
		t.Fatal("empty decomp names")
	}
}

func TestFromSnapshots(t *testing.T) {
	before := obs.Default().Snapshot()
	obs.ObservePhaseSeconds(obs.PhaseEncode, 0.5)
	obs.ObservePhaseSeconds(obs.PhaseFactorize, 2.0)
	obs.ObservePhaseSeconds(obs.PhaseVerify, 0.25)
	obs.ObservePhaseSeconds(obs.PhaseRecover, 0.25)
	obs.ObservePhaseSeconds(obs.PhasePCIe, 1.5)
	m := FromSnapshots(before, obs.Default().Snapshot())

	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-9 }
	if !approx(m.Encode, 0.5) || !approx(m.Factorize, 2) || !approx(m.Verify, 0.25) ||
		!approx(m.Recover, 0.25) || !approx(m.PCIe, 1.5) {
		t.Fatalf("measured breakdown = %+v", m)
	}
	if !approx(m.ABFTSeconds(), 1.0) {
		t.Fatalf("ABFTSeconds = %v, want 1.0", m.ABFTSeconds())
	}
	if !approx(m.Overhead(), 0.5) {
		t.Fatalf("Overhead = %v, want 0.5", m.Overhead())
	}
	// The diff is region-scoped: a fresh pair of snapshots sees nothing.
	clean := obs.Default().Snapshot()
	if got := FromSnapshots(clean, obs.Default().Snapshot()); got != (Measured{}) {
		t.Fatalf("empty region measured %+v", got)
	}
	if (Measured{Verify: 1}).Overhead() != 0 {
		t.Fatal("Overhead must be 0 when no factorize time was recorded")
	}
}

// TestMeasuredAgainstAnalytic runs a real protected LU and checks the
// measured ABFT overhead is positive and within an order of magnitude of
// the §IX.A prediction — a smoke link between model and observation, not a
// tight bound (wall-clock attribution on a shared host is noisy).
func TestMeasuredAgainstAnalytic(t *testing.T) {
	const n, nb = 256, 32
	before := obs.Default().Snapshot()
	sys := hetsim.New(hetsim.DefaultConfig(2))
	a := matrix.RandomDiagDominant(n, matrix.NewRNG(3))
	if _, _, _, err := core.LU(sys, a, core.Options{NB: nb, Mode: core.Full, Scheme: core.NewScheme, Kernel: checksum.OptKernel}); err != nil {
		t.Fatal(err)
	}
	m := FromSnapshots(before, obs.Default().Snapshot())
	if m.Encode <= 0 || m.Verify <= 0 || m.Factorize <= 0 {
		t.Fatalf("expected positive encode/verify/factorize, got %+v", m)
	}
	pred := Analytic(LU, n, nb, 0).Total()
	got := m.Overhead()
	if got <= 0 || got > 40*pred {
		t.Fatalf("measured overhead %v implausible vs analytic %v", got, pred)
	}
}
