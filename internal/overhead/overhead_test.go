package overhead

import (
	"testing"

	"ftla/internal/checksum"
	"ftla/internal/core"
	"ftla/internal/hetsim"
	"ftla/internal/matrix"
)

func TestStructure(t *testing.T) {
	for _, d := range []Decomp{Cholesky, LU, QR} {
		b := Analytic(d, 1024, 64, 0)
		if b.Encode <= 0 || b.Update <= 0 || b.Verify <= 0 {
			t.Fatalf("%v: non-positive component %+v", d, b)
		}
		// Encoding and verification vanish as 1/n...
		b2 := Analytic(d, 2048, 64, 0)
		if b2.Encode >= b.Encode || b2.Verify >= b.Verify {
			t.Errorf("%v: encode/verify must shrink with n: %+v vs %+v", d, b, b2)
		}
		// ...while updating is n-independent and shrinks with NB.
		if b2.Update != b.Update {
			t.Errorf("%v: update term must not depend on n", d)
		}
		b3 := Analytic(d, 1024, 128, 0)
		if b3.Update >= b.Update {
			t.Errorf("%v: update term must shrink with NB", d)
		}
	}
}

func TestErrorsIncreaseVerification(t *testing.T) {
	if Analytic(LU, 1024, 64, 3).Verify <= Analytic(LU, 1024, 64, 0).Verify {
		t.Fatal("K errors must add verification cost")
	}
}

func TestQRCheapestRelative(t *testing.T) {
	// QR's O(n³) constant is largest, so its relative protection overhead
	// is smallest (the §IX and Fig. 15 observation).
	ch := Analytic(Cholesky, 2048, 64, 0).Total()
	lu := Analytic(LU, 2048, 64, 0).Total()
	qr := Analytic(QR, 2048, 64, 0).Total()
	if qr >= lu || qr >= ch {
		t.Fatalf("QR %.4f should be cheapest (chol %.4f, lu %.4f)", qr, ch, lu)
	}
}

func TestMemorySpace(t *testing.T) {
	if MemorySpace(64) != 4.0/64 {
		t.Fatalf("memory overhead = %v", MemorySpace(64))
	}
}

// TestAnalyticMatchesMeasured cross-validates the model against the real
// engine's deterministic flop counts: the prediction must land within a
// factor of two of the measured relative overhead (the model keeps only
// leading-order terms).
func TestAnalyticMatchesMeasured(t *testing.T) {
	const n, nb, gpus = 512, 64, 2
	measure := func(opts core.Options) float64 {
		sys := hetsim.New(hetsim.DefaultConfig(gpus))
		a := matrix.RandomDiagDominant(n, matrix.NewRNG(1))
		_, _, res, err := core.LU(sys, a, opts)
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Flops)
	}
	base := measure(core.Options{NB: nb, Mode: core.NoChecksum, Scheme: core.NoCheck})
	prot := measure(core.Options{NB: nb, Mode: core.Full, Scheme: core.NewScheme, Kernel: checksum.OptKernel})
	measured := (prot - base) / base
	predicted := Analytic(LU, n, nb, 0).Total()
	if measured <= 0 {
		t.Fatalf("measured overhead %v not positive", measured)
	}
	ratio := predicted / measured
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("model off by more than 2x: predicted %.4f, measured %.4f", predicted, measured)
	}
}

func TestStringer(t *testing.T) {
	if Cholesky.String() == "" || LU.String() == "" || QR.String() == "" {
		t.Fatal("empty decomp names")
	}
}
