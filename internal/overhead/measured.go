package overhead

import "ftla/internal/obs"

// Measured is the observed counterpart of Breakdown: per-phase seconds for
// a region of interest, read from the obs registry's ftla_phase_seconds
// histograms rather than predicted by the §IX.A model. Encode, Verify and
// Recover are wall-clock ABFT time; Factorize is the non-ABFT remainder of
// the drivers' wall time; PCIe is simulated-clock transfer time and so is
// not commensurable with the other fields (see OBSERVABILITY.md).
type Measured struct {
	Encode    float64
	Factorize float64
	Verify    float64
	Recover   float64
	PCIe      float64
}

// FromSnapshots derives the measured phase breakdown of everything that ran
// between two snapshots of the same registry (normally obs.Default()):
//
//	before := obs.Default().Snapshot()
//	... factorize ...
//	m := overhead.FromSnapshots(before, obs.Default().Snapshot())
//
// Both cmd/ftserve's load generator and the repo benchmarks report phase
// breakdowns through this one function, so the numbers are directly
// comparable to a /metrics scrape diff.
func FromSnapshots(before, after obs.Snapshot) Measured {
	d := after.Diff(before)
	return Measured{
		Encode:    d.PhaseSeconds(obs.PhaseEncode),
		Factorize: d.PhaseSeconds(obs.PhaseFactorize),
		Verify:    d.PhaseSeconds(obs.PhaseVerify),
		Recover:   d.PhaseSeconds(obs.PhaseRecover),
		PCIe:      d.PhaseSeconds(obs.PhasePCIe),
	}
}

// ABFTSeconds returns the wall-clock time spent on fault tolerance:
// encode + verify + recover.
func (m Measured) ABFTSeconds() float64 { return m.Encode + m.Verify + m.Recover }

// Overhead returns the measured relative ABFT overhead — ABFT seconds over
// factorize seconds — the observed analogue of Breakdown.Total(). Checksum
// updating is executed inside the factorization kernels and cannot be
// separated by wall-clock attribution, so unlike the analytic model its
// cost appears in the denominator here, not the numerator. Returns 0 when
// no factorize time was recorded.
func (m Measured) Overhead() float64 {
	if m.Factorize <= 0 {
		return 0
	}
	return m.ABFTSeconds() / m.Factorize
}
