package hetsim

// PCIe link faults and the reliable-transfer protocol. The fail-stop layer
// (failstop.go) models whole devices dying; this layer models the channel
// between them going bad — the communication-error window of the paper's
// §V fault model, which ABFT must survive in motion, not just at rest.
// A link here is one CPU<->GPUi PCIe path (the same per-GPU links the
// logical clock serializes in linkAvail); a GPU<->GPU transfer crosses
// both endpoints' links.
//
// Faults are armed per link with ArmLinkFault and fire at transfer
// accounting time, inside the same critical section that bills simulated
// PCIe seconds — so a degraded link costs more time and a dropped
// transfer still pays for the wire it wasted. Reset disarms everything,
// like device fault plans.
//
// TransferReliable is the protocol the step runtime routes its data
// motion through: a Fletcher checksum over the source payload, verified
// on arrival, with capped jittered retransmission. Transient corruption
// and flaps are absorbed below the factorization; a link that exhausts
// its retry budget surfaces a typed *LinkError through the same
// panic/recover abort plumbing device faults use.

import (
	"context"
	"errors"
	"fmt"
	"math"

	"ftla/internal/matrix"
	"ftla/internal/obs"
)

// Reliable-transfer metrics, process-wide like the PCIe counters above.
var (
	transferRetransmits = obs.Default().Counter(obs.MetricTransferRetransmits,
		"PCIe retransmissions issued by TransferReliable after a detected drop or checksum mismatch.")
	linkFaults = obs.Default().CounterVec(obs.MetricLinkFaults,
		"Armed link faults that fired, by mode (corrupt, drop, flap, degrade).", "mode")
)

// DefaultMaxRetransmits is the retransmission budget TransferReliable uses
// when Config.MaxRetransmits is zero.
const DefaultMaxRetransmits = 3

// LinkFaultMode selects the communication fault a LinkFaultPlan arms.
type LinkFaultMode int

// Link fault modes.
const (
	// LinkNone arms nothing; the zero LinkFaultPlan is inert.
	LinkNone LinkFaultMode = iota
	// LinkCorrupt silently flips one bit of one payload element of the
	// triggering transfer (and, with Every > 0, of every Every-th transfer
	// after it). The raw Transfer delivers the damage; TransferReliable
	// detects it by checksum and retransmits.
	LinkCorrupt
	// LinkDrop makes the triggering transfer fail outright with a typed
	// *LinkError (once, or at the Every rate). The wire time is still
	// billed: a lost transfer wastes real bus time.
	LinkDrop
	// LinkFlap fails the next Count transfers on the link, then heals the
	// link (the plan clears itself) — a connector reseating itself.
	LinkFlap
	// LinkDegrade multiplies the link's bandwidth cost by Factor from the
	// trigger on (latency is unchanged). The link stays degraded until
	// Reset or re-arming.
	LinkDegrade
)

// String returns "none", "corrupt", "drop", "flap", or "degrade".
func (m LinkFaultMode) String() string {
	switch m {
	case LinkNone:
		return "none"
	case LinkCorrupt:
		return "corrupt"
	case LinkDrop:
		return "drop"
	case LinkFlap:
		return "flap"
	default:
		return "degrade"
	}
}

// LinkFaultPlan arms one communication fault on a CPU<->GPU link (see
// System.ArmLinkFault). The zero value is inert.
type LinkFaultPlan struct {
	// Mode selects what happens when the plan triggers.
	Mode LinkFaultMode
	// AfterTransfers delays the trigger until this many transfers have
	// crossed the link; 0 fires on the very next transfer — the same
	// deterministic gate FaultPlan.AfterOps gives device faults.
	AfterTransfers int
	// Every, for corrupt/drop plans, re-fires the fault on every Every-th
	// transfer after the trigger (a fixed error rate); 0 fires exactly
	// once. Retransmissions advance the same transfer counter, so a
	// retried transfer lands between firings and gets through.
	Every int
	// Count, for flap plans, is how many consecutive transfers fail
	// before the link heals; 0 means 1.
	Count int
	// Factor, for degrade plans, multiplies the link's bandwidth cost
	// (values <= 1 leave the clock alone).
	Factor float64
}

// String describes the armed fault, e.g. "corrupt after 12 transfers
// (every 8)" or "flap x3 after 0 transfers".
func (p LinkFaultPlan) String() string {
	switch p.Mode {
	case LinkNone:
		return "none"
	case LinkCorrupt, LinkDrop:
		if p.Every > 0 {
			return fmt.Sprintf("%s after %d transfers (every %d)", p.Mode, p.AfterTransfers, p.Every)
		}
		return fmt.Sprintf("%s after %d transfers", p.Mode, p.AfterTransfers)
	case LinkFlap:
		n := p.Count
		if n < 1 {
			n = 1
		}
		return fmt.Sprintf("flap x%d after %d transfers", n, p.AfterTransfers)
	default:
		return fmt.Sprintf("degrade x%.1f after %d transfers", p.Factor, p.AfterTransfers)
	}
}

// LinkError reports a transfer lost to a PCIe link fault: either a single
// dropped/failed transfer (raw Transfer path) or a link whose faults
// exhausted TransferReliable's retransmission budget. Like a device loss
// it surfaces through the abort plumbing and classifies the link's GPU as
// suspect.
type LinkError struct {
	// Link is the GPU index whose CPU<->GPU link faulted.
	Link int
	// Op is the operation that observed the fault ("pcie").
	Op string
	// Mode is the firing fault's mode.
	Mode LinkFaultMode
	// Retries is how many retransmissions were attempted before the error
	// surfaced (0 on the raw Transfer path).
	Retries int
}

// Error describes the link fault.
func (e *LinkError) Error() string {
	if e.Retries > 0 {
		return fmt.Sprintf("hetsim: link GPU%d %s fault in %s (exhausted %d retransmits)", e.Link, e.Mode, e.Op, e.Retries)
	}
	return fmt.Sprintf("hetsim: link GPU%d %s fault in %s", e.Link, e.Mode, e.Op)
}

// linkState is the per-link fault bookkeeping, guarded by System.mu (the
// verdict is computed inside the transfer-accounting critical section).
type linkState struct {
	plan     *LinkFaultPlan
	n        int     // transfers that have crossed the link since arming
	flapLeft int     // remaining failures of an active flap
	degrade  float64 // active bandwidth multiplier, 0 = none
}

// linkVerdict is what the armed link faults decided about one transfer.
type linkVerdict struct {
	drop    bool
	corrupt bool
	factor  float64       // combined bandwidth multiplier (>= 1)
	link    int           // GPU index of the first firing link, -1 if none
	mode    LinkFaultMode // firing mode, LinkNone if none fired
}

// ArmLinkFault arms (or, with a zero plan, disarms) a communication fault
// plan on GPU gpu's PCIe link. Arming replaces any previous plan and
// clears the link's transfer counter and degrade state; Reset disarms
// every link.
func (s *System) ArmLinkFault(gpu int, plan LinkFaultPlan) {
	if gpu < 0 || gpu >= len(s.gpus) {
		panic(fmt.Sprintf("hetsim: ArmLinkFault on GPU %d of a %d-GPU system", gpu, len(s.gpus)))
	}
	s.mu.Lock()
	st := &s.links[gpu]
	*st = linkState{}
	if plan.Mode != LinkNone {
		p := plan
		st.plan = &p
	}
	s.mu.Unlock()
}

// linkFaultVerdict advances the fault state of every GPU link the
// transfer crosses and merges the outcome. Caller holds s.mu.
func (s *System) linkFaultVerdict(src, dst *Device) linkVerdict {
	v := linkVerdict{factor: 1, link: -1}
	for _, d := range [2]*Device{src, dst} {
		if d.kind != GPU {
			continue
		}
		st := &s.links[d.id]
		if st.degrade > 1 {
			v.factor *= st.degrade
		}
		if st.plan == nil {
			continue
		}
		p := st.plan
		st.n++
		fired := false
		switch p.Mode {
		case LinkCorrupt, LinkDrop:
			gateAt := p.AfterTransfers + 1
			if st.n == gateAt || (p.Every > 0 && st.n > gateAt && (st.n-gateAt)%p.Every == 0) {
				fired = true
				if p.Mode == LinkCorrupt {
					v.corrupt = true
				} else {
					v.drop = true
				}
			}
		case LinkFlap:
			if st.flapLeft == 0 && st.n == p.AfterTransfers+1 {
				st.flapLeft = p.Count
				if st.flapLeft < 1 {
					st.flapLeft = 1
				}
			}
			if st.flapLeft > 0 {
				fired = true
				v.drop = true
				st.flapLeft--
				if st.flapLeft == 0 {
					st.plan = nil // healed
				}
			}
		case LinkDegrade:
			if st.n == p.AfterTransfers+1 {
				fired = true
				f := p.Factor
				if f < 1 {
					f = 1
				}
				st.degrade = f
				v.factor *= f
			}
		}
		if fired {
			linkFaults.With(p.Mode.String()).Inc()
			if v.link < 0 {
				v.link = d.id
				v.mode = p.Mode
			}
		}
	}
	return v
}

// corruptPayload flips one bit of one element of m, deterministically
// derived from seq so repeated firings damage different locations.
func corruptPayload(m *matrix.Dense, seq int) {
	if m.Rows == 0 || m.Cols == 0 {
		return
	}
	r := seq % m.Rows
	c := (seq / m.Rows) % m.Cols
	row := m.Row(r)
	row[c] = math.Float64frombits(math.Float64bits(row[c]) ^ (1 << uint(seq%52)))
}

// payloadChecksum is a Fletcher-style checksum over the payload's float64
// bit patterns, stride-aware (views alias a larger backing matrix, so the
// walk must go row by row, never over Data flat). The running second sum
// makes it position-sensitive: two swapped elements change the value,
// which a plain XOR would miss.
func payloadChecksum(m *matrix.Dense) uint64 {
	var s1, s2 uint64
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			b := math.Float64bits(v)
			s1 += b
			s2 += s1
		}
	}
	return s1 ^ (s2<<1 | s2>>63)
}

// checksumFlops is the simulated cost of one checksum pass: two adds per
// element. Charged on the device that computes it so the protocol's
// overhead shows up on the simulated clock instead of being free.
func checksumFlops(m *matrix.Dense) float64 {
	return 2 * float64(m.Rows) * float64(m.Cols)
}

// maxRetransmits resolves the configured retransmission budget.
func (s *System) maxRetransmits() int {
	if s.cfg.MaxRetransmits > 0 {
		return s.cfg.MaxRetransmits
	}
	return DefaultMaxRetransmits
}

// TransferReliable is Transfer hardened against link faults: it checksums
// the source payload, verifies the copy on arrival, and retransmits on a
// detected drop or mismatch — at most Config.MaxRetransmits times, each
// retry paying full simulated wire cost plus a jittered backoff. Both
// checksum passes are billed to their devices' simulated clocks. With no
// link faults armed the data path is bit-identical to Transfer (the
// checksum only verifies; it never rewrites the payload). Exhausted
// retries abort with a typed *LinkError via the fail-stop panic plumbing,
// recoverable at the driver boundary with RecoverAbort.
func (s *System) TransferReliable(src, dst *Buffer) {
	src.dev.gate("pcie")
	dst.dev.gate("pcie")
	if err := s.transferReliableGated(src, dst); err != nil {
		panic(&abortPanic{err})
	}
}

// TransferReliableCtx is TransferReliable with cooperative abort: it
// consults ctx before moving data and returns the typed link, fail-stop,
// or context error instead of panicking. See TransferCtx.
func (s *System) TransferReliableCtx(ctx context.Context, src, dst *Buffer) (err error) {
	defer func() {
		if e := RecoverAbort(recover()); e != nil {
			err = e
		}
	}()
	src.dev.gateCtx(ctx, "pcie")
	dst.dev.gateCtx(ctx, "pcie")
	return s.transferReliableGated(src, dst)
}

// transferReliableGated is the retransmission loop after the fail-stop
// gates have passed. The fault-injection transfer hook is suppressed on
// the individual wire attempts and run once after arrival verification:
// the checksum protects the wire, while the hook's window — the paper's
// communication-error model that ABFT itself must catch — is the
// receiver's memory past the transport, so injected faults still reach
// the factorization's own verification.
func (s *System) transferReliableGated(src, dst *Buffer) error {
	sm := src.unsafeData()
	want := payloadChecksum(sm)
	src.dev.account("fletcher", checksumFlops(sm))
	budget := s.maxRetransmits()
	var last *LinkError
	for attempt := 0; attempt <= budget; attempt++ {
		if attempt > 0 {
			transferRetransmits.Inc()
			s.chargeBackoff(src.dev, dst.dev, attempt)
		}
		err := s.transferAttempt(src, dst, false)
		if err != nil {
			var le *LinkError
			if errors.As(err, &le) {
				last = le
				continue // dropped on the wire: retransmit
			}
			return err
		}
		dm := dst.unsafeData()
		dst.dev.account("fletcher", checksumFlops(dm))
		if payloadChecksum(dm) == want {
			s.mu.Lock()
			hook := s.hook
			s.mu.Unlock()
			if hook != nil {
				hook(src.dev, dst.dev, dm)
			}
			return nil
		}
		// Damaged in flight. Attribute the corruption to a GPU endpoint's
		// link for the typed error (with two GPU endpoints the armed one is
		// unknowable from here; either classifies the transfer's path).
		link := dst.dev.id
		if dst.dev.kind != GPU {
			link = src.dev.id
		}
		last = &LinkError{Link: link, Op: "pcie", Mode: LinkCorrupt}
	}
	last.Retries = budget
	return last
}

// chargeBackoff bills the jittered retransmission delay to the simulated
// clock: exponential in the attempt number, base PCIe latency, with a
// deterministic pseudo-jitter (hashed from the attempt and the link's
// traffic count) so runs stay reproducible.
func (s *System) chargeBackoff(src, dst *Device, attempt int) {
	lat := s.cfg.PCIeLatencyUS / 1e6
	if lat <= 0 {
		return
	}
	d := lat * float64(uint(1)<<uint(attempt-1))
	h := uint64(attempt) * 0x9e3779b97f4a7c15
	for _, dev := range [2]*Device{src, dst} {
		if dev.kind == GPU {
			s.mu.Lock()
			h ^= uint64(s.links[dev.id].n) * 0xbf58476d1ce4e5b9
			s.mu.Unlock()
		}
	}
	d *= 1 + 0.25*float64(h%1024)/1024 // jitter in [0, 25%)
	s.mu.Lock()
	s.pcieSimSecs += d
	s.mu.Unlock()
	s.clockMu.Lock()
	tl := src.curTL
	if tl == nil {
		tl = dst.curTL
	}
	if tl == nil {
		tl = &s.serial
	}
	tl.floor += d
	for _, dev := range [2]*Device{src, dst} {
		if dev.kind == GPU && s.linkAvail[dev.id] < tl.floor {
			s.linkAvail[dev.id] = tl.floor
		}
	}
	s.clockMu.Unlock()
	obs.ObservePhaseSeconds(obs.PhasePCIe, d)
}
