package hetsim

import (
	"strings"
	"testing"

	"ftla/internal/blas"
	"ftla/internal/matrix"
	"ftla/internal/obs"
)

func newSys(t *testing.T, gpus int) *System {
	t.Helper()
	return New(DefaultConfig(gpus))
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero GPUs")
		}
	}()
	New(Config{NumGPUs: 0})
}

func TestDeviceNames(t *testing.T) {
	s := newSys(t, 2)
	if s.CPU().Name() != "CPU" || s.CPU().ID() != -1 {
		t.Fatalf("CPU identity wrong: %s %d", s.CPU().Name(), s.CPU().ID())
	}
	if s.GPU(1).Name() != "GPU1" || s.GPU(1).Kind() != GPU {
		t.Fatalf("GPU identity wrong")
	}
	if got := s.NumGPUs(); got != 2 {
		t.Fatalf("NumGPUs = %d", got)
	}
}

func TestResidencyEnforced(t *testing.T) {
	s := newSys(t, 2)
	b := s.GPU(0).Alloc(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected residency panic")
		}
	}()
	b.Access(s.GPU(1))
}

func TestAllocFromOnlyCPU(t *testing.T) {
	s := newSys(t, 1)
	m := matrix.NewDense(2, 2)
	if b := s.CPU().AllocFrom(m); b.Rows() != 2 {
		t.Fatal("CPU AllocFrom failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for GPU AllocFrom")
		}
	}()
	s.GPU(0).AllocFrom(m)
}

func TestAllocFromCopies(t *testing.T) {
	s := newSys(t, 1)
	m := matrix.NewDense(2, 2)
	b := s.CPU().AllocFrom(m)
	m.Set(0, 0, 9)
	if b.Access(s.CPU()).At(0, 0) != 0 {
		t.Fatal("AllocFrom must copy")
	}
}

func TestTransferCopiesData(t *testing.T) {
	s := newSys(t, 1)
	src := s.CPU().AllocFrom(matrix.FromRows([][]float64{{1, 2}, {3, 4}}))
	dst := s.GPU(0).Alloc(2, 2)
	s.Transfer(src, dst)
	if dst.Access(s.GPU(0)).At(1, 1) != 4 {
		t.Fatal("transfer did not copy payload")
	}
	if s.BytesTransferred() != 32 {
		t.Fatalf("bytes transferred = %d, want 32", s.BytesTransferred())
	}
	if s.PCIeSimTime() <= 0 {
		t.Fatal("PCIe sim clock did not advance")
	}
}

func TestTransferSameDevicePanics(t *testing.T) {
	s := newSys(t, 1)
	a := s.GPU(0).Alloc(2, 2)
	b := s.GPU(0).Alloc(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected same-device transfer panic")
		}
	}()
	s.Transfer(a, b)
}

func TestTransferShapeMismatchPanics(t *testing.T) {
	s := newSys(t, 1)
	a := s.CPU().Alloc(2, 2)
	b := s.GPU(0).Alloc(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape mismatch panic")
		}
	}()
	s.Transfer(a, b)
}

func TestTransferHookRunsOnPayload(t *testing.T) {
	s := newSys(t, 1)
	called := false
	s.SetTransferHook(func(from, to *Device, payload *matrix.Dense) {
		called = true
		if from.Kind() != CPU || to.Kind() != GPU {
			t.Errorf("hook endpoints wrong: %v -> %v", from.Kind(), to.Kind())
		}
		payload.Set(0, 0, 999) // corrupt, as a fault injector would
	})
	src := s.CPU().AllocFrom(matrix.FromRows([][]float64{{1}}))
	dst := s.GPU(0).Alloc(1, 1)
	s.Transfer(src, dst)
	if !called {
		t.Fatal("hook not called")
	}
	if dst.UnsafeData().At(0, 0) != 999 {
		t.Fatal("hook corruption not visible in destination")
	}
	if src.UnsafeData().At(0, 0) != 1 {
		t.Fatal("hook must not corrupt the source")
	}
}

func TestBroadcastReachesAllGPUs(t *testing.T) {
	s := newSys(t, 3)
	src := s.CPU().AllocFrom(matrix.FromRows([][]float64{{7}}))
	var dsts []*Buffer
	for _, g := range s.GPUs() {
		dsts = append(dsts, g.Alloc(1, 1))
	}
	s.Broadcast(src, dsts)
	for i, d := range dsts {
		if d.UnsafeData().At(0, 0) != 7 {
			t.Fatalf("GPU%d did not receive broadcast", i)
		}
	}
}

func TestBroadcastPerLegFaults(t *testing.T) {
	// A fault on one leg must not corrupt other receivers — this is the
	// observable §VII.C uses to distinguish communication errors.
	s := newSys(t, 3)
	leg := 0
	s.SetTransferHook(func(from, to *Device, payload *matrix.Dense) {
		if leg == 1 {
			payload.Set(0, 0, -1)
		}
		leg++
	})
	src := s.CPU().AllocFrom(matrix.FromRows([][]float64{{7}}))
	var dsts []*Buffer
	for _, g := range s.GPUs() {
		dsts = append(dsts, g.Alloc(1, 1))
	}
	s.Broadcast(src, dsts)
	corrupted := 0
	for _, d := range dsts {
		if d.UnsafeData().At(0, 0) != 7 {
			corrupted++
		}
	}
	if corrupted != 1 {
		t.Fatalf("corrupted receivers = %d, want exactly 1", corrupted)
	}
}

func TestGemmKernelOnDevice(t *testing.T) {
	s := newSys(t, 1)
	g := s.GPU(0)
	rng := matrix.NewRNG(1)
	am, bm := matrix.Random(8, 8, rng), matrix.Random(8, 8, rng)
	a, b, c := g.Alloc(8, 8), g.Alloc(8, 8), g.Alloc(8, 8)
	a.UnsafeData().CopyFrom(am)
	b.UnsafeData().CopyFrom(bm)
	g.Gemm(false, false, 1, a, b, 0, c)
	want := matrix.NewDense(8, 8)
	blas.Gemm(false, false, 1, am, bm, 0, want)
	if !c.UnsafeData().EqualWithin(want, 1e-12) {
		t.Fatal("device Gemm wrong")
	}
	if g.SimTime() <= 0 {
		t.Fatal("sim clock did not advance")
	}
}

func TestKernelCrossDevicePanics(t *testing.T) {
	s := newSys(t, 2)
	a := s.GPU(0).Alloc(4, 4)
	b := s.GPU(1).Alloc(4, 4)
	c := s.GPU(0).Alloc(4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected cross-device kernel panic")
		}
	}()
	s.GPU(0).Gemm(false, false, 1, a, b, 0, c)
}

func TestTraceRecordsEvents(t *testing.T) {
	s := newSys(t, 1)
	s.EnableTrace(true)
	src := s.CPU().Alloc(2, 2)
	dst := s.GPU(0).Alloc(2, 2)
	s.Transfer(src, dst)
	s.GPU(0).Run("custom", 100, func(int) {})
	evts := s.Events()
	if len(evts) != 2 {
		t.Fatalf("events = %d, want 2", len(evts))
	}
	if evts[0].Op != "pcie" || !strings.Contains(evts[0].Device, "->") {
		t.Fatalf("first event wrong: %+v", evts[0])
	}
	if evts[1].Op != "custom" || evts[1].Flops != 100 {
		t.Fatalf("second event wrong: %+v", evts[1])
	}
	s.EnableTrace(false)
	if len(s.Events()) != 0 {
		t.Fatal("disabling trace must clear events")
	}
}

func TestBufferView(t *testing.T) {
	s := newSys(t, 1)
	b := s.GPU(0).Alloc(4, 4)
	v := b.View(1, 1, 2, 2)
	v.UnsafeData().Set(0, 0, 5)
	if b.UnsafeData().At(1, 1) != 5 {
		t.Fatal("buffer view does not alias parent")
	}
	if v.Device() != s.GPU(0) {
		t.Fatal("view residency wrong")
	}
}

func TestSimMakespan(t *testing.T) {
	s := newSys(t, 2)
	s.GPU(0).Run("k", 1e9, func(int) {})
	if s.SimMakespan() <= 0 {
		t.Fatal("makespan should be positive after work")
	}
}

func TestTrsmSyrkKernels(t *testing.T) {
	s := newSys(t, 1)
	g := s.GPU(0)
	rng := matrix.NewRNG(2)
	n := 6
	lm := matrix.Random(n, n, rng)
	for i := 0; i < n; i++ {
		lm.Set(i, i, 3)
	}
	bm := matrix.Random(n, 4, rng)
	l, b := g.Alloc(n, n), g.Alloc(n, 4)
	l.UnsafeData().CopyFrom(lm)
	b.UnsafeData().CopyFrom(bm)
	g.Trsm(blas.Left, true, false, false, 1, l, b)
	want := bm.Clone()
	blas.Trsm(blas.Left, true, false, false, 1, lm, want)
	if !b.UnsafeData().EqualWithin(want, 1e-13) {
		t.Fatal("device Trsm wrong")
	}

	am := matrix.Random(n, 3, rng)
	a, c := g.Alloc(n, 3), g.Alloc(n, n)
	a.UnsafeData().CopyFrom(am)
	g.Syrk(true, false, 1, a, 0, c)
	wantc := matrix.NewDense(n, n)
	blas.Syrk(true, false, 1, am, 0, wantc)
	if !c.UnsafeData().EqualWithin(wantc, 1e-13) {
		t.Fatal("device Syrk wrong")
	}
}

func TestUtilization(t *testing.T) {
	s := newSys(t, 2)
	s.GPU(0).Run("k", 2e9, func(int) {})
	s.GPU(1).Run("k", 1e9, func(int) {})
	src := s.CPU().Alloc(64, 64)
	dst := s.GPU(0).Alloc(64, 64)
	s.Transfer(src, dst)
	stats := s.Utilization()
	if len(stats) != 4 { // CPU + 2 GPUs + PCIe
		t.Fatalf("stats = %d", len(stats))
	}
	sum := 0.0
	byName := map[string]DeviceStat{}
	for _, st := range stats {
		sum += st.Share
		byName[st.Name] = st
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum to %v", sum)
	}
	if byName["GPU0"].SimSecs <= byName["GPU1"].SimSecs {
		t.Fatal("GPU0 did twice the work")
	}
	if byName["PCIe"].SimSecs <= 0 {
		t.Fatal("PCIe time missing")
	}
}

func TestEventsStampedWithSimTime(t *testing.T) {
	s := newSys(t, 1)
	s.EnableTrace(true)
	g := s.GPU(0)
	g.Run("k1", 1e9, func(int) {})
	g.Run("k2", 2e9, func(int) {})
	src := s.CPU().Alloc(8, 8)
	dst := g.Alloc(8, 8)
	s.Transfer(src, dst)
	evts := s.Events()
	if len(evts) != 3 {
		t.Fatalf("events = %d, want 3", len(evts))
	}
	if evts[0].At <= 0 || evts[1].At <= evts[0].At {
		t.Fatalf("kernel timestamps not increasing: %g, %g", evts[0].At, evts[1].At)
	}
	if want := g.SimTime(); evts[1].At != want {
		t.Fatalf("last kernel stamped %g, want device clock %g", evts[1].At, want)
	}
	// The transfer is ordered after the kernels on the shared logical
	// clock: its completion stamp is the kernels' end plus the PCIe time.
	if want := g.SimTime() + s.PCIeSimTime(); evts[2].At != want {
		t.Fatalf("pcie event stamped %g, want logical clock %g", evts[2].At, want)
	}
	if evts[0].Seq == 0 || evts[1].Seq <= evts[0].Seq || evts[2].Seq <= evts[1].Seq {
		t.Fatalf("event sequence numbers not monotonic: %d, %d, %d", evts[0].Seq, evts[1].Seq, evts[2].Seq)
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	s := newSys(t, 1)
	s.EnableTrace(true)
	s.GPU(0).Run("k", 1e9, func(int) {})
	evts := s.Events()
	evts[0].Op = "mutated"
	if s.Events()[0].Op != "k" {
		t.Fatal("Events must return a copy, not the live slice")
	}
}

func TestBroadcastSelfCopyCostsNoPCIe(t *testing.T) {
	s := newSys(t, 2)
	src := s.GPU(0).Alloc(4, 4)
	src.UnsafeData().Set(2, 3, 7)
	self := s.GPU(0).Alloc(4, 4)
	s.Broadcast(src, []*Buffer{self})
	if self.UnsafeData().At(2, 3) != 7 {
		t.Fatal("self-copy leg did not copy the panel")
	}
	if s.BytesTransferred() != 0 || s.PCIeSimTime() != 0 {
		t.Fatalf("self-copy leg charged PCIe: %d bytes, %g s",
			s.BytesTransferred(), s.PCIeSimTime())
	}
	remote := s.GPU(1).Alloc(4, 4)
	s.Broadcast(src, []*Buffer{self, remote})
	if s.BytesTransferred() != 8*4*4 || s.PCIeSimTime() <= 0 {
		t.Fatalf("remote leg must pay PCIe: %d bytes, %g s",
			s.BytesTransferred(), s.PCIeSimTime())
	}
}

func TestResetClearsSimState(t *testing.T) {
	s := newSys(t, 2)
	s.EnableTrace(true)
	s.SetTransferHook(func(from, to *Device, payload *matrix.Dense) {})
	s.GPU(0).Run("k", 1e9, func(int) {})
	src := s.CPU().Alloc(4, 4)
	dst := s.GPU(1).Alloc(4, 4)
	s.Transfer(src, dst)
	if s.SimMakespan() <= 0 || s.BytesTransferred() == 0 || len(s.Events()) == 0 {
		t.Fatal("precondition: system should have accumulated state")
	}
	s.Reset()
	if s.SimMakespan() != 0 {
		t.Fatalf("makespan %g after Reset, want 0", s.SimMakespan())
	}
	if s.BytesTransferred() != 0 || s.PCIeSimTime() != 0 {
		t.Fatal("PCIe counters survive Reset")
	}
	if len(s.Events()) != 0 {
		t.Fatal("events survive Reset")
	}
	s.mu.Lock()
	hook, traceOn, tracer := s.hook, s.traceEnabled, s.tracer
	s.mu.Unlock()
	if hook != nil || tracer != nil {
		t.Fatal("per-run attachments (hook/tracer) survive Reset")
	}
	if !traceOn {
		t.Fatal("EnableTrace is configuration and must survive Reset")
	}
	for _, d := range append([]*Device{s.CPU()}, s.GPUs()...) {
		if d.SimTime() != 0 {
			t.Fatalf("%s clock %g after Reset, want 0", d.Name(), d.SimTime())
		}
	}
}

// Regression for the PR-1 bug where Reset silently disabled tracing: a
// pooled system whose user had called EnableTrace(true) recorded nothing
// after the pool Reset it between jobs.
func TestEnableTraceSurvivesReset(t *testing.T) {
	s := newSys(t, 1)
	if was := s.EnableTrace(true); was {
		t.Fatal("trace must start disabled")
	}
	if was := s.EnableTrace(true); !was {
		t.Fatal("EnableTrace must return the prior setting")
	}
	s.GPU(0).Run("before", 1, func(int) {})
	s.Reset()
	if len(s.Events()) != 0 {
		t.Fatal("Reset must drop recorded events")
	}
	s.GPU(0).Run("after", 1, func(int) {})
	evts := s.Events()
	if len(evts) != 1 || evts[0].Op != "after" {
		t.Fatalf("recording must continue after Reset without re-enabling; events=%v", evts)
	}
}

func TestTracerReceivesSimSpans(t *testing.T) {
	s := newSys(t, 1)
	tr := obs.NewTrace()
	s.SetTracer(tr)
	if s.Tracer() != tr {
		t.Fatal("Tracer accessor")
	}
	g := s.GPU(0)
	g.Run("potf2", 2e9, func(int) {})
	src := s.CPU().Alloc(8, 8)
	dst := g.Alloc(8, 8)
	s.Transfer(src, dst)
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2 (kernel + pcie)", len(spans))
	}
	k, p := spans[0], spans[1]
	if k.Name != "potf2" || k.Cat != "kernel" || k.Proc != obs.ProcSim || k.Track != "GPU0" {
		t.Fatalf("kernel span: %+v", k)
	}
	if k.DurUS <= 0 || k.Args["flops"] != 2e9 {
		t.Fatalf("kernel span duration/args: %+v", k)
	}
	if p.Name != "CPU->GPU0" || p.Cat != obs.PhasePCIe || p.Track != "PCIe" || p.Args["bytes"] != 8*8*8 {
		t.Fatalf("pcie span: %+v", p)
	}
	// The span timeline must agree with the simulated clocks.
	if end := (k.StartUS + k.DurUS) / 1e6; end != g.SimTime() {
		t.Fatalf("kernel span ends at %g, device clock %g", end, g.SimTime())
	}
	s.Reset()
	if s.Tracer() != nil {
		t.Fatal("Reset must detach the tracer")
	}
	g.Run("k", 1e9, func(int) {})
	if tr.Len() != 2 {
		t.Fatal("detached tracer must stop receiving spans")
	}
}

func TestTransferFeedsDefaultRegistry(t *testing.T) {
	before := obs.Default().Snapshot()
	s := newSys(t, 1)
	src := s.CPU().Alloc(4, 4)
	dst := s.GPU(0).Alloc(4, 4)
	s.Transfer(src, dst)
	d := obs.Default().Snapshot().Diff(before)
	if got := d.CounterValue(obs.MetricPCIeBytes); got != 8*4*4 {
		t.Fatalf("pcie bytes delta = %d, want %d", got, 8*4*4)
	}
	if got := d.CounterValue(obs.MetricPCIeTransfers); got != 1 {
		t.Fatalf("pcie transfers delta = %d, want 1", got)
	}
	if got := d.PhaseSeconds(obs.PhasePCIe); got <= 0 {
		t.Fatalf("pcie phase seconds delta = %g, want > 0", got)
	}
}
