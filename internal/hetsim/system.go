package hetsim

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"ftla/internal/matrix"
	"ftla/internal/obs"
)

// PCIe traffic metrics, shared across every System in the process (the
// obs default registry is the aggregate view; per-system figures come
// from BytesTransferred/PCIeSimTime).
var (
	pcieBytes      = obs.Default().Counter(obs.MetricPCIeBytes, "Total simulated PCIe traffic in bytes.")
	pcieTransfers  = obs.Default().Counter(obs.MetricPCIeTransfers, "Simulated PCIe transfers executed.")
	internodeBytes = obs.Default().Counter(obs.MetricInternodeBytes, "Total simulated inter-node interconnect traffic in bytes.")
)

// Config describes the simulated node. The zero value is not valid; use
// DefaultConfig as a starting point.
type Config struct {
	// NumGPUs is the number of simulated GPU devices (>= 1).
	NumGPUs int
	// CPUWorkers and GPUWorkers size the per-device goroutine pools that
	// stand in for CPU cores and GPU SMs.
	CPUWorkers int
	GPUWorkers int
	// CPUGflops and GPUGflops drive the simulated clock. They only affect
	// reported simulated times, never results.
	CPUGflops float64
	GPUGflops float64
	// PCIeGBps and PCIeLatencyUS drive the simulated communication clock.
	PCIeGBps      float64
	PCIeLatencyUS float64
	// MaxRetransmits caps TransferReliable's retransmission budget per
	// transfer; 0 means DefaultMaxRetransmits.
	MaxRetransmits int
	// Nodes partitions the GPUs into that many nodes: groups of devices
	// behind a slower inter-node interconnect. GPU g lives on node
	// g % Nodes (round-robin, so a block-cyclic column layout spreads
	// consecutive columns across nodes), the CPU coordinates from node 0,
	// and NumGPUs must be a multiple of Nodes. 0 or 1 selects the flat
	// single-box system, whose behavior is bit-identical to a topology-free
	// configuration.
	Nodes int
	// InterGBps and InterLatencyUS drive the inter-node interconnect
	// clock: transfers whose endpoints live on different nodes are billed
	// at this slower tier instead of the PCIe tier. Zero selects
	// DefaultInterGBps/DefaultInterLatencyUS when Nodes > 1; both are
	// ignored on a single-node system.
	InterGBps      float64
	InterLatencyUS float64
}

// Inter-node interconnect defaults, applied when Nodes > 1 and the
// corresponding Config field is zero: a network an order of magnitude
// slower and higher-latency than the intra-node PCIe fabric.
const (
	DefaultInterGBps      = 2.5
	DefaultInterLatencyUS = 120.0
)

// nodes resolves the node count (0 means the flat single-node system).
func (c Config) nodes() int {
	if c.Nodes < 1 {
		return 1
	}
	return c.Nodes
}

// interGBps and interLatencyUS resolve the inter-node interconnect tier
// without mutating the Config (which serves as a comparable pool key).
func (c Config) interGBps() float64 {
	if c.InterGBps > 0 {
		return c.InterGBps
	}
	return DefaultInterGBps
}

func (c Config) interLatencyUS() float64 {
	if c.InterLatencyUS > 0 {
		return c.InterLatencyUS
	}
	return DefaultInterLatencyUS
}

// DefaultConfig returns a configuration shaped like the paper's testbed
// (many-core CPU, PCIe-attached GPUs) scaled to a laptop-class simulator.
func DefaultConfig(numGPUs int) Config {
	return Config{
		NumGPUs:       numGPUs,
		CPUWorkers:    2,
		GPUWorkers:    4,
		CPUGflops:     50,
		GPUGflops:     1000,
		PCIeGBps:      12,
		PCIeLatencyUS: 10,
	}
}

// TransferHook observes (and may corrupt, for fault injection) the payload
// of a PCIe transfer after it has been written to the destination buffer.
// from may be the CPU or a GPU; to likewise.
type TransferHook func(from, to *Device, payload *matrix.Dense)

// Event is one trace record: a kernel execution or a transfer.
type Event struct {
	Op     string
	Device string
	Flops  float64
	Bytes  int
	// At is the event's completion time on the logical simulated clock —
	// one shared axis for kernels and transfers (see TimelineMakespan).
	// Under overlapped streams, distinct events can complete at the same
	// logical instant, so At alone is not a total order; sort on Seq for a
	// deterministic merge.
	At float64
	// Seq is a process-monotonic sequence number assigned in the order
	// events were recorded. It makes merged traces from concurrently
	// executing devices sortable deterministically, which append order and
	// At ties are not.
	Seq uint64
}

// eventSeq issues process-monotonic Event.Seq values. Deliberately not
// reset by Reset: monotonicity across runs is the point.
var eventSeq atomic.Uint64

// System is the simulated heterogeneous node.
type System struct {
	cfg  Config
	cpu  *Device
	gpus []*Device

	// boundCtx is the abort context installed by Bind (nil pointer or nil
	// context = unbound); every kernel and transfer consults it at its
	// fail-stop gate (see failstop.go).
	boundCtx atomic.Pointer[context.Context]

	mu           sync.Mutex
	pcieSimSecs  float64
	transferred  int64 // total bytes moved over PCIe (both tiers)
	internode    int64 // bytes moved over the inter-node interconnect
	events       []Event
	traceEnabled bool
	hook         TransferHook
	tracer       *obs.Trace

	// Transfer-coalescing window state (see CoalesceTransfers): while
	// coalesceDepth > 0, only the first transfer on each (src, dst) device
	// pair pays the fixed PCIe latency; coalescedLinks remembers which
	// pairs already paid it in the current window.
	coalesceDepth  int
	coalescedLinks map[[2]int]bool

	// Logical simulated clock (see stream.go): the serial timeline every
	// synchronous operation is ordered on, and per-GPU PCIe link
	// availability. Guarded by clockMu together with each device's avail
	// and curTL.
	clockMu   sync.Mutex
	serial    timeline
	linkAvail []float64

	// Per-GPU link fault state (see linkfault.go), guarded by mu: the
	// verdict is computed inside the transfer-accounting critical section
	// so fault rates and the billed time stay consistent.
	links []linkState

	// Whole-node fault state (see nodefault.go), guarded by nodeMu: armed
	// plans keyed by node index, the epoch counter NodeEpoch advances, and
	// which nodes have been lost.
	nodeMu    sync.Mutex
	nodePlans map[int]NodeFaultPlan
	nodeEpoch int
	nodesLost []bool
}

// New builds a simulated cluster from cfg: one coordinating CPU plus
// NumGPUs GPUs spread round-robin over cfg.Nodes nodes (the flat
// single-node system when Nodes <= 1).
func New(cfg Config) *System {
	if cfg.NumGPUs < 1 {
		panic("hetsim: NumGPUs must be >= 1")
	}
	if nodes := cfg.nodes(); nodes > 1 && cfg.NumGPUs%nodes != 0 {
		panic(fmt.Sprintf("hetsim: NumGPUs (%d) must be a multiple of Nodes (%d)", cfg.NumGPUs, nodes))
	}
	if cfg.CPUWorkers < 1 {
		cfg.CPUWorkers = 1
	}
	if cfg.GPUWorkers < 1 {
		cfg.GPUWorkers = 1
	}
	s := &System{
		cfg:       cfg,
		linkAvail: make([]float64, cfg.NumGPUs),
		links:     make([]linkState, cfg.NumGPUs),
		nodesLost: make([]bool, cfg.nodes()),
	}
	s.cpu = &Device{kind: CPU, id: -1, workers: cfg.CPUWorkers, gflops: cfg.CPUGflops, sys: s}
	for i := 0; i < cfg.NumGPUs; i++ {
		s.gpus = append(s.gpus, &Device{kind: GPU, id: i, node: i % cfg.nodes(), workers: cfg.GPUWorkers, gflops: cfg.GPUGflops, sys: s})
	}
	return s
}

// Nodes returns the node count of the topology (1 for the flat system).
func (s *System) Nodes() int { return s.cfg.nodes() }

// NodeOf returns the node GPU g lives on (g % Nodes; the CPU coordinates
// from node 0).
func (s *System) NodeOf(g int) int { return g % s.cfg.nodes() }

// CPU returns the host device.
func (s *System) CPU() *Device { return s.cpu }

// GPUs returns the GPU devices.
func (s *System) GPUs() []*Device { return s.gpus }

// GPU returns GPU i.
func (s *System) GPU(i int) *Device { return s.gpus[i] }

// NumGPUs returns the GPU count.
func (s *System) NumGPUs() int { return len(s.gpus) }

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// SetTransferHook installs (or clears, with nil) the PCIe fault-injection
// hook.
func (s *System) SetTransferHook(h TransferHook) {
	s.mu.Lock()
	s.hook = h
	s.mu.Unlock()
}

// EnableTrace turns on event recording (off by default: the event slice
// grows with every kernel) and returns the previous setting. The flag is
// configuration, not accumulated state: it survives Reset, which drops
// the recorded events but leaves recording itself as the caller set it
// (see Reset).
func (s *System) EnableTrace(on bool) (was bool) {
	s.mu.Lock()
	was = s.traceEnabled
	s.traceEnabled = on
	if !on {
		s.events = nil
	}
	s.mu.Unlock()
	return was
}

// SetTracer attaches (or, with nil, detaches) an obs.Trace that receives
// a simulated-clock span for every kernel execution and PCIe transfer —
// the span-based successor of the Event slice, exportable as a Chrome
// trace. The tracer is a per-run attachment like the transfer hook:
// Reset detaches it.
func (s *System) SetTracer(t *obs.Trace) {
	s.mu.Lock()
	s.tracer = t
	s.mu.Unlock()
}

// Tracer returns the attached tracer, nil when tracing is off.
func (s *System) Tracer() *obs.Trace {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tracer
}

// Events returns a copy of the recorded trace.
func (s *System) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

func (s *System) trace(op string, d *Device, flops, endAt, durSecs float64) {
	s.mu.Lock()
	tr := s.tracer
	if s.traceEnabled {
		s.events = append(s.events, Event{Op: op, Device: d.Name(), Flops: flops, At: endAt, Seq: eventSeq.Add(1)})
	}
	s.mu.Unlock()
	if tr != nil {
		var args map[string]float64
		if flops > 0 {
			args = map[string]float64{"flops": flops}
		}
		tr.SimSpan(op, "kernel", d.Name(), endAt, durSecs, args)
	}
}

// Reset returns the system to a like-new state for the next run:
// simulated clocks and PCIe byte counters zeroed, the recorded events
// dropped, the per-run attachments — the transfer hook, the obs tracer,
// and the bound abort context — cleared, and every armed FaultPlan and
// LinkFaultPlan disarmed with crashed/hung devices revived (an aborted run must leave a
// Reset-safe system: the next job on a pooled, then-probed system starts
// on a clean, fully populated node — see TestResetClearsFaultPlan). The
// EnableTrace flag deliberately survives: it is configuration ("record my
// kernels"), not accumulated state, and a Reset that silently disabled it
// forced every pooled-system user to re-enable tracing after each job
// (the bug this contract fixes; see TestEnableTraceSurvivesReset). Device
// buffers are not tracked and thus not touched — callers own their
// allocations. Reset lets a pool reuse one System across jobs without
// construction cost while each job still observes clean clocks and an
// injector-free, tracer-free, fault-free fabric.
func (s *System) Reset() {
	s.mu.Lock()
	s.pcieSimSecs = 0
	s.transferred = 0
	s.internode = 0
	s.events = nil
	s.hook = nil
	s.tracer = nil
	s.coalesceDepth = 0
	s.coalescedLinks = nil
	for i := range s.links {
		s.links[i] = linkState{}
	}
	s.mu.Unlock()
	s.nodeMu.Lock()
	s.nodePlans = nil
	s.nodeEpoch = 0
	for i := range s.nodesLost {
		s.nodesLost[i] = false
	}
	s.nodeMu.Unlock()
	s.boundCtx.Store(nil)
	s.resetClock()
	s.cpu.resetSim()
	s.cpu.resetFault()
	for _, g := range s.gpus {
		g.resetSim()
		g.resetFault()
	}
}

// PCIeSimTime returns accumulated simulated PCIe seconds.
func (s *System) PCIeSimTime() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pcieSimSecs
}

// BytesTransferred returns the total bytes moved over PCIe (both tiers).
func (s *System) BytesTransferred() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.transferred
}

// InternodeBytes returns the bytes moved over the inter-node interconnect
// (the cross-node subset of BytesTransferred); always zero on a flat
// single-node system.
func (s *System) InternodeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.internode
}

// Transfer copies the contents of src into dst over the PCIe fabric. The
// two buffers must have identical shape and live on different devices (a
// same-device Transfer is almost always an algorithmic mistake and
// panics). The transfer hook, if installed, runs on the received payload —
// exactly the paper's communication-error window: after the sender's
// memory was read, before any receiver-side verification. Both endpoints
// pass the fail-stop gate first: a transfer touching a crashed device (or
// running under a done bound context) aborts with a typed panic
// recoverable via RecoverAbort (TransferCtx is the error-returning
// variant).
func (s *System) Transfer(src, dst *Buffer) {
	src.dev.gate("pcie")
	dst.dev.gate("pcie")
	s.transferGated(src, dst)
}

// transferGated is Transfer after the fail-stop gates have passed. A
// dropped transfer (armed link fault, see linkfault.go) aborts with the
// typed *LinkError via the fail-stop panic plumbing — the raw transfer
// path has no retransmission.
func (s *System) transferGated(src, dst *Buffer) {
	if err := s.transferAttempt(src, dst, true); err != nil {
		panic(&abortPanic{err})
	}
}

// transferAttempt executes one wire attempt: it computes the armed link
// faults' verdict, bills simulated time (degrade inflates the bandwidth
// term; a dropped transfer still pays for the wire it wasted), then
// delivers — or corrupts, or drops — the payload. It returns a typed
// *LinkError on a drop and nil otherwise. TransferReliable calls it in a
// retransmission loop with runHook false (the fault-injection hook runs
// once per transfer, after arrival verification — see
// transferReliableGated); transferGated calls it once with the hook on
// and panics on error.
func (s *System) transferAttempt(src, dst *Buffer, runHook bool) error {
	if src.dev == dst.dev {
		panic("hetsim: Transfer within a single device; use device-local copies")
	}
	sm, dm := src.unsafeData(), dst.unsafeData()
	if sm.Rows != dm.Rows || sm.Cols != dm.Cols {
		panic(fmt.Sprintf("hetsim: Transfer shape mismatch %dx%d -> %dx%d", sm.Rows, sm.Cols, dm.Rows, dm.Cols))
	}
	bytes := 8 * sm.Rows * sm.Cols
	// Link-tier selection: endpoints on different nodes cross the slower
	// inter-node interconnect; everything else (including CPU<->GPU on node
	// 0, and every transfer on a flat system) stays on the PCIe tier.
	crossNode := s.cfg.nodes() > 1 && src.dev.node != dst.dev.node
	gbps, latUS := s.cfg.PCIeGBps, s.cfg.PCIeLatencyUS
	if crossNode {
		gbps, latUS = s.cfg.interGBps(), s.cfg.interLatencyUS()
	}
	s.mu.Lock()
	verdict := s.linkFaultVerdict(src.dev, dst.dev)
	corruptSeq := 0
	if verdict.corrupt && verdict.link >= 0 {
		corruptSeq = s.links[verdict.link].n
	}
	s.transferred += int64(bytes)
	if crossNode {
		s.internode += int64(bytes)
	}
	var dt float64
	if gbps > 0 {
		dt = float64(bytes) / (gbps * 1e9) * verdict.factor
		link := [2]int{src.dev.id, dst.dev.id}
		if s.coalesceDepth == 0 || !s.coalescedLinks[link] {
			dt += latUS / 1e6
			if s.coalesceDepth > 0 {
				s.coalescedLinks[link] = true
			}
		}
		s.pcieSimSecs += dt
	}
	s.mu.Unlock()
	if !verdict.drop {
		dm.CopyFrom(sm)
		if verdict.corrupt {
			corruptPayload(dm, corruptSeq)
		}
	}

	// Logical clock: the transfer occupies the PCIe link of each GPU
	// endpoint and is ordered on the executing stream's timeline (the
	// serial timeline for synchronous calls).
	s.clockMu.Lock()
	tl := src.dev.curTL
	if tl == nil {
		tl = dst.dev.curTL
	}
	if tl == nil {
		tl = &s.serial
	}
	start := tl.floor
	for _, d := range [2]*Device{src.dev, dst.dev} {
		if d.kind == GPU && s.linkAvail[d.id] > start {
			start = s.linkAvail[d.id]
		}
	}
	at := start + dt
	tl.floor = at
	for _, d := range [2]*Device{src.dev, dst.dev} {
		if d.kind == GPU {
			s.linkAvail[d.id] = at
		}
	}
	s.clockMu.Unlock()

	s.mu.Lock()
	if s.traceEnabled {
		s.events = append(s.events, Event{Op: "pcie", Device: src.dev.Name() + "->" + dst.dev.Name(), Bytes: bytes, At: at, Seq: eventSeq.Add(1)})
	}
	hook, tr := s.hook, s.tracer
	s.mu.Unlock()
	pcieBytes.Add(uint64(bytes))
	pcieTransfers.Inc()
	if crossNode {
		internodeBytes.Add(uint64(bytes))
	}
	obs.ObservePhaseSeconds(obs.PhasePCIe, dt)
	if tr != nil {
		tr.SimSpan(src.dev.Name()+"->"+dst.dev.Name(), obs.PhasePCIe, "PCIe",
			at, dt, map[string]float64{"bytes": float64(bytes)})
	}
	if verdict.drop {
		// Nothing arrived, so the fault-injection hook has no payload to
		// observe.
		return &LinkError{Link: verdict.link, Op: "pcie", Mode: verdict.mode}
	}
	if runHook && hook != nil {
		hook(src.dev, dst.dev, dm)
	}
	return nil
}

// CoalesceTransfers runs body inside a transfer-coalescing window: every
// PCIe transfer issued within it is billed the per-transfer fixed latency
// only once per (source, destination) device pair; later transfers on the
// same link pay bandwidth cost alone. This models a strided batched DMA —
// one descriptor issued for a whole batch slab instead of one per item —
// which is how the batched drivers (internal/core's *Batch entry points)
// amortize per-dispatch launch cost across batch items. Data movement is
// unchanged: every transfer still copies immediately, in order, with the
// same hooks and byte accounting; only the simulated-latency attribution
// coalesces. Windows nest (the latency map lives until the outermost window
// closes) and the window is closed on every exit path, so a fail-stop abort
// unwinding out of body cannot leave the clock in coalescing mode.
func (s *System) CoalesceTransfers(body func()) {
	s.mu.Lock()
	if s.coalesceDepth == 0 {
		s.coalescedLinks = make(map[[2]int]bool)
	}
	s.coalesceDepth++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.coalesceDepth--
		if s.coalesceDepth == 0 {
			s.coalescedLinks = nil
		}
		s.mu.Unlock()
	}()
	body()
}

// Broadcast transfers src to every destination buffer. Each leg is an
// independent PCIe transfer (so a communication fault can hit one receiver
// and not another, the case §VII.C disambiguates).
func (s *System) Broadcast(src *Buffer, dsts []*Buffer) {
	for _, d := range dsts {
		if d.dev == src.dev {
			// The source device already holds the panel; a self-copy models
			// the local staging MAGMA does and costs no PCIe time.
			d.unsafeData().CopyFrom(src.unsafeData())
			continue
		}
		s.Transfer(src, d)
	}
}

// SimMakespan returns a crude simulated makespan: the maximum device busy
// time plus all PCIe time (transfers on this simulator are serialized).
func (s *System) SimMakespan() float64 {
	max := s.cpu.SimTime()
	for _, g := range s.gpus {
		if t := g.SimTime(); t > max {
			max = t
		}
	}
	return max + s.PCIeSimTime()
}

// DeviceStat is one device's share of the simulated busy time.
type DeviceStat struct {
	Name    string
	SimSecs float64
	Share   float64 // fraction of total device busy time
	// Util is the device's overlap utilization: busy time over the run's
	// logical makespan (TimelineMakespan). Under the serial schedule the
	// utilizations sum to ~1; look-ahead overlap pushes individual devices
	// toward 1 independently.
	Util float64
}

// Utilization summarizes the simulated busy time per device (plus a PCIe
// pseudo-device), for load-balance reports.
func (s *System) Utilization() []DeviceStat {
	stats := []DeviceStat{{Name: "CPU", SimSecs: s.cpu.SimTime()}}
	for _, g := range s.gpus {
		stats = append(stats, DeviceStat{Name: g.Name(), SimSecs: g.SimTime()})
	}
	stats = append(stats, DeviceStat{Name: "PCIe", SimSecs: s.PCIeSimTime()})
	total := 0.0
	for _, st := range stats {
		total += st.SimSecs
	}
	if total > 0 {
		for i := range stats {
			stats[i].Share = stats[i].SimSecs / total
		}
	}
	if mk := s.TimelineMakespan(); mk > 0 {
		for i := range stats {
			stats[i].Util = stats[i].SimSecs / mk
		}
	}
	return stats
}
