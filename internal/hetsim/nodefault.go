package hetsim

// Whole-node faults. The fail-stop layer (failstop.go) loses one device at
// a time; this layer models the cluster-scale failure class — a node
// (power supply, fabric switch, kernel panic) taking every GPU it hosts
// down at once. Node faults fire only at epoch boundaries (NodeEpoch,
// called by the step runtime at the top of each ladder step, where streams
// are joined and device state is quiescent), which models the detection
// granularity of a real cluster health-checker: the coordinator notices a
// dead node between steps, not mid-kernel. The CPU coordinates from node 0
// and survives any node loss — losing the coordinator ends the computation
// by definition and is modeled by the CPU FaultPlan instead.

import (
	"fmt"
	"strconv"

	"ftla/internal/obs"
)

// nodeLostTotal counts fired node faults in the obs default registry,
// labeled by the lost node's index.
var nodeLostTotal = obs.Default().CounterVec(obs.MetricNodeLost,
	"Whole-node losses fired by armed node fault plans, labeled by node.", "node")

// NodeFaultPlan arms a whole-node loss (see System.ArmNodeFault). The
// zero value fires at the very next epoch boundary.
type NodeFaultPlan struct {
	// AfterEpochs delays the loss until this many NodeEpoch boundaries
	// have passed; 0 fires at the first one. This is how a chaos harness
	// kills a node mid-factorization deterministically.
	AfterEpochs int
}

// String describes the armed plan, e.g. "node loss after 3 epochs".
func (p NodeFaultPlan) String() string {
	return fmt.Sprintf("node loss after %d epochs", p.AfterEpochs)
}

// NodeLostError reports a whole-node loss the computation could not absorb
// (no erasure-coded redundancy available, or some parity group has already
// lost more columns than its surviving parities can solve for). Runs that
// reconstruct the lost columns from parity continue degraded and never
// surface this error.
type NodeLostError struct {
	// Node is the lost node's index.
	Node int
	// GPUs is how many devices the node took down.
	GPUs int
	// Op names the phase that gave up ("reconstruct", "epoch").
	Op string
}

// Error describes the loss.
func (e *NodeLostError) Error() string {
	return fmt.Sprintf("hetsim: node N%d lost (%d GPUs, op %s)", e.Node, e.GPUs, e.Op)
}

// ArmNodeFault arms (or, with a second call, replaces) a node fault plan
// on the given node of the topology. Arming a node that is out of range
// panics; Reset disarms every plan and revives lost nodes.
func (s *System) ArmNodeFault(node int, plan NodeFaultPlan) {
	if node < 0 || node >= s.cfg.nodes() {
		panic(fmt.Sprintf("hetsim: ArmNodeFault on node %d of a %d-node system", node, s.cfg.nodes()))
	}
	s.nodeMu.Lock()
	if s.nodePlans == nil {
		s.nodePlans = make(map[int]NodeFaultPlan)
	}
	s.nodePlans[node] = plan
	s.nodeMu.Unlock()
}

// NodeEpoch advances the node-fault epoch counter and fires every armed
// plan that has come due, in ascending node order — two plans armed for the
// same epoch model a correlated burst (shared rack power, a fabric
// partition) and are reported as ONE simultaneous multi-node loss, which is
// exactly the case an r ≥ 2 erasure code exists to absorb. Firing marks
// every GPU of each fired node lost — without panicking: the caller is the
// coordinator deciding how to react — and returns the lost nodes' indices,
// empty when nothing fired. Callers are expected to invoke it once per
// ladder step at a quiescent point.
func (s *System) NodeEpoch() []int {
	s.nodeMu.Lock()
	s.nodeEpoch++
	epoch := s.nodeEpoch
	var fired []int
	for node := 0; node < s.cfg.nodes(); node++ {
		plan, ok := s.nodePlans[node]
		if !ok || epoch <= plan.AfterEpochs {
			continue
		}
		fired = append(fired, node)
		delete(s.nodePlans, node)
		s.nodesLost[node] = true
	}
	s.nodeMu.Unlock()
	for _, node := range fired {
		for _, g := range s.gpus {
			if g.node != node {
				continue
			}
			g.fmu.Lock()
			g.lost = true
			g.fmu.Unlock()
		}
		nodeLostTotal.With(strconv.Itoa(node)).Inc()
	}
	return fired
}

// NodeLost reports whether the node has been lost since the last Reset.
func (s *System) NodeLost(node int) bool {
	s.nodeMu.Lock()
	defer s.nodeMu.Unlock()
	return node >= 0 && node < len(s.nodesLost) && s.nodesLost[node]
}

// NodesLost returns how many nodes have been lost since the last Reset.
func (s *System) NodesLost() int {
	s.nodeMu.Lock()
	defer s.nodeMu.Unlock()
	n := 0
	for _, lost := range s.nodesLost {
		if lost {
			n++
		}
	}
	return n
}
