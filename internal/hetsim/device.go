// Package hetsim simulates a heterogeneous compute node: one CPU and a set
// of GPU devices connected by PCIe links. It substitutes for the CUDA/
// MAGMA platform of the paper (see DESIGN.md §1).
//
// The simulation is structural, not merely temporal: each device owns a
// private memory space (matrices allocated on a device can only be touched
// through that device's kernel API), data moves between devices only
// through explicit Transfer/Broadcast calls on PCIe links, and device
// kernels really execute in parallel on a per-device goroutine worker pool.
// Fault-injection hooks are exposed at exactly the points the paper's fault
// model names: kernel outputs (computation errors), resident buffers
// (memory errors), and link transfers (communication errors).
package hetsim

import (
	"fmt"
	"sync"

	"ftla/internal/blas"
	"ftla/internal/matrix"
)

// Kind distinguishes the CPU from GPU devices.
type Kind int

// Device kinds.
const (
	CPU Kind = iota
	GPU
)

// String returns "CPU" or "GPU".
func (k Kind) String() string {
	if k == CPU {
		return "CPU"
	}
	return "GPU"
}

// Device is one compute unit of the simulated node. All kernel methods
// check buffer residency, so an algorithm that forgets a PCIe transfer
// fails loudly instead of silently reading remote memory.
type Device struct {
	kind    Kind
	id      int // 0-based among GPUs; -1 for the CPU
	node    int // node index of the topology; 0 for the CPU and flat systems
	workers int
	gflops  float64 // nominal throughput for the simulated clock

	mu      sync.Mutex
	simSecs float64 // accumulated simulated busy time
	sys     *System

	// Logical-clock state, guarded by sys.clockMu: avail is the logical
	// time the device next becomes free; curTL is the timeline of the
	// stream currently executing on the device (nil = the serial
	// timeline). See stream.go.
	avail float64
	curTL *timeline

	// Fail-stop fault state (see failstop.go), guarded by its own mutex so
	// the gate never contends with the simulated clock.
	fmu  sync.Mutex
	plan *FaultPlan
	ops  int     // operations gated since the plan was armed
	lost bool    // device has crashed or hung; all further ops abort
	slow float64 // straggler sim-time multiplier; 0 = nominal speed
}

// Kind returns the device kind.
func (d *Device) Kind() Kind { return d.kind }

// ID returns the GPU index, or -1 for the CPU.
func (d *Device) ID() int { return d.id }

// Index returns the device's structured GPU index (-1 for the CPU) — the
// identity consumers should classify on instead of parsing Name, which is
// a display string that changes shape with the topology ("GPU2" on a flat
// system, "N1/GPU2" on a multi-node one).
func (d *Device) Index() int { return d.id }

// Node returns the node the device lives on (0 for the CPU, which
// coordinates from node 0, and for every device of a flat system).
func (d *Device) Node() int { return d.node }

// Name returns a human-readable device name: "CPU", "GPU2" on a flat
// single-node system, or "N1/GPU2" on a multi-node topology.
func (d *Device) Name() string {
	if d.kind == CPU {
		return "CPU"
	}
	if d.sys != nil && d.sys.cfg.nodes() > 1 {
		return fmt.Sprintf("N%d/GPU%d", d.node, d.id)
	}
	return fmt.Sprintf("GPU%d", d.id)
}

// Workers returns the size of the device's parallel worker pool.
func (d *Device) Workers() int { return d.workers }

// SimTime returns the device's accumulated simulated busy seconds.
func (d *Device) SimTime() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.simSecs
}

func (d *Device) resetSim() {
	d.mu.Lock()
	d.simSecs = 0
	d.mu.Unlock()
}

// account charges one completed kernel to the simulated clocks: busy time
// (addSim), the logical [start, end] interval (advanceClock), and the
// system trace, stamped with the logical completion time.
func (d *Device) account(op string, flops float64) {
	dur := d.addSim(flops)
	_, end := d.advanceClock(dur)
	d.sys.trace(op, d, flops, end, dur)
}

// addSim advances the device clock by the kernel's simulated duration and
// returns that duration (zero when the device has no nominal speed). A
// triggered straggler plan multiplies the duration by its Slowdown.
func (d *Device) addSim(flops float64) float64 {
	if d.gflops <= 0 {
		return 0
	}
	secs := flops / (d.gflops * 1e9)
	d.fmu.Lock()
	if d.slow > 1 {
		secs *= d.slow
	}
	d.fmu.Unlock()
	d.mu.Lock()
	d.simSecs += secs
	d.mu.Unlock()
	return secs
}

// Buffer is a matrix resident in one device's memory.
type Buffer struct {
	dev *Device
	m   *matrix.Dense
}

// Device returns the owning device.
func (b *Buffer) Device() *Device { return b.dev }

// Rows returns the row count of the resident matrix.
func (b *Buffer) Rows() int { return b.m.Rows }

// Cols returns the column count of the resident matrix.
func (b *Buffer) Cols() int { return b.m.Cols }

// Alloc allocates a zeroed r-by-c matrix in the device's memory.
func (d *Device) Alloc(r, c int) *Buffer {
	return &Buffer{dev: d, m: matrix.NewDense(r, c)}
}

// AllocFrom allocates a device buffer initialized with a copy of m. It
// models a host-side upload for the CPU and is rejected for GPUs, which
// must receive data over PCIe.
func (d *Device) AllocFrom(m *matrix.Dense) *Buffer {
	if d.kind != CPU {
		panic("hetsim: GPU buffers must be filled via Transfer, not AllocFrom")
	}
	return &Buffer{dev: d, m: m.Clone()}
}

// Access returns the resident matrix for direct manipulation by code
// executing "on" the owning device. Callers assert which device they run
// on; a mismatch is a programming error in the algorithm's data movement
// and panics.
func (b *Buffer) Access(d *Device) *matrix.Dense {
	if b.dev != d {
		panic(fmt.Sprintf("hetsim: buffer resident on %s accessed from %s", b.dev.Name(), d.Name()))
	}
	return b.m
}

// View returns a sub-buffer aliasing a rectangular region of b.
func (b *Buffer) View(i, j, r, c int) *Buffer {
	return &Buffer{dev: b.dev, m: b.m.View(i, j, r, c)}
}

// unsafeData exposes the matrix without a residency check; it is used only
// by System transfer internals and by fault injection (which models
// physics, not an algorithm's data movement).
func (b *Buffer) unsafeData() *matrix.Dense { return b.m }

// UnsafeData exposes the resident matrix to fault injectors and test
// assertions without a residency check. Algorithm code must use Access.
func (b *Buffer) UnsafeData() *matrix.Dense { return b.m }

// --- Device kernels -------------------------------------------------------
//
// Each kernel validates residency of every operand, runs the parallel BLAS
// on the device's worker pool, advances the simulated clock by the kernel's
// flop count, and reports the operation to the system trace.

// Gemm computes C = alpha·op(A)·op(B) + beta·C on the device.
func (d *Device) Gemm(transA, transB bool, alpha float64, a, b *Buffer, beta float64, c *Buffer) {
	d.gate("gemm")
	am, bm, cm := a.Access(d), b.Access(d), c.Access(d)
	k := am.Cols
	if transA {
		k = am.Rows
	}
	blas.GemmP(d.workers, transA, transB, alpha, am, bm, beta, cm)
	flops := 2 * float64(cm.Rows) * float64(cm.Cols) * float64(k)
	d.account("gemm", flops)
}

// Trsm solves a triangular system with multiple right-hand sides on the
// device (see blas.Trsm).
func (d *Device) Trsm(side blas.Side, lower, trans, unit bool, alpha float64, a, b *Buffer) {
	d.gate("trsm")
	am, bm := a.Access(d), b.Access(d)
	blas.TrsmP(d.workers, side, lower, trans, unit, alpha, am, bm)
	flops := float64(am.Rows) * float64(am.Rows) * float64(bm.Rows*bm.Cols) / float64(am.Rows)
	d.account("trsm", flops)
}

// Syrk performs a symmetric rank-k update on the device (see blas.Syrk).
func (d *Device) Syrk(lower, trans bool, alpha float64, a *Buffer, beta float64, c *Buffer) {
	d.gate("syrk")
	am, cm := a.Access(d), c.Access(d)
	blas.SyrkP(d.workers, lower, trans, alpha, am, beta, cm)
	k := am.Cols
	if trans {
		k = am.Rows
	}
	flops := float64(cm.Rows) * float64(cm.Cols) * float64(k)
	d.account("syrk", flops)
}

// Run executes an arbitrary kernel body on the device, charging the given
// flop count to the simulated clock. The body receives the device's worker
// count so it can parallelize. It is the escape hatch for panel kernels
// (POTF2/GETF2/GEQR2) and checksum kernels. Like every kernel it passes
// the fail-stop gate: on a crashed device, or under a done bound context,
// it aborts with a typed panic recoverable via RecoverAbort (RunCtx is the
// error-returning variant).
func (d *Device) Run(name string, flops float64, body func(workers int)) {
	d.gate(name)
	body(d.workers)
	d.account(name, flops)
}
