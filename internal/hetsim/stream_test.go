package hetsim

import (
	"errors"
	"testing"
)

// TestStreamExecutesInLaunchOrder: closures on one stream run in launch
// order, and a recorded event completes only after everything launched
// before it.
func TestStreamExecutesInLaunchOrder(t *testing.T) {
	s := New(DefaultConfig(1))
	g := s.GPU(0)
	st := g.NewStream()
	defer st.Close()

	var order []int
	for i := 0; i < 8; i++ {
		i := i
		st.Launch("step", func() { order = append(order, i) })
	}
	st.Sync()
	if len(order) != 8 {
		t.Fatalf("ran %d of 8 launches", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("launch order violated: %v", order)
		}
	}
}

// TestStreamOverlapShrinksMakespan: the same kernels cost the serial sum
// when run synchronously but only the per-stream maximum when spread over
// concurrent streams — the clock models true overlap.
func TestStreamOverlapShrinksMakespan(t *testing.T) {
	const flops = 5e8 // 0.5 ms at the default 1000 GFLOPS
	serial := func() float64 {
		s := New(DefaultConfig(2))
		for g := 0; g < 2; g++ {
			for i := 0; i < 4; i++ {
				s.GPU(g).Run("k", flops, func(int) {})
			}
		}
		return s.TimelineMakespan()
	}()

	s := New(DefaultConfig(2))
	var evs []*StreamEvent
	for g := 0; g < 2; g++ {
		st := s.GPU(g).NewStream()
		defer st.Close()
		for i := 0; i < 4; i++ {
			st.Launch("k", func() { st.dev.Run("k", flops, func(int) {}) })
		}
		evs = append(evs, st.Record())
	}
	for _, ev := range evs {
		ev.Wait()
	}
	overlapped := s.TimelineMakespan()

	if overlapped >= serial {
		t.Fatalf("overlap did not shrink makespan: %.6f vs serial %.6f", overlapped, serial)
	}
	// Two equal streams halve the makespan exactly on the logical clock.
	if want := serial / 2; overlapped != want {
		t.Fatalf("overlapped makespan %.6f, want %.6f (half the serial sum)", overlapped, want)
	}
}

// TestStreamInheritsSerialFrontier: work launched after a synchronous
// operation cannot logically start before it, and Wait folds the stream
// frontier back into the serial timeline.
func TestStreamInheritsSerialFrontier(t *testing.T) {
	s := New(DefaultConfig(1))
	g := s.GPU(0)
	g.Run("pre", 1e9, func(int) {}) // 1 ms on the serial timeline

	st := g.NewStream()
	defer st.Close()
	st.Launch("k", func() { g.Run("k", 1e9, func(int) {}) })
	ev := st.Record()
	ev.Wait()
	if ev.At() != 2e-3 {
		t.Fatalf("stream op ignored the serial frontier: event at %.6f, want 0.002", ev.At())
	}

	// The host has joined: a later synchronous op starts after the stream.
	g.Run("post", 1e9, func(int) {})
	if mk := s.TimelineMakespan(); mk != 3e-3 {
		t.Fatalf("serial timeline did not absorb the stream frontier: makespan %.6f, want 0.003", mk)
	}
}

// TestStreamAbortRepanicsAtWait: a fail-stop abort inside a launched
// closure poisons the stream (the rest of the queue is skipped) and is
// re-raised at Wait, where RecoverAbort yields the usual typed error.
func TestStreamAbortRepanicsAtWait(t *testing.T) {
	s := New(DefaultConfig(1))
	g := s.GPU(0)
	s.ArmFault(g, FaultPlan{Mode: FaultCrash, AfterOps: 1})

	st := g.NewStream()
	defer st.Close()
	ranAfter := false
	st.Launch("ok", func() { g.Run("k", 10, func(int) {}) })
	st.Launch("boom", func() { g.Run("k", 10, func(int) {}) })
	st.Launch("skipped", func() { ranAfter = true })
	ev := st.Record()

	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = RecoverAbort(r)
			}
		}()
		ev.Wait()
		return nil
	}()
	var lost *DeviceLostError
	if !errors.As(err, &lost) {
		t.Fatalf("err = %v, want DeviceLostError", err)
	}
	if lost.Device != "GPU0" {
		t.Fatalf("lost device = %q", lost.Device)
	}
	if ranAfter {
		t.Fatal("queue entry after the abort still executed")
	}
}

// TestStreamCloseNeverPanics: Close drains a poisoned stream without
// re-raising the captured abort, so deferred cleanup is safe.
func TestStreamCloseNeverPanics(t *testing.T) {
	s := New(DefaultConfig(1))
	g := s.GPU(0)
	s.ArmFault(g, FaultPlan{Mode: FaultCrash})
	st := g.NewStream()
	st.Launch("boom", func() { g.Run("k", 10, func(int) {}) })
	st.Close() // must not panic and must not deadlock
}

// TestStreamEventSeqUnderConcurrency: trace events emitted from concurrent
// streams carry unique, strictly increasing process-order sequence numbers
// even when their logical completion times coincide.
func TestStreamEventSeqUnderConcurrency(t *testing.T) {
	s := New(DefaultConfig(2))
	s.EnableTrace(true)
	var evs []*StreamEvent
	for g := 0; g < 2; g++ {
		st := s.GPU(g).NewStream()
		defer st.Close()
		dev := s.GPU(g)
		for i := 0; i < 8; i++ {
			st.Launch("k", func() { dev.Run("k", 1e6, func(int) {}) })
		}
		evs = append(evs, st.Record())
	}
	for _, ev := range evs {
		ev.Wait()
	}
	seen := map[uint64]bool{}
	for _, e := range s.Events() {
		if seen[e.Seq] {
			t.Fatalf("duplicate event sequence number %d", e.Seq)
		}
		seen[e.Seq] = true
	}
	if len(seen) != 16 {
		t.Fatalf("traced %d events, want 16", len(seen))
	}
}
