package hetsim

// Fail-stop and performance faults. The soft-error model of internal/fault
// corrupts *values* and leaves the machine running; this layer models the
// complementary failure class classic ABFT work assumes as the baseline
// threat: a device falls off the bus (crash), a kernel never returns
// (hang), or a device's throughput collapses (straggler). Faults are armed
// per device with ArmFault and fire at kernel/transfer entry; a crashed or
// hung device stays dead until Reset, which models the node being repaired
// and returned to service.
//
// Abort plumbing: kernels have no error returns (an algorithm's dataflow
// would drown in them), so a firing fault unwinds the factorization with a
// typed panic that RecoverAbort converts back into an error at the driver
// boundary — the same pattern encoding/json uses for deep abort paths. The
// context-aware entry points RunCtx and TransferCtx do the conversion
// themselves and return the typed error directly.

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// FaultMode selects the fail-stop/performance fault a FaultPlan arms.
type FaultMode int

// Fail-stop fault modes.
const (
	// FaultNone arms nothing; the zero FaultPlan is inert.
	FaultNone FaultMode = iota
	// FaultCrash makes the device fail-stop: the triggering operation and
	// every subsequent Run/Transfer on the device abort with a
	// DeviceLostError.
	FaultCrash
	// FaultHang makes the triggering operation block until the system's
	// bound context (see System.Bind) is done, then abort with a
	// DeviceHungError; the device counts as lost afterwards. With no bound
	// context the hang degrades to an immediate DeviceHungError — the
	// simulator refuses to actually deadlock its host process.
	FaultHang
	// FaultStraggler keeps the device running but multiplies its simulated
	// busy time by Slowdown and stalls each operation by Stall of wall
	// time — a PCIe link gone bad or a thermally throttled GPU.
	FaultStraggler
)

// String returns "none", "crash", "hang", or "straggler".
func (m FaultMode) String() string {
	switch m {
	case FaultNone:
		return "none"
	case FaultCrash:
		return "crash"
	case FaultHang:
		return "hang"
	default:
		return "straggler"
	}
}

// FaultPlan arms one fail-stop/performance fault on a device (see
// System.ArmFault). The zero value is inert.
type FaultPlan struct {
	// Mode selects what happens when the plan triggers.
	Mode FaultMode
	// AfterOps delays the trigger until this many kernel executions or
	// transfers have touched the device; 0 fires on the very next
	// operation. This is how a chaos harness crashes a device
	// mid-factorization deterministically.
	AfterOps int
	// Slowdown multiplies the device's simulated busy time once a
	// straggler plan has triggered (values <= 1 leave the clock alone).
	Slowdown float64
	// Stall is wall-clock time added to every operation once a straggler
	// plan has triggered. The stall is interruptible: a bound context that
	// expires mid-stall aborts the operation with the context's error.
	Stall time.Duration
}

// String describes the armed fault, e.g. "crash after 12 ops" or
// "straggler x4.0 +1ms/op".
func (p FaultPlan) String() string {
	switch p.Mode {
	case FaultNone:
		return "none"
	case FaultStraggler:
		if p.Stall == 0 {
			return fmt.Sprintf("straggler x%.1f after %d ops", p.Slowdown, p.AfterOps)
		}
		return fmt.Sprintf("straggler x%.1f +%v/op after %d ops", p.Slowdown, p.Stall, p.AfterOps)
	default:
		return fmt.Sprintf("%s after %d ops", p.Mode, p.AfterOps)
	}
}

// DeviceLostError reports a fail-stop device crash: the named device is
// gone and every further operation on it fails with this error until the
// system is Reset.
type DeviceLostError struct {
	// Device is the lost device's name ("GPU2", "N1/GPU2", "CPU").
	Device string
	// Op is the kernel or transfer that observed the loss.
	Op string
	// GPU is the structured GPU index of the lost device (-1 for the CPU):
	// the identity consumers should classify on, rather than parsing the
	// Device display name.
	GPU int
	// Node is the node the lost device lived on (0 on flat systems).
	Node int
}

// Error describes the loss.
func (e *DeviceLostError) Error() string {
	return fmt.Sprintf("hetsim: device %s lost (op %s)", e.Device, e.Op)
}

// DeviceHungError reports an armed hang resolved by context expiry: the
// operation blocked until the bound context fired. The device counts as
// lost afterwards (a hung kernel is never coming back).
type DeviceHungError struct {
	// Device is the hung device's name; Op the operation that hung.
	Device string
	Op     string
	// GPU is the structured GPU index of the hung device (-1 for the CPU)
	// and Node the node it lived on — see DeviceLostError.
	GPU  int
	Node int
	// Cause is the bound context's error (nil when no context was bound
	// and the hang degraded to an immediate failure).
	Cause error
}

// Error describes the hang.
func (e *DeviceHungError) Error() string {
	if e.Cause == nil {
		return fmt.Sprintf("hetsim: device %s hung in %s (no context bound)", e.Device, e.Op)
	}
	return fmt.Sprintf("hetsim: device %s hung in %s: %v", e.Device, e.Op, e.Cause)
}

// Unwrap exposes the context error so errors.Is(err, context.DeadlineExceeded)
// classifies a hang caught by an attempt deadline.
func (e *DeviceHungError) Unwrap() error { return e.Cause }

// IsFailStop reports whether err is (or wraps) a fail-stop fault — a
// device loss or hang — as opposed to a plain context cancellation.
func IsFailStop(err error) bool {
	var lost *DeviceLostError
	var hung *DeviceHungError
	return errors.As(err, &lost) || errors.As(err, &hung)
}

// abortPanic carries a typed abort error through kernel call stacks that
// have no error returns; RecoverAbort unwraps it at the driver boundary.
type abortPanic struct{ err error }

// RecoverAbort converts a recovered panic value back into the abort error
// a firing fail-stop fault (or bound-context expiry) raised inside a
// kernel or transfer. Call it on recover() in a deferred function at the
// factorization driver boundary:
//
//	defer func() {
//		if e := hetsim.RecoverAbort(recover()); e != nil {
//			err = e
//		}
//	}()
//
// A nil input returns nil; a non-abort panic value is re-raised untouched,
// so programming errors keep panicking.
func RecoverAbort(r any) error {
	if r == nil {
		return nil
	}
	if a, ok := r.(*abortPanic); ok {
		return a.err
	}
	panic(r)
}

// ArmFault arms (or, with a zero plan, disarms) a fail-stop fault plan on
// dev, which must belong to this system. Arming replaces any previous plan
// and revives a previously crashed device; Reset disarms everything.
func (s *System) ArmFault(dev *Device, plan FaultPlan) {
	if dev.sys != s {
		panic("hetsim: ArmFault on a device of a different system")
	}
	dev.fmu.Lock()
	dev.ops = 0
	dev.lost = false
	if plan.Mode == FaultNone {
		dev.plan = nil
	} else {
		p := plan
		dev.plan = &p
	}
	dev.fmu.Unlock()
}

// Bind installs the abort context every subsequent kernel and transfer
// consults: when ctx is done, the next operation on any device aborts
// promptly with ctx's error instead of running to completion (and an armed
// hang blocks on exactly this context). Bind(nil) unbinds; Reset also
// unbinds. The binding is a per-run attachment like the transfer hook.
func (s *System) Bind(ctx context.Context) {
	s.boundCtx.Store(&ctx)
}

// ctx returns the bound abort context, nil when none is bound.
func (s *System) ctx() context.Context {
	if p := s.boundCtx.Load(); p != nil {
		return *p
	}
	return nil
}

// gate is the fail-stop checkpoint every kernel and transfer passes
// through on entry: it aborts if the bound context is done, fires an armed
// fault plan whose AfterOps threshold is reached, and applies straggler
// stalls. It panics with an abortPanic; callers without error returns let
// it unwind to the driver's RecoverAbort.
func (d *Device) gate(op string) {
	d.gateCtx(d.sys.ctx(), op)
}

func (d *Device) gateCtx(ctx context.Context, op string) {
	d.fmu.Lock()
	if d.lost {
		d.fmu.Unlock()
		panic(&abortPanic{&DeviceLostError{Device: d.Name(), Op: op, GPU: d.id, Node: d.node}})
	}
	p := d.plan
	triggered := false
	if p != nil {
		triggered = d.ops >= p.AfterOps
		d.ops++
		if triggered {
			switch p.Mode {
			case FaultCrash, FaultHang:
				// Crash now; a hang also leaves the device dead once the
				// blocked operation resolves.
				d.lost = true
			case FaultStraggler:
				d.slow = p.Slowdown
			}
		}
	}
	d.fmu.Unlock()
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			panic(&abortPanic{err})
		}
	}
	if !triggered {
		return
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done() // nil for Background-like contexts: no deadline
	}
	switch p.Mode {
	case FaultCrash:
		panic(&abortPanic{&DeviceLostError{Device: d.Name(), Op: op, GPU: d.id, Node: d.node}})
	case FaultHang:
		if done == nil {
			// No deadline to rescue us; fail fast instead of deadlocking
			// the host process.
			panic(&abortPanic{&DeviceHungError{Device: d.Name(), Op: op, GPU: d.id, Node: d.node}})
		}
		<-done
		panic(&abortPanic{&DeviceHungError{Device: d.Name(), Op: op, GPU: d.id, Node: d.node, Cause: ctx.Err()}})
	case FaultStraggler:
		if p.Stall > 0 {
			if done == nil {
				time.Sleep(p.Stall)
				return
			}
			t := time.NewTimer(p.Stall)
			select {
			case <-done:
				t.Stop()
				panic(&abortPanic{ctx.Err()})
			case <-t.C:
			}
		}
	}
}

// RunCtx is Run with cooperative abort: the kernel consults ctx (in
// addition to any system-bound context) and returns a typed error — a
// DeviceLostError, DeviceHungError, or ctx's own error — instead of
// executing when the device has failed or the context is done. It is the
// explicit-context entry point for callers outside the factorization
// drivers (which Bind a context once and let kernels panic to the driver's
// RecoverAbort).
func (d *Device) RunCtx(ctx context.Context, name string, flops float64, body func(workers int)) (err error) {
	defer func() {
		if e := RecoverAbort(recover()); e != nil {
			err = e
		}
	}()
	d.gateCtx(ctx, name)
	body(d.workers)
	d.account(name, flops)
	return nil
}

// TransferCtx is Transfer with cooperative abort: it consults ctx before
// moving data and returns the typed fail-stop or context error instead of
// panicking. See RunCtx.
func (s *System) TransferCtx(ctx context.Context, src, dst *Buffer) (err error) {
	defer func() {
		if e := RecoverAbort(recover()); e != nil {
			err = e
		}
	}()
	src.dev.gateCtx(ctx, "pcie")
	dst.dev.gateCtx(ctx, "pcie")
	s.transferGated(src, dst)
	return nil
}

// Lost reports whether the device has fail-stopped (crashed or hung) since
// the last Reset/ArmFault.
func (d *Device) Lost() bool {
	d.fmu.Lock()
	defer d.fmu.Unlock()
	return d.lost
}

// resetFault disarms any fault plan and revives the device.
func (d *Device) resetFault() {
	d.fmu.Lock()
	d.plan = nil
	d.ops = 0
	d.lost = false
	d.slow = 0
	d.fmu.Unlock()
}
