package hetsim

import (
	"context"
	"errors"
	"testing"
	"time"

	"ftla/internal/matrix"
)

// TestReliableBitIdenticalWithoutFaults pins the zero-fault contract:
// TransferReliable moves exactly the bytes Transfer moves and never
// rewrites the payload.
func TestReliableBitIdenticalWithoutFaults(t *testing.T) {
	s := failSys(t, 2)
	src := s.CPU().AllocFrom(matrix.Random(16, 12, matrix.NewRNG(7)))
	raw := s.GPU(0).Alloc(16, 12)
	rel := s.GPU(1).Alloc(16, 12)

	s.Transfer(src, raw)
	s.TransferReliable(src, rel)

	if !raw.unsafeData().Equal(rel.unsafeData()) {
		t.Fatal("TransferReliable payload differs from Transfer payload with no faults armed")
	}
	if !rel.unsafeData().Equal(src.unsafeData()) {
		t.Fatal("payload differs from source")
	}
}

// TestReliableChargesChecksumTime pins the honest-cost contract: both
// checksum passes land on the simulated clocks of the devices that
// compute them.
func TestReliableChargesChecksumTime(t *testing.T) {
	s := failSys(t, 1)
	src := s.CPU().AllocFrom(matrix.Random(32, 32, matrix.NewRNG(1)))
	dst := s.GPU(0).Alloc(32, 32)

	cpu0, gpu0 := s.CPU().SimTime(), s.GPU(0).SimTime()
	s.TransferReliable(src, dst)
	if s.CPU().SimTime() <= cpu0 {
		t.Fatal("source checksum pass was free on the CPU clock")
	}
	if s.GPU(0).SimTime() <= gpu0 {
		t.Fatal("arrival checksum pass was free on the GPU clock")
	}
	if s.PCIeSimTime() <= 0 {
		t.Fatal("transfer billed no PCIe time")
	}
}

// TestCorruptRawTransferDeliversDamage pins the raw path: a corrupt plan
// silently flips a bit and Transfer hands the damage to the receiver.
func TestCorruptRawTransferDeliversDamage(t *testing.T) {
	s := failSys(t, 1)
	s.ArmLinkFault(0, LinkFaultPlan{Mode: LinkCorrupt})
	src := s.CPU().AllocFrom(matrix.Random(8, 8, matrix.NewRNG(3)))
	dst := s.GPU(0).Alloc(8, 8)

	before := linkFaults.With("corrupt").Value()
	s.Transfer(src, dst)
	if dst.unsafeData().Equal(src.unsafeData()) {
		t.Fatal("armed corrupt fault delivered a clean payload")
	}
	if linkFaults.With("corrupt").Value() != before+1 {
		t.Fatal("corrupt firing did not tick the link-fault metric")
	}
}

// TestCorruptAbsorbedByReliable pins the protocol: the checksum detects
// the flipped bit, the retransmission lands between firings, and the
// caller sees a clean payload plus a ticked retransmit counter.
func TestCorruptAbsorbedByReliable(t *testing.T) {
	s := failSys(t, 1)
	s.ArmLinkFault(0, LinkFaultPlan{Mode: LinkCorrupt})
	src := s.CPU().AllocFrom(matrix.Random(8, 8, matrix.NewRNG(3)))
	dst := s.GPU(0).Alloc(8, 8)

	before := transferRetransmits.Value()
	s.TransferReliable(src, dst)
	if !dst.unsafeData().Equal(src.unsafeData()) {
		t.Fatal("TransferReliable delivered a corrupted payload")
	}
	if transferRetransmits.Value() <= before {
		t.Fatal("absorbing the corruption issued no retransmission")
	}
}

// TestAfterTransfersGate pins the deterministic trigger: the fault waits
// out exactly AfterTransfers clean transfers, like FaultPlan.AfterOps.
func TestAfterTransfersGate(t *testing.T) {
	s := failSys(t, 1)
	s.ArmLinkFault(0, LinkFaultPlan{Mode: LinkCorrupt, AfterTransfers: 2})
	src := s.CPU().AllocFrom(matrix.Random(4, 4, matrix.NewRNG(5)))
	dst := s.GPU(0).Alloc(4, 4)

	for i := 0; i < 2; i++ {
		s.Transfer(src, dst)
		if !dst.unsafeData().Equal(src.unsafeData()) {
			t.Fatalf("transfer %d corrupted before the gate", i)
		}
	}
	s.Transfer(src, dst)
	if dst.unsafeData().Equal(src.unsafeData()) {
		t.Fatal("third transfer passed clean through an AfterTransfers=2 corrupt plan")
	}
}

// TestEveryRefiresAtFixedRate pins the Every semantics: one firing at the
// gate, then one per Every transfers, with clean transfers in between.
func TestEveryRefiresAtFixedRate(t *testing.T) {
	s := failSys(t, 1)
	s.ArmLinkFault(0, LinkFaultPlan{Mode: LinkCorrupt, Every: 3})
	src := s.CPU().AllocFrom(matrix.Random(4, 4, matrix.NewRNG(9)))
	dst := s.GPU(0).Alloc(4, 4)

	dirty := 0
	for i := 0; i < 7; i++ {
		s.Transfer(src, dst)
		if !dst.unsafeData().Equal(src.unsafeData()) {
			dirty++
		}
	}
	// Firings at transfers 1, 4, 7 of 7.
	if dirty != 3 {
		t.Fatalf("dirty transfers = %d, want 3 (gate + every 3rd)", dirty)
	}
}

// TestDropReturnsTypedErrorAndBillsWire pins the drop mode on the raw
// path: a typed *LinkError with the link's GPU index, and the wasted wire
// time still billed.
func TestDropReturnsTypedErrorAndBillsWire(t *testing.T) {
	s := failSys(t, 2)
	s.ArmLinkFault(1, LinkFaultPlan{Mode: LinkDrop})
	src := s.CPU().AllocFrom(matrix.Random(8, 8, matrix.NewRNG(2)))
	dst := s.GPU(1).Alloc(8, 8)

	err := s.TransferCtx(context.Background(), src, dst)
	var le *LinkError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want *LinkError", err)
	}
	if le.Link != 1 || le.Mode != LinkDrop || le.Retries != 0 {
		t.Fatalf("LinkError = %+v", le)
	}
	if s.PCIeSimTime() <= 0 {
		t.Fatal("dropped transfer billed no wire time")
	}
	var z float64
	for i := 0; i < 8; i++ {
		for _, v := range dst.unsafeData().Row(i) {
			z += v
		}
	}
	if z != 0 {
		t.Fatal("dropped transfer still delivered payload bytes")
	}
}

// TestDropAbsorbedByReliable pins retransmission after a one-shot drop.
func TestDropAbsorbedByReliable(t *testing.T) {
	s := failSys(t, 1)
	s.ArmLinkFault(0, LinkFaultPlan{Mode: LinkDrop})
	src := s.CPU().AllocFrom(matrix.Random(8, 8, matrix.NewRNG(4)))
	dst := s.GPU(0).Alloc(8, 8)

	s.TransferReliable(src, dst)
	if !dst.unsafeData().Equal(src.unsafeData()) {
		t.Fatal("payload wrong after retransmitted drop")
	}
}

// TestFlapHealsWithinBudget pins the flap lifecycle: Count consecutive
// failures, then the plan clears itself and the link carries traffic
// again without re-arming.
func TestFlapHealsWithinBudget(t *testing.T) {
	s := failSys(t, 1)
	s.ArmLinkFault(0, LinkFaultPlan{Mode: LinkFlap, Count: 2})
	src := s.CPU().AllocFrom(matrix.Random(8, 8, matrix.NewRNG(6)))
	dst := s.GPU(0).Alloc(8, 8)

	s.TransferReliable(src, dst) // absorbs both failures within the budget of 3
	if !dst.unsafeData().Equal(src.unsafeData()) {
		t.Fatal("payload wrong after flap healed")
	}
	s.mu.Lock()
	healed := s.links[0].plan == nil
	s.mu.Unlock()
	if !healed {
		t.Fatal("flap plan did not clear itself after Count failures")
	}
	// The healed link is clean for raw transfers too.
	dst2 := s.GPU(0).Alloc(8, 8)
	if err := s.TransferCtx(context.Background(), src, dst2); err != nil {
		t.Fatalf("healed link errored: %v", err)
	}
}

// TestFlapExhaustsRetransmitBudget pins the exhaustion path: a flap
// longer than the budget surfaces a typed *LinkError carrying the budget
// in Retries, through TransferReliableCtx's recover plumbing.
func TestFlapExhaustsRetransmitBudget(t *testing.T) {
	s := failSys(t, 2)
	s.ArmLinkFault(1, LinkFaultPlan{Mode: LinkFlap, Count: 20})
	src := s.CPU().AllocFrom(matrix.Random(8, 8, matrix.NewRNG(8)))
	dst := s.GPU(1).Alloc(8, 8)

	err := s.TransferReliableCtx(context.Background(), src, dst)
	var le *LinkError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want *LinkError", err)
	}
	if le.Link != 1 || le.Retries != DefaultMaxRetransmits {
		t.Fatalf("LinkError = %+v, want Link=1 Retries=%d", le, DefaultMaxRetransmits)
	}
}

// TestDegradeInflatesBandwidthCost pins the degrade mode: same bytes,
// more simulated seconds, sticky until Reset.
func TestDegradeInflatesBandwidthCost(t *testing.T) {
	base := failSys(t, 1)
	src := base.CPU().AllocFrom(matrix.Random(64, 64, matrix.NewRNG(1)))
	dst := base.GPU(0).Alloc(64, 64)
	base.Transfer(src, dst)
	clean := base.PCIeSimTime()

	s := failSys(t, 1)
	s.ArmLinkFault(0, LinkFaultPlan{Mode: LinkDegrade, Factor: 4})
	src2 := s.CPU().AllocFrom(matrix.Random(64, 64, matrix.NewRNG(1)))
	dst2 := s.GPU(0).Alloc(64, 64)
	s.Transfer(src2, dst2)
	if slow := s.PCIeSimTime(); slow <= clean {
		t.Fatalf("degraded transfer cost %v, clean cost %v; want slower", slow, clean)
	}
	if !dst2.unsafeData().Equal(src2.unsafeData()) {
		t.Fatal("degrade damaged the payload; it should only cost time")
	}
	// Stickiness: a second transfer is still degraded.
	t0 := s.PCIeSimTime()
	s.Transfer(src2, dst2)
	if d := s.PCIeSimTime() - t0; d <= clean {
		t.Fatalf("second transfer on degraded link cost %v, want > clean %v", d, clean)
	}
}

// TestResetDisarmsLinkFaults pins Reset: armed plans and sticky degrade
// state are gone, like device fault plans.
func TestResetDisarmsLinkFaults(t *testing.T) {
	s := failSys(t, 2)
	s.ArmLinkFault(0, LinkFaultPlan{Mode: LinkDrop})
	s.ArmLinkFault(1, LinkFaultPlan{Mode: LinkDegrade, Factor: 8})
	src := s.CPU().AllocFrom(matrix.Random(4, 4, matrix.NewRNG(1)))
	dst := s.GPU(1).Alloc(4, 4)
	s.Transfer(src, dst) // trigger the degrade so it sticks

	s.Reset()
	src = s.CPU().AllocFrom(matrix.Random(4, 4, matrix.NewRNG(1)))
	dst = s.GPU(0).Alloc(4, 4)
	if err := s.TransferCtx(context.Background(), src, dst); err != nil {
		t.Fatalf("link 0 still dropping after Reset: %v", err)
	}
	s.mu.Lock()
	deg := s.links[1].degrade
	s.mu.Unlock()
	if deg != 0 {
		t.Fatalf("link 1 degrade = %v after Reset, want 0", deg)
	}
}

// TestReliableComposesWithCoalesce pins composability: the protocol works
// inside a CoalesceTransfers window and still absorbs corruption.
func TestReliableComposesWithCoalesce(t *testing.T) {
	s := failSys(t, 1)
	s.ArmLinkFault(0, LinkFaultPlan{Mode: LinkCorrupt})
	src := s.CPU().AllocFrom(matrix.Random(8, 8, matrix.NewRNG(11)))
	dst := s.GPU(0).Alloc(8, 8)

	s.CoalesceTransfers(func() {
		s.TransferReliable(src, dst)
	})
	if !dst.unsafeData().Equal(src.unsafeData()) {
		t.Fatal("corruption leaked through a coalesced reliable transfer")
	}
}

// TestGPUToGPUTransferCrossesBothLinks pins the path model: a plan armed
// on either endpoint's link faults a GPU<->GPU transfer.
func TestGPUToGPUTransferCrossesBothLinks(t *testing.T) {
	s := failSys(t, 2)
	staged := s.CPU().AllocFrom(matrix.Random(4, 4, matrix.NewRNG(2)))
	src := s.GPU(1).Alloc(4, 4)
	s.Transfer(staged, src)
	s.ArmLinkFault(0, LinkFaultPlan{Mode: LinkDrop})
	dst := s.GPU(0).Alloc(4, 4)

	err := s.TransferCtx(context.Background(), src, dst)
	var le *LinkError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want *LinkError via the source-side link", err)
	}
	if le.Link != 0 {
		t.Fatalf("Link = %d, want 0", le.Link)
	}
}

// TestArmLinkFaultValidation pins range checking and zero-plan disarm.
func TestArmLinkFaultValidation(t *testing.T) {
	s := failSys(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("ArmLinkFault out of range did not panic")
		}
	}()
	s.ArmLinkFault(0, LinkFaultPlan{Mode: LinkDrop})
	s.ArmLinkFault(0, LinkFaultPlan{}) // zero plan disarms
	src := s.CPU().AllocFrom(matrix.Random(2, 2, matrix.NewRNG(1)))
	dst := s.GPU(0).Alloc(2, 2)
	if err := s.TransferCtx(context.Background(), src, dst); err != nil {
		t.Fatalf("disarmed link still faulting: %v", err)
	}
	s.ArmLinkFault(1, LinkFaultPlan{Mode: LinkDrop}) // out of range: panics
}

// TestLinkFaultPlanString pins the human-readable plan descriptions used
// in logs and chaos summaries.
func TestLinkFaultPlanString(t *testing.T) {
	cases := []struct {
		p    LinkFaultPlan
		want string
	}{
		{LinkFaultPlan{}, "none"},
		{LinkFaultPlan{Mode: LinkCorrupt, AfterTransfers: 12, Every: 8}, "corrupt after 12 transfers (every 8)"},
		{LinkFaultPlan{Mode: LinkDrop, AfterTransfers: 5}, "drop after 5 transfers"},
		{LinkFaultPlan{Mode: LinkFlap, Count: 3}, "flap x3 after 0 transfers"},
		{LinkFaultPlan{Mode: LinkFlap}, "flap x1 after 0 transfers"},
		{LinkFaultPlan{Mode: LinkDegrade, Factor: 2, AfterTransfers: 7}, "degrade x2.0 after 7 transfers"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.p, got, c.want)
		}
	}
}

// TestFaultPlanStringOmitsZeroStall pins the FaultPlan fix: a pure
// straggler with no per-op stall no longer prints a noisy "+0s/op".
func TestFaultPlanStringOmitsZeroStall(t *testing.T) {
	p := FaultPlan{Mode: FaultStraggler, Slowdown: 3, AfterOps: 4}
	if got := p.String(); got != "straggler x3.0 after 4 ops" {
		t.Errorf("String() = %q, want %q", got, "straggler x3.0 after 4 ops")
	}
	p.Stall = 5 * time.Millisecond // still prints the stall when present
	if got := p.String(); got == "straggler x3.0 after 4 ops" {
		t.Error("String() dropped a nonzero stall")
	}
}
