package hetsim

import (
	"math"
	"testing"
)

// topoCfg is a 2-node, 4-GPU platform with easily distinguishable tiers:
// PCIe at 10 GB/s + 10 µs, inter-node at 1 GB/s + 100 µs.
func topoCfg() Config {
	cfg := DefaultConfig(4)
	cfg.Nodes = 2
	cfg.PCIeGBps = 10
	cfg.PCIeLatencyUS = 10
	cfg.InterGBps = 1
	cfg.InterLatencyUS = 100
	return cfg
}

func TestTopologyNodeAssignment(t *testing.T) {
	s := New(topoCfg())
	if s.Nodes() != 2 {
		t.Fatalf("Nodes() = %d, want 2", s.Nodes())
	}
	// Round-robin: GPU g lives on node g % Nodes.
	for g := 0; g < 4; g++ {
		if got := s.GPU(g).Node(); got != g%2 {
			t.Errorf("GPU%d on node %d, want %d", g, got, g%2)
		}
		if got := s.NodeOf(g); got != g%2 {
			t.Errorf("NodeOf(%d) = %d, want %d", g, got, g%2)
		}
		if got := s.GPU(g).Index(); got != g {
			t.Errorf("GPU%d Index() = %d", g, got)
		}
	}
	if s.CPU().Node() != 0 || s.CPU().Index() != -1 {
		t.Fatalf("CPU identity wrong: node %d index %d", s.CPU().Node(), s.CPU().Index())
	}
	// Node-qualified names on a multi-node system; flat systems keep the
	// unqualified names (the single-node bit-identity pin includes display
	// strings the service sorts on).
	if got := s.GPU(2).Name(); got != "N0/GPU2" {
		t.Fatalf("GPU2 name = %q, want N0/GPU2", got)
	}
	if got := New(DefaultConfig(2)).GPU(1).Name(); got != "GPU1" {
		t.Fatalf("flat GPU1 name = %q", got)
	}
}

func TestTopologyValidation(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Nodes = 2
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for NumGPUs not a multiple of Nodes")
		}
	}()
	New(cfg)
}

// expectSecs asserts the PCIe clock advanced by exactly want since base.
func expectSecs(t *testing.T, s *System, base, want float64, what string) float64 {
	t.Helper()
	got := s.PCIeSimTime() - base
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("%s billed %.9gs, want %.9gs", what, got, want)
	}
	return s.PCIeSimTime()
}

func TestCrossTierTransferAccounting(t *testing.T) {
	cfg := topoCfg()
	s := New(cfg)
	const bytes = 8 * 16 * 16
	mk := func(d *Device) *Buffer { return d.Alloc(16, 16) }
	cpuBuf := mk(s.CPU())

	// Intra-node: CPU (node 0) -> GPU0 (node 0) bills the PCIe tier.
	base := expectSecs(t, s, 0, 0, "start")
	s.Transfer(cpuBuf, mk(s.GPU(0)))
	base = expectSecs(t, s, base, bytes/(cfg.PCIeGBps*1e9)+cfg.PCIeLatencyUS/1e6, "intra-node CPU->GPU0")
	if s.InternodeBytes() != 0 {
		t.Fatalf("intra-node transfer counted %d inter-node bytes", s.InternodeBytes())
	}

	// Cross-node: CPU (node 0) -> GPU1 (node 1) bills the inter tier.
	s.Transfer(cpuBuf, mk(s.GPU(1)))
	base = expectSecs(t, s, base, bytes/(cfg.InterGBps*1e9)+cfg.InterLatencyUS/1e6, "cross-node CPU->GPU1")
	if s.InternodeBytes() != bytes {
		t.Fatalf("inter-node bytes = %d, want %d", s.InternodeBytes(), bytes)
	}

	// GPU peer transfers classify by endpoint nodes too: GPU0->GPU2 share
	// node 0 (PCIe tier), GPU0->GPU3 cross (inter tier).
	g0 := mk(s.GPU(0))
	s.Transfer(cpuBuf, g0)
	base = s.PCIeSimTime()
	s.Transfer(g0, mk(s.GPU(2)))
	base = expectSecs(t, s, base, bytes/(cfg.PCIeGBps*1e9)+cfg.PCIeLatencyUS/1e6, "intra-node GPU0->GPU2")
	s.Transfer(g0, mk(s.GPU(3)))
	expectSecs(t, s, base, bytes/(cfg.InterGBps*1e9)+cfg.InterLatencyUS/1e6, "cross-node GPU0->GPU3")
	if s.InternodeBytes() != 2*bytes {
		t.Fatalf("inter-node bytes = %d, want %d", s.InternodeBytes(), 2*bytes)
	}
	if s.BytesTransferred() != 5*bytes {
		t.Fatalf("total bytes = %d, want %d", s.BytesTransferred(), 5*bytes)
	}
}

func TestCrossTierCoalescedLatency(t *testing.T) {
	cfg := topoCfg()
	s := New(cfg)
	mk := func(d *Device) *Buffer { return d.Alloc(16, 16) }
	const bytes = 8 * 16 * 16
	cpuBuf := mk(s.CPU())
	d0a, d0b := mk(s.GPU(0)), mk(s.GPU(0))
	d1a, d1b := mk(s.GPU(1)), mk(s.GPU(1))
	s.CoalesceTransfers(func() {
		s.Transfer(cpuBuf, d0a) // intra: pays PCIe latency
		s.Transfer(cpuBuf, d0b) // same link: bandwidth only
		s.Transfer(cpuBuf, d1a) // cross: pays inter latency
		s.Transfer(cpuBuf, d1b) // same link: bandwidth only
	})
	want := 2*bytes/(cfg.PCIeGBps*1e9) + cfg.PCIeLatencyUS/1e6 +
		2*bytes/(cfg.InterGBps*1e9) + cfg.InterLatencyUS/1e6
	expectSecs(t, s, 0, want, "coalesced two-tier window")
}

func TestCrossTierLinkFaultComposition(t *testing.T) {
	cfg := topoCfg()
	s := New(cfg)
	const bytes = 8 * 16 * 16
	cpuBuf := s.CPU().Alloc(16, 16)

	// A degraded link multiplies the bandwidth term of whatever tier the
	// transfer crosses; the latency term is unaffected.
	s.ArmLinkFault(1, LinkFaultPlan{Mode: LinkDegrade, Factor: 3})
	s.Transfer(cpuBuf, s.GPU(1).Alloc(16, 16)) // cross-node over the degraded link
	base := expectSecs(t, s, 0, 3*bytes/(cfg.InterGBps*1e9)+cfg.InterLatencyUS/1e6, "degraded cross-node")

	s.ArmLinkFault(2, LinkFaultPlan{Mode: LinkDegrade, Factor: 3})
	s.Transfer(cpuBuf, s.GPU(2).Alloc(16, 16)) // intra-node over a degraded link
	base = expectSecs(t, s, base, 3*bytes/(cfg.PCIeGBps*1e9)+cfg.PCIeLatencyUS/1e6, "degraded intra-node")

	// A dropped cross-node transfer still pays for the wire it wasted, at
	// the inter tier, and counts its bytes on the inter-node counter.
	before := s.InternodeBytes()
	s.ArmLinkFault(3, LinkFaultPlan{Mode: LinkDrop})
	err := s.TransferCtx(nil, cpuBuf, s.GPU(3).Alloc(16, 16))
	if _, ok := err.(*LinkError); !ok {
		t.Fatalf("dropped transfer returned %v, want *LinkError", err)
	}
	expectSecs(t, s, base, bytes/(cfg.InterGBps*1e9)+cfg.InterLatencyUS/1e6, "dropped cross-node")
	if got := s.InternodeBytes() - before; got != bytes {
		t.Fatalf("dropped cross-node transfer counted %d inter-node bytes, want %d", got, bytes)
	}
}

func TestNodeFaultFiresAtEpoch(t *testing.T) {
	s := New(topoCfg())
	s.ArmNodeFault(1, NodeFaultPlan{AfterEpochs: 2})
	if got := s.NodeEpoch(); len(got) != 0 {
		t.Fatalf("epoch 1 fired nodes %v", got)
	}
	if got := s.NodeEpoch(); len(got) != 0 {
		t.Fatalf("epoch 2 fired nodes %v", got)
	}
	if got := s.NodeEpoch(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("epoch 3 fired nodes %v, want [1]", got)
	}
	// Only node 1's GPUs are dead; the coordinator and node 0 survive.
	for g := 0; g < 4; g++ {
		if want := g%2 == 1; s.GPU(g).Lost() != want {
			t.Errorf("GPU%d lost = %v, want %v", g, s.GPU(g).Lost(), want)
		}
	}
	if s.CPU().Lost() {
		t.Fatal("CPU must survive a node loss")
	}
	if !s.NodeLost(1) || s.NodeLost(0) || s.NodesLost() != 1 {
		t.Fatalf("node-lost state wrong: %v %v %d", s.NodeLost(1), s.NodeLost(0), s.NodesLost())
	}
	// An operation on a dead GPU reports the structured identity.
	err := s.GPU(1).RunCtx(nil, "gemm", 1, func(int) {})
	lost, ok := err.(*DeviceLostError)
	if !ok || lost.GPU != 1 || lost.Node != 1 {
		t.Fatalf("lost error = %#v, want GPU 1 node 1", err)
	}
	// Reset revives the node and disarms pending plans.
	s.Reset()
	if s.NodesLost() != 0 || s.GPU(1).Lost() {
		t.Fatal("Reset must revive lost nodes")
	}
	if got := s.NodeEpoch(); len(got) != 0 {
		t.Fatalf("epoch after Reset fired nodes %v", got)
	}
}

// TestNodeFaultBurstFiresTogether pins the simultaneous-loss semantics: two
// plans armed for the same epoch fire as ONE two-node burst at that
// boundary, not one per call — the correlated-failure case an r ≥ 2 erasure
// code absorbs in a single reconstruction.
func TestNodeFaultBurstFiresTogether(t *testing.T) {
	s := New(topoCfg())
	s.ArmNodeFault(0, NodeFaultPlan{})
	s.ArmNodeFault(1, NodeFaultPlan{})
	got := s.NodeEpoch()
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("first epoch fired nodes %v, want [0 1]", got)
	}
	if s.NodesLost() != 2 || !s.NodeLost(0) || !s.NodeLost(1) {
		t.Fatalf("NodesLost = %d, want both nodes down", s.NodesLost())
	}
	for g := 0; g < 4; g++ {
		if !s.GPU(g).Lost() {
			t.Errorf("GPU%d survived a full burst", g)
		}
	}
	if got := s.NodeEpoch(); len(got) != 0 {
		t.Fatalf("second epoch re-fired nodes %v", got)
	}
}

// TestNodeFaultStaggeredPlans: plans due at different epochs still fire
// separately.
func TestNodeFaultStaggeredPlans(t *testing.T) {
	s := New(topoCfg())
	s.ArmNodeFault(0, NodeFaultPlan{})
	s.ArmNodeFault(1, NodeFaultPlan{AfterEpochs: 1})
	if got := s.NodeEpoch(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("first epoch fired nodes %v, want [0]", got)
	}
	if got := s.NodeEpoch(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("second epoch fired nodes %v, want [1]", got)
	}
	if s.NodesLost() != 2 {
		t.Fatalf("NodesLost = %d, want 2", s.NodesLost())
	}
}
