package hetsim

import (
	"context"
	"errors"
	"testing"
	"time"

	"ftla/internal/matrix"
)

func failSys(t *testing.T, gpus int) *System {
	t.Helper()
	return New(DefaultConfig(gpus))
}

func TestCrashReturnsDeviceLost(t *testing.T) {
	s := failSys(t, 2)
	g := s.GPU(1)
	s.ArmFault(g, FaultPlan{Mode: FaultCrash})

	err := g.RunCtx(context.Background(), "gemm", 10, func(int) {
		t.Fatal("body ran on a crashed device")
	})
	var lost *DeviceLostError
	if !errors.As(err, &lost) {
		t.Fatalf("err = %v, want DeviceLostError", err)
	}
	if lost.Device != "GPU1" || lost.Op != "gemm" {
		t.Fatalf("lost = %+v", lost)
	}
	if !g.Lost() {
		t.Fatal("device should report Lost after crash")
	}
	if !IsFailStop(err) {
		t.Fatal("IsFailStop(DeviceLostError) = false")
	}
	// The healthy GPU keeps working.
	if err := s.GPU(0).RunCtx(context.Background(), "gemm", 10, func(int) {}); err != nil {
		t.Fatalf("healthy GPU errored: %v", err)
	}
}

func TestCrashAfterOpsFiresMidRun(t *testing.T) {
	s := failSys(t, 1)
	g := s.GPU(0)
	s.ArmFault(g, FaultPlan{Mode: FaultCrash, AfterOps: 3})
	ran := 0
	for i := 0; i < 3; i++ {
		if err := g.RunCtx(context.Background(), "k", 1, func(int) { ran++ }); err != nil {
			t.Fatalf("op %d errored early: %v", i, err)
		}
	}
	if err := g.RunCtx(context.Background(), "k", 1, func(int) { ran++ }); !IsFailStop(err) {
		t.Fatalf("4th op: err = %v, want fail-stop", err)
	}
	if ran != 3 {
		t.Fatalf("ran = %d, want 3", ran)
	}
}

func TestTransferCtxOnLostDevice(t *testing.T) {
	s := failSys(t, 2)
	s.ArmFault(s.GPU(1), FaultPlan{Mode: FaultCrash})
	src := s.GPU(0).Alloc(2, 2)
	dst := s.GPU(1).Alloc(2, 2)
	err := s.TransferCtx(context.Background(), src, dst)
	var lost *DeviceLostError
	if !errors.As(err, &lost) {
		t.Fatalf("TransferCtx err = %v, want DeviceLostError", err)
	}
	if lost.Op != "pcie" {
		t.Fatalf("op = %q, want pcie", lost.Op)
	}
	if s.BytesTransferred() != 0 {
		t.Fatal("aborted transfer still moved bytes")
	}
}

func TestHangBlocksUntilDeadline(t *testing.T) {
	s := failSys(t, 1)
	g := s.GPU(0)
	s.ArmFault(g, FaultPlan{Mode: FaultHang})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := g.RunCtx(ctx, "gemm", 1, func(int) { t.Fatal("body ran on a hung device") })
	var hung *DeviceHungError
	if !errors.As(err, &hung) {
		t.Fatalf("err = %v, want DeviceHungError", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("hang error should unwrap to the context deadline")
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("hang resolved before the deadline fired")
	}
	if !g.Lost() {
		t.Fatal("hung device should count as lost afterwards")
	}
}

func TestHangWithoutContextFailsFast(t *testing.T) {
	s := failSys(t, 1)
	g := s.GPU(0)
	s.ArmFault(g, FaultPlan{Mode: FaultHang})
	done := make(chan error, 1)
	go func() {
		done <- g.RunCtx(context.Background(), "gemm", 1, func(int) {})
	}()
	// context.Background is never done: the hang must degrade to an
	// immediate error rather than deadlock.
	select {
	case err := <-done:
		var hung *DeviceHungError
		if !errors.As(err, &hung) {
			t.Fatalf("err = %v, want DeviceHungError", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("hang with no bound context deadlocked")
	}
}

func TestStragglerMultipliesSimTime(t *testing.T) {
	s := failSys(t, 2)
	flops := 1e9
	run := func(g *Device) float64 {
		if err := g.RunCtx(context.Background(), "k", flops, func(int) {}); err != nil {
			t.Fatalf("RunCtx: %v", err)
		}
		return g.SimTime()
	}
	base := run(s.GPU(0))
	s.ArmFault(s.GPU(1), FaultPlan{Mode: FaultStraggler, Slowdown: 4})
	slow := run(s.GPU(1))
	if slow < 3.9*base || slow > 4.1*base {
		t.Fatalf("straggler sim time %v, want ~4x %v", slow, base)
	}
}

func TestStragglerStallInterruptedByContext(t *testing.T) {
	s := failSys(t, 1)
	g := s.GPU(0)
	s.ArmFault(g, FaultPlan{Mode: FaultStraggler, Slowdown: 2, Stall: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := g.RunCtx(ctx, "k", 1, func(int) { t.Fatal("body ran through an interrupted stall") })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("stall was not interrupted by the context")
	}
}

func TestBoundContextAbortsKernels(t *testing.T) {
	s := failSys(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	s.Bind(ctx)
	g := s.GPU(0)
	b := g.Alloc(2, 2)
	g.Gemm(false, false, 1, b, b, 0, g.Alloc(2, 2)) // runs fine while live
	cancel()
	func() {
		defer func() {
			if e := RecoverAbort(recover()); !errors.Is(e, context.Canceled) {
				t.Fatalf("recovered %v, want context.Canceled", e)
			}
		}()
		g.Gemm(false, false, 1, b, b, 0, g.Alloc(2, 2))
		t.Fatal("kernel ran under a canceled bound context")
	}()
}

func TestRecoverAbortPassesThroughForeignPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("foreign panic swallowed, got %v", r)
		}
	}()
	func() {
		defer func() { RecoverAbort(recover()) }()
		panic("boom")
	}()
}

// TestResetClearsFaultPlan is the regression contract alongside
// TestEnableTraceSurvivesReset: a quarantined-then-probed system must start
// clean — Reset disarms fault plans, revives lost devices, unbinds the
// abort context, and clears the transfer hook.
func TestResetClearsFaultPlan(t *testing.T) {
	s := failSys(t, 2)
	g := s.GPU(1)
	s.ArmFault(g, FaultPlan{Mode: FaultCrash})
	if err := g.RunCtx(context.Background(), "k", 1, func(int) {}); !IsFailStop(err) {
		t.Fatalf("arming did not crash the device: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Bind(ctx)
	s.SetTransferHook(func(from, to *Device, payload *matrix.Dense) {})

	s.Reset()

	if g.Lost() {
		t.Fatal("Reset did not revive the lost device")
	}
	if err := g.RunCtx(context.Background(), "k", 1, func(int) {}); err != nil {
		t.Fatalf("post-Reset op errored: %v", err)
	}
	// The canceled bound context must be gone too: plain kernels may not
	// abort.
	b := g.Alloc(1, 1)
	g.Gemm(false, false, 1, b, b, 0, g.Alloc(1, 1))
	// A straggler plan likewise dies with Reset.
	s.ArmFault(g, FaultPlan{Mode: FaultStraggler, Slowdown: 8})
	g.RunCtx(context.Background(), "k", 1e9, func(int) {})
	before := g.SimTime()
	s.Reset()
	g.RunCtx(context.Background(), "k", 1e9, func(int) {})
	if after := g.SimTime(); after > before/4 {
		t.Fatalf("straggler slowdown survived Reset: %v vs pre-reset %v", after, before)
	}
}

func TestArmFaultZeroPlanDisarms(t *testing.T) {
	s := failSys(t, 1)
	g := s.GPU(0)
	s.ArmFault(g, FaultPlan{Mode: FaultCrash})
	s.ArmFault(g, FaultPlan{})
	if err := g.RunCtx(context.Background(), "k", 1, func(int) {}); err != nil {
		t.Fatalf("disarmed device errored: %v", err)
	}
}

func TestFaultPlanStrings(t *testing.T) {
	cases := []FaultPlan{
		{},
		{Mode: FaultCrash, AfterOps: 5},
		{Mode: FaultHang},
		{Mode: FaultStraggler, Slowdown: 4, Stall: time.Millisecond},
	}
	for _, p := range cases {
		if p.String() == "" || p.Mode.String() == "" {
			t.Fatalf("empty description for %+v", p)
		}
	}
}
