package hetsim

// Asynchronous execution streams and the logical simulated clock.
//
// The synchronous kernel API (Device.Run, System.Transfer, ...) executes
// and *completes* an operation before returning, which forces the caller
// into a fully serial schedule. Streams are the asynchronous surface the
// look-ahead step runtime is built on: an ordered per-device work queue in
// the style of a CUDA stream. Launch enqueues a closure, Record returns a
// StreamEvent marking everything enqueued so far, and StreamEvent.Wait
// joins the host with that point of the stream. Operations within one
// stream execute (and advance the simulated clock) in launch order;
// operations in different streams run concurrently, on real goroutines,
// against device-private buffers.
//
// Logical clock. Wall-clock concurrency alone would make the simulated
// clock meaningless, so the simulator keeps a discrete-event logical clock
// next to the busy-time counters: every operation is assigned a logical
// [start, end] interval where start = max(availability of the resources it
// occupies, the completion frontier of the timeline it is ordered on).
// Resources are the devices (one op at a time) and the per-GPU PCIe links;
// timelines are the completion frontiers that encode ordering: every
// synchronous call is ordered on the shared *serial* timeline (so a
// program that never touches streams gets the fully serialized schedule it
// always had — the depth-0 special case), while each stream carries its
// own timeline, inheriting the serial frontier at Launch time (work
// launched after X cannot logically start before X) and folding back into
// it at Wait time. TimelineMakespan is the resulting end-to-end finish
// time; under overlap it is strictly smaller than the serial sum.
//
// Abort plumbing. A fail-stop fault firing inside a launched closure is
// captured by the stream executor; the stream skips the remainder of its
// queue and the capturing panic is re-raised from StreamEvent.Wait on the
// waiting (host) goroutine, where the driver-boundary RecoverAbort
// converts it to the typed error exactly as in the serial schedule.

// timeline is a completion frontier of the logical simulated clock: the
// logical time at which everything ordered on it so far has finished.
// Guarded by System.clockMu.
type timeline struct {
	floor float64
}

// streamOp is one queue entry: a named closure, or (fn == nil) an event
// marker.
type streamOp struct {
	name string
	fn   func()
	ev   *StreamEvent
}

// Stream is an ordered asynchronous execution queue on one device, the
// simulator's analogue of a CUDA stream. Closures enqueued with Launch run
// in order on a dedicated executor goroutine; Record/Wait provide the
// host-side join. A device may serve at most one open stream at a time,
// and the host must not call the device's synchronous kernels while the
// stream has unjoined work — the step runtime enforces both by
// construction. Streams must be Closed when done (the step runtime defers
// this), or their executor goroutine leaks.
type Stream struct {
	dev *Device
	tl  timeline
	ch  chan streamOp
	dne chan struct{}

	// abort is the first captured fail-stop abort; executor-goroutine
	// local until published through a StreamEvent.
	abort *abortPanic
}

// NewStream opens an asynchronous execution stream on the device.
func (d *Device) NewStream() *Stream {
	st := &Stream{dev: d, ch: make(chan streamOp, 64), dne: make(chan struct{})}
	go st.run()
	return st
}

// Device returns the device the stream executes on.
func (st *Stream) Device() *Device { return st.dev }

// Launch enqueues a closure for asynchronous execution on the stream's
// device. The closure runs kernel/transfer calls exactly as synchronous
// code would; the stream orders it after everything previously launched
// and after every synchronous operation already completed by the host
// (the launch-order dependency of a CUDA stream). A closure must only
// touch buffers resident on the stream's device (plus transfer endpoints),
// and the host must not read or write those buffers until a later
// StreamEvent.Wait. name labels the enqueue for debugging; the kernels the
// closure runs trace under their own names.
func (st *Stream) Launch(name string, fn func()) {
	s := st.dev.sys
	s.clockMu.Lock()
	if s.serial.floor > st.tl.floor {
		st.tl.floor = s.serial.floor
	}
	s.clockMu.Unlock()
	st.ch <- streamOp{name: name, fn: fn}
}

// Record enqueues an event marker and returns its StreamEvent: a handle
// that completes once everything launched before it has executed.
func (st *Stream) Record() *StreamEvent {
	ev := &StreamEvent{st: st, done: make(chan struct{})}
	st.ch <- streamOp{ev: ev}
	return ev
}

// Sync records an event and waits for it: a host join with everything
// launched so far. Like Wait, it re-raises a captured fail-stop abort.
func (st *Stream) Sync() {
	st.Record().Wait()
}

// Close shuts the stream down after the queue drains and releases its
// executor goroutine. Launch/Record must not be called afterwards. Close
// does not re-raise captured aborts — join with Sync (or a recorded
// event) first; Close exists so a deferred cleanup can never panic.
func (st *Stream) Close() {
	close(st.ch)
	<-st.dne
}

// run is the stream executor: one goroutine draining the queue in order.
func (st *Stream) run() {
	defer close(st.dne)
	d := st.dev
	s := d.sys
	for op := range st.ch {
		if op.ev != nil {
			s.clockMu.Lock()
			op.ev.at = st.tl.floor
			s.clockMu.Unlock()
			op.ev.pan = st.abort
			close(op.ev.done)
			continue
		}
		if st.abort != nil {
			// A fail-stop abort poisons the stream: skip the remaining
			// queue (mirroring how a serial schedule would never reach
			// these operations) and keep draining so Close can't block.
			continue
		}
		st.exec(op)
	}
}

// exec runs one closure on the stream's timeline, capturing fail-stop
// aborts. Non-abort panics are programming errors and propagate, crashing
// the executor goroutine loudly.
func (st *Stream) exec(op streamOp) {
	d := st.dev
	s := d.sys
	s.clockMu.Lock()
	d.curTL = &st.tl
	s.clockMu.Unlock()
	defer func() {
		s.clockMu.Lock()
		d.curTL = nil
		s.clockMu.Unlock()
		if r := recover(); r != nil {
			if a, ok := r.(*abortPanic); ok {
				st.abort = a
				return
			}
			panic(r)
		}
	}()
	op.fn()
}

// StreamEvent marks a point in a stream's execution order. It is complete
// once every operation launched before the matching Record has executed.
type StreamEvent struct {
	st   *Stream
	done chan struct{}
	at   float64     // stream timeline frontier at the marker
	pan  *abortPanic // captured fail-stop abort, re-raised by Wait
}

// Wait blocks until the event completes, then joins the host's serial
// timeline with the stream (the host has logically observed everything up
// to the marker, so no later synchronous operation may start before it).
// If a fail-stop fault aborted a launched closure, Wait re-raises the
// abort on the calling goroutine, where the driver-boundary RecoverAbort
// handles it exactly as for a synchronous kernel.
func (ev *StreamEvent) Wait() {
	<-ev.done
	s := ev.st.dev.sys
	s.clockMu.Lock()
	if ev.at > s.serial.floor {
		s.serial.floor = ev.at
	}
	s.clockMu.Unlock()
	if ev.pan != nil {
		panic(ev.pan)
	}
}

// At returns the logical simulated time of the marker: the stream
// timeline's completion frontier when the event was reached. Valid only
// after Wait.
func (ev *StreamEvent) At() float64 { return ev.at }

// advanceClock assigns the logical [start, end] interval of an operation
// of the given duration on device d: it starts no earlier than the
// device's availability and the frontier of the timeline the caller is
// ordered on (the executing stream's, or the serial timeline for
// synchronous calls), occupies the device until end, and advances the
// timeline frontier.
func (d *Device) advanceClock(dur float64) (start, end float64) {
	s := d.sys
	s.clockMu.Lock()
	tl := d.curTL
	if tl == nil {
		tl = &s.serial
	}
	start = d.avail
	if tl.floor > start {
		start = tl.floor
	}
	end = start + dur
	d.avail = end
	tl.floor = end
	s.clockMu.Unlock()
	return start, end
}

// TimelineMakespan returns the end-to-end finish time of the run on the
// logical simulated clock: the latest completion frontier across the
// serial timeline, every device, and every PCIe link. For a fully
// synchronous program this equals the serial sum of all operation
// durations; with stream overlap it is smaller — the schedule's true
// makespan, as opposed to SimMakespan's crude serial estimate.
func (s *System) TimelineMakespan() float64 {
	s.clockMu.Lock()
	defer s.clockMu.Unlock()
	m := s.serial.floor
	if s.cpu.avail > m {
		m = s.cpu.avail
	}
	for _, g := range s.gpus {
		if g.avail > m {
			m = g.avail
		}
	}
	for _, l := range s.linkAvail {
		if l > m {
			m = l
		}
	}
	return m
}

// resetClock zeroes the logical clock: timeline frontiers, device
// availability, and link availability. Called from Reset under no other
// lock.
func (s *System) resetClock() {
	s.clockMu.Lock()
	s.serial.floor = 0
	s.cpu.avail = 0
	s.cpu.curTL = nil
	for _, g := range s.gpus {
		g.avail = 0
		g.curTL = nil
	}
	for i := range s.linkAvail {
		s.linkAvail[i] = 0
	}
	s.clockMu.Unlock()
}
