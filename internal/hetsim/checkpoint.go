package hetsim

import "ftla/internal/matrix"

// Checkpoint snapshots a device-resident buffer into a host-owned matrix.
// The copy goes through the same path an algorithm would use: a GPU-resident
// buffer is staged to the CPU over the PCIe fabric (passing the fail-stop
// gates and charging the communication clocks), never read out of device
// memory behind the simulator's back. A CPU-resident buffer is cloned
// host-side for free, matching a real host's memcpy. The returned matrix is
// owned by the caller and shares no storage with the buffer. The staging
// copy uses the reliable protocol (TransferReliable): a snapshot damaged
// in flight would poison every later rollback, so checkpoint traffic is
// never left to a lucky wire.
func (s *System) Checkpoint(src *Buffer) *matrix.Dense {
	if src.dev == s.cpu {
		return src.Access(s.cpu).Clone()
	}
	stage := s.cpu.Alloc(src.Rows(), src.Cols())
	s.TransferReliable(src, stage)
	return stage.Access(s.cpu)
}

// Restore writes a host-side snapshot (taken by Checkpoint) back into a
// device-resident buffer of the same shape — the rollback dual of
// Checkpoint, again routed through the PCIe fabric for GPU destinations so
// fail-stop gates and transfer accounting apply. The snapshot is copied,
// not aliased; the caller may keep reusing it for later restores.
func (s *System) Restore(snap *matrix.Dense, dst *Buffer) {
	if dst.dev == s.cpu {
		dst.Access(s.cpu).CopyFrom(snap)
		return
	}
	src := s.cpu.AllocFrom(snap)
	s.TransferReliable(src, dst)
}
