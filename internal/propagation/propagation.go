// Package propagation reproduces the paper's systematic error-propagation
// study (§VI): the Maximum Update Dimensions (MUD) analysis of the major
// update operations (Table IV) and the resulting per-fault-kind error
// propagation patterns (Table V), both analytically (the published tables)
// and empirically (by corrupting one element of an operation's input or
// output and measuring the shape of the corruption in the result).
package propagation

import (
	"math"

	"ftla/internal/blas"
	"ftla/internal/lapack"
	"ftla/internal/matrix"
)

// Dim is the propagation dimensionality of §VI.B.
type Dim int

// Propagation degrees.
const (
	// D0: a standalone corrupted element, no propagation.
	D0 Dim = iota
	// D1: corruption confined to (part of) one row or one column.
	D1
	// D2: corruption beyond one row or column.
	D2
)

func (d Dim) String() string {
	switch d {
	case D0:
		return "0D"
	case D1:
		return "1D"
	default:
		return "2D"
	}
}

// Op is a major update operation.
type Op int

// Update operations of the blocked one-sided decompositions.
const (
	PD Op = iota
	PU
	TMU
)

func (o Op) String() string {
	switch o {
	case PD:
		return "PD"
	case PU:
		return "PU"
	default:
		return "TMU"
	}
}

// Part distinguishes reference and update parts.
type Part int

// Operation parts.
const (
	Reference Part = iota
	Update
)

func (p Part) String() string {
	if p == Reference {
		return "ref"
	}
	return "update"
}

// AnalyticMUD returns the paper's Table IV/V entry: the worst-case
// propagation dimensionality of a single corrupted element in the given
// part of the given operation, considering propagation within that one
// operation only.
func AnalyticMUD(op Op, part Part) Dim {
	switch op {
	case PD:
		// Panel decomposition is a full factorization of the panel: an
		// early pivot/reflector error reaches the whole remaining panel.
		return D2
	case PU:
		if part == Reference {
			// The triangular factor L11 multiplies every column: 2-D.
			return D2
		}
		// An element of the panel being updated feeds exactly one
		// row/column of the solve: 1-D.
		return D1
	default: // TMU
		if part == Reference {
			// A panel element multiplies one row (or column) of the
			// trailing matrix: 1-D.
			return D1
		}
		// Trailing elements are update-only accumulators: 0-D.
		return D0
	}
}

// TableVRow is one row of the reproduced Table V.
type TableVRow struct {
	Op          Op
	Part        Part
	Computation Dim // a computation error appears in the output: 0-D there
	Memory      Dim // memory error in this part, propagated by the op
	TolerableBy string
}

// TableV returns the full reproduction of the paper's Table V.
func TableV() []TableVRow {
	rows := []TableVRow{}
	for _, op := range []Op{PD, PU, TMU} {
		for _, part := range []Part{Reference, Update} {
			mud := AnalyticMUD(op, part)
			tol := "full checksum"
			switch {
			case mud == D0:
				tol = "single-side or full checksum"
			case mud == D2:
				tol = "local restart (detect via checksum)"
			}
			rows = append(rows, TableVRow{
				Op: op, Part: part,
				Computation: D0,
				Memory:      mud,
				TolerableBy: tol,
			})
		}
	}
	return rows
}

// classify measures the corruption shape between got and want: the number
// of distinct rows and columns containing differences above tol.
func classify(got, want *matrix.Dense, tol float64) (Dim, int) {
	rows := map[int]bool{}
	cols := map[int]bool{}
	count := 0
	for i := 0; i < got.Rows; i++ {
		for j := 0; j < got.Cols; j++ {
			if math.Abs(got.At(i, j)-want.At(i, j)) > tol {
				rows[i] = true
				cols[j] = true
				count++
			}
		}
	}
	switch {
	case count == 0:
		return D0, 0
	case count == 1:
		return D0, 1
	case len(rows) == 1 || len(cols) == 1:
		return D1, count
	default:
		return D2, count
	}
}

// Empirical runs the actual operation twice — clean and with one input
// element corrupted — and classifies the shape of the output divergence.
// It uses the same kernels as the protected factorizations, so the result
// is the measured counterpart of AnalyticMUD. n is the trailing dimension,
// nb the panel width.
func Empirical(op Op, part Part, n, nb int, seed uint64) (Dim, int) {
	rng := matrix.NewRNG(seed)
	const delta = 10.0
	tol := 1e-9
	switch op {
	case PD:
		// GETF2 on a diagonally dominant panel; corrupt an early element.
		a := matrix.RandomDiagDominant(n, rng).View(0, 0, n, nb).Clone()
		want := a.Clone()
		piv := make([]int, nb)
		if err := lapack.Getf2(want, piv); err != nil {
			return D2, -1
		}
		got := a.Clone()
		got.Set(1, 1, got.At(1, 1)+delta)
		piv2 := make([]int, nb)
		if err := lapack.Getf2(got, piv2); err != nil {
			return D2, -1
		}
		return classify(got, want, tol)
	case PU:
		l11 := matrix.Random(nb, nb, rng)
		for i := 0; i < nb; i++ {
			l11.Set(i, i, 4)
		}
		a12 := matrix.Random(nb, n, rng)
		want := a12.Clone()
		blas.Trsm(blas.Left, true, false, true, 1, l11, want)
		got := a12.Clone()
		if part == Reference {
			l11c := l11.Clone()
			l11c.Set(1, 0, l11c.At(1, 0)+delta)
			blas.Trsm(blas.Left, true, false, true, 1, l11c, got)
		} else {
			got.Set(1, 2, got.At(1, 2)+delta)
			blas.Trsm(blas.Left, true, false, true, 1, l11, got)
		}
		return classify(got, want, tol)
	default: // TMU
		l21 := matrix.Random(n, nb, rng)
		u12 := matrix.Random(nb, n, rng)
		c := matrix.Random(n, n, rng)
		want := c.Clone()
		blas.Gemm(false, false, -1, l21, u12, 1, want)
		got := c.Clone()
		if part == Reference {
			l21c := l21.Clone()
			l21c.Set(2, 1, l21c.At(2, 1)+delta)
			blas.Gemm(false, false, -1, l21c, u12, 1, got)
		} else {
			got.Set(3, 4, got.At(3, 4)+delta)
			blas.Gemm(false, false, -1, l21, u12, 1, got)
		}
		return classify(got, want, tol)
	}
}

// TableIVRow is one empirically measured row of Table IV.
type TableIVRow struct {
	Op        Op
	Part      Part
	Analytic  Dim
	Empirical Dim
	Corrupted int // number of corrupted output elements measured
}

// TableIV measures every (op, part) combination and pairs it with the
// analytic prediction.
func TableIV(n, nb int, seed uint64) []TableIVRow {
	var out []TableIVRow
	for _, op := range []Op{PD, PU, TMU} {
		for _, part := range []Part{Reference, Update} {
			if op == PD && part == Reference {
				// PD factors its panel in place; there is no separate
				// reference part (Table IV leaves the cell empty).
				continue
			}
			emp, cnt := Empirical(op, part, n, nb, seed)
			out = append(out, TableIVRow{
				Op: op, Part: part,
				Analytic:  AnalyticMUD(op, part),
				Empirical: emp,
				Corrupted: cnt,
			})
		}
	}
	return out
}
