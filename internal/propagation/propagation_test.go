package propagation

import (
	"testing"
	"testing/quick"

	"ftla/internal/matrix"
)

func TestAnalyticMatchesPaper(t *testing.T) {
	cases := []struct {
		op   Op
		part Part
		want Dim
	}{
		{PD, Update, D2},
		{PU, Reference, D2},
		{PU, Update, D1},
		{TMU, Reference, D1},
		{TMU, Update, D0},
	}
	for _, c := range cases {
		if got := AnalyticMUD(c.op, c.part); got != c.want {
			t.Errorf("AnalyticMUD(%v, %v) = %v, want %v", c.op, c.part, got, c.want)
		}
	}
}

func TestEmpiricalMatchesAnalytic(t *testing.T) {
	for _, row := range TableIV(48, 8, 1) {
		if row.Empirical > row.Analytic {
			t.Errorf("%v/%v: empirical %v exceeds analytic bound %v",
				row.Op, row.Part, row.Empirical, row.Analytic)
		}
		// The analytic value is a worst case, but for these operations the
		// measured pattern should reach it (the corrupted element is
		// chosen early enough to propagate maximally).
		if row.Empirical != row.Analytic {
			t.Errorf("%v/%v: empirical %v != analytic %v (corrupted %d elements)",
				row.Op, row.Part, row.Empirical, row.Analytic, row.Corrupted)
		}
	}
}

func TestEmpiricalTMUUpdateExactlyOneElement(t *testing.T) {
	dim, cnt := Empirical(TMU, Update, 32, 8, 7)
	if dim != D0 || cnt != 1 {
		t.Fatalf("TMU update corruption = %v with %d elements, want 0D/1", dim, cnt)
	}
}

func TestEmpiricalTMURefOneRow(t *testing.T) {
	dim, cnt := Empirical(TMU, Reference, 32, 8, 9)
	if dim != D1 {
		t.Fatalf("TMU ref corruption = %v, want 1D", dim)
	}
	if cnt < 2 {
		t.Fatalf("1D propagation should corrupt a full line, got %d", cnt)
	}
}

func TestClassify(t *testing.T) {
	a := matrix.NewDense(4, 4)
	b := matrix.NewDense(4, 4)
	if d, c := classify(a, b, 1e-12); d != D0 || c != 0 {
		t.Fatal("identical matrices must classify 0D/0")
	}
	b.Set(1, 1, 5)
	if d, c := classify(a, b, 1e-12); d != D0 || c != 1 {
		t.Fatalf("single diff = %v/%d", d, c)
	}
	b.Set(1, 3, 5)
	if d, _ := classify(a, b, 1e-12); d != D1 {
		t.Fatalf("row diff = %v, want 1D", d)
	}
	b.Set(3, 0, 5)
	if d, _ := classify(a, b, 1e-12); d != D2 {
		t.Fatalf("scattered diff = %v, want 2D", d)
	}
}

func TestTableVShape(t *testing.T) {
	rows := TableV()
	if len(rows) != 6 {
		t.Fatalf("TableV rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Computation != D0 {
			t.Errorf("%v/%v: computation errors appear as 0D in the output", r.Op, r.Part)
		}
		if r.TolerableBy == "" {
			t.Error("missing tolerability note")
		}
	}
}

// Property: empirical propagation is deterministic for a fixed seed and
// never exceeds the analytic worst case, across sizes.
func TestEmpiricalBoundedQuick(t *testing.T) {
	f := func(seed uint64) bool {
		n := 16 + int(seed%32)
		nb := 4 + int(seed%4)
		for _, op := range []Op{PU, TMU} {
			for _, part := range []Part{Reference, Update} {
				d1, _ := Empirical(op, part, n, nb, seed)
				d2, _ := Empirical(op, part, n, nb, seed)
				if d1 != d2 {
					return false
				}
				if d1 > AnalyticMUD(op, part) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestStringers(t *testing.T) {
	if D0.String() != "0D" || D1.String() != "1D" || D2.String() != "2D" {
		t.Fatal("Dim strings wrong")
	}
	if PD.String() != "PD" || PU.String() != "PU" || TMU.String() != "TMU" {
		t.Fatal("Op strings wrong")
	}
	if Reference.String() != "ref" || Update.String() != "update" {
		t.Fatal("Part strings wrong")
	}
}
