// Benchmarks regenerating every table and figure of the paper's
// evaluation. Run with:
//
//	go test -bench=. -benchmem .
//
// Each benchmark reports, beyond ns/op, the custom metrics that carry the
// reproduced quantity (overhead percentages, blocks verified, speedups,
// outcome probabilities), so a single bench run re-derives the paper's
// headline numbers. See EXPERIMENTS.md for the paper-vs-measured record.
package ftla

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"ftla/internal/campaign"
	"ftla/internal/checksum"
	"ftla/internal/core"
	"ftla/internal/hetsim"
	"ftla/internal/matrix"
	"ftla/internal/obs"
	"ftla/internal/overhead"
	"ftla/internal/probmodel"
	"ftla/internal/propagation"
)

// --- Table IV / V: error propagation study --------------------------------

func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := propagation.TableIV(96, 16, uint64(i)+1)
		if len(rows) != 5 {
			b.Fatal("unexpected table size")
		}
	}
}

func BenchmarkTableV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(propagation.TableV()) != 6 {
			b.Fatal("unexpected table size")
		}
	}
}

// --- Table VI: verification counts per checking scheme ---------------------

func benchTableVI(b *testing.B, scheme core.Scheme, mode core.Mode) {
	const n, nb, gpus = 512, 32, 2
	var total int
	for i := 0; i < b.N; i++ {
		sys := hetsim.New(hetsim.DefaultConfig(gpus))
		a := matrix.RandomDiagDominant(n, matrix.NewRNG(1))
		_, _, res, err := core.LU(sys, a, core.Options{NB: nb, Mode: mode, Scheme: scheme, Kernel: checksum.OptKernel})
		if err != nil {
			b.Fatal(err)
		}
		total = res.Counter.TotalChecked()
	}
	b.ReportMetric(float64(total), "blocks-verified")
}

func BenchmarkTableVIPriorOp(b *testing.B) { benchTableVI(b, core.PriorOp, core.SingleSide) }
func BenchmarkTableVIPostOp(b *testing.B)  { benchTableVI(b, core.PostOp, core.Full) }
func BenchmarkTableVINewScheme(b *testing.B) {
	benchTableVI(b, core.NewScheme, core.Full)
}

// --- Table VII: overall relative overhead ----------------------------------

func benchTableVII(b *testing.B, decomp string) {
	const n, nb, gpus = 512, 32, 2
	base := runOnce(b, decomp, n, nb, gpus, core.Options{NB: nb, Mode: core.NoChecksum, Scheme: core.NoCheck})
	var prot float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prot = runOnce(b, decomp, n, nb, gpus, core.Options{NB: nb, Mode: core.Full, Scheme: core.NewScheme, Kernel: checksum.OptKernel})
	}
	b.ReportMetric(100*(prot-base)/base, "overhead-%")
}

func BenchmarkTableVIICholesky(b *testing.B) { benchTableVII(b, "cholesky") }
func BenchmarkTableVIILU(b *testing.B)       { benchTableVII(b, "lu") }
func BenchmarkTableVIIQR(b *testing.B)       { benchTableVII(b, "qr") }

// runOnce executes one factorization and returns its deterministic flop
// count — overhead ratios computed from it are exactly reproducible,
// unlike wall-clock ratios on a noisy host (see DESIGN.md §5.9).
func runOnce(b *testing.B, decomp string, n, nb, gpus int, opts core.Options) float64 {
	b.Helper()
	sys := hetsim.New(hetsim.DefaultConfig(gpus))
	rng := matrix.NewRNG(uint64(n))
	switch decomp {
	case "cholesky":
		a := matrix.RandomSPD(n, rng)
		_, res, err := core.Cholesky(sys, a, opts)
		if err != nil {
			b.Fatal(err)
		}
		return float64(res.Flops)
	case "qr":
		a := matrix.Random(n, n, rng)
		_, _, res, err := core.QR(sys, a, opts)
		if err != nil {
			b.Fatal(err)
		}
		return float64(res.Flops)
	default:
		a := matrix.RandomDiagDominant(n, rng)
		_, _, res, err := core.LU(sys, a, opts)
		if err != nil {
			b.Fatal(err)
		}
		return float64(res.Flops)
	}
}

// --- §IX phase attribution: measured breakdown from obs snapshot diffs ------

// benchPhaseBreakdown reports where a protected factorization's wall time
// goes (encode / factorize / verify / recover) using the same
// overhead.FromSnapshots mechanism as cmd/ftserve -load, so bench output,
// load-generator output, and /metrics scrapes all agree (OBSERVABILITY.md).
func benchPhaseBreakdown(b *testing.B, decomp string) {
	const n, nb, gpus = 256, 32, 2
	var m overhead.Measured
	for i := 0; i < b.N; i++ {
		before := obs.Default().Snapshot()
		runOnce(b, decomp, n, nb, gpus, core.Options{NB: nb, Mode: core.Full, Scheme: core.NewScheme, Kernel: checksum.OptKernel})
		m = overhead.FromSnapshots(before, obs.Default().Snapshot())
	}
	b.ReportMetric(1e3*m.Encode, "encode-ms")
	b.ReportMetric(1e3*m.Verify, "verify-ms")
	b.ReportMetric(1e3*m.Recover, "recover-ms")
	b.ReportMetric(100*m.Overhead(), "abft-%")
}

func BenchmarkPhaseBreakdownCholesky(b *testing.B) { benchPhaseBreakdown(b, "cholesky") }
func BenchmarkPhaseBreakdownLU(b *testing.B)       { benchPhaseBreakdown(b, "lu") }
func BenchmarkPhaseBreakdownQR(b *testing.B)       { benchPhaseBreakdown(b, "qr") }

// --- DESIGN.md §8: step-runtime schedules, serial vs look-ahead --------------

// lookaheadBenchRow is one BENCH_lookahead.json record: the wall and
// simulated cost of one decomposition under one schedule, with the phase
// breakdown attributed by overhead.FromSnapshots — the same mechanism that
// feeds cmd/ftserve -load and the /metrics histograms.
type lookaheadBenchRow struct {
	Decomp      string  `json:"decomp"`
	Lookahead   int     `json:"lookahead"`
	N           int     `json:"n"`
	NB          int     `json:"nb"`
	GPUs        int     `json:"gpus"`
	WallSeconds float64 `json:"wall_seconds"`
	SimMakespan float64 `json:"sim_makespan_seconds"`
	Encode      float64 `json:"encode_seconds"`
	Factorize   float64 `json:"factorize_seconds"`
	Verify      float64 `json:"verify_seconds"`
	Recover     float64 `json:"recover_seconds"`
	PCIe        float64 `json:"pcie_sim_seconds"`
}

var lookaheadBench struct {
	sync.Mutex
	rows map[string]lookaheadBenchRow
}

// recordLookaheadRow folds one schedule measurement into
// BENCH_lookahead.json, rewriting the artifact with every row collected so
// far (sorted, so reruns diff cleanly).
func recordLookaheadRow(b *testing.B, row lookaheadBenchRow) {
	b.Helper()
	lookaheadBench.Lock()
	defer lookaheadBench.Unlock()
	if lookaheadBench.rows == nil {
		lookaheadBench.rows = map[string]lookaheadBenchRow{}
	}
	lookaheadBench.rows[fmt.Sprintf("%s/la%d", row.Decomp, row.Lookahead)] = row
	out := make([]lookaheadBenchRow, 0, len(lookaheadBench.rows))
	for _, r := range lookaheadBench.rows {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Decomp != out[j].Decomp {
			return out[i].Decomp < out[j].Decomp
		}
		return out[i].Lookahead < out[j].Lookahead
	})
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatalf("marshal BENCH_lookahead.json: %v", err)
	}
	if err := os.WriteFile("BENCH_lookahead.json", append(data, '\n'), 0o644); err != nil {
		b.Fatalf("write BENCH_lookahead.json: %v", err)
	}
}

// benchLookahead measures one decomposition under one step-runtime
// schedule: wall time, simulated makespan (where the overlap shows up), and
// the wall phase breakdown.
func benchLookahead(b *testing.B, decomp string, lookahead int) {
	const n, nb, gpus = 512, 64, 2
	opts := core.Options{NB: nb, Mode: core.Full, Scheme: core.NewScheme,
		Kernel: checksum.OptKernel, Lookahead: lookahead}
	var m overhead.Measured
	var sim float64
	t0 := time.Now()
	for i := 0; i < b.N; i++ {
		before := obs.Default().Snapshot()
		sys := hetsim.New(hetsim.DefaultConfig(gpus))
		rng := matrix.NewRNG(uint64(n))
		var res *core.Result
		var err error
		switch decomp {
		case "cholesky":
			_, res, err = core.Cholesky(sys, matrix.RandomSPD(n, rng), opts)
		case "qr":
			_, _, res, err = core.QR(sys, matrix.Random(n, n, rng), opts)
		default:
			_, _, res, err = core.LU(sys, matrix.RandomDiagDominant(n, rng), opts)
		}
		if err != nil {
			b.Fatal(err)
		}
		m = overhead.FromSnapshots(before, obs.Default().Snapshot())
		sim = res.SimMakespan
	}
	wall := time.Since(t0).Seconds() / float64(b.N)
	b.ReportMetric(1e3*sim, "sim-ms")
	b.ReportMetric(1e3*m.ABFTSeconds(), "abft-ms")
	b.ReportMetric(1e3*m.Factorize, "factorize-ms")
	recordLookaheadRow(b, lookaheadBenchRow{
		Decomp: decomp, Lookahead: lookahead, N: n, NB: nb, GPUs: gpus,
		WallSeconds: wall, SimMakespan: sim,
		Encode: m.Encode, Factorize: m.Factorize, Verify: m.Verify,
		Recover: m.Recover, PCIe: m.PCIe,
	})
}

func BenchmarkLookaheadSerialCholesky(b *testing.B)  { benchLookahead(b, "cholesky", 0) }
func BenchmarkLookaheadOverlapCholesky(b *testing.B) { benchLookahead(b, "cholesky", 1) }
func BenchmarkLookaheadSerialLU(b *testing.B)        { benchLookahead(b, "lu", 0) }
func BenchmarkLookaheadOverlapLU(b *testing.B)       { benchLookahead(b, "lu", 1) }
func BenchmarkLookaheadSerialQR(b *testing.B)        { benchLookahead(b, "qr", 0) }
func BenchmarkLookaheadOverlapQR(b *testing.B)       { benchLookahead(b, "qr", 1) }

// --- Table VIII: protection-strength campaign -------------------------------

func BenchmarkTableVIII(b *testing.B) {
	cfg := campaign.DefaultConfig(campaign.LU)
	cfg.N, cfg.NB = 128, 16
	var survived, total int
	for i := 0; i < b.N; i++ {
		rows, err := campaign.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		survived, total = 0, 0
		for _, r := range rows {
			if r.Approach == "full+new" && r.Fired {
				total++
				if r.Outcome != core.CorruptedResult && r.Outcome != core.DetectedCorrupt {
					survived++
				}
			}
		}
	}
	b.ReportMetric(float64(survived), "cases-survived")
	b.ReportMetric(float64(total), "cases-total")
}

// --- Figs. 6–8 / 9–11: probability model ------------------------------------

func BenchmarkFig6to8(b *testing.B) {
	m := probmodel.PaperModel()
	var pFree float64
	for i := 0; i < b.N; i++ {
		for _, a := range probmodel.AllApproaches() {
			for _, op := range probmodel.AllOps() {
				pFree = m.Outcomes(a, op).P[probmodel.FaultFree]
			}
		}
	}
	b.ReportMetric(pFree, "p-fault-free-TMU")
}

func BenchmarkFig9to11(b *testing.B) {
	m := probmodel.PaperModel()
	rc := probmodel.DefaultCosts()
	var newCost, postCost float64
	for i := 0; i < b.N; i++ {
		newCost = m.ExpectedRecovery(probmodel.FullNew, probmodel.TMU, rc)
		postCost = m.ExpectedRecovery(probmodel.SingleSidePost, probmodel.TMU, rc)
	}
	b.ReportMetric(newCost*1e6, "new-us")
	b.ReportMetric(postCost*1e6, "single-post-us")
}

// --- Fig. 12: checksum-encoding kernels --------------------------------------

func benchFig12(b *testing.B, k checksum.Kernel, n, nb int) {
	a := matrix.Random(n, n, matrix.NewRNG(1))
	out := matrix.NewDense(checksum.ColDims(n, n, nb))
	b.SetBytes(int64(8 * n * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		checksum.EncodeCol(k, 4, a, nb, out)
	}
}

func BenchmarkFig12GEMM1024(b *testing.B) { benchFig12(b, checksum.GEMMKernel, 1024, 128) }
func BenchmarkFig12Opt1024(b *testing.B)  { benchFig12(b, checksum.OptKernel, 1024, 128) }
func BenchmarkFig12GEMM2048(b *testing.B) { benchFig12(b, checksum.GEMMKernel, 2048, 256) }
func BenchmarkFig12Opt2048(b *testing.B)  { benchFig12(b, checksum.OptKernel, 2048, 256) }

// --- Figs. 13–15: weak-scaling overhead --------------------------------------

func benchFig1315(b *testing.B, decomp string, gpus int, mode core.Mode, scheme core.Scheme, kernel checksum.Kernel) {
	const perGPU, nb = 192, 32
	n := perGPU
	for g := 2; g <= gpus; g *= 2 {
		n = n * 141 / 100 // ≈ sqrt(2) growth keeps the per-GPU footprint fixed
	}
	n = (n + nb - 1) / nb * nb
	base := runOnce(b, decomp, n, nb, gpus, core.Options{NB: nb, Mode: core.NoChecksum, Scheme: core.NoCheck})
	var prot float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prot = runOnce(b, decomp, n, nb, gpus, core.Options{NB: nb, Mode: mode, Scheme: scheme, Kernel: kernel})
	}
	b.ReportMetric(100*(prot-base)/base, "overhead-%")
}

func BenchmarkFig13Cholesky1GPU(b *testing.B) {
	benchFig1315(b, "cholesky", 1, core.Full, core.NewScheme, checksum.OptKernel)
}
func BenchmarkFig13Cholesky2GPU(b *testing.B) {
	benchFig1315(b, "cholesky", 2, core.Full, core.NewScheme, checksum.OptKernel)
}
func BenchmarkFig13Cholesky4GPU(b *testing.B) {
	benchFig1315(b, "cholesky", 4, core.Full, core.NewScheme, checksum.OptKernel)
}
func BenchmarkFig14LU1GPU(b *testing.B) {
	benchFig1315(b, "lu", 1, core.Full, core.NewScheme, checksum.OptKernel)
}
func BenchmarkFig14LU2GPU(b *testing.B) {
	benchFig1315(b, "lu", 2, core.Full, core.NewScheme, checksum.OptKernel)
}
func BenchmarkFig14LU4GPU(b *testing.B) {
	benchFig1315(b, "lu", 4, core.Full, core.NewScheme, checksum.OptKernel)
}
func BenchmarkFig15QR1GPU(b *testing.B) {
	benchFig1315(b, "qr", 1, core.Full, core.NewScheme, checksum.OptKernel)
}
func BenchmarkFig15QR2GPU(b *testing.B) {
	benchFig1315(b, "qr", 2, core.Full, core.NewScheme, checksum.OptKernel)
}
func BenchmarkFig15QR4GPU(b *testing.B) {
	benchFig1315(b, "qr", 4, core.Full, core.NewScheme, checksum.OptKernel)
}

// Ablation benches for the DESIGN.md §4 decisions.

// Ablation 1: prior-op vs post-op vs new scheme wall time (the checking
// scheme comparison behind Figs. 13–15's series).
func BenchmarkAblationSchemePrior(b *testing.B) {
	benchFig1315(b, "lu", 2, core.SingleSide, core.PriorOp, checksum.OptKernel)
}
func BenchmarkAblationSchemePost(b *testing.B) {
	benchFig1315(b, "lu", 2, core.SingleSide, core.PostOp, checksum.OptKernel)
}

// Ablation 2: the optimized encoding kernel's effect on total overhead.
func BenchmarkAblationKernelGEMM(b *testing.B) {
	benchFig1315(b, "lu", 2, core.Full, core.NewScheme, checksum.GEMMKernel)
}

// Ablation 3: single-side vs full checksum maintenance cost.
func BenchmarkAblationSingleSide(b *testing.B) {
	benchFig1315(b, "lu", 2, core.SingleSide, core.NewScheme, checksum.OptKernel)
}

// Ablation 4: block size sensitivity of the protected factorization.
func BenchmarkAblationBlockSize(b *testing.B) {
	for _, nb := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("nb%d", nb), func(b *testing.B) {
			var w float64
			for i := 0; i < b.N; i++ {
				w = runOnce(b, "lu", 384, nb, 2, core.Options{NB: nb, Mode: core.Full, Scheme: core.NewScheme, Kernel: checksum.OptKernel})
			}
			b.ReportMetric(w/1e6, "Mflops")
		})
	}
}

// Ablation 5: checksum granularity (DESIGN.md §4.1) — detection +
// localization cost of one corrupted element as the block size grows from
// fine-grained (fast localization, more checksum rows) to whole-matrix
// (one strip, as in non-blocked ABFT).
func BenchmarkAblationGranularity(b *testing.B) {
	const n = 1024
	for _, nb := range []int{32, 128, 1024} {
		b.Run(fmt.Sprintf("nb%d", nb), func(b *testing.B) {
			a := matrix.Random(n, n, matrix.NewRNG(1))
			chk := matrix.NewDense(checksum.ColDims(n, n, nb))
			checksum.EncodeCol(checksum.OptKernel, 4, a, nb, chk)
			orig := a.At(700, 300)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.Set(700, 300, orig+5)
				ms := checksum.VerifyCol(4, a, nb, chk, 1e-9)
				if len(ms) != 1 {
					b.Fatalf("mismatches = %d", len(ms))
				}
				lr, ok := checksum.LocateCol(ms[0], nb)
				if !ok {
					b.Fatal("localization failed")
				}
				checksum.CorrectCol(a, nb, ms[0], lr)
			}
		})
	}
}
