module ftla

go 1.22
