package ftla

import (
	"fmt"

	"ftla/internal/blas"
	"ftla/internal/core"
	"ftla/internal/hetsim"
	"ftla/internal/lapack"
	"ftla/internal/matrix"
)

// CholeskyResult holds a protected Cholesky factorization A = L·Lᵀ.
type CholeskyResult struct {
	// L is the lower-triangular factor (entries above the diagonal are
	// residual input values and should be ignored).
	L *Matrix
	// Report is the run's verification/recovery statistics.
	Report *Report
}

// Cholesky computes the protected Cholesky factorization of the symmetric
// positive definite matrix a.
func Cholesky(a *Matrix, cfg Config) (*CholeskyResult, error) {
	return CholeskyOn(NewSystem(cfg), a, cfg)
}

// CholeskyOn is Cholesky running on a caller-provided simulated system
// instead of constructing a fresh one — the amortization hook for serving
// layers that pool systems across jobs (cfg.System/cfg.GPUs are ignored;
// the caller picked the platform). The caller is responsible for handing in
// a clean system (see hetsim.System.Reset).
func CholeskyOn(sys *hetsim.System, a *Matrix, cfg Config) (*CholeskyResult, error) {
	_, opts := cfg.normalize()
	out, res, err := core.Cholesky(sys, a, opts)
	if err != nil {
		return nil, err
	}
	return &CholeskyResult{L: out, Report: res}, nil
}

// Solve solves A·x = b using the factor: L·y = b then Lᵀ·x = y.
func (r *CholeskyResult) Solve(b []float64) ([]float64, error) {
	n := r.L.Rows
	if len(b) != n {
		return nil, fmt.Errorf("ftla: rhs length %d != %d", len(b), n)
	}
	x := append([]float64(nil), b...)
	blas.Trsv(true, false, false, r.L, x)
	blas.Trsv(true, true, false, r.L, x)
	return x, nil
}

// Residual returns ‖A − L·Lᵀ‖_F / ‖A‖_F against the original matrix.
func (r *CholeskyResult) Residual(a *Matrix) float64 {
	return matrix.CholeskyResidual(a, r.L)
}

// LUResult holds a protected LU factorization P·A = L·U.
type LUResult struct {
	// Factors packs unit-lower L below the diagonal and U on/above it.
	Factors *Matrix
	// Pivots records the row interchanges: row k was swapped with
	// Pivots[k] at step k.
	Pivots []int
	// Report is the run's verification/recovery statistics.
	Report *Report
}

// LU computes the protected LU factorization with partial pivoting of a.
func LU(a *Matrix, cfg Config) (*LUResult, error) {
	return LUOn(NewSystem(cfg), a, cfg)
}

// LUOn is LU running on a caller-provided simulated system; see CholeskyOn.
func LUOn(sys *hetsim.System, a *Matrix, cfg Config) (*LUResult, error) {
	_, opts := cfg.normalize()
	out, piv, res, err := core.LU(sys, a, opts)
	if err != nil {
		return nil, err
	}
	return &LUResult{Factors: out, Pivots: piv, Report: res}, nil
}

// Solve solves A·x = b: apply P to b, forward-substitute L, back-substitute U.
func (r *LUResult) Solve(b []float64) ([]float64, error) {
	n := r.Factors.Rows
	if len(b) != n {
		return nil, fmt.Errorf("ftla: rhs length %d != %d", len(b), n)
	}
	x := append([]float64(nil), b...)
	for k, p := range r.Pivots {
		if p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	blas.Trsv(true, false, true, r.Factors, x)
	blas.Trsv(false, false, false, r.Factors, x)
	return x, nil
}

// Det returns the determinant of A from the factorization.
func (r *LUResult) Det() float64 {
	det := 1.0
	for i := 0; i < r.Factors.Rows; i++ {
		det *= r.Factors.At(i, i)
		if r.Pivots[i] != i {
			det = -det
		}
	}
	return det
}

// Residual returns ‖P·A − L·U‖_F / ‖A‖_F against the original matrix.
func (r *LUResult) Residual(a *Matrix) float64 {
	return matrix.LUResidual(a, r.Factors, r.Pivots)
}

// QRResult holds a protected QR factorization A = Q·R.
type QRResult struct {
	// Factors packs R in the upper triangle and the Householder vectors
	// below the diagonal.
	Factors *Matrix
	// Tau holds the reflector coefficients.
	Tau []float64
	// Report is the run's verification/recovery statistics.
	Report *Report
}

// QR computes the protected Householder QR factorization of a.
func QR(a *Matrix, cfg Config) (*QRResult, error) {
	return QROn(NewSystem(cfg), a, cfg)
}

// QROn is QR running on a caller-provided simulated system; see CholeskyOn.
func QROn(sys *hetsim.System, a *Matrix, cfg Config) (*QRResult, error) {
	_, opts := cfg.normalize()
	out, tau, res, err := core.QR(sys, a, opts)
	if err != nil {
		return nil, err
	}
	return &QRResult{Factors: out, Tau: tau, Report: res}, nil
}

// Q materializes the explicit orthogonal factor (n×n).
func (r *QRResult) Q() *Matrix { return lapack.BuildQ(r.Factors, r.Tau) }

// R extracts the upper-triangular factor.
func (r *QRResult) R() *Matrix { return lapack.ExtractR(r.Factors) }

// Solve solves the (square) system A·x = b via R·x = Qᵀ·b. For m > n
// inputs this is the least-squares solution.
func (r *QRResult) Solve(b []float64) ([]float64, error) {
	m := r.Factors.Rows
	if len(b) != m {
		return nil, fmt.Errorf("ftla: rhs length %d != %d", len(b), m)
	}
	// y = Qᵀ·b, applying the reflectors forward without materializing Q.
	y := append([]float64(nil), b...)
	for j := 0; j < len(r.Tau); j++ {
		if r.Tau[j] == 0 {
			continue
		}
		// w = vᵀ·y
		w := y[j]
		for i := j + 1; i < m; i++ {
			w += r.Factors.At(i, j) * y[i]
		}
		tw := r.Tau[j] * w
		y[j] -= tw
		for i := j + 1; i < m; i++ {
			y[i] -= tw * r.Factors.At(i, j)
		}
	}
	// Back-substitute R·x = y on the leading n×n block.
	n := r.Factors.Cols
	x := y[:n]
	blas.Trsv(false, false, false, r.Factors.View(0, 0, n, n), x)
	return x, nil
}

// Residual returns ‖A − Q·R‖_F / ‖A‖_F against the original matrix.
func (r *QRResult) Residual(a *Matrix) float64 {
	return matrix.QRResidual(a, r.Q(), r.R())
}
