// Batched-serving throughput study: jobs/sec on the small-matrix mix as a
// function of batch size, the regime the batched drivers exist for. The
// measurements use the simulated clock (deterministic on any host; see
// DESIGN.md §5.9), so TestBatchThroughputGate can gate on them in check.sh
// while BenchmarkBatchThroughput regenerates BENCH_batch.json.
package ftla

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"
)

// batchMixN/batchMixNB shape the small-matrix mix: tiny problems where the
// fixed per-transfer PCIe latency dominates the sub-microsecond compute and
// per-job protection overhead is proportionally worst — exactly what the
// batched drivers amortize.
const (
	batchMixN      = 64
	batchMixNB     = 32
	batchMixGPUs   = 2
	batchMixPerDec = 64 // jobs per decomposition; divisible by every batch size
)

func batchMixConfig() Config {
	return Config{GPUs: batchMixGPUs, NB: batchMixNB, Protection: FullChecksum, Scheme: NewScheme}
}

// batchMixJobs builds the per-decomposition inputs of the mix, each item
// from its own seed.
func batchMixJobs(decomp string) []*Matrix {
	ms := make([]*Matrix, batchMixPerDec)
	for i := range ms {
		seed := uint64(301 + 7*i)
		switch decomp {
		case "cholesky":
			ms[i] = RandomSPD(batchMixN, seed)
		case "lu":
			ms[i] = RandomDiagDominant(batchMixN, seed)
		default:
			ms[i] = Random(batchMixN, batchMixN, seed)
		}
	}
	return ms
}

// runBatchMix pushes the whole mix (all three decompositions) through in
// chunks of batchSize — solo dispatches for size 1, batched dispatches
// otherwise, each chunk on a fresh system — and returns total jobs and the
// summed simulated makespan.
func runBatchMix(t testing.TB, batchSize int) (jobs int, simSeconds float64) {
	t.Helper()
	cfg := batchMixConfig()
	for _, decomp := range []string{"cholesky", "lu", "qr"} {
		ms := batchMixJobs(decomp)
		for lo := 0; lo < len(ms); lo += batchSize {
			chunk := ms[lo : lo+batchSize]
			sys := NewSystem(cfg)
			var err error
			if batchSize == 1 {
				// The unbatched baseline takes the ordinary solo path.
				switch decomp {
				case "cholesky":
					_, err = CholeskyOn(sys, chunk[0], cfg)
				case "lu":
					_, err = LUOn(sys, chunk[0], cfg)
				default:
					_, err = QROn(sys, chunk[0], cfg)
				}
			} else {
				var errs []error
				switch decomp {
				case "cholesky":
					_, errs, err = CholeskyBatchOn(sys, chunk, cfg)
				case "lu":
					_, errs, err = LUBatchOn(sys, chunk, cfg)
				default:
					_, errs, err = QRBatchOn(sys, chunk, cfg)
				}
				for i, e := range errs {
					if e != nil {
						t.Fatalf("%s batch item %d: %v", decomp, i, e)
					}
				}
			}
			if err != nil {
				t.Fatalf("%s chunk at %d (batch %d): %v", decomp, lo, batchSize, err)
			}
			jobs += len(chunk)
			simSeconds += sys.TimelineMakespan()
		}
	}
	return jobs, simSeconds
}

// batchBenchRow is one BENCH_batch.json record.
type batchBenchRow struct {
	BatchSize   int     `json:"batch_size"`
	Jobs        int     `json:"jobs"`
	N           int     `json:"n"`
	NB          int     `json:"nb"`
	GPUs        int     `json:"gpus"`
	SimSeconds  float64 `json:"sim_seconds"`
	JobsPerSec  float64 `json:"jobs_per_sim_sec"`
	Speedup     float64 `json:"speedup_vs_unbatched"`
	WallSeconds float64 `json:"wall_seconds"`
}

var batchSizes = []int{1, 4, 16, 64}

// collectBatchRows measures the whole sweep and writes BENCH_batch.json.
func collectBatchRows(t testing.TB) []batchBenchRow {
	rows := make([]batchBenchRow, 0, len(batchSizes))
	for _, bs := range batchSizes {
		t0 := time.Now()
		jobs, sim := runBatchMix(t, bs)
		rows = append(rows, batchBenchRow{
			BatchSize: bs, Jobs: jobs, N: batchMixN, NB: batchMixNB, GPUs: batchMixGPUs,
			SimSeconds: sim, JobsPerSec: float64(jobs) / sim,
			WallSeconds: time.Since(t0).Seconds(),
		})
	}
	for i := range rows {
		rows[i].Speedup = rows[i].JobsPerSec / rows[0].JobsPerSec
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatalf("marshal BENCH_batch.json: %v", err)
	}
	if err := os.WriteFile("BENCH_batch.json", append(data, '\n'), 0o644); err != nil {
		t.Fatalf("write BENCH_batch.json: %v", err)
	}
	return rows
}

// BenchmarkBatchThroughput regenerates BENCH_batch.json: simulated jobs/sec
// on the small-matrix mix at batch sizes 1/4/16/64.
func BenchmarkBatchThroughput(b *testing.B) {
	var rows []batchBenchRow
	for i := 0; i < b.N; i++ {
		rows = collectBatchRows(b)
	}
	for _, r := range rows {
		b.ReportMetric(r.JobsPerSec, fmt.Sprintf("jobs-per-sim-sec-b%d", r.BatchSize))
	}
}

// TestBatchThroughputGate is the check.sh acceptance gate on the batched
// subsystem: simulated jobs/sec must scale monotonically with batch size
// and reach ≥ 2× the unbatched baseline at batch 16 on the small-matrix
// mix. The simulated clock makes the assertion exact and host-independent.
func TestBatchThroughputGate(t *testing.T) {
	rows := collectBatchRows(t)
	for i := 1; i < len(rows); i++ {
		if rows[i].JobsPerSec < rows[i-1].JobsPerSec {
			t.Fatalf("jobs/sec not monotone: batch %d gives %.1f < batch %d's %.1f",
				rows[i].BatchSize, rows[i].JobsPerSec, rows[i-1].BatchSize, rows[i-1].JobsPerSec)
		}
	}
	var b1, b16 float64
	for _, r := range rows {
		switch r.BatchSize {
		case 1:
			b1 = r.JobsPerSec
		case 16:
			b16 = r.JobsPerSec
		}
	}
	if b16 < 2*b1 {
		t.Fatalf("batch-16 throughput %.1f jobs/sim-sec < 2x unbatched %.1f", b16, b1)
	}
	t.Logf("batch speedups: x4=%.2f x16=%.2f x64=%.2f",
		rows[1].Speedup, rows[2].Speedup, rows[3].Speedup)
}
