package ftla

import (
	"testing"

	"ftla/internal/core"
	"ftla/internal/hetsim"
)

// The zero Config must upgrade to the paper's recommended protection —
// full checksums under the new scheme — so the no-thought default is the
// protected one.
func TestNormalizeZeroValueUpgrades(t *testing.T) {
	cfg, opts := Config{}.normalize()
	if cfg.GPUs != 1 || cfg.NB != 64 {
		t.Fatalf("defaults GPUs=%d NB=%d, want 1/64", cfg.GPUs, cfg.NB)
	}
	if opts.Mode != core.Full || opts.Scheme != core.NewScheme {
		t.Fatalf("zero config normalized to %v/%v, want full/new", opts.Mode, opts.Scheme)
	}
}

// Unprotected must NOT be upgraded: its explicit marker pins the
// NoChecksum/NoCheck pair even though those are the zero values the
// upgrade looks for.
func TestNormalizeUnprotectedStaysUnprotected(t *testing.T) {
	cfg, opts := Unprotected(2).normalize()
	if cfg.GPUs != 2 {
		t.Fatalf("GPUs = %d, want 2", cfg.GPUs)
	}
	if opts.Mode != core.NoChecksum || opts.Scheme != core.NoCheck {
		t.Fatalf("Unprotected normalized to %v/%v, want none/none", opts.Mode, opts.Scheme)
	}
}

// A partially explicit protection choice must survive normalization
// untouched — only the all-zero pair is upgraded.
func TestNormalizeRespectsExplicitChoice(t *testing.T) {
	_, opts := Config{Protection: SingleSide, Scheme: PostOp}.normalize()
	if opts.Mode != core.SingleSide || opts.Scheme != core.PostOp {
		t.Fatalf("explicit single-side/post-op normalized to %v/%v", opts.Mode, opts.Scheme)
	}
}

func TestSystemConfigMatchesPlatform(t *testing.T) {
	if got, want := (Config{GPUs: 3}).SystemConfig(), hetsim.DefaultConfig(3); got != want {
		t.Fatalf("SystemConfig = %+v, want default platform %+v", got, want)
	}
	custom := hetsim.DefaultConfig(1)
	custom.GPUGflops = 123
	if got := (Config{System: &custom}).SystemConfig(); got != custom {
		t.Fatalf("SystemConfig = %+v, want the override %+v", got, custom)
	}
}

// The *On entry points must run on exactly the provided system: its
// simulated clocks advance, and a second run after Reset reproduces the
// same factor (system reuse is deterministic).
func TestCholeskyOnProvidedSystem(t *testing.T) {
	cfg := Config{GPUs: 2, NB: 16}
	sys := NewSystem(cfg)
	a := RandomSPD(64, 5)
	res, err := CholeskyOn(sys, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual(a) > 1e-10 {
		t.Fatalf("residual %g", res.Residual(a))
	}
	if sys.SimMakespan() <= 0 {
		t.Fatal("provided system saw no simulated work")
	}
	sys.Reset()
	res2, err := CholeskyOn(sys, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		for j := 0; j <= i; j++ {
			if res.L.At(i, j) != res2.L.At(i, j) {
				t.Fatalf("reused system not deterministic at (%d,%d)", i, j)
			}
		}
	}
}
