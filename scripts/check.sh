#!/usr/bin/env bash
# Tier-1 gate: everything must build, vet clean, be gofmt'd, keep its
# godoc contract, and pass the full test suite under the race detector
# (the serving layer is concurrency-heavy; a non-race run is not a
# passing run).
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...

# Formatting: gofmt -l prints offending files; any output is a failure.
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

# Documentation lint: the observability and serving packages export their
# metric names, trace schema, and job API as a documented contract —
# every exported identifier there must carry a doc comment.
go run ./scripts/doclint internal/obs internal/service

# README lint: the config-reference and ftserve-flag tables in README.md
# must cover every exported ftla.Config field and every registered flag
# (regenerate the flag table with `go run ./cmd/ftserve -print-flags`).
go run ./scripts/readmelint

# Step-runtime lint: driver files must go through the runtime's es.kernel /
# es.transfer wrappers (which carry stream routing, abort plumbing, and
# stage spans) — never call the simulator directly. See DESIGN.md §8.
drivers="internal/core/cholesky.go internal/core/lu.go internal/core/qr.go"
if grep -nE 'sys\.Transfer\(|\.Run\(' $drivers; then
    echo "drivers must use the step runtime's es.kernel/es.transfer wrappers," >&2
    echo "not direct sys.Transfer(...)/dev.Run(...) calls (DESIGN.md §8)" >&2
    exit 1
fi

# Reliable-transfer lint: ALL of internal/core must move data through the
# reliable path (es.transfer / sys.TransferReliable*), never the raw
# sys.Transfer/sys.TransferCtx — a raw call is a hole in the link-fault
# protection the factorization depends on. See RESILIENCE.md.
if grep -rnE 'sys\.Transfer\(|sys\.TransferCtx\(' internal/core/; then
    echo "internal/core must use the reliable-transfer path (es.transfer /" >&2
    echo "sys.TransferReliable), never raw sys.Transfer/sys.TransferCtx" >&2
    exit 1
fi

# Cross-node transfer lint: the coded-redundancy layer moves parity and
# reconstruction traffic between nodes, and that motion must go through
# es.netTransfer — the wrapper that rides the reliable path AND lands in
# the inter-node accounting gates and BENCH_cluster.json measure. A raw
# es.transfer in coded.go is cross-node traffic hidden from the books.
# See DESIGN.md §11.
if grep -nE 'es\.transfer\(' internal/core/coded.go; then
    echo "internal/core/coded.go moves data across nodes and must use" >&2
    echo "es.netTransfer, not es.transfer (DESIGN.md §11)" >&2
    exit 1
fi

# Galois-field lint: internal/gf is the erasure code's arithmetic kernel
# and must stay dependency-free (standard library only) — it is the one
# piece of the coded-redundancy layer that is independently auditable
# against the GF(2^8) literature, and an ftla import would drag simulator
# state into pure field arithmetic. See DESIGN.md §11.
if grep -rnE '"ftla(/|")' internal/gf/; then
    echo "internal/gf must stay dependency-free (stdlib only): the erasure" >&2
    echo "code's field arithmetic cannot import the rest of the tree" >&2
    exit 1
fi

go test -race -timeout 5m ./...

# Chaos gate: the fail-stop/graceful-degradation suites (see RESILIENCE.md)
# run a second time at -count=2 to shake out order- and reuse-dependent
# flakiness (pool probation, quarantine state, goroutine leaks).
go test -race -timeout 5m -run 'Chaos|Storm' -count=2 ./...

# Recovery gate: the checkpoint/rollback/resume suites — the bit-identity
# invariant (a run killed by device loss and resumed from its checkpoint
# equals an uninterrupted run on the same final device set) and the
# rollback-instead-of-abort path — run a second time at -count=2 under
# -race; resume replays are the newest state machine in the step runtime.
go test -race -timeout 5m -run 'TestResume|TestRollback|TestCheckpoint' -count=2 ./internal/core

# Schedule gate: the step-runtime and stream suites run a second time at
# -count=2 — look-ahead interleavings are the newest concurrency in the
# tree, and reuse across -count runs exercises stream/pool recycling.
go test -race -timeout 5m -run 'TestPipeline|TestStream' -count=2 ./internal/core ./internal/hetsim

# Makespan gate: the look-ahead speedup assertion is skipped under -race
# (the race runtime's ~10-20x slowdown makes the n=2560 run impractical),
# so run it here without the detector. This is the only place the ≥15%
# overlap-improvement acceptance criterion is checked.
go test -timeout 5m -run 'TestPipelineLookaheadHidesPanelWork' ./internal/core

# Rebalance gate: dynamic partitioning must claw back >=40% of the
# makespan inflation a 4x straggler causes, per decomposition, and be
# bit-identical to the static layout on uniform devices (the identity
# half lives in the core suite above). The assertion is on the simulated
# clock, so it holds under -race — and the rebalance/migration path is
# new concurrency worth running under the detector (writes
# BENCH_rebalance.json).
go test -race -timeout 5m -run 'TestRebalanceMakespanGate' .

# Link-fault recovery gate: with fixed-rate corruption armed on 1 of 3
# links, >=90% of jobs across all three decompositions must complete with
# no job-level retry and every completed factor must be bit-identical to a
# clean run (zero silent corruption); exhausted links must surface typed
# *LinkError. -count=2 shakes out state leaking between runs through the
# process-global metrics and pooled systems.
go test -race -timeout 5m -run 'TestLinkFaultRecoveryGate' -count=2 .

# Batch-throughput gate: batched small-matrix serving must amortize
# per-step transfer latency — simulated-clock throughput must rise
# monotonically with batch size and reach >=2x solo throughput at batch
# 16 (writes BENCH_batch.json). Run without -race for the same reason as
# the makespan gate: the assertion is on simulated time, not wall time.
go test -timeout 5m -run 'TestBatchThroughputGate' .

# Node-loss recovery gate: on a fleet of 3-node cluster jobs where a third
# lose one node mid-run (absorbed in place by the erasure-coded parity)
# and a third lose two (failover ladder: quarantine, carve the node out,
# retry degraded), >=90% of jobs must complete and not one completed job
# may carry a silently wrong factor. The bit-identity half of the claim
# (reconstructed == uninterrupted, to the bit) lives in the core suite
# (TestClusterNodeLossReconstructBitIdentical), which the full -race run
# above already covers; -count=2 here shakes out pool/quarantine state
# leaking between runs.
go test -race -timeout 5m -run 'TestNodeLossRecoveryGate' -count=2 ./internal/service

# Multi-node-loss recovery gate: a fleet of r=2 cluster jobs on 4-node
# platforms absorbing one loss, two sequential losses, and two-node
# correlated bursts — every loss inside the redundancy budget, so >=90%
# of jobs must complete, zero may carry a silently wrong factor, and the
# failover ladder must never engage (the losses are absorbed BELOW the
# jobs by the [k+r, k] erasure decode). The bit-identity half
# (double-loss reconstruction == uninterrupted, to the bit, sequential
# AND simultaneous) lives in the core suite
# (TestClusterDoubleNodeLossBitIdentical), covered by the full -race run
# above; -count=2 here shakes out pool/quarantine state leaking between
# runs.
go test -race -timeout 5m -run 'TestMultiNodeLossRecoveryGate' -count=2 ./internal/service
