#!/usr/bin/env bash
# Tier-1 gate: everything must build, vet clean, be gofmt'd, keep its
# godoc contract, and pass the full test suite under the race detector
# (the serving layer is concurrency-heavy; a non-race run is not a
# passing run).
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...

# Formatting: gofmt -l prints offending files; any output is a failure.
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

# Documentation lint: the observability and serving packages export their
# metric names, trace schema, and job API as a documented contract —
# every exported identifier there must carry a doc comment.
go run ./scripts/doclint internal/obs internal/service

go test -race -timeout 5m ./...

# Chaos gate: the fail-stop/graceful-degradation suites (see RESILIENCE.md)
# run a second time at -count=2 to shake out order- and reuse-dependent
# flakiness (pool probation, quarantine state, goroutine leaks).
go test -race -timeout 5m -run 'Chaos|Storm' -count=2 ./...
