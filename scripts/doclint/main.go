// Command doclint fails when a Go package exports an undocumented
// identifier. It is the documentation gate wired into scripts/check.sh:
// packages whose godoc is part of their contract (internal/obs,
// internal/service) must keep every exported type, function, method,
// constant, and variable documented.
//
// Usage:
//
//	go run ./scripts/doclint <pkg-dir> [pkg-dir...]
//
// A const/var/type group's doc comment covers every spec in the group, as
// in standard godoc; a spec's own doc comment or trailing line comment
// also counts. Test files are ignored. Exit status 1 lists each offender
// as path:line: name.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint <pkg-dir> [pkg-dir...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		bad += lintDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d undocumented exported identifier(s)\n", bad)
		os.Exit(1)
	}
}

func lintDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
		os.Exit(2)
	}
	bad := 0
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				bad += lintDecl(fset, decl)
			}
		}
	}
	return bad
}

func lintDecl(fset *token.FileSet, decl ast.Decl) int {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && exportedRecv(d) && d.Doc == nil {
			report(fset, d.Pos(), d.Name.Name)
			return 1
		}
	case *ast.GenDecl:
		bad := 0
		for _, spec := range d.Specs {
			// The group comment documents the whole block (const/var
			// groups); a spec-level doc or trailing comment documents one
			// spec.
			documented := d.Doc != nil
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				if !documented && s.Doc == nil && s.Comment == nil {
					report(fset, s.Pos(), s.Name.Name)
					bad++
				}
			case *ast.ValueSpec:
				if documented || s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, name := range s.Names {
					if name.IsExported() {
						report(fset, name.Pos(), name.Name)
						bad++
					}
				}
			}
		}
		return bad
	}
	return 0
}

// exportedRecv reports whether a method's receiver type is exported (or
// the decl is a plain function); methods on unexported types are internal
// even when their own name is capitalized.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return !ok || id.IsExported()
}

func report(fset *token.FileSet, pos token.Pos, name string) {
	p := fset.Position(pos)
	fmt.Printf("%s:%d: exported %s is undocumented\n", p.Filename, p.Line, name)
}
