// Command readmelint keeps README.md's reference tables honest: it
// extracts the exported fields of ftla.Config from the source (go/ast)
// and the registered ftserve flag names from cmd/ftserve/main.go, then
// fails when any of them is missing from the README — the generate-and-
// diff companion to scripts/doclint, wired into scripts/check.sh so the
// docs cannot drift behind the config surface again.
//
// Usage (from the repository root):
//
//	go run ./scripts/readmelint
//
// Exit status 1 lists each missing entry. The tables themselves are
// regenerated with `go run ./cmd/ftserve -print-flags` /
// `-print-endpoints`; the Config table is maintained by hand against
// ftla.go's godoc.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		fmt.Fprintf(os.Stderr, "readmelint: %v (run from the repository root)\n", err)
		os.Exit(2)
	}
	doc := string(readme)

	missing := 0
	for _, field := range configFields("ftla.go") {
		if !strings.Contains(doc, "`"+field+"`") {
			fmt.Fprintf(os.Stderr, "readmelint: ftla.Config.%s missing from README.md (config reference table)\n", field)
			missing++
		}
	}
	for _, name := range flagNames("cmd/ftserve/main.go") {
		if !strings.Contains(doc, "`-"+name+"`") {
			fmt.Fprintf(os.Stderr, "readmelint: ftserve flag -%s missing from README.md (regenerate with `go run ./cmd/ftserve -print-flags`)\n", name)
			missing++
		}
	}
	if missing > 0 {
		fmt.Fprintf(os.Stderr, "readmelint: %d reference-table entries missing\n", missing)
		os.Exit(1)
	}
}

// configFields returns the exported field names of `type Config struct`
// in the given file.
func configFields(path string) []string {
	f := parse(path)
	var fields []string
	ast.Inspect(f, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok || ts.Name.Name != "Config" {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		for _, fl := range st.Fields.List {
			for _, name := range fl.Names {
				if name.IsExported() {
					fields = append(fields, name.Name)
				}
			}
		}
		return false
	})
	if len(fields) == 0 {
		fmt.Fprintf(os.Stderr, "readmelint: no exported Config fields found in %s\n", path)
		os.Exit(2)
	}
	return fields
}

// flagNames returns the first-argument string literals of every
// flag.String/Int/Bool/... registration call in the given file.
func flagNames(path string) []string {
	f := parse(path)
	var names []string
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 1 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != "flag" {
			return true
		}
		switch sel.Sel.Name {
		case "Bool", "Int", "Int64", "Uint", "Uint64", "Float64", "String", "Duration":
		default:
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		names = append(names, strings.Trim(lit.Value, `"`))
		return true
	})
	if len(names) == 0 {
		fmt.Fprintf(os.Stderr, "readmelint: no flag registrations found in %s\n", path)
		os.Exit(2)
	}
	return names
}

func parse(path string) *ast.File {
	f, err := parser.ParseFile(token.NewFileSet(), path, nil, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "readmelint: %v\n", err)
		os.Exit(2)
	}
	return f
}
