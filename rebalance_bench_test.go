// Dynamic-partitioning makespan study: how much of the makespan inflation
// a 4x straggler causes does the rebalancer claw back? The measurements
// use the simulated clock (deterministic on any host; see DESIGN.md §5.9),
// so TestRebalanceMakespanGate can gate on them in check.sh while
// BenchmarkRebalance regenerates BENCH_rebalance.json.
package ftla

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"ftla/internal/hetsim"
)

// rebBenchN/rebBenchNB shape the study: a trailing-update-dominated run
// (16 ladder steps over 3 GPUs) where one device's share of each step is
// large enough that slowing it 4x inflates every step to its pace. The
// platform dials the nominal GPU rate down so the run is compute-bound at
// this (wall-clock-friendly) order — the regime the rebalancer targets;
// at the default 1000 Gflops a n=384 run is >99% PCIe time and no work
// split could change its makespan.
const (
	rebBenchN      = 512
	rebBenchNB     = 32
	rebBenchGPUs   = 3
	rebBenchGflops = 1
	rebSlowdown    = 4
	rebEvery       = 1
)

func rebBenchSystem() *hetsim.Config {
	sc := hetsim.DefaultConfig(rebBenchGPUs)
	sc.GPUGflops = rebBenchGflops
	return &sc
}

func rebBenchInput(decomp string) *Matrix {
	switch decomp {
	case "cholesky":
		return RandomSPD(rebBenchN, 71)
	case "lu":
		return RandomDiagDominant(rebBenchN, 72)
	default:
		return Random(rebBenchN, rebBenchN, 73)
	}
}

// runRebCase runs one decomposition and returns the simulated makespan.
// straggle arms a 4x straggler on GPU1 from the first operation; dynamic
// turns the rebalancer on.
func runRebCase(t testing.TB, decomp string, straggle, dynamic bool) (mk float64, moved int) {
	t.Helper()
	cfg := Config{GPUs: rebBenchGPUs, NB: rebBenchNB, Lookahead: 1, System: rebBenchSystem()}
	if straggle {
		cfg.FailStop = map[int]FailStopPlan{1: {Mode: FailStraggler, Slowdown: rebSlowdown}}
	}
	if dynamic {
		cfg.Rebalance = RebalanceConfig{Every: rebEvery}
	}
	sys := NewSystem(cfg)
	a := rebBenchInput(decomp)
	var rep *Report
	var err error
	switch decomp {
	case "cholesky":
		var r *CholeskyResult
		r, err = CholeskyOn(sys, a, cfg)
		if err == nil {
			rep = r.Report
		}
	case "lu":
		var r *LUResult
		r, err = LUOn(sys, a, cfg)
		if err == nil {
			rep = r.Report
		}
	default:
		var r *QRResult
		r, err = QROn(sys, a, cfg)
		if err == nil {
			rep = r.Report
		}
	}
	if err != nil {
		t.Fatalf("%s (straggle=%v dynamic=%v): %v", decomp, straggle, dynamic, err)
	}
	return sys.TimelineMakespan(), rep.MovedColumns
}

// rebBenchRow is one BENCH_rebalance.json record.
type rebBenchRow struct {
	Decomp        string  `json:"decomp"`
	N             int     `json:"n"`
	NB            int     `json:"nb"`
	GPUs          int     `json:"gpus"`
	Slowdown      int     `json:"straggler_slowdown"`
	StaticClean   float64 `json:"static_clean_sim_seconds"`
	StaticSlow    float64 `json:"static_straggler_sim_seconds"`
	DynamicSlow   float64 `json:"rebalance_straggler_sim_seconds"`
	MovedColumns  int     `json:"moved_columns"`
	RecoveredFrac float64 `json:"recovered_inflation_fraction"`
	WallSeconds   float64 `json:"wall_seconds"`
}

// collectRebRows measures the three-way comparison per decomposition and
// writes BENCH_rebalance.json.
func collectRebRows(t testing.TB) []rebBenchRow {
	rows := make([]rebBenchRow, 0, 3)
	for _, decomp := range []string{"cholesky", "lu", "qr"} {
		t0 := time.Now()
		clean, _ := runRebCase(t, decomp, false, false)
		slow, _ := runRebCase(t, decomp, true, false)
		dyn, moved := runRebCase(t, decomp, true, true)
		row := rebBenchRow{
			Decomp: decomp, N: rebBenchN, NB: rebBenchNB, GPUs: rebBenchGPUs,
			Slowdown:    rebSlowdown,
			StaticClean: clean, StaticSlow: slow, DynamicSlow: dyn,
			MovedColumns: moved,
			WallSeconds:  time.Since(t0).Seconds(),
		}
		if slow > clean {
			row.RecoveredFrac = (slow - dyn) / (slow - clean)
		}
		rows = append(rows, row)
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatalf("marshal BENCH_rebalance.json: %v", err)
	}
	if err := os.WriteFile("BENCH_rebalance.json", append(data, '\n'), 0o644); err != nil {
		t.Fatalf("write BENCH_rebalance.json: %v", err)
	}
	return rows
}

// BenchmarkRebalance regenerates BENCH_rebalance.json: simulated makespans
// of static-clean / static-straggler / rebalance-straggler runs per
// decomposition, with the recovered fraction of the straggler-induced
// inflation.
func BenchmarkRebalance(b *testing.B) {
	var rows []rebBenchRow
	for i := 0; i < b.N; i++ {
		rows = collectRebRows(b)
	}
	for _, r := range rows {
		b.ReportMetric(r.RecoveredFrac, r.Decomp+"-recovered-frac")
	}
}

// TestRebalanceMakespanGate is the check.sh acceptance gate on dynamic
// partitioning: with one of three GPUs strangled 4x, turning the
// rebalancer on must recover at least 40% of the straggler-induced
// makespan inflation for every decomposition, and must actually migrate
// columns doing it. The simulated clock makes the assertion exact and
// host-independent.
func TestRebalanceMakespanGate(t *testing.T) {
	rows := collectRebRows(t)
	for _, r := range rows {
		if r.StaticSlow <= r.StaticClean {
			t.Fatalf("%s: straggler did not inflate the makespan (%.4f vs %.4f)",
				r.Decomp, r.StaticSlow, r.StaticClean)
		}
		if r.MovedColumns == 0 {
			t.Fatalf("%s: rebalancer moved no columns under a 4x straggler", r.Decomp)
		}
		if r.RecoveredFrac < 0.40 {
			t.Fatalf("%s: recovered only %.0f%% of the straggler inflation (clean %.4fs, straggler %.4fs, rebalanced %.4fs); gate is 40%%",
				r.Decomp, 100*r.RecoveredFrac, r.StaticClean, r.StaticSlow, r.DynamicSlow)
		}
		t.Logf("%s: recovered %.0f%% (clean %.4fs → straggler %.4fs → rebalanced %.4fs, %d columns moved)",
			r.Decomp, 100*r.RecoveredFrac, r.StaticClean, r.StaticSlow, r.DynamicSlow, r.MovedColumns)
	}
}
