package ftla

import (
	"math"
	"testing"

	"ftla/internal/core"
)

func residualVec(a *Matrix, x, b []float64) float64 {
	n := a.Rows
	max := 0.0
	for i := 0; i < n; i++ {
		s := 0.0
		row := a.Row(i)
		for j, v := range row {
			s += v * x[j]
		}
		if d := math.Abs(s - b[i]); d > max {
			max = d
		}
	}
	return max
}

func TestCholeskySolve(t *testing.T) {
	n := 128
	a := RandomSPD(n, 1)
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i + 1)
	}
	res, err := Cholesky(a, Config{GPUs: 2, NB: 32})
	if err != nil {
		t.Fatal(err)
	}
	x, err := res.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if d := residualVec(a, x, b); d > 1e-8 {
		t.Fatalf("solve residual %g", d)
	}
	if res.Report.Mode != FullChecksum || res.Report.Scheme != NewScheme {
		t.Fatal("zero-value config must default to full+new")
	}
}

func TestLUSolveAndDet(t *testing.T) {
	n := 96
	a := RandomDiagDominant(n, 2)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	res, err := LU(a, Config{GPUs: 2, NB: 16})
	if err != nil {
		t.Fatal(err)
	}
	x, err := res.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if d := residualVec(a, x, b); d > 1e-8 {
		t.Fatalf("solve residual %g", d)
	}
	if res.Det() == 0 || math.IsNaN(res.Det()) {
		t.Fatalf("determinant %v", res.Det())
	}
	if r := res.Residual(a); r > 1e-11 {
		t.Fatalf("factor residual %g", r)
	}
}

func TestQRSolve(t *testing.T) {
	n := 96
	a := Random(n, n, 3)
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	res, err := QR(a, Config{GPUs: 2, NB: 16})
	if err != nil {
		t.Fatal(err)
	}
	x, err := res.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if d := residualVec(a, x, b); d > 1e-7 {
		t.Fatalf("solve residual %g", d)
	}
	if r := res.Residual(a); r > 1e-11 {
		t.Fatalf("factor residual %g", r)
	}
}

func TestUnprotectedConfig(t *testing.T) {
	a := RandomSPD(64, 4)
	res, err := Cholesky(a, Unprotected(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Mode != NoProtection {
		t.Fatal("Unprotected config ran protected")
	}
	if res.Report.Counter.TotalChecked() != 0 {
		t.Fatal("unprotected run performed verifications")
	}
}

func TestInjectionThroughPublicAPI(t *testing.T) {
	inj := NewInjector(7)
	inj.Schedule(FaultSpec{Kind: FaultDRAM, Op: OpTMU, Iteration: 1, Part: RefPart})
	a := RandomDiagDominant(96, 5)
	res, err := LU(a, Config{GPUs: 2, NB: 16, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	if len(inj.Events()) != 1 {
		t.Fatal("fault did not fire through the public API")
	}
	if r := res.Residual(a); r > 1e-11 {
		t.Fatalf("residual %g after injected fault", r)
	}
	if res.Report.OutcomeOf(true) == core.FaultFree {
		t.Fatal("outcome should reflect detection/repair")
	}
}

func TestSolveLengthValidation(t *testing.T) {
	a := RandomSPD(64, 6)
	res, err := Cholesky(a, Config{NB: 32})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Solve(make([]float64, 7)); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestMatrixConstructors(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatal("FromRows wrong")
	}
	if NewMatrix(3, 4).Rows != 3 {
		t.Fatal("NewMatrix wrong")
	}
	if Random(5, 5, 1).Equal(Random(5, 5, 2)) {
		t.Fatal("different seeds should differ")
	}
	if !Random(5, 5, 9).Equal(Random(5, 5, 9)) {
		t.Fatal("same seed must reproduce")
	}
}
