// Cluster-scaling study: what the node-aware topology costs and what the
// coded redundancy buys. For each node count the same factorization runs
// once clean and once with a whole-node loss absorbed mid-run by parity
// reconstruction; the simulated clock (deterministic on any host, see
// DESIGN.md §5.9) gives exact makespans, and the transfer accounting
// splits out the inter-node traffic the parity maintenance adds.
// BenchmarkClusterScaling regenerates BENCH_cluster.json.
package ftla

import (
	"encoding/json"
	"os"
	"testing"
	"time"
)

// clusterBench shapes the study: 4 GPUs spread over 1, 2, or 4 nodes, a
// compute-bound order (nominal GPU rate dialed down as in the rebalance
// study) so topology effects are visible against real work, and a slow
// inter-node interconnect so the parity traffic has a price.
const (
	clusterBenchN      = 256
	clusterBenchNB     = 32
	clusterBenchGPUs   = 4
	clusterBenchGflops = 1
)

// runClusterCase runs one Cholesky on the given topology and returns the
// simulated makespan plus the run's report. loseNode arms a whole-node
// loss two epochs in (reconstructed from parity; only valid for nodes > 1).
func runClusterCase(t testing.TB, nodes int, loseNode bool) (float64, *Report) {
	t.Helper()
	cfg := Config{GPUs: clusterBenchGPUs, NB: clusterBenchNB, Lookahead: 1, Nodes: nodes}
	if loseNode {
		cfg.NodeFault = map[int]NodeFaultPlan{1: {AfterEpochs: 2}}
	}
	sc := cfg.SystemConfig()
	sc.GPUGflops = clusterBenchGflops
	cfg.System = &sc
	sys := NewSystem(cfg)
	r, err := CholeskyOn(sys, RandomSPD(clusterBenchN, 81), cfg)
	if err != nil {
		t.Fatalf("cholesky (nodes=%d loseNode=%v): %v", nodes, loseNode, err)
	}
	return sys.TimelineMakespan(), r.Report
}

// clusterBenchRow is one BENCH_cluster.json record.
type clusterBenchRow struct {
	Nodes               int     `json:"nodes"`
	GPUs                int     `json:"gpus"`
	N                   int     `json:"n"`
	NB                  int     `json:"nb"`
	CleanSimSeconds     float64 `json:"clean_sim_seconds"`
	CleanInternodeBytes int64   `json:"clean_internode_bytes"`
	LossSimSeconds      float64 `json:"node_loss_sim_seconds"`
	LossInternodeBytes  int64   `json:"node_loss_internode_bytes"`
	Reconstructions     int     `json:"reconstructions"`
	WallSeconds         float64 `json:"wall_seconds"`
}

// collectClusterRows measures clean and node-loss runs at 1, 2, and 4
// nodes and writes BENCH_cluster.json. The 1-node row has no loss leg: a
// flat topology carries no parity to reconstruct from.
func collectClusterRows(t testing.TB) []clusterBenchRow {
	rows := make([]clusterBenchRow, 0, 3)
	for _, nodes := range []int{1, 2, 4} {
		t0 := time.Now()
		mk, rep := runClusterCase(t, nodes, false)
		row := clusterBenchRow{
			Nodes: nodes, GPUs: clusterBenchGPUs, N: clusterBenchN, NB: clusterBenchNB,
			CleanSimSeconds: mk, CleanInternodeBytes: rep.InternodeBytes,
		}
		if nodes > 1 {
			lmk, lrep := runClusterCase(t, nodes, true)
			row.LossSimSeconds = lmk
			row.LossInternodeBytes = lrep.InternodeBytes
			row.Reconstructions = lrep.Reconstructions
		}
		row.WallSeconds = time.Since(t0).Seconds()
		rows = append(rows, row)
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatalf("marshal BENCH_cluster.json: %v", err)
	}
	if err := os.WriteFile("BENCH_cluster.json", append(data, '\n'), 0o644); err != nil {
		t.Fatalf("write BENCH_cluster.json: %v", err)
	}
	return rows
}

// BenchmarkClusterScaling regenerates BENCH_cluster.json: simulated
// makespan and inter-node traffic at 1, 2, and 4 nodes, clean and with a
// mid-run whole-node loss absorbed by parity reconstruction.
func BenchmarkClusterScaling(b *testing.B) {
	var rows []clusterBenchRow
	for i := 0; i < b.N; i++ {
		rows = collectClusterRows(b)
	}
	for _, r := range rows {
		if r.Nodes > 1 && r.CleanSimSeconds > 0 {
			b.ReportMetric(r.LossSimSeconds/r.CleanSimSeconds,
				"nodes"+itoa(r.Nodes)+"-loss-makespan-ratio")
		}
	}
}

// itoa avoids pulling strconv into the bench for a single-digit label.
func itoa(n int) string { return string(rune('0' + n)) }

// TestClusterScalingSanity pins the study's structural claims so the
// benchmark rows stay meaningful: a flat run moves no inter-node bytes,
// multi-node runs do (clean and lossy both — parity maintenance before the
// loss, the reconstruction burst at it), and the loss run actually
// reconstructs. No makespan direction is pinned: losing a node halves the
// fleet but also stops the parity refresh (and its slow inter-node
// traffic), so either side can win depending on the interconnect.
func TestClusterScalingSanity(t *testing.T) {
	for _, nodes := range []int{2, 4} {
		_, rep := runClusterCase(t, nodes, false)
		if rep.InternodeBytes == 0 {
			t.Fatalf("nodes=%d: clean run moved no inter-node bytes", nodes)
		}
		_, lrep := runClusterCase(t, nodes, true)
		if lrep.Reconstructions == 0 || lrep.NodesLost != 1 {
			t.Fatalf("nodes=%d: loss run NodesLost/Reconstructions = %d/%d",
				nodes, lrep.NodesLost, lrep.Reconstructions)
		}
		if lrep.InternodeBytes == 0 {
			t.Fatalf("nodes=%d: loss run moved no inter-node bytes", nodes)
		}
	}
	_, rep := runClusterCase(t, 1, false)
	if rep.InternodeBytes != 0 {
		t.Fatalf("flat run counted %d inter-node bytes", rep.InternodeBytes)
	}
}
