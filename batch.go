package ftla

import (
	"fmt"

	"ftla/internal/batch"
	"ftla/internal/core"
	"ftla/internal/fault"
	"ftla/internal/hetsim"
)

// Batched decomposition API.
//
// CholeskyBatch, LUBatch, and QRBatch factorize many small same-shape
// matrices in one dispatch: the inputs are packed into a strided slab and
// a single ladder sweeps the whole slab per step, so panel pulls,
// broadcasts, and verifications are issued once per step for the entire
// batch instead of once per job. Each item's arithmetic is bit-identical
// to a solo run of the same matrix under the same Config (the batch pin
// tests assert this), so batching is purely a throughput decision.
//
// Errors come back at two levels: the per-item slice errs (item i failed —
// its result slot is nil — while its siblings completed), and the
// batch-level err for problems that void the whole dispatch (invalid or
// unsupported options, mismatched shapes, a fail-stop abort). The batched
// path rejects Config options that are inherently per-run — FailStop,
// CheckpointEvery/OnCheckpoint/Resume, and Config.Injector — because they
// cannot be shared across a slab; fault injection is instead per item via
// the optional injs arguments on the *BatchOn variants, and attaching any
// injector forces the serial schedule for the whole batch (the same rule
// the solo runtime applies; results are bit-identical either way).

// validateBatchCfg rejects Config fields the batched path cannot honor.
func validateBatchCfg(cfg Config) error {
	if cfg.Injector != nil {
		return fmt.Errorf("ftla: batched runs take per-item injectors (the *BatchOn injs argument), not Config.Injector")
	}
	if len(cfg.FailStop) > 0 {
		return fmt.Errorf("ftla: fail-stop plans are not supported in batched runs")
	}
	if cfg.Resume != nil || cfg.CheckpointEvery > 0 || cfg.OnCheckpoint != nil {
		return fmt.Errorf("ftla: checkpoint/resume options are not supported in batched runs")
	}
	return nil
}

// packBatch normalizes cfg and packs the inputs into a checksummed slab.
func packBatch(as []*Matrix, cfg Config) (*batch.Batch, core.Options, error) {
	if err := validateBatchCfg(cfg); err != nil {
		return nil, core.Options{}, err
	}
	_, opts := cfg.normalize()
	b, err := batch.FromMatrices(as, opts.NB)
	if err != nil {
		return nil, core.Options{}, err
	}
	return b, opts, nil
}

// injSlice adapts the variadic per-item injector argument: absent means no
// injection anywhere, otherwise it must name every item (nil entries mean
// "no injection for this item").
func injSlice(injs []*Injector, count int) ([]*fault.Injector, error) {
	if len(injs) == 0 {
		return nil, nil
	}
	if len(injs) != count {
		return nil, fmt.Errorf("ftla: %d injectors for %d batch items (pass one per item, nil for none)", len(injs), count)
	}
	return injs, nil
}

// CholeskyBatch computes the protected Cholesky factorization of every
// matrix in as — all symmetric positive definite, all the same order — in
// one batched dispatch. results[i] and errs[i] are item i's outcome
// (exactly one is non-nil); a non-nil err voids the whole batch and both
// slices are nil.
func CholeskyBatch(as []*Matrix, cfg Config) (results []*CholeskyResult, errs []error, err error) {
	return CholeskyBatchOn(NewSystem(cfg), as, cfg)
}

// CholeskyBatchOn is CholeskyBatch on a caller-provided simulated system
// (see CholeskyOn for the pooling contract), with optional per-item fault
// injectors: pass either no injs at all, or exactly one per item (nil
// entries inject nothing).
func CholeskyBatchOn(sys *hetsim.System, as []*Matrix, cfg Config, injs ...*Injector) (results []*CholeskyResult, errs []error, err error) {
	b, opts, err := packBatch(as, cfg)
	if err != nil {
		return nil, nil, err
	}
	is, err := injSlice(injs, b.Count())
	if err != nil {
		return nil, nil, err
	}
	outs, ress, errs, err := core.CholeskyBatch(sys, b, opts, is)
	if err != nil {
		return nil, nil, err
	}
	results = make([]*CholeskyResult, b.Count())
	for i := range outs {
		if errs[i] == nil {
			results[i] = &CholeskyResult{L: outs[i], Report: ress[i]}
		}
	}
	return results, errs, nil
}

// LUBatch computes the protected LU factorization with partial pivoting of
// every matrix in as in one batched dispatch; see CholeskyBatch for the
// per-item/batch-level error contract.
func LUBatch(as []*Matrix, cfg Config) (results []*LUResult, errs []error, err error) {
	return LUBatchOn(NewSystem(cfg), as, cfg)
}

// LUBatchOn is LUBatch on a caller-provided simulated system, with
// optional per-item fault injectors; see CholeskyBatchOn.
func LUBatchOn(sys *hetsim.System, as []*Matrix, cfg Config, injs ...*Injector) (results []*LUResult, errs []error, err error) {
	b, opts, err := packBatch(as, cfg)
	if err != nil {
		return nil, nil, err
	}
	is, err := injSlice(injs, b.Count())
	if err != nil {
		return nil, nil, err
	}
	outs, pivs, ress, errs, err := core.LUBatch(sys, b, opts, is)
	if err != nil {
		return nil, nil, err
	}
	results = make([]*LUResult, b.Count())
	for i := range outs {
		if errs[i] == nil {
			results[i] = &LUResult{Factors: outs[i], Pivots: pivs[i], Report: ress[i]}
		}
	}
	return results, errs, nil
}

// QRBatch computes the protected Householder QR factorization of every
// matrix in as in one batched dispatch; see CholeskyBatch for the
// per-item/batch-level error contract.
func QRBatch(as []*Matrix, cfg Config) (results []*QRResult, errs []error, err error) {
	return QRBatchOn(NewSystem(cfg), as, cfg)
}

// QRBatchOn is QRBatch on a caller-provided simulated system, with
// optional per-item fault injectors; see CholeskyBatchOn.
func QRBatchOn(sys *hetsim.System, as []*Matrix, cfg Config, injs ...*Injector) (results []*QRResult, errs []error, err error) {
	b, opts, err := packBatch(as, cfg)
	if err != nil {
		return nil, nil, err
	}
	is, err := injSlice(injs, b.Count())
	if err != nil {
		return nil, nil, err
	}
	outs, taus, ress, errs, err := core.QRBatch(sys, b, opts, is)
	if err != nil {
		return nil, nil, err
	}
	results = make([]*QRResult, b.Count())
	for i := range outs {
		if errs[i] == nil {
			results[i] = &QRResult{Factors: outs[i], Tau: taus[i], Report: ress[i]}
		}
	}
	return results, errs, nil
}
