// Package ftla (Fault-Tolerant Linear Algebra) is the public API of this
// repository: algorithm-based fault tolerant (ABFT) one-sided matrix
// decompositions — Cholesky, LU with partial pivoting, and Householder QR
// — executed on a simulated heterogeneous CPU+multi-GPU node, reproducing
// "Fault Tolerant One-sided Matrix Decompositions on Heterogeneous Systems
// with GPUs" (SC 2018).
//
// The protected factorizations maintain dual-weight checksums in one or
// two dimensions, verify them under configurable checking schemes
// (prior-operation, post-operation, or the paper's prioritized new
// scheme), detect and correct soft errors online — including PCIe
// communication errors — and report detailed verification/recovery
// statistics.
//
// Quick start:
//
//	a := ftla.RandomSPD(512, 1)
//	res, err := ftla.Cholesky(a, ftla.Config{GPUs: 2})
//	x := res.Solve(b) // solve A·x = b using the protected factor
//
// Fault injection (for experiments):
//
//	inj := ftla.NewInjector(42)
//	inj.Schedule(ftla.FaultSpec{Kind: ftla.FaultDRAM, Op: ftla.OpTMU, Iteration: 3})
//	res, err := ftla.LU(a, ftla.Config{GPUs: 2, Injector: inj})
package ftla

import (
	"ftla/internal/checksum"
	"ftla/internal/core"
	"ftla/internal/fault"
	"ftla/internal/hetsim"
	"ftla/internal/matrix"
)

// Matrix is a dense row-major matrix of float64 values.
type Matrix = matrix.Dense

// NewMatrix allocates a zeroed r-by-c matrix.
func NewMatrix(r, c int) *Matrix { return matrix.NewDense(r, c) }

// FromRows builds a matrix from row slices (copying the input).
func FromRows(rows [][]float64) *Matrix { return matrix.FromRows(rows) }

// Random returns an r-by-c matrix with uniform entries in [-1, 1),
// deterministic in seed.
func Random(r, c int, seed uint64) *Matrix {
	return matrix.Random(r, c, matrix.NewRNG(seed))
}

// RandomSPD returns a random n-by-n symmetric positive definite matrix,
// deterministic in seed — a valid Cholesky input.
func RandomSPD(n int, seed uint64) *Matrix {
	return matrix.RandomSPD(n, matrix.NewRNG(seed))
}

// RandomDiagDominant returns a random strictly diagonally dominant n-by-n
// matrix, deterministic in seed — a well-conditioned LU input.
func RandomDiagDominant(n int, seed uint64) *Matrix {
	return matrix.RandomDiagDominant(n, matrix.NewRNG(seed))
}

// Protection selects the checksum coverage.
type Protection = core.Mode

// Protection levels.
const (
	// NoProtection runs the plain factorization (the overhead baseline).
	NoProtection = core.NoChecksum
	// SingleSide maintains checksums in one dimension, as in prior work.
	SingleSide = core.SingleSide
	// FullChecksum maintains checksums in both dimensions on the trailing
	// matrix — the paper's contribution (§IV).
	FullChecksum = core.Full
)

// Scheme selects when verification happens.
type Scheme = core.Scheme

// Checking schemes.
const (
	// PriorOp verifies operation inputs before each operation.
	PriorOp = core.PriorOp
	// PostOp verifies operation outputs after each operation.
	PostOp = core.PostOp
	// NewScheme is the paper's prioritized checking scheme (Algorithm 2),
	// including post-broadcast verification that protects PCIe.
	NewScheme = core.NewScheme
)

// Kernel selects the checksum-encoding kernel (§VIII).
type Kernel = checksum.Kernel

// Checksum-encoding kernels.
const (
	// GEMMKernel is the general-matrix-multiply baseline of prior work.
	GEMMKernel = checksum.GEMMKernel
	// OptKernel is the paper's optimized dedicated encoding kernel.
	OptKernel = checksum.OptKernel
)

// Report carries the per-run statistics: timing breakdown, verification
// counters (Table VI), detection/recovery events, and PCIe traffic.
type Report = core.Result

// Outcome classifies a run (§X.B): fault-free, fixed online, locally
// restarted, detected-but-corrupt, or silently corrupted.
type Outcome = core.Outcome

// Injector schedules fault injections (§V fault model, §X.A timing).
type Injector = fault.Injector

// NewInjector creates a deterministic fault injector.
func NewInjector(seed uint64) *Injector { return fault.NewInjector(seed) }

// FaultSpec schedules one fault; see the fields of fault.Spec.
type FaultSpec = fault.Spec

// Fault kinds (§V).
const (
	// FaultCompute flips a bit of a freshly computed element.
	FaultCompute = fault.Computation
	// FaultDRAM corrupts a stored element (multi-bit, ECC-resistant).
	FaultDRAM = fault.OffChipMemory
	// FaultOnChip corrupts a transiently cached value (no write-back).
	FaultOnChip = fault.OnChipMemory
	// FaultPCIe corrupts an element of a transferred panel.
	FaultPCIe = fault.Communication
)

// Fault target operations.
const (
	OpPD  = fault.PD
	OpPU  = fault.PU
	OpTMU = fault.TMU
	OpCTF = fault.CTF
)

// Fault target parts.
const (
	RefPart    = fault.ReferencePart
	UpdatePart = fault.UpdatePart
)

// FailStopPlan arms a fail-stop or performance fault on one simulated
// device: a crash (the device is gone; operations on it return
// DeviceLostError), a hang (the triggering kernel blocks until a deadline
// fires), or a straggler (sim-time and wall-time cost multiplied). This is
// the failure class ABFT checksums cannot repair — the serving layer
// (internal/service) degrades gracefully around it instead.
type FailStopPlan = hetsim.FaultPlan

// Fail-stop fault modes for FailStopPlan.Mode.
const (
	// FailCrash fail-stops the device.
	FailCrash = hetsim.FaultCrash
	// FailHang blocks the triggering operation until a deadline fires.
	FailHang = hetsim.FaultHang
	// FailStraggler slows the device without stopping it.
	FailStraggler = hetsim.FaultStraggler
)

// LinkFaultPlan arms a communication fault on one simulated CPU<->GPU
// PCIe link: silent payload corruption, dropped transfers, a flapping
// link that heals after Count failures, or degraded bandwidth. The
// reliable-transfer protocol the drivers use absorbs transient corruption
// and flaps by checksummed retransmission; a link that exhausts its
// retransmission budget aborts the run with a typed *LinkError, which the
// serving layer treats like a device loss (quarantine + degraded
// failover).
type LinkFaultPlan = hetsim.LinkFaultPlan

// Link fault modes for LinkFaultPlan.Mode.
const (
	// LinkCorrupt silently flips a bit of a transferred payload element.
	LinkCorrupt = hetsim.LinkCorrupt
	// LinkDrop fails the transfer with a typed *LinkError.
	LinkDrop = hetsim.LinkDrop
	// LinkFlap fails the next Count transfers on the link, then heals.
	LinkFlap = hetsim.LinkFlap
	// LinkDegrade multiplies the link's bandwidth cost by Factor.
	LinkDegrade = hetsim.LinkDegrade
)

// LinkError is the typed error a factorization returns when a PCIe link
// fault could not be absorbed by retransmission.
type LinkError = hetsim.LinkError

// NodeFaultPlan arms a whole-node loss on a multi-node topology
// (Config.NodeFault): every GPU of the node fail-stops at once at a
// ladder-step boundary, and plans due at the same boundary fire together
// as one correlated burst. With the cluster layer's erasure-coded
// redundancy the run rebuilds the lost columns from the survivors and
// continues degraded — up to Config.Redundancy losses, sequential or
// simultaneous; a loss beyond that aborts with a typed *NodeLostError.
type NodeFaultPlan = hetsim.NodeFaultPlan

// NodeLostError is the typed error a factorization returns when a
// whole-node loss could not be absorbed by the coded redundancy — some
// parity group lost more columns than its surviving parity columns can
// solve for.
type NodeLostError = hetsim.NodeLostError

// ErrCheckpointIntegrity is wrapped by the error a resume (or mid-run
// rollback) returns when the checkpoint's content no longer matches the
// checksum taken at capture — a tampered or corrupted snapshot is
// rejected, never replayed.
var ErrCheckpointIntegrity = core.ErrCheckpointIntegrity

// DeviceLostError is the typed error a factorization returns when a
// simulated device fail-stops mid-run.
type DeviceLostError = hetsim.DeviceLostError

// DeviceHungError is the typed error a factorization returns when a hung
// device was reaped by a context deadline.
type DeviceHungError = hetsim.DeviceHungError

// Checkpoint is a host-side snapshot of a factorization in flight, taken
// after a verified step (Config.CheckpointEvery) and resumable via
// Config.Resume — including on a system with fewer GPUs than the run that
// took it. A resumed run is bit-identical to an uninterrupted run on the
// same final device set.
type Checkpoint = core.Checkpoint

// RebalanceConfig configures dynamic work repartitioning
// (Config.Rebalance): Every is the rebalance interval in ladder steps (0
// disables), MinShare the floor fraction of remaining trailing columns
// every GPU keeps, and Suspect lists GPUs that should re-enter at the
// floor share (the serving layer sets it when probing a quarantined
// straggler). See core.Rebalance for the full field contracts.
type RebalanceConfig = core.Rebalance

// Config selects the simulated platform and the protection configuration.
// The zero value means: 1 GPU, NB=64, full checksums with the new checking
// scheme, optimized encoding kernel.
type Config struct {
	// GPUs is the number of simulated GPUs (default 1).
	GPUs int
	// NB is the block size; the matrix order must be a multiple (default 64).
	NB int
	// Protection and Scheme choose the ABFT configuration. The zero values
	// select FullChecksum + NewScheme; to run unprotected set
	// Protection: NoProtection, Scheme: core.NoCheck (or use Unprotected).
	Protection Protection
	Scheme     Scheme
	// Kernel selects the checksum-encoding kernel (default OptKernel).
	Kernel Kernel
	// Injector, when set, injects the scheduled faults.
	Injector *Injector
	// FailStop arms fail-stop/performance fault plans on the simulated
	// devices at the start of the run, keyed by device index (-1 = CPU,
	// else GPU id). A firing plan aborts the run with a typed
	// DeviceLostError/DeviceHungError.
	FailStop map[int]FailStopPlan
	// LinkFault arms communication fault plans on the simulated PCIe
	// links, keyed by GPU index (link i is the CPU<->GPUi path).
	// Transient corruption/flaps are absorbed by checksummed
	// retransmission; exhausted links abort with a typed *LinkError.
	LinkFault map[int]LinkFaultPlan
	// Nodes > 1 spreads the GPUs round-robin over that many cluster nodes
	// behind a slower inter-node interconnect (GPUs must be divisible by
	// Nodes). Multi-node runs maintain erasure-coded parity columns across
	// nodes so up to Redundancy whole-node losses are reconstructed in
	// place and the run continues degraded, bit-identical to an
	// uninterrupted run. The
	// default (0 or 1) is the flat single-box topology, bit-identical to
	// every earlier release.
	Nodes int
	// NodeFault arms whole-node loss plans, keyed by node index. Plans due
	// at the same ladder-step boundary fire together as one correlated
	// burst. Requires Nodes > 1.
	NodeFault map[int]NodeFaultPlan
	// Redundancy is the number r of erasure-coded parity columns each
	// cross-node parity group carries when Nodes > 1: the cluster absorbs
	// up to r whole-node losses — sequential or simultaneous — with
	// bit-exact reconstruction. 0 (the default) means r = 1, the classic
	// XOR parity; r must stay below Nodes (each parity group needs at
	// least one data column) or the run is rejected before it starts.
	// Ignored on flat single-box topologies, which carry no parity.
	Redundancy int
	// PeriodicTrailingCheck > 0 adds a full trailing verification every
	// k-th iteration under NewScheme (§VII.B mitigation).
	PeriodicTrailingCheck int
	// Lookahead selects the step-runtime schedule: 0 (the default) runs the
	// serial ladder; 1 enables MAGMA-style look-ahead — the CPU factorizes
	// panel k+1 while the GPUs run step k's trailing update on asynchronous
	// streams. Results are bit-identical in both schedules; when an Injector
	// is attached the runtime falls back to the serial schedule (see
	// DESIGN.md §8).
	Lookahead int
	// CheckpointEvery > 0 snapshots the factorization state into a
	// host-side Checkpoint after every k-th verified ladder step (default
	// off). Checkpoints are known-clean: an uncorrectable mid-run
	// corruption rolls back to the last one and replays instead of
	// surrendering the run, and the serving layer resumes a device-loss
	// abort from it on the surviving GPUs.
	CheckpointEvery int
	// OnCheckpoint, when non-nil, receives each checkpoint as it is taken
	// (on the factorization's goroutine). Treat the value as immutable.
	OnCheckpoint func(*Checkpoint)
	// Resume, when non-nil, starts the factorization from the checkpoint
	// instead of from scratch: state is restored onto the current device
	// set and the ladder replays from Checkpoint.NextStep. The input
	// matrix must be the original A. The protection configuration must
	// match the checkpoint's.
	Resume *Checkpoint
	// Rebalance configures dynamic work repartitioning: every
	// Rebalance.Every ladder steps the runtime re-splits the remaining
	// trailing block columns across the GPUs proportionally to their
	// EWMA-smoothed measured speed, migrating reassigned columns over
	// simulated PCIe with their checksum strips riding along — so a
	// straggling device sheds load instead of blowing the makespan, while
	// results stay bit-identical to the static layout (see DESIGN.md §10).
	// The zero value disables rebalancing. Ignored while an Injector is
	// attached and on single-GPU systems.
	Rebalance RebalanceConfig
	// System overrides the simulated platform (worker counts, nominal
	// speeds); nil uses hetsim.DefaultConfig(GPUs).
	System *hetsim.Config

	// explicit marks configs built by Unprotected so the zero Protection/
	// Scheme pair is not upgraded to the protected defaults.
	explicit bool
}

// Unprotected returns a Config running the plain factorization.
func Unprotected(gpus int) Config {
	return Config{GPUs: gpus, Protection: NoProtection, Scheme: core.NoCheck, explicit: true}
}

func (c Config) normalize() (Config, core.Options) {
	if c.GPUs <= 0 {
		c.GPUs = 1
	}
	if c.NB <= 0 {
		c.NB = 64
	}
	if !c.explicit && c.Protection == core.NoChecksum && c.Scheme == core.NoCheck {
		c.Protection = FullChecksum
		c.Scheme = NewScheme
	}
	// Canonicalize the parity depth on cluster topologies so Effective
	// configurations compare equal whether the caller wrote the default
	// explicitly or left it zero; flat systems ignore the field entirely.
	if c.Nodes > 1 && c.Redundancy <= 0 {
		c.Redundancy = 1
	}
	opts := core.Options{
		NB:                    c.NB,
		Mode:                  c.Protection,
		Scheme:                c.Scheme,
		Kernel:                c.Kernel,
		Injector:              c.Injector,
		FailStop:              c.FailStop,
		LinkFault:             c.LinkFault,
		NodeFault:             c.NodeFault,
		Redundancy:            c.Redundancy,
		PeriodicTrailingCheck: c.PeriodicTrailingCheck,
		Lookahead:             c.Lookahead,
		CheckpointEvery:       c.CheckpointEvery,
		OnCheckpoint:          c.OnCheckpoint,
		Resume:                c.Resume,
		Rebalance:             c.Rebalance,
	}
	return c, opts
}

// Effective returns the configuration with every default applied — the
// exact values a run with this Config uses (GPUs, NB, and the
// protection/scheme upgrade included). Serving layers compare Effective
// configurations to decide which queued jobs may share one batched
// dispatch; comparing raw Configs instead would either miss equivalent
// configurations (zero vs. explicit default) or wrongly conflate an
// explicit no-protection request with the default upgrade.
func (c Config) Effective() Config {
	c, _ = c.normalize()
	return c
}

// SystemConfig returns the hetsim.Config the Config selects — the platform
// that Cholesky/LU/QR would construct. It is a comparable value, which lets
// callers that pool simulated systems (internal/service) key pooled
// instances by platform.
func (c Config) SystemConfig() hetsim.Config {
	c, _ = c.normalize()
	sc := hetsim.DefaultConfig(c.GPUs)
	if c.System != nil {
		sc = *c.System
	}
	if c.Nodes > 1 {
		sc.Nodes = c.Nodes
	}
	return sc
}

// NewSystem builds the simulated platform cfg selects. Most callers never
// need it — Cholesky/LU/QR build a fresh system per call — but callers that
// amortize system construction across many runs (see CholeskyOn and
// internal/service) construct once here and reuse, calling System.Reset
// between runs.
func NewSystem(cfg Config) *hetsim.System {
	return hetsim.New(cfg.SystemConfig())
}
