// Command scaling reproduces Figs. 13–15: the weak-scaling fault-tolerance
// overhead of the four ABFT configurations for Cholesky, LU, and QR. The
// per-GPU workload is held fixed while the GPU count grows, and each
// configuration's overhead is reported relative to the unprotected run on
// the same platform.
//
// Usage:
//
//	scaling -decomp lu -pergpu 256 -nb 32 -maxgpus 4
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/debug"

	"ftla/internal/checksum"
	"ftla/internal/core"
	"ftla/internal/hetsim"
	"ftla/internal/matrix"
	"ftla/internal/report"
)

type config struct {
	name   string
	mode   core.Mode
	scheme core.Scheme
	kernel checksum.Kernel
}

func configs() []config {
	return []config{
		{"single+prior", core.SingleSide, core.PriorOp, checksum.OptKernel},
		{"single+post", core.SingleSide, core.PostOp, checksum.OptKernel},
		{"ours (gemm kernel)", core.Full, core.NewScheme, checksum.GEMMKernel},
		{"ours (opt kernel)", core.Full, core.NewScheme, checksum.OptKernel},
	}
}

func main() {
	var (
		decomp  = flag.String("decomp", "lu", "decomposition: cholesky | lu | qr")
		perGPU  = flag.Int("pergpu", 448, "per-GPU matrix order (weak scaling unit)")
		nb      = flag.Int("nb", 32, "block size")
		maxGPUs = flag.Int("maxgpus", 4, "largest GPU count")
		reps    = flag.Int("reps", 5, "repetitions (best wall time taken)")
		metric  = flag.String("metric", "flops", "overhead metric: flops (deterministic) | wall")
	)
	flag.Parse()
	debug.SetGCPercent(400)

	fig := report.NewFigure(
		fmt.Sprintf("Figs. 13–15 — weak scaling ABFT overhead (%s, %d²/GPU, nb=%d, metric=%s)", *decomp, *perGPU, *nb, *metric),
		"gpus", "overhead % vs unprotected")
	for g := 1; g <= *maxGPUs; g++ {
		n := weakScaleN(*decomp, *perGPU, g, *nb)
		// Interleave the configurations round-robin (after one warmup run)
		// so allocator and cache warmup bias no single configuration, and
		// keep the per-configuration minimum.
		all := append([]config{{"baseline", core.NoChecksum, core.NoCheck, checksum.OptKernel}}, configs()...)
		best := make([]float64, len(all))
		for i := range best {
			best[i] = math.Inf(1)
		}
		measureOne(*decomp, n, g, *metric, core.Options{NB: *nb, Mode: core.NoChecksum, Scheme: core.NoCheck}) // warmup
		effReps := *reps
		if *metric == "flops" {
			effReps = 1 // deterministic
		}
		for rep := 0; rep < effReps; rep++ {
			for i, c := range all {
				opts := core.Options{NB: *nb, Mode: c.mode, Scheme: c.scheme, Kernel: c.kernel}
				if t := measureOne(*decomp, n, g, *metric, opts); t < best[i] {
					best[i] = t
				}
			}
		}
		base := best[0]
		for i, c := range all[1:] {
			fig.Add(c.name, float64(g), 100*(best[i+1]-base)/base)
		}
	}
	fig.Render(os.Stdout)
}

// weakScaleN fixes the per-GPU workload: for LU/QR the paper grows n
// linearly with the GPU count; for Cholesky (symmetric) it grows with
// sqrt(gpus), both rounded to the block size.
func weakScaleN(decomp string, perGPU, gpus, nb int) int {
	var n float64
	if decomp == "cholesky" {
		n = math.Sqrt(float64(gpus)) * float64(perGPU)
	} else {
		// n×n work split over g GPUs: keep n³/g constant → n = perGPU·g^(1/3)
		// for flops, but the paper fixes the per-GPU *memory* footprint:
		// n = perGPU·sqrt(g) keeps n²/g fixed, matching its setup.
		n = math.Sqrt(float64(gpus)) * float64(perGPU)
	}
	r := int(n/float64(nb)+0.5) * nb
	if r < nb {
		r = nb
	}
	return r
}

func measureOne(decomp string, n, gpus int, metric string, opts core.Options) float64 {
	runtime.GC() // keep collector pauses out of the measured window
	sys := hetsim.New(hetsim.DefaultConfig(gpus))
	rng := matrix.NewRNG(uint64(n))
	var err error
	var wall float64
	var res *core.Result
	switch decomp {
	case "cholesky":
		a := matrix.RandomSPD(n, rng)
		_, res, err = core.Cholesky(sys, a, opts)
	case "qr":
		a := matrix.Random(n, n, rng)
		_, _, res, err = core.QR(sys, a, opts)
	default:
		a := matrix.RandomDiagDominant(n, rng)
		_, _, res, err = core.LU(sys, a, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if metric == "flops" {
		wall = float64(res.Flops)
	} else {
		wall = res.Wall.Seconds()
	}
	return wall
}
