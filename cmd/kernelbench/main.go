// Command kernelbench reproduces Fig. 12: the checksum-encoding kernel
// comparison between the GEMM-based baseline of prior work and the
// paper's optimized dedicated kernel, across matrix sizes.
//
// Usage:
//
//	kernelbench -sizes 512,1024,2048 -nb 128 -reps 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ftla/internal/checksum"
	"ftla/internal/matrix"
	"ftla/internal/report"
)

func main() {
	var (
		sizes = flag.String("sizes", "512,1024,2048", "comma-separated matrix orders")
		nb    = flag.Int("nb", 128, "block size")
		reps  = flag.Int("reps", 5, "repetitions per measurement (best taken)")
	)
	flag.Parse()

	fig := report.NewFigure("Fig. 12 — checksum encoding kernel performance", "n", "GB/s (higher is better)")
	speedups := report.NewTable("Optimized kernel speedup over GEMM baseline", "n", "gemm ms", "opt ms", "speedup")
	for _, tok := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			fmt.Fprintln(os.Stderr, "bad size:", tok)
			os.Exit(1)
		}
		rng := matrix.NewRNG(uint64(n))
		a := matrix.Random(n, n, rng)
		out := matrix.NewDense(checksum.ColDims(n, n, *nb))
		gemm := bench(*reps, func() { checksum.EncodeCol(checksum.GEMMKernel, 4, a, *nb, out) })
		opt := bench(*reps, func() { checksum.EncodeCol(checksum.OptKernel, 4, a, *nb, out) })
		bytes := float64(8 * n * n)
		fig.Add("gemm-baseline", float64(n), bytes/gemm.Seconds()/1e9)
		fig.Add("optimized", float64(n), bytes/opt.Seconds()/1e9)
		speedups.AddRow(n, float64(gemm.Microseconds())/1000, float64(opt.Microseconds())/1000,
			gemm.Seconds()/opt.Seconds())
	}
	fig.Render(os.Stdout)
	fmt.Println()
	speedups.Render(os.Stdout)
}

func bench(reps int, f func()) time.Duration {
	best := time.Duration(1<<62 - 1)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		f()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best
}
