// Command probmodel reproduces Figs. 6–11: the §X.B coverage model. For
// each update operation of an LU iteration it prints the probability of
// the four outcomes under each ABFT approach (Figs. 6–8) and the expected
// recovery cost (Figs. 9–11).
//
// Usage:
//
//	probmodel            # outcome probabilities (Figs. 6–8)
//	probmodel -cost      # expected recovery cost (Figs. 9–11)
//	probmodel -n 10240 -nb 256 -l2 1e-9
package main

import (
	"flag"
	"fmt"
	"os"

	"ftla/internal/probmodel"
	"ftla/internal/report"
)

func main() {
	var (
		n     = flag.Int("n", 10240, "trailing matrix order")
		nb    = flag.Int("nb", 256, "block size")
		l1    = flag.Float64("l1", 1e-13, "computation error rate (per flop)")
		l2    = flag.Float64("l2", 1e-9, "DRAM error rate (per element-second)")
		l3    = flag.Float64("l3", 1e-9, "on-chip error rate (per element-second)")
		l4    = flag.Float64("l4", 1e-11, "PCIe error rate (per element)")
		cost  = flag.Bool("cost", false, "print expected recovery cost instead of probabilities")
		sweep = flag.Bool("sweep", false, "sweep error-rate multipliers (extension study)")
	)
	flag.Parse()

	m := probmodel.PaperModel()
	m.N, m.NB = *n, *nb
	m.Rates = probmodel.Rates{Compute: *l1, OffChip: *l2, OnChip: *l3, PCIe: *l4}

	if *sweep {
		rc := probmodel.DefaultCosts()
		fig := report.NewFigure("Extension — expected per-iteration recovery vs error-rate scale",
			"rate multiplier", "expected recovery seconds")
		for _, pt := range m.SweepRates([]float64{0.01, 0.1, 1, 10, 100, 1000}, rc) {
			for _, a := range probmodel.AllApproaches() {
				fig.Add(a.String(), pt.Multiplier, pt.Cost[a])
			}
		}
		fig.Render(os.Stdout)
		return
	}
	if *cost {
		rc := probmodel.DefaultCosts()
		t := report.NewTable(
			fmt.Sprintf("Figs. 9–11 — expected recovery seconds per op (n=%d, nb=%d)", *n, *nb),
			"approach", "PD", "PU", "TMU")
		for _, a := range probmodel.AllApproaches() {
			t.AddRow(a.String(),
				m.ExpectedRecovery(a, probmodel.PD, rc),
				m.ExpectedRecovery(a, probmodel.PU, rc),
				m.ExpectedRecovery(a, probmodel.TMU, rc))
		}
		t.Render(os.Stdout)
		return
	}
	for _, op := range probmodel.AllOps() {
		t := report.NewTable(
			fmt.Sprintf("Figs. 6–8 — outcome probabilities for %s (n=%d, nb=%d)", op, *n, *nb),
			"approach", "fault-free", "abft-fixable", "local-restart", "complete-restart")
		for _, a := range probmodel.AllApproaches() {
			pr := m.Outcomes(a, op)
			t.AddRow(a.String(),
				pr.P[probmodel.FaultFree],
				pr.P[probmodel.ABFTFixable],
				pr.P[probmodel.LocalRestart],
				pr.P[probmodel.CompleteRestart])
		}
		t.Render(os.Stdout)
		fmt.Println()
	}
}
