// Command propagation reproduces Tables IV and V: the MUD (Maximum Update
// Dimensions) analysis of the major update operations and the resulting
// error-propagation patterns, both analytic and empirically measured by
// corrupting real kernel inputs.
//
// Usage:
//
//	propagation            # analytic Table V
//	propagation -empirical # measured Table IV with propagation extents
package main

import (
	"flag"
	"fmt"
	"os"

	"ftla/internal/propagation"
	"ftla/internal/report"
)

func main() {
	var (
		empirical = flag.Bool("empirical", false, "measure propagation on real kernels")
		n         = flag.Int("n", 96, "trailing dimension for the empirical run")
		nb        = flag.Int("nb", 16, "panel width for the empirical run")
		seed      = flag.Uint64("seed", 1, "corruption placement seed")
	)
	flag.Parse()

	if *empirical {
		t := report.NewTable(
			fmt.Sprintf("Table IV — measured update/propagation dimensions (n=%d, nb=%d)", *n, *nb),
			"op", "part", "analytic MUD", "measured", "corrupted elements")
		for _, row := range propagation.TableIV(*n, *nb, *seed) {
			t.AddRow(row.Op.String(), row.Part.String(), row.Analytic.String(), row.Empirical.String(), row.Corrupted)
		}
		t.Render(os.Stdout)
		return
	}
	t := report.NewTable("Table V — error propagation patterns of major update operations",
		"op", "part", "computation error", "memory error", "tolerable by")
	for _, row := range propagation.TableV() {
		t.AddRow(row.Op.String(), row.Part.String(), row.Computation.String(), row.Memory.String(), row.TolerableBy)
	}
	t.Render(os.Stdout)
}
