// Command faultinject reproduces Table VIII: the fault-injection campaign
// comparing protection strength and recovery overhead of the four ABFT
// configurations across every fault kind of the §V fault model.
//
// Usage:
//
//	faultinject -decomp lu -n 192 -nb 16 -gpus 2
//
// Output legend (paper notation): Y fixed with <1% recovery overhead,
// Y* fixed with measurable overhead, R fixed via local in-memory restart,
// D detected but needs complete restart, N silent corruption.
package main

import (
	"flag"
	"fmt"
	"os"

	"ftla/internal/campaign"
	"ftla/internal/report"
)

func main() {
	var (
		decomp = flag.String("decomp", "lu", "decomposition: cholesky | lu | qr")
		n      = flag.Int("n", 192, "matrix order")
		nb     = flag.Int("nb", 16, "block size")
		gpus   = flag.Int("gpus", 2, "simulated GPUs")
		seed   = flag.Uint64("seed", 12345, "injection seed")
		full   = flag.Bool("v", false, "include residuals and recovery percentages")
	)
	flag.Parse()

	var d campaign.Decomp
	switch *decomp {
	case "cholesky":
		d = campaign.Cholesky
	case "qr":
		d = campaign.QR
	default:
		d = campaign.LU
	}
	cfg := campaign.DefaultConfig(d)
	cfg.N, cfg.NB, cfg.GPUs, cfg.Seed = *n, *nb, *gpus, *seed

	rows, err := campaign.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	// Pivot: one row per fault case, one column per approach.
	names := []string{"offline[34]"}
	for _, a := range campaign.Approaches() {
		names = append(names, a.Name)
	}
	headers := append([]string{"fault case"}, names...)
	t := report.NewTable(
		fmt.Sprintf("Table VIII — ABFT protection strength (%s, n=%d, nb=%d, gpus=%d)", d, *n, *nb, *gpus),
		headers...)
	byCase := map[string]map[string]campaign.Row{}
	var order []string
	for _, r := range rows {
		if byCase[r.Case] == nil {
			byCase[r.Case] = map[string]campaign.Row{}
			order = append(order, r.Case)
		}
		byCase[r.Case][r.Approach] = r
	}
	for _, c := range order {
		cells := []interface{}{c}
		for _, a := range names {
			r := byCase[c][a]
			v := r.Verdict()
			if *full {
				v = fmt.Sprintf("%s (%.2f%%, res=%.1e)", v, r.RecoveryPct, r.Residual)
			}
			cells = append(cells, v)
		}
		t.AddRow(cells...)
	}
	t.Render(os.Stdout)
	fmt.Println("\nY fixed <1% | Y* fixed | R local restart | D detected, needs complete restart | N silent corruption")
}
