// Command ftserve exposes the internal/service decomposition scheduler
// over HTTP/JSON: clients submit factorization/solve jobs, poll for
// results, and scrape aggregate serving statistics. It also ships a
// load-generator mode that drives the scheduler in-process with mixed
// traffic (repeated operators for cache hits, injected soft errors for
// retries) and prints the resulting stats.
//
// Serve:
//
//	ftserve -addr :8080 -workers 4 -queue 256
//	curl -s -X POST localhost:8080/v1/jobs -d '{"decomp":"cholesky","n":256,"seed":7,"rhs_seed":1}'
//	curl -s localhost:8080/v1/jobs/1
//	curl -s localhost:8080/v1/stats
//
// Load generator:
//
//	ftserve -load 200 -n 128 -gpus 2
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"ftla"
	"ftla/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "HTTP listen address")
		workers = flag.Int("workers", 0, "concurrent jobs (0 = auto)")
		queue   = flag.Int("queue", 256, "admission queue depth")
		cache   = flag.Int("cache", 128, "factorization cache entries")
		retries = flag.Int("max-attempts", 3, "factorization attempts per job (1 = no retry)")
		load    = flag.Int("load", 0, "run the in-process load generator with this many jobs, then exit")
		loadN   = flag.Int("n", 128, "load generator: matrix order")
		loadG   = flag.Int("gpus", 2, "load generator: simulated GPUs")
		loadNB  = flag.Int("nb", 32, "load generator: block size")
	)
	flag.Parse()

	sched := service.New(service.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cache,
		Retry:        service.RetryPolicy{MaxAttempts: *retries},
	})

	if *load > 0 {
		runLoad(sched, *load, *loadN, *loadG, *loadNB)
		sched.Close()
		return
	}

	srv := &server{sched: sched, jobs: make(map[uint64]*service.JobHandle)}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", srv.jobsRoot)
	mux.HandleFunc("/v1/jobs/", srv.jobByPath)
	mux.HandleFunc("/v1/stats", srv.stats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	log.Printf("ftserve listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

// server adapts the scheduler to HTTP and remembers submitted handles so
// clients can poll by id.
type server struct {
	sched *service.Scheduler
	mu    sync.Mutex
	jobs  map[uint64]*service.JobHandle
}

// jobRequest is the POST /v1/jobs body. The operator comes either inline
// ("matrix") or generated ("n"+"seed"); the right-hand side likewise
// ("b" or "rhs_seed" — omit both for factorize-only jobs).
type jobRequest struct {
	Decomp     string      `json:"decomp"` // cholesky | lu | qr
	N          int         `json:"n"`
	Seed       uint64      `json:"seed"`
	Matrix     [][]float64 `json:"matrix"`
	B          []float64   `json:"b"`
	RHSSeed    *uint64     `json:"rhs_seed"`
	GPUs       int         `json:"gpus"`
	NB         int         `json:"nb"`
	Protection string      `json:"protection"` // full (default) | single | none
	Priority   string      `json:"priority"`   // batch (default) | normal | interactive
	TimeoutMS  int         `json:"timeout_ms"`
	NoCache    bool        `json:"no_cache"`
}

func (r *jobRequest) toSpec() (service.JobSpec, error) {
	spec := service.JobSpec{NoCache: r.NoCache}
	switch strings.ToLower(r.Decomp) {
	case "", "cholesky":
		spec.Decomp = service.Cholesky
	case "lu":
		spec.Decomp = service.LU
	case "qr":
		spec.Decomp = service.QR
	default:
		return spec, fmt.Errorf("unknown decomp %q", r.Decomp)
	}
	switch {
	case r.Matrix != nil:
		spec.A = ftla.FromRows(r.Matrix)
	case r.N > 0:
		spec.A = generate(spec.Decomp, r.N, r.Seed)
	default:
		return spec, fmt.Errorf("need \"matrix\" or \"n\"")
	}
	switch {
	case r.B != nil:
		spec.B = r.B
	case r.RHSSeed != nil:
		b := ftla.Random(spec.A.Rows, 1, *r.RHSSeed)
		spec.B = make([]float64, spec.A.Rows)
		for i := range spec.B {
			spec.B[i] = b.At(i, 0)
		}
	}
	spec.Config = ftla.Config{GPUs: r.GPUs, NB: r.NB}
	switch strings.ToLower(r.Protection) {
	case "", "full":
	case "single":
		spec.Config.Protection, spec.Config.Scheme = ftla.SingleSide, ftla.NewScheme
	case "none":
		spec.Config = ftla.Unprotected(r.GPUs)
		spec.Config.NB = r.NB
	default:
		return spec, fmt.Errorf("unknown protection %q", r.Protection)
	}
	switch strings.ToLower(r.Priority) {
	case "", "batch":
		spec.Priority = service.Batch
	case "normal":
		spec.Priority = service.Normal
	case "interactive":
		spec.Priority = service.Interactive
	default:
		return spec, fmt.Errorf("unknown priority %q", r.Priority)
	}
	return spec, nil
}

func generate(d service.Decomp, n int, seed uint64) *ftla.Matrix {
	switch d {
	case service.Cholesky:
		return ftla.RandomSPD(n, seed)
	case service.LU:
		return ftla.RandomDiagDominant(n, seed)
	default:
		return ftla.Random(n, n, seed)
	}
}

// jobStatus is the poll response.
type jobStatus struct {
	ID       uint64    `json:"id"`
	State    string    `json:"state"` // pending | done | failed
	Outcome  string    `json:"outcome,omitempty"`
	Residual float64   `json:"residual,omitempty"`
	Attempts int       `json:"attempts,omitempty"`
	CacheHit bool      `json:"cache_hit,omitempty"`
	WaitMS   float64   `json:"wait_ms,omitempty"`
	RunMS    float64   `json:"run_ms,omitempty"`
	X        []float64 `json:"x,omitempty"`
	Error    string    `json:"error,omitempty"`
}

func (s *server) jobsRoot(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.submit(w, r)
	case http.MethodGet:
		id, err := strconv.ParseUint(r.URL.Query().Get("id"), 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "missing or bad id")
			return
		}
		s.poll(w, id)
	default:
		httpError(w, http.StatusMethodNotAllowed, "POST or GET")
	}
}

func (s *server) jobByPath(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(strings.TrimPrefix(r.URL.Path, "/v1/jobs/"), 10, 64)
	if err != nil {
		httpError(w, http.StatusNotFound, "bad job id")
		return
	}
	s.poll(w, id)
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	spec, err := req.toSpec()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx := context.Background()
	var cancel context.CancelFunc
	if req.TimeoutMS > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
	}
	h, err := s.sched.Submit(ctx, spec)
	if err != nil {
		if cancel != nil {
			cancel()
		}
		code := http.StatusBadRequest
		if err == service.ErrQueueFull {
			code = http.StatusTooManyRequests // backpressure to the client
		} else if err == service.ErrClosed {
			code = http.StatusServiceUnavailable
		}
		httpError(w, code, err.Error())
		return
	}
	if cancel != nil {
		go func() { <-h.Done(); cancel() }()
	}
	s.mu.Lock()
	s.jobs[h.ID] = h
	s.mu.Unlock()
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, jobStatus{ID: h.ID, State: "pending"})
}

func (s *server) poll(w http.ResponseWriter, id uint64) {
	s.mu.Lock()
	h, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	res, err, terminal := h.Poll()
	st := jobStatus{ID: id, State: "pending"}
	switch {
	case !terminal:
	case err != nil:
		st.State, st.Error = "failed", err.Error()
	default:
		st.State = "done"
		st.Outcome = res.Outcome.String()
		st.Residual = res.Residual
		st.Attempts = res.Attempts
		st.CacheHit = res.CacheHit
		st.WaitMS = float64(res.Wait) / float64(time.Millisecond)
		st.RunMS = float64(res.Run) / float64(time.Millisecond)
		st.X = res.X
	}
	writeJSON(w, st)
}

func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.sched.Stats())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.WriteHeader(code)
	writeJSON(w, map[string]string{"error": msg})
}

// runLoad drives the scheduler with jobs mixed to exercise every serving
// path: three decompositions, three priorities, repeated operators (cache
// hits), and a slice of jobs carrying an injector that forces a complete
// restart (retry path).
func runLoad(sched *service.Scheduler, jobs, n, gpus, nb int) {
	start := time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failed int
	for i := 0; i < jobs; i++ {
		d := service.Decomp(i % 3)
		spec := service.JobSpec{
			Decomp:   d,
			A:        generate(d, n, uint64(i%5)), // 5 distinct operators per decomp → cache traffic
			Priority: service.Priority(i % 3),
			Config:   ftla.Config{GPUs: gpus, NB: nb},
		}
		if i%2 == 0 {
			spec.B = make([]float64, n)
			spec.B[0] = 1
		}
		if i%10 == 9 {
			// Unrepairable double fault under single-side protection: the
			// first attempt lands in detected-corrupt and the service
			// restarts it (see internal/service tests for the anatomy).
			inj := ftla.NewInjector(uint64(i))
			for _, row := range []int{1, 2} {
				inj.Schedule(ftla.FaultSpec{
					Kind: ftla.FaultDRAM, Op: ftla.OpPD, Part: ftla.RefPart,
					Iteration: 0, Row: row, Col: 0,
				})
			}
			spec.Decomp = service.LU
			spec.A = generate(service.LU, n, uint64(i%5))
			spec.Config.Protection, spec.Config.Scheme = ftla.SingleSide, ftla.NewScheme
			spec.Config.Injector = inj
			spec.NoCache = true
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, err := sched.Submit(context.Background(), spec)
			if err != nil {
				mu.Lock()
				failed++
				mu.Unlock()
				return
			}
			if _, err := h.Wait(context.Background()); err != nil {
				mu.Lock()
				failed++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	st := sched.Stats()
	fmt.Printf("load: %d jobs in %v (%d rejected-or-failed)\n", jobs, time.Since(start).Round(time.Millisecond), failed)
	out, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "stats:", err)
		return
	}
	fmt.Println(string(out))
}
